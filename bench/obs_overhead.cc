/**
 * @file
 * obs_overhead — verifies the observability layer's disabled-path
 * invariant: with tracing off, a trace point is one relaxed load and a
 * branch, and the instrumentation must not perturb the simulated
 * engine.
 *
 * Four measurements:
 *  1. ns/op of a disabled span::instant() and of a Counter::inc()
 *     (the two hot-path primitives the executor calls);
 *  2. simulated makespan of an identical DepGraph-H run with tracing
 *     off vs on -- the delta must be under 2% (it is exactly 0 when
 *     the invariant holds: spans read the simulation, never drive it);
 *  3. wall-clock medians for the same pair, for reference (noisy on
 *     shared machines, so informational only);
 *  4. sampled-path serving throughput: cache-hit queries driven
 *     through service::runTracedCommandLine() with request sampling
 *     off vs FULL (every request traced), in interleaved pairs so
 *     machine drift cancels. The 1-in-64 (--trace_sample=64) cost is
 *     inferred as full/64 -- the per-request cost is linear in the
 *     sampled fraction and an unsampled request pays one relaxed
 *     atomic increment. Gate with --gate-sampled-pct N (0 = report
 *     only, used in CI with 1).
 *
 * Exit status is nonzero when the makespan check (or an armed sampled
 * gate) fails, so the bench can gate CI. --json writes the numbers to
 * a BENCH artifact.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "common/options.hh"
#include "core/depgraph_system.hh"
#include "graph/generators.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "service/protocol.hh"

using namespace depgraph;

namespace
{

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Median wall-clock ms of `runs` executions of `fn`. */
template <typename Fn>
double
medianMs(int runs, Fn &&fn)
{
    std::vector<double> ms;
    for (int i = 0; i < runs; ++i) {
        const double t0 = nowMs();
        fn();
        ms.push_back(nowMs() - t0);
    }
    std::sort(ms.begin(), ms.end());
    return ms[ms.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    o.declare("requests", "3000",
              "serving requests per sampled-path run");
    o.declare("gate-sampled-pct", "0",
              "fail when 1-in-64 sampling regresses serving "
              "throughput by more than this percent (0 = report "
              "only)");
    o.declare("json", "", "write results to this JSON file");
    o.parse(argc, argv);

    /* 1. Hot-path primitive cost with tracing off. */
    obs::span::setEnabled(false);
    constexpr std::uint64_t kOps = 50'000'000;

    double t0 = nowMs();
    for (std::uint64_t i = 0; i < kOps; ++i)
        obs::span::instant("bench", "noop", "i", i);
    const double span_ns = (nowMs() - t0) * 1e6 / kOps;

    auto &ctr = obs::registry().counter("dg_bench_ops_total", "bench");
    t0 = nowMs();
    for (std::uint64_t i = 0; i < kOps; ++i)
        ctr.inc();
    const double ctr_ns = (nowMs() - t0) * 1e6 / kOps;

    std::printf("disabled span::instant : %6.2f ns/op\n", span_ns);
    std::printf("Counter::inc           : %6.2f ns/op\n", ctr_ns);

    /* 2 + 3. Identical engine run, tracing off vs on. */
    graph::GenOptions gopt;
    gopt.seed = 42;
    const auto g = graph::powerLaw(20000, 2.0, 8.0, gopt);
    SystemConfig cfg;
    cfg.machine.numCores = 16;
    cfg.engine.numCores = 16;
    DepGraphSystem sys(cfg);

    std::uint64_t makespan_off = 0, makespan_on = 0;
    const double off_ms = medianMs(3, [&] {
        obs::span::setEnabled(false);
        makespan_off =
            sys.run(g, "pagerank", Solution::DepGraphH).metrics
                .makespan;
    });
    const double on_ms = medianMs(3, [&] {
        obs::span::clear();
        obs::span::setEnabled(true);
        makespan_on =
            sys.run(g, "pagerank", Solution::DepGraphH).metrics
                .makespan;
        obs::span::setEnabled(false);
    });

    const double delta = makespan_off == 0
        ? 1.0
        : static_cast<double>(makespan_on > makespan_off
                                  ? makespan_on - makespan_off
                                  : makespan_off - makespan_on)
            / static_cast<double>(makespan_off);

    std::printf("makespan  off=%llu on=%llu delta=%.4f%%\n",
                static_cast<unsigned long long>(makespan_off),
                static_cast<unsigned long long>(makespan_on),
                delta * 100.0);
    std::printf("wall (median of 3)  off=%.1f ms  on=%.1f ms\n",
                off_ms, on_ms);

    /* 4. Sampled-path serving throughput: cache-hit queries through
     * the traced request wrapper, sampling off vs 1-in-64. */
    const auto requests =
        static_cast<std::size_t>(o.getInt("requests"));
    service::ServiceOptions sopt;
    sopt.pool.numThreads = 2;
    service::GraphService svc(sopt);
    {
        graph::GenOptions sg;
        sg.seed = 7;
        svc.loadGraph("b", graph::powerLaw(5000, 2.0, 8.0, sg));
        // Converge once so the driven requests all hit the fixpoint
        // cache -- the hottest, most overhead-sensitive serving path.
        service::runCommandLine(svc,
                                "query b pagerank Sequential 0");
    }
    const auto drive = [&] {
        for (std::size_t i = 0; i < requests; ++i)
            service::runTracedCommandLine(
                svc, "query b pagerank Sequential 0");
    };
    const auto timedDrive = [&](std::uint32_t every) {
        obs::span::setSampling({every, 0});
        const double t0 = nowMs();
        drive();
        return nowMs() - t0;
    };
    obs::span::setEnabled(false);
    obs::span::setSampling({0, 0});
    drive(); // warm-up
    // At --trace_sample=64 only ~1.6% of requests pay the tracing
    // cost, which is far below wall-clock noise on a shared machine.
    // So measure FULL sampling (every request traced -- 64x the
    // signal) in interleaved off/on pairs with alternating order, so
    // clock-frequency and thermal drift cancel instead of landing on
    // one side, and infer the 1-in-64 cost: the per-request added
    // cost scales linearly with the sampled fraction (an unsampled
    // request pays one relaxed atomic increment, measured above as
    // counter_inc_ns-scale noise).
    constexpr int kPairs = 7;
    std::vector<double> pair_pct;
    double serve_off_ms = 0.0, serve_full_ms = 0.0;
    for (int p = 0; p < kPairs; ++p) {
        double off, full;
        if (p % 2 == 0) {
            off = timedDrive(0);
            full = timedDrive(1);
        } else {
            full = timedDrive(1);
            off = timedDrive(0);
        }
        serve_off_ms += off / kPairs;
        serve_full_ms += full / kPairs;
        pair_pct.push_back(off > 0.0 ? (full - off) * 100.0 / off
                                     : 0.0);
    }
    obs::span::setSampling({0, 0});
    std::sort(pair_pct.begin(), pair_pct.end());
    const double full_pct = pair_pct[pair_pct.size() / 2];
    const double sampled_pct = full_pct / 64.0;

    std::printf("serving (%d interleaved pairs, %zu cache-hit reqs)  "
                "sample=off %.2f ms  sample=all %.2f ms  "
                "median full regression=%.2f%%  "
                "=> 1-in-64 regression=%.3f%%\n",
                kPairs, requests, serve_off_ms, serve_full_ms,
                full_pct, sampled_pct);

    const double gate_pct = o.getDouble("gate-sampled-pct");

    const auto json_path = o.getString("json");
    if (!json_path.empty()) {
        std::ofstream js(json_path);
        js << "{\n"
           << "  \"disabled_span_ns\": " << span_ns << ",\n"
           << "  \"counter_inc_ns\": " << ctr_ns << ",\n"
           << "  \"makespan_off\": " << makespan_off << ",\n"
           << "  \"makespan_on\": " << makespan_on << ",\n"
           << "  \"makespan_delta\": " << delta << ",\n"
           << "  \"wall_off_ms\": " << off_ms << ",\n"
           << "  \"wall_on_ms\": " << on_ms << ",\n"
           << "  \"serve_requests\": " << requests << ",\n"
           << "  \"serve_sample_off_ms\": " << serve_off_ms << ",\n"
           << "  \"serve_sample_full_ms\": " << serve_full_ms << ",\n"
           << "  \"serve_full_regression_pct\": " << full_pct << ",\n"
           << "  \"serve_sampled_regression_pct\": " << sampled_pct
           << "\n}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }

    bool failed = false;
    if (delta >= 0.02) {
        std::printf("FAIL: tracing perturbed the simulated makespan\n");
        failed = true;
    } else {
        std::printf("PASS: makespan delta < 2%% with tracing "
                    "toggled\n");
    }
    if (gate_pct > 0.0) {
        if (sampled_pct > gate_pct) {
            std::printf("FAIL: 1-in-64 sampling regressed serving "
                        "by %.2f%% (gate %.2f%%)\n",
                        sampled_pct, gate_pct);
            failed = true;
        } else {
            std::printf("PASS: sampled-path regression %.2f%% <= "
                        "%.2f%%\n",
                        sampled_pct, gate_pct);
        }
    }
    return failed ? EXIT_FAILURE : EXIT_SUCCESS;
}
