/**
 * @file
 * obs_overhead — verifies the observability layer's disabled-path
 * invariant: with tracing off, a trace point is one relaxed load and a
 * branch, and the instrumentation must not perturb the simulated
 * engine.
 *
 * Three measurements:
 *  1. ns/op of a disabled span::instant() and of a Counter::inc()
 *     (the two hot-path primitives the executor calls);
 *  2. simulated makespan of an identical DepGraph-H run with tracing
 *     off vs on -- the delta must be under 2% (it is exactly 0 when
 *     the invariant holds: spans read the simulation, never drive it);
 *  3. wall-clock medians for the same pair, for reference (noisy on
 *     shared machines, so informational only).
 *
 * Exit status is nonzero when the makespan check fails, so the bench
 * can gate CI.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/depgraph_system.hh"
#include "graph/generators.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

using namespace depgraph;

namespace
{

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Median wall-clock ms of `runs` executions of `fn`. */
template <typename Fn>
double
medianMs(int runs, Fn &&fn)
{
    std::vector<double> ms;
    for (int i = 0; i < runs; ++i) {
        const double t0 = nowMs();
        fn();
        ms.push_back(nowMs() - t0);
    }
    std::sort(ms.begin(), ms.end());
    return ms[ms.size() / 2];
}

} // namespace

int
main()
{
    /* 1. Hot-path primitive cost with tracing off. */
    obs::span::setEnabled(false);
    constexpr std::uint64_t kOps = 50'000'000;

    double t0 = nowMs();
    for (std::uint64_t i = 0; i < kOps; ++i)
        obs::span::instant("bench", "noop", "i", i);
    const double span_ns = (nowMs() - t0) * 1e6 / kOps;

    auto &ctr = obs::registry().counter("dg_bench_ops_total", "bench");
    t0 = nowMs();
    for (std::uint64_t i = 0; i < kOps; ++i)
        ctr.inc();
    const double ctr_ns = (nowMs() - t0) * 1e6 / kOps;

    std::printf("disabled span::instant : %6.2f ns/op\n", span_ns);
    std::printf("Counter::inc           : %6.2f ns/op\n", ctr_ns);

    /* 2 + 3. Identical engine run, tracing off vs on. */
    graph::GenOptions gopt;
    gopt.seed = 42;
    const auto g = graph::powerLaw(20000, 2.0, 8.0, gopt);
    SystemConfig cfg;
    cfg.machine.numCores = 16;
    cfg.engine.numCores = 16;
    DepGraphSystem sys(cfg);

    std::uint64_t makespan_off = 0, makespan_on = 0;
    const double off_ms = medianMs(3, [&] {
        obs::span::setEnabled(false);
        makespan_off =
            sys.run(g, "pagerank", Solution::DepGraphH).metrics
                .makespan;
    });
    const double on_ms = medianMs(3, [&] {
        obs::span::clear();
        obs::span::setEnabled(true);
        makespan_on =
            sys.run(g, "pagerank", Solution::DepGraphH).metrics
                .makespan;
        obs::span::setEnabled(false);
    });

    const double delta = makespan_off == 0
        ? 1.0
        : static_cast<double>(makespan_on > makespan_off
                                  ? makespan_on - makespan_off
                                  : makespan_off - makespan_on)
            / static_cast<double>(makespan_off);

    std::printf("makespan  off=%llu on=%llu delta=%.4f%%\n",
                static_cast<unsigned long long>(makespan_off),
                static_cast<unsigned long long>(makespan_on),
                delta * 100.0);
    std::printf("wall (median of 3)  off=%.1f ms  on=%.1f ms\n",
                off_ms, on_ms);

    if (delta >= 0.02) {
        std::printf("FAIL: tracing perturbed the simulated makespan\n");
        return EXIT_FAILURE;
    }
    std::printf("PASS: makespan delta < 2%% with tracing toggled\n");
    return EXIT_SUCCESS;
}
