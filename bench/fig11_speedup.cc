/**
 * @file
 * Reproduces Fig. 11: speedup over Ligra-o of HATS, Minnow, PHI,
 * DepGraph-H-w (hub index disabled), and DepGraph-H (paper: DepGraph-H
 * beats HATS/Minnow/PHI by up to 3.0-14.2x / 2.2-5.8x / 2.4-10.1x and
 * the hub index contributes 56.9-71.5% of its improvement).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace depgraph;
using namespace depgraph::bench;

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Fig. 11: speedup over Ligra-o",
           "DepGraph-H is the fastest solution on every dataset and "
           "algorithm; DepGraph-H-w isolates the hub index's share",
           env);

    const std::vector<Solution> contenders = {
        Solution::Hats,          Solution::Minnow,
        Solution::Phi,           Solution::DepGraphHNoHub,
        Solution::DepGraphH,
    };

    Table t({"dataset", "algorithm", "HATS", "Minnow", "PHI",
             "DG-H-w", "DG-H"});
    for (const auto &ds : graph::datasetNames()) {
        const auto g = graph::makeDataset(ds, env.scale);
        for (const auto &algo : gas::paperAlgorithms()) {
            const auto base =
                runOne(env.config(), g, algo, Solution::LigraO);
            std::vector<std::string> row{ds, algo};
            for (auto s : contenders) {
                const auto r = runOne(env.config(), g, algo, s);
                row.push_back(Table::fmt(
                    static_cast<double>(base.metrics.makespan)
                        / static_cast<double>(r.metrics.makespan),
                    2) + "x");
            }
            t.addRow(row);
        }
    }
    t.print();
    return 0;
}
