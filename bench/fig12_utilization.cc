/**
 * @file
 * Reproduces Fig. 12: average core utilization spent on USEFUL state
 * propagation (r_e = u_s * U / u_d) for Ligra-o, HATS, Minnow, PHI,
 * and DepGraph-H (paper: DepGraph-H achieves by far the highest
 * useful utilization; HATS/Minnow/PHI stay low because stale
 * propagation wastes their cores).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace depgraph;
using namespace depgraph::bench;

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Fig. 12: useful-propagation utilization",
           "DepGraph-H turns the highest share of core-cycles into "
           "useful state propagation",
           env);

    Table t({"dataset", "algorithm", "Ligra-o", "HATS", "Minnow",
             "PHI", "DG-H"});
    for (const auto &ds : graph::datasetNames()) {
        const auto g = graph::makeDataset(ds, env.scale);
        for (const auto &algo : {std::string("pagerank"),
                                 std::string("sssp")}) {
            DepGraphSystem sys(env.config());
            const auto u_s = sys.minimalUpdates(g, algo);
            std::vector<std::string> row{ds, algo};
            for (auto s : {Solution::LigraO, Solution::Hats,
                           Solution::Minnow, Solution::Phi,
                           Solution::DepGraphH}) {
                const auto r = sys.run(g, algo, s);
                row.push_back(Table::fmt(
                    r.metrics.effectiveUtilization(u_s), 3));
            }
            t.addRow(row);
        }
    }
    t.print();
    return 0;
}
