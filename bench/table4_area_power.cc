/**
 * @file
 * Regenerates Table IV: area and power of HATS, Minnow, PHI, and
 * DepGraph from the analytic 14 nm storage+logic model (paper:
 * DepGraph costs 0.011 mm^2 = 0.61% of a core and 562 mW = 0.29% of
 * chip TDP).
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/area.hh"

using namespace depgraph;

int
main()
{
    std::printf("=== Table IV: area and power of the accelerators "
                "===\n");
    std::printf("paper: HATS 0.007mm2/0.38%%/425mW/0.22%%  "
                "Minnow 0.017/0.92%%/849/0.43%%\n       "
                "PHI 0.008/0.43%%/493/0.25%%  "
                "DepGraph 0.011/0.61%%/562/0.29%%\n\n");

    Table t({"accelerator", "storage(Kbit)", "logic(KGate)",
             "area(mm2)", "%core", "power(mW)", "%TDP"});
    const auto specs = sim::tableIVSpecs();
    const auto rows = sim::tableIV();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        t.addRow({rows[i].name,
                  Table::fmt(specs[i].storageKbits, 1),
                  Table::fmt(specs[i].logicKGates, 1),
                  Table::fmt(rows[i].areaMm2, 3),
                  Table::fmt(rows[i].pctCore, 2) + "%",
                  Table::fmt(rows[i].powerMw, 0),
                  Table::fmt(rows[i].pctTdp, 2) + "%"});
    }
    t.print();
    return 0;
}
