/**
 * @file
 * Micro-benchmark for the vectorized fold/apply kernels
 * (src/depgraph/fold_kernels.*): elements per cycle for each kernel on
 * the scalar reference table and, when the host has it, the AVX2
 * table, plus the SIMD-over-scalar speedup.
 *
 * Unlike the fig* binaries this measures REAL host cycles (rdtsc), so
 * the numbers depend on the machine. Emits BENCH_fold.json for CI to
 * archive, and optionally gates on the AVX2 fold throughput:
 *
 *   fold_kernels --gate-min-elems-per-cycle 2.0
 *
 * exits non-zero if any AVX2 fold kernel (sum/min/max) sustains fewer
 * than 2.0 elements per cycle. The gate auto-skips (with a note) on
 * hosts without AVX2 -- the scalar fallback is a correctness path, not
 * a throughput claim, and failing there would only test the CI fleet.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

#include "bench/bench_util.hh"
#include "common/random.hh"
#include "depgraph/fold_kernels.hh"

using namespace depgraph;
namespace fold = depgraph::dep::fold;

namespace
{

/** Cycle (x86) or nanosecond (elsewhere) timestamp; only ratios and
 * per-unit throughput are reported, so the unit just needs a name. */
std::uint64_t
tick()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
}

constexpr const char *kTickUnit =
#if defined(__x86_64__) || defined(__i386__)
    "cycle";
#else
    "ns";
#endif

/** Time `body` over `iters` repetitions of `elems` elements, with
 * `prep` run untimed before each repetition. Returns elems/tick. */
template <typename Prep, typename Body>
double
measure(std::size_t elems, unsigned iters, Prep prep, Body body)
{
    // Warm caches and the branch predictor.
    prep();
    body();
    std::uint64_t total = 0;
    for (unsigned i = 0; i < iters; ++i) {
        prep();
        const std::uint64_t t0 = tick();
        body();
        total += tick() - t0;
    }
    return static_cast<double>(elems) * iters
        / static_cast<double>(total);
}

volatile Value g_sink; // defeat dead-code elimination

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchEnv env;
    env.opts.declare("elems", "4096",
                     "lane-array length per kernel call");
    env.opts.declare("iters", "4000", "timed repetitions per kernel");
    env.opts.declare("json", "BENCH_fold.json",
                     "output path for the JSON records");
    env.opts.declare("gate-min-elems-per-cycle", "0",
                     "fail unless every AVX2 fold kernel sustains this "
                     "many elems/cycle (0 = no gate; auto-skips "
                     "without AVX2)");
    env.parse(argc, argv);

    const auto elems =
        static_cast<std::size_t>(env.opts.getInt("elems"));
    const auto iters =
        static_cast<unsigned>(env.opts.getInt("iters"));

    std::printf("=== fold kernel throughput (elems/%s) ===\n",
                kTickUnit);
    std::printf("host AVX2: %s; array: %zu doubles; %u reps\n\n",
                fold::avx2Supported() ? "yes" : "no", elems, iters);

    // Lane data shaped like real tiles: finite magnitudes, no specials
    // (the fuzz suite owns the corners; this is the throughput path).
    Rng rng(42);
    std::vector<Value> x(elems), mu(elems), xi(elems), cap(elems),
        inf(elems);
    for (std::size_t i = 0; i < elems; ++i) {
        x[i] = rng.nextDouble(-1.0, 1.0);
        mu[i] = rng.nextDouble(0.0, 1.0);
        xi[i] = rng.nextDouble(0.0, 4.0);
        cap[i] = rng.nextBool(0.5) ? kInfinity : rng.nextDouble(2.0, 6.0);
    }
    std::vector<Value> delta0(elems), shadow0(elems);
    for (std::size_t i = 0; i < elems; ++i) {
        delta0[i] = rng.nextDouble(-1.0, 1.0);
        shadow0[i] = rng.nextBool(0.5) ? 0.0 : rng.nextDouble(-1.0, 1.0);
    }
    std::vector<Value> delta(elems), shadow(elems);

    struct Row
    {
        std::string kernel;
        double scalar = 0.0;
        double simd = 0.0; // 0 when the host lacks AVX2
    };
    std::vector<Row> rows;

    const auto benchTable = [&](const fold::detail::Kernels &k,
                                const char *kernel) {
        const auto noPrep = [] {};
        if (std::strcmp(kernel, "fold_sum") == 0)
            return measure(elems, iters, noPrep, [&] {
                g_sink = k.foldSum(x.data(), elems);
            });
        if (std::strcmp(kernel, "fold_min") == 0)
            return measure(elems, iters, noPrep, [&] {
                g_sink = k.foldMin(x.data(), elems);
            });
        if (std::strcmp(kernel, "fold_max") == 0)
            return measure(elems, iters, noPrep, [&] {
                g_sink = k.foldMax(x.data(), elems);
            });
        if (std::strcmp(kernel, "edge_apply") == 0)
            return measure(elems, iters, noPrep, [&] {
                k.edgeApply(mu.data(), xi.data(), cap.data(), 0.5,
                            inf.data(), elems);
                g_sink = inf[elems - 1];
            });
        // merge_dense consumes its shadow (reset to identity), so
        // refill both arrays outside the timed region each rep.
        return measure(
            elems, iters,
            [&] {
                delta = delta0;
                shadow = shadow0;
            },
            [&] {
                k.mergeDense(gas::AccumKind::Sum, delta.data(),
                             shadow.data(), 0.0, elems);
                g_sink = delta[elems - 1];
            });
    };

    const char *kernels[] = {"fold_sum", "fold_min", "fold_max",
                             "edge_apply", "merge_dense"};
    const auto *avx2 = fold::detail::avx2Kernels();

    bench::JsonRecords json;
    std::printf("%-12s %12s %12s %9s\n", "kernel", "scalar", "avx2",
                "speedup");
    for (const char *kernel : kernels) {
        Row row;
        row.kernel = kernel;
        row.scalar = benchTable(fold::detail::scalarKernels(), kernel);
        if (avx2 != nullptr)
            row.simd = benchTable(*avx2, kernel);
        const double speedup =
            row.simd > 0.0 ? row.simd / row.scalar : 0.0;
        std::printf("%-12s %12.3f %12.3f %8.2fx\n", kernel, row.scalar,
                    row.simd, speedup);
        json.beginRecord()
            .field("kernel", row.kernel)
            .field("tick_unit", kTickUnit)
            .field("elems", static_cast<std::uint64_t>(elems))
            .field("scalar_elems_per_cycle", row.scalar)
            .field("avx2_elems_per_cycle", row.simd)
            .field("speedup", speedup)
            .field("avx2_supported", fold::avx2Supported());
        rows.push_back(row);
    }

    const std::string path = env.opts.getString("json");
    if (!json.writeFile(path)) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());

    const double gate =
        env.opts.getDouble("gate-min-elems-per-cycle");
    if (gate > 0.0) {
        if (avx2 == nullptr) {
            std::printf("gate: SKIPPED (host lacks AVX2; scalar "
                        "fallback is a correctness path)\n");
            return 0;
        }
        for (const auto &row : rows) {
            if (row.kernel != "fold_sum" && row.kernel != "fold_min"
                && row.kernel != "fold_max")
                continue;
            if (row.simd < gate) {
                std::fprintf(stderr,
                             "gate: FAILED %s at %.3f elems/cycle "
                             "< required %.3f\n",
                             row.kernel.c_str(), row.simd, gate);
                return 1;
            }
        }
        std::printf("gate: PASSED all AVX2 folds >= %.3f "
                    "elems/cycle\n", gate);
    }
    return 0;
}
