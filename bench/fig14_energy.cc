/**
 * @file
 * Reproduces Fig. 14: energy to convergence on FS, normalized to the
 * HATS-augmented system, broken down by component (paper: DepGraph-H
 * consumes the least energy thanks to higher useful utilization and
 * faster convergence).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace depgraph;
using namespace depgraph::bench;

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Fig. 14: energy on FS normalized to HATS (pagerank)",
           "DepGraph-H uses the least energy of all accelerated "
           "systems",
           env);

    const auto g = graph::makeDataset("FS", env.scale);
    double hats_total = 0.0;
    struct Row
    {
        Solution s;
        sim::EnergyBreakdown e;
    };
    std::vector<Row> rows;
    for (auto s : {Solution::Hats, Solution::Minnow, Solution::Phi,
                   Solution::DepGraphHNoHub, Solution::DepGraphH}) {
        const auto r = runOne(env.config(), g, "pagerank", s);
        rows.push_back({s, r.energy});
        if (s == Solution::Hats)
            hats_total = r.energy.totalMj();
    }

    Table t({"solution", "core", "cache", "noc", "dram", "accel",
             "total(norm)"});
    for (const auto &row : rows) {
        t.addRow({solutionName(row.s),
                  Table::fmt(row.e.coreMj / hats_total, 3),
                  Table::fmt(row.e.cacheMj / hats_total, 3),
                  Table::fmt(row.e.nocMj / hats_total, 3),
                  Table::fmt(row.e.dramMj / hats_total, 3),
                  Table::fmt(row.e.accelMj / hats_total, 3),
                  Table::fmt(row.e.totalMj() / hats_total, 3)});
    }
    t.print();
    return 0;
}
