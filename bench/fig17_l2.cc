/**
 * @file
 * Reproduces Fig. 17: sensitivity to the private L2 size (paper:
 * DepGraph-H stays ahead of the other solutions as L2 grows; a larger
 * L2 helps it because the engine fetches through the L2).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace depgraph;
using namespace depgraph::bench;

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Fig. 17: L2 size sensitivity (FS, pagerank)",
           "DepGraph-H leads at all L2 sizes",
           env);

    const auto g = graph::makeDataset("FS", env.scale);
    Table t({"l2_kb", "Ligra-o_ms", "Minnow_ms", "DG-H_ms"});
    for (std::size_t kb : {64u, 128u, 256u, 512u, 1024u}) {
        auto cfg = env.config();
        cfg.machine.l2.bytes = kb * 1024;
        std::vector<std::string> row{Table::fmt(std::uint64_t{kb})};
        for (auto s : {Solution::LigraO, Solution::Minnow,
                       Solution::DepGraphH}) {
            const auto r = runOne(cfg, g, "pagerank", s);
            row.push_back(Table::fmt(simMs(r.metrics.makespan), 3));
        }
        t.addRow(row);
    }
    t.print();
    return 0;
}
