/**
 * @file
 * Microbenchmarks for the network hot path: line framing across
 * fragmented reads, HTTP response serialization, and consistent-hash
 * routing. These run per request (framing, routing) or per scrape
 * (response build), so regressions here tax every byte served.
 *
 *   ./bench/net_framing --benchmark_min_time=0.1s
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/net/framing.hh"
#include "src/net/http.hh"
#include "src/net/router.hh"

namespace
{

using namespace depgraph;

/** A realistic pipelined payload: many short protocol lines. */
std::string
makePayload(std::size_t lines)
{
    std::string p;
    for (std::size_t i = 0; i < lines; ++i)
        p += "update g " + std::to_string(i % 4096) + " "
            + std::to_string((i * 7) % 4096) + " 1\n";
    return p;
}

void
BM_LineFramerPipelined(benchmark::State &state)
{
    const auto payload = makePayload(
        static_cast<std::size_t>(state.range(0)));
    std::string line;
    for (auto _ : state) {
        net::LineFramer f;
        f.append(payload);
        std::size_t n = 0;
        while (f.next(line))
            ++n;
        benchmark::DoNotOptimize(n);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(payload.size())
        * static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LineFramerPipelined)->Arg(16)->Arg(256)->Arg(4096);

void
BM_LineFramerFragmented(benchmark::State &state)
{
    // Socket-realistic delivery: the same payload arriving in small
    // fragments, lines popped as soon as they complete.
    const auto payload = makePayload(256);
    const auto frag = static_cast<std::size_t>(state.range(0));
    std::string line;
    for (auto _ : state) {
        net::LineFramer f;
        std::size_t n = 0;
        for (std::size_t off = 0; off < payload.size(); off += frag) {
            f.append(payload.data() + off,
                     std::min(frag, payload.size() - off));
            while (f.next(line))
                ++n;
        }
        benchmark::DoNotOptimize(n);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(payload.size())
        * static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LineFramerFragmented)->Arg(7)->Arg(64)->Arg(1460);

void
BM_HttpResponseBuild(benchmark::State &state)
{
    const std::string body(static_cast<std::size_t>(state.range(0)),
                           'm');
    for (auto _ : state) {
        auto r = net::httpResponse(200, "text/plain; version=0.0.4",
                                   body, true);
        benchmark::DoNotOptimize(r);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(body.size())
        * static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HttpResponseBuild)->Arg(64)->Arg(16384)->Arg(262144);

void
BM_HttpParseRequest(benchmark::State &state)
{
    const std::string req = "GET /metrics HTTP/1.1\r\n"
                            "Host: shard3.internal:7411\r\n"
                            "User-Agent: Prometheus/2.45\r\n"
                            "Accept: text/plain\r\n\r\n";
    for (auto _ : state) {
        net::HttpRequest parsed;
        std::size_t consumed = 0;
        benchmark::DoNotOptimize(
            net::parseHttpRequest(req, parsed, consumed));
    }
}
BENCHMARK(BM_HttpParseRequest);

void
BM_RouterShardLookup(benchmark::State &state)
{
    net::ShardRouter router;
    for (int s = 0; s < state.range(0); ++s)
        router.add("shard" + std::to_string(s) + ":7411");
    std::vector<std::string> keys;
    for (int i = 0; i < 512; ++i)
        keys.push_back("graph-" + std::to_string(i));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            router.shardFor(keys[i++ % keys.size()]));
    }
}
BENCHMARK(BM_RouterShardLookup)->Arg(1)->Arg(4)->Arg(64);

void
BM_RouterVertexPartition(benchmark::State &state)
{
    net::ShardRouter router;
    for (int s = 0; s < 8; ++s)
        router.add("shard" + std::to_string(s) + ":7411");
    VertexId v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            router.shardForVertex("g", v++, 64));
    }
}
BENCHMARK(BM_RouterVertexPartition);

} // namespace

BENCHMARK_MAIN();
