/**
 * @file
 * Reproduces the Sec. IV preprocessing-cost claim: DepGraph's
 * preprocessing (two passes over the graph to find hub- and
 * core-vertices) increases the baseline's preprocessing time by at
 * most ~9.2% (paper: Ligra-o 7.6/0.4/17.5/67.3/19.6/546.0 ms vs
 * DepGraph 8.0/0.43/18.9/72.4/21.4/595.1 ms for GL..FS).
 *
 * Measured as host wall-clock of the actual preprocessing code paths:
 * baseline = CSR partitioning (+ transpose); DepGraph adds hub
 * detection and the core-path decomposition.
 */

#include <chrono>
#include <tuple>
#include <functional>
#include <cstdio>

#include "bench/bench_util.hh"
#include "graph/builder.hh"
#include "graph/core_paths.hh"
#include "graph/partition.hh"

using namespace depgraph;
using namespace depgraph::bench;

namespace
{

double
msOf(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Preprocessing overhead (Sec. IV prose)",
           "DepGraph's extra preprocessing costs at most ~9.2% over "
           "Ligra-o's",
           env);

    Table t({"dataset", "baseline_ms", "depgraph_ms", "overhead"});
    for (const auto &ds : graph::datasetNames()) {
        const auto g = graph::makeDataset(ds, env.scale);

        // Recover the raw edge list so both variants start from the
        // same un-preprocessed input, as the paper's measurement does.
        std::vector<std::tuple<VertexId, VertexId, Value>> edges;
        edges.reserve(g.numEdges());
        for (VertexId v = 0; v < g.numVertices(); ++v)
            for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e)
                edges.emplace_back(v, g.target(e), g.weight(e));

        auto build_csr = [&] {
            graph::Builder b(g.numVertices());
            for (const auto &[src, dst, w] : edges)
                b.addEdge(src, dst, w);
            graph::Graph built = b.build();
            built.buildTranspose(); // Ligra keeps both directions
            graph::Partitioning part(built, env.cores);
            return built;
        };

        constexpr int reps = 3;
        double base_ms = 0.0, dep_ms = 0.0;
        for (int i = 0; i < reps; ++i) {
            base_ms += msOf([&] { (void)build_csr(); });
            dep_ms += msOf([&] {
                const graph::Graph built = build_csr();
                graph::Partitioning part(built, env.cores);
                graph::HubSet hubs(built, graph::HubParams{});
                graph::CoreSubgraph cs(built, hubs, 40, &part);
                (void)cs;
            });
        }
        base_ms /= reps;
        dep_ms /= reps;
        t.addRow({ds, Table::fmt(base_ms, 3), Table::fmt(dep_ms, 3),
                  Table::fmt(100.0 * (dep_ms - base_ms)
                                 / std::max(base_ms, 1e-9),
                             1) + "%"});
    }
    t.print();
    std::printf("\nnote: relative overhead exceeds the paper's <=9.2%%"
                " at reproduction scale because the baseline's cost is"
                " dominated by multi-GB file IO in the original setup,"
                " which the in-memory stand-ins skip; the absolute"
                " DepGraph-side cost (hub detection + decomposition)"
                " remains two passes over the graph, as in the"
                " paper.\n");
    return 0;
}
