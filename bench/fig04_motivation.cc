/**
 * @file
 * Reproduces Fig. 4 (the motivation study):
 *  (a) utilization breakdown into useful / useless updates for the
 *      software systems (Ligra, Mosaic, Wonderland, FBSGraph, Ligra-o)
 *      running incremental pagerank;
 *  (b) Ligra-o on FS with growing thread (core) counts;
 *  (c) active-vertex ratio and utilization per round on FS;
 *  (d) fraction of state propagations passing through paths between
 *      the top-k% highest-degree vertices.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hh"
#include "graph/degree.hh"

using namespace depgraph;
using namespace depgraph::bench;

namespace
{

void
partA(const BenchEnv &env)
{
    std::printf("--- Fig. 4(a): utilization breakdown, pagerank ---\n");
    std::printf("paper: useful share of updates is only 7.4-14.5%% "
                "(Ligra), 14.6-21.9%% (Ligra-o),\n       7.7-16.9%% "
                "(Mosaic), 12.1-20.2%% (Wonderland), 11.3-17.2%% "
                "(FBSGraph)\n");
    Table t({"dataset", "system", "U_total", "r_e(useful)",
             "r_u(useless)", "u_d/u_s"});
    for (const auto &ds : graph::datasetNames()) {
        const auto g = graph::makeDataset(ds, env.scale);
        DepGraphSystem sys(env.config());
        const auto u_s = sys.minimalUpdates(g, "pagerank");
        for (auto s : {Solution::Ligra, Solution::Mosaic,
                       Solution::Wonderland, Solution::FBSGraph,
                       Solution::LigraO}) {
            const auto r = sys.run(g, "pagerank", s);
            const double u = r.metrics.utilization();
            const double re = r.metrics.effectiveUtilization(u_s);
            t.addRow({ds, solutionName(s), Table::fmt(u, 3),
                      Table::fmt(re, 3), Table::fmt(u - re, 3),
                      Table::fmt(static_cast<double>(r.metrics.updates)
                                     / static_cast<double>(u_s),
                                 2)});
        }
    }
    t.print();
}

void
partB(const BenchEnv &env)
{
    std::printf("\n--- Fig. 4(b): Ligra-o vs thread count on FS ---\n");
    std::printf("paper: runtime improves with threads but useful-update "
                "efficiency keeps dropping\n");
    const auto g = graph::makeDataset("FS", env.scale);
    Table t({"cores", "sim_ms", "updates", "r_e"});
    for (unsigned c : {1u, 4u, 16u, 64u}) {
        if (c > env.cores)
            continue;
        auto cfg = env.config();
        cfg.machine.numCores = std::max(c, 1u);
        cfg.engine.numCores = c;
        DepGraphSystem sys(cfg);
        const auto u_s = sys.minimalUpdates(g, "pagerank");
        const auto r = sys.run(g, "pagerank", Solution::LigraO);
        t.addRow({Table::fmt(std::uint64_t{c}),
                  Table::fmt(simMs(r.metrics.makespan), 3),
                  Table::fmt(r.metrics.updates),
                  Table::fmt(r.metrics.effectiveUtilization(u_s), 3)});
    }
    t.print();
}

void
partC(const BenchEnv &env)
{
    std::printf("\n--- Fig. 4(c): active ratio per round, Ligra-o on "
                "FS ---\n");
    std::printf("paper: the active fraction decays across rounds, "
                "depressing utilization\n");
    // Reuse the reference executor to expose per-round active counts.
    const auto g = graph::makeDataset("FS", env.scale);
    const auto alg = gas::makeAlgorithm("pagerank");
    alg->prepare(g);
    const VertexId n = g.numVertices();
    const auto kind = alg->accumKind();
    const Value ident = alg->identity();
    std::vector<Value> state(n), delta(n), next(n, ident);
    for (VertexId v = 0; v < n; ++v) {
        state[v] = alg->initState(g, v);
        delta[v] = alg->initDelta(g, v);
    }
    Table t({"round", "active_ratio"});
    for (unsigned round = 0; round < 40; ++round) {
        std::size_t active = 0;
        for (VertexId v = 0; v < n; ++v) {
            const Value d = delta[v];
            if (d == ident
                || !gas::wouldChange(kind, state[v], d,
                                     alg->epsilon())) {
                if (d != ident)
                    next[v] = gas::applyAccum(kind, next[v], d);
                continue;
            }
            ++active;
            state[v] = gas::applyAccum(kind, state[v], d);
            for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e) {
                next[g.target(e)] = gas::applyAccum(
                    kind, next[g.target(e)],
                    alg->edgeCompute(g, v, e, d));
            }
        }
        if (round % 4 == 0) {
            t.addRow({Table::fmt(std::uint64_t{round}),
                      Table::fmt(static_cast<double>(active) / n, 4)});
        }
        delta.swap(next);
        for (auto &x : next)
            x = ident;
        if (active == 0)
            break;
    }
    t.print();
}

void
partD(const BenchEnv &env)
{
    std::printf("\n--- Fig. 4(d): propagations through top-k%% degree "
                "vertices ---\n");
    std::printf("paper: >60%% of propagations pass through paths "
                "between the top 0.5%% vertices\n");
    Table t({"dataset", "k=0.1%", "k=0.5%", "k=1%", "k=5%"});
    for (const auto &ds : graph::datasetNames()) {
        const auto g = graph::makeDataset(ds, env.scale);
        // A propagation traverses an edge; it "passes through" top-k
        // paths when either endpoint is a top-k vertex (hub-path
        // membership proxy). Weight each edge by how often pagerank
        // propagation crosses it ~ out-degree-normalized mass; the
        // structural proxy counts edges incident to top-k vertices.
        const auto order = graph::verticesByDegreeDesc(g);
        std::vector<std::string> row{ds};
        for (double k : {0.001, 0.005, 0.01, 0.05}) {
            const auto top = static_cast<std::size_t>(
                std::max<double>(1.0, k * g.numVertices()));
            Bitmap is_top(g.numVertices());
            for (std::size_t i = 0; i < top; ++i)
                is_top.set(order[i]);
            EdgeId through = 0;
            for (VertexId v = 0; v < g.numVertices(); ++v) {
                for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v);
                     ++e) {
                    if (is_top.test(v) || is_top.test(g.target(e)))
                        ++through;
                }
            }
            row.push_back(Table::fmt(
                static_cast<double>(through)
                    / static_cast<double>(g.numEdges()),
                3));
        }
        t.addRow(row);
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Fig. 4: motivation study",
           "software systems waste most updates; propagation "
           "concentrates on hub paths",
           env);
    partA(env);
    partB(env);
    partC(env);
    partD(env);
    return 0;
}
