/**
 * @file
 * Shared helpers for the figure/table reproduction benchmarks.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper's evaluation (Sec. IV). Common knobs:
 *   --scale  linear scale factor on the dataset stand-ins (default
 *            0.20: benchmarks complete in minutes on one host);
 *   --cores  simulated cores. The default is 16 rather than the
 *            paper's 64 to keep the vertices-per-core ratio in a
 *            realistic band for the scaled-down graphs (the paper has
 *            ~1M vertices per core; 64 cores on a 10k-vertex stand-in
 *            would make virtually every edge cross-partition, a regime
 *            none of the solutions was designed for). Pass --cores=64
 *            for the literal Table II machine.
 *
 * Shapes (who wins, by what rough factor) are the reproduction target;
 * absolute numbers shift with --scale. Each binary prints the paper's
 * reported numbers next to the measured ones.
 */

#ifndef DEPGRAPH_BENCH_BENCH_UTIL_HH
#define DEPGRAPH_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "common/options.hh"
#include "common/table.hh"
#include "core/depgraph_system.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"

namespace depgraph::bench
{

struct BenchEnv
{
    double scale = 0.20;
    unsigned cores = 16;
    Options opts;

    /** Declare the common flags, parse, and fill the fields. Extra
     * flags must be declared on `opts` before calling. */
    void
    parse(int argc, char **argv)
    {
        opts.declare("scale", std::to_string(scale),
                     "dataset scale factor");
        opts.declare("cores", std::to_string(cores),
                     "simulated core count");
        opts.parse(argc, argv);
        scale = opts.getDouble("scale");
        cores = static_cast<unsigned>(opts.getInt("cores"));
    }

    /** The Table II machine restricted to `cores` cores. */
    SystemConfig
    config() const
    {
        SystemConfig cfg;
        cfg.machine.numCores = cores;
        cfg.engine.numCores = cores;
        return cfg;
    }
};

/** One engine run on a fresh machine; convenience wrapper. */
inline runtime::RunResult
runOne(const SystemConfig &cfg, const graph::Graph &g,
       const std::string &algo, Solution s)
{
    DepGraphSystem sys(cfg);
    return sys.run(g, algo, s);
}

/** Header banner tying the binary to its figure/table. */
inline void
banner(const std::string &what, const std::string &paper_summary,
       const BenchEnv &env)
{
    std::printf("=== %s ===\n", what.c_str());
    std::printf("paper reports: %s\n", paper_summary.c_str());
    std::printf("run config: scale=%.2f cores=%u (Table II machine)\n\n",
                env.scale, env.cores);
}

/** Milliseconds of simulated time at the Table II clock. */
inline double
simMs(Cycles cycles, double freq_ghz = 2.5)
{
    return static_cast<double>(cycles) / (freq_ghz * 1e6);
}

} // namespace depgraph::bench

#endif // DEPGRAPH_BENCH_BENCH_UTIL_HH
