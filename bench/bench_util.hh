/**
 * @file
 * Shared helpers for the figure/table reproduction benchmarks.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper's evaluation (Sec. IV). Common knobs:
 *   --scale  linear scale factor on the dataset stand-ins (default
 *            0.20: benchmarks complete in minutes on one host);
 *   --cores  simulated cores. The default is 16 rather than the
 *            paper's 64 to keep the vertices-per-core ratio in a
 *            realistic band for the scaled-down graphs (the paper has
 *            ~1M vertices per core; 64 cores on a 10k-vertex stand-in
 *            would make virtually every edge cross-partition, a regime
 *            none of the solutions was designed for). Pass --cores=64
 *            for the literal Table II machine.
 *
 * Shapes (who wins, by what rough factor) are the reproduction target;
 * absolute numbers shift with --scale. Each binary prints the paper's
 * reported numbers next to the measured ones.
 */

#ifndef DEPGRAPH_BENCH_BENCH_UTIL_HH
#define DEPGRAPH_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/options.hh"
#include "common/table.hh"
#include "core/depgraph_system.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"

namespace depgraph::bench
{

struct BenchEnv
{
    double scale = 0.20;
    unsigned cores = 16;
    Options opts;

    /** Declare the common flags, parse, and fill the fields. Extra
     * flags must be declared on `opts` before calling. */
    void
    parse(int argc, char **argv)
    {
        opts.declare("scale", std::to_string(scale),
                     "dataset scale factor");
        opts.declare("cores", std::to_string(cores),
                     "simulated core count");
        opts.parse(argc, argv);
        scale = opts.getDouble("scale");
        cores = static_cast<unsigned>(opts.getInt("cores"));
    }

    /** The Table II machine restricted to `cores` cores. */
    SystemConfig
    config() const
    {
        SystemConfig cfg;
        cfg.machine.numCores = cores;
        cfg.engine.numCores = cores;
        return cfg;
    }
};

/** One engine run on a fresh machine; convenience wrapper. */
inline runtime::RunResult
runOne(const SystemConfig &cfg, const graph::Graph &g,
       const std::string &algo, Solution s)
{
    DepGraphSystem sys(cfg);
    return sys.run(g, algo, s);
}

/** Header banner tying the binary to its figure/table. */
inline void
banner(const std::string &what, const std::string &paper_summary,
       const BenchEnv &env)
{
    std::printf("=== %s ===\n", what.c_str());
    std::printf("paper reports: %s\n", paper_summary.c_str());
    std::printf("run config: scale=%.2f cores=%u (Table II machine)\n\n",
                env.scale, env.cores);
}

/** Milliseconds of simulated time at the Table II clock. */
inline double
simMs(Cycles cycles, double freq_ghz = 2.5)
{
    return static_cast<double>(cycles) / (freq_ghz * 1e6);
}

/**
 * Minimal JSON emitter for machine-readable benchmark artifacts
 * (BENCH_*.json): an array of flat objects with string / number /
 * boolean fields. Just enough for CI to parse with jq or python;
 * values are rendered eagerly so the writer owns no type machinery.
 */
class JsonRecords
{
  public:
    JsonRecords &
    beginRecord()
    {
        records_.emplace_back();
        return *this;
    }

    JsonRecords &
    field(const std::string &key, const std::string &value)
    {
        records_.back().push_back({key, quote(value)});
        return *this;
    }

    JsonRecords &
    field(const std::string &key, const char *value)
    {
        return field(key, std::string(value));
    }

    JsonRecords &
    field(const std::string &key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.9g", value);
        records_.back().push_back({key, buf});
        return *this;
    }

    JsonRecords &
    field(const std::string &key, std::uint64_t value)
    {
        records_.back().push_back({key, std::to_string(value)});
        return *this;
    }

    JsonRecords &
    field(const std::string &key, unsigned value)
    {
        return field(key, static_cast<std::uint64_t>(value));
    }

    JsonRecords &
    field(const std::string &key, bool value)
    {
        records_.back().push_back({key, value ? "true" : "false"});
        return *this;
    }

    std::string
    render() const
    {
        std::string out = "[\n";
        for (std::size_t i = 0; i < records_.size(); ++i) {
            out += "  {";
            const auto &r = records_[i];
            for (std::size_t j = 0; j < r.size(); ++j) {
                out += quote(r[j].first) + ": " + r[j].second;
                if (j + 1 < r.size())
                    out += ", ";
            }
            out += i + 1 < records_.size() ? "},\n" : "}\n";
        }
        out += "]\n";
        return out;
    }

    /** Write render() to `path`; returns false on I/O failure. */
    bool
    writeFile(const std::string &path) const
    {
        std::ofstream os(path);
        if (!os)
            return false;
        os << render();
        return static_cast<bool>(os);
    }

  private:
    static std::string
    quote(const std::string &s)
    {
        std::string q = "\"";
        for (char c : s) {
            if (c == '"' || c == '\\')
                q += '\\';
            q += c;
        }
        return q + "\"";
    }

    std::vector<std::vector<std::pair<std::string, std::string>>>
        records_;
};

} // namespace depgraph::bench

#endif // DEPGRAPH_BENCH_BENCH_UTIL_HH
