/**
 * @file
 * Ablations of the reproduction's design choices (DESIGN.md Sec. 5):
 *
 *  1. DDMU fitting mode: the paper's two-point solve vs exact
 *     composition, per accumulator kind;
 *  2. Maiter-style selective scheduling in the Ligra-o baseline
 *     (what "asynchronous execution [64]" buys the baseline);
 *  3. the individual accelerator mechanisms (hardware worklist,
 *     worklist-directed prefetch, in-hierarchy scatter) applied one
 *     at a time on top of Ligra-o;
 *  4. the hub index itself (DepGraph-H vs DepGraph-H-w), per
 *     algorithm class.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "depgraph/executor.hh"
#include "runtime/soft_engine.hh"

using namespace depgraph;
using namespace depgraph::bench;

namespace
{

runtime::RunResult
runEngine(runtime::Engine &e, const SystemConfig &cfg,
          const graph::Graph &g, const std::string &algo)
{
    sim::Machine m(cfg.machine);
    const auto alg = gas::makeAlgorithm(algo);
    return e.run(g, *alg, m);
}

void
fitModeAblation(const BenchEnv &env, const graph::Graph &g)
{
    std::printf("--- 1. DDMU fitting mode (FS) ---\n");
    Table t({"algorithm", "fit", "sim_ms", "updates", "shortcuts"});
    for (const auto *algo : {"pagerank", "sssp", "wcc"}) {
        for (auto fit : {dep::FitMode::TwoPoint,
                         dep::FitMode::Compose}) {
            dep::DepOptions d;
            d.mode = dep::Mode::Hardware;
            d.fitMode = fit;
            dep::DepGraphExecutor e(d, env.config().engine);
            const auto r = runEngine(e, env.config(), g, algo);
            t.addRow({algo,
                      fit == dep::FitMode::TwoPoint ? "two-point"
                                                    : "compose",
                      Table::fmt(simMs(r.metrics.makespan), 3),
                      Table::fmt(r.metrics.updates),
                      Table::fmt(r.metrics.shortcutsApplied)});
        }
    }
    t.print();
}

void
selectiveAblation(const BenchEnv &env, const graph::Graph &g)
{
    std::printf("\n--- 2. Maiter-style selective scheduling in "
                "Ligra-o (FS, pagerank) ---\n");
    Table t({"selective", "sim_ms", "updates", "rounds"});
    for (bool sel : {false, true}) {
        runtime::SoftEngine e(
            runtime::SoftConfig{"Ligra-o",
                                runtime::Schedule::PriorityDelta, true,
                                false, false, false, false, sel},
            env.config().engine);
        const auto r = runEngine(e, env.config(), g, "pagerank");
        t.addRow({sel ? "on" : "off",
                  Table::fmt(simMs(r.metrics.makespan), 3),
                  Table::fmt(r.metrics.updates),
                  Table::fmt(std::uint64_t{r.metrics.rounds})});
    }
    t.print();
}

void
mechanismAblation(const BenchEnv &env, const graph::Graph &g)
{
    std::printf("\n--- 3. accelerator mechanisms on Ligra-o "
                "(FS, pagerank) ---\n");
    struct Mech
    {
        const char *name;
        runtime::SoftConfig cfg;
    };
    const runtime::SoftConfig base{
        "Ligra-o", runtime::Schedule::PriorityDelta, true, false,
        false, false, false, true};
    std::vector<Mech> mechs;
    mechs.push_back({"baseline", base});
    {
        auto c = base;
        c.hwWorklist = true;
        mechs.push_back({"+hw worklist", c});
    }
    {
        auto c = base;
        c.hwWorklist = true;
        c.prefetchVertexData = true;
        mechs.push_back({"+worklist prefetch", c});
    }
    {
        auto c = base;
        c.cheapScatter = true;
        mechs.push_back({"+in-hierarchy scatter", c});
    }
    {
        auto c = base;
        c.hwScheduler = true;
        c.schedule = runtime::Schedule::PathSweep;
        mechs.push_back({"+hw BDFS scheduling", c});
    }

    Table t({"mechanism", "sim_ms", "speedup"});
    double base_ms = 0.0;
    for (const auto &m : mechs) {
        runtime::SoftEngine e(m.cfg, env.config().engine);
        const auto r = runEngine(e, env.config(), g, "pagerank");
        const double ms = simMs(r.metrics.makespan);
        if (m.name == std::string("baseline"))
            base_ms = ms;
        t.addRow({m.name, Table::fmt(ms, 3),
                  Table::fmt(base_ms / ms, 2) + "x"});
    }
    t.print();
}

void
hubAblation(const BenchEnv &env, const graph::Graph &g)
{
    std::printf("\n--- 4. hub index per algorithm class (FS) ---\n");
    Table t({"algorithm", "variant", "sim_ms", "updates", "rounds"});
    for (const auto *algo : {"pagerank", "sssp", "wcc",
                             "adsorption"}) {
        for (bool hub : {false, true}) {
            dep::DepOptions d;
            d.mode = dep::Mode::Hardware;
            d.hubIndexEnabled = hub;
            dep::DepGraphExecutor e(d, env.config().engine);
            const auto r = runEngine(e, env.config(), g, algo);
            t.addRow({algo, hub ? "DepGraph-H" : "DepGraph-H-w",
                      Table::fmt(simMs(r.metrics.makespan), 3),
                      Table::fmt(r.metrics.updates),
                      Table::fmt(std::uint64_t{r.metrics.rounds})});
        }
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Design ablations",
           "internal: quantifies each design choice of the "
           "reproduction (no direct paper figure)",
           env);
    const auto g = graph::makeDataset("FS", env.scale);
    fitModeAblation(env, g);
    selectiveAblation(env, g);
    mechanismAblation(env, g);
    hubAblation(env, g);
    return 0;
}
