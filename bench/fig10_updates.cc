/**
 * @file
 * Reproduces Fig. 10: number of vertex-state updates of DepGraph-S and
 * DepGraph-H normalized to Ligra-o (paper: DepGraph-H reduces Ligra-o
 * updates by 61.4-82.2%; DepGraph-H is slightly above DepGraph-S).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace depgraph;
using namespace depgraph::bench;

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Fig. 10: updates normalized to Ligra-o",
           "DepGraph-H needs only 0.18-0.39x of Ligra-o's updates, "
           "marginally more than DepGraph-S",
           env);

    Table t({"dataset", "algorithm", "LigraO_upd", "DG-S_norm",
             "DG-H_norm", "reduction"});
    for (const auto &ds : graph::datasetNames()) {
        const auto g = graph::makeDataset(ds, env.scale);
        for (const auto &algo : gas::paperAlgorithms()) {
            const auto base =
                runOne(env.config(), g, algo, Solution::LigraO);
            const auto s =
                runOne(env.config(), g, algo, Solution::DepGraphS);
            const auto h =
                runOne(env.config(), g, algo, Solution::DepGraphH);
            const auto bu = static_cast<double>(base.metrics.updates);
            t.addRow({ds, algo, Table::fmt(base.metrics.updates),
                      Table::fmt(s.metrics.updates / bu, 3),
                      Table::fmt(h.metrics.updates / bu, 3),
                      Table::fmt(100.0 * (1.0 - h.metrics.updates / bu),
                                 1) + "%"});
        }
    }
    t.print();
    return 0;
}
