/**
 * @file
 * Reproduces Fig. 15: sensitivity of DepGraph-H to the HDTL traversal
 * stack depth (paper: performance is almost flat beyond depth 10, so
 * a fixed depth-10 stack suffices -- 6.1 Kbit of storage).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace depgraph;
using namespace depgraph::bench;

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Fig. 15: HDTL stack-depth sensitivity (FS)",
           "performance is flat after depth 10",
           env);

    const auto g = graph::makeDataset("FS", env.scale);
    Table t({"stack_depth", "pagerank_ms", "sssp_ms"});
    for (unsigned depth : {2u, 4u, 6u, 8u, 10u, 16u, 24u, 32u}) {
        auto cfg = env.config();
        cfg.engine.stackDepth = depth;
        const auto pr = runOne(cfg, g, "pagerank",
                               Solution::DepGraphH);
        const auto sp = runOne(cfg, g, "sssp", Solution::DepGraphH);
        t.addRow({Table::fmt(std::uint64_t{depth}),
                  Table::fmt(simMs(pr.metrics.makespan), 3),
                  Table::fmt(simMs(sp.metrics.makespan), 3)});
    }
    t.print();
    return 0;
}
