/**
 * @file
 * wal_overhead -- what durability costs, per fsync policy.
 *
 * Two measurements, both written to BENCH_wal.json:
 *
 *  1. raw WAL layer: records/s and MB/s of framed Mutate appends with
 *     a Marker + group-commit every --raw_batch records, for each of
 *     `off`, `batch` and `always`. `always` fsyncs per append and is
 *     run with fewer records (--raw_always_ops) so the bench finishes
 *     on slow disks.
 *
 *  2. serving path: sustained update throughput of a GraphService
 *     (enqueue -> threshold batch flush -> incremental reconvergence
 *     -> publish) with durability disabled ("none") and with a WAL
 *     under each sync policy. Each configuration runs --reps times and
 *     the best run counts, damping scheduler noise.
 *
 * The CI gate: --gate-off-pct 5 fails the bench when `--wal_sync=off`
 * serving throughput is more than 5% below the no-WAL baseline --
 * journaling to the page cache must stay almost free next to the
 * reconvergence work it rides along with.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "durability/record.hh"
#include "durability/wal.hh"
#include "graph/generators.hh"
#include "service/service.hh"

using namespace depgraph;

namespace
{

namespace fs = std::filesystem;

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
freshDir()
{
    char tmpl[] = "/tmp/dg_wal_bench_XXXXXX";
    const char *d = ::mkdtemp(tmpl);
    if (!d) {
        std::perror("mkdtemp");
        std::exit(EXIT_FAILURE);
    }
    return d;
}

/** Deterministic edge stream; dupes are fine (inserts append). */
struct EdgeGen
{
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    VertexId n;

    explicit EdgeGen(VertexId vertices) : n(vertices) {}

    gas::EdgeInsertion
    next()
    {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const auto s = static_cast<VertexId>(x % n);
        const auto d = static_cast<VertexId>((x >> 32) % n);
        return {s, d, 1.0};
    }
};

struct RawResult
{
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    double wallMs = 0.0;
};

/** Append `ops` Mutate records with a Marker + group-commit every
 * `batch`, under one sync policy. */
RawResult
rawWal(durability::SyncPolicy policy, std::uint64_t ops,
       std::uint64_t batch, std::uint64_t edgesPerRecord)
{
    const auto dir = freshDir();
    durability::WalFile wal;
    std::string err;
    if (!wal.open(dir + "/bench.wal", &err)) {
        std::fprintf(stderr, "wal open: %s\n", err.c_str());
        std::exit(EXIT_FAILURE);
    }

    EdgeGen gen(100'000);
    std::vector<gas::EdgeInsertion> ins;
    for (std::uint64_t i = 0; i < edgesPerRecord; ++i)
        ins.push_back(gen.next());
    const auto payload = durability::encodeMutate("bench", ins, {});
    const auto marker = durability::encodeMarker("bench");
    const bool syncEach = policy == durability::SyncPolicy::Always;

    RawResult r;
    const double t0 = nowMs();
    for (std::uint64_t i = 0; i < ops; ++i) {
        if (!wal.append(payload, syncEach, &err)) {
            std::fprintf(stderr, "append: %s\n", err.c_str());
            std::exit(EXIT_FAILURE);
        }
        if ((i + 1) % batch == 0) {
            // Group-commit boundary, exactly as the batcher flush
            // drives it: marker record, then fsync under `batch`.
            wal.append(marker, syncEach, &err);
            if (policy == durability::SyncPolicy::Batch)
                wal.sync(&err);
        }
    }
    r.wallMs = nowMs() - t0;
    r.records = ops;
    r.bytes = wal.appendedBytes();
    wal.close();
    fs::remove_all(dir);
    return r;
}

struct ServeResult
{
    std::uint64_t updates = 0;
    double wallMs = 0.0;
    std::uint64_t flushes = 0;
};

/** One serving run: load a graph, stream `total` edges in requests of
 * `perReq`, final flush. `policy` empty = durability off. */
ServeResult
serveOnce(const std::string &policyName, VertexId n, double degree,
          std::uint64_t total, std::uint64_t perReq,
          std::size_t threshold)
{
    service::ServiceOptions opt;
    opt.pool.numThreads = 2;
    opt.pool.queueCapacity = 128;
    opt.pool.blockWhenFull = true;
    opt.batcher.maxPendingEdges = threshold;
    opt.batcher.solution = Solution::Sequential;

    std::string dir;
    if (policyName != "none") {
        dir = freshDir();
        opt.durability.dataDir = dir;
        durability::SyncPolicy p{};
        if (!durability::parseSyncPolicy(policyName, p)) {
            std::fprintf(stderr, "bad policy %s\n",
                         policyName.c_str());
            std::exit(EXIT_FAILURE);
        }
        opt.durability.sync = p;
    }

    ServeResult r;
    {
        service::GraphService svc(opt);
        svc.loadGraph("g", graph::powerLaw(n, 2.0, degree,
                                           {.seed = 42}));
        // Warm the fixpoint cache so threshold flushes reconverge
        // incrementally, the steady-state serving shape.
        svc.query({.graph = "g", .algorithm = "pagerank"})
            .get();

        EdgeGen gen(n);
        const double t0 = nowMs();
        for (std::uint64_t sent = 0; sent < total;) {
            std::vector<gas::EdgeInsertion> req;
            for (std::uint64_t i = 0; i < perReq && sent < total;
                 ++i, ++sent)
                req.push_back(gen.next());
            const auto resp =
                svc.streamUpdates("g", std::move(req)).get();
            if (!resp.ok()) {
                std::fprintf(stderr, "update failed: %s\n",
                             resp.error.c_str());
                std::exit(EXIT_FAILURE);
            }
        }
        svc.flush("g").get();
        r.wallMs = nowMs() - t0;
        r.updates = total;
        r.flushes = svc.stats().batchesApplied;
        svc.shutdown();
    }
    if (!dir.empty())
        fs::remove_all(dir);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchEnv env;
    env.opts.declare("raw_ops", "4000",
                     "raw WAL appends for off/batch");
    env.opts.declare("raw_always_ops", "400",
                     "raw WAL appends for always (fsync per record)");
    env.opts.declare("raw_batch", "32",
                     "records per raw group-commit");
    env.opts.declare("raw_edges", "8", "edges per Mutate record");
    env.opts.declare("n", "2000", "serving graph vertices");
    env.opts.declare("degree", "6", "serving graph average degree");
    env.opts.declare("updates", "4000",
                     "edges streamed per serving run");
    env.opts.declare("per_req", "8", "edges per update request");
    env.opts.declare("threshold", "256",
                     "batcher flush threshold (edges)");
    env.opts.declare("reps", "3", "serving runs per policy (best "
                                  "counts)");
    env.opts.declare("json", "BENCH_wal.json",
                     "output path for the JSON records");
    env.opts.declare("gate-off-pct", "0",
                     "fail when wal_sync=off serving throughput is "
                     "more than this % below no-WAL (0 = no gate)");
    env.parse(argc, argv);

    const auto rawOps =
        static_cast<std::uint64_t>(env.opts.getInt("raw_ops"));
    const auto rawAlwaysOps =
        static_cast<std::uint64_t>(env.opts.getInt("raw_always_ops"));
    const auto rawBatch =
        static_cast<std::uint64_t>(env.opts.getInt("raw_batch"));
    const auto rawEdges =
        static_cast<std::uint64_t>(env.opts.getInt("raw_edges"));
    const auto n = static_cast<VertexId>(env.opts.getInt("n"));
    const auto degree = env.opts.getDouble("degree");
    const auto updates =
        static_cast<std::uint64_t>(env.opts.getInt("updates"));
    const auto perReq =
        static_cast<std::uint64_t>(env.opts.getInt("per_req"));
    const auto threshold =
        static_cast<std::size_t>(env.opts.getInt("threshold"));
    const int reps = static_cast<int>(env.opts.getInt("reps"));
    const double gatePct = env.opts.getDouble("gate-off-pct");

    bench::JsonRecords json;

    /* 1. Raw WAL layer. */
    std::printf("=== WAL overhead ===\n\n");
    std::printf("raw journal appends (%llu edges/record, "
                "group-commit every %llu):\n",
                static_cast<unsigned long long>(rawEdges),
                static_cast<unsigned long long>(rawBatch));
    Table rawTable({"policy", "records", "wall ms", "records/s",
                    "MB/s"});
    const durability::SyncPolicy policies[] = {
        durability::SyncPolicy::Off, durability::SyncPolicy::Batch,
        durability::SyncPolicy::Always};
    for (auto p : policies) {
        const auto ops = p == durability::SyncPolicy::Always
            ? rawAlwaysOps
            : rawOps;
        const auto r = rawWal(p, ops, rawBatch, rawEdges);
        const double perSec = r.wallMs > 0.0
            ? static_cast<double>(r.records) * 1000.0 / r.wallMs
            : 0.0;
        const double mbps = r.wallMs > 0.0
            ? static_cast<double>(r.bytes) / 1048.576 / r.wallMs
            : 0.0;
        rawTable.addRow({durability::syncPolicyName(p),
                         std::to_string(r.records),
                         Table::fmt(r.wallMs, 1),
                         Table::fmt(perSec, 0), Table::fmt(mbps, 1)});
        json.beginRecord()
            .field("section", "raw_wal")
            .field("policy", durability::syncPolicyName(p))
            .field("records", r.records)
            .field("bytes", r.bytes)
            .field("wall_ms", r.wallMs)
            .field("records_per_sec", perSec)
            .field("mb_per_sec", mbps);
    }
    rawTable.print();

    /* 2. Serving path. */
    std::printf("\nserving throughput (%llu updates, %llu/request, "
                "flush threshold %zu, best of %d):\n",
                static_cast<unsigned long long>(updates),
                static_cast<unsigned long long>(perReq), threshold,
                reps);
    const char *modes[] = {"none", "off", "batch", "always"};
    double upsByMode[4] = {0, 0, 0, 0};
    Table serveTable({"wal_sync", "wall ms", "updates/s", "flushes",
                      "vs none"});
    for (int m = 0; m < 4; ++m) {
        ServeResult best;
        for (int rep = 0; rep < reps; ++rep) {
            const auto r = serveOnce(modes[m], n, degree, updates,
                                     perReq, threshold);
            if (rep == 0 || r.wallMs < best.wallMs)
                best = r;
        }
        const double ups = best.wallMs > 0.0
            ? static_cast<double>(best.updates) * 1000.0 / best.wallMs
            : 0.0;
        upsByMode[m] = ups;
        const double rel =
            upsByMode[0] > 0.0 ? ups / upsByMode[0] : 1.0;
        serveTable.addRow({modes[m], Table::fmt(best.wallMs, 1),
                           Table::fmt(ups, 0),
                           std::to_string(best.flushes),
                           Table::fmt(rel, 3)});
        json.beginRecord()
            .field("section", "serving")
            .field("policy", modes[m])
            .field("updates", best.updates)
            .field("wall_ms", best.wallMs)
            .field("updates_per_sec", ups)
            .field("batch_flushes", best.flushes)
            .field("relative_to_none", rel);
    }
    serveTable.print();

    const auto path = env.opts.getString("json");
    if (!json.writeFile(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return EXIT_FAILURE;
    }
    std::printf("\nwrote %s\n", path.c_str());

    if (gatePct > 0.0) {
        const double floor = upsByMode[0] * (1.0 - gatePct / 100.0);
        if (upsByMode[1] < floor) {
            std::fprintf(stderr,
                         "gate: FAILED wal_sync=off %.0f updates/s "
                         "is > %.1f%% below no-WAL %.0f\n",
                         upsByMode[1], gatePct, upsByMode[0]);
            return EXIT_FAILURE;
        }
        std::printf("gate: PASSED wal_sync=off within %.1f%% of "
                    "no-WAL (%.0f vs %.0f updates/s)\n",
                    gatePct, upsByMode[1], upsByMode[0]);
    }
    return EXIT_SUCCESS;
}
