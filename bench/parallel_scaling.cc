/**
 * @file
 * Strong-scaling sweep + carry-vs-rescan A/B for the native parallel
 * engine.
 *
 * Part 1 runs PageRank / SSSP / WCC on one R-MAT graph under
 * Solution::Parallel at 1, 2, 4 and 8 host threads and reports
 * wall-clock makespan, rounds and speedup versus the single-thread
 * run. Unlike the fig* binaries this measures REAL time on the host,
 * not simulated cycles, so results depend on the machine it runs on.
 *
 * Part 2 A/Bs the cross-round active-list carry against the legacy
 * full-range rescan (same graph, same thread count, best of --reps
 * runs per mode) and records per-round active-set sizes, so the
 * sparse-frontier tail the carry targets is visible in the archived
 * JSON.
 *
 * Emits BENCH_parallel.json (an array of per-run records) for CI to
 * archive, and optionally gates:
 *
 *   parallel_scaling --gate-pagerank-speedup 1.5
 *
 * exits non-zero if PageRank at 4 threads is not at least 1.5x faster
 * than at 1 thread. The gate auto-skips (with a note) when the host
 * exposes fewer than 4 hardware threads -- a single-core runner
 * physically cannot show parallel speedup, and failing there would
 * only test the CI fleet, not the engine.
 *
 *   parallel_scaling --gate-carry-pct 10
 *
 * exits non-zero if the carry-mode PageRank A/B run is more than 10%
 * slower than the rescan-mode run (carry must never lose beyond
 * noise; it runs on any host since both modes share the machine).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <thread>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "graph/generators.hh"
#include "obs/metrics.hh"

using namespace depgraph;

namespace
{

std::string
joinRounds(const std::vector<std::uint64_t> &xs)
{
    std::string s;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i)
            s += ',';
        s += std::to_string(xs[i]);
    }
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchEnv env;
    env.opts.declare("n", "65536", "R-MAT vertex count (power of two)");
    env.opts.declare("degree", "16", "R-MAT average degree");
    env.opts.declare("seed", "42", "R-MAT seed");
    env.opts.declare("reps", "3",
                     "runs per mode in the carry A/B (best-of)");
    env.opts.declare("ab-threads", "0",
                     "thread count for the carry A/B (0 = min(4, "
                     "hardware threads))");
    env.opts.declare("json", "BENCH_parallel.json",
                     "output path for the JSON records");
    env.opts.declare("gate-pagerank-speedup", "0",
                     "fail unless pagerank 4-thread speedup >= this "
                     "(0 = no gate; auto-skips on <4 hardware threads)");
    env.opts.declare("gate-carry-pct", "0",
                     "fail if carry-mode pagerank is more than this "
                     "many percent slower than rescan mode (0 = no "
                     "gate)");
    env.parse(argc, argv);

    const auto n = static_cast<VertexId>(env.opts.getInt("n"));
    const auto degree = env.opts.getDouble("degree");
    graph::GenOptions gopt;
    gopt.seed = static_cast<std::uint64_t>(env.opts.getInt("seed"));
    unsigned lg = 0;
    while ((VertexId{1} << (lg + 1)) <= n)
        ++lg;
    const auto g = graph::rmat(
        lg, static_cast<EdgeId>(degree * static_cast<double>(n)), 0.57,
        0.19, 0.19, gopt);

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("=== parallel engine strong scaling ===\n");
    std::printf("graph: R-MAT 2^%u, %u vertices, %llu edges\n", lg,
                g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()));
    std::printf("host: %u hardware threads\n\n", hw);

    const char *algos[] = {"pagerank", "sssp", "wcc"};
    const unsigned threads[] = {1, 2, 4, 8};

    bench::JsonRecords json;
    // (algo, threads) -> wall ms, for the table and the gate.
    std::map<std::pair<std::string, unsigned>, double> wall;

    for (const char *algo : algos) {
        for (unsigned t : threads) {
            SystemConfig cfg;
            cfg.engine.hostThreads = t;
            DepGraphSystem sys(cfg);
            const auto r = sys.run(g, algo, Solution::Parallel);
            const double ms =
                static_cast<double>(r.metrics.makespan) / 1e6;
            wall[{algo, t}] = ms;
            json.beginRecord()
                .field("section", "scaling")
                .field("mode", "carry")
                .field("algo", algo)
                .field("threads", t)
                .field("hardware_threads", hw)
                .field("vertices", std::uint64_t{g.numVertices()})
                .field("edges", std::uint64_t{g.numEdges()})
                .field("wall_ms", ms)
                .field("rounds", std::uint64_t{r.metrics.rounds})
                .field("updates", r.metrics.updates)
                .field("edge_ops", r.metrics.edgeOps)
                .field("actives_carried", r.metrics.activesCarried)
                .field("rescan_fallbacks", r.metrics.rescanFallbacks)
                .field("chunk_final",
                       std::uint64_t{r.metrics.chunkSizeFinal})
                .field("converged", r.metrics.converged)
                .field("speedup_vs_1t",
                       wall[{algo, 1u}] > 0.0
                           ? wall[{algo, 1u}] / ms
                           : 1.0);
            std::printf("  %-8s t=%u  %9.1f ms  %4llu rounds  "
                        "speedup %.2fx\n",
                        algo, t, ms,
                        static_cast<unsigned long long>(
                            r.metrics.rounds),
                        wall[{algo, 1u}] / ms);
        }
    }

    Table table({"algo", "t=1 ms", "t=2 ms", "t=4 ms", "t=8 ms",
                 "4t speedup"});
    for (const char *algo : algos) {
        const double s4 = wall[{algo, 1u}] / wall[{algo, 4u}];
        table.addRow({algo, Table::fmt(wall[{algo, 1u}], 1),
                      Table::fmt(wall[{algo, 2u}], 1),
                      Table::fmt(wall[{algo, 4u}], 1),
                      Table::fmt(wall[{algo, 8u}], 1),
                      Table::fmt(s4, 2)});
    }
    std::printf("\n");
    table.print();

    /* ---- Carry vs rescan A/B. ---- */
    unsigned ab_t =
        static_cast<unsigned>(env.opts.getInt("ab-threads"));
    if (ab_t == 0)
        ab_t = std::min(4u, std::max(1u, hw));
    const auto reps =
        std::max(1, static_cast<int>(env.opts.getInt("reps")));
    std::printf("\n=== carry vs rescan (t=%u, best of %d) ===\n", ab_t,
                reps);
    // algo -> best wall ms per mode, for the gate below.
    std::map<std::string, double> abCarry, abRescan;
    for (const char *algo : algos) {
        for (const bool carry : {false, true}) {
            double best = 0.0;
            std::uint64_t carried = 0, fallbacks = 0, rounds = 0;
            std::string actives;
            for (int rep = 0; rep < reps; ++rep) {
                SystemConfig cfg;
                cfg.engine.hostThreads = ab_t;
                cfg.engine.carryActiveList = carry;
                DepGraphSystem sys(cfg);
                const auto r = sys.run(g, algo, Solution::Parallel);
                const double ms =
                    static_cast<double>(r.metrics.makespan) / 1e6;
                if (rep == 0 || ms < best) {
                    best = ms;
                    carried = r.metrics.activesCarried;
                    fallbacks = r.metrics.rescanFallbacks;
                    rounds = r.metrics.rounds;
                    actives = joinRounds(r.roundActives);
                }
            }
            (carry ? abCarry : abRescan)[algo] = best;
            json.beginRecord()
                .field("section", "carry_ab")
                .field("mode", carry ? "carry" : "rescan")
                .field("algo", algo)
                .field("threads", ab_t)
                .field("reps", static_cast<std::uint64_t>(reps))
                .field("wall_ms", best)
                .field("rounds", rounds)
                .field("actives_carried", carried)
                .field("rescan_fallbacks", fallbacks)
                .field("round_actives", actives);
            std::printf("  %-8s %-6s  %9.1f ms  %4llu rounds  "
                        "carried %llu  fallbacks %llu\n",
                        algo, carry ? "carry" : "rescan", best,
                        static_cast<unsigned long long>(rounds),
                        static_cast<unsigned long long>(carried),
                        static_cast<unsigned long long>(fallbacks));
        }
        const double ratio = abRescan[algo] > 0.0
            ? abCarry[algo] / abRescan[algo]
            : 1.0;
        std::printf("  %-8s carry/rescan = %.3f\n", algo, ratio);
    }

    const auto path = env.opts.getString("json");
    if (!json.writeFile(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());

    const double gate =
        env.opts.getDouble("gate-pagerank-speedup");
    if (gate > 0.0) {
        if (hw < 4) {
            std::printf("gate: SKIPPED (host has %u hardware threads; "
                        "parallel speedup needs >= 4)\n", hw);
        } else {
            const double s4 =
                wall[{"pagerank", 1u}] / wall[{"pagerank", 4u}];
            if (s4 < gate) {
                std::fprintf(stderr,
                             "gate: FAILED pagerank 4-thread speedup "
                             "%.2fx < required %.2fx\n", s4, gate);
                return 1;
            }
            std::printf("gate: PASSED pagerank 4-thread speedup "
                        "%.2fx >= %.2fx\n", s4, gate);
        }
    }

    const double carry_pct = env.opts.getDouble("gate-carry-pct");
    if (carry_pct > 0.0) {
        const double allowed =
            abRescan["pagerank"] * (1.0 + carry_pct / 100.0);
        if (abCarry["pagerank"] > allowed) {
            std::fprintf(stderr,
                         "gate: FAILED carry pagerank %.1f ms > "
                         "rescan %.1f ms + %.0f%% margin\n",
                         abCarry["pagerank"], abRescan["pagerank"],
                         carry_pct);
            return 1;
        }
        std::printf("gate: PASSED carry pagerank %.1f ms <= rescan "
                    "%.1f ms + %.0f%% margin\n",
                    abCarry["pagerank"], abRescan["pagerank"],
                    carry_pct);
    }
    return 0;
}
