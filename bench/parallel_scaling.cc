/**
 * @file
 * Strong-scaling sweep for the native parallel engine.
 *
 * Runs PageRank / SSSP / WCC on one R-MAT graph under
 * Solution::Parallel at 1, 2, 4 and 8 host threads and reports
 * wall-clock makespan, rounds and speedup versus the single-thread
 * run. Unlike the fig* binaries this measures REAL time on the host,
 * not simulated cycles, so results depend on the machine it runs on.
 *
 * Emits BENCH_parallel.json (an array of per-run records) for CI to
 * archive, and optionally gates on the 4-thread PageRank speedup:
 *
 *   parallel_scaling --gate-pagerank-speedup 1.5
 *
 * exits non-zero if PageRank at 4 threads is not at least 1.5x faster
 * than at 1 thread. The gate auto-skips (with a note) when the host
 * exposes fewer than 4 hardware threads -- a single-core runner
 * physically cannot show parallel speedup, and failing there would
 * only test the CI fleet, not the engine.
 */

#include <cmath>
#include <cstdio>
#include <map>
#include <thread>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "graph/generators.hh"
#include "obs/metrics.hh"

using namespace depgraph;

int
main(int argc, char **argv)
{
    bench::BenchEnv env;
    env.opts.declare("n", "65536", "R-MAT vertex count (power of two)");
    env.opts.declare("degree", "16", "R-MAT average degree");
    env.opts.declare("seed", "42", "R-MAT seed");
    env.opts.declare("json", "BENCH_parallel.json",
                     "output path for the JSON records");
    env.opts.declare("gate-pagerank-speedup", "0",
                     "fail unless pagerank 4-thread speedup >= this "
                     "(0 = no gate; auto-skips on <4 hardware threads)");
    env.parse(argc, argv);

    const auto n = static_cast<VertexId>(env.opts.getInt("n"));
    const auto degree = env.opts.getDouble("degree");
    graph::GenOptions gopt;
    gopt.seed = static_cast<std::uint64_t>(env.opts.getInt("seed"));
    unsigned lg = 0;
    while ((VertexId{1} << (lg + 1)) <= n)
        ++lg;
    const auto g = graph::rmat(
        lg, static_cast<EdgeId>(degree * static_cast<double>(n)), 0.57,
        0.19, 0.19, gopt);

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("=== parallel engine strong scaling ===\n");
    std::printf("graph: R-MAT 2^%u, %u vertices, %llu edges\n", lg,
                g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()));
    std::printf("host: %u hardware threads\n\n", hw);

    const char *algos[] = {"pagerank", "sssp", "wcc"};
    const unsigned threads[] = {1, 2, 4, 8};

    bench::JsonRecords json;
    // (algo, threads) -> wall ms, for the table and the gate.
    std::map<std::pair<std::string, unsigned>, double> wall;

    for (const char *algo : algos) {
        for (unsigned t : threads) {
            SystemConfig cfg;
            cfg.engine.hostThreads = t;
            DepGraphSystem sys(cfg);
            const auto r = sys.run(g, algo, Solution::Parallel);
            const double ms =
                static_cast<double>(r.metrics.makespan) / 1e6;
            wall[{algo, t}] = ms;
            json.beginRecord()
                .field("algo", algo)
                .field("threads", t)
                .field("hardware_threads", hw)
                .field("vertices", std::uint64_t{g.numVertices()})
                .field("edges", std::uint64_t{g.numEdges()})
                .field("wall_ms", ms)
                .field("rounds", std::uint64_t{r.metrics.rounds})
                .field("updates", r.metrics.updates)
                .field("edge_ops", r.metrics.edgeOps)
                .field("converged", r.metrics.converged)
                .field("speedup_vs_1t",
                       wall[{algo, 1u}] > 0.0
                           ? wall[{algo, 1u}] / ms
                           : 1.0);
            std::printf("  %-8s t=%u  %9.1f ms  %4llu rounds  "
                        "speedup %.2fx\n",
                        algo, t, ms,
                        static_cast<unsigned long long>(
                            r.metrics.rounds),
                        wall[{algo, 1u}] / ms);
        }
    }

    Table table({"algo", "t=1 ms", "t=2 ms", "t=4 ms", "t=8 ms",
                 "4t speedup"});
    for (const char *algo : algos) {
        const double s4 = wall[{algo, 1u}] / wall[{algo, 4u}];
        table.addRow({algo, Table::fmt(wall[{algo, 1u}], 1),
                      Table::fmt(wall[{algo, 2u}], 1),
                      Table::fmt(wall[{algo, 4u}], 1),
                      Table::fmt(wall[{algo, 8u}], 1),
                      Table::fmt(s4, 2)});
    }
    std::printf("\n");
    table.print();

    const auto path = env.opts.getString("json");
    if (!json.writeFile(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());

    const double gate =
        env.opts.getDouble("gate-pagerank-speedup");
    if (gate > 0.0) {
        if (hw < 4) {
            std::printf("gate: SKIPPED (host has %u hardware threads; "
                        "parallel speedup needs >= 4)\n", hw);
            return 0;
        }
        const double s4 =
            wall[{"pagerank", 1u}] / wall[{"pagerank", 4u}];
        if (s4 < gate) {
            std::fprintf(stderr,
                         "gate: FAILED pagerank 4-thread speedup "
                         "%.2fx < required %.2fx\n", s4, gate);
            return 1;
        }
        std::printf("gate: PASSED pagerank 4-thread speedup %.2fx "
                    ">= %.2fx\n", s4, gate);
    }
    return 0;
}
