/**
 * @file
 * Reproduces Fig. 13: scalability with core count on FS (paper:
 * DepGraph-H keeps improving as cores grow because its effective data
 * parallelism holds; HATS/Minnow/PHI flatten as stale updates grow
 * with the thread count).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace depgraph;
using namespace depgraph::bench;

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Fig. 13: scalability with core count (FS, pagerank)",
           "DepGraph-H scales better than HATS/Minnow/PHI up to 64 "
           "cores",
           env);

    const auto g = graph::makeDataset("FS", env.scale);
    Table t({"cores", "Ligra-o", "HATS", "Minnow", "PHI", "DG-H",
             "DG-H speedup"});
    for (unsigned c : {8u, 16u, 32u, 64u}) {
        auto cfg = env.config();
        cfg.machine.numCores = c;
        cfg.engine.numCores = c;
        std::vector<std::string> row{
            Table::fmt(std::uint64_t{c})};
        double base_ms = 0.0, dg_ms = 0.0;
        for (auto s : {Solution::LigraO, Solution::Hats,
                       Solution::Minnow, Solution::Phi,
                       Solution::DepGraphH}) {
            const auto r = runOne(cfg, g, "pagerank", s);
            const double ms = simMs(r.metrics.makespan);
            if (s == Solution::LigraO)
                base_ms = ms;
            if (s == Solution::DepGraphH)
                dg_ms = ms;
            row.push_back(Table::fmt(ms, 3));
        }
        row.push_back(Table::fmt(base_ms / dg_ms, 2) + "x");
        t.addRow(row);
    }
    t.print();
    return 0;
}
