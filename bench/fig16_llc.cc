/**
 * @file
 * Reproduces Fig. 16: (a) sensitivity to LLC (L3) size; (b) impact of
 * the LLC replacement policy (LRU / DRRIP / GRASP) on DepGraph-H
 * (paper: DepGraph-H wins at every LLC size; GRASP > DRRIP > LRU
 * because a better policy keeps the hub index resident).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace depgraph;
using namespace depgraph::bench;

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Fig. 16: LLC size and replacement-policy sensitivity "
           "(FS, pagerank)",
           "DepGraph-H leads at all LLC sizes; GRASP best, then "
           "DRRIP, then LRU",
           env);

    const auto g = graph::makeDataset("FS", env.scale);

    std::printf("--- Fig. 16(a): LLC size sweep ---\n");
    Table a({"llc_kb", "Ligra-o_ms", "PHI_ms", "DG-H_ms"});
    // The stand-ins are ~1000x smaller than the paper's graphs, so the
    // LLC sweep scales down from Table II's 32..256 MB range likewise:
    // the interesting band is where the scaled working set stops
    // fitting.
    for (std::size_t kb : {256u, 512u, 1024u, 2048u, 4096u}) {
        auto cfg = env.config();
        cfg.machine.l3TotalBytes = kb * 1024;
        std::vector<std::string> row{Table::fmt(std::uint64_t{kb})};
        for (auto s : {Solution::LigraO, Solution::Phi,
                       Solution::DepGraphH}) {
            const auto r = runOne(cfg, g, "pagerank", s);
            row.push_back(Table::fmt(simMs(r.metrics.makespan), 3));
        }
        a.addRow(row);
    }
    a.print();

    std::printf("\n--- Fig. 16(b): LLC replacement policy ---\n");
    Table b({"policy", "DG-H_ms", "l3_hit_rate"});
    for (auto pol : {sim::ReplPolicy::LRU, sim::ReplPolicy::DRRIP,
                     sim::ReplPolicy::GRASP}) {
        auto cfg = env.config();
        cfg.machine.l3Policy = pol;
        cfg.machine.l3TotalBytes = 512 * 1024; // pressured LLC
        const auto r = runOne(cfg, g, "pagerank", Solution::DepGraphH);
        b.addRow({sim::replPolicyName(pol),
                  Table::fmt(simMs(r.metrics.makespan), 3),
                  Table::fmt(r.memStats.l3.hitRate(), 3)});
    }
    b.print();
    return 0;
}
