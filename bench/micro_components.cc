/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot components:
 * cache lookups under the three replacement policies, NoC routing,
 * hub-index probes, and the HDTL pipeline model. These measure the
 * HOST cost of the simulation primitives (they bound how fast the
 * figure benchmarks can run), not simulated time.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "depgraph/ddmu.hh"
#include "depgraph/engine_model.hh"
#include "sim/cache.hh"
#include "sim/machine.hh"
#include "sim/noc.hh"

namespace
{

using namespace depgraph;

void
BM_CacheAccess(benchmark::State &state)
{
    const auto policy = static_cast<sim::ReplPolicy>(state.range(0));
    sim::Cache c("bm", 256 * 1024, 8, 64, policy);
    Rng rng(1);
    for (auto _ : state) {
        const Addr a = (rng.next() & 0xfffff) << 6;
        if (!c.access(a, false))
            c.fill(a);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess)
    ->Arg(static_cast<int>(sim::ReplPolicy::LRU))
    ->Arg(static_cast<int>(sim::ReplPolicy::DRRIP))
    ->Arg(static_cast<int>(sim::ReplPolicy::GRASP));

void
BM_MachineAccess(benchmark::State &state)
{
    sim::MachineParams p;
    p.numCores = 8;
    p.l3TotalBytes = 8 * 1024 * 1024;
    p.l3Banks = 8;
    sim::Machine m(p);
    const Addr base = m.mem().alloc("bm", 1 << 22);
    Rng rng(2);
    for (auto _ : state) {
        const Addr a = base + (rng.next() & 0x3fffff);
        benchmark::DoNotOptimize(
            m.access(static_cast<unsigned>(rng.nextBounded(8)), a, 8,
                     false));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MachineAccess);

void
BM_NocRouting(benchmark::State &state)
{
    sim::MachineParams p;
    sim::MeshNoc noc(p);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(noc.transfer(
            static_cast<unsigned>(rng.nextBounded(64)),
            static_cast<unsigned>(rng.nextBounded(64))));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NocRouting);

void
BM_HubIndexProbe(benchmark::State &state)
{
    sim::MachineParams p;
    p.numCores = 2;
    p.l3TotalBytes = 2 * 1024 * 1024;
    p.l3Banks = 2;
    sim::Machine m(p);
    dep::HubIndex idx(m, 1024, 4096);
    dep::Ddmu ddmu(idx);
    gas::LinearFunc f{0.5, 1.0, kInfinity};
    for (VertexId h = 0; h < 1024; ++h) {
        ddmu.observe(h, h + 1, h, 1.0, 1.5, f, dep::FitMode::Compose);
    }
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ddmu.tryShortcut(
            static_cast<VertexId>(rng.nextBounded(1024)),
            static_cast<VertexId>(rng.nextBounded(1024)), 2.0));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HubIndexProbe);

/**
 * entriesOf() directory lookup: arg 0 probes the byHead_ map fallback
 * (directory stale), arg 1 probes the flat sorted directory built by
 * flatten(). ~4096 entries over ~1024 heads, the regime of a warm
 * serving-layer hub index.
 */
void
BM_HubEntriesOf(benchmark::State &state)
{
    const bool flat = state.range(0) != 0;
    sim::MachineParams p;
    p.numCores = 2;
    p.l3TotalBytes = 2 * 1024 * 1024;
    p.l3Banks = 2;
    sim::Machine m(p);
    dep::HubIndex idx(m, 1024, 4096);
    Rng fill(7);
    for (std::size_t i = 0; i < 4096; ++i) {
        const auto h = static_cast<VertexId>(fill.nextBounded(1024));
        idx.findOrCreate(h, static_cast<VertexId>(1024 + i),
                         static_cast<VertexId>(i));
    }
    if (flat)
        idx.flatten();
    Rng rng(8);
    std::size_t total = 0;
    for (auto _ : state) {
        const auto span = idx.entriesOf(
            static_cast<VertexId>(rng.nextBounded(1024)));
        total += span.size();
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HubEntriesOf)->Arg(0)->Arg(1);

void
BM_PipelineModel(benchmark::State &state)
{
    dep::CorePipeline pl(64, /*hardware=*/true);
    for (auto _ : state) {
        pl.produce(12);
        benchmark::DoNotOptimize(pl.consume(5));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineModel);

} // namespace

BENCHMARK_MAIN();
