/**
 * @file
 * Reproduces Fig. 9: execution-time breakdown (vertex-state processing
 * vs other time) of Ligra-o, DepGraph-S, and DepGraph-H for the four
 * evaluated algorithms on all six datasets, plus the Sec. IV-A prose
 * numbers (DepGraph-S other-time share 57.9-95.0%, DepGraph-H other
 * time 30.2-78.2%, DepGraph-H speedup 5.0-22.7x, hub index memory
 * share 0.9-2.8%).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace depgraph;
using namespace depgraph::bench;

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Fig. 9: execution time breakdown",
           "DepGraph-S cuts state-processing time to 16.9-37.0% of "
           "Ligra-o but pays heavy runtime overhead; DepGraph-H "
           "removes it and wins 5.0-22.7x overall",
           env);

    Table t({"dataset", "algorithm", "solution", "sim_ms",
             "state_ms", "other_ms", "other_share", "speedup",
             "hubidx_mem"});
    for (const auto &ds : graph::datasetNames()) {
        const auto g = graph::makeDataset(ds, env.scale);
        for (const auto &algo : gas::paperAlgorithms()) {
            double base_ms = 0.0;
            std::size_t total_mem = g.byteSize();
            for (auto s : {Solution::LigraO, Solution::DepGraphS,
                           Solution::DepGraphH}) {
                const auto r = runOne(env.config(), g, algo, s);
                const auto &mx = r.metrics;
                const double ms = simMs(mx.makespan);
                if (s == Solution::LigraO)
                    base_ms = ms;
                const double share = mx.otherTimeShare();
                const double state_ms = ms * (1.0 - share);
                std::string mem = "-";
                if (mx.hubIndexBytes) {
                    mem = Table::fmt(
                        100.0
                            * static_cast<double>(mx.hubIndexBytes)
                            / static_cast<double>(
                                total_mem + mx.hubIndexBytes),
                        2) + "%";
                }
                t.addRow({ds, algo, solutionName(s),
                          Table::fmt(ms, 3), Table::fmt(state_ms, 3),
                          Table::fmt(ms - state_ms, 3),
                          Table::fmt(share, 2),
                          Table::fmt(base_ms / ms, 2) + "x", mem});
            }
        }
    }
    t.print();
    return 0;
}
