/**
 * @file
 * Reproduces Fig. 18: sensitivity of DepGraph-H to the hub-fraction
 * lambda and the sampling fraction beta on FS with SSSP (paper: a
 * trade-off -- too many hubs bloat the hub index, too few miss useful
 * core-paths; the defaults lambda=0.5%, beta=0.001 sit in the sweet
 * spot).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace depgraph;
using namespace depgraph::bench;

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Fig. 18: lambda / beta sensitivity (FS, sssp)",
           "performance peaks near lambda=0.5%; beta mainly affects "
           "threshold estimation",
           env);

    const auto g = graph::makeDataset("FS", env.scale);

    std::printf("--- lambda sweep (beta = 0.001) ---\n");
    Table a({"lambda", "sim_ms", "hub_entries", "hubidx_KB",
             "shortcuts"});
    for (double lam : {0.0005, 0.001, 0.005, 0.01, 0.05}) {
        auto cfg = env.config();
        cfg.engine.hub.lambda = lam;
        // Sampling resolution must support the smallest lambda at
        // reproduction scale (the paper's graphs are large enough
        // that beta = 0.001 already samples thousands of vertices).
        cfg.engine.hub.beta = 0.05;
        const auto r = runOne(cfg, g, "sssp", Solution::DepGraphH);
        a.addRow({Table::fmt(100.0 * lam, 2) + "%",
                  Table::fmt(simMs(r.metrics.makespan), 3),
                  Table::fmt(r.metrics.hubIndexInserts),
                  Table::fmt(static_cast<double>(
                                 r.metrics.hubIndexBytes) / 1024.0,
                             1),
                  Table::fmt(r.metrics.shortcutsApplied)});
    }
    a.print();

    std::printf("\n--- beta sweep (lambda = 0.5%%) ---\n");
    Table b({"beta", "sim_ms", "hub_entries"});
    for (double beta : {0.0005, 0.001, 0.01, 0.1}) {
        auto cfg = env.config();
        cfg.engine.hub.lambda = 0.005;
        cfg.engine.hub.beta = beta;
        const auto r = runOne(cfg, g, "sssp", Solution::DepGraphH);
        b.addRow({Table::fmt(beta, 4),
                  Table::fmt(simMs(r.metrics.makespan), 3),
                  Table::fmt(r.metrics.hubIndexInserts)});
    }
    b.print();
    return 0;
}
