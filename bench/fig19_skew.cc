/**
 * @file
 * Reproduces Table V + Fig. 19: synthetic power-law graphs with a
 * fixed vertex count and Zipf factor alpha in {1.8..2.2} (paper:
 * lower alpha = heavier skew = denser graph; DepGraph-H's advantage
 * grows as alpha drops because more propagations ride the hub index).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace depgraph;
using namespace depgraph::bench;

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Table V + Fig. 19: synthetic skew sweep (pagerank)",
           "edges 667/246/104/56/37 M at 10M vertices; DepGraph-H "
           "wins more on lower alpha",
           env);

    // Table V uses 10M vertices; scaled down by the same factor as
    // the dataset stand-ins.
    const auto n = static_cast<VertexId>(100000 * env.scale);
    Table t({"alpha", "vertices", "edges", "Ligra-o_ms", "DG-H_ms",
             "speedup"});
    for (double alpha : {1.8, 1.9, 2.0, 2.1, 2.2}) {
        const auto g = graph::powerLawTableV(n, alpha, {.seed = 19});
        const auto base =
            runOne(env.config(), g, "pagerank", Solution::LigraO);
        const auto dg =
            runOne(env.config(), g, "pagerank", Solution::DepGraphH);
        t.addRow({Table::fmt(alpha, 1), Table::fmt(std::uint64_t{g.numVertices()}),
                  Table::fmt(std::uint64_t{g.numEdges()}),
                  Table::fmt(simMs(base.metrics.makespan), 3),
                  Table::fmt(simMs(dg.metrics.makespan), 3),
                  Table::fmt(
                      static_cast<double>(base.metrics.makespan)
                          / static_cast<double>(dg.metrics.makespan),
                      2) + "x"});
    }
    t.print();
    return 0;
}
