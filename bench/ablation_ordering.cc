/**
 * @file
 * Vertex-ordering ablation: how much of every engine's performance
 * comes from id-locality. The same FS stand-in is run under its
 * natural order, a random order (locality destroyed), RCM, and
 * degree-descending order. Range partitions and the state arrays both
 * depend on ids, so ordering moves cache hit rates AND the
 * cross-partition edge fraction -- the two levers the DepGraph paper's
 * whole evaluation stands on.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "graph/reorder.hh"

using namespace depgraph;
using namespace depgraph::bench;

int
main(int argc, char **argv)
{
    BenchEnv env;
    env.parse(argc, argv);
    banner("Vertex-ordering ablation (FS, pagerank)",
           "internal: quantifies the id-locality sensitivity of each "
           "solution (no direct paper figure)",
           env);

    const auto natural = graph::makeDataset("FS", env.scale);
    struct Variant
    {
        const char *name;
        graph::Graph g;
    };
    std::vector<Variant> variants;
    variants.push_back({"natural", natural});
    variants.push_back(
        {"random", graph::relabel(natural,
                                  graph::randomOrder(natural, 9))});
    variants.push_back(
        {"rcm", graph::relabel(natural, graph::rcmOrder(natural))});
    variants.push_back(
        {"degree", graph::relabel(natural,
                                  graph::degreeOrder(natural))});

    Table t({"ordering", "bandwidth", "Ligra-o_ms", "DG-H_ms",
             "DG-H_l2_hit", "speedup"});
    for (const auto &v : variants) {
        const auto base =
            runOne(env.config(), v.g, "pagerank", Solution::LigraO);
        const auto dg =
            runOne(env.config(), v.g, "pagerank",
                   Solution::DepGraphH);
        t.addRow({v.name,
                  Table::fmt(std::uint64_t{graph::bandwidth(v.g)}),
                  Table::fmt(simMs(base.metrics.makespan), 3),
                  Table::fmt(simMs(dg.metrics.makespan), 3),
                  Table::fmt(dg.memStats.l2.hitRate(), 3),
                  Table::fmt(static_cast<double>(base.metrics.makespan)
                                 / static_cast<double>(
                                     dg.metrics.makespan),
                             2) + "x"});
    }
    t.print();
    return 0;
}
