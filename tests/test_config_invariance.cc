/**
 * @file
 * Configuration-invariance properties: timing parameters (core count,
 * cache sizes, replacement policy, stack depth, FIFO capacity) may
 * change cycle counts but must NEVER change converged states. A
 * violation would mean the timing model leaks into functional
 * behaviour -- the worst class of simulator bug.
 */

#include <gtest/gtest.h>

#include "core/depgraph_system.hh"
#include "gas/reference.hh"
#include "graph/generators.hh"

namespace depgraph
{
namespace
{

using gas::maxStateDifference;
using graph::Graph;

const Graph &
testGraph()
{
    static const Graph g =
        graph::communityChain(4, 120, 2.0, 7.0, 2, {.seed = 701});
    return g;
}

const std::vector<Value> &
gold(const std::string &algo)
{
    static std::map<std::string, std::vector<Value>> cache;
    auto it = cache.find(algo);
    if (it != cache.end())
        return it->second;
    const auto alg = gas::makeAlgorithm(algo);
    auto r = gas::runReference(testGraph(), *alg);
    EXPECT_TRUE(r.converged);
    return cache.emplace(algo, std::move(r.states)).first->second;
}

struct Config
{
    std::string label;
    SystemConfig cfg;
};

std::vector<Config>
machineConfigs()
{
    std::vector<Config> out;
    for (unsigned cores : {1u, 3u, 8u, 16u}) {
        SystemConfig c;
        c.machine.numCores = cores;
        c.engine.numCores = cores;
        out.push_back({"cores" + std::to_string(cores), c});
    }
    {
        SystemConfig c;
        c.machine.numCores = 8;
        c.engine.numCores = 8;
        c.machine.l2.bytes = 32 * 1024;
        c.machine.l3TotalBytes = 512 * 1024;
        c.machine.l3Banks = 8;
        out.push_back({"tiny_caches", c});
    }
    {
        SystemConfig c;
        c.machine.numCores = 8;
        c.engine.numCores = 8;
        c.machine.l3Policy = sim::ReplPolicy::GRASP;
        out.push_back({"grasp", c});
    }
    {
        SystemConfig c;
        c.machine.numCores = 8;
        c.engine.numCores = 8;
        c.engine.stackDepth = 3;
        c.engine.fifoCapacity = 4;
        out.push_back({"tiny_engine", c});
    }
    {
        SystemConfig c;
        c.machine.numCores = 8;
        c.engine.numCores = 8;
        c.machine.dramLatency = 500;
        c.machine.hopCycles = 9;
        out.push_back({"slow_memory", c});
    }
    return out;
}

struct Case
{
    Config config;
    std::string algorithm;
    Solution solution;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    std::string s = info.param.config.label + "_"
        + info.param.algorithm + "_"
        + solutionName(info.param.solution);
    for (auto &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

class ConfigInvariance : public ::testing::TestWithParam<Case>
{};

TEST_P(ConfigInvariance, StatesIndependentOfTiming)
{
    const auto &[config, algo, solution] = GetParam();
    DepGraphSystem sys(config.cfg);
    const auto r = sys.run(testGraph(), algo, solution);
    EXPECT_TRUE(r.metrics.converged) << config.label;
    EXPECT_LE(maxStateDifference(r.states, gold(algo)), 1e-3)
        << config.label;
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const auto &cfg : machineConfigs()) {
        for (const auto *algo : {"pagerank", "sssp", "wcc"}) {
            for (auto s : {Solution::LigraO, Solution::Phi,
                           Solution::DepGraphS, Solution::DepGraphH}) {
                cases.push_back({cfg, algo, s});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConfigInvariance,
                         ::testing::ValuesIn(allCases()), caseName);

} // namespace
} // namespace depgraph
