/**
 * @file
 * Unit tests for the categorized trace infrastructure.
 */

#include <gtest/gtest.h>

#include "common/trace.hh"

namespace depgraph::trace
{
namespace
{

class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { disable(kAll); }
    void TearDown() override { disable(kAll); }
};

TEST_F(TraceTest, DisabledByDefault)
{
    EXPECT_FALSE(enabled(kTraverse));
    EXPECT_FALSE(enabled(kDdmu));
}

TEST_F(TraceTest, EnableDisableRoundTrip)
{
    enable(kShortcut);
    EXPECT_TRUE(enabled(kShortcut));
    EXPECT_FALSE(enabled(kQueue));
    enable(kQueue);
    EXPECT_TRUE(enabled(kQueue));
    disable(kShortcut);
    EXPECT_FALSE(enabled(kShortcut));
    EXPECT_TRUE(enabled(kQueue));
}

TEST_F(TraceTest, ParseSingleCategory)
{
    EXPECT_EQ(parseCategories("shortcut"), kShortcut);
    EXPECT_EQ(parseCategories("ddmu"), kDdmu);
    EXPECT_EQ(parseCategories("hdtl"), kTraverse);
    EXPECT_EQ(parseCategories("engine"), kEngine);
}

TEST_F(TraceTest, ParseList)
{
    EXPECT_EQ(parseCategories("traverse,queue"), kTraverse | kQueue);
    EXPECT_EQ(parseCategories("all"), kAll);
    EXPECT_EQ(parseCategories(""), 0u);
}

TEST_F(TraceTest, ParseIgnoresUnknown)
{
    testing::internal::CaptureStderr();
    EXPECT_EQ(parseCategories("shortcut,bogus"), kShortcut);
    const std::string err = testing::internal::GetCapturedStderr();
    // The warning must name the offending token...
    EXPECT_NE(err.find("'bogus'"), std::string::npos) << err;
    // ...and list every valid category so the fix is self-evident.
    for (const char *cat :
         {"traverse", "hdtl", "shortcut", "ddmu", "queue", "engine",
          "all"})
        EXPECT_NE(err.find(cat), std::string::npos) << cat;
}

TEST_F(TraceTest, MacroEvaluatesLazily)
{
    int evaluated = 0;
    auto expensive = [&] {
        ++evaluated;
        return 42;
    };
    dg_trace(kQueue, "value ", expensive());
    EXPECT_EQ(evaluated, 0); // disabled: argument untouched

    enable(kQueue);
    testing::internal::CaptureStderr();
    dg_trace(kQueue, "value ", expensive());
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(evaluated, 1);
    EXPECT_NE(err.find("queue: value 42"), std::string::npos);
}

} // namespace
} // namespace depgraph::trace
