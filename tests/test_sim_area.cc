/**
 * @file
 * Tests for the Table IV area/power model: the derived numbers must
 * land on the paper's reported values within tight bands.
 */

#include <gtest/gtest.h>

#include "sim/area.hh"

namespace depgraph::sim
{
namespace
{

const AccelAreaResult &
row(const std::vector<AccelAreaResult> &t, const std::string &name)
{
    for (const auto &r : t)
        if (r.name == name)
            return r;
    ADD_FAILURE() << "missing row " << name;
    static AccelAreaResult dummy;
    return dummy;
}

TEST(AreaModel, TableHasFourAccelerators)
{
    const auto t = tableIV();
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].name, "HATS");
    EXPECT_EQ(t[3].name, "DepGraph");
}

TEST(AreaModel, AreasMatchPaper)
{
    const auto t = tableIV();
    EXPECT_NEAR(row(t, "HATS").areaMm2, 0.007, 0.001);
    EXPECT_NEAR(row(t, "Minnow").areaMm2, 0.017, 0.002);
    EXPECT_NEAR(row(t, "PHI").areaMm2, 0.008, 0.001);
    EXPECT_NEAR(row(t, "DepGraph").areaMm2, 0.011, 0.001);
}

TEST(AreaModel, CorePercentagesMatchPaper)
{
    const auto t = tableIV();
    EXPECT_NEAR(row(t, "HATS").pctCore, 0.38, 0.06);
    EXPECT_NEAR(row(t, "Minnow").pctCore, 0.92, 0.10);
    EXPECT_NEAR(row(t, "PHI").pctCore, 0.43, 0.06);
    // The headline claim: DepGraph costs ~0.6% of a core.
    EXPECT_NEAR(row(t, "DepGraph").pctCore, 0.61, 0.08);
}

TEST(AreaModel, PowerMatchesPaper)
{
    const auto t = tableIV();
    EXPECT_NEAR(row(t, "HATS").powerMw, 425, 40);
    EXPECT_NEAR(row(t, "Minnow").powerMw, 849, 80);
    EXPECT_NEAR(row(t, "PHI").powerMw, 493, 50);
    EXPECT_NEAR(row(t, "DepGraph").powerMw, 562, 55);
}

TEST(AreaModel, TdpPercentagesMatchPaper)
{
    const auto t = tableIV();
    EXPECT_NEAR(row(t, "HATS").pctTdp, 0.22, 0.04);
    EXPECT_NEAR(row(t, "Minnow").pctTdp, 0.43, 0.06);
    EXPECT_NEAR(row(t, "PHI").pctTdp, 0.25, 0.04);
    EXPECT_NEAR(row(t, "DepGraph").pctTdp, 0.29, 0.04);
}

TEST(AreaModel, DepGraphStorageIsStackPlusFifo)
{
    // Sec. IV-D: 6.1 Kbit stack + 4.8 Kbit FIFO edge buffer.
    for (const auto &s : tableIVSpecs()) {
        if (s.name == "DepGraph") {
            EXPECT_DOUBLE_EQ(s.storageKbits, 10.9);
        }
    }
}

TEST(AreaModel, AreaScalesWithStorage)
{
    AccelAreaSpec small{"x", 1.0, 10.0};
    AccelAreaSpec big{"x", 100.0, 10.0};
    EXPECT_GT(deriveArea(big).areaMm2, deriveArea(small).areaMm2);
}

TEST(AreaModel, MinnowIsTheLargest)
{
    const auto t = tableIV();
    for (const auto &r : t)
        EXPECT_LE(r.areaMm2, row(t, "Minnow").areaMm2 + 1e-12);
}

} // namespace
} // namespace depgraph::sim
