/**
 * @file
 * GraphStore: versioned copy-on-write snapshot semantics.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "graph/generators.hh"
#include "service/snapshot_store.hh"

namespace depgraph::service
{
namespace
{

TEST(GraphStore, PutGetAndVersioning)
{
    GraphStore store;
    EXPECT_EQ(store.get("g"), nullptr);

    EXPECT_EQ(store.put("g", graph::path(4)), 1u);
    const auto s1 = store.get("g");
    ASSERT_NE(s1, nullptr);
    EXPECT_EQ(s1->name, "g");
    EXPECT_EQ(s1->version, 1u);
    EXPECT_EQ(s1->graph->numVertices(), 4u);
    EXPECT_TRUE(s1->fixpoints.empty());

    // Re-load replaces the graph but continues the version lineage.
    EXPECT_EQ(store.put("g", graph::path(9)), 2u);
    EXPECT_EQ(store.get("g")->graph->numVertices(), 9u);

    // The old snapshot is still fully usable (copy-on-write).
    EXPECT_EQ(s1->graph->numVertices(), 4u);
    EXPECT_EQ(s1->version, 1u);
}

TEST(GraphStore, NamesAndErase)
{
    GraphStore store;
    store.put("a", graph::path(2));
    store.put("b", graph::path(3));
    const auto names = store.names();
    EXPECT_EQ(names.size(), 2u);
    EXPECT_TRUE(store.erase("a"));
    EXPECT_FALSE(store.erase("a"));
    EXPECT_EQ(store.get("a"), nullptr);
    EXPECT_NE(store.get("b"), nullptr);
}

TEST(GraphStore, PublishSucceedsOnCurrentBase)
{
    GraphStore store;
    store.put("g", graph::path(4));
    const auto base = store.get("g");

    auto fx = std::map<std::string, StateVectorPtr>{
        {"pagerank",
         std::make_shared<std::vector<Value>>(5, Value{0.5})}};
    const auto next =
        store.publish(base, graph::path(5), std::move(fx));
    ASSERT_NE(next, nullptr);
    EXPECT_EQ(next->version, 2u);
    EXPECT_EQ(next->graph->numVertices(), 5u);
    EXPECT_EQ(next->fixpoints.count("pagerank"), 1u);
    EXPECT_EQ(store.get("g"), next);
}

TEST(GraphStore, PublishFailsOnStaleBase)
{
    GraphStore store;
    store.put("g", graph::path(4));
    const auto stale = store.get("g");
    store.put("g", graph::path(6)); // concurrent re-load wins

    EXPECT_EQ(store.publish(stale, graph::path(5), {}), nullptr);
    EXPECT_EQ(store.get("g")->graph->numVertices(), 6u);
}

TEST(GraphStore, PublishSurvivesConcurrentCacheFill)
{
    // cacheFixpoint swaps the snapshot object without bumping the
    // version; a publish based on the pre-fill snapshot must still
    // succeed (version check, not pointer identity).
    GraphStore store;
    store.put("g", graph::path(4));
    const auto base = store.get("g");
    ASSERT_TRUE(store.cacheFixpoint(
        "g", 1, "sssp",
        std::make_shared<std::vector<Value>>(4, Value{1.0})));

    const auto next = store.publish(base, graph::path(5), {});
    ASSERT_NE(next, nullptr);
    EXPECT_EQ(next->version, 2u);
}

TEST(GraphStore, CacheFixpointIsVersionGated)
{
    GraphStore store;
    store.put("g", graph::path(4));
    auto states = std::make_shared<std::vector<Value>>(4, Value{2.0});

    EXPECT_FALSE(store.cacheFixpoint("missing", 1, "sssp", states));
    EXPECT_FALSE(store.cacheFixpoint("g", 7, "sssp", states));
    EXPECT_TRUE(store.cacheFixpoint("g", 1, "sssp", states));

    const auto snap = store.get("g");
    ASSERT_EQ(snap->fixpoints.count("sssp"), 1u);
    EXPECT_EQ((*snap->fixpoints.at("sssp"))[0], 2.0);

    // Stale fill after a re-load is dropped.
    store.put("g", graph::path(4));
    EXPECT_FALSE(store.cacheFixpoint("g", 1, "pagerank", states));
    EXPECT_EQ(store.get("g")->fixpoints.count("pagerank"), 0u);
}

TEST(GraphStore, TtlSweepEvictsIdleGraphsOnly)
{
    StoreOptions opt;
    opt.ttl = std::chrono::milliseconds(40);
    GraphStore store(opt);
    store.put("idle", graph::path(4));
    store.put("hot", graph::path(4));

    // Without the TTL elapsed, sweep is a no-op.
    EXPECT_EQ(store.sweep(), 0u);

    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_NE(store.get("hot"), nullptr); // refreshes lastAccess
    EXPECT_EQ(store.sweep(), 1u);
    EXPECT_EQ(store.get("idle"), nullptr);
    EXPECT_NE(store.get("hot"), nullptr);
    EXPECT_EQ(store.evictions(), 1u);
}

TEST(GraphStore, TtlEvictionKeepsPinnedReadersAlive)
{
    StoreOptions opt;
    opt.ttl = std::chrono::milliseconds(1);
    GraphStore store(opt);
    store.put("g", graph::path(6));
    const auto pinned = store.get("g");

    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(store.sweep(), 1u);
    EXPECT_EQ(store.get("g"), nullptr);
    // The reader's snapshot outlives the store entry (copy-on-write).
    EXPECT_EQ(pinned->graph->numVertices(), 6u);

    // A re-load after eviction starts a fresh lineage at v1.
    EXPECT_EQ(store.put("g", graph::path(3)), 1u);
}

TEST(GraphStore, MaxGraphsCapEvictsLeastRecentlyAccessed)
{
    StoreOptions opt;
    opt.maxGraphs = 2;
    GraphStore store(opt);
    store.put("a", graph::path(2));
    store.put("b", graph::path(2));
    ASSERT_NE(store.get("a"), nullptr); // "b" is now the LRU entry

    store.put("c", graph::path(2));
    EXPECT_EQ(store.get("b"), nullptr);
    EXPECT_NE(store.get("a"), nullptr);
    EXPECT_NE(store.get("c"), nullptr);
    EXPECT_EQ(store.names().size(), 2u);
    EXPECT_EQ(store.evictions(), 1u);
}

TEST(GraphStore, ResidentSnapshotsStayBoundedUnderChurn)
{
    // The acceptance bar for a serving deployment: 100 versions of
    // churn against a capped store must not grow resident snapshots.
    const auto baseline = Snapshot::live();
    StoreOptions opt;
    opt.maxGraphs = 4;
    GraphStore store(opt);
    for (int i = 0; i < 100; ++i) {
        const auto name = "g" + std::to_string(i % 8);
        store.put(name, graph::path(4));
        // Snapshots pinned briefly by a reader must not accumulate.
        const auto snap = store.get(name);
        ASSERT_NE(snap, nullptr);
    }
    EXPECT_LE(store.names().size(), 4u);
    EXPECT_LE(Snapshot::live() - baseline, 4u);
    EXPECT_GE(store.evictions(), 96u);
}

TEST(GraphStore, UsageCountsCachedArtifacts)
{
    GraphStore store;
    store.put("g", graph::path(4));
    ASSERT_TRUE(store.cacheFixpoint(
        "g", 1, "sssp",
        std::make_shared<std::vector<Value>>(4, Value{1.0})));
    const auto u = store.usage();
    EXPECT_EQ(u.graphs, 1u);
    EXPECT_EQ(u.cachedFixpoints, 1u);
    EXPECT_EQ(u.cachedHubArtifacts, 0u);
}

TEST(GraphStore, PublishedGraphHasTransposeBuilt)
{
    // The store freezes graphs (eager transpose) so concurrent readers
    // never race on the lazy build; spot-check it is queryable.
    GraphStore store;
    store.put("g", graph::path(3));
    const auto snap = store.get("g");
    EXPECT_EQ(snap->graph->inDegree(1), 1u);
    EXPECT_EQ(snap->graph->inDegree(0), 0u);
}

} // namespace
} // namespace depgraph::service
