/**
 * @file
 * GraphStore: versioned copy-on-write snapshot semantics.
 */

#include <gtest/gtest.h>

#include "graph/generators.hh"
#include "service/snapshot_store.hh"

namespace depgraph::service
{
namespace
{

TEST(GraphStore, PutGetAndVersioning)
{
    GraphStore store;
    EXPECT_EQ(store.get("g"), nullptr);

    EXPECT_EQ(store.put("g", graph::path(4)), 1u);
    const auto s1 = store.get("g");
    ASSERT_NE(s1, nullptr);
    EXPECT_EQ(s1->name, "g");
    EXPECT_EQ(s1->version, 1u);
    EXPECT_EQ(s1->graph->numVertices(), 4u);
    EXPECT_TRUE(s1->fixpoints.empty());

    // Re-load replaces the graph but continues the version lineage.
    EXPECT_EQ(store.put("g", graph::path(9)), 2u);
    EXPECT_EQ(store.get("g")->graph->numVertices(), 9u);

    // The old snapshot is still fully usable (copy-on-write).
    EXPECT_EQ(s1->graph->numVertices(), 4u);
    EXPECT_EQ(s1->version, 1u);
}

TEST(GraphStore, NamesAndErase)
{
    GraphStore store;
    store.put("a", graph::path(2));
    store.put("b", graph::path(3));
    const auto names = store.names();
    EXPECT_EQ(names.size(), 2u);
    EXPECT_TRUE(store.erase("a"));
    EXPECT_FALSE(store.erase("a"));
    EXPECT_EQ(store.get("a"), nullptr);
    EXPECT_NE(store.get("b"), nullptr);
}

TEST(GraphStore, PublishSucceedsOnCurrentBase)
{
    GraphStore store;
    store.put("g", graph::path(4));
    const auto base = store.get("g");

    auto fx = std::map<std::string, StateVectorPtr>{
        {"pagerank",
         std::make_shared<std::vector<Value>>(5, Value{0.5})}};
    const auto next =
        store.publish(base, graph::path(5), std::move(fx));
    ASSERT_NE(next, nullptr);
    EXPECT_EQ(next->version, 2u);
    EXPECT_EQ(next->graph->numVertices(), 5u);
    EXPECT_EQ(next->fixpoints.count("pagerank"), 1u);
    EXPECT_EQ(store.get("g"), next);
}

TEST(GraphStore, PublishFailsOnStaleBase)
{
    GraphStore store;
    store.put("g", graph::path(4));
    const auto stale = store.get("g");
    store.put("g", graph::path(6)); // concurrent re-load wins

    EXPECT_EQ(store.publish(stale, graph::path(5), {}), nullptr);
    EXPECT_EQ(store.get("g")->graph->numVertices(), 6u);
}

TEST(GraphStore, PublishSurvivesConcurrentCacheFill)
{
    // cacheFixpoint swaps the snapshot object without bumping the
    // version; a publish based on the pre-fill snapshot must still
    // succeed (version check, not pointer identity).
    GraphStore store;
    store.put("g", graph::path(4));
    const auto base = store.get("g");
    ASSERT_TRUE(store.cacheFixpoint(
        "g", 1, "sssp",
        std::make_shared<std::vector<Value>>(4, Value{1.0})));

    const auto next = store.publish(base, graph::path(5), {});
    ASSERT_NE(next, nullptr);
    EXPECT_EQ(next->version, 2u);
}

TEST(GraphStore, CacheFixpointIsVersionGated)
{
    GraphStore store;
    store.put("g", graph::path(4));
    auto states = std::make_shared<std::vector<Value>>(4, Value{2.0});

    EXPECT_FALSE(store.cacheFixpoint("missing", 1, "sssp", states));
    EXPECT_FALSE(store.cacheFixpoint("g", 7, "sssp", states));
    EXPECT_TRUE(store.cacheFixpoint("g", 1, "sssp", states));

    const auto snap = store.get("g");
    ASSERT_EQ(snap->fixpoints.count("sssp"), 1u);
    EXPECT_EQ((*snap->fixpoints.at("sssp"))[0], 2.0);

    // Stale fill after a re-load is dropped.
    store.put("g", graph::path(4));
    EXPECT_FALSE(store.cacheFixpoint("g", 1, "pagerank", states));
    EXPECT_EQ(store.get("g")->fixpoints.count("pagerank"), 0u);
}

TEST(GraphStore, PublishedGraphHasTransposeBuilt)
{
    // The store freezes graphs (eager transpose) so concurrent readers
    // never race on the lazy build; spot-check it is queryable.
    GraphStore store;
    store.put("g", graph::path(3));
    const auto snap = store.get("g");
    EXPECT_EQ(snap->graph->inDegree(1), 1u);
    EXPECT_EQ(snap->graph->inDegree(0), 0u);
}

} // namespace
} // namespace depgraph::service
