/**
 * @file
 * Unit tests for RNG, Zipf sampling, table rendering, and option parsing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/options.hh"
#include "common/random.hh"
#include "common/table.hh"

namespace depgraph
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.nextBounded(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng r(9);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 4000; ++i)
        ++seen[r.nextBounded(8)];
    for (int c : seen)
        EXPECT_GT(c, 300); // ~500 expected per bucket
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, DoubleRange)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        const double d = r.nextDouble(2.0, 5.0);
        EXPECT_GE(d, 2.0);
        EXPECT_LT(d, 5.0);
    }
}

TEST(Zipf, RankZeroMostProbable)
{
    Rng r(17);
    ZipfSampler z(100, 1.2);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[z.sample(r)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], counts[50]);
    EXPECT_GT(counts[1], counts[50]);
}

TEST(Zipf, HigherAlphaMoreSkew)
{
    Rng r1(19), r2(19);
    ZipfSampler flat(50, 0.5), steep(50, 2.5);
    int flat_top = 0, steep_top = 0;
    for (int i = 0; i < 10000; ++i) {
        if (flat.sample(r1) == 0)
            ++flat_top;
        if (steep.sample(r2) == 0)
            ++steep_top;
    }
    EXPECT_GT(steep_top, flat_top);
}

TEST(Zipf, SingleElementAlwaysZero)
{
    Rng r(23);
    ZipfSampler z(1, 2.0);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(z.sample(r), 0u);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    // Header line and separator line plus two rows = 4 newlines.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, FormatsDoublesAndInts)
{
    EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(Table::fmt(1.0, 1), "1.0");
    EXPECT_EQ(Table::fmt(std::uint64_t{1234567}), "1,234,567");
    EXPECT_EQ(Table::fmt(std::uint64_t{12}), "12");
}

TEST(Options, ParsesEqualsAndSpaceForms)
{
    Options o;
    o.declare("alpha", "1.5", "skew");
    o.declare("n", "10", "count");
    o.declare("flag", "0", "bool flag");
    const char *argv[] = {"prog", "--alpha=2.5", "--n", "42", "--flag"};
    o.parse(5, const_cast<char **>(argv));
    EXPECT_DOUBLE_EQ(o.getDouble("alpha"), 2.5);
    EXPECT_EQ(o.getInt("n"), 42);
    EXPECT_TRUE(o.getBool("flag"));
}

TEST(Options, DefaultsSurviveWhenUnset)
{
    Options o;
    o.declare("x", "7", "x");
    const char *argv[] = {"prog"};
    o.parse(1, const_cast<char **>(argv));
    EXPECT_EQ(o.getInt("x"), 7);
}

} // namespace
} // namespace depgraph
