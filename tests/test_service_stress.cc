/**
 * @file
 * Concurrency stress: many client threads hammer one GraphService with
 * interleaved Query and StreamUpdates requests. After a drain, the
 * served states must equal a serial reference execution of the same
 * request log (same initial graph + the union of all inserted edges),
 * and the batcher must have coalesced updates into fewer incremental
 * reconvergence passes than there were update requests.
 *
 * Registered with ctest labels `service;tsan`: it is the test the
 * ThreadSanitizer CI mode exists for, and slow enough that quick local
 * iterations may want `ctest -LE service`.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/random.hh"
#include "gas/algorithms.hh"
#include "gas/incremental.hh"
#include "gas/reference.hh"
#include "graph/generators.hh"
#include "service/service.hh"

namespace depgraph::service
{
namespace
{

constexpr unsigned kClients = 8;
constexpr unsigned kRoundsPerClient = 5;
constexpr unsigned kEdgesPerUpdate = 3;

/** The edges client `t` inserts in round `i`: deterministic, so the
 * serial reference can rebuild the exact request log. */
std::vector<gas::EdgeInsertion>
clientEdges(const graph::Graph &g, unsigned t, unsigned i)
{
    Rng rng(1000 + 97 * t + i);
    std::vector<gas::EdgeInsertion> edges;
    for (unsigned k = 0; k < kEdgesPerUpdate; ++k) {
        const auto s = static_cast<VertexId>(
            rng.nextBounded(g.numVertices()));
        auto d =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        if (d == s)
            d = (d + 1) % g.numVertices();
        edges.push_back({s, d, rng.nextDouble(1.0, 4.0)});
    }
    return edges;
}

TEST(ServiceStress, ConcurrentClientsMatchSerialReference)
{
    const auto initial = graph::powerLaw(400, 2.0, 6.0, {.seed = 501});

    ServiceOptions opt;
    opt.pool.numThreads = 4;
    opt.pool.queueCapacity = 256;
    opt.pool.blockWhenFull = true; // stress must not drop requests
    opt.batcher.maxPendingEdges = 24;
    opt.batcher.solution = Solution::Sequential;
    GraphService svc(opt);
    svc.loadGraph("g", initial);

    // Warm the fixpoint caches so flushes reconverge incrementally.
    ASSERT_TRUE(
        svc.query({"g", "pagerank", Solution::Sequential}).get().ok());
    ASSERT_TRUE(
        svc.query({"g", "sssp", Solution::Sequential}).get().ok());

    std::vector<std::thread> clients;
    std::atomic<unsigned> failures{0};
    for (unsigned t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t] {
            Session session(svc, "g", "pagerank",
                            Solution::Sequential);
            for (unsigned i = 0; i < kRoundsPerClient; ++i) {
                if (!session.update(clientEdges(initial, t, i)).ok())
                    ++failures;
                const auto q = (t + i) % 2 == 0
                    ? session.query("pagerank")
                    : session.query("sssp");
                if (!q.ok() || !q.states)
                    ++failures;
            }
        });
    }
    for (auto &c : clients)
        c.join();
    EXPECT_EQ(failures.load(), 0u);

    svc.drain();

    // Serial reference: the same request log replayed as one batch.
    std::vector<gas::EdgeInsertion> all;
    for (unsigned t = 0; t < kClients; ++t)
        for (unsigned i = 0; i < kRoundsPerClient; ++i) {
            const auto e = clientEdges(initial, t, i);
            all.insert(all.end(), e.begin(), e.end());
        }
    const auto final_graph = gas::applyInsertions(initial, all);

    const auto served_pr =
        svc.query({"g", "pagerank", Solution::Sequential}).get();
    const auto served_sssp =
        svc.query({"g", "sssp", Solution::Sequential}).get();
    ASSERT_TRUE(served_pr.ok());
    ASSERT_TRUE(served_sssp.ok());

    const auto snap = svc.store().get("g");
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->graph->numEdges(), final_graph.numEdges());

    {
        const auto alg = gas::makeAlgorithm("pagerank");
        const auto gold = gas::runReference(final_graph, *alg);
        ASSERT_TRUE(gold.converged);
        EXPECT_LE(gas::maxStateDifference(*served_pr.states,
                                          gold.states),
                  5e-3);
    }
    {
        const auto alg = gas::makeAlgorithm("sssp");
        const auto gold = gas::runReference(final_graph, *alg);
        ASSERT_TRUE(gold.converged);
        EXPECT_LE(gas::maxStateDifference(*served_sssp.states,
                                          gold.states),
                  1e-9); // min-accumulator: exact
    }

    // Batching must be measurably effective: every update request
    // accepted, yet far fewer reconvergence passes than requests.
    const auto st = svc.stats();
    EXPECT_EQ(st.updateRequests, kClients * kRoundsPerClient);
    EXPECT_EQ(st.updateEdgesEnqueued,
              kClients * kRoundsPerClient * kEdgesPerUpdate);
    EXPECT_EQ(st.batchEdgesApplied, st.updateEdgesEnqueued);
    EXPECT_GE(st.batchesApplied, 1u);
    EXPECT_LT(st.batchesApplied, st.updateRequests);
    EXPECT_LT(st.incrementalPasses, st.updateRequests);
    EXPECT_GE(st.queryCacheHits, 1u);
    EXPECT_EQ(st.rejected, 0u);
}

TEST(ServiceStress, ConcurrentLoadsQueriesAndFlushesStaySane)
{
    // A different interleaving: clients re-load graphs, query, and
    // force flushes concurrently. Checks isolation and absence of
    // crashes/races rather than exact states (re-loads reset lineage).
    ServiceOptions opt;
    opt.pool.numThreads = 4;
    opt.pool.queueCapacity = 128;
    opt.pool.blockWhenFull = true;
    opt.batcher.maxPendingEdges = 10;
    opt.batcher.solution = Solution::Sequential;
    GraphService svc(opt);
    svc.loadGraph("a", graph::powerLaw(200, 2.0, 5.0, {.seed = 1}));
    svc.loadGraph("b", graph::ring(128));

    std::atomic<unsigned> badStatuses{0};
    std::vector<std::thread> clients;
    for (unsigned t = 0; t < 8; ++t) {
        clients.emplace_back([&, t] {
            Rng rng(7000 + t);
            const std::string name = (t % 2) ? "a" : "b";
            for (unsigned i = 0; i < 6; ++i) {
                switch (rng.nextBounded(4)) {
                  case 0: {
                    const auto r =
                        svc.query({name, "wcc", Solution::Sequential})
                            .get();
                    if (!r.ok())
                        ++badStatuses;
                    break;
                  }
                  case 1: {
                    const auto s = static_cast<VertexId>(
                        rng.nextBounded(100));
                    if (!svc.streamUpdates(name,
                                           {{s, s + 7, 1.0}})
                             .get()
                             .ok())
                        ++badStatuses;
                    break;
                  }
                  case 2:
                    if (!svc.flush(name).get().ok())
                        ++badStatuses;
                    break;
                  case 3:
                    svc.loadGraph(
                        name, graph::powerLaw(
                                  150 + 10 * t, 2.0, 5.0,
                                  {.seed = 100 + t}));
                    break;
                }
            }
        });
    }
    for (auto &c : clients)
        c.join();
    svc.drain();

    EXPECT_EQ(badStatuses.load(), 0u);
    // Both graphs still serve consistent snapshots.
    for (const auto &name : {"a", "b"}) {
        const auto r =
            svc.query({name, "pagerank", Solution::Sequential}).get();
        ASSERT_TRUE(r.ok()) << name;
        ASSERT_NE(r.states, nullptr);
        EXPECT_EQ(r.states->size(),
                  svc.store().get(name)->graph->numVertices());
    }
}

} // namespace
} // namespace depgraph::service
