/**
 * @file
 * Durability primitives in isolation: WAL framing + torn-tail
 * detection, the record codec's hostility to malformed bytes, the
 * checkpoint file format's corruption rejection, and graph-name
 * escaping (untrusted names must not escape the data dir).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "durability/checkpoint.hh"
#include "durability/manager.hh"
#include "durability/record.hh"
#include "durability/wal.hh"
#include "graph/generators.hh"

namespace depgraph::durability
{
namespace
{

namespace fs = std::filesystem;

/** A fresh scratch directory, removed on teardown. */
class WalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto tmpl = (fs::temp_directory_path() / "dgwal.XXXXXX")
                        .string();
        ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
        dir_ = tmpl;
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string &leaf) const
    {
        return (fs::path(dir_) / leaf).string();
    }

    std::string dir_;
};

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

graph::Graph
smallGraph(std::uint64_t seed = 7)
{
    return graph::powerLaw(50, 2.0, 3.0, {.seed = seed});
}

TEST_F(WalTest, AppendThenReadAllRoundTrips)
{
    const auto p = path("a.wal");
    WalFile w;
    std::string err;
    ASSERT_TRUE(w.open(p, &err)) << err;
    ASSERT_TRUE(w.append(bytesOf("first"), false, &err)) << err;
    ASSERT_TRUE(w.append(bytesOf("second record"), true, &err)) << err;
    ASSERT_TRUE(w.append({}, false, &err)) << err; // empty payload ok
    EXPECT_EQ(w.appendedBytes(), fs::file_size(p));
    w.close();

    WalFile::ReadResult r;
    ASSERT_TRUE(WalFile::readAll(p, r, &err)) << err;
    ASSERT_EQ(r.payloads.size(), 3u);
    EXPECT_EQ(r.payloads[0], bytesOf("first"));
    EXPECT_EQ(r.payloads[1], bytesOf("second record"));
    EXPECT_TRUE(r.payloads[2].empty());
    EXPECT_FALSE(r.tornTail);
    EXPECT_EQ(r.validBytes, fs::file_size(p));
}

TEST_F(WalTest, MissingFileReadsAsEmpty)
{
    WalFile::ReadResult r;
    std::string err;
    ASSERT_TRUE(WalFile::readAll(path("nope.wal"), r, &err)) << err;
    EXPECT_TRUE(r.payloads.empty());
    EXPECT_FALSE(r.tornTail);
    EXPECT_EQ(r.validBytes, 0u);
}

TEST_F(WalTest, TornLengthWordStopsAtLastGoodFrame)
{
    const auto p = path("torn.wal");
    WalFile w;
    std::string err;
    ASSERT_TRUE(w.open(p, &err)) << err;
    ASSERT_TRUE(w.append(bytesOf("good"), true, &err)) << err;
    const auto good = w.appendedBytes();
    w.close();

    // A crash mid-write leaves a partial frame: 2 of 4 length bytes.
    std::ofstream(p, std::ios::binary | std::ios::app)
        << std::string("\x03\x00", 2);

    WalFile::ReadResult r;
    ASSERT_TRUE(WalFile::readAll(p, r, &err)) << err;
    ASSERT_EQ(r.payloads.size(), 1u);
    EXPECT_EQ(r.payloads[0], bytesOf("good"));
    EXPECT_TRUE(r.tornTail);
    EXPECT_EQ(r.validBytes, good);

    ASSERT_TRUE(WalFile::repair(p, r.validBytes, &err)) << err;
    EXPECT_EQ(fs::file_size(p), good);
    WalFile::ReadResult r2;
    ASSERT_TRUE(WalFile::readAll(p, r2, &err)) << err;
    EXPECT_EQ(r2.payloads.size(), 1u);
    EXPECT_FALSE(r2.tornTail);

    // Repair is append-compatible: the journal keeps working.
    WalFile w2;
    ASSERT_TRUE(w2.open(p, &err)) << err;
    ASSERT_TRUE(w2.append(bytesOf("after repair"), true, &err)) << err;
    w2.close();
    WalFile::ReadResult r3;
    ASSERT_TRUE(WalFile::readAll(p, r3, &err)) << err;
    ASSERT_EQ(r3.payloads.size(), 2u);
    EXPECT_EQ(r3.payloads[1], bytesOf("after repair"));
}

TEST_F(WalTest, CorruptedPayloadByteFailsItsCrc)
{
    const auto p = path("crc.wal");
    WalFile w;
    std::string err;
    ASSERT_TRUE(w.open(p, &err)) << err;
    ASSERT_TRUE(w.append(bytesOf("aaaa"), false, &err)) << err;
    const auto first = w.appendedBytes();
    ASSERT_TRUE(w.append(bytesOf("bbbb"), true, &err)) << err;
    w.close();

    // Flip one payload byte of the SECOND record.
    {
        std::fstream f(p, std::ios::binary | std::ios::in
                              | std::ios::out);
        f.seekp(static_cast<std::streamoff>(first) + 8);
        f.put('X');
    }

    WalFile::ReadResult r;
    ASSERT_TRUE(WalFile::readAll(p, r, &err)) << err;
    ASSERT_EQ(r.payloads.size(), 1u); // stops before the bad frame
    EXPECT_EQ(r.payloads[0], bytesOf("aaaa"));
    EXPECT_TRUE(r.tornTail);
    EXPECT_EQ(r.validBytes, first);
}

TEST_F(WalTest, GarbageTailAfterGoodRecordsIsTorn)
{
    const auto p = path("garbage.wal");
    WalFile w;
    std::string err;
    ASSERT_TRUE(w.open(p, &err)) << err;
    ASSERT_TRUE(w.append(bytesOf("keep me"), true, &err)) << err;
    const auto good = w.appendedBytes();
    w.close();

    std::ofstream(p, std::ios::binary | std::ios::app)
        << "\xff\xff\xff\xff random trailing junk from a dying disk";

    WalFile::ReadResult r;
    ASSERT_TRUE(WalFile::readAll(p, r, &err)) << err;
    ASSERT_EQ(r.payloads.size(), 1u);
    EXPECT_TRUE(r.tornTail);
    EXPECT_EQ(r.validBytes, good);
}

TEST_F(WalTest, TruncateDropsEverything)
{
    const auto p = path("trunc.wal");
    WalFile w;
    std::string err;
    ASSERT_TRUE(w.open(p, &err)) << err;
    ASSERT_TRUE(w.append(bytesOf("x"), false, &err)) << err;
    ASSERT_TRUE(w.truncate(&err)) << err;
    EXPECT_EQ(w.appendedBytes(), 0u);
    ASSERT_TRUE(w.append(bytesOf("y"), true, &err)) << err;
    w.close();

    WalFile::ReadResult r;
    ASSERT_TRUE(WalFile::readAll(p, r, &err)) << err;
    ASSERT_EQ(r.payloads.size(), 1u);
    EXPECT_EQ(r.payloads[0], bytesOf("y"));
}

TEST(SyncPolicyParse, NamesRoundTrip)
{
    SyncPolicy p;
    ASSERT_TRUE(parseSyncPolicy("always", p));
    EXPECT_EQ(p, SyncPolicy::Always);
    EXPECT_STREQ(syncPolicyName(p), "always");
    ASSERT_TRUE(parseSyncPolicy("batch", p));
    EXPECT_EQ(p, SyncPolicy::Batch);
    ASSERT_TRUE(parseSyncPolicy("off", p));
    EXPECT_EQ(p, SyncPolicy::Off);
    EXPECT_FALSE(parseSyncPolicy("sometimes", p));
    EXPECT_FALSE(parseSyncPolicy("", p));
}

TEST(RecordCodec, CreateRoundTripsTheWholeCsr)
{
    const auto g = smallGraph();
    const auto payload = encodeCreate("my-graph", g);

    Record r;
    ASSERT_TRUE(decodeRecord(payload.data(), payload.size(), r));
    EXPECT_EQ(r.type, RecordType::Create);
    EXPECT_EQ(r.graph, "my-graph");
    EXPECT_EQ(r.created.offsets(), g.offsets());
    EXPECT_EQ(r.created.targets(), g.targets());
    EXPECT_EQ(r.created.weights(), g.weights());
}

TEST(RecordCodec, MutateRoundTripsInsAndDels)
{
    const std::vector<gas::EdgeInsertion> ins = {
        {1, 2, 1.0}, {3, 4, 2.5}};
    const std::vector<gas::EdgeDeletion> dels = {
        {5, 6, gas::EdgeDeletion::kAnyWeight}};
    const auto payload = encodeMutate("g", ins, dels);

    Record r;
    ASSERT_TRUE(decodeRecord(payload.data(), payload.size(), r));
    EXPECT_EQ(r.type, RecordType::Mutate);
    EXPECT_EQ(r.graph, "g");
    ASSERT_EQ(r.ins.size(), 2u);
    EXPECT_EQ(r.ins[1].src, 3u);
    EXPECT_EQ(r.ins[1].dst, 4u);
    EXPECT_EQ(r.ins[1].weight, 2.5);
    ASSERT_EQ(r.dels.size(), 1u);
    EXPECT_EQ(r.dels[0].src, 5u);
    EXPECT_EQ(r.dels[0].weight, gas::EdgeDeletion::kAnyWeight);
}

TEST(RecordCodec, MarkerRoundTrips)
{
    const auto payload = encodeMarker("the-graph");
    Record r;
    ASSERT_TRUE(decodeRecord(payload.data(), payload.size(), r));
    EXPECT_EQ(r.type, RecordType::Marker);
    EXPECT_EQ(r.graph, "the-graph");
}

TEST(RecordCodec, MalformedPayloadsAreRejectedNotFatal)
{
    Record r;
    EXPECT_FALSE(decodeRecord(nullptr, 0, r));

    const std::uint8_t junk[] = {0x00, 0x01, 0x02, 0x03};
    EXPECT_FALSE(decodeRecord(junk, sizeof junk, r)); // bad type

    // Truncations of a valid payload at every length must all fail
    // cleanly (decode either sees a short read or trailing bytes).
    const auto good = encodeMutate("g", {{1, 2, 1.0}}, {});
    for (std::size_t n = 0; n < good.size(); ++n)
        EXPECT_FALSE(decodeRecord(good.data(), n, r)) << n;

    // An inner length word inflated to claim 2^60 elements must be
    // caught by bounds checks, not attempted as an allocation.
    auto evil = encodeCreate("g", smallGraph());
    const auto name_at = sizeof(std::uint8_t); // type byte, then name
    std::uint64_t huge = 1ull << 60;
    std::memcpy(evil.data() + name_at, &huge, sizeof huge);
    EXPECT_FALSE(decodeRecord(evil.data(), evil.size(), r));
}

TEST(RecordCodec, CreateWithInvalidCsrIsRejected)
{
    // A CRC collision could hand decode a structurally broken CSR;
    // decode must validate the invariants, not trust them.
    const auto g = smallGraph();
    auto payload = encodeCreate("g", g);
    // Smash a target id to be >= numVertices: find the targets region
    // by re-encoding with a poisoned graph is fiddly, so instead
    // decode-mutate-encode: build a hand-rolled bad payload.
    ByteWriter w;
    w.pod(static_cast<std::uint8_t>(RecordType::Create));
    w.str("g");
    w.vec(std::vector<EdgeId>{0, 1});       // offsets: 1 vertex, 1 edge
    w.vec(std::vector<VertexId>{99});       // target 99 out of range
    w.vec(std::vector<Value>{1.0});
    Record r;
    EXPECT_FALSE(
        decodeRecord(w.buffer().data(), w.buffer().size(), r));
}

TEST_F(WalTest, CheckpointRoundTripsGraphAndFixpoints)
{
    const auto p = path("g.ckpt");
    CheckpointData in;
    in.name = "g";
    in.version = 42;
    in.graph = std::make_shared<graph::Graph>(smallGraph());
    in.fixpoints.emplace_back(
        "pagerank", std::make_shared<std::vector<Value>>(
                        std::vector<Value>{0.25, 0.5, 0.125}));
    in.fixpoints.emplace_back(
        "sssp", std::make_shared<std::vector<Value>>(
                    std::vector<Value>{0.0, 1.0, 2.0}));

    std::string err;
    ASSERT_TRUE(writeCheckpoint(p, in, &err)) << err;
    EXPECT_FALSE(fs::exists(p + ".tmp")); // published atomically

    CheckpointData out;
    ASSERT_TRUE(readCheckpoint(p, out, &err)) << err;
    EXPECT_EQ(out.name, "g");
    EXPECT_EQ(out.version, 42u);
    ASSERT_NE(out.graph, nullptr);
    EXPECT_EQ(out.graph->offsets(), in.graph->offsets());
    EXPECT_EQ(out.graph->targets(), in.graph->targets());
    EXPECT_EQ(out.graph->weights(), in.graph->weights());
    ASSERT_EQ(out.fixpoints.size(), 2u);
    EXPECT_EQ(out.fixpoints[0].first, "pagerank");
    EXPECT_EQ(*out.fixpoints[0].second,
              (std::vector<Value>{0.25, 0.5, 0.125}));
    EXPECT_EQ(out.fixpoints[1].first, "sssp");
}

TEST_F(WalTest, CheckpointCorruptionIsDetected)
{
    const auto p = path("bad.ckpt");
    CheckpointData in;
    in.name = "g";
    in.version = 1;
    in.graph = std::make_shared<graph::Graph>(smallGraph());
    std::string err;
    ASSERT_TRUE(writeCheckpoint(p, in, &err)) << err;

    CheckpointData out;
    // Missing file: soft failure.
    EXPECT_FALSE(readCheckpoint(path("absent.ckpt"), out, &err));

    // Payload bit flip: CRC mismatch.
    {
        std::fstream f(p, std::ios::binary | std::ios::in
                              | std::ios::out);
        f.seekp(-1, std::ios::end);
        f.put('~');
    }
    EXPECT_FALSE(readCheckpoint(p, out, &err));
    EXPECT_NE(err.find("CRC"), std::string::npos) << err;

    // Rewrite, then truncate mid-payload: short read.
    ASSERT_TRUE(writeCheckpoint(p, in, &err)) << err;
    fs::resize_file(p, fs::file_size(p) / 2);
    EXPECT_FALSE(readCheckpoint(p, out, &err));

    // Bad magic.
    ASSERT_TRUE(writeCheckpoint(p, in, &err)) << err;
    {
        std::fstream f(p, std::ios::binary | std::ios::in
                              | std::ios::out);
        f.seekp(0);
        f.write("NOTMAGIC", 8);
    }
    EXPECT_FALSE(readCheckpoint(p, out, &err));
}

TEST(EscapeName, SafeNamesPassThroughHostileOnesAreEscaped)
{
    EXPECT_EQ(Manager::escapeName("graph_A-1"), "graph_A-1");
    EXPECT_EQ(Manager::unescapeName("graph_A-1"), "graph_A-1");

    const std::string hostile = "../../etc/passwd";
    const auto esc = Manager::escapeName(hostile);
    EXPECT_EQ(esc.find('/'), std::string::npos);
    EXPECT_EQ(esc.find(".."), std::string::npos);
    EXPECT_EQ(Manager::unescapeName(esc), hostile);

    // Percent itself must round-trip (it is the escape introducer).
    const std::string tricky = "a%2eb c/d";
    EXPECT_EQ(Manager::unescapeName(Manager::escapeName(tricky)),
              tricky);
}

} // namespace
} // namespace depgraph::durability
