/**
 * @file
 * Unit tests for the set-associative cache model and its replacement
 * policies (LRU, DRRIP, GRASP).
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace depgraph::sim
{
namespace
{

Cache
smallLru(unsigned sets = 4, unsigned assoc = 2)
{
    return Cache("t", std::size_t{64} * sets * assoc, assoc, 64,
                 ReplPolicy::LRU);
}

TEST(Cache, MissThenHitAfterFill)
{
    Cache c = smallLru();
    EXPECT_FALSE(c.access(0x1000, false));
    c.fill(0x1000);
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit)
{
    Cache c = smallLru();
    c.fill(0x1000);
    EXPECT_TRUE(c.access(0x1004, false));
    EXPECT_TRUE(c.access(0x103f, true));
    EXPECT_FALSE(c.access(0x1040, false)); // next line
}

TEST(Cache, DirtyTrackingAndWriteback)
{
    // Direct-mapped single-set cache to force eviction.
    Cache c("t", 64, 1, 64, ReplPolicy::LRU);
    c.fill(0x0, /*dirty=*/true);
    const Addr evicted = c.fill(0x40); // conflicts, evicts dirty line
    EXPECT_NE(evicted, Cache::kNoLine);
    EXPECT_EQ(c.stats().writebacks, 1u);
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, WriteOnHitSetsDirty)
{
    Cache c("t", 64, 1, 64, ReplPolicy::LRU);
    c.fill(0x0, false);
    EXPECT_TRUE(c.access(0x0, true)); // dirty now
    c.fill(0x40);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c = smallLru();
    c.fill(0x1000, true);
    EXPECT_TRUE(c.invalidate(0x1000)); // was dirty
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_FALSE(c.invalidate(0x1000)); // already gone
}

TEST(Cache, FlushEmptiesEverything)
{
    Cache c = smallLru();
    c.fill(0x1000);
    c.fill(0x2000);
    c.flush();
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_FALSE(c.contains(0x2000));
}

TEST(Cache, FillOfPresentLineDoesNotEvict)
{
    Cache c = smallLru();
    c.fill(0x1000);
    EXPECT_EQ(c.fill(0x1000), Cache::kNoLine);
    EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 1 set, 2 ways; fill A, B; touch A; fill C -> B must go.
    Cache c("t", 128, 2, 64, ReplPolicy::LRU);
    // Find three addresses in the same (only) set.
    const Addr a = 0x000, b = 0x040, d = 0x080;
    c.fill(a);
    c.fill(b);
    EXPECT_TRUE(c.access(a, false)); // refresh A
    c.fill(d);
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, CapacityBoundRespected)
{
    Cache c = smallLru(4, 2); // 8 lines total
    for (Addr a = 0; a < 64 * 32; a += 64)
        c.fill(a);
    unsigned present = 0;
    for (Addr a = 0; a < 64 * 32; a += 64)
        present += c.contains(a) ? 1 : 0;
    EXPECT_LE(present, 8u);
}

TEST(Cache, DrripReusedLinesSurviveScans)
{
    // A hot line that is re-referenced should survive a long streaming
    // scan better under DRRIP than under LRU.
    auto thrash_survival = [](ReplPolicy pol) {
        Cache c("t", 64 * 16 * 4, 4, 64, pol); // 16 sets x 4 ways
        const Addr hot = 0x0;
        c.fill(hot);
        unsigned survived = 0;
        for (Addr round = 0; round < 50; ++round) {
            if (!c.access(hot, false))
                c.fill(hot);
            else
                ++survived;
            // Streaming scan of 64 distinct lines (no reuse).
            for (Addr a = 0x100000 + round * 0x10000;
                 a < 0x100000 + round * 0x10000 + 64 * 64; a += 64) {
                if (!c.access(a, false))
                    c.fill(a);
            }
        }
        return survived;
    };
    EXPECT_GE(thrash_survival(ReplPolicy::DRRIP),
              thrash_survival(ReplPolicy::LRU));
}

TEST(Cache, GraspProtectsHotRegion)
{
    auto survival = [](ReplPolicy pol, bool mark_hot) {
        Cache c("t", 64 * 8 * 2, 2, 64, pol); // tiny: 8 sets x 2 ways
        if (mark_hot)
            c.setHotOracle([](Addr a) { return a < 0x400; });
        const Addr hot = 0x80;
        c.fill(hot);
        unsigned survived = 0;
        for (Addr round = 0; round < 100; ++round) {
            if (c.access(hot, false))
                ++survived;
            else
                c.fill(hot);
            for (Addr a = 0x10000 + round * 0x8000;
                 a < 0x10000 + round * 0x8000 + 32 * 64; a += 64) {
                if (!c.access(a, false))
                    c.fill(a);
            }
        }
        return survived;
    };
    // GRASP with hot marking must beat plain DRRIP on the hot line.
    EXPECT_GT(survival(ReplPolicy::GRASP, true),
              survival(ReplPolicy::DRRIP, false));
}

TEST(CacheDeath, RejectsBadGeometry)
{
    EXPECT_DEATH(Cache("t", 32, 1, 64, ReplPolicy::LRU),
                 "smaller than one set");
    EXPECT_DEATH(Cache("t", 128, 2, 63, ReplPolicy::LRU),
                 "power of two");
}

TEST(ReplPolicyNames, RoundTrip)
{
    for (auto p : {ReplPolicy::LRU, ReplPolicy::DRRIP,
                   ReplPolicy::GRASP}) {
        EXPECT_EQ(replPolicyFromName(replPolicyName(p)), p);
    }
    EXPECT_DEATH(replPolicyFromName("FIFO"), "unknown replacement");
}

/** Parameterized sweep: hit rate of a repeated working set is 100%
 * once it fits, for every policy. */
class PolicySweep : public ::testing::TestWithParam<ReplPolicy>
{};

TEST_P(PolicySweep, WorkingSetThatFitsAlwaysHits)
{
    Cache c("t", 64 * 64 * 8, 8, 64, GetParam()); // 32 KB
    // 256 lines = 16 KB working set, half the capacity.
    for (Addr a = 0; a < 256 * 64; a += 64)
        c.fill(a);
    for (int round = 0; round < 4; ++round)
        for (Addr a = 0; a < 256 * 64; a += 64)
            ASSERT_TRUE(c.access(a, false)) << "addr " << a;
}

INSTANTIATE_TEST_SUITE_P(All, PolicySweep,
                         ::testing::Values(ReplPolicy::LRU,
                                           ReplPolicy::DRRIP,
                                           ReplPolicy::GRASP));

} // namespace
} // namespace depgraph::sim
