/**
 * @file
 * Tests for the synthetic graph generators, including property-style
 * parameterized sweeps over generator parameters.
 */

#include <gtest/gtest.h>

#include <queue>

#include "graph/degree.hh"
#include "graph/generators.hh"

namespace depgraph::graph
{
namespace
{

TEST(PowerLaw, HitsTargetAverageDegree)
{
    const Graph g = powerLaw(4000, 2.0, 12.0, {.seed = 1});
    const auto s = degreeStats(g);
    EXPECT_NEAR(s.avgOutDegree, 12.0, 3.0);
}

TEST(PowerLaw, IsSkewed)
{
    const Graph g = powerLaw(4000, 2.0, 12.0, {.seed = 1});
    const auto s = degreeStats(g);
    // Top 1% of vertices must own far more than 1% of edges.
    EXPECT_GT(s.top1PctEdgeShare, 0.10);
    EXPECT_GT(s.maxOutDegree, 50u);
}

TEST(PowerLaw, LowerAlphaMoreSkewed)
{
    const auto s18 = degreeStats(powerLaw(4000, 1.8, 10.0, {.seed = 2}));
    const auto s22 = degreeStats(powerLaw(4000, 2.2, 10.0, {.seed = 2}));
    EXPECT_GT(s18.top1PctEdgeShare, s22.top1PctEdgeShare);
}

TEST(PowerLaw, DeterministicForSeed)
{
    const Graph a = powerLaw(500, 2.0, 6.0, {.seed = 5});
    const Graph b = powerLaw(500, 2.0, 6.0, {.seed = 5});
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (EdgeId e = 0; e < a.numEdges(); ++e)
        ASSERT_EQ(a.target(e), b.target(e));
}

TEST(PowerLaw, NoSelfLoopsAndSortedNeighbors)
{
    // Parallel edges are allowed (multigraph) but self loops are not,
    // and per-vertex neighbor lists must be sorted.
    const Graph g = powerLaw(1000, 2.0, 8.0, {.seed = 6});
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        auto n = g.neighbors(v);
        for (std::size_t i = 0; i < n.size(); ++i) {
            ASSERT_NE(n[i], v) << "self loop at " << v;
            if (i) {
                ASSERT_LE(n[i - 1], n[i]) << "unsorted at " << v;
            }
        }
    }
}

TEST(PowerLawTableV, AlphaControlsEdgeCount)
{
    // Paper Table V: lower alpha => denser graph.
    const Graph g18 = powerLawTableV(3000, 1.8, {.seed = 7});
    const Graph g20 = powerLawTableV(3000, 2.0, {.seed = 7});
    const Graph g22 = powerLawTableV(3000, 2.2, {.seed = 7});
    EXPECT_GT(g18.numEdges(), g20.numEdges());
    EXPECT_GT(g20.numEdges(), g22.numEdges());
    // The paper's ratio between alpha=1.8 and alpha=2.2 is ~18x;
    // accept a broad band around it.
    const double ratio = static_cast<double>(g18.numEdges())
        / static_cast<double>(g22.numEdges());
    EXPECT_GT(ratio, 6.0);
    EXPECT_LT(ratio, 50.0);
}

TEST(Rmat, ProducesRequestedScale)
{
    const Graph g = rmat(10, 8000, 0.57, 0.19, 0.19, {.seed = 8});
    EXPECT_EQ(g.numVertices(), 1024u);
    EXPECT_GT(g.numEdges(), 4000u); // dedupe removes some
    EXPECT_LE(g.numEdges(), 8000u);
}

TEST(Rmat, IsSkewed)
{
    const Graph g = rmat(12, 40000, 0.57, 0.19, 0.19, {.seed = 9});
    const auto s = degreeStats(g);
    EXPECT_GT(s.top1PctEdgeShare, 0.05);
}

TEST(ErdosRenyi, UniformDegrees)
{
    const Graph g = erdosRenyi(2000, 20000, {.seed = 10});
    const auto s = degreeStats(g);
    EXPECT_NEAR(s.avgOutDegree, 10.0, 1.0);
    // ER graphs are NOT skewed.
    EXPECT_LT(s.top1PctEdgeShare, 0.05);
}

TEST(Grid, StructureIsCorrect)
{
    const Graph g = grid(3, 4, {.seed = 11});
    EXPECT_EQ(g.numVertices(), 12u);
    // 2*(rows*(cols-1) + (rows-1)*cols) directed edges.
    EXPECT_EQ(g.numEdges(), 2u * (3 * 3 + 2 * 4));
    // Corner vertex 0 has exactly 2 out-neighbors.
    EXPECT_EQ(g.outDegree(0), 2u);
    // Interior vertex (1,1) = 5 has 4.
    EXPECT_EQ(g.outDegree(5), 4u);
}

TEST(Path, IsASingleChain)
{
    const Graph g = path(10, {.seed = 12});
    EXPECT_EQ(g.numEdges(), 9u);
    for (VertexId v = 0; v + 1 < 10; ++v) {
        ASSERT_EQ(g.outDegree(v), 1u);
        ASSERT_EQ(g.neighbors(v)[0], v + 1);
    }
    EXPECT_EQ(g.outDegree(9), 0u);
}

TEST(Ring, ClosesTheLoop)
{
    const Graph g = ring(5, {.seed = 13});
    EXPECT_EQ(g.numEdges(), 5u);
    EXPECT_EQ(g.neighbors(4)[0], 0u);
}

TEST(Star, HubOwnsHalfTheEdges)
{
    const Graph g = star(11, {.seed = 14});
    EXPECT_EQ(g.numEdges(), 20u);
    EXPECT_EQ(g.outDegree(0), 10u);
    for (VertexId v = 1; v < 11; ++v)
        ASSERT_EQ(g.outDegree(v), 1u);
}

TEST(BinaryTree, DegreesAreAtMostTwo)
{
    const Graph g = binaryTree(15, {.seed = 15});
    EXPECT_EQ(g.numEdges(), 14u);
    for (VertexId v = 0; v < 7; ++v)
        ASSERT_EQ(g.outDegree(v), 2u);
    for (VertexId v = 7; v < 15; ++v)
        ASSERT_EQ(g.outDegree(v), 0u);
}

TEST(CommunityChain, IsConnectedAcrossCommunities)
{
    const Graph g = communityChain(6, 100, 2.0, 6.0, 2, {.seed = 16});
    EXPECT_EQ(g.numVertices(), 600u);
    // BFS over undirected edges must reach every community from v0.
    g.buildTranspose();
    std::vector<bool> seen(g.numVertices(), false);
    std::queue<VertexId> q;
    q.push(0);
    seen[0] = true;
    std::size_t reached = 1;
    while (!q.empty()) {
        const VertexId u = q.front();
        q.pop();
        auto visit = [&](VertexId w) {
            if (!seen[w]) {
                seen[w] = true;
                ++reached;
                q.push(w);
            }
        };
        for (auto w : g.neighbors(u))
            visit(w);
        for (auto w : g.inNeighbors(u))
            visit(w);
    }
    EXPECT_GT(reached, g.numVertices() * 9 / 10);
}

TEST(CommunityChain, StretchesDiameter)
{
    const Graph chain = communityChain(12, 80, 2.0, 6.0, 1, {.seed = 17});
    const Graph blob = powerLaw(960, 2.0, 6.0, {.seed = 17});
    EXPECT_GT(estimateDiameter(chain, 6), estimateDiameter(blob, 6));
}

TEST(Weights, StayInConfiguredRange)
{
    GenOptions opt;
    opt.seed = 18;
    opt.minWeight = 2.0;
    opt.maxWeight = 3.0;
    const Graph g = powerLaw(300, 2.0, 5.0, opt);
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        ASSERT_GE(g.weight(e), 2.0);
        ASSERT_LT(g.weight(e), 3.0);
    }
}

/** Parameterized sweep: every generator produces structurally valid CSR
 * under a range of sizes. */
class GeneratorSweep : public ::testing::TestWithParam<VertexId>
{};

TEST_P(GeneratorSweep, AllGeneratorsProduceValidGraphs)
{
    const VertexId n = GetParam();
    const std::vector<Graph> graphs = {
        powerLaw(n, 2.0, 6.0, {.seed = n}),
        erdosRenyi(n, 4 * n, {.seed = n}),
        grid(n / 8 + 1, 8, {.seed = n}),
        path(n, {.seed = n}),
        ring(n, {.seed = n}),
        star(n, {.seed = n}),
        binaryTree(n, {.seed = n}),
        communityChain(4, n / 4 + 2, 2.0, 5.0, 2, {.seed = n}),
    };
    for (const auto &g : graphs) {
        EdgeId sum = 0;
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            sum += g.outDegree(v);
            for (auto t : g.neighbors(v))
                ASSERT_LT(t, g.numVertices());
        }
        ASSERT_EQ(sum, g.numEdges());
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorSweep,
                         ::testing::Values(16, 64, 257, 1000));

} // namespace
} // namespace depgraph::graph
