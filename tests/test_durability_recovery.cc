/**
 * @file
 * Crash-recovery differentials, in process: a GraphService with
 * durability on takes traffic, simulateCrash() freezes its disk state
 * mid-flight (everything after is exactly what a SIGKILL would have
 * left), and a second service recovers from the same data dir. The
 * core invariant: in exact mode, the recovered service's first query
 * is BITWISE equal to a scratch service that applied the same acked
 * churn -- across algorithms, seeds, checkpoint placement, and torn
 * WAL tails.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <set>

#include "common/failpoint.hh"
#include "gas/algorithms.hh"
#include "gas/reference.hh"
#include "graph/generators.hh"
#include "service/protocol.hh"
#include "service/service.hh"

namespace depgraph::service
{
namespace
{

namespace fs = std::filesystem;

constexpr const char *kAlgos[] = {"pagerank", "adsorption", "sssp",
                                  "wcc", "sswp"};

ServiceOptions
baseOptions()
{
    ServiceOptions opt;
    opt.pool.numThreads = 2;
    opt.pool.queueCapacity = 64;
    opt.pool.blockWhenFull = true;
    opt.batcher.maxPendingEdges = 1000; // no auto-flush
    opt.batcher.solution = Solution::Sequential;
    return opt;
}

ServiceOptions
durableOptions(const std::string &dir,
               durability::SyncPolicy sync =
                   durability::SyncPolicy::Always,
               bool fast = false, std::size_t ckptEvery = 0)
{
    auto opt = baseOptions();
    opt.durability.dataDir = dir;
    opt.durability.sync = sync;
    opt.durability.seedFixpointsOnReplay = fast;
    opt.durability.checkpointEveryBatches = ckptEvery;
    return opt;
}

graph::Graph
baseGraph(std::uint64_t seed)
{
    return graph::powerLaw(200, 2.0, 4.0, {.seed = seed});
}

/**
 * A deterministic churn script: per round, a handful of brand-new
 * edges (never already present, so weight-wildcard deletions are
 * unambiguous) and, from round 2 on, deletions of edges inserted
 * earlier. flushAfter pins the batch boundaries, which both the
 * journal's Marker records and the scratch reference must reproduce.
 */
struct ChurnPlan
{
    std::vector<std::vector<gas::EdgeInsertion>> ins;
    std::vector<std::vector<gas::EdgeDeletion>> dels;
    std::vector<bool> flushAfter;
};

ChurnPlan
makePlan(const graph::Graph &g, std::uint64_t seed,
         std::size_t rounds = 4)
{
    std::set<std::pair<VertexId, VertexId>> present;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e)
            present.insert({v, g.target(e)});

    std::vector<std::pair<VertexId, VertexId>> mine;
    std::mt19937_64 rng(seed * 7919 + 17);
    std::uniform_int_distribution<VertexId> pick(
        0, g.numVertices() - 1);

    ChurnPlan plan;
    plan.ins.resize(rounds);
    plan.dels.resize(rounds);
    plan.flushAfter.assign(rounds, false);
    for (std::size_t r = 0; r + 2 < rounds; ++r)
        plan.flushAfter[r] = true; // last two rounds stay pending

    for (std::size_t r = 0; r < rounds; ++r) {
        for (int i = 0; i < 5; ++i) {
            VertexId s, d;
            do {
                s = pick(rng);
                d = pick(rng);
            } while (present.count({s, d}));
            present.insert({s, d});
            mine.push_back({s, d});
            plan.ins[r].push_back({s, d, 1.0});
        }
        if (r >= 2) {
            for (int i = 0; i < 2 && !mine.empty(); ++i) {
                const auto [s, d] = mine.front();
                mine.erase(mine.begin());
                present.erase({s, d});
                plan.dels[r].push_back(
                    {s, d, gas::EdgeDeletion::kAnyWeight});
            }
        }
    }
    return plan;
}

/** Drive the plan; every ack asserted (these are the writes recovery
 * must preserve). */
void
applyPlan(GraphService &svc, const ChurnPlan &plan)
{
    for (std::size_t r = 0; r < plan.ins.size(); ++r) {
        auto resp =
            svc.streamChurn("g", plan.ins[r], plan.dels[r]).get();
        ASSERT_TRUE(resp.ok()) << resp.error;
        if (plan.flushAfter[r]) {
            ASSERT_TRUE(svc.flush("g").get().ok());
        }
    }
}

std::vector<Value>
queryStates(GraphService &svc, const std::string &algo,
            bool *cacheHit = nullptr)
{
    auto r = svc.query({"g", algo, Solution::Sequential}).get();
    EXPECT_TRUE(r.ok()) << r.error;
    if (cacheHit)
        *cacheHit = r.cacheHit;
    if (!r.states)
        return {};
    return *r.states;
}

/** The scratch reference: same base graph, same churn, same batch
 * boundaries, no durability -- its first query computes from scratch
 * over the identical CSR. */
std::vector<Value>
scratchReference(std::uint64_t seed, const ChurnPlan &plan,
                 const std::string &algo)
{
    GraphService ref(baseOptions());
    EXPECT_GT(ref.loadGraph("g", baseGraph(seed)), 0u);
    applyPlan(ref, plan);
    EXPECT_TRUE(ref.flush("g").get().ok());
    return queryStates(ref, algo);
}

void
expectBitwiseEqual(const std::vector<Value> &a,
                   const std::vector<Value> &b,
                   const std::string &context)
{
    ASSERT_EQ(a.size(), b.size()) << context;
    ASSERT_FALSE(a.empty()) << context;
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          a.size() * sizeof(Value)),
              0)
        << context << ": recovered states differ from scratch "
        << "(max diff " << gas::maxStateDifference(a, b) << ")";
}

/** Occurrences of src->dst in the current snapshot (edge verb). */
std::uint64_t
edgeCount(GraphService &svc, const std::string &graph, VertexId src,
          VertexId dst)
{
    const auto out = runCommandLine(
        svc, "edge " + graph + " " + std::to_string(src) + " "
                 + std::to_string(dst))
                         .output;
    std::uint64_t count = 0;
    EXPECT_EQ(std::sscanf(out.c_str(), "ok count=%lu", &count), 1)
        << out;
    return count;
}

class RecoveryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        failpoint::clearAll();
        auto tmpl =
            (fs::temp_directory_path() / "dgrec.XXXXXX").string();
        ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
        dir_ = tmpl;
    }

    void
    TearDown() override
    {
        failpoint::clearAll();
        fs::remove_all(dir_);
    }

    std::string dir_;
};

/** One full crash/recover/differential cycle. */
void
crashAndVerify(const std::string &dir, std::uint64_t seed,
               const std::string &algo, bool warmQuery)
{
    const auto plan = makePlan(baseGraph(seed), seed);
    {
        GraphService a(durableOptions(dir));
        ASSERT_GT(a.loadGraph("g", baseGraph(seed)), 0u);
        if (warmQuery)
            (void)queryStates(a, algo); // cache a fixpoint pre-churn
        applyPlan(a, plan);
        a.durabilityManager().simulateCrash();
        // Teardown after the freeze: the files now look exactly as a
        // SIGKILL at the freeze instant would have left them.
    }

    GraphService b(durableOptions(dir));
    const auto &rep = b.recoveryReport();
    ASSERT_EQ(rep.graphs.size(), 1u);
    EXPECT_EQ(rep.graphs[0], "g");
    EXPECT_GT(rep.walRecordsReplayed, 0u);

    bool hit = true;
    const auto got = queryStates(b, algo, &hit);
    EXPECT_FALSE(hit) << "exact mode must recompute from scratch";
    expectBitwiseEqual(scratchReference(seed, plan, algo), got,
                       "seed " + std::to_string(seed) + " " + algo);
}

TEST_F(RecoveryTest, TwentyFourSeedDifferentialAcrossAlgorithms)
{
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        const auto sub =
            (fs::path(dir_) / std::to_string(seed)).string();
        fs::create_directories(sub);
        crashAndVerify(sub, seed, kAlgos[seed % 5], seed % 2 == 0);
        if (HasFatalFailure())
            return;
    }
}

TEST_F(RecoveryTest, CheckpointPlusWalSuffixReplaysExactly)
{
    const std::uint64_t seed = 101;
    const auto plan = makePlan(baseGraph(seed), seed);
    {
        GraphService a(durableOptions(dir_));
        ASSERT_GT(a.loadGraph("g", baseGraph(seed)), 0u);
        (void)queryStates(a, "pagerank"); // checkpoint gets a fixpoint

        // First half of the plan, then an explicit checkpoint...
        for (std::size_t r = 0; r < 2; ++r) {
            ASSERT_TRUE(
                a.streamChurn("g", plan.ins[r], plan.dels[r])
                    .get()
                    .ok());
            if (plan.flushAfter[r]) {
                ASSERT_TRUE(a.flush("g").get().ok());
            }
        }
        std::string err;
        ASSERT_TRUE(a.checkpoint("g", &err)) << err;
        EXPECT_TRUE(fs::exists(
            a.durabilityManager().ckptPath("g")));
        // The checkpoint truncated the journal.
        EXPECT_EQ(fs::file_size(a.durabilityManager().walPath("g")),
                  0u);

        // ...then the suffix the WAL must carry alone.
        for (std::size_t r = 2; r < plan.ins.size(); ++r) {
            ASSERT_TRUE(
                a.streamChurn("g", plan.ins[r], plan.dels[r])
                    .get()
                    .ok());
            if (plan.flushAfter[r]) {
                ASSERT_TRUE(a.flush("g").get().ok());
            }
        }
        a.durabilityManager().simulateCrash();
    }

    GraphService b(durableOptions(dir_));
    const auto &rep = b.recoveryReport();
    EXPECT_EQ(rep.checkpointsLoaded, 1u);
    EXPECT_GT(rep.walRecordsReplayed, 0u);

    expectBitwiseEqual(scratchReference(seed, plan, "pagerank"),
                       queryStates(b, "pagerank"),
                       "checkpoint + WAL suffix");
}

TEST_F(RecoveryTest, FastModeSeedsCachesAndReconvergesEpsilonEqual)
{
    const std::uint64_t seed = 202;
    const auto plan = makePlan(baseGraph(seed), seed);
    {
        GraphService a(durableOptions(dir_));
        ASSERT_GT(a.loadGraph("g", baseGraph(seed)), 0u);
        (void)queryStates(a, "pagerank");
        std::string err;
        ASSERT_TRUE(a.checkpoint("g", &err)) << err; // fixpoint saved
        applyPlan(a, plan);
        a.durabilityManager().simulateCrash();
    }

    GraphService b(durableOptions(
        dir_, durability::SyncPolicy::Always, /*fast=*/true));
    EXPECT_EQ(b.recoveryReport().checkpointsLoaded, 1u);

    // The seeded cache reconverged incrementally during replay: the
    // first query is a HIT, and epsilon-equal to scratch.
    bool hit = false;
    const auto got = queryStates(b, "pagerank", &hit);
    EXPECT_TRUE(hit)
        << "fast mode should serve the reconverged cache";
    const auto want = scratchReference(seed, plan, "pagerank");
    ASSERT_EQ(want.size(), got.size());
    const auto alg = gas::makeAlgorithm("pagerank");
    const double tol =
        alg->accumKind() == gas::AccumKind::Sum ? 1e-3 : 1e-9;
    EXPECT_LE(gas::maxStateDifference(want, got), tol);
}

TEST_F(RecoveryTest, TornWalTailIsTruncatedAndAckedWritesSurvive)
{
    const std::uint64_t seed = 303;
    const auto plan = makePlan(baseGraph(seed), seed);
    std::string walPath;
    {
        GraphService a(durableOptions(dir_));
        ASSERT_GT(a.loadGraph("g", baseGraph(seed)), 0u);
        applyPlan(a, plan);
        walPath = a.durabilityManager().walPath("g");
        a.durabilityManager().simulateCrash();
    }

    // A crash tore the last frame: splice garbage onto the journal.
    // Under --wal_sync=always every ACKED record precedes this tail.
    ASSERT_TRUE(fs::exists(walPath));
    const auto before = fs::file_size(walPath);
    std::ofstream(walPath, std::ios::binary | std::ios::app)
        << std::string("\x40\x00\x00\x00 torn frame debris", 22);

    GraphService b(durableOptions(dir_));
    const auto &rep = b.recoveryReport();
    EXPECT_GE(rep.tornTailsTruncated, 1u);
    EXPECT_GT(rep.walRecordsReplayed, 0u);

    expectBitwiseEqual(scratchReference(seed, plan, "sssp"),
                       queryStates(b, "sssp"), "torn tail");
    // The post-recovery checkpoint truncated the repaired journal.
    EXPECT_LT(fs::file_size(walPath), before);
}

TEST_F(RecoveryTest, WalAppendFailureAcksNothing)
{
    GraphService svc(durableOptions(dir_));
    ASSERT_GT(svc.loadGraph("g", baseGraph(1)), 0u);
    const auto before = edgeCount(svc, "g", 1, 2);

    ASSERT_TRUE(failpoint::arm("wal.append", "error"));
    auto r = svc.streamUpdates("g", {{1, 2, 1.0}}).get();
    EXPECT_EQ(r.status, Status::Internal);
    EXPECT_NE(r.error.find("durability"), std::string::npos)
        << r.error;
    // Nothing enqueued: the mutation is neither durable nor applied.
    EXPECT_EQ(svc.batcher().pendingEdges("g"), 0u);

    // loadGraph under the same fault: all or nothing.
    EXPECT_EQ(svc.loadGraph("g2", baseGraph(2)), 0u);
    EXPECT_EQ(svc.query({"g2", "pagerank", Solution::Sequential})
                  .get()
                  .status,
              Status::NotFound);

    failpoint::clearAll();
    auto r2 = svc.streamUpdates("g", {{1, 2, 1.0}}).get();
    ASSERT_TRUE(r2.ok()) << r2.error;
    ASSERT_TRUE(svc.flush("g").get().ok());
    EXPECT_EQ(edgeCount(svc, "g", 1, 2), before + 1);
}

TEST_F(RecoveryTest, PeriodicCheckpointTriggersAndRecoversAlone)
{
    std::uint64_t want = 0;
    {
        GraphService a(durableOptions(
            dir_, durability::SyncPolicy::Batch, false,
            /*ckptEvery=*/1));
        ASSERT_GT(a.loadGraph("g", baseGraph(5)), 0u);
        ASSERT_TRUE(a.streamUpdates("g", {{7, 9, 1.0}}).get().ok());
        ASSERT_TRUE(a.flush("g").get().ok());
        want = edgeCount(a, "g", 7, 9);
        // noteApplied() checkpoints on the flush path itself (the
        // try_lock has no contention here), so the file exists now.
        EXPECT_TRUE(
            fs::exists(a.durabilityManager().ckptPath("g")));
        EXPECT_EQ(fs::file_size(a.durabilityManager().walPath("g")),
                  0u);
        a.durabilityManager().simulateCrash();
    }

    GraphService b(durableOptions(dir_));
    EXPECT_EQ(b.recoveryReport().checkpointsLoaded, 1u);
    EXPECT_EQ(b.recoveryReport().walRecordsReplayed, 0u);
    EXPECT_EQ(edgeCount(b, "g", 7, 9), want);
}

TEST_F(RecoveryTest, GracefulShutdownThenRecoverKeepsEverything)
{
    const auto plan = makePlan(baseGraph(9), 9);
    {
        GraphService a(durableOptions(
            dir_, durability::SyncPolicy::Batch));
        ASSERT_GT(a.loadGraph("g", baseGraph(9)), 0u);
        applyPlan(a, plan);
        a.shutdown(); // drain syncs the journal; no crash
    }
    GraphService b(durableOptions(dir_));
    ASSERT_EQ(b.recoveryReport().graphs.size(), 1u);
    expectBitwiseEqual(scratchReference(9, plan, "wcc"),
                       queryStates(b, "wcc"), "graceful shutdown");
}

TEST_F(RecoveryTest, MultipleGraphsRecoverIndependently)
{
    std::uint64_t gBase = 0, hBase = 0;
    {
        GraphService a(durableOptions(dir_));
        ASSERT_GT(a.loadGraph("g", baseGraph(11)), 0u);
        ASSERT_GT(a.loadGraph("h", baseGraph(12)), 0u);
        gBase = edgeCount(a, "g", 3, 4);
        hBase = edgeCount(a, "h", 5, 6);
        ASSERT_TRUE(a.streamUpdates("g", {{3, 4, 1.0}}).get().ok());
        ASSERT_TRUE(a.streamUpdates("h", {{5, 6, 1.0}}).get().ok());
        std::string err;
        ASSERT_TRUE(a.checkpoint("h", &err)) << err; // h: ckpt only
        a.durabilityManager().simulateCrash();
    }

    GraphService b(durableOptions(dir_));
    const auto &rep = b.recoveryReport();
    EXPECT_EQ(rep.graphs.size(), 2u);
    EXPECT_EQ(rep.checkpointsLoaded, 1u);
    EXPECT_EQ(edgeCount(b, "g", 3, 4), gBase + 1);
    EXPECT_EQ(edgeCount(b, "h", 5, 6), hBase + 1);
}

TEST_F(RecoveryTest, RecoveredServiceKeepsJournalingNewWrites)
{
    std::uint64_t aBase = 0, bBase = 0;
    {
        GraphService a(durableOptions(dir_));
        ASSERT_GT(a.loadGraph("g", baseGraph(21)), 0u);
        aBase = edgeCount(a, "g", 1, 2);
        bBase = edgeCount(a, "g", 2, 3);
        ASSERT_TRUE(a.streamUpdates("g", {{1, 2, 1.0}}).get().ok());
        a.durabilityManager().simulateCrash();
    }
    {
        GraphService b(durableOptions(dir_));
        ASSERT_TRUE(b.streamUpdates("g", {{2, 3, 1.0}}).get().ok());
        b.durabilityManager().simulateCrash();
    }
    GraphService c(durableOptions(dir_));
    EXPECT_EQ(edgeCount(c, "g", 1, 2), aBase + 1);
    EXPECT_EQ(edgeCount(c, "g", 2, 3), bBase + 1);
}

} // namespace
} // namespace depgraph::service
