/**
 * @file
 * Tests for the linear GAS model primitives: LinearFunc composition
 * (incl. the cap extension), accumulators, and activity predicates.
 */

#include <gtest/gtest.h>

#include "gas/model.hh"

namespace depgraph::gas
{
namespace
{

TEST(LinearFunc, AppliesMuXi)
{
    LinearFunc f{2.0, 3.0, kInfinity};
    EXPECT_DOUBLE_EQ(f(5.0), 13.0);
}

TEST(LinearFunc, CapLimitsOutput)
{
    LinearFunc f{1.0, 0.0, 4.0};
    EXPECT_DOUBLE_EQ(f(2.0), 2.0);
    EXPECT_DOUBLE_EQ(f(9.0), 4.0);
}

TEST(LinearFunc, ComposePureLinear)
{
    // outer(inner(s)) = 2*(3s+1)+4 = 6s+6
    LinearFunc inner{3.0, 1.0, kInfinity};
    LinearFunc outer{2.0, 4.0, kInfinity};
    const LinearFunc c = LinearFunc::compose(outer, inner);
    EXPECT_DOUBLE_EQ(c.mu, 6.0);
    EXPECT_DOUBLE_EQ(c.xi, 6.0);
    EXPECT_EQ(c.cap, kInfinity);
    for (Value s : {-2.0, 0.0, 1.5, 10.0})
        EXPECT_DOUBLE_EQ(c(s), outer(inner(s)));
}

TEST(LinearFunc, ComposeWithCapsMatchesPointwise)
{
    // SSWP-style composition: min caps chain through.
    LinearFunc inner{1.0, 0.0, 5.0}; // min(s, 5)
    LinearFunc outer{1.0, 0.0, 3.0}; // min(s, 3)
    const LinearFunc c = LinearFunc::compose(outer, inner);
    for (Value s : {0.0, 2.0, 4.0, 6.0, 100.0})
        EXPECT_DOUBLE_EQ(c(s), outer(inner(s))) << "s=" << s;
    EXPECT_DOUBLE_EQ(c(100.0), 3.0);
}

TEST(LinearFunc, ComposeMixedCapAndAffine)
{
    // outer = 0.5*s + 1 (no cap), inner = min(s, 4)
    LinearFunc inner{1.0, 0.0, 4.0};
    LinearFunc outer{0.5, 1.0, kInfinity};
    const LinearFunc c = LinearFunc::compose(outer, inner);
    for (Value s : {0.0, 3.0, 4.0, 10.0})
        EXPECT_DOUBLE_EQ(c(s), outer(inner(s))) << "s=" << s;
    // Cap transforms through the outer affine map: 0.5*4+1 = 3.
    EXPECT_DOUBLE_EQ(c.cap, 3.0);
}

TEST(LinearFunc, ComposeAssociativity)
{
    LinearFunc a{0.9, 0.1, kInfinity};
    LinearFunc b{1.0, 2.0, 7.0};
    LinearFunc c{0.5, 0.0, kInfinity};
    const LinearFunc left =
        LinearFunc::compose(LinearFunc::compose(c, b), a);
    const LinearFunc right =
        LinearFunc::compose(c, LinearFunc::compose(b, a));
    for (Value s : {0.0, 1.0, 5.0, 50.0})
        EXPECT_NEAR(left(s), right(s), 1e-12) << "s=" << s;
}

TEST(Accum, IdentityElements)
{
    EXPECT_DOUBLE_EQ(accumIdentity(AccumKind::Sum), 0.0);
    EXPECT_EQ(accumIdentity(AccumKind::Min), kInfinity);
    EXPECT_EQ(accumIdentity(AccumKind::Max), -kInfinity);
}

TEST(Accum, Apply)
{
    EXPECT_DOUBLE_EQ(applyAccum(AccumKind::Sum, 2.0, 3.0), 5.0);
    EXPECT_DOUBLE_EQ(applyAccum(AccumKind::Min, 2.0, 3.0), 2.0);
    EXPECT_DOUBLE_EQ(applyAccum(AccumKind::Max, 2.0, 3.0), 3.0);
}

TEST(Accum, IdentityIsNeutral)
{
    for (auto k : {AccumKind::Sum, AccumKind::Min, AccumKind::Max}) {
        const Value id = accumIdentity(k);
        for (Value v : {-3.0, 0.0, 7.5})
            EXPECT_DOUBLE_EQ(applyAccum(k, id, v), v);
    }
}

TEST(WouldChange, SumThreshold)
{
    EXPECT_TRUE(wouldChange(AccumKind::Sum, 1.0, 0.1, 1e-5));
    EXPECT_FALSE(wouldChange(AccumKind::Sum, 1.0, 1e-7, 1e-5));
    EXPECT_TRUE(wouldChange(AccumKind::Sum, 1.0, -0.1, 1e-5));
}

TEST(WouldChange, MinOnlyWhenSmaller)
{
    EXPECT_TRUE(wouldChange(AccumKind::Min, 5.0, 3.0, 0.0));
    EXPECT_FALSE(wouldChange(AccumKind::Min, 5.0, 5.0, 0.0));
    EXPECT_FALSE(wouldChange(AccumKind::Min, 5.0, 8.0, 0.0));
    EXPECT_TRUE(wouldChange(AccumKind::Min, kInfinity, 1.0, 0.0));
    EXPECT_FALSE(wouldChange(AccumKind::Min, kInfinity, kInfinity, 0.0));
}

TEST(WouldChange, MaxOnlyWhenLarger)
{
    EXPECT_TRUE(wouldChange(AccumKind::Max, 3.0, 5.0, 0.0));
    EXPECT_FALSE(wouldChange(AccumKind::Max, 5.0, 5.0, 0.0));
    EXPECT_FALSE(wouldChange(AccumKind::Max, 5.0, 2.0, 0.0));
    EXPECT_TRUE(wouldChange(AccumKind::Max, -kInfinity, 0.0, 0.0));
    EXPECT_FALSE(wouldChange(AccumKind::Max, -kInfinity, -kInfinity,
                             0.0));
}

TEST(AccumKindName, AllNamed)
{
    EXPECT_STREQ(accumKindName(AccumKind::Sum), "sum");
    EXPECT_STREQ(accumKindName(AccumKind::Min), "min");
    EXPECT_STREQ(accumKindName(AccumKind::Max), "max");
}

} // namespace
} // namespace depgraph::gas
