/**
 * @file
 * GraphService end-to-end API semantics on a single thread of clients:
 * snapshot isolation, fixpoint caching, batched update visibility,
 * deadlines, rejection, the Session wrapper, and the dgserve line
 * protocol.
 */

#include <gtest/gtest.h>

#include "gas/algorithms.hh"
#include "gas/reference.hh"
#include "graph/generators.hh"
#include "service/protocol.hh"
#include "service/service.hh"

namespace depgraph::service
{
namespace
{

/** Small service wired for fast tests: Sequential engine, no logs. */
ServiceOptions
testOptions()
{
    ServiceOptions opt;
    opt.pool.numThreads = 2;
    opt.pool.queueCapacity = 64;
    opt.pool.blockWhenFull = true;
    opt.batcher.maxPendingEdges = 1000; // no auto-flush unless asked
    opt.batcher.solution = Solution::Sequential;
    return opt;
}

graph::Graph
testGraph(std::uint64_t seed = 11)
{
    return graph::powerLaw(300, 2.0, 5.0, {.seed = seed});
}

TEST(GraphService, QueryMatchesReferenceAndCachesFixpoint)
{
    GraphService svc(testOptions());
    svc.loadGraph("g", testGraph());

    auto r1 = svc.query({"g", "pagerank", Solution::Sequential}).get();
    ASSERT_TRUE(r1.ok());
    EXPECT_EQ(r1.version, 1u);
    EXPECT_FALSE(r1.cacheHit);
    ASSERT_NE(r1.states, nullptr);

    const auto g = testGraph();
    const auto alg = gas::makeAlgorithm("pagerank");
    const auto gold = gas::runReference(g, *alg);
    EXPECT_LE(gas::maxStateDifference(*r1.states, gold.states), 1e-3);

    // Same snapshot, same algorithm: served from the fixpoint cache.
    auto r2 = svc.query({"g", "pagerank", Solution::DepGraphH}).get();
    ASSERT_TRUE(r2.ok());
    EXPECT_TRUE(r2.cacheHit);
    EXPECT_EQ(r2.states, r1.states); // literally the same vector

    const auto st = svc.stats();
    EXPECT_EQ(st.queries, 2u);
    EXPECT_EQ(st.queryCacheHits, 1u);
    EXPECT_EQ(st.queryCacheMisses, 1u);
}

TEST(GraphService, ErrorsAreReportedNotFatal)
{
    GraphService svc(testOptions());
    svc.loadGraph("g", testGraph());

    EXPECT_EQ(svc.query({"nope", "pagerank", Solution::Sequential})
                  .get()
                  .status,
              Status::NotFound);
    EXPECT_EQ(svc.query({"g", "frobnicate", Solution::Sequential})
                  .get()
                  .status,
              Status::BadRequest);
    EXPECT_EQ(svc.streamUpdates("nope", {{0, 1, 1.0}}).get().status,
              Status::NotFound);
}

TEST(GraphService, UpdatesInvisibleUntilFlushThenVersionBumps)
{
    GraphService svc(testOptions());
    svc.loadGraph("g", testGraph());

    const auto before =
        svc.query({"g", "pagerank", Solution::Sequential}).get();
    ASSERT_TRUE(before.ok());

    auto upd = svc.streamUpdates("g", {{1, 2, 1.0}, {3, 4, 1.0}}).get();
    ASSERT_TRUE(upd.ok());
    EXPECT_EQ(upd.enqueuedEdges, 2u);
    EXPECT_EQ(upd.pendingEdges, 2u);
    EXPECT_EQ(upd.version, 0u); // below threshold: not applied yet

    // Snapshot isolation: still version 1, still a cache hit.
    auto mid = svc.query({"g", "pagerank", Solution::Sequential}).get();
    EXPECT_EQ(mid.version, 1u);
    EXPECT_TRUE(mid.cacheHit);

    auto fl = svc.flush("g").get();
    ASSERT_TRUE(fl.ok());
    EXPECT_EQ(fl.version, 2u);
    EXPECT_EQ(fl.pendingEdges, 0u);

    // The flush reconverged the cached pagerank fixpoint, so the
    // post-flush query is a cache hit at the new version...
    auto after = svc.query({"g", "pagerank", Solution::Sequential}).get();
    EXPECT_EQ(after.version, 2u);
    EXPECT_TRUE(after.cacheHit);

    // ...and matches a from-scratch run on the updated graph.
    const auto updated = gas::applyInsertions(
        testGraph(), {{1, 2, 1.0}, {3, 4, 1.0}});
    const auto alg = gas::makeAlgorithm("pagerank");
    const auto gold = gas::runReference(updated, *alg);
    EXPECT_LE(gas::maxStateDifference(*after.states, gold.states),
              1e-3);

    const auto st = svc.stats();
    EXPECT_EQ(st.batchesApplied, 1u);
    EXPECT_EQ(st.batchEdgesApplied, 2u);
    EXPECT_EQ(st.incrementalPasses, 1u);
}

TEST(GraphService, ThresholdCrossingTriggersAutoFlush)
{
    auto opt = testOptions();
    opt.batcher.maxPendingEdges = 4;
    GraphService svc(opt);
    svc.loadGraph("g", testGraph());

    svc.streamUpdates("g", {{0, 5, 1.0}, {1, 6, 1.0}}).get();
    auto r = svc.streamUpdates("g", {{2, 7, 1.0}, {3, 8, 1.0}}).get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.version, 2u); // crossing 4 pending edges applied them

    EXPECT_EQ(svc.batcher().pendingEdges("g"), 0u);
    EXPECT_EQ(svc.stats().batchesApplied, 1u);
    EXPECT_EQ(svc.stats().batchEdgesApplied, 4u);
}

TEST(GraphService, ExpiredDeadlineFailsFast)
{
    GraphService svc(testOptions());
    svc.loadGraph("g", testGraph());

    // A deadline already in the past when the worker picks it up.
    const auto past = std::chrono::steady_clock::now()
        - std::chrono::milliseconds(5);
    auto r = svc.query({"g", "pagerank", Solution::Sequential},
                       Deadline{past})
                 .get();
    EXPECT_EQ(r.status, Status::DeadlineExceeded);
    EXPECT_EQ(svc.stats().deadlineExpired, 1u);

    // A generous deadline passes untouched.
    auto ok = svc.query({"g", "pagerank", Solution::Sequential},
                        deadlineIn(std::chrono::minutes(1)))
                  .get();
    EXPECT_TRUE(ok.ok());
}

TEST(GraphService, SaturatedQueueRejectsUnderRejectPolicy)
{
    auto opt = testOptions();
    opt.pool.numThreads = 1;
    opt.pool.queueCapacity = 1;
    opt.pool.blockWhenFull = false;
    GraphService svc(opt);
    // Big enough that the first query holds the only worker for a
    // while (simulated run, hundreds of ms).
    svc.loadGraph("g", graph::powerLaw(4000, 2.0, 6.0, {.seed = 9}));

    auto slow = svc.query({"g", "pagerank", Solution::Sequential});
    bool sawReject = false;
    std::vector<std::future<Response>> pending;
    for (int i = 0; i < 64 && !sawReject; ++i) {
        auto f = svc.streamUpdates("g", {{0, 1, 1.0}});
        if (f.wait_for(std::chrono::seconds(0))
                == std::future_status::ready
            && f.get().status == Status::Rejected) {
            sawReject = true;
        } else {
            pending.push_back(std::move(f));
        }
    }
    EXPECT_TRUE(sawReject);
    EXPECT_GE(svc.stats().rejected, 1u);
    EXPECT_TRUE(slow.get().ok());
    svc.drain();
}

TEST(GraphService, DrainAppliesEverythingAccepted)
{
    GraphService svc(testOptions());
    svc.loadGraph("g", testGraph());
    svc.query({"g", "sssp", Solution::Sequential}).get();

    std::vector<std::future<Response>> futs;
    for (VertexId i = 0; i < 10; ++i)
        futs.push_back(
            svc.streamUpdates("g", {{i, i + 20, 1.0}}));
    for (auto &f : futs)
        ASSERT_TRUE(f.get().ok());

    svc.drain();
    const auto snap = svc.store().get("g");
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->version, 2u); // 10 requests, one coalesced batch
    EXPECT_EQ(svc.batcher().pendingEdges("g"), 0u);

    const auto st = svc.stats();
    EXPECT_EQ(st.updateRequests, 10u);
    EXPECT_EQ(st.batchesApplied, 1u);
    EXPECT_LT(st.batchesApplied, st.updateRequests);
}

TEST(GraphService, ShutdownAppliesPendingUpdates)
{
    auto svc = std::make_unique<GraphService>(testOptions());
    svc->loadGraph("g", testGraph());
    svc->streamUpdates("g", {{0, 9, 1.0}}).get();
    svc->shutdown();
    EXPECT_EQ(svc->store().get("g")->version, 2u);
    // After shutdown, requests are refused, not queued.
    EXPECT_EQ(svc->query({"g", "pagerank", Solution::Sequential})
                  .get()
                  .status,
              Status::ShuttingDown);
}

TEST(Session, BindsDefaultsAndRoundTrips)
{
    GraphService svc(testOptions());
    svc.loadGraph("social", testGraph(21));

    Session s(svc, "social", "pagerank", Solution::Sequential);
    auto q1 = s.query();
    ASSERT_TRUE(q1.ok());
    ASSERT_TRUE(s.update(2, 3, 1.0).ok());
    ASSERT_TRUE(s.update({{4, 5, 1.0}, {6, 7, 1.0}}).ok());
    auto fl = s.flushUpdates();
    ASSERT_TRUE(fl.ok());
    EXPECT_EQ(fl.version, 2u);
    auto q2 = s.query();
    ASSERT_TRUE(q2.ok());
    EXPECT_TRUE(q2.cacheHit);
    EXPECT_NE(q1.states, q2.states);

    s.setTimeout(std::chrono::minutes(1));
    EXPECT_TRUE(s.query("sssp").ok());
}

TEST(Protocol, ParsesAndExecutesScript)
{
    GraphService svc(testOptions());

    EXPECT_EQ(runCommandLine(svc, "load g path 6").output,
              "ok v=1 graph=g");
    EXPECT_EQ(runCommandLine(svc, "").output, "");
    EXPECT_EQ(runCommandLine(svc, "# comment").output, "");

    const auto q =
        runCommandLine(svc, "query g sssp Sequential 2").output;
    EXPECT_EQ(q.rfind("ok v=1 algo=sssp cache=miss", 0), 0u) << q;

    EXPECT_EQ(runCommandLine(svc, "update g 0 5 0.25").output,
              "ok enqueued=1 pending=1");
    EXPECT_EQ(runCommandLine(svc, "flush g").output,
              "ok applied v=2");
    EXPECT_EQ(runCommandLine(svc, "flush g").output,
              "ok nothing-pending");
    EXPECT_EQ(runCommandLine(svc, "graphs").output, "ok g@v2");
    EXPECT_EQ(runCommandLine(svc, "drain").output, "ok drained");

    // Errors are structured replies ("err <code> <msg>"), never fatal.
    EXPECT_EQ(runCommandLine(svc, "query").output,
              "err 400 usage: query <name> [algo] [solution] [top]");
    EXPECT_EQ(runCommandLine(svc, "query nope").output.rfind("err 404",
                                                             0),
              0u);
    EXPECT_EQ(runCommandLine(svc, "load g warp 9").output,
              "err 400 unknown generator 'warp'");
    EXPECT_EQ(runCommandLine(svc, "update g zero 1").output,
              "err 400 bad vertex id");
    EXPECT_EQ(runCommandLine(svc, "bogus").output,
              "err 400 unknown command 'bogus' (try help)");
    EXPECT_EQ(runCommandLine(
                  svc, "query " + std::string(kMaxLineBytes, 'x'))
                  .output.rfind("err 413", 0),
              0u);

    const auto quit = runCommandLine(svc, "quit");
    EXPECT_TRUE(quit.quit);

    // The metrics verb publishes the live stats and renders the
    // Prometheus text exposition.
    const auto metrics = runCommandLine(svc, "metrics").output;
    EXPECT_NE(metrics.find("# TYPE dg_service_queries_total counter"),
              std::string::npos);
    EXPECT_NE(metrics.find("# HELP dg_service_queries_total"),
              std::string::npos);
    EXPECT_NE(metrics.find(
                  "dg_service_time_us_bucket{type=\"query\",le=\"1\"}"),
              std::string::npos);
    EXPECT_NE(metrics.find("dg_service_queue_wait_us_count"),
              std::string::npos);

    // trace on -> dump produces parseable Chrome JSON; off disables.
    EXPECT_EQ(runCommandLine(svc, "trace on").output, "ok tracing");
    EXPECT_TRUE(runCommandLine(svc, "query g sssp").output.rfind(
                    "ok", 0) == 0);
    const auto dump_path =
        ::testing::TempDir() + "/protocol_trace.json";
    const auto dumped =
        runCommandLine(svc, "trace dump " + dump_path).output;
    EXPECT_EQ(dumped.rfind("ok events=", 0), 0u) << dumped;
    EXPECT_EQ(runCommandLine(svc, "trace off").output, "ok stopped");
    EXPECT_EQ(runCommandLine(svc, "trace").output.rfind("err 400", 0),
              0u);

    // The stream driver stops at quit and counts commands.
    std::istringstream in("load h ring 5\nquery h sssp\nquit\nquery h");
    std::ostringstream out;
    EXPECT_EQ(serveStream(svc, in, out), 3u);
    EXPECT_NE(out.str().find("bye"), std::string::npos);
}

} // namespace
} // namespace depgraph::service
