/**
 * @file
 * Tests for the software runtime engines and accelerator models:
 * correctness against the reference fixpoint (the Theorem-1 anchor for
 * baselines), metric sanity, and the qualitative orderings the paper's
 * motivation section reports (sequential-DFS minimality, async < sync
 * update counts).
 */

#include <gtest/gtest.h>

#include <memory>

#include "accel/accelerators.hh"
#include "gas/algorithms.hh"
#include "gas/reference.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"
#include "runtime/sequential.hh"
#include "runtime/soft_engine.hh"

namespace depgraph::runtime
{
namespace
{

using gas::makeAlgorithm;
using gas::maxStateDifference;
using gas::runReference;
using graph::Graph;

sim::MachineParams
testMachine(unsigned cores = 8)
{
    sim::MachineParams p;
    p.numCores = cores;
    p.l3TotalBytes = 8 * 1024 * 1024; // small L3 keeps tests fast
    p.l3Banks = 8;
    return p;
}

std::vector<EnginePtr>
allEngines(EngineOptions opt)
{
    std::vector<EnginePtr> v;
    v.push_back(std::make_unique<SequentialEngine>(opt));
    v.push_back(makeLigra(opt));
    v.push_back(makeMosaic(opt));
    v.push_back(makeWonderland(opt));
    v.push_back(makeFbsGraph(opt));
    v.push_back(makeLigraO(opt));
    v.push_back(accel::makeHats(opt));
    v.push_back(accel::makeMinnow(opt));
    v.push_back(accel::makePhi(opt));
    return v;
}

/** Every engine must converge to the reference fixpoint. */
class EngineCorrectness : public ::testing::TestWithParam<std::string>
{};

TEST_P(EngineCorrectness, MatchesReferenceOnPowerLaw)
{
    const Graph g = graph::powerLaw(800, 2.0, 8.0, {.seed = 61});
    const auto gold_alg = makeAlgorithm(GetParam());
    const auto gold = runReference(g, *gold_alg);
    ASSERT_TRUE(gold.converged);

    EngineOptions opt;
    opt.numCores = 8;
    sim::Machine m(testMachine());
    for (auto &e : allEngines(opt)) {
        const auto alg = makeAlgorithm(GetParam());
        const auto r = e->run(g, *alg, m);
        EXPECT_TRUE(r.metrics.converged) << e->name();
        EXPECT_LE(maxStateDifference(r.states, gold.states), 1e-3)
            << e->name() << " diverges from reference on "
            << GetParam();
    }
}

TEST_P(EngineCorrectness, MatchesReferenceOnCommunityChain)
{
    const Graph g =
        graph::communityChain(5, 120, 2.0, 6.0, 2, {.seed = 62});
    const auto gold_alg = makeAlgorithm(GetParam());
    const auto gold = runReference(g, *gold_alg);

    EngineOptions opt;
    opt.numCores = 4;
    sim::Machine m(testMachine(4));
    for (auto &e : allEngines(opt)) {
        const auto alg = makeAlgorithm(GetParam());
        const auto r = e->run(g, *alg, m);
        EXPECT_LE(maxStateDifference(r.states, gold.states), 1e-3)
            << e->name();
    }
}

INSTANTIATE_TEST_SUITE_P(Algos, EngineCorrectness,
                         ::testing::Values("pagerank", "sssp", "wcc",
                                           "adsorption", "sswp"));

TEST(EngineMetrics, SequentialHasMinimalUpdates)
{
    const Graph g = graph::powerLaw(600, 2.0, 8.0, {.seed = 63});
    sim::Machine m(testMachine());
    EngineOptions opt;
    opt.numCores = 8;

    auto sssp_a = makeAlgorithm("sssp");
    SequentialEngine seq(opt);
    const auto seq_r = seq.run(g, *sssp_a, m);

    auto sssp_b = makeAlgorithm("sssp");
    const auto ligra = makeLigra(opt)->run(g, *sssp_b, m);

    auto sssp_c = makeAlgorithm("sssp");
    const auto ligra_o = makeLigraO(opt)->run(g, *sssp_c, m);

    // Observation one: async DFS needs the fewest updates; the
    // synchronous system needs the most.
    EXPECT_LE(seq_r.metrics.updates, ligra_o.metrics.updates);
    EXPECT_LE(ligra_o.metrics.updates, ligra.metrics.updates);
    EXPECT_GT(ligra.metrics.updates, 0u);
}

TEST(EngineMetrics, CountMinimalUpdatesMatchesTimedRun)
{
    const Graph g = graph::powerLaw(400, 2.0, 6.0, {.seed = 64});
    auto a1 = makeAlgorithm("sssp");
    auto a2 = makeAlgorithm("sssp");
    sim::Machine m(testMachine(1));
    EngineOptions opt;
    opt.numCores = 1;
    SequentialEngine seq(opt);
    const auto timed = seq.run(g, *a1, m);
    const auto counted =
        SequentialEngine::countMinimalUpdates(g, *a2);
    EXPECT_EQ(timed.metrics.updates, counted);
}

TEST(EngineMetrics, UtilizationIsAFraction)
{
    const Graph g = graph::powerLaw(500, 2.0, 8.0, {.seed = 65});
    sim::Machine m(testMachine());
    EngineOptions opt;
    opt.numCores = 8;
    auto alg = makeAlgorithm("pagerank");
    const auto r = makeLigraO(opt)->run(g, *alg, m);
    EXPECT_GT(r.metrics.utilization(), 0.0);
    EXPECT_LE(r.metrics.utilization(), 1.0);
    EXPECT_GT(r.metrics.makespan, 0u);
    EXPECT_GT(r.metrics.busyCycles(), 0u);
}

TEST(EngineMetrics, EffectiveUtilizationBelowTotal)
{
    const Graph g = graph::powerLaw(500, 2.0, 8.0, {.seed = 66});
    sim::Machine m(testMachine());
    EngineOptions opt;
    opt.numCores = 8;
    auto alg = makeAlgorithm("pagerank");
    auto alg2 = makeAlgorithm("pagerank");
    const auto r = makeLigra(opt)->run(g, *alg, m);
    const auto u_s = SequentialEngine::countMinimalUpdates(g, *alg2);
    const double re = r.metrics.effectiveUtilization(u_s);
    EXPECT_GT(re, 0.0);
    EXPECT_LE(re, r.metrics.utilization() + 1e-12);
}

TEST(EngineMetrics, DeterministicAcrossRuns)
{
    const Graph g = graph::powerLaw(300, 2.0, 6.0, {.seed = 67});
    EngineOptions opt;
    opt.numCores = 4;
    auto run_once = [&] {
        sim::Machine m(testMachine(4));
        auto alg = makeAlgorithm("pagerank");
        return makeLigraO(opt)->run(g, *alg, m);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
    EXPECT_EQ(a.metrics.updates, b.metrics.updates);
    EXPECT_EQ(a.memStats.l1.hits, b.memStats.l1.hits);
}

TEST(EngineMetrics, MoreCoresShortenMakespan)
{
    const Graph g = graph::powerLaw(1500, 2.0, 10.0, {.seed = 68});
    auto run_with = [&](unsigned cores) {
        sim::Machine m(testMachine(cores));
        EngineOptions opt;
        opt.numCores = cores;
        auto alg = makeAlgorithm("pagerank");
        return makeLigraO(opt)->run(g, *alg, m).metrics.makespan;
    };
    const auto t1 = run_with(1);
    const auto t8 = run_with(8);
    EXPECT_LT(t8, t1);
}

TEST(Accelerators, NamesAreCorrect)
{
    EXPECT_EQ(accel::makeHats()->name(), "HATS");
    EXPECT_EQ(accel::makeMinnow()->name(), "Minnow");
    EXPECT_EQ(accel::makePhi()->name(), "PHI");
    EXPECT_EQ(makeLigra()->name(), "Ligra");
    EXPECT_EQ(makeLigraO()->name(), "Ligra-o");
}

TEST(Accelerators, UseAcceleratorOps)
{
    const Graph g = graph::powerLaw(400, 2.0, 8.0, {.seed = 69});
    sim::Machine m(testMachine());
    EngineOptions opt;
    opt.numCores = 8;
    for (auto make : {accel::makeHats, accel::makeMinnow,
                      accel::makePhi}) {
        auto alg = makeAlgorithm("pagerank");
        const auto r = make(opt)->run(g, *alg, m);
        EXPECT_GT(r.metrics.accelOps, 0u);
    }
    // The pure software baseline performs no accelerator operations.
    auto alg = makeAlgorithm("pagerank");
    EXPECT_EQ(makeLigraO(opt)->run(g, *alg, m).metrics.accelOps, 0u);
}

TEST(Accelerators, AcceleratedRunsBeatLigraO)
{
    // On a skewed graph each accelerator should improve on Ligra-o
    // makespan (the premise of the paper's Fig. 11 baseline bars).
    const Graph g = graph::powerLaw(3000, 2.0, 12.0, {.seed = 70});
    EngineOptions opt;
    opt.numCores = 8;
    auto run_engine = [&](EnginePtr e) {
        sim::Machine m(testMachine());
        auto alg = makeAlgorithm("pagerank");
        return e->run(g, *alg, m).metrics.makespan;
    };
    const auto base = run_engine(makeLigraO(opt));
    EXPECT_LT(run_engine(accel::makeMinnow(opt)), base);
    EXPECT_LT(run_engine(accel::makePhi(opt)), base);
    // HATS targets locality; give it a small tolerance band.
    EXPECT_LT(run_engine(accel::makeHats(opt)),
              static_cast<Cycles>(1.10 * static_cast<double>(base)));
}

TEST(EngineBreakdown, SharesSumToOne)
{
    const Graph g = graph::powerLaw(400, 2.0, 6.0, {.seed = 71});
    sim::Machine m(testMachine());
    EngineOptions opt;
    opt.numCores = 8;
    auto alg = makeAlgorithm("pagerank");
    const auto r = makeLigraO(opt)->run(g, *alg, m);
    const auto &mx = r.metrics;
    EXPECT_EQ(mx.busyCycles(),
              mx.computeCycles + mx.memStallCycles + mx.overheadCycles);
    EXPECT_GE(mx.otherTimeShare(), 0.0);
    EXPECT_LE(mx.otherTimeShare(), 1.0);
}

TEST(EngineEnergy, NonZeroAndDramSensitive)
{
    const Graph g = graph::powerLaw(400, 2.0, 6.0, {.seed = 72});
    sim::Machine m(testMachine());
    EngineOptions opt;
    opt.numCores = 8;
    auto alg = makeAlgorithm("pagerank");
    const auto r = makeLigraO(opt)->run(g, *alg, m);
    EXPECT_GT(r.energy.totalMj(), 0.0);
    EXPECT_GT(r.energy.coreMj, 0.0);
    EXPECT_GT(r.energy.dramMj, 0.0);
}

} // namespace
} // namespace depgraph::runtime
