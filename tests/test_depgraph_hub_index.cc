/**
 * @file
 * Tests for the hub index table and the DDMU flag protocol
 * (N -> I -> A with the two-point linear solve), including the exact
 * solve the paper gives: mu = (s'_i - s_i)/(s'_j - s_j),
 * xi = s'_i - mu * s'_j.
 */

#include <gtest/gtest.h>

#include "depgraph/ddmu.hh"
#include "depgraph/hub_index.hh"
#include "sim/machine.hh"

namespace depgraph::dep
{
namespace
{

sim::Machine &
testMachine()
{
    static sim::MachineParams p = [] {
        sim::MachineParams q;
        q.numCores = 2;
        q.l3TotalBytes = 1024 * 1024;
        q.l3Banks = 2;
        return q;
    }();
    static sim::Machine m(p);
    return m;
}

TEST(HubIndex, FindOrCreateIsIdempotent)
{
    HubIndex idx(testMachine(), 16, 64);
    const auto a = idx.findOrCreate(3, 9, 5);
    const auto b = idx.findOrCreate(3, 9, 5);
    EXPECT_EQ(a, b);
    EXPECT_EQ(idx.size(), 1u);
    EXPECT_EQ(idx.entry(a).head, 3u);
    EXPECT_EQ(idx.entry(a).tail, 9u);
    EXPECT_EQ(idx.entry(a).pathId, 5u);
    EXPECT_EQ(idx.entry(a).flag, EntryFlag::N);
}

TEST(HubIndex, DistinguishesPathsBetweenSamePair)
{
    // The paper stores parallel core-paths between the same (j, i)
    // under different path ids (the id of the second vertex).
    HubIndex idx(testMachine(), 16, 64);
    const auto a = idx.findOrCreate(3, 9, 5);
    const auto b = idx.findOrCreate(3, 9, 7);
    EXPECT_NE(a, b);
    EXPECT_EQ(idx.size(), 2u);
}

TEST(HubIndex, FindMissReturnsNoEntry)
{
    HubIndex idx(testMachine(), 16, 64);
    EXPECT_EQ(idx.find(1, 2), HubIndex::kNoEntry);
}

TEST(HubIndex, EntriesOfGroupsByHead)
{
    HubIndex idx(testMachine(), 16, 64);
    idx.findOrCreate(3, 9, 5);
    idx.findOrCreate(3, 11, 6);
    idx.findOrCreate(4, 9, 5);
    EXPECT_EQ(idx.entriesOf(3).size(), 2u);
    EXPECT_EQ(idx.entriesOf(4).size(), 1u);
    EXPECT_TRUE(idx.entriesOf(99).empty());
}

TEST(HubIndex, AddressesAreDistinctPerEntry)
{
    HubIndex idx(testMachine(), 16, 64);
    const auto a = idx.findOrCreate(1, 2, 3);
    const auto b = idx.findOrCreate(1, 2, 4);
    EXPECT_NE(idx.entryAddr(a), idx.entryAddr(b));
    EXPECT_EQ(idx.entryAddr(b) - idx.entryAddr(a),
              HubIndex::kEntryBytes);
}

TEST(HubIndex, ByteSizeGrowsWithEntries)
{
    HubIndex idx(testMachine(), 16, 64);
    const auto empty = idx.byteSize();
    idx.findOrCreate(1, 2, 3);
    EXPECT_EQ(idx.byteSize(), empty + HubIndex::kEntryBytes);
}

TEST(Ddmu, FlagProtocolNThenIThenA)
{
    HubIndex idx(testMachine(), 16, 64);
    Ddmu ddmu(idx);
    gas::LinearFunc composed{0.5, 1.0, kInfinity};

    // No entry yet: shortcut unavailable.
    EXPECT_FALSE(ddmu.tryShortcut(1, 2, 10.0).has_value());

    // First observation: N -> I; still unavailable.
    ddmu.observe(1, 9, 2, /*in=*/4.0, /*out=*/3.0, composed,
                 FitMode::TwoPoint);
    EXPECT_EQ(idx.entry(idx.find(1, 2)).flag, EntryFlag::I);
    EXPECT_FALSE(ddmu.tryShortcut(1, 2, 10.0).has_value());

    // Second observation with a different input: I -> A.
    // Samples (4, 3) and (8, 5) => mu = 0.5, xi = 1.
    ddmu.observe(1, 9, 2, 8.0, 5.0, composed, FitMode::TwoPoint);
    EXPECT_EQ(idx.entry(idx.find(1, 2)).flag, EntryFlag::A);
    const auto f = ddmu.tryShortcut(1, 2, 10.0);
    ASSERT_TRUE(f.has_value());
    EXPECT_DOUBLE_EQ(*f, 0.5 * 10.0 + 1.0);
}

TEST(Ddmu, SameInputTwiceStaysInitialized)
{
    HubIndex idx(testMachine(), 16, 64);
    Ddmu ddmu(idx);
    gas::LinearFunc composed{1.0, 0.0, kInfinity};
    ddmu.observe(1, 9, 2, 4.0, 4.0, composed, FitMode::TwoPoint);
    ddmu.observe(1, 9, 2, 4.0, 4.0, composed, FitMode::TwoPoint);
    EXPECT_EQ(idx.entry(idx.find(1, 2)).flag, EntryFlag::I);
    // A distinguishable sample finally promotes it.
    ddmu.observe(1, 9, 2, 6.0, 6.0, composed, FitMode::TwoPoint);
    EXPECT_EQ(idx.entry(idx.find(1, 2)).flag, EntryFlag::A);
    EXPECT_DOUBLE_EQ(*ddmu.tryShortcut(1, 2, 3.0), 3.0); // mu=1, xi=0
}

TEST(Ddmu, ComposeModeAvailableImmediately)
{
    HubIndex idx(testMachine(), 16, 64);
    Ddmu ddmu(idx);
    gas::LinearFunc composed{1.0, 0.0, 5.0}; // min(s, 5): SSWP-style
    ddmu.observe(1, 9, 2, 7.0, 5.0, composed, FitMode::Compose);
    EXPECT_EQ(idx.entry(idx.find(1, 2)).flag, EntryFlag::A);
    EXPECT_DOUBLE_EQ(*ddmu.tryShortcut(1, 2, 3.0), 3.0);
    EXPECT_DOUBLE_EQ(*ddmu.tryShortcut(1, 2, 9.0), 5.0); // capped
}

TEST(Ddmu, AvailableEntryIsStable)
{
    HubIndex idx(testMachine(), 16, 64);
    Ddmu ddmu(idx);
    gas::LinearFunc composed{2.0, 0.0, kInfinity};
    ddmu.observe(1, 9, 2, 1.0, 2.0, composed, FitMode::TwoPoint);
    ddmu.observe(1, 9, 2, 2.0, 4.0, composed, FitMode::TwoPoint);
    ASSERT_TRUE(ddmu.tryShortcut(1, 2, 5.0).has_value());
    // Further observations do not perturb the solved dependency.
    ddmu.observe(1, 9, 2, 100.0, 123.0, composed, FitMode::TwoPoint);
    EXPECT_DOUBLE_EQ(*ddmu.tryShortcut(1, 2, 5.0), 10.0);
}

TEST(Ddmu, StatsCountEvents)
{
    HubIndex idx(testMachine(), 16, 64);
    Ddmu ddmu(idx);
    gas::LinearFunc composed{1.0, 1.0, kInfinity};
    ddmu.tryShortcut(1, 2, 1.0);
    ddmu.observe(1, 9, 2, 1.0, 2.0, composed, FitMode::TwoPoint);
    ddmu.observe(1, 9, 2, 2.0, 3.0, composed, FitMode::TwoPoint);
    ddmu.tryShortcut(1, 2, 1.0);
    const auto &s = ddmu.stats();
    EXPECT_EQ(s.lookups, 2u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.inserts, 1u);
    EXPECT_EQ(s.fits, 1u);
    EXPECT_EQ(s.samples, 2u);
}

TEST(Ddmu, SsspStyleFitIsExact)
{
    // SSSP along a path of total weight 1.4 (the paper's Fig. 5c
    // example): samples (d, d + 1.4) must fit mu = 1, xi = 1.4.
    HubIndex idx(testMachine(), 16, 64);
    Ddmu ddmu(idx);
    gas::LinearFunc composed{1.0, 1.4, kInfinity};
    ddmu.observe(5, 15, 7, 3.0, 4.4, composed, FitMode::TwoPoint);
    ddmu.observe(5, 15, 7, 1.0, 2.4, composed, FitMode::TwoPoint);
    const auto &e = idx.entry(idx.find(5, 7));
    EXPECT_EQ(e.flag, EntryFlag::A);
    EXPECT_NEAR(e.func.mu, 1.0, 1e-12);
    EXPECT_NEAR(e.func.xi, 1.4, 1e-12);
}

TEST(Ddmu, PageRankStyleFitIsExact)
{
    // Paper Fig. 5b: pagerank with damping 0.1 over a 4-hop path with
    // a fan-out of 2 at the head: mu = 0.1^4 / 2, xi = 0.
    const double mu = std::pow(0.1, 4) / 2.0;
    HubIndex idx(testMachine(), 16, 64);
    Ddmu ddmu(idx);
    gas::LinearFunc composed{mu, 0.0, kInfinity};
    ddmu.observe(5, 15, 7, 1.0, mu, composed, FitMode::TwoPoint);
    ddmu.observe(5, 15, 7, 3.0, 3.0 * mu, composed,
                 FitMode::TwoPoint);
    const auto &e = idx.entry(idx.find(5, 7));
    EXPECT_EQ(e.flag, EntryFlag::A);
    EXPECT_NEAR(e.func.mu, mu, 1e-15);
    EXPECT_NEAR(e.func.xi, 0.0, 1e-15);
}

} // namespace
} // namespace depgraph::dep
