/**
 * @file
 * Tests for contiguous edge-balanced partitioning.
 */

#include <gtest/gtest.h>

#include "graph/generators.hh"
#include "graph/partition.hh"

namespace depgraph::graph
{
namespace
{

TEST(Partition, CoversAllVerticesExactlyOnce)
{
    const Graph g = powerLaw(1000, 2.0, 8.0, {.seed = 21});
    const Partitioning p(g, 8);
    ASSERT_EQ(p.numParts(), 8u);
    VertexId expect = 0;
    for (unsigned i = 0; i < p.numParts(); ++i) {
        EXPECT_EQ(p.range(i).begin, expect);
        expect = p.range(i).end;
    }
    EXPECT_EQ(expect, g.numVertices());
}

TEST(Partition, OwnerOfIsConsistentWithRanges)
{
    const Graph g = powerLaw(500, 2.0, 6.0, {.seed = 22});
    const Partitioning p(g, 7);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        const unsigned owner = p.ownerOf(v);
        ASSERT_TRUE(p.range(owner).contains(v)) << "vertex " << v;
    }
}

TEST(Partition, EdgeBalanceWithinFactor)
{
    const Graph g = erdosRenyi(4000, 40000, {.seed = 23});
    const Partitioning p(g, 8);
    EdgeId min_e = g.numEdges(), max_e = 0;
    for (unsigned i = 0; i < p.numParts(); ++i) {
        EdgeId e = 0;
        for (VertexId v = p.range(i).begin; v < p.range(i).end; ++v)
            e += g.outDegree(v);
        min_e = std::min(min_e, e);
        max_e = std::max(max_e, e);
    }
    // ER graphs have uniform degrees; ranges should be well balanced.
    EXPECT_LT(static_cast<double>(max_e),
              2.0 * static_cast<double>(min_e) + 64.0);
}

TEST(Partition, SinglePartition)
{
    const Graph g = path(10);
    const Partitioning p(g, 1);
    EXPECT_EQ(p.numParts(), 1u);
    EXPECT_EQ(p.range(0).begin, 0u);
    EXPECT_EQ(p.range(0).end, 10u);
    EXPECT_EQ(p.ownerOf(9), 0u);
}

TEST(Partition, MorePartsThanVertices)
{
    const Graph g = path(3);
    const Partitioning p(g, 8);
    EXPECT_EQ(p.numParts(), 8u);
    EXPECT_EQ(p.range(7).end, 3u);
    // Every vertex still has exactly one owner.
    for (VertexId v = 0; v < 3; ++v) {
        const unsigned o = p.ownerOf(v);
        EXPECT_TRUE(p.range(o).contains(v));
    }
}

TEST(PartitionRange, ContainsBoundaries)
{
    PartitionRange r{10, 20};
    EXPECT_TRUE(r.contains(10));
    EXPECT_TRUE(r.contains(19));
    EXPECT_FALSE(r.contains(20));
    EXPECT_FALSE(r.contains(9));
    EXPECT_EQ(r.size(), 10u);
}

/** Property sweep: any partition count covers the graph contiguously. */
class PartitionSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(PartitionSweep, AlwaysContiguousAndComplete)
{
    const Graph g = powerLaw(777, 2.0, 5.0, {.seed = 24});
    const Partitioning p(g, GetParam());
    VertexId expect = 0;
    for (unsigned i = 0; i < p.numParts(); ++i) {
        ASSERT_EQ(p.range(i).begin, expect);
        ASSERT_LE(p.range(i).begin, p.range(i).end);
        expect = p.range(i).end;
    }
    ASSERT_EQ(expect, g.numVertices());
}

INSTANTIATE_TEST_SUITE_P(Counts, PartitionSweep,
                         ::testing::Values(1, 2, 3, 8, 16, 64, 100));

} // namespace
} // namespace depgraph::graph
