/**
 * @file
 * Tests for vertex relabeling: permutation validity, structural
 * isomorphism under relabel (degrees, algorithm results), bandwidth
 * reduction by RCM, and the degree/random orders.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "gas/algorithms.hh"
#include "gas/reference.hh"
#include "graph/generators.hh"
#include "graph/reorder.hh"

namespace depgraph::graph
{
namespace
{

TEST(Permutation, Validation)
{
    const Graph g = path(4);
    EXPECT_TRUE(isPermutation(g, {0, 1, 2, 3}));
    EXPECT_TRUE(isPermutation(g, {3, 1, 0, 2}));
    EXPECT_FALSE(isPermutation(g, {0, 1, 2}));      // wrong size
    EXPECT_FALSE(isPermutation(g, {0, 1, 2, 2}));   // duplicate
    EXPECT_FALSE(isPermutation(g, {0, 1, 2, 4}));   // out of range
}

TEST(Relabel, PreservesDegreesAndWeights)
{
    const Graph g = powerLaw(300, 2.0, 6.0, {.seed = 501});
    const auto perm = randomOrder(g, 502);
    const Graph h = relabel(g, perm);
    ASSERT_EQ(h.numVertices(), g.numVertices());
    ASSERT_EQ(h.numEdges(), g.numEdges());
    Value wg = 0, wh = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(h.outDegree(perm[v]), g.outDegree(v));
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e)
            wg += g.weight(e);
    }
    for (EdgeId e = 0; e < h.numEdges(); ++e)
        wh += h.weight(e);
    EXPECT_NEAR(wg, wh, 1e-6);
}

TEST(Relabel, AlgorithmResultsArePermuted)
{
    // SSSP from the relabeled source gives the permuted distances.
    const Graph g = powerLaw(250, 2.0, 6.0, {.seed = 503});
    const auto perm = randomOrder(g, 504);
    const Graph h = relabel(g, perm);

    gas::Sssp a0(0);
    const auto r0 = gas::runReference(g, a0);
    gas::Sssp a1(perm[0]);
    const auto r1 = gas::runReference(h, a1);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (std::isfinite(r0.states[v]))
            EXPECT_NEAR(r1.states[perm[v]], r0.states[v], 1e-9);
        else
            EXPECT_EQ(r1.states[perm[v]], r0.states[v]);
    }
}

TEST(Rcm, ReducesGridBandwidth)
{
    // A randomly labeled grid has huge bandwidth; RCM restores
    // near-optimal (cols+1-ish) bandwidth.
    const Graph g0 = grid(16, 16);
    const Graph shuffled = relabel(g0, randomOrder(g0, 505));
    const Graph rcm = relabel(shuffled, rcmOrder(shuffled));
    EXPECT_LT(bandwidth(rcm), bandwidth(shuffled) / 2);
    EXPECT_LE(bandwidth(rcm), 40u); // near the grid's natural ~17
}

TEST(Rcm, IsAPermutationOnAnyGraph)
{
    for (const Graph &g :
         {powerLaw(200, 2.0, 5.0, {.seed = 506}), star(50),
          binaryTree(63), communityChain(3, 40, 2.0, 5.0, 1,
                                         {.seed = 507})}) {
        EXPECT_TRUE(isPermutation(g, rcmOrder(g)));
    }
}

TEST(DegreeOrder, HubsGetSmallestIds)
{
    const Graph g = star(20);
    const auto perm = degreeOrder(g);
    EXPECT_EQ(perm[0], 0u); // the hub keeps id 0
    EXPECT_TRUE(isPermutation(g, perm));
}

TEST(RandomOrder, DeterministicPerSeed)
{
    const Graph g = path(100);
    EXPECT_EQ(randomOrder(g, 1), randomOrder(g, 1));
    EXPECT_NE(randomOrder(g, 1), randomOrder(g, 2));
}

TEST(Bandwidth, PathAndStar)
{
    EXPECT_EQ(bandwidth(path(10)), 1u);
    EXPECT_EQ(bandwidth(star(10)), 9u);
}

} // namespace
} // namespace depgraph::graph
