/**
 * @file
 * Differential churn harness: after a mixed stream of edge insertions
 * AND deletions, resuming from the old fixpoint with the injection
 * computed by gas::edgeChurnDeltas must converge to the same states as
 * a from-scratch run on the updated graph. Deletions are the
 * correctness-hard half -- sum accumulators must retract exactly the
 * historical mass of the deleted edge, min/max accumulators must
 * re-seed everything the edge supported -- so the harness sweeps many
 * random seeds across both accumulator classes and through the real
 * engines, plus targeted edge cases (nonexistent edges, dangling
 * vertices, parallel duplicates).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/depgraph_system.hh"
#include "depgraph/fold_kernels.hh"
#include "gas/incremental.hh"
#include "gas/reference.hh"
#include "graph/generators.hh"

namespace depgraph::gas
{
namespace
{

using graph::Graph;

struct Churn
{
    std::vector<EdgeInsertion> ins;
    std::vector<EdgeDeletion> dels;
};

/** Random mixed batch: fresh insertions plus deletions of edges that
 * exist in g (and an occasional nonexistent one, which must be a
 * no-op). */
Churn
someChurn(const Graph &g, unsigned n_ins, unsigned n_dels,
          std::uint64_t seed)
{
    Rng rng(seed);
    Churn c;
    for (unsigned i = 0; i < n_ins; ++i) {
        const auto s = static_cast<VertexId>(
            rng.nextBounded(g.numVertices()));
        auto d =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        if (d == s)
            d = (d + 1) % g.numVertices();
        c.ins.push_back({s, d, rng.nextDouble(1.0, 5.0)});
    }
    for (unsigned i = 0; i < n_dels; ++i) {
        const auto s = static_cast<VertexId>(
            rng.nextBounded(g.numVertices()));
        if (g.outDegree(s) == 0 || rng.nextBounded(8) == 0) {
            // Sprinkle in deletions that match nothing.
            c.dels.push_back(
                {s, static_cast<VertexId>(
                        rng.nextBounded(g.numVertices()))});
            continue;
        }
        const EdgeId e = g.edgeBegin(s)
            + static_cast<EdgeId>(rng.nextBounded(g.outDegree(s)));
        c.dels.push_back({s, g.target(e)});
    }
    return c;
}

/** Tolerance per accumulator class: sum converges within epsilon,
 * min/max reconverge exactly. */
double
tolFor(const Algorithm &alg)
{
    return alg.accumKind() == AccumKind::Sum ? 1e-3 : 1e-9;
}

/** The harness core: incremental resume after `churn` vs from-scratch
 * gold, at reference level. Returns the incremental run's states. */
std::vector<Value>
expectChurnMatchesScratch(const Graph &g, const Churn &churn,
                          const std::string &algo,
                          const std::string &context)
{
    const auto alg_old = makeAlgorithm(algo);
    const auto fix = runReference(g, *alg_old);
    EXPECT_TRUE(fix.converged) << context;

    const auto updated = applyChurn(g, churn.ins, churn.dels);

    const auto alg_gold = makeAlgorithm(algo);
    const auto gold = runReference(updated, *alg_gold);
    EXPECT_TRUE(gold.converged) << context;

    const auto alg_inc = makeAlgorithm(algo);
    auto states = fix.states;
    const auto deltas = edgeChurnDeltas(g, updated, churn.ins,
                                        churn.dels, states, *alg_inc);
    ResumeAlgorithm resume(*alg_inc, states, deltas);
    const auto inc = runReference(updated, resume);
    EXPECT_TRUE(inc.converged) << context;

    EXPECT_LE(maxStateDifference(inc.states, gold.states),
              tolFor(*alg_inc))
        << context;
    return inc.states;
}

/* ---- The ≥20-seed differential sweep, sum and min/max. ---------- */

class ChurnDifferential : public ::testing::TestWithParam<std::string>
{};

TEST_P(ChurnDifferential, RandomStreamsMatchFromScratch)
{
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        const Graph g = graph::powerLaw(250, 2.0, 5.0,
                                        {.seed = 7000 + seed});
        const auto churn = someChurn(g, 8, 8, 7100 + seed);
        expectChurnMatchesScratch(
            g, churn, GetParam(),
            GetParam() + " seed " + std::to_string(seed));
    }
}

INSTANTIATE_TEST_SUITE_P(SumAndMinMaxAccums, ChurnDifferential,
                         ::testing::Values("pagerank", "adsorption",
                                           "sssp", "wcc", "sswp"));

TEST(ChurnDifferential, DeletionHeavyStreams)
{
    // Deletion-only batches (no insertions masking retraction bugs).
    for (std::uint64_t seed = 31; seed <= 40; ++seed) {
        const Graph g = graph::powerLaw(200, 2.0, 6.0,
                                        {.seed = 7300 + seed});
        Churn churn = someChurn(g, 0, 12, 7400 + seed);
        for (const auto &algo : {"pagerank", "sssp"})
            expectChurnMatchesScratch(
                g, churn,
                algo, std::string(algo) + " seed "
                    + std::to_string(seed));
    }
}

/* ---- Through the real engines. ---------------------------------- */

class ChurnThroughEngines
    : public ::testing::TestWithParam<std::tuple<std::string, Solution>>
{};

TEST_P(ChurnThroughEngines, ResumeMatchesGold)
{
    const auto &[algo, solution] = GetParam();
    SystemConfig cfg;
    cfg.machine.numCores = 8;
    cfg.engine.numCores = 8;
    DepGraphSystem sys(cfg);

    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const Graph g = graph::powerLaw(400, 2.0, 6.0,
                                        {.seed = 7500 + seed});
        const auto churn = someChurn(g, 6, 6, 7600 + seed);
        const auto updated = applyChurn(g, churn.ins, churn.dels);

        const auto alg_old = makeAlgorithm(algo);
        const auto fix = runReference(g, *alg_old);
        ASSERT_TRUE(fix.converged);

        const auto alg_gold = makeAlgorithm(algo);
        const auto gold = runReference(updated, *alg_gold);
        ASSERT_TRUE(gold.converged);

        const auto alg_inc = makeAlgorithm(algo);
        auto states = fix.states;
        const auto deltas = edgeChurnDeltas(
            g, updated, churn.ins, churn.dels, states, *alg_inc);
        ResumeAlgorithm resume(*alg_inc, std::move(states), deltas);
        const auto r = sys.run(updated, resume, solution);

        EXPECT_TRUE(r.metrics.converged)
            << algo << " seed " << seed;
        EXPECT_LE(maxStateDifference(r.states, gold.states),
                  tolFor(*alg_inc))
            << algo << " on " << solutionName(solution) << " seed "
            << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SumAndMinOnBothEngines, ChurnThroughEngines,
    ::testing::Combine(::testing::Values("pagerank", "sssp", "wcc"),
                       ::testing::Values(Solution::Sequential,
                                         Solution::DepGraphH)));

/* ---- Churn through the frontier-batched walk path. --------------- */

TEST(ChurnBatchedWalks, HubTileRefillReconvergesOnBothEngines)
{
    // A hub whose out-degree exceeds the lane-tile size
    // (fold::kLaneTile = 128) forces every walk rooted there to refill
    // its lane tile mid-frame, and the attached chain gives walks
    // depth so interior frames batch too. Mixed insert/delete
    // reconvergence from the old fixpoint must still land on the
    // from-scratch states through BOTH engines' batched inner loop.
    constexpr VertexId n = 180;
    graph::Builder b(n);
    Rng wrng(4242);
    for (VertexId v = 1; v < n; ++v) {
        b.addEdge(0, v, wrng.nextDouble(1.0, 5.0));
        if (v + 1 < n)
            b.addEdge(v, v + 1, wrng.nextDouble(1.0, 5.0));
    }
    const auto g = b.build(true);
    ASSERT_GT(g.outDegree(0), dep::fold::kLaneTile);

    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        auto churn = someChurn(g, 6, 6, 4300 + seed);
        // Touch the hub's own edge block in both directions so the
        // refill interacts with the churned-in and churned-out edges.
        churn.ins.push_back(
            {0, static_cast<VertexId>(1 + seed), 0.25});
        churn.dels.push_back(
            {0, g.target(g.edgeBegin(0) + static_cast<EdgeId>(seed))});
        const auto updated = applyChurn(g, churn.ins, churn.dels);

        for (const auto &algo : {"pagerank", "sssp", "wcc"}) {
            const auto alg_old = makeAlgorithm(algo);
            const auto fix = runReference(g, *alg_old);
            ASSERT_TRUE(fix.converged) << algo << " seed " << seed;
            const auto alg_gold = makeAlgorithm(algo);
            const auto gold = runReference(updated, *alg_gold);
            ASSERT_TRUE(gold.converged) << algo << " seed " << seed;

            for (const auto solution :
                 {Solution::Sequential, Solution::Parallel}) {
                const auto alg_inc = makeAlgorithm(algo);
                auto states = fix.states;
                const auto deltas =
                    edgeChurnDeltas(g, updated, churn.ins, churn.dels,
                                    states, *alg_inc);
                ResumeAlgorithm resume(*alg_inc, std::move(states),
                                       deltas);
                SystemConfig cfg;
                cfg.engine.hostThreads = 3;
                DepGraphSystem sys(cfg);
                const auto r = sys.run(updated, resume, solution);
                EXPECT_TRUE(r.metrics.converged)
                    << algo << " on " << solutionName(solution)
                    << " seed " << seed;
                EXPECT_LE(maxStateDifference(r.states, gold.states),
                          tolFor(*alg_inc))
                    << algo << " on " << solutionName(solution)
                    << " seed " << seed;
            }
        }
    }
}

/* ---- Batch-merge properties for deletions. ---------------------- */

class DeletionBatchMerge : public ::testing::TestWithParam<std::string>
{};

TEST_P(DeletionBatchMerge, SequentialDeleteBatchesEqualMergedBatch)
{
    for (const std::uint64_t seed : {910u, 920u, 930u}) {
        const Graph g = graph::powerLaw(300, 2.0, 5.0, {.seed = seed});
        const auto b1 = someChurn(g, 0, 5, seed + 1).dels;
        const auto b2 = someChurn(g, 0, 5, seed + 2).dels;

        const auto alg0 = makeAlgorithm(GetParam());
        const auto fix0 = runReference(g, *alg0);
        ASSERT_TRUE(fix0.converged);

        // Path A: batch 1, reconverge, batch 2, reconverge.
        const auto g1 = applyDeletions(g, b1);
        const auto alg1 = makeAlgorithm(GetParam());
        auto s1 = fix0.states;
        const auto d1 = edgeDeletionDeltas(g, g1, b1, s1, *alg1);
        ResumeAlgorithm r1(*alg1, s1, d1);
        const auto run1 = runReference(g1, r1);
        ASSERT_TRUE(run1.converged);

        const auto g2 = applyDeletions(g1, b2);
        const auto alg2 = makeAlgorithm(GetParam());
        auto s2 = run1.states;
        const auto d2 = edgeDeletionDeltas(g1, g2, b2, s2, *alg2);
        ResumeAlgorithm r2(*alg2, s2, d2);
        const auto run2 = runReference(g2, r2);
        ASSERT_TRUE(run2.converged);

        // Path B: one merged batch.
        auto merged = b1;
        merged.insert(merged.end(), b2.begin(), b2.end());
        const auto gm = applyDeletions(g, merged);
        const auto algm = makeAlgorithm(GetParam());
        auto sm = fix0.states;
        const auto dm = edgeDeletionDeltas(g, gm, merged, sm, *algm);
        ResumeAlgorithm rm(*algm, sm, dm);
        const auto runm = runReference(gm, rm);
        ASSERT_TRUE(runm.converged);

        ASSERT_EQ(g2.numEdges(), gm.numEdges())
            << GetParam() << " seed " << seed;
        EXPECT_LE(maxStateDifference(run2.states, runm.states),
                  tolFor(*algm))
            << GetParam() << " seed " << seed;

        // Both must also agree with from-scratch on the final graph.
        const auto alg_gold = makeAlgorithm(GetParam());
        const auto gold = runReference(gm, *alg_gold);
        ASSERT_TRUE(gold.converged);
        EXPECT_LE(maxStateDifference(runm.states, gold.states),
                  tolFor(*algm))
            << GetParam() << " seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(SumAndMinMaxAccums, DeletionBatchMerge,
                         ::testing::Values("pagerank", "sssp", "wcc"));

TEST(ApplyChurn, DeleteThenInsertReplacesTheEdge)
{
    // In one applyChurn batch, deletions claim OLD edges only and the
    // insertions are appended afterwards: a delete + insert of the
    // same pair replaces the edge (possibly with a new weight).
    const Graph g = graph::path(4); // edges 0->1->2->3
    const auto updated = applyChurn(g, {{1, 2, 9.0}}, {{1, 2}});
    EXPECT_EQ(updated.numEdges(), g.numEdges());
    bool found = false;
    for (EdgeId e = updated.edgeBegin(1); e < updated.edgeEnd(1); ++e)
        if (updated.target(e) == 2 && updated.weight(e) == 9.0)
            found = true;
    EXPECT_TRUE(found);
}

/* ---- Edge cases. ------------------------------------------------ */

TEST(ApplyDeletions, VertexSetUnchangedAndUnmatchedIgnored)
{
    const Graph g = graph::path(5);
    // 3->0 does not exist; 0->1 does.
    const auto updated = applyDeletions(g, {{3, 0}, {0, 1}});
    EXPECT_EQ(updated.numVertices(), g.numVertices());
    EXPECT_EQ(updated.numEdges(), g.numEdges() - 1);
    EXPECT_EQ(updated.outDegree(0), 0u);
}

TEST(ApplyDeletions, ExactWeightOnlyClaimsMatchingOccurrence)
{
    // Unweighted path: the original 0->1 edge has weight 1.0.
    Graph g = applyInsertions(graph::path(3, {.weighted = false}),
                              {{0, 1, 7.0}}); // parallel to 0->1
    ASSERT_EQ(g.outDegree(0), 2u);
    // Deleting with weight 7 must leave the original unit edge.
    const auto updated = applyDeletions(g, {{0, 1, 7.0}});
    ASSERT_EQ(updated.outDegree(0), 1u);
    EXPECT_EQ(updated.weight(updated.edgeBegin(0)), 1.0);
    // Deleting with a wrong exact weight is a no-op.
    const auto untouched = applyDeletions(g, {{0, 1, 3.0}});
    EXPECT_EQ(untouched.numEdges(), g.numEdges());
}

TEST(ChurnDeltas, DeletingNonexistentEdgeIsNoWork)
{
    const Graph g = graph::powerLaw(300, 2.0, 5.0, {.seed = 307});
    for (const auto &algo : {"pagerank", "sssp"}) {
        const auto alg_old = makeAlgorithm(algo);
        const auto fix = runReference(g, *alg_old);
        const std::vector<EdgeDeletion> dels = {{1, 2, 123.0}};
        const auto updated = applyDeletions(g, dels);
        ASSERT_EQ(updated.numEdges(), g.numEdges());
        const auto alg_inc = makeAlgorithm(algo);
        auto states = fix.states;
        const auto deltas =
            edgeDeletionDeltas(g, updated, dels, states, *alg_inc);
        ResumeAlgorithm resume(*alg_inc, states, deltas);
        const auto inc = runReference(updated, resume);
        EXPECT_EQ(inc.updates, 0u) << algo;
        EXPECT_LE(maxStateDifference(inc.states, fix.states), 1e-12)
            << algo;
    }
}

TEST(ChurnDeltas, DeletingLastOutEdgeHandlesDanglingMass)
{
    // Vertex 1 has exactly one out-edge in a path; deleting it makes 1
    // dangling (out-degree 0). Pagerank's retraction must take back
    // ALL mass 1 ever sent -- there are no surviving out-edges to
    // renormalize over.
    const Graph g = graph::path(6);
    const std::vector<EdgeDeletion> dels = {{1, 2}};
    const auto updated = applyDeletions(g, dels);
    ASSERT_EQ(updated.outDegree(1), 0u);

    const auto alg_old = makeAlgorithm("pagerank");
    const auto fix = runReference(g, *alg_old);
    const auto alg_gold = makeAlgorithm("pagerank");
    const auto gold = runReference(updated, *alg_gold);
    const auto alg_inc = makeAlgorithm("pagerank");
    auto states = fix.states;
    const auto deltas =
        edgeDeletionDeltas(g, updated, dels, states, *alg_inc);
    ResumeAlgorithm resume(*alg_inc, states, deltas);
    const auto inc = runReference(updated, resume);
    ASSERT_TRUE(inc.converged);
    EXPECT_LE(maxStateDifference(inc.states, gold.states), 1e-3);
}

TEST(ChurnDeltas, ParallelDuplicatesDeleteOneOccurrenceAtATime)
{
    // Two parallel 0->9 bypasses with different weights; deleting the
    // lighter one must fall back to the heavier, not to the long path.
    const Graph base = graph::path(10);
    const auto g =
        applyInsertions(base, {{0, 9, 0.5}, {0, 9, 2.0}});

    const auto alg_old = makeAlgorithm("sssp");
    const auto fix = runReference(g, *alg_old);
    ASSERT_DOUBLE_EQ(fix.states[9], 0.5);

    const std::vector<EdgeDeletion> dels = {{0, 9, 0.5}};
    const auto updated = applyDeletions(g, dels);
    const auto alg_inc = makeAlgorithm("sssp");
    auto states = fix.states;
    const auto deltas =
        edgeDeletionDeltas(g, updated, dels, states, *alg_inc);
    ResumeAlgorithm resume(*alg_inc, states, deltas);
    const auto inc = runReference(updated, resume);
    ASSERT_TRUE(inc.converged);
    EXPECT_DOUBLE_EQ(inc.states[9], 2.0);

    // Deleting both occurrences (wildcard twice) falls back to the
    // path distance.
    const std::vector<EdgeDeletion> both = {{0, 9}, {0, 9}};
    const auto updated2 = applyDeletions(g, both);
    const auto alg2 = makeAlgorithm("sssp");
    auto states2 = fix.states;
    const auto deltas2 =
        edgeDeletionDeltas(g, updated2, both, states2, *alg2);
    ResumeAlgorithm resume2(*alg2, states2, deltas2);
    const auto inc2 = runReference(updated2, resume2);
    const auto gold2_alg = makeAlgorithm("sssp");
    const auto gold2 = runReference(updated2, *gold2_alg);
    EXPECT_LE(maxStateDifference(inc2.states, gold2.states), 1e-9);
    EXPECT_GT(inc2.states[9], 2.0);
}

TEST(ChurnDeltas, SsspLosesShortcutDistancesGrowBack)
{
    // The inverse of the insertion shortcut test: removing the bypass
    // must re-grow downstream distances to the long-path values.
    const Graph base = graph::path(10);
    const auto g = applyInsertions(base, {{0, 9, 0.5}});
    const auto alg_old = makeAlgorithm("sssp");
    const auto fix = runReference(g, *alg_old);
    ASSERT_DOUBLE_EQ(fix.states[9], 0.5);

    const std::vector<EdgeDeletion> dels = {{0, 9}};
    const auto updated = applyDeletions(g, dels);
    const auto alg_inc = makeAlgorithm("sssp");
    auto states = fix.states;
    const auto deltas =
        edgeDeletionDeltas(g, updated, dels, states, *alg_inc);
    ResumeAlgorithm resume(*alg_inc, states, deltas);
    const auto inc = runReference(updated, resume);
    ASSERT_TRUE(inc.converged);

    const auto alg_gold = makeAlgorithm("sssp");
    const auto gold = runReference(updated, *alg_gold);
    EXPECT_LE(maxStateDifference(inc.states, gold.states), 1e-9);
    EXPECT_GT(inc.states[9], 0.5);
}

TEST(ChurnDeltas, WccBridgeDeletionSplitsComponent)
{
    // Two 3-cycles joined by a bridge; WCC label propagation flows the
    // max label over the bridge. Deleting it must let the downstream
    // cycle fall back to its own max label.
    graph::Builder b(6);
    b.addEdge(0, 1, 1.0); b.addEdge(1, 2, 1.0); b.addEdge(2, 0, 1.0);
    b.addEdge(3, 4, 1.0); b.addEdge(4, 5, 1.0); b.addEdge(5, 3, 1.0);
    b.addEdge(5, 0, 1.0); // the bridge: high-label cycle -> low cycle
    const auto g = b.build(true);

    const auto alg_old = makeAlgorithm("wcc");
    const auto fix = runReference(g, *alg_old);
    EXPECT_DOUBLE_EQ(fix.states[0], 5.0); // label leaked over bridge

    const std::vector<EdgeDeletion> dels = {{5, 0}};
    const auto updated = applyDeletions(g, dels);
    const auto alg_inc = makeAlgorithm("wcc");
    auto states = fix.states;
    const auto deltas =
        edgeDeletionDeltas(g, updated, dels, states, *alg_inc);
    ResumeAlgorithm resume(*alg_inc, states, deltas);
    const auto inc = runReference(updated, resume);
    ASSERT_TRUE(inc.converged);

    const auto alg_gold = makeAlgorithm("wcc");
    const auto gold = runReference(updated, *alg_gold);
    EXPECT_LE(maxStateDifference(inc.states, gold.states), 1e-12);
    EXPECT_DOUBLE_EQ(inc.states[0], 2.0); // back to its own cycle max
}

} // namespace
} // namespace depgraph::gas
