/**
 * @file
 * Integration tests asserting the paper's evaluation-level claims at
 * reproduction scale (Sec. IV): breakdown structure, update-count
 * ordering, accelerator ranking, hub-index storage share, sensitivity
 * behaviours. These are the executable form of EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include "core/depgraph_system.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"

namespace depgraph
{
namespace
{

SystemConfig
benchConfig(unsigned cores = 16)
{
    SystemConfig cfg;
    cfg.machine.numCores = cores;
    cfg.engine.numCores = cores;
    return cfg;
}

/** The small FS stand-in used by most integration checks. */
const graph::Graph &
fsGraph()
{
    static const graph::Graph g = graph::makeDataset("FS", 0.08);
    return g;
}

TEST(PaperClaims, DepGraphHBeatsEverySoftwareBaseline)
{
    DepGraphSystem sys(benchConfig());
    const auto dg = sys.run(fsGraph(), "pagerank",
                            Solution::DepGraphH);
    for (auto s : {Solution::Ligra, Solution::Mosaic,
                   Solution::Wonderland, Solution::FBSGraph,
                   Solution::LigraO}) {
        const auto r = sys.run(fsGraph(), "pagerank", s);
        EXPECT_LT(dg.metrics.makespan, r.metrics.makespan)
            << solutionName(s);
    }
}

TEST(PaperClaims, DepGraphHBeatsCompetingAccelerators)
{
    // Fig. 11: DepGraph-H outperforms HATS, Minnow, and PHI.
    DepGraphSystem sys(benchConfig());
    const auto dg = sys.run(fsGraph(), "pagerank",
                            Solution::DepGraphH);
    for (auto s : {Solution::Hats, Solution::Minnow, Solution::Phi}) {
        const auto r = sys.run(fsGraph(), "pagerank", s);
        EXPECT_LT(dg.metrics.makespan, r.metrics.makespan)
            << solutionName(s);
    }
}

TEST(PaperClaims, DepGraphSIsOverheadDominated)
{
    // Sec. IV-A: DepGraph-S's "other time" occupies 57.9-95.0% of the
    // total.
    DepGraphSystem sys(benchConfig());
    const auto r = sys.run(fsGraph(), "pagerank", Solution::DepGraphS);
    EXPECT_GE(r.metrics.otherTimeShare(), 0.55);
    EXPECT_LE(r.metrics.otherTimeShare(), 0.99);
}

TEST(PaperClaims, HardwareRemovesMostOfTheOtherTime)
{
    // Sec. IV-A: DepGraph-H's other time is a small fraction of
    // DepGraph-S's.
    DepGraphSystem sys(benchConfig());
    const auto sw = sys.run(fsGraph(), "pagerank",
                            Solution::DepGraphS);
    const auto hw = sys.run(fsGraph(), "pagerank",
                            Solution::DepGraphH);
    const auto other = [](const runtime::RunMetrics &m) {
        return m.memStallCycles + m.overheadCycles;
    };
    EXPECT_LT(other(hw.metrics), other(sw.metrics) / 2);
}

TEST(PaperClaims, HubIndexMemoryShareIsSmall)
{
    // Sec. IV-A: the hub index occupies 0.9-2.8% of total storage.
    DepGraphSystem sys(benchConfig());
    const auto r = sys.run(fsGraph(), "sssp", Solution::DepGraphH);
    const double share = static_cast<double>(r.metrics.hubIndexBytes)
        / static_cast<double>(fsGraph().byteSize()
                              + r.metrics.hubIndexBytes);
    EXPECT_GT(share, 0.0);
    // At reproduction scale the 32 B entries weigh more against the
    // ~1000x smaller graphs than the paper's 0.9-2.8%; bound it at a
    // scale-adjusted ceiling (see EXPERIMENTS.md).
    EXPECT_LT(share, 0.25);
}

TEST(PaperClaims, UpdateReductionOnWccIsLarge)
{
    // Fig. 10's strongest cells: label propagation on high-diameter
    // graphs; require >= 30% fewer updates than Ligra-o.
    DepGraphSystem sys(benchConfig());
    const auto base = sys.run(fsGraph(), "wcc", Solution::LigraO);
    const auto dg = sys.run(fsGraph(), "wcc", Solution::DepGraphH);
    EXPECT_LT(static_cast<double>(dg.metrics.updates),
              0.7 * static_cast<double>(base.metrics.updates));
}

TEST(PaperClaims, HubIndexCutsUpdatesOnMinAlgorithms)
{
    // DepGraph-H vs DepGraph-H-w (Fig. 11's ablation): the shortcut
    // pushes reduce updates for min-accumulator algorithms.
    DepGraphSystem sys(benchConfig());
    const auto with = sys.run(fsGraph(), "sssp", Solution::DepGraphH);
    const auto without =
        sys.run(fsGraph(), "sssp", Solution::DepGraphHNoHub);
    EXPECT_LE(with.metrics.updates, without.metrics.updates);
}

TEST(PaperClaims, GraspBeatsLruForDepGraph)
{
    // Fig. 16(b): GRASP > DRRIP > LRU on a pressured LLC. Require the
    // end-to-end ordering GRASP <= LRU in makespan.
    auto run_with = [&](sim::ReplPolicy pol) {
        auto cfg = benchConfig();
        cfg.machine.l3Policy = pol;
        cfg.machine.l3TotalBytes = 2 * 1024 * 1024;
        DepGraphSystem sys(cfg);
        return sys.run(fsGraph(), "pagerank", Solution::DepGraphH)
            .metrics.makespan;
    };
    const auto lru = run_with(sim::ReplPolicy::LRU);
    const auto grasp = run_with(sim::ReplPolicy::GRASP);
    EXPECT_LE(grasp, static_cast<Cycles>(1.05
                                         * static_cast<double>(lru)));
}

TEST(PaperClaims, StackDepthInsensitiveBeyondTen)
{
    // Fig. 15: performance is nearly flat past depth 10.
    auto run_with = [&](unsigned depth) {
        auto cfg = benchConfig();
        cfg.engine.stackDepth = depth;
        DepGraphSystem sys(cfg);
        return sys.run(fsGraph(), "pagerank", Solution::DepGraphH)
            .metrics.makespan;
    };
    const auto d10 = run_with(10);
    const auto d32 = run_with(32);
    const double ratio = static_cast<double>(d32)
        / static_cast<double>(d10);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.2);
}

TEST(PaperClaims, SkewIncreasesDepGraphAdvantage)
{
    // Fig. 19: the speedup over Ligra-o grows as alpha drops.
    auto speedup_at = [&](double alpha) {
        const auto g = graph::powerLawTableV(6000, alpha, {.seed = 19});
        DepGraphSystem sys(benchConfig());
        const auto base = sys.run(g, "pagerank", Solution::LigraO);
        const auto dg = sys.run(g, "pagerank", Solution::DepGraphH);
        return static_cast<double>(base.metrics.makespan)
            / static_cast<double>(dg.metrics.makespan);
    };
    const double lo = speedup_at(2.2);
    const double hi = speedup_at(1.8);
    EXPECT_GT(hi, 0.9 * lo); // at least comparable; typically larger
    EXPECT_GT(hi, 1.0);      // and a real speedup on heavy skew
}

TEST(PaperClaims, EnergyLowerThanAcceleratedBaselines)
{
    // Fig. 14: DepGraph-H consumes the least energy.
    DepGraphSystem sys(benchConfig());
    const auto dg = sys.run(fsGraph(), "pagerank",
                            Solution::DepGraphH);
    for (auto s : {Solution::Hats, Solution::Minnow, Solution::Phi}) {
        const auto r = sys.run(fsGraph(), "pagerank", s);
        EXPECT_LT(dg.energy.totalMj(), r.energy.totalMj())
            << solutionName(s);
    }
}

} // namespace
} // namespace depgraph
