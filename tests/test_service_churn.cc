/**
 * @file
 * Service-level churn: edge deletions through the serving stack.
 *
 * Three layers are exercised:
 *  - concurrent clients issuing mixed insert / delete / query streams,
 *    checked against a serial replay of the same request log (clients
 *    use unique per-edge weights and delete only their own insertions,
 *    so the final edge multiset is interleaving-independent);
 *  - the UpdateBatcher's cancellation rule (a deletion cancels the most
 *    recent matching pending insertion; a fully-cancelled batch
 *    publishes nothing and flush reports version 0);
 *  - the dgserve protocol's `del` verb.
 *
 * Registered with ctest labels `service;tsan` like the stress test: the
 * concurrent case is a ThreadSanitizer target.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/random.hh"
#include "gas/algorithms.hh"
#include "gas/incremental.hh"
#include "gas/reference.hh"
#include "graph/generators.hh"
#include "service/protocol.hh"
#include "service/service.hh"

namespace depgraph::service
{
namespace
{

constexpr unsigned kClients = 6;
constexpr unsigned kRoundsPerClient = 4;
constexpr unsigned kInsPerRound = 4;
constexpr unsigned kDelsPerRound = 2; // deletes of this round's inserts

/** Unique weight per (client, round, k): a deletion carrying it can
 * only ever claim the one insertion it targets, so the final graph is
 * independent of how client streams interleave. */
double
clientWeight(unsigned t, unsigned i, unsigned k)
{
    return 1.0 + 0.001 * static_cast<double>(t * 1000 + i * 100 + k);
}

std::vector<gas::EdgeInsertion>
clientIns(const graph::Graph &g, unsigned t, unsigned i)
{
    Rng rng(2000 + 97 * t + i);
    std::vector<gas::EdgeInsertion> ins;
    for (unsigned k = 0; k < kInsPerRound; ++k) {
        const auto s =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        auto d =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        if (d == s)
            d = (d + 1) % g.numVertices();
        ins.push_back({s, d, clientWeight(t, i, k)});
    }
    return ins;
}

/** Each round deletes the first kDelsPerRound of its own insertions,
 * by exact weight. Depending on flush timing the batcher either
 * cancels the still-pending insert or the flush retracts the applied
 * edge -- the final multiset is the same either way. */
std::vector<gas::EdgeDeletion>
clientDels(const graph::Graph &g, unsigned t, unsigned i)
{
    const auto ins = clientIns(g, t, i);
    std::vector<gas::EdgeDeletion> dels;
    for (unsigned k = 0; k < kDelsPerRound; ++k)
        dels.push_back({ins[k].src, ins[k].dst, ins[k].weight});
    return dels;
}

TEST(ServiceChurn, ConcurrentMixedChurnMatchesSerialReplay)
{
    const auto initial = graph::powerLaw(300, 2.0, 6.0, {.seed = 601});

    ServiceOptions opt;
    opt.pool.numThreads = 4;
    opt.pool.queueCapacity = 256;
    opt.pool.blockWhenFull = true;
    opt.batcher.maxPendingEdges = 16;
    opt.batcher.solution = Solution::Sequential;
    GraphService svc(opt);
    svc.loadGraph("g", initial);

    // Warm the fixpoint caches so flushes reconverge incrementally.
    ASSERT_TRUE(
        svc.query({"g", "pagerank", Solution::Sequential}).get().ok());
    ASSERT_TRUE(
        svc.query({"g", "sssp", Solution::Sequential}).get().ok());

    std::vector<std::thread> clients;
    std::atomic<unsigned> failures{0};
    for (unsigned t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t] {
            Session session(svc, "g", "pagerank",
                            Solution::Sequential);
            for (unsigned i = 0; i < kRoundsPerClient; ++i) {
                // The blocking calls order each client's stream:
                // inserts are durably batched before their deletes
                // are issued.
                if (!session.update(clientIns(initial, t, i)).ok())
                    ++failures;
                if (!session.erase(clientDels(initial, t, i)).ok())
                    ++failures;
                const auto q = (t + i) % 2 == 0
                    ? session.query("pagerank")
                    : session.query("sssp");
                if (!q.ok() || !q.states)
                    ++failures;
            }
        });
    }
    for (auto &c : clients)
        c.join();
    EXPECT_EQ(failures.load(), 0u);

    svc.drain();

    // Serial replay: every insertion not targeted by a deletion
    // survives; the deleted ones never survive, whether they were
    // cancelled in the batcher or retracted by a flush.
    std::vector<gas::EdgeInsertion> surviving;
    for (unsigned t = 0; t < kClients; ++t)
        for (unsigned i = 0; i < kRoundsPerClient; ++i) {
            const auto ins = clientIns(initial, t, i);
            surviving.insert(surviving.end(),
                             ins.begin() + kDelsPerRound, ins.end());
        }
    const auto final_graph = gas::applyInsertions(initial, surviving);

    const auto snap = svc.store().get("g");
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->graph->numEdges(), final_graph.numEdges());

    const auto served_pr =
        svc.query({"g", "pagerank", Solution::Sequential}).get();
    const auto served_sssp =
        svc.query({"g", "sssp", Solution::Sequential}).get();
    ASSERT_TRUE(served_pr.ok());
    ASSERT_TRUE(served_sssp.ok());
    {
        const auto alg = gas::makeAlgorithm("pagerank");
        const auto gold = gas::runReference(final_graph, *alg);
        ASSERT_TRUE(gold.converged);
        EXPECT_LE(gas::maxStateDifference(*served_pr.states,
                                          gold.states),
                  5e-3);
    }
    {
        const auto alg = gas::makeAlgorithm("sssp");
        const auto gold = gas::runReference(final_graph, *alg);
        ASSERT_TRUE(gold.converged);
        EXPECT_LE(gas::maxStateDifference(*served_sssp.states,
                                          gold.states),
                  1e-9); // min-accumulator: exact
    }

    // Churn accounting: every enqueued operation was either applied by
    // a flush or annihilated as a cancelled insert+delete pair.
    const auto st = svc.stats();
    EXPECT_EQ(st.updateRequests,
              2u * kClients * kRoundsPerClient); // update + erase
    EXPECT_EQ(st.updateEdgesEnqueued,
              kClients * kRoundsPerClient * kInsPerRound);
    EXPECT_EQ(st.updateDeletionsEnqueued,
              kClients * kRoundsPerClient * kDelsPerRound);
    EXPECT_EQ(st.batchEdgesApplied + 2 * st.updateEdgesCancelled,
              st.updateEdgesEnqueued + st.updateDeletionsEnqueued);
    EXPECT_GE(st.batchesApplied, 1u);
    EXPECT_LT(st.batchesApplied, st.updateRequests);
    EXPECT_EQ(st.rejected, 0u);
}

TEST(ServiceChurn, ConcurrentChurnThroughParallelEngine)
{
    // The concurrent-stream scenario again, but both the batcher's
    // incremental reconvergence and the client queries run on the
    // native parallel engine: pool workers and engine workers nest,
    // and flush-published fixpoints interleave with parallel reads.
    const auto initial = graph::powerLaw(300, 2.0, 6.0, {.seed = 602});

    ServiceOptions opt;
    opt.pool.numThreads = 3;
    opt.pool.queueCapacity = 256;
    opt.pool.blockWhenFull = true;
    opt.batcher.maxPendingEdges = 16;
    opt.batcher.solution = Solution::Parallel;
    opt.system.engine.hostThreads = 2;
    GraphService svc(opt);
    svc.loadGraph("g", initial);

    ASSERT_TRUE(
        svc.query({"g", "pagerank", Solution::Parallel}).get().ok());
    ASSERT_TRUE(
        svc.query({"g", "sssp", Solution::Parallel}).get().ok());

    constexpr unsigned kParClients = 4;
    std::vector<std::thread> clients;
    std::atomic<unsigned> failures{0};
    for (unsigned t = 0; t < kParClients; ++t) {
        clients.emplace_back([&, t] {
            Session session(svc, "g", "pagerank", Solution::Parallel);
            for (unsigned i = 0; i < kRoundsPerClient; ++i) {
                if (!session.update(clientIns(initial, t, i)).ok())
                    ++failures;
                if (!session.erase(clientDels(initial, t, i)).ok())
                    ++failures;
                const auto q = (t + i) % 2 == 0
                    ? session.query("pagerank")
                    : session.query("sssp");
                if (!q.ok() || !q.states)
                    ++failures;
            }
        });
    }
    for (auto &c : clients)
        c.join();
    EXPECT_EQ(failures.load(), 0u);
    svc.drain();

    std::vector<gas::EdgeInsertion> surviving;
    for (unsigned t = 0; t < kParClients; ++t)
        for (unsigned i = 0; i < kRoundsPerClient; ++i) {
            const auto ins = clientIns(initial, t, i);
            surviving.insert(surviving.end(),
                             ins.begin() + kDelsPerRound, ins.end());
        }
    const auto final_graph = gas::applyInsertions(initial, surviving);
    const auto snap = svc.store().get("g");
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->graph->numEdges(), final_graph.numEdges());

    const auto served_pr =
        svc.query({"g", "pagerank", Solution::Parallel}).get();
    const auto served_sssp =
        svc.query({"g", "sssp", Solution::Parallel}).get();
    ASSERT_TRUE(served_pr.ok());
    ASSERT_TRUE(served_sssp.ok());
    {
        const auto alg = gas::makeAlgorithm("pagerank");
        const auto gold = gas::runReference(final_graph, *alg);
        ASSERT_TRUE(gold.converged);
        EXPECT_LE(gas::maxStateDifference(*served_pr.states,
                                          gold.states),
                  5e-3);
    }
    {
        const auto alg = gas::makeAlgorithm("sssp");
        const auto gold = gas::runReference(final_graph, *alg);
        ASSERT_TRUE(gold.converged);
        EXPECT_LE(gas::maxStateDifference(*served_sssp.states,
                                          gold.states),
                  1e-9); // min-accumulator: exact
    }
    EXPECT_EQ(svc.stats().rejected, 0u);
}

TEST(ServiceChurn, SnapshotIsolationAcrossDeletions)
{
    ServiceOptions opt;
    opt.pool.numThreads = 2;
    opt.batcher.maxPendingEdges = 1000; // only explicit flushes
    opt.batcher.solution = Solution::Sequential;
    GraphService svc(opt);
    svc.loadGraph("g", graph::ring(64));

    const auto before = svc.store().get("g");
    ASSERT_NE(before, nullptr);
    const auto edges_before = before->graph->numEdges();

    Session session(svc, "g", "pagerank", Solution::Sequential);
    ASSERT_TRUE(session.erase(0, 1).ok());
    const auto flushed = session.flushUpdates();
    ASSERT_TRUE(flushed.ok());
    EXPECT_GT(flushed.version, before->version);

    // The pre-deletion snapshot is immutable; readers holding it keep
    // a consistent view while new queries see the retracted edge.
    EXPECT_EQ(before->graph->numEdges(), edges_before);
    const auto after = svc.store().get("g");
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after->graph->numEdges(), edges_before - 1);
    EXPECT_GT(after->version, before->version);
}

TEST(ServiceChurn, DepGraphHChurnStaysCorrectWithHubArtifacts)
{
    // The DepGraph-H incremental path carries hub-index dependencies
    // across flushes (minus the invalidated ones); the served fixpoint
    // must still match a from-scratch reference after deletions.
    const auto initial = graph::powerLaw(500, 2.0, 7.0, {.seed = 811});

    ServiceOptions opt;
    opt.pool.numThreads = 2;
    opt.batcher.maxPendingEdges = 1000;
    opt.batcher.solution = Solution::DepGraphH;
    GraphService svc(opt);
    svc.loadGraph("g", initial);

    Session session(svc, "g", "pagerank", Solution::DepGraphH);
    ASSERT_TRUE(session.query().ok()); // learn hub artifacts

    std::vector<gas::EdgeInsertion> ins;
    std::vector<gas::EdgeDeletion> dels;
    Rng rng(9100);
    for (unsigned k = 0; k < 6; ++k) {
        const auto s =
            static_cast<VertexId>(rng.nextBounded(initial.numVertices()));
        auto d =
            static_cast<VertexId>(rng.nextBounded(initial.numVertices()));
        if (d == s)
            d = (d + 1) % initial.numVertices();
        ins.push_back({s, d, rng.nextDouble(1.0, 4.0)});
    }
    for (unsigned k = 0; k < 6; ++k) {
        const auto s = static_cast<VertexId>(
            rng.nextBounded(initial.numVertices()));
        if (initial.outDegree(s) == 0)
            continue;
        const EdgeId e = initial.edgeBegin(s)
            + static_cast<EdgeId>(rng.nextBounded(initial.outDegree(s)));
        dels.push_back({s, initial.target(e)});
    }
    ASSERT_FALSE(dels.empty());
    ASSERT_TRUE(session.update(ins).ok());
    ASSERT_TRUE(session.erase(dels).ok());
    ASSERT_TRUE(session.flushUpdates().ok());

    const auto served = session.query();
    ASSERT_TRUE(served.ok());
    ASSERT_NE(served.states, nullptr);

    const auto updated = gas::applyChurn(initial, ins, dels);
    const auto alg = gas::makeAlgorithm("pagerank");
    const auto gold = gas::runReference(updated, *alg);
    ASSERT_TRUE(gold.converged);
    EXPECT_LE(gas::maxStateDifference(*served.states, gold.states),
              5e-3);

    const auto st = svc.stats();
    // Carried + invalidated partition whatever the warm query learned.
    EXPECT_EQ(st.updateDeletionsEnqueued, dels.size());
    EXPECT_GE(st.hubDepsCarried + st.hubDepsInvalidated, 0u);
}

TEST(BatcherCancellation, InsertThenDeleteSameBatchIsNoOp)
{
    ServiceOptions opt;
    opt.pool.numThreads = 1;
    opt.batcher.maxPendingEdges = 1000; // no threshold flushes
    opt.batcher.solution = Solution::Sequential;
    GraphService svc(opt);
    svc.loadGraph("g", graph::path(8));

    Session session(svc, "g", "pagerank", Solution::Sequential);
    ASSERT_TRUE(session.query().ok()); // cache the base fixpoint

    const auto before = svc.store().get("g");
    ASSERT_TRUE(session.update(2, 5, 3.25).ok());
    const auto erased = session.erase(2, 5); // any-weight
    ASSERT_TRUE(erased.ok());
    EXPECT_EQ(erased.pendingEdges, 0u); // pair annihilated in place

    // A fully-cancelled batch publishes nothing: flush reports
    // version 0 and the snapshot (and its cached fixpoint) survive.
    const auto flushed = session.flushUpdates();
    ASSERT_TRUE(flushed.ok());
    EXPECT_EQ(flushed.version, 0u);
    const auto after = svc.store().get("g");
    EXPECT_EQ(after->version, before->version);
    EXPECT_EQ(after->graph->numEdges(), before->graph->numEdges());
    EXPECT_TRUE(session.query().cacheHit);

    const auto st = svc.stats();
    EXPECT_EQ(st.updateEdgesCancelled, 1u);
    EXPECT_EQ(st.batchesApplied, 0u);
}

TEST(BatcherCancellation, DeleteCancelsMostRecentMatchingInsert)
{
    ServiceOptions opt;
    opt.pool.numThreads = 1;
    opt.batcher.maxPendingEdges = 1000;
    opt.batcher.solution = Solution::Sequential;
    GraphService svc(opt);
    svc.loadGraph("g", graph::path(8));
    const auto base_out1 = svc.store().get("g")->graph->outDegree(1);

    Session session(svc, "g", "pagerank", Solution::Sequential);
    ASSERT_TRUE(session.update(1, 4, 10.0).ok());
    ASSERT_TRUE(session.update(1, 4, 20.0).ok());
    ASSERT_TRUE(session.erase(1, 4).ok()); // wildcard: cancels 20.0
    ASSERT_TRUE(session.flushUpdates().ok());

    const auto snap = svc.store().get("g");
    const auto &g = *snap->graph;
    ASSERT_EQ(g.outDegree(1), base_out1 + 1);
    bool found10 = false, found20 = false;
    for (EdgeId e = g.edgeBegin(1); e < g.edgeEnd(1); ++e) {
        if (g.target(e) == 4 && g.weight(e) == 10.0)
            found10 = true;
        if (g.target(e) == 4 && g.weight(e) == 20.0)
            found20 = true;
    }
    EXPECT_TRUE(found10);
    EXPECT_FALSE(found20);

    // An unmatched deletion queues and retracts the applied edge at
    // the next flush.
    ASSERT_TRUE(session.erase(1, 4, 10.0).ok());
    ASSERT_TRUE(session.flushUpdates().ok());
    EXPECT_EQ(svc.store().get("g")->graph->outDegree(1), base_out1);
}

TEST(BatcherCancellation, ExactWeightDeleteSkipsOtherWeights)
{
    ServiceOptions opt;
    opt.pool.numThreads = 1;
    opt.batcher.maxPendingEdges = 1000;
    opt.batcher.solution = Solution::Sequential;
    GraphService svc(opt);
    svc.loadGraph("g", graph::path(8));

    Session session(svc, "g", "pagerank", Solution::Sequential);
    ASSERT_TRUE(session.update(0, 3, 1.5).ok());
    ASSERT_TRUE(session.update(0, 3, 2.5).ok());
    // Exact weight 1.5 cancels the OLDER matching insert even though
    // the 2.5 one is more recent.
    ASSERT_TRUE(session.erase(0, 3, 1.5).ok());
    ASSERT_TRUE(session.flushUpdates().ok());

    const auto snap = svc.store().get("g");
    const auto &g = *snap->graph;
    bool found15 = false, found25 = false;
    for (EdgeId e = g.edgeBegin(0); e < g.edgeEnd(0); ++e) {
        if (g.target(e) == 3 && g.weight(e) == 1.5)
            found15 = true;
        if (g.target(e) == 3 && g.weight(e) == 2.5)
            found25 = true;
    }
    EXPECT_FALSE(found15);
    EXPECT_TRUE(found25);
    EXPECT_EQ(svc.stats().updateEdgesCancelled, 1u);
}

TEST(ProtocolChurn, DelVerbRoundTrip)
{
    ServiceOptions opt;
    opt.pool.numThreads = 1;
    opt.batcher.maxPendingEdges = 1000;
    opt.batcher.solution = Solution::Sequential;
    GraphService svc(opt);

    auto out = [&](const std::string &line) {
        return runCommandLine(svc, line).output;
    };

    EXPECT_EQ(out("load g ring 64").rfind("ok v=", 0), 0u);
    EXPECT_EQ(out("del g 0 1").rfind("ok enqueued=1 pending=1", 0),
              0u);
    EXPECT_EQ(out("flush g").rfind("ok applied v=", 0), 0u);
    EXPECT_EQ(svc.store().get("g")->graph->numEdges(), 63u);

    // Malformed requests reply err without killing the server.
    EXPECT_EQ(out("del g 0").rfind("err 400", 0), 0u);
    EXPECT_EQ(out("del g zero one").rfind("err 400", 0), 0u);
    EXPECT_EQ(out("del g 0 1 -2").rfind("err 400", 0), 0u);
    EXPECT_EQ(out("del nosuch 0 1").rfind("err 404", 0), 0u);
    EXPECT_NE(out("help").find("del <name>"), std::string::npos);

    // Deleting a now-nonexistent edge is an accepted no-op request.
    EXPECT_EQ(out("del g 0 1").rfind("ok enqueued=1", 0), 0u);
    EXPECT_EQ(out("flush g").rfind("ok applied v=", 0), 0u);
    EXPECT_EQ(svc.store().get("g")->graph->numEdges(), 63u);
}

} // namespace
} // namespace depgraph::service
