/**
 * @file
 * Unit tests for the bounded containers (circular queue, fixed stack,
 * FIFO buffer, bitmap) that model DepGraph's hardware structures.
 */

#include <gtest/gtest.h>

#include "common/bitmap.hh"
#include "common/circular_queue.hh"
#include "common/fifo_buffer.hh"
#include "common/fixed_stack.hh"

namespace depgraph
{
namespace
{

TEST(CircularQueue, StartsEmpty)
{
    CircularQueue<int> q(4);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.capacity(), 4u);
}

TEST(CircularQueue, FifoOrder)
{
    CircularQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_TRUE(q.empty());
}

TEST(CircularQueue, WrapsAround)
{
    CircularQueue<int> q(3);
    q.push(1);
    q.push(2);
    EXPECT_EQ(q.pop(), 1);
    q.push(3);
    q.push(4); // wraps
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_EQ(q.pop(), 4);
}

TEST(CircularQueue, TryPushFailsWhenFull)
{
    CircularQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.front(), 1);
}

TEST(CircularQueue, ClearResets)
{
    CircularQueue<int> q(2);
    q.push(1);
    q.clear();
    EXPECT_TRUE(q.empty());
    q.push(7);
    EXPECT_EQ(q.pop(), 7);
}

TEST(FixedStack, LifoOrder)
{
    FixedStack<int> s(4);
    EXPECT_TRUE(s.tryPush(1));
    EXPECT_TRUE(s.tryPush(2));
    EXPECT_EQ(s.top(), 2);
    s.pop();
    EXPECT_EQ(s.top(), 1);
}

TEST(FixedStack, RespectsDepthLimit)
{
    FixedStack<int> s(2);
    EXPECT_TRUE(s.tryPush(1));
    EXPECT_TRUE(s.tryPush(2));
    EXPECT_TRUE(s.full());
    EXPECT_FALSE(s.tryPush(3)); // depth-limited, as in HDTL
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.depth(), 2u);
}

TEST(FixedStack, IndexedAccessBottomUp)
{
    FixedStack<int> s(3);
    s.tryPush(10);
    s.tryPush(20);
    s.tryPush(30);
    EXPECT_EQ(s[0], 10);
    EXPECT_EQ(s[1], 20);
    EXPECT_EQ(s[2], 30);
}

TEST(FixedStack, TopIsMutable)
{
    FixedStack<int> s(2);
    s.tryPush(5);
    s.top() = 9;
    EXPECT_EQ(s.top(), 9);
}

TEST(FifoBuffer, OrderAndCapacity)
{
    FifoBuffer<int> f(2);
    EXPECT_TRUE(f.tryPush(1));
    EXPECT_TRUE(f.tryPush(2));
    EXPECT_FALSE(f.tryPush(3));
    EXPECT_EQ(f.pop(), 1);
    EXPECT_TRUE(f.tryPush(3));
    EXPECT_EQ(f.pop(), 2);
    EXPECT_EQ(f.pop(), 3);
    EXPECT_TRUE(f.empty());
}

TEST(FifoBuffer, TracksOccupancyStats)
{
    FifoBuffer<int> f(8);
    f.tryPush(1); // occupancy 1
    f.tryPush(2); // occupancy 2
    f.tryPush(3); // occupancy 3
    EXPECT_EQ(f.pushes(), 3u);
    EXPECT_DOUBLE_EQ(f.meanOccupancy(), 2.0);
}

TEST(Bitmap, SetTestReset)
{
    Bitmap b(130);
    EXPECT_FALSE(b.test(0));
    b.set(0);
    b.set(64);
    b.set(129);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(64));
    EXPECT_TRUE(b.test(129));
    EXPECT_FALSE(b.test(1));
    b.reset(64);
    EXPECT_FALSE(b.test(64));
    EXPECT_EQ(b.count(), 2u);
}

TEST(Bitmap, TestAndSet)
{
    Bitmap b(10);
    EXPECT_TRUE(b.testAndSet(3));
    EXPECT_FALSE(b.testAndSet(3));
    EXPECT_EQ(b.count(), 1u);
}

TEST(Bitmap, ClearAllAndResize)
{
    Bitmap b(100);
    b.set(50);
    b.clearAll();
    EXPECT_EQ(b.count(), 0u);
    b.resize(10);
    EXPECT_EQ(b.size(), 10u);
    EXPECT_EQ(b.count(), 0u);
}

TEST(Bitmap, ByteSizeCoversAllBits)
{
    Bitmap b(65);
    EXPECT_EQ(b.byteSize(), 16u); // two 64-bit words
}

} // namespace
} // namespace depgraph
