/**
 * @file
 * The full correctness matrix: every execution solution x every
 * algorithm x several graph topologies, each instance asserting
 * convergence to the reference fixpoint. This is the broadest
 * Theorem-1 sweep in the suite (TEST_P over the cartesian product).
 */

#include <gtest/gtest.h>

#include <map>

#include "core/depgraph_system.hh"
#include "gas/reference.hh"
#include "graph/generators.hh"

namespace depgraph
{
namespace
{

using gas::makeAlgorithm;
using gas::maxStateDifference;
using gas::runReference;
using graph::Graph;

struct Case
{
    std::string topology;
    std::string algorithm;
    Solution solution;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    std::string s = info.param.topology + "_" + info.param.algorithm
        + "_" + solutionName(info.param.solution);
    for (auto &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

const Graph &
topologyGraph(const std::string &name)
{
    static std::map<std::string, Graph> cache;
    auto it = cache.find(name);
    if (it != cache.end())
        return it->second;
    Graph g = [&]() -> Graph {
        if (name == "powerlaw")
            return graph::powerLaw(400, 2.0, 7.0, {.seed = 401});
        if (name == "chain")
            return graph::communityChain(4, 90, 2.0, 6.0, 2,
                                         {.seed = 402});
        if (name == "grid")
            return graph::grid(16, 16, {.seed = 403});
        if (name == "tree")
            return graph::binaryTree(255, {.seed = 404});
        dg_fatal("unknown topology ", name);
    }();
    return cache.emplace(name, std::move(g)).first->second;
}

/** Gold fixpoints are shared across the sweep (one per
 * topology x algorithm). */
const std::vector<Value> &
gold(const std::string &topo, const std::string &algo)
{
    static std::map<std::string, std::vector<Value>> cache;
    const std::string key = topo + "/" + algo;
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    const auto alg = makeAlgorithm(algo);
    auto r = runReference(topologyGraph(topo), *alg);
    EXPECT_TRUE(r.converged) << key;
    return cache.emplace(key, std::move(r.states)).first->second;
}

class Matrix : public ::testing::TestWithParam<Case>
{};

TEST_P(Matrix, ConvergesToReferenceFixpoint)
{
    const auto &[topo, algo, solution] = GetParam();
    SystemConfig cfg;
    cfg.machine.numCores = 4;
    cfg.machine.l3TotalBytes = 4 * 1024 * 1024;
    cfg.machine.l3Banks = 4;
    cfg.engine.numCores = 4;
    cfg.engine.hub.lambda = 0.01;
    DepGraphSystem sys(cfg);

    const auto r = sys.run(topologyGraph(topo), algo, solution);
    EXPECT_TRUE(r.metrics.converged);
    EXPECT_LE(maxStateDifference(r.states, gold(topo, algo)), 1e-3);
    EXPECT_GT(r.metrics.makespan, 0u);
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const auto *topo : {"powerlaw", "chain", "grid", "tree"}) {
        for (const auto *algo : {"pagerank", "adsorption", "sssp",
                                 "wcc", "sswp", "bfs"}) {
            for (auto s : allSolutions())
                cases.push_back({topo, algo, s});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Matrix,
                         ::testing::ValuesIn(allCases()), caseName);

} // namespace
} // namespace depgraph
