/**
 * @file
 * NUMA placement helpers: sysfs cpulist parsing, topology probing
 * against a fake sysfs tree, worker->node assignment, the same-node-
 * first steal order, scoped affinity binding, and the first-touch
 * array's cross-thread construction contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>

#include "runtime/numa.hh"
#include "runtime/worksteal.hh"

namespace depgraph::runtime
{
namespace
{

namespace fs = std::filesystem;

/* ---- parseCpuList. ---------------------------------------------- */

TEST(ParseCpuList, SinglesRangesAndMixes)
{
    EXPECT_EQ(parseCpuList("5"), (std::vector<unsigned>{5}));
    EXPECT_EQ(parseCpuList("0-3"),
              (std::vector<unsigned>{0, 1, 2, 3}));
    EXPECT_EQ(parseCpuList("0-3,8,10-11"),
              (std::vector<unsigned>{0, 1, 2, 3, 8, 10, 11}));
    // Sysfs lines end with a newline; junk between chunks is skipped.
    EXPECT_EQ(parseCpuList("0-1\n"),
              (std::vector<unsigned>{0, 1}));
    EXPECT_EQ(parseCpuList(" 2 , 4 "),
              (std::vector<unsigned>{2, 4}));
}

TEST(ParseCpuList, MalformedInputYieldsNothingUsable)
{
    EXPECT_TRUE(parseCpuList("").empty());
    EXPECT_TRUE(parseCpuList("garbage").empty());
    // Inverted range: dropped, the rest of the list survives.
    EXPECT_EQ(parseCpuList("3-1,7"), (std::vector<unsigned>{7}));
    // Absurd cpu ids are treated as junk, not allocated.
    EXPECT_TRUE(parseCpuList("99999999999").empty());
}

/* ---- probeNumaTopology against a fake sysfs root. --------------- */

TEST(ProbeNumaTopology, ReadsNodesFromSysfsTree)
{
    const fs::path root =
        fs::path(::testing::TempDir()) / "dg_numa_fake";
    fs::remove_all(root);
    fs::create_directories(root / "node0");
    fs::create_directories(root / "node1");
    fs::create_directories(root / "node2");
    std::ofstream(root / "node0" / "cpulist") << "0-1\n";
    std::ofstream(root / "node1" / "cpulist") << "2-3\n";
    // Memory-only node: present, but no cpus -> no workers land here.
    std::ofstream(root / "node2" / "cpulist") << "\n";

    const auto topo = probeNumaTopology(root.string());
    ASSERT_EQ(topo.numNodes(), 2u);
    EXPECT_TRUE(topo.multiNode());
    EXPECT_EQ(topo.nodes[0].id, 0u);
    EXPECT_EQ(topo.nodes[0].cpus, (std::vector<unsigned>{0, 1}));
    EXPECT_EQ(topo.nodes[1].id, 1u);
    EXPECT_EQ(topo.nodes[1].cpus, (std::vector<unsigned>{2, 3}));
    fs::remove_all(root);
}

TEST(ProbeNumaTopology, MissingTreeFallsBackToOneNode)
{
    const auto topo = probeNumaTopology("/nonexistent/dg-nodes");
    ASSERT_EQ(topo.numNodes(), 1u);
    EXPECT_FALSE(topo.multiNode());
    EXPECT_GE(topo.nodes[0].cpus.size(), 1u);
}

/* ---- nodeOfWorker: contiguous blocks. --------------------------- */

TEST(NodeOfWorker, ContiguousBlocksCoverAllNodes)
{
    // 8 workers over 2 nodes: 0..3 on node 0, 4..7 on node 1.
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_EQ(nodeOfWorker(w, 8, 2), 0u) << w;
    for (unsigned w = 4; w < 8; ++w)
        EXPECT_EQ(nodeOfWorker(w, 8, 2), 1u) << w;
    // Uneven split: ceil/floor blocks, never out of range.
    for (unsigned w = 0; w < 7; ++w)
        EXPECT_LT(nodeOfWorker(w, 7, 3), 3u) << w;
    EXPECT_EQ(nodeOfWorker(0, 7, 3), 0u);
    EXPECT_EQ(nodeOfWorker(6, 7, 3), 2u);
    // Degenerate inputs stay at node 0.
    EXPECT_EQ(nodeOfWorker(0, 0, 2), 0u);
    EXPECT_EQ(nodeOfWorker(3, 4, 0), 0u);
}

/* ---- stealOrder: same node first, historical order preserved. --- */

TEST(StealOrder, SingleNodeDegeneratesToRotation)
{
    const std::vector<unsigned> one_node{0, 0, 0, 0};
    EXPECT_EQ(stealOrder(1, 4, one_node),
              (std::vector<unsigned>{2, 3, 0}));
    EXPECT_EQ(stealOrder(0, 4, one_node),
              (std::vector<unsigned>{1, 2, 3}));
    EXPECT_TRUE(stealOrder(0, 1, {0}).empty());
}

TEST(StealOrder, SameNodeVictimsComeFirst)
{
    const std::vector<unsigned> nodes{0, 0, 1, 1};
    // Worker 0 (node 0): same-node 1 first, then remote 2, 3 in
    // rotation order.
    EXPECT_EQ(stealOrder(0, 4, nodes),
              (std::vector<unsigned>{1, 2, 3}));
    // Worker 2 (node 1): same-node 3 first, then remote 0, 1.
    EXPECT_EQ(stealOrder(2, 4, nodes),
              (std::vector<unsigned>{3, 0, 1}));
    // Every victim appears exactly once.
    const auto ord = stealOrder(3, 4, nodes);
    ASSERT_EQ(ord.size(), 3u);
    EXPECT_EQ(ord[0], 2u); // same node
}

/* ---- ScopedAffinity: bind + restore, never to forbidden cpus. --- */

TEST(ScopedAffinity, EmptyAndForbiddenSetsDoNotBind)
{
    {
        ScopedAffinity a({});
        EXPECT_FALSE(a.bound());
    }
    {
        // No host exposes cpu 100000; the allowed-set intersection is
        // empty, so the guard must refuse to bind rather than pin the
        // thread somewhere illegal.
        ScopedAffinity a({100000});
        EXPECT_FALSE(a.bound());
    }
}

TEST(ScopedAffinity, BindAndRestoreRoundTrips)
{
    // Binding to every cpu of the (real) node-0 set intersects the
    // thread's allowed mask non-trivially, so on Linux this binds;
    // destruction must restore without crashing, and a second bind
    // must still see the original allowed set.
    const auto topo = probeNumaTopology();
    ASSERT_GE(topo.numNodes(), 1u);
    for (int rep = 0; rep < 2; ++rep) {
        ScopedAffinity a(topo.nodes[0].cpus);
#ifdef __linux__
        EXPECT_TRUE(a.bound()) << "rep " << rep;
#else
        EXPECT_FALSE(a.bound());
#endif
    }
}

/* ---- FirstTouchArray: cross-thread construction contract. ------- */

TEST(FirstTouchArray, PartitionedConstructionAndAlignment)
{
    constexpr std::size_t n = 1000;
    FirstTouchArray<std::atomic<double>> arr(n);
    EXPECT_EQ(arr.size(), n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arr.data()) % 64, 0u);

    // Two threads construct disjoint halves (the engine's pattern:
    // each worker first-touches its own partition), then every
    // element is readable from the main thread after join.
    std::thread t0([&] {
        arr.constructRange(0, n / 2, [](std::size_t i) {
            return static_cast<double>(i);
        });
    });
    std::thread t1([&] {
        arr.constructRange(n / 2, n, [](std::size_t i) {
            return static_cast<double>(i);
        });
    });
    t0.join();
    t1.join();
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(arr[i].load(), static_cast<double>(i)) << i;
}

TEST(FirstTouchArray, ZeroSizeIsSafe)
{
    FirstTouchArray<std::atomic<double>> arr(0);
    EXPECT_EQ(arr.size(), 0u);
    arr.constructRange(0, 0, [](std::size_t) { return 0.0; });
}

} // namespace
} // namespace depgraph::runtime
