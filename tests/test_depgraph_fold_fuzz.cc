/**
 * @file
 * Differential fuzz suite for the fold/apply kernels
 * (src/depgraph/fold_kernels.*): the SIMD path must be BITWISE equal
 * to the scalar reference for every input, or a run's fixpoint would
 * depend on the host ISA (fold_kernels.hh determinism contract).
 *
 * Two layers of fuzzing:
 *
 *  - Raw lane arrays stuffed with the adversarial corners of IEEE
 *    double: +-0.0, +-inf, denormals, NaN-adjacent magnitudes (1e308,
 *    whose sums overflow to inf) and genuine NaNs, over every ragged
 *    tail length around the 4-wide / 16-striped block boundaries.
 *  - Algorithm-shaped lanes: real edge blocks gathered through
 *    edgeFuncBlock() from power-law graphs for all five production
 *    algorithms, 64 seeds each, applied at special-valued source
 *    deltas.
 *
 * Comparisons go through detail::scalarKernels() vs
 * detail::avx2Kernels() directly so the suite pins both paths
 * explicitly, independent of the ambient dispatch state; on hosts
 * without AVX2 the differential half auto-skips and the scalar
 * reference contracts (identities, striped-tree order, LinearFunc
 * equivalence) still run.
 */

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "depgraph/fold_kernels.hh"
#include "gas/algorithms.hh"
#include "graph/generators.hh"

namespace depgraph
{
namespace
{

namespace fold = dep::fold;

/** Bitwise equality, so -0.0 vs +0.0 and differing NaN payloads count
 * as mismatches. */
bool
bitEq(Value a, Value b)
{
    return std::memcmp(&a, &b, sizeof(Value)) == 0;
}

std::uint64_t
bits(Value v)
{
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof u);
    return u;
}

#define EXPECT_BITEQ(a, b)                                             \
    EXPECT_PRED2(bitEq, (a), (b))                                      \
        << "bits " << std::hex << bits(a) << " vs " << bits(b)

/** Additive results (sums, mu*d products): bitwise equal, except that
 * two NaNs always match. IEEE + and * are bitwise-commutative for
 * every NUMERIC value, so the compiler may swap scalar operand order;
 * only NaN sign/payload bits can observe that (fold_kernels.hh
 * carve-out). Min/max stay under the strict EXPECT_BITEQ. */
bool
bitEqOrBothNan(Value a, Value b)
{
    return bitEq(a, b) || (std::isnan(a) && std::isnan(b));
}

#define EXPECT_ADDEQ(a, b)                                             \
    EXPECT_PRED2(bitEqOrBothNan, (a), (b))                             \
        << "bits " << std::hex << bits(a) << " vs " << bits(b)

/** Adversarial IEEE corners, mixed with ordinary magnitudes. */
Value
specialValue(Rng &rng)
{
    static const Value pool[] = {
        0.0,
        -0.0,
        1.0,
        -1.0,
        kInfinity,
        -kInfinity,
        std::numeric_limits<Value>::denorm_min(),
        -std::numeric_limits<Value>::denorm_min(),
        2.2250738585072009e-308, // largest subnormal
        -2.2250738585072009e-308,
        1e308, // sums overflow to inf (NaN-adjacent: inf - inf)
        -1e308,
        1e-300,
        std::numeric_limits<Value>::quiet_NaN(),
        0.1,
        -0.1,
    };
    if (rng.nextBool(0.5))
        return pool[rng.nextBounded(std::size(pool))];
    return rng.nextDouble(-1e3, 1e3);
}

/** Lengths straddling the 4-wide vector and 16-lane stripe
 * boundaries, plus the empty range. */
std::size_t
fuzzLength(Rng &rng)
{
    static const std::size_t fixed[] = {0,  1,  2,  3,  4,   5,  7,
                                        8,  15, 16, 17, 19,  31, 32,
                                        33, 63, 64, 65, 127, 128};
    if (rng.nextBool(0.7))
        return fixed[rng.nextBounded(std::size(fixed))];
    return rng.nextBounded(200);
}

std::vector<Value>
fuzzArray(Rng &rng, std::size_t n)
{
    std::vector<Value> x(n);
    for (auto &v : x)
        v = specialValue(rng);
    return x;
}

/** Independent reimplementation of the pinned reduction order from
 * fold_kernels.hh, so BOTH kernel tables are checked against the
 * documented tree rather than only against each other. */
template <typename Op>
Value
stripedReference(const Value *x, std::size_t n, Value ident, Op op)
{
    Value lane[fold::kFoldLanes];
    for (auto &l : lane)
        l = ident;
    for (std::size_t i = 0; i < n; ++i)
        lane[i % fold::kFoldLanes] = op(lane[i % fold::kFoldLanes], x[i]);
    Value c[4];
    for (std::size_t j = 0; j < 4; ++j)
        c[j] = op(op(lane[j], lane[j + 4]), op(lane[j + 8], lane[j + 12]));
    return op(op(c[0], c[1]), op(c[2], c[3]));
}

Value
refMin(Value a, Value b)
{
    return a < b ? a : b;
}

Value
refMax(Value a, Value b)
{
    return a > b ? a : b;
}

/* ---- Raw lane-array fuzz: scalar vs AVX2, all five kernels. ---- */

TEST(FoldFuzz, RawLanesScalarVsAvx2Bitwise)
{
    const auto *avx2 = fold::detail::avx2Kernels();
    if (avx2 == nullptr)
        GTEST_SKIP() << "host/build lacks AVX2";
    const auto &scalar = fold::detail::scalarKernels();

    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        Rng rng(0xF01D + seed);
        for (int iter = 0; iter < 32; ++iter) {
            const std::size_t n = fuzzLength(rng);
            const auto x = fuzzArray(rng, n);

            EXPECT_ADDEQ(scalar.foldSum(x.data(), n),
                         avx2->foldSum(x.data(), n))
                << "seed " << seed << " n " << n;
            EXPECT_BITEQ(scalar.foldMin(x.data(), n),
                         avx2->foldMin(x.data(), n))
                << "seed " << seed << " n " << n;
            EXPECT_BITEQ(scalar.foldMax(x.data(), n),
                         avx2->foldMax(x.data(), n))
                << "seed " << seed << " n " << n;

            // edgeApply: random mu/xi/cap lanes at a special delta.
            const auto mu = fuzzArray(rng, n);
            const auto xi = fuzzArray(rng, n);
            auto cap = fuzzArray(rng, n);
            // Mix in the common "no cap" case.
            for (auto &c : cap)
                if (rng.nextBool(0.5))
                    c = kInfinity;
            const Value d = specialValue(rng);
            std::vector<Value> inf_s(n), inf_v(n);
            scalar.edgeApply(mu.data(), xi.data(), cap.data(), d,
                             inf_s.data(), n);
            avx2->edgeApply(mu.data(), xi.data(), cap.data(), d,
                            inf_v.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_ADDEQ(inf_s[i], inf_v[i])
                    << "seed " << seed << " lane " << i;

            // mergeDense: identity-sprinkled shadow, all three kinds.
            for (auto kind : {gas::AccumKind::Sum, gas::AccumKind::Min,
                              gas::AccumKind::Max}) {
                const Value ident = gas::accumIdentity(kind);
                auto delta_s = fuzzArray(rng, n);
                auto shadow_s = fuzzArray(rng, n);
                for (auto &s : shadow_s)
                    if (rng.nextBool(0.4))
                        s = ident;
                auto delta_v = delta_s;
                auto shadow_v = shadow_s;
                scalar.mergeDense(kind, delta_s.data(), shadow_s.data(),
                                  ident, n);
                avx2->mergeDense(kind, delta_v.data(), shadow_v.data(),
                                 ident, n);
                for (std::size_t i = 0; i < n; ++i) {
                    if (kind == gas::AccumKind::Sum)
                        EXPECT_ADDEQ(delta_s[i], delta_v[i])
                            << "seed " << seed << " slot " << i;
                    else
                        EXPECT_BITEQ(delta_s[i], delta_v[i])
                            << "seed " << seed << " slot " << i;
                    EXPECT_BITEQ(shadow_s[i], shadow_v[i])
                        << "seed " << seed << " slot " << i;
                }
            }
        }
    }
}

/* ---- Scalar reference contracts (run on every host). ---- */

TEST(FoldFuzz, EmptyRangeIdentities)
{
    const auto &scalar = fold::detail::scalarKernels();
    EXPECT_BITEQ(scalar.foldSum(nullptr, 0), 0.0);
    EXPECT_BITEQ(scalar.foldMin(nullptr, 0), kInfinity);
    EXPECT_BITEQ(scalar.foldMax(nullptr, 0), -kInfinity);
    EXPECT_BITEQ(fold::foldSum(nullptr, 0), 0.0);
    EXPECT_BITEQ(fold::foldMin(nullptr, 0), kInfinity);
    EXPECT_BITEQ(fold::foldMax(nullptr, 0), -kInfinity);
    if (const auto *avx2 = fold::detail::avx2Kernels()) {
        EXPECT_BITEQ(avx2->foldSum(nullptr, 0), 0.0);
        EXPECT_BITEQ(avx2->foldMin(nullptr, 0), kInfinity);
        EXPECT_BITEQ(avx2->foldMax(nullptr, 0), -kInfinity);
    }
}

TEST(FoldFuzz, StripedTreeOrderIsTheDocumentedOne)
{
    const auto &scalar = fold::detail::scalarKernels();
    const auto *avx2 = fold::detail::avx2Kernels();
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        Rng rng(0x57A1 + seed);
        const std::size_t n = fuzzLength(rng);
        const auto x = fuzzArray(rng, n);

        const Value ref_sum = stripedReference(
            x.data(), n, 0.0, [](Value a, Value b) { return a + b; });
        const Value ref_min = fold::canon(
            stripedReference(x.data(), n, kInfinity, refMin));
        const Value ref_max = fold::canon(
            stripedReference(x.data(), n, -kInfinity, refMax));

        EXPECT_ADDEQ(scalar.foldSum(x.data(), n), ref_sum) << "n " << n;
        EXPECT_BITEQ(scalar.foldMin(x.data(), n), ref_min) << "n " << n;
        EXPECT_BITEQ(scalar.foldMax(x.data(), n), ref_max) << "n " << n;
        if (avx2 != nullptr) {
            EXPECT_ADDEQ(avx2->foldSum(x.data(), n), ref_sum);
            EXPECT_BITEQ(avx2->foldMin(x.data(), n), ref_min);
            EXPECT_BITEQ(avx2->foldMax(x.data(), n), ref_max);
        }
    }
}

TEST(FoldFuzz, EdgeApplyMatchesLinearFuncPerElement)
{
    const auto &scalar = fold::detail::scalarKernels();
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        Rng rng(0xEA11 + seed);
        const std::size_t n = fuzzLength(rng);
        const auto mu = fuzzArray(rng, n);
        const auto xi = fuzzArray(rng, n);
        const auto cap = fuzzArray(rng, n);
        const Value d = specialValue(rng);
        std::vector<Value> inf(n);
        scalar.edgeApply(mu.data(), xi.data(), cap.data(), d, inf.data(),
                         n);
        for (std::size_t i = 0; i < n; ++i) {
            const gas::LinearFunc f{mu[i], xi[i], cap[i]};
            EXPECT_ADDEQ(inf[i], f(d)) << "lane " << i;
        }
    }
}

TEST(FoldFuzz, DispatchControls)
{
    // forceScalar(true) pins the fallback even on AVX2 hosts; the
    // dispatched entry points then agree bitwise with the scalar table
    // by identity, not merely by value.
    fold::forceScalar(true);
    EXPECT_EQ(fold::activeIsa(), fold::Isa::Scalar);
    Rng rng(0xD15);
    const auto x = fuzzArray(rng, 37);
    EXPECT_BITEQ(fold::foldSum(x.data(), x.size()),
                 fold::detail::scalarKernels().foldSum(x.data(),
                                                       x.size()));
    fold::forceScalar(false);
    // Autodetection: AVX2 active only when the host supports it (the
    // DG_SIMD env override may still legitimately force scalar).
    if (fold::activeIsa() == fold::Isa::Avx2) {
        EXPECT_TRUE(fold::avx2Supported());
    }
    EXPECT_STREQ(fold::isaName(fold::Isa::Scalar), "scalar");
    EXPECT_STREQ(fold::isaName(fold::Isa::Avx2), "avx2");
}

/* ---- Algorithm-shaped lanes: real edge blocks, 64 seeds x all five
 * production algorithms. ---- */

class AlgorithmFoldFuzz : public ::testing::TestWithParam<std::string>
{};

TEST_P(AlgorithmFoldFuzz, EdgeBlocksScalarVsAvx2Bitwise)
{
    const auto *avx2 = fold::detail::avx2Kernels();
    const auto &scalar = fold::detail::scalarKernels();

    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        Rng rng(0xA160 + seed * 131);
        const graph::Graph g =
            graph::powerLaw(120, 2.0, 6.0, {.seed = 9000 + seed});
        auto alg = gas::makeAlgorithm(GetParam());
        alg->prepare(g);

        for (int iter = 0; iter < 16; ++iter) {
            // Pick a vertex with out-edges and a random sub-block,
            // including ragged tails (n not a multiple of 4 or 16).
            VertexId v = 0;
            for (int tries = 0; tries < 64; ++tries) {
                v = static_cast<VertexId>(
                    rng.nextBounded(g.numVertices()));
                if (g.outDegree(v) > 0)
                    break;
            }
            const EdgeId deg = g.outDegree(v);
            if (deg == 0)
                continue;
            const EdgeId off = rng.nextBounded(deg);
            const auto n = static_cast<std::uint32_t>(std::min<EdgeId>(
                1 + rng.nextBounded(fold::kLaneTile), deg - off));
            const EdgeId eBegin = g.edgeBegin(v) + off;

            // The block gather must agree bitwise with per-edge
            // edgeFunc (the edgeFuncBlock() override contract).
            std::vector<Value> mu(n), xi(n), cap(n);
            alg->edgeFuncBlock(g, v, eBegin, n, mu.data(), xi.data(),
                               cap.data());
            for (std::uint32_t i = 0; i < n; ++i) {
                const gas::LinearFunc f = alg->edgeFunc(g, v, eBegin + i);
                EXPECT_BITEQ(mu[i], f.mu) << "edge " << i;
                EXPECT_BITEQ(xi[i], f.xi) << "edge " << i;
                EXPECT_BITEQ(cap[i], f.cap) << "edge " << i;
            }

            // Deltas a real walk could carry, plus the IEEE corners.
            const Value d = rng.nextBool(0.5)
                                ? specialValue(rng)
                                : rng.nextDouble(-10.0, 10.0);
            std::vector<Value> inf_s(n);
            scalar.edgeApply(mu.data(), xi.data(), cap.data(), d,
                             inf_s.data(), n);
            const Value sum_s = scalar.foldSum(inf_s.data(), n);
            const Value min_s = scalar.foldMin(inf_s.data(), n);
            const Value max_s = scalar.foldMax(inf_s.data(), n);

            if (avx2 == nullptr)
                continue;
            std::vector<Value> inf_v(n);
            avx2->edgeApply(mu.data(), xi.data(), cap.data(), d,
                            inf_v.data(), n);
            for (std::uint32_t i = 0; i < n; ++i)
                EXPECT_ADDEQ(inf_s[i], inf_v[i])
                    << GetParam() << " seed " << seed << " lane " << i;
            EXPECT_ADDEQ(sum_s, avx2->foldSum(inf_v.data(), n));
            EXPECT_BITEQ(min_s, avx2->foldMin(inf_v.data(), n));
            EXPECT_BITEQ(max_s, avx2->foldMax(inf_v.data(), n));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmFoldFuzz,
                         ::testing::Values("pagerank", "adsorption",
                                           "sssp", "wcc", "sswp"),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace depgraph
