/**
 * @file
 * Tests for the ISA-level engine facade: DEP_configure /
 * DEP_insert_root / DEP_fetch_edge semantics, traversal coverage,
 * H'' and partition cuts, stack-depth continuation, and FIFO
 * behaviour.
 */

#include <gtest/gtest.h>

#include <set>

#include "depgraph/api.hh"
#include "graph/builder.hh"
#include "graph/generators.hh"

namespace depgraph::dep
{
namespace
{

using graph::Builder;
using graph::Graph;

DepConfig
wholeGraphConfig(const Graph &g)
{
    DepConfig cfg;
    cfg.graph = &g;
    cfg.partitionBegin = 0;
    cfg.partitionEnd = g.numVertices();
    return cfg;
}

TEST(DepEngineApi, IdleBeforeRoots)
{
    const Graph g = graph::path(5);
    DepEngine e;
    e.DEP_configure(wholeGraphConfig(g));
    EXPECT_TRUE(e.idle());
    EXPECT_FALSE(e.DEP_fetch_edge().has_value());
}

TEST(DepEngineApi, ChainIsPrefetchedInOrder)
{
    const Graph g = graph::path(6);
    DepEngine e;
    e.DEP_configure(wholeGraphConfig(g));
    ASSERT_TRUE(e.DEP_insert_root(0));
    for (VertexId v = 0; v + 1 < 6; ++v) {
        const auto f = e.DEP_fetch_edge();
        ASSERT_TRUE(f.has_value()) << v;
        EXPECT_EQ(f->src, v);
        EXPECT_EQ(f->dst, v + 1);
        EXPECT_FALSE(f->cutAtDst);
    }
    EXPECT_FALSE(e.DEP_fetch_edge().has_value());
    EXPECT_TRUE(e.idle());
    EXPECT_EQ(e.prefetchedEdges(), 5u);
    EXPECT_EQ(e.traversals(), 1u);
}

TEST(DepEngineApi, CoversReachableEdges)
{
    const Graph g = graph::powerLaw(300, 2.0, 6.0, {.seed = 801});
    DepEngine e;
    e.DEP_configure(wholeGraphConfig(g));
    ASSERT_TRUE(e.DEP_insert_root(0));
    std::set<EdgeId> seen;
    std::uint64_t emitted = 0;
    while (const auto f = e.DEP_fetch_edge()) {
        seen.insert(f->edge);
        ++emitted;
    }
    // Coverage: the traversal reached a non-trivial edge set. Visit
    // marks are per-traversal, so continuation roots may re-emit an
    // edge -- but the duplication is bounded by the traversal count.
    EXPECT_GT(seen.size(), 100u);
    EXPECT_LE(emitted, seen.size() * e.traversals());
}

TEST(DepEngineApi, SingleTraversalEmitsEachEdgeOnce)
{
    // Within ONE traversal (deep stack, tree graph: no continuation
    // roots, no cycles) every edge is emitted exactly once.
    const Graph g = graph::binaryTree(255, {.seed = 802});
    auto cfg = wholeGraphConfig(g);
    cfg.stackDepth = 32;
    DepEngine e;
    e.DEP_configure(cfg);
    ASSERT_TRUE(e.DEP_insert_root(0));
    std::set<EdgeId> seen;
    while (const auto f = e.DEP_fetch_edge())
        EXPECT_TRUE(seen.insert(f->edge).second)
            << "edge " << f->edge << " emitted twice";
    EXPECT_EQ(seen.size(), g.numEdges());
    EXPECT_EQ(e.traversals(), 1u);
}

TEST(DepEngineApi, HppVertexCutsTraversal)
{
    // 0 -> 1 -> 2 -> 3 with H'' = {2}: the walk must emit (1,2) with
    // the cut flag and never descend beyond 2.
    const Graph g = graph::path(4);
    Bitmap hpp(4);
    hpp.set(2);
    auto cfg = wholeGraphConfig(g);
    cfg.hpp = &hpp;
    DepEngine e;
    e.DEP_configure(cfg);
    ASSERT_TRUE(e.DEP_insert_root(0));

    std::vector<FetchedEdge> out;
    while (const auto f = e.DEP_fetch_edge())
        out.push_back(*f);
    ASSERT_EQ(out.size(), 2u); // (0,1) and (1,2); (2,3) not walked
    EXPECT_FALSE(out[0].cutAtDst);
    EXPECT_TRUE(out[1].cutAtDst);
    EXPECT_EQ(e.hppCuts(), 1u);
}

TEST(DepEngineApi, PartitionBoundaryCutsTraversal)
{
    const Graph g = graph::path(6);
    auto cfg = wholeGraphConfig(g);
    cfg.partitionEnd = 3; // this core owns [0, 3)
    DepEngine e;
    e.DEP_configure(cfg);
    ASSERT_TRUE(e.DEP_insert_root(0));
    std::vector<FetchedEdge> out;
    while (const auto f = e.DEP_fetch_edge())
        out.push_back(*f);
    // Edges (0,1), (1,2), (2,3): the last one crosses and is cut.
    ASSERT_EQ(out.size(), 3u);
    EXPECT_TRUE(out[2].cutAtDst);
}

TEST(DepEngineApi, StackOverflowContinuesViaQueue)
{
    // A 10-deep chain with stack depth 3 must still cover everything
    // by re-rooting (continuation roots into the circular queue).
    const Graph g = graph::path(10);
    auto cfg = wholeGraphConfig(g);
    cfg.stackDepth = 3;
    DepEngine e;
    e.DEP_configure(cfg);
    ASSERT_TRUE(e.DEP_insert_root(0));
    std::set<EdgeId> seen;
    while (const auto f = e.DEP_fetch_edge())
        seen.insert(f->edge);
    EXPECT_EQ(seen.size(), 9u); // every edge of the chain
    EXPECT_GT(e.stackCuts(), 0u);
    EXPECT_GT(e.traversals(), 1u);
}

TEST(DepEngineApi, FictitiousConstantsExist)
{
    // The sentinel the fictitious reset edges use must never collide
    // with a real vertex id in any graph this engine can address.
    EXPECT_NE(kFictitiousVertex, kInvalidVertex);
    EXPECT_GT(kFictitiousVertex,
              std::numeric_limits<VertexId>::max() - 2);
}

TEST(DepEngineApi, QueueCapacityIsEnforced)
{
    const Graph g = graph::path(4);
    auto cfg = wholeGraphConfig(g);
    cfg.queueCapacity = 2;
    DepEngine e;
    e.DEP_configure(cfg);
    EXPECT_TRUE(e.DEP_insert_root(0));
    EXPECT_TRUE(e.DEP_insert_root(1));
    EXPECT_FALSE(e.DEP_insert_root(2)); // full
}

TEST(DepEngineApi, ReconfigureResetsState)
{
    const Graph g = graph::path(5);
    DepEngine e;
    e.DEP_configure(wholeGraphConfig(g));
    e.DEP_insert_root(0);
    (void)e.DEP_fetch_edge();
    e.DEP_configure(wholeGraphConfig(g));
    EXPECT_TRUE(e.idle());
    EXPECT_EQ(e.prefetchedEdges(), 0u);
}

TEST(DepEngineApi, BranchingGraphIsDepthFirst)
{
    // Root 0 with children 1 and 4; 1 -> 2 -> 3. Depth-first means
    // the whole 1-subtree is emitted before edge (0, 4).
    Builder b(5);
    b.addEdge(0, 1);
    b.addEdge(0, 4);
    b.addEdge(1, 2);
    b.addEdge(2, 3);
    const Graph g = b.build();
    DepEngine e;
    e.DEP_configure(wholeGraphConfig(g));
    e.DEP_insert_root(0);
    std::vector<std::pair<VertexId, VertexId>> order;
    while (const auto f = e.DEP_fetch_edge())
        order.emplace_back(f->src, f->dst);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], (std::pair<VertexId, VertexId>{0, 1}));
    EXPECT_EQ(order[1], (std::pair<VertexId, VertexId>{1, 2}));
    EXPECT_EQ(order[2], (std::pair<VertexId, VertexId>{2, 3}));
    EXPECT_EQ(order[3], (std::pair<VertexId, VertexId>{0, 4}));
}

} // namespace
} // namespace depgraph::dep
