/**
 * @file
 * Tests for the core-subgraph / core-path decomposition (Definition 2):
 * disjointness, endpoint typing, edge validity, and the path-id rule.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/builder.hh"
#include "graph/core_paths.hh"
#include "graph/generators.hh"

namespace depgraph::graph
{
namespace
{

/** Validate structural invariants of any decomposition. */
void
checkInvariants(const Graph &g, const HubSet &hubs,
                const CoreSubgraph &cs)
{
    std::set<EdgeId> edges_seen;
    std::map<VertexId, int> interior_count;

    for (const auto &p : cs.paths()) {
        // Path endpoints are hub- or core-vertices.
        ASSERT_TRUE(hubs.isHub(p.head) || cs.isCoreVertex(p.head));
        ASSERT_TRUE(hubs.isHub(p.tail) || cs.isCoreVertex(p.tail));
        ASSERT_GE(p.vertices.size(), 2u);
        ASSERT_EQ(p.edges.size(), p.vertices.size() - 1);
        // pathId is the id of the second vertex (paper Sec. III-B2).
        ASSERT_EQ(p.pathId, p.vertices[1]);

        // Edges truly connect consecutive vertices.
        for (std::size_t i = 0; i < p.edges.size(); ++i) {
            const EdgeId e = p.edges[i];
            ASSERT_LT(e, g.numEdges());
            ASSERT_EQ(g.target(e), p.vertices[i + 1]);
            ASSERT_GE(e, g.edgeBegin(p.vertices[i]));
            ASSERT_LT(e, g.edgeEnd(p.vertices[i]));
            // Edge-disjointness across all core-paths.
            ASSERT_TRUE(edges_seen.insert(e).second)
                << "edge " << e << " in two core-paths";
        }
        // Interior vertices are not hubs and not endpoints of others.
        for (std::size_t i = 1; i + 1 < p.vertices.size(); ++i) {
            ASSERT_FALSE(hubs.isHub(p.vertices[i]));
            ASSERT_FALSE(cs.isCoreVertex(p.vertices[i]));
            ++interior_count[p.vertices[i]];
        }
    }
    // Vertex-disjoint interiors: each interior vertex on exactly one
    // core-path.
    for (const auto &[v, c] : interior_count)
        ASSERT_EQ(c, 1) << "vertex " << v << " interior to " << c
                        << " paths";
}

TEST(CorePaths, TwoHubsJoinedByAChain)
{
    // hub0 -> 1 -> 2 -> hub3; hubs get high degree via extra fan-out.
    Builder b(20);
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    b.addEdge(2, 3);
    for (VertexId v = 4; v < 11; ++v)
        b.addEdge(0, v);
    for (VertexId v = 11; v < 18; ++v)
        b.addEdge(3, v);
    const Graph g = b.build();
    const HubSet hubs(g, std::vector<VertexId>{0, 3});
    ASSERT_TRUE(hubs.isHub(0));
    ASSERT_TRUE(hubs.isHub(3));

    const CoreSubgraph cs(g, hubs);
    checkInvariants(g, hubs, cs);

    // There must be a core-path 0 -> 1 -> 2 -> 3.
    bool found = false;
    for (const auto &p : cs.paths()) {
        if (p.head == 0 && p.tail == 3 && p.vertices.size() == 4)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(CorePaths, IntersectionCreatesCoreVertex)
{
    // Two hub chains that share an interior vertex 5:
    //   h0 -> 4 -> 5 -> 6 -> h1
    //   h2 -> 7 -> 5 -> 8 -> h3   (5 must become a core-vertex)
    Builder b(40);
    b.addEdge(0, 4);
    b.addEdge(4, 5);
    b.addEdge(5, 6);
    b.addEdge(6, 1);
    b.addEdge(2, 7);
    b.addEdge(7, 5);
    b.addEdge(5, 8);
    b.addEdge(8, 3);
    // Make 0..3 hubs by degree.
    VertexId pad = 9;
    for (VertexId h = 0; h < 4; ++h)
        for (int k = 0; k < 6; ++k)
            b.addEdge(h, pad++);
    const Graph g = b.build();
    const HubSet hubs(g, std::vector<VertexId>{0, 1, 2, 3});
    ASSERT_TRUE(hubs.isHub(0) && hubs.isHub(1) && hubs.isHub(2)
                && hubs.isHub(3));

    const CoreSubgraph cs(g, hubs);
    checkInvariants(g, hubs, cs);
    EXPECT_TRUE(cs.isCoreVertex(5));
    EXPECT_GE(cs.numCoreVertices(), 1u);
    // 5 must appear as an endpoint of several paths, never interior
    // (checked by invariants), and paths from 5 exist after the split.
    EXPECT_FALSE(cs.pathsFrom(5).empty());
}

TEST(CorePaths, PathsFromIndexesHeads)
{
    const Graph g = powerLaw(2000, 2.0, 10.0, {.seed = 41});
    const HubSet hubs(g, HubParams{});
    const CoreSubgraph cs(g, hubs);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (auto idx : cs.pathsFrom(v))
            ASSERT_EQ(cs.paths()[idx].head, v);
    }
}

TEST(CorePaths, InvariantsOnPowerLawGraph)
{
    const Graph g = powerLaw(3000, 2.0, 12.0, {.seed = 42});
    HubParams hp;
    hp.lambda = 0.01;
    const HubSet hubs(g, hp);
    const CoreSubgraph cs(g, hubs);
    ASSERT_GT(cs.paths().size(), 0u);
    checkInvariants(g, hubs, cs);
}

TEST(CorePaths, InvariantsOnCommunityChain)
{
    const Graph g = communityChain(6, 200, 2.0, 8.0, 2, {.seed = 43});
    HubParams hp;
    hp.lambda = 0.02;
    const HubSet hubs(g, hp);
    const CoreSubgraph cs(g, hubs);
    checkInvariants(g, hubs, cs);
}

TEST(CorePaths, RespectsMaxLength)
{
    // Long chain between two hubs with max_len smaller than the chain.
    Builder b(30);
    for (VertexId v = 0; v < 20; ++v)
        b.addEdge(v, v + 1);
    for (VertexId k = 21; k < 27; ++k) {
        b.addEdge(0, k);
        b.addEdge(20, k);
    }
    const Graph g = b.build();
    const HubSet hubs(g, std::vector<VertexId>{0, 20});
    ASSERT_TRUE(hubs.isHub(0) && hubs.isHub(20));
    const CoreSubgraph cs(g, hubs, /*max_len=*/5);
    for (const auto &p : cs.paths())
        ASSERT_LE(p.length(), 5u);
}

TEST(CorePaths, NoHubsMeansNoPaths)
{
    const Graph g = path(50);
    HubParams hp;
    hp.lambda = 0.0;
    const HubSet hubs(g, hp);
    const CoreSubgraph cs(g, hubs);
    EXPECT_TRUE(cs.paths().empty());
    EXPECT_EQ(cs.numCoreVertices(), 0u);
}

TEST(CorePaths, MeshGraphHasFewUsefulPaths)
{
    // Meshes have no degree skew; with a sane lambda nearly every vertex
    // ties at the threshold, so this mostly sanity-checks invariants.
    const Graph g = grid(20, 20, {.seed = 44});
    HubParams hp;
    hp.lambda = 0.01;
    const HubSet hubs(g, hp);
    const CoreSubgraph cs(g, hubs);
    checkInvariants(g, hubs, cs);
}

} // namespace
} // namespace depgraph::graph
