/**
 * @file
 * Failpoint framework semantics: spec parsing, arm/disarm lifecycle,
 * the error and delay actions, @n hit thresholds, and DG_FAILPOINTS
 * environment parsing. (The `exit` action _exit()s the process and is
 * exercised by the subprocess chaos suite, not here.)
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>

#include "common/failpoint.hh"

namespace depgraph::failpoint
{
namespace
{

/** Every test starts and ends with a clean registry: failpoints are
 * process-global state. */
class FailpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { clearAll(); }
    void TearDown() override { clearAll(); }
};

TEST_F(FailpointTest, DisarmedSitesReturnFalse)
{
    EXPECT_EQ(armedCount(), 0u);
    EXPECT_FALSE(dg_failpoint("test.never_armed"));
}

TEST_F(FailpointTest, ErrorActionFiresUntilDisarmed)
{
    ASSERT_TRUE(arm("test.err", "error"));
    EXPECT_EQ(armedCount(), 1u);
    EXPECT_TRUE(dg_failpoint("test.err"));
    EXPECT_TRUE(dg_failpoint("test.err")); // sticky, not one-shot

    // Another site stays untouched while this one is armed.
    EXPECT_FALSE(dg_failpoint("test.other"));

    ASSERT_TRUE(arm("test.err", "off"));
    EXPECT_EQ(armedCount(), 0u);
    EXPECT_FALSE(dg_failpoint("test.err"));
}

TEST_F(FailpointTest, DelayActionSleepsThenReturnsFalse)
{
    ASSERT_TRUE(arm("test.slow", "delay(30)"));
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(dg_failpoint("test.slow"));
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST_F(FailpointTest, HitThresholdFiresOnNthAndLaterHits)
{
    ASSERT_TRUE(arm("test.third", "error@3"));
    EXPECT_FALSE(dg_failpoint("test.third")); // hit 1
    EXPECT_FALSE(dg_failpoint("test.third")); // hit 2
    EXPECT_TRUE(dg_failpoint("test.third"));  // hit 3: fires
    EXPECT_TRUE(dg_failpoint("test.third"));  // hit 4: still fires
}

TEST_F(FailpointTest, RearmingResetsHitCount)
{
    ASSERT_TRUE(arm("test.re", "error@2"));
    EXPECT_FALSE(dg_failpoint("test.re"));
    EXPECT_TRUE(dg_failpoint("test.re"));
    ASSERT_TRUE(arm("test.re", "error@2")); // re-arm: fresh counter
    EXPECT_EQ(armedCount(), 1u);            // replaced, not doubled
    EXPECT_FALSE(dg_failpoint("test.re"));
    EXPECT_TRUE(dg_failpoint("test.re"));
}

TEST_F(FailpointTest, MalformedSpecsAreRejected)
{
    EXPECT_FALSE(arm("t", ""));
    EXPECT_FALSE(arm("t", "explode"));
    EXPECT_TRUE(arm("t", "exit"));           // exit defaults to 137
    EXPECT_FALSE(arm("t", "delay(abc)"));
    EXPECT_FALSE(arm("t", "delay(10"));      // missing ')'
    EXPECT_FALSE(arm("t", "error@"));        // empty threshold
    EXPECT_FALSE(arm("t", "error@0"));       // hits are 1-based
    EXPECT_FALSE(arm("t", "error@2x"));      // trailing junk
    clearAll();
    EXPECT_EQ(armedCount(), 0u);
}

TEST_F(FailpointTest, ListShowsSpecAndHitCounts)
{
    ASSERT_TRUE(arm("test.a", "error"));
    ASSERT_TRUE(arm("test.b", "delay(5)@2"));
    (void)dg_failpoint("test.a");

    const auto lines = list();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "test.a=error hits=1");
    EXPECT_EQ(lines[1], "test.b=delay(5)@2 hits=0");

    clearAll();
    EXPECT_TRUE(list().empty());
}

TEST_F(FailpointTest, ArmFromEnvParsesBothSeparators)
{
    ::setenv("DG_FP_TEST",
             "test.x=error@2;test.y=delay(1),test.z=exit(7)@9", 1);
    EXPECT_EQ(armFromEnv("DG_FP_TEST"), 3u);
    EXPECT_EQ(armedCount(), 3u);
    const auto lines = list();
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], "test.x=error@2 hits=0");
    EXPECT_EQ(lines[1], "test.y=delay(1) hits=0");
    EXPECT_EQ(lines[2], "test.z=exit(7)@9 hits=0");
    ::unsetenv("DG_FP_TEST");
}

TEST_F(FailpointTest, ArmFromEnvSkipsMalformedEntries)
{
    ::setenv("DG_FP_TEST", "bad-entry;test.ok=error;also=bogus()", 1);
    EXPECT_EQ(armFromEnv("DG_FP_TEST"), 1u);
    EXPECT_EQ(armedCount(), 1u);
    EXPECT_TRUE(dg_failpoint("test.ok"));
    ::unsetenv("DG_FP_TEST");
}

TEST_F(FailpointTest, ArmFromEnvMissingVariableIsZero)
{
    ::unsetenv("DG_FP_NOPE");
    EXPECT_EQ(armFromEnv("DG_FP_NOPE"), 0u);
}

} // namespace
} // namespace depgraph::failpoint
