/**
 * @file
 * ShardRouter consistent hashing and the latency-driven
 * AdmissionController (pure units; no sockets involved).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "net/admission.hh"
#include "net/router.hh"

namespace depgraph::net
{
namespace
{

std::vector<std::string>
keyUniverse(std::size_t n)
{
    std::vector<std::string> keys;
    keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        keys.push_back("graph-" + std::to_string(i));
    return keys;
}

TEST(ShardRouter, EmptyRingRoutesNowhere)
{
    ShardRouter r;
    EXPECT_EQ(r.size(), 0u);
    EXPECT_EQ(r.shardFor("g"), "");
}

TEST(ShardRouter, SingleEndpointOwnsEverything)
{
    ShardRouter r;
    r.add("a:1");
    for (const auto &k : keyUniverse(50))
        EXPECT_EQ(r.shardFor(k), "a:1");
}

TEST(ShardRouter, DeterministicAcrossInstances)
{
    // Placement must agree between independent ring instances (the
    // client computes it separately from every server).
    ShardRouter a, b;
    for (const auto *ep : {"s0:7411", "s1:7411", "s2:7411"}) {
        a.add(ep);
        b.add(ep);
    }
    for (const auto &k : keyUniverse(200))
        EXPECT_EQ(a.shardFor(k), b.shardFor(k)) << k;
}

TEST(ShardRouter, SpreadsKeysAcrossShards)
{
    ShardRouter r;
    const std::vector<std::string> eps = {"s0:1", "s1:1", "s2:1",
                                          "s3:1"};
    for (const auto &ep : eps)
        r.add(ep);

    std::map<std::string, std::size_t> counts;
    const auto keys = keyUniverse(1000);
    for (const auto &k : keys)
        ++counts[r.shardFor(k)];

    EXPECT_EQ(counts.size(), eps.size());
    for (const auto &[ep, c] : counts)
        EXPECT_GT(c, keys.size() / 20)
            << ep << " owns only " << c << "/" << keys.size();
}

TEST(ShardRouter, AddingOneShardMovesBoundedFraction)
{
    ShardRouter r;
    r.add("s0:1");
    r.add("s1:1");
    r.add("s2:1");

    const auto keys = keyUniverse(1000);
    std::vector<std::string> before;
    before.reserve(keys.size());
    for (const auto &k : keys)
        before.push_back(r.shardFor(k));

    r.add("s3:1");
    std::size_t moved = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const auto now = r.shardFor(keys[i]);
        if (now != before[i]) {
            ++moved;
            // A key only ever moves TO the new endpoint.
            EXPECT_EQ(now, "s3:1") << keys[i];
        }
    }
    // Ideal is 1/4 of the keyspace; allow generous slack but rule out
    // a full reshuffle (the property plain modulo hashing lacks).
    EXPECT_GT(moved, 0u);
    EXPECT_LT(moved, keys.size() * 2 / 5);
}

TEST(ShardRouter, RemoveRestoresPriorPlacement)
{
    ShardRouter r;
    r.add("s0:1");
    r.add("s1:1");
    const auto keys = keyUniverse(300);
    std::vector<std::string> before;
    for (const auto &k : keys)
        before.push_back(r.shardFor(k));

    r.add("s2:1");
    EXPECT_TRUE(r.remove("s2:1"));
    EXPECT_FALSE(r.remove("s2:1"));
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(r.shardFor(keys[i]), before[i]);
}

TEST(ShardRouter, VertexPartitionsRouteByRange)
{
    ShardRouter r;
    r.add("s0:1");
    r.add("s1:1");
    r.add("s2:1");

    // partitions == 0: the whole graph routes as one key.
    EXPECT_EQ(r.shardForVertex("g", 0, 0), r.shardForGraph("g"));
    EXPECT_EQ(r.shardForVertex("g", 999, 0), r.shardForGraph("g"));

    // With partitions, vertex v maps to partition v % partitions and
    // every vertex in a partition agrees on its shard.
    EXPECT_EQ(ShardRouter::partitionKey("g", 7, 4), "g/3");
    EXPECT_EQ(r.shardForVertex("g", 3, 4), r.shardForVertex("g", 7, 4));
    std::set<std::string> used;
    for (VertexId v = 0; v < 64; ++v)
        used.insert(r.shardForVertex("g", v, 16));
    EXPECT_GT(used.size(), 1u); // a hot graph actually spreads
}

TEST(ShardRouter, HashIsStableAcrossRuns)
{
    // Pinned value: placement must never change between versions, or
    // a rolling deploy strands every cached fixpoint on the old shard.
    EXPECT_EQ(ShardRouter::hashKey("depgraph"),
              ShardRouter::hashKey("depgraph"));
    EXPECT_NE(ShardRouter::hashKey("g/0"), ShardRouter::hashKey("g/1"));
}

TEST(Admission, DisabledControllerAlwaysAdmits)
{
    service::Stats stats;
    AdmissionController ac(stats, {});
    EXPECT_FALSE(ac.enabled());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(
            ac.check(service::RequestType::Query).has_value());
}

TEST(Admission, ColdWindowFailsOpen)
{
    service::Stats stats;
    AdmissionOptions opt;
    opt.maxQueueWaitP99Micros = 1;
    opt.window = std::chrono::milliseconds(1);
    AdmissionController ac(stats, opt);
    // No samples recorded at all: never shed, whatever the ceiling.
    EXPECT_FALSE(ac.check(service::RequestType::Query).has_value());
    EXPECT_EQ(ac.shedTotal(), 0u);
}

TEST(Admission, ShedsWhenWindowedP99CrossesCeiling)
{
    service::Stats stats;
    AdmissionOptions opt;
    opt.maxQueueWaitP99Micros = 100;
    opt.minWindowSamples = 16;
    opt.retryAfter = std::chrono::milliseconds(75);
    // Long window: one refresh per test, no re-refresh clearing it.
    opt.window = std::chrono::minutes(10);
    AdmissionController ac(stats, opt);

    // A window full of 10ms queue waits: far over the 100us ceiling.
    // The first check performs the initial refresh and sheds on the
    // value it just computed.
    for (int i = 0; i < 64; ++i)
        stats.recordQueueWait(service::RequestType::Query, 10000);
    const auto verdict = ac.check(service::RequestType::Query);
    ASSERT_TRUE(verdict.has_value());
    EXPECT_EQ(verdict->count(), 75);
    EXPECT_GE(ac.windowP99Micros(service::RequestType::Query), 100u);
    EXPECT_GE(ac.shedTotal(), 1u);

    // Update traffic saw no latency: its class is not shed.
    EXPECT_FALSE(
        ac.check(service::RequestType::StreamUpdates).has_value());
}

TEST(Admission, RecoversOnceTheWindowDrainsQuiet)
{
    service::Stats stats;
    AdmissionOptions opt;
    opt.maxQueueWaitP99Micros = 100;
    opt.minWindowSamples = 4;
    opt.window = std::chrono::milliseconds(1);
    AdmissionController ac(stats, opt);

    for (int i = 0; i < 32; ++i)
        stats.recordQueueWait(service::RequestType::Query, 50000);
    ASSERT_TRUE(ac.check(service::RequestType::Query).has_value());

    // Next window: only fast waits arrive. The shed state must clear
    // (windowed deltas, not the sticky all-time histogram).
    for (int i = 0; i < 32; ++i)
        stats.recordQueueWait(service::RequestType::Query, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_FALSE(ac.check(service::RequestType::Query).has_value());
}

} // namespace
} // namespace depgraph::net
