/**
 * @file
 * Unit tests for the HDTL/core pipeline timing model (CorePipeline):
 * prefetch-consume coupling through the FIFO edge buffer, the FIFO
 * capacity back-pressure, and the software (serialized) mode.
 */

#include <gtest/gtest.h>

#include "depgraph/engine_model.hh"

namespace depgraph::dep
{
namespace
{

TEST(CorePipeline, ConsumeWaitsForProduction)
{
    CorePipeline pl(8, /*hardware=*/true);
    pl.produce(100);            // edge ready at prefetcher time 100
    const Cycles wait = pl.consume(5);
    EXPECT_EQ(wait, 100u);      // core idled until the edge arrived
    EXPECT_EQ(pl.coreClock(), 105u);
}

TEST(CorePipeline, FastPrefetchHidesLatency)
{
    CorePipeline pl(8, true);
    // Prefetch takes 2 cycles/edge, consume takes 10: after the first
    // edge, the core never waits.
    Cycles total_wait = 0;
    for (int i = 0; i < 20; ++i) {
        pl.produce(2);
        total_wait += pl.consume(10);
    }
    EXPECT_LE(total_wait, 2u);
    EXPECT_EQ(pl.coreClock(), 200u + total_wait);
}

TEST(CorePipeline, SlowPrefetchBoundsThroughput)
{
    CorePipeline pl(8, true);
    // Prefetch 20 cycles/edge, consume 5: the core runs at the
    // prefetcher's rate.
    for (int i = 0; i < 10; ++i) {
        pl.produce(20);
        pl.consume(5);
    }
    EXPECT_GE(pl.coreClock(), 10u * 20u);
}

TEST(CorePipeline, FifoCapacityLimitsRunahead)
{
    // Capacity 2: the prefetcher cannot run more than 2 edges ahead.
    CorePipeline pl(2, true);
    // Produce three edges before any consumption; the third must wait
    // for the first consume (ring floor).
    pl.produce(1);
    pl.produce(1);
    pl.produce(1);
    // First consume happens at >= the first production time.
    const Cycles w1 = pl.consume(100);
    (void)w1;
    // By now the prefetcher was throttled: its 3rd production could
    // not complete before the 1st consume. Consuming everything keeps
    // the clocks consistent (monotone core clock).
    Cycles prev = pl.coreClock();
    pl.consume(100);
    EXPECT_GT(pl.coreClock(), prev);
}

TEST(CorePipeline, SoftwareModeSerializesEverything)
{
    CorePipeline pl(8, /*hardware=*/false);
    pl.produce(30);  // software traversal: core pays the latency
    pl.engineBusy(10);
    const Cycles wait = pl.consume(5);
    EXPECT_EQ(wait, 0u); // no separate prefetcher to wait for
    EXPECT_EQ(pl.coreClock(), 45u);
    EXPECT_EQ(pl.swSerializedCycles(), 40u);
}

TEST(CorePipeline, HardwareEngineRunsOffTheCoreClock)
{
    CorePipeline pl(8, true);
    pl.engineBusy(1000);
    EXPECT_EQ(pl.coreClock(), 0u); // engine time is not core time
    pl.coreBusy(7);
    EXPECT_EQ(pl.coreClock(), 7u);
}

TEST(CorePipeline, SyncToIsMonotone)
{
    CorePipeline pl(4, true);
    pl.coreBusy(50);
    pl.syncTo(40); // cannot move backwards
    EXPECT_EQ(pl.coreClock(), 50u);
    pl.syncTo(80);
    EXPECT_EQ(pl.coreClock(), 80u);
}

} // namespace
} // namespace depgraph::dep
