/**
 * @file
 * Tests for degree statistics and distance estimation.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "graph/degree.hh"
#include "graph/generators.hh"

namespace depgraph::graph
{
namespace
{

TEST(DegreeStats, SimpleGraph)
{
    Builder b(4);
    b.addEdge(0, 1);
    b.addEdge(0, 2);
    b.addEdge(0, 3);
    b.addEdge(1, 2);
    const auto s = degreeStats(b.build());
    EXPECT_DOUBLE_EQ(s.avgOutDegree, 1.0);
    EXPECT_EQ(s.maxOutDegree, 3u);
}

TEST(DegreeStats, TopSharePicksHub)
{
    // 100 vertices; v0 owns 50 of 60 edges -> top 1% share >= 0.8.
    Builder b(100);
    for (VertexId v = 1; v <= 50; ++v)
        b.addEdge(0, v);
    for (VertexId v = 1; v <= 10; ++v)
        b.addEdge(v, v + 1);
    const auto s = degreeStats(b.build());
    EXPECT_NEAR(s.top1PctEdgeShare, 50.0 / 60.0, 1e-9);
}

TEST(Diameter, PathGraphIsExact)
{
    const Graph g = path(17);
    EXPECT_EQ(estimateDiameter(g, 8), 16u);
}

TEST(Diameter, GridMatchesManhattan)
{
    const Graph g = grid(4, 6);
    EXPECT_EQ(estimateDiameter(g, 8), 3u + 5u);
}

TEST(Diameter, StarIsTwo)
{
    const Graph g = star(50);
    EXPECT_EQ(estimateDiameter(g, 4), 2u);
}

TEST(AveragePathLength, PathGraph)
{
    // Directed path treated as undirected for distances: the average over
    // all pairs from a single source v0 is (1+2+...+n-1)/(n-1).
    const Graph g = path(5);
    const double apl = averagePathLength(g, 12, 1);
    EXPECT_GT(apl, 1.0);
    EXPECT_LT(apl, 4.0);
}

TEST(VerticesByDegreeDesc, OrdersCorrectly)
{
    Builder b(4);
    b.addEdge(1, 0);
    b.addEdge(1, 2);
    b.addEdge(1, 3);
    b.addEdge(2, 0);
    b.addEdge(2, 3);
    b.addEdge(3, 0);
    const auto order = verticesByDegreeDesc(b.build());
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 2u);
    EXPECT_EQ(order[2], 3u);
    EXPECT_EQ(order[3], 0u);
}

TEST(VerticesByDegreeDesc, TiesBrokenById)
{
    Builder b(3);
    b.addEdge(2, 0);
    b.addEdge(1, 0);
    const auto order = verticesByDegreeDesc(b.build());
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 2u);
    EXPECT_EQ(order[2], 0u);
}

} // namespace
} // namespace depgraph::graph
