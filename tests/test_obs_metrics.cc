/**
 * @file
 * Unit tests for the obs metrics registry: histogram bucket geometry
 * and quantiles, concurrent registration and recording (run under the
 * tsan CI mode as well), the Prometheus text exposition format, and
 * the JSON renderer (validated by parsing it back).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "obs/metrics.hh"

namespace depgraph::obs
{
namespace
{

/* ------------------------------------------------------------------ */
/* Histogram geometry                                                  */
/* ------------------------------------------------------------------ */

TEST(HistogramBuckets, ExactPowersOfTwoLandOnBucketBoundaries)
{
    // Bucket k covers [2^k, 2^(k+1)), so 2^k is the first value of
    // bucket k and 2^k - 1 the last value of bucket k-1.
    for (std::size_t k = 1; k + 1 < Histogram::kBuckets; ++k) {
        const auto lo = std::uint64_t{1} << k;
        EXPECT_EQ(Histogram::bucketOf(lo), k) << "v=" << lo;
        EXPECT_EQ(Histogram::bucketOf(lo - 1), k - 1)
            << "v=" << lo - 1;
        EXPECT_EQ(Histogram::bucketOf(2 * lo - 1), k)
            << "v=" << 2 * lo - 1;
    }
}

TEST(HistogramBuckets, ZeroLandsInBucketZero)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 0u); // [1, 2) is also bucket 0

    Histogram h;
    h.record(0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramBuckets, OverflowGoesToLastBucket)
{
    const auto last = Histogram::kBuckets - 1;
    EXPECT_EQ(Histogram::bucketOf(std::uint64_t{1} << last), last);
    EXPECT_EQ(Histogram::bucketOf(std::uint64_t{1} << 40), last);
    EXPECT_EQ(Histogram::bucketOf(~std::uint64_t{0}), last);

    Histogram h;
    h.record(std::uint64_t{1} << 40);
    EXPECT_EQ(h.bucketCount(last), 1u);
    EXPECT_EQ(h.max(), std::uint64_t{1} << 40);
}

TEST(HistogramBuckets, UpperBoundsAreInclusive)
{
    EXPECT_EQ(Histogram::bucketUpperBound(0), 1u);
    EXPECT_EQ(Histogram::bucketUpperBound(1), 3u);
    EXPECT_EQ(Histogram::bucketUpperBound(2), 7u);
    // The bound is the largest value the bucket holds.
    for (std::size_t k = 0; k + 1 < Histogram::kBuckets; ++k) {
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketUpperBound(k)),
                  k);
        EXPECT_EQ(
            Histogram::bucketOf(Histogram::bucketUpperBound(k) + 1),
            k + 1);
    }
}

TEST(HistogramQuantiles, KnownDistribution)
{
    Histogram h;
    // 90 fast samples in bucket 3 ([8, 16)) and 10 slow ones in
    // bucket 10 ([1024, 2048)).
    for (int i = 0; i < 90; ++i)
        h.record(10);
    for (int i = 0; i < 10; ++i)
        h.record(1500);

    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.quantileUpperBound(0.5), Histogram::bucketUpperBound(3));
    EXPECT_EQ(h.quantileUpperBound(0.89),
              Histogram::bucketUpperBound(3));
    // The 90th of 100 ranked samples is already a slow one.
    EXPECT_EQ(h.quantileUpperBound(0.9),
              Histogram::bucketUpperBound(10));
    EXPECT_EQ(h.quantileUpperBound(0.99),
              Histogram::bucketUpperBound(10));
    // q = 1 walks off the bucket array and falls back to the exact max.
    EXPECT_EQ(h.quantileUpperBound(1.0), 1500u);
}

TEST(HistogramQuantiles, EmptyHistogramReportsZero)
{
    Histogram h;
    EXPECT_EQ(h.quantileUpperBound(0.5), 0u);
    EXPECT_EQ(h.quantileUpperBound(0.99), 0u);
}

TEST(HistogramQuantiles, AssignFromCopiesEverything)
{
    Histogram a;
    a.record(3);
    a.record(100);
    Histogram b;
    b.assignFrom(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_EQ(b.sum(), 103u);
    EXPECT_EQ(b.max(), 100u);
    EXPECT_EQ(b.bucketCount(Histogram::bucketOf(3)), 1u);
    EXPECT_EQ(b.bucketCount(Histogram::bucketOf(100)), 1u);
}

/* ------------------------------------------------------------------ */
/* Concurrency (also run under ThreadSanitizer via the tsan label)     */
/* ------------------------------------------------------------------ */

TEST(HistogramConcurrency, MaxSurvivesConcurrentRecords)
{
    // The lost-update race a non-CAS max would hit: many threads all
    // racing to publish, with the true maximum recorded early so late
    // small writers are the ones who must not clobber it.
    Histogram h;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 4000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&h, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                h.record(static_cast<std::uint64_t>(t) * kPerThread
                         + i);
        });
    }
    for (auto &t : ts)
        t.join();

    EXPECT_EQ(h.count(), kThreads * kPerThread);
    EXPECT_EQ(h.max(), kThreads * kPerThread - 1);
    std::uint64_t bucket_total = 0;
    for (std::size_t k = 0; k < Histogram::kBuckets; ++k)
        bucket_total += h.bucketCount(k);
    EXPECT_EQ(bucket_total, h.count());
}

TEST(RegistryConcurrency, FindOrCreateAndIncrementFromManyThreads)
{
    Registry reg;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kIncs = 2000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&reg, t] {
            // Everyone shares one family; half the threads also bang
            // on a per-thread labeled instance, exercising concurrent
            // registration against concurrent increments.
            auto &shared = reg.counter("dg_test_shared_total", "x");
            auto &mine = reg.counter(
                "dg_test_labeled_total", "x",
                {{"thread", std::to_string(t % 2)}});
            auto &hist = reg.histogram("dg_test_lat_us", "x");
            for (std::uint64_t i = 0; i < kIncs; ++i) {
                shared.inc();
                mine.inc();
                hist.record(i);
            }
        });
    }
    for (auto &t : ts)
        t.join();

    EXPECT_EQ(reg.counter("dg_test_shared_total", "x").value(),
              kThreads * kIncs);
    const auto a =
        reg.counter("dg_test_labeled_total", "x", {{"thread", "0"}})
            .value();
    const auto b =
        reg.counter("dg_test_labeled_total", "x", {{"thread", "1"}})
            .value();
    EXPECT_EQ(a + b, kThreads * kIncs);
    EXPECT_EQ(reg.histogram("dg_test_lat_us", "x").count(),
              kThreads * kIncs);
}

/* ------------------------------------------------------------------ */
/* Prometheus exposition                                               */
/* ------------------------------------------------------------------ */

TEST(Prometheus, TypeAndHelpLines)
{
    Registry reg;
    reg.counter("dg_requests_total", "Requests served").inc(7);
    reg.gauge("dg_queue_depth", "Jobs waiting").set(3.5);
    reg.histogram("dg_latency_us", "Service latency").record(5);

    const auto text = reg.renderPrometheus();
    EXPECT_NE(text.find("# HELP dg_requests_total Requests served"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE dg_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("dg_requests_total 7"), std::string::npos);
    EXPECT_NE(text.find("# TYPE dg_queue_depth gauge"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE dg_latency_us histogram"),
              std::string::npos);
}

TEST(Prometheus, HistogramSeriesAreCumulativeWithInf)
{
    Registry reg;
    auto &h = reg.histogram("dg_lat_us", "x");
    h.record(1);  // bucket 0, le="1"
    h.record(2);  // bucket 1, le="3"
    h.record(10); // bucket 3, le="15"

    const auto text = reg.renderPrometheus();
    EXPECT_NE(text.find("dg_lat_us_bucket{le=\"1\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("dg_lat_us_bucket{le=\"3\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("dg_lat_us_bucket{le=\"15\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("dg_lat_us_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("dg_lat_us_sum 13"), std::string::npos);
    EXPECT_NE(text.find("dg_lat_us_count 3"), std::string::npos);
}

TEST(Prometheus, LabelValuesAreEscaped)
{
    EXPECT_EQ(escapeLabelValue("plain"), "plain");
    EXPECT_EQ(escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(escapeLabelValue("two\nlines"), "two\\nlines");

    Registry reg;
    reg.counter("dg_odd_total", "x", {{"path", "a\\b\"c\nd"}}).inc();
    const auto text = reg.renderPrometheus();
    EXPECT_NE(text.find("dg_odd_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
              std::string::npos);
}

TEST(Prometheus, HelpTextIsEscapedInExposition)
{
    EXPECT_EQ(escapeHelpText("plain"), "plain");
    EXPECT_EQ(escapeHelpText("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeHelpText("two\nlines"), "two\\nlines");

    // A raw newline in help text would split the HELP comment and
    // corrupt the exposition; the renderer must escape it.
    Registry reg;
    reg.counter("dg_helpesc_total", "first\nsecond \\end").inc();
    const auto text = reg.renderPrometheus();
    EXPECT_NE(
        text.find("# HELP dg_helpesc_total first\\nsecond \\\\end"),
        std::string::npos)
        << text;
    EXPECT_EQ(text.find("first\nsecond"), std::string::npos);
}

TEST(Prometheus, BuildInfoGaugeCarriesVersionCompilerSimd)
{
    Registry reg;
    publishBuildInfo(reg, "avx2");
    const auto text = reg.renderPrometheus();
    EXPECT_NE(text.find("# TYPE dg_build_info gauge"),
              std::string::npos);
    const auto at = text.find("dg_build_info{");
    ASSERT_NE(at, std::string::npos) << text;
    const auto line = text.substr(at, text.find('\n', at) - at);
    EXPECT_NE(line.find("version=\""), std::string::npos) << line;
    EXPECT_NE(line.find("compiler=\""), std::string::npos) << line;
    EXPECT_NE(line.find("simd=\"avx2\""), std::string::npos) << line;
    EXPECT_NE(line.find("} 1"), std::string::npos) << line;
    // The embedded strings are never empty, whatever the build.
    EXPECT_STRNE(buildVersion(), "");
    EXPECT_STRNE(buildCompiler(), "");

    // Republishing is idempotent: still one instance, still 1.
    publishBuildInfo(reg, "avx2");
    EXPECT_EQ(reg.renderPrometheus().find("dg_build_info{", at + 1),
              std::string::npos);
}

TEST(Prometheus, LabelsRenderSorted)
{
    Registry reg;
    // Registration order of the label pairs must not matter: both
    // spellings are the same instance.
    reg.counter("dg_l_total", "x", {{"b", "2"}, {"a", "1"}}).inc();
    reg.counter("dg_l_total", "x", {{"a", "1"}, {"b", "2"}}).inc();
    const auto text = reg.renderPrometheus();
    EXPECT_NE(text.find("dg_l_total{a=\"1\",b=\"2\"} 2"),
              std::string::npos);
}

/* ------------------------------------------------------------------ */
/* JSON renderer (validated by parsing it back)                        */
/* ------------------------------------------------------------------ */

TEST(JsonRender, ParsesBackAndCarriesValues)
{
    Registry reg;
    reg.counter("dg_c_total", "count", {{"k", "v"}}).inc(42);
    reg.gauge("dg_g", "gauge").set(0.25);
    auto &h = reg.histogram("dg_h_us", "hist");
    h.record(8);
    h.record(9);

    std::string err;
    const auto parsed = json::parse(reg.renderJson(), &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    ASSERT_TRUE(parsed->isObject());

    const auto *c = parsed->find("dg_c_total");
    ASSERT_NE(c, nullptr);
    ASSERT_NE(c->find("type"), nullptr);
    EXPECT_EQ(c->find("type")->asString(), "counter");
    const auto *vals = c->find("values");
    ASSERT_NE(vals, nullptr);
    ASSERT_TRUE(vals->isArray());
    ASSERT_EQ(vals->asArray().size(), 1u);
    const auto &ci = vals->asArray()[0];
    ASSERT_NE(ci.find("value"), nullptr);
    EXPECT_DOUBLE_EQ(ci.find("value")->asNumber(), 42.0);
    const auto *labels = ci.find("labels");
    ASSERT_NE(labels, nullptr);
    ASSERT_NE(labels->find("k"), nullptr);
    EXPECT_EQ(labels->find("k")->asString(), "v");

    const auto *g = parsed->find("dg_g");
    ASSERT_NE(g, nullptr);
    EXPECT_DOUBLE_EQ(
        g->find("values")->asArray()[0].find("value")->asNumber(),
        0.25);

    const auto *hj = parsed->find("dg_h_us");
    ASSERT_NE(hj, nullptr);
    const auto &hi = hj->find("values")->asArray()[0];
    EXPECT_DOUBLE_EQ(hi.find("count")->asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(hi.find("sum")->asNumber(), 17.0);
    EXPECT_DOUBLE_EQ(hi.find("max")->asNumber(), 9.0);
    ASSERT_TRUE(hi.find("buckets")->isArray());
    EXPECT_EQ(hi.find("buckets")->asArray().size(),
              Histogram::kBuckets);
}

TEST(JsonRender, EmptyRegistryIsAnEmptyObject)
{
    Registry reg;
    std::string err;
    const auto parsed = json::parse(reg.renderJson(), &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_TRUE(parsed->isObject());
    EXPECT_EQ(reg.familyCount(), 0u);
}

} // namespace
} // namespace depgraph::obs
