/**
 * @file
 * Tests for the non-GAS analytics: k-core peeling, triangle counting,
 * clustering coefficients, degree histograms -- with closed-form
 * oracles on structured graphs and brute-force cross-checks on random
 * ones.
 */

#include <gtest/gtest.h>

#include <set>

#include "graph/analytics.hh"
#include "graph/builder.hh"
#include "graph/generators.hh"

namespace depgraph::graph
{
namespace
{

Graph
triangleGraph()
{
    // A single triangle 0-1-2 plus a pendant 3.
    Builder b(4);
    b.addUndirectedEdge(0, 1);
    b.addUndirectedEdge(1, 2);
    b.addUndirectedEdge(2, 0);
    b.addUndirectedEdge(2, 3);
    return b.build();
}

TEST(KCore, TriangleWithPendant)
{
    const auto core = coreNumbers(triangleGraph());
    EXPECT_EQ(core[0], 2u);
    EXPECT_EQ(core[1], 2u);
    EXPECT_EQ(core[2], 2u);
    EXPECT_EQ(core[3], 1u);
    EXPECT_EQ(degeneracy(triangleGraph()), 2u);
}

TEST(KCore, PathGraphIsOneCore)
{
    const auto core = coreNumbers(path(10));
    for (auto c : core)
        EXPECT_EQ(c, 1u);
}

TEST(KCore, CompleteGraphIsNMinusOneCore)
{
    Builder b(5);
    for (VertexId u = 0; u < 5; ++u)
        for (VertexId v = u + 1; v < 5; ++v)
            b.addUndirectedEdge(u, v);
    const auto core = coreNumbers(b.build());
    for (auto c : core)
        EXPECT_EQ(c, 4u);
}

TEST(KCore, StarIsOneCore)
{
    const auto core = coreNumbers(star(20));
    for (auto c : core)
        EXPECT_EQ(c, 1u);
}

TEST(KCore, MembersAreMonotoneInK)
{
    const Graph g = powerLaw(800, 2.0, 8.0, {.seed = 201});
    const auto k1 = kCoreMembers(g, 1);
    const auto k3 = kCoreMembers(g, 3);
    EXPECT_GE(k1.size(), k3.size());
    // Every 3-core member is a 1-core member.
    std::set<VertexId> ones(k1.begin(), k1.end());
    for (auto v : k3)
        EXPECT_TRUE(ones.count(v)) << v;
}

TEST(KCore, PeelingInvariant)
{
    // Inside the k-core subgraph every member has >= k neighbors that
    // are also members (the defining property).
    const Graph g = powerLaw(500, 2.0, 6.0, {.seed = 202});
    g.buildTranspose();
    const std::uint32_t k = 3;
    const auto members = kCoreMembers(g, k);
    std::set<VertexId> in(members.begin(), members.end());
    for (auto v : members) {
        std::set<VertexId> nbrs;
        for (auto t : g.neighbors(v))
            if (t != v && in.count(t))
                nbrs.insert(t);
        for (auto t : g.inNeighbors(v))
            if (t != v && in.count(t))
                nbrs.insert(t);
        EXPECT_GE(nbrs.size(), k) << "vertex " << v;
    }
}

TEST(Triangles, SingleTriangle)
{
    EXPECT_EQ(countTriangles(triangleGraph()), 1u);
    const auto per = trianglesPerVertex(triangleGraph());
    EXPECT_EQ(per[0], 1u);
    EXPECT_EQ(per[1], 1u);
    EXPECT_EQ(per[2], 1u);
    EXPECT_EQ(per[3], 0u);
}

TEST(Triangles, CompleteGraphHasChoose3)
{
    Builder b(6);
    for (VertexId u = 0; u < 6; ++u)
        for (VertexId v = u + 1; v < 6; ++v)
            b.addUndirectedEdge(u, v);
    EXPECT_EQ(countTriangles(b.build()), 20u); // C(6,3)
}

TEST(Triangles, TreesAndPathsHaveNone)
{
    EXPECT_EQ(countTriangles(path(20)), 0u);
    EXPECT_EQ(countTriangles(binaryTree(31)), 0u);
    EXPECT_EQ(countTriangles(star(10)), 0u);
}

TEST(Triangles, DirectionAndMultiplicityCollapse)
{
    // Parallel and reciprocal edges of a triangle count it once.
    Builder b(3);
    b.addEdge(0, 1);
    b.addEdge(1, 0);
    b.addEdge(1, 2);
    b.addEdge(1, 2);
    b.addEdge(2, 0);
    EXPECT_EQ(countTriangles(b.build()), 1u);
}

TEST(Triangles, MatchesBruteForceOnRandomGraph)
{
    const Graph g = erdosRenyi(60, 400, {.seed = 203});
    g.buildTranspose();
    // Brute force over the undirected simple view.
    std::set<std::pair<VertexId, VertexId>> edges;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (auto t : g.neighbors(v)) {
            if (t != v)
                edges.insert({std::min(v, t), std::max(v, t)});
        }
    }
    auto connected = [&](VertexId a, VertexId b2) {
        return edges.count({std::min(a, b2), std::max(a, b2)}) > 0;
    };
    std::uint64_t brute = 0;
    for (VertexId a = 0; a < g.numVertices(); ++a)
        for (VertexId b2 = a + 1; b2 < g.numVertices(); ++b2)
            for (VertexId c = b2 + 1; c < g.numVertices(); ++c)
                if (connected(a, b2) && connected(b2, c)
                    && connected(a, c))
                    ++brute;
    EXPECT_EQ(countTriangles(g), brute);
}

TEST(Clustering, CompleteGraphIsOne)
{
    Builder b(5);
    for (VertexId u = 0; u < 5; ++u)
        for (VertexId v = u + 1; v < 5; ++v)
            b.addUndirectedEdge(u, v);
    EXPECT_NEAR(globalClusteringCoefficient(b.build()), 1.0, 1e-12);
}

TEST(Clustering, TriangleFreeIsZero)
{
    EXPECT_DOUBLE_EQ(globalClusteringCoefficient(star(12)), 0.0);
    EXPECT_DOUBLE_EQ(globalClusteringCoefficient(path(12)), 0.0);
}

TEST(Clustering, BetweenZeroAndOne)
{
    const Graph g = powerLaw(600, 2.0, 8.0, {.seed = 204});
    const double c = globalClusteringCoefficient(g);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
}

TEST(DegreeHistogram, CountsAndClampsTail)
{
    const Graph g = star(10); // v0 out-degree 9, others 1
    const auto h = degreeHistogram(g, 4);
    EXPECT_EQ(h[1], 9u);
    EXPECT_EQ(h[4], 1u); // degree 9 clamped into the last bucket
    std::uint64_t total = 0;
    for (auto x : h)
        total += x;
    EXPECT_EQ(total, 10u);
}

} // namespace
} // namespace depgraph::graph
