/**
 * @file
 * Unit tests for the CSR graph representation.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "graph/csr.hh"

namespace depgraph::graph
{
namespace
{

Graph
diamond()
{
    // 0 -> 1 -> 3, 0 -> 2 -> 3
    Builder b(4);
    b.addEdge(0, 1, 1.0);
    b.addEdge(0, 2, 2.0);
    b.addEdge(1, 3, 3.0);
    b.addEdge(2, 3, 4.0);
    return b.build();
}

TEST(Csr, BasicCounts)
{
    const Graph g = diamond();
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_TRUE(g.weighted());
}

TEST(Csr, OutDegrees)
{
    const Graph g = diamond();
    EXPECT_EQ(g.outDegree(0), 2u);
    EXPECT_EQ(g.outDegree(1), 1u);
    EXPECT_EQ(g.outDegree(2), 1u);
    EXPECT_EQ(g.outDegree(3), 0u);
}

TEST(Csr, NeighborsSpan)
{
    const Graph g = diamond();
    auto n0 = g.neighbors(0);
    ASSERT_EQ(n0.size(), 2u);
    EXPECT_EQ(n0[0], 1u);
    EXPECT_EQ(n0[1], 2u);
    EXPECT_TRUE(g.neighbors(3).empty());
}

TEST(Csr, WeightsFollowEdges)
{
    const Graph g = diamond();
    EXPECT_DOUBLE_EQ(g.weight(g.edgeBegin(0)), 1.0);
    EXPECT_DOUBLE_EQ(g.weight(g.edgeBegin(0) + 1), 2.0);
    EXPECT_DOUBLE_EQ(g.weight(g.edgeBegin(1)), 3.0);
}

TEST(Csr, UnweightedDefaultsToOne)
{
    Builder b(2);
    b.addEdge(0, 1);
    const Graph g = b.build(/*weighted=*/false);
    EXPECT_FALSE(g.weighted());
    EXPECT_DOUBLE_EQ(g.weight(0), 1.0);
}

TEST(Csr, TransposeInDegrees)
{
    const Graph g = diamond();
    EXPECT_EQ(g.inDegree(0), 0u);
    EXPECT_EQ(g.inDegree(1), 1u);
    EXPECT_EQ(g.inDegree(2), 1u);
    EXPECT_EQ(g.inDegree(3), 2u);
}

TEST(Csr, TransposeInNeighbors)
{
    const Graph g = diamond();
    auto in3 = g.inNeighbors(3);
    ASSERT_EQ(in3.size(), 2u);
    EXPECT_EQ(in3[0], 1u);
    EXPECT_EQ(in3[1], 2u);
}

TEST(Csr, TransposeInWeights)
{
    const Graph g = diamond();
    g.buildTranspose();
    // in-edges of 3: from 1 (w=3) and from 2 (w=4), in source order.
    EXPECT_DOUBLE_EQ(g.inWeight(3, 0), 3.0);
    EXPECT_DOUBLE_EQ(g.inWeight(3, 1), 4.0);
}

TEST(Csr, TotalDegree)
{
    const Graph g = diamond();
    EXPECT_EQ(g.totalDegree(0), 2u);
    EXPECT_EQ(g.totalDegree(3), 2u);
    EXPECT_EQ(g.totalDegree(1), 2u);
}

TEST(Csr, EdgeSumMatchesOffsets)
{
    const Graph g = diamond();
    EdgeId sum = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        sum += g.outDegree(v);
    EXPECT_EQ(sum, g.numEdges());
}

TEST(Csr, ByteSizeAccountsArrays)
{
    const Graph g = diamond();
    const std::size_t expect = 5 * sizeof(EdgeId)
        + 4 * sizeof(VertexId) + 4 * sizeof(Value);
    EXPECT_EQ(g.byteSize(), expect);
}

TEST(CsrDeath, RejectsMalformedOffsets)
{
    auto make = [] {
        std::vector<EdgeId> off = {0, 2, 1};
        std::vector<VertexId> tgt = {0};
        Graph g(std::move(off), std::move(tgt), {});
    };
    EXPECT_DEATH(make(), "not monotone");
}

TEST(CsrDeath, RejectsOutOfRangeTarget)
{
    auto make = [] {
        std::vector<EdgeId> off = {0, 1};
        std::vector<VertexId> tgt = {5};
        Graph g(std::move(off), std::move(tgt), {});
    };
    EXPECT_DEATH(make(), "out of range");
}

} // namespace
} // namespace depgraph::graph
