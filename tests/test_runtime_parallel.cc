/**
 * @file
 * Native parallel engine: equivalence, determinism, churn resume, and
 * serving-layer shutdown.
 *
 * The equivalence and determinism suites pin the convergence threshold
 * to (near) zero through a forwarding wrapper: with eps = 0 a min/max
 * run terminates at the unique exact closure -- every candidate value
 * is an identical edge-by-edge fold in every engine, so the parallel
 * fixpoint must EQUAL the sequential one regardless of thread
 * interleaving, and repeated parallel runs must be bitwise identical.
 * With the default eps, sub-threshold improvements may or may not be
 * applied depending on arrival order, which is tolerance-level noise,
 * not a bug; tightening eps removes that freedom and turns the tests
 * into exact oracles.
 *
 * Registered with ctest labels `parallel;tsan`: the whole binary is a
 * ThreadSanitizer target (workers, seqlock hub entries, work-stealing
 * deques).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>

#include "common/random.hh"
#include "core/depgraph_system.hh"
#include "depgraph/fold_kernels.hh"
#include "gas/incremental.hh"
#include "gas/reference.hh"
#include "graph/generators.hh"
#include "service/service.hh"

namespace depgraph
{
namespace
{

using graph::Graph;

/** Forwarding wrapper that only overrides the convergence epsilon. */
class TightEps : public gas::Algorithm
{
  public:
    TightEps(gas::Algorithm &inner, Value eps)
        : inner_(inner), eps_(eps)
    {}

    std::string name() const override
    {
        return inner_.name() + "+tight";
    }
    gas::AccumKind accumKind() const override
    {
        return inner_.accumKind();
    }
    Value accumOp(Value a, Value b) const override
    {
        return inner_.accumOp(a, b);
    }
    gas::LinearFunc
    edgeFunc(const Graph &g, VertexId src, EdgeId e) const override
    {
        return inner_.edgeFunc(g, src, e);
    }
    Value
    edgeCompute(const Graph &g, VertexId src, EdgeId e,
                Value delta) const override
    {
        return inner_.edgeCompute(g, src, e, delta);
    }
    void
    edgeFuncBlock(const Graph &g, VertexId src, EdgeId eBegin,
                  std::uint32_t n, Value *mu, Value *xi,
                  Value *cap) const override
    {
        inner_.edgeFuncBlock(g, src, eBegin, n, mu, xi, cap);
    }
    bool affineEdgeCompute() const override
    {
        return inner_.affineEdgeCompute();
    }
    void prepare(const Graph &g) override { inner_.prepare(g); }
    Value initState(const Graph &g, VertexId v) const override
    {
        return inner_.initState(g, v);
    }
    Value initDelta(const Graph &g, VertexId v) const override
    {
        return inner_.initDelta(g, v);
    }
    Value epsilon() const override { return eps_; }
    bool transformable() const override
    {
        return inner_.transformable();
    }

  private:
    gas::Algorithm &inner_;
    Value eps_;
};

SystemConfig
parallelConfig(unsigned threads)
{
    SystemConfig cfg;
    cfg.engine.hostThreads = threads;
    return cfg;
}

/** Pin the fold-kernel dispatch for one scope; always restores
 * autodetection (the DG_SIMD env override still applies) on exit. */
struct ScalarGuard
{
    explicit ScalarGuard(bool on) { dep::fold::forceScalar(on); }
    ~ScalarGuard() { dep::fold::forceScalar(false); }
};

/* ---- Fixpoint equivalence against the sequential engine. -------- */

class ParallelEquivalence : public ::testing::TestWithParam<std::string>
{};

TEST_P(ParallelEquivalence, MatchesSequentialEngine)
{
    const Graph g = graph::powerLaw(600, 2.0, 6.0, {.seed = 8100});
    const auto kind = gas::makeAlgorithm(GetParam())->accumKind();
    const bool is_sum = kind == gas::AccumKind::Sum;
    // Sum cannot use eps = 0 (geometric tails never vanish exactly);
    // 1e-13 leaves the undelivered mass orders below the 1e-9 bar.
    const Value eps = is_sum ? 1e-13 : 0.0;

    const auto alg_seq = gas::makeAlgorithm(GetParam());
    TightEps tight_seq(*alg_seq, eps);
    DepGraphSystem seq(SystemConfig{});
    const auto r_seq = seq.run(g, tight_seq, Solution::Sequential);
    ASSERT_TRUE(r_seq.metrics.converged);

    const auto alg_par = gas::makeAlgorithm(GetParam());
    TightEps tight_par(*alg_par, eps);
    DepGraphSystem par(parallelConfig(3));
    const auto r_par = par.run(g, tight_par, Solution::Parallel);
    ASSERT_TRUE(r_par.metrics.converged);

    ASSERT_EQ(r_par.states.size(), r_seq.states.size());
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (is_sum) {
            const double scale =
                std::max(1.0, std::abs(r_seq.states[v]));
            EXPECT_LE(std::abs(r_par.states[v] - r_seq.states[v]),
                      1e-9 * scale)
                << GetParam() << " v" << v;
        } else {
            // Exact closure: candidate folds are bit-identical in
            // both engines, so the min/max fixpoint is too.
            EXPECT_EQ(r_par.states[v], r_seq.states[v])
                << GetParam() << " v" << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(FiveAlgorithms, ParallelEquivalence,
                         ::testing::Values("pagerank", "adsorption",
                                           "sssp", "wcc", "sswp"));

/* ---- Scheduling determinism for min/max accumulators. ----------- */

class ParallelDeterminism : public ::testing::TestWithParam<std::string>
{};

TEST_P(ParallelDeterminism, BitwiseStableAcrossThreadsAndReps)
{
    const Graph g = graph::powerLaw(400, 2.0, 6.0, {.seed = 8200});
    ASSERT_NE(gas::makeAlgorithm(GetParam())->accumKind(),
              gas::AccumKind::Sum);

    std::vector<Value> golden;
    unsigned reps = 0;
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        for (unsigned rep = 0; rep < 4; ++rep, ++reps) {
            const auto alg = gas::makeAlgorithm(GetParam());
            TightEps tight(*alg, 0.0);
            DepGraphSystem sys(parallelConfig(threads));
            const auto r = sys.run(g, tight, Solution::Parallel);
            ASSERT_TRUE(r.metrics.converged);
            if (golden.empty()) {
                golden = r.states;
                continue;
            }
            ASSERT_EQ(r.states.size(), golden.size());
            // Bitwise, not just ==: the engine canonicalizes -0.0 so
            // the result is one reproducible artifact.
            EXPECT_EQ(std::memcmp(r.states.data(), golden.data(),
                                  golden.size() * sizeof(Value)),
                      0)
                << GetParam() << " threads=" << threads << " rep="
                << rep;
        }
    }
    EXPECT_EQ(reps, 16u);
}

INSTANTIATE_TEST_SUITE_P(MinAndMaxAccums, ParallelDeterminism,
                         ::testing::Values("sssp", "wcc"));

/* ---- SIMD vs forced-scalar: one fixpoint per input, per ISA. ---- */

TEST(ParallelSimdScalar, ForcedScalarMatchesSimdBitwise)
{
    // The fold kernels' determinism contract (fold_kernels.hh) says a
    // run's result must not depend on the dispatched ISA. Pin it end
    // to end: the same run, once with autodetected dispatch and once
    // with the scalar fallback forced, must produce bitwise-identical
    // states. On hosts without AVX2 both runs dispatch scalar and the
    // comparison degenerates to a repeat-determinism check.
    const Graph g = graph::powerLaw(400, 2.0, 6.0, {.seed = 8500});
    for (const char *name :
         {"pagerank", "adsorption", "sssp", "wcc", "sswp"}) {
        const auto kind = gas::makeAlgorithm(name)->accumKind();
        const bool is_sum = kind == gas::AccumKind::Sum;
        const Value eps = is_sum ? 1e-13 : 0.0;
        // Sum delivery order depends on scheduling, so sum algorithms
        // compare on one worker; min/max fixpoints are schedule-
        // independent at eps 0 and get real parallelism.
        const unsigned threads = is_sum ? 1 : 3;

        auto run = [&](bool force_scalar) {
            ScalarGuard guard(force_scalar);
            const auto alg = gas::makeAlgorithm(name);
            TightEps tight(*alg, eps);
            DepGraphSystem sys(parallelConfig(threads));
            auto r = sys.run(g, tight, Solution::Parallel);
            EXPECT_TRUE(r.metrics.converged) << name;
            return r.states;
        };
        const auto simd = run(false);
        const auto scalar = run(true);
        ASSERT_EQ(simd.size(), scalar.size());
        EXPECT_EQ(std::memcmp(simd.data(), scalar.data(),
                              simd.size() * sizeof(Value)),
                  0)
            << name;
    }
}

/* ---- The +-0 canonicalization audit regression. ------------------ */

/** Min accumulator whose single edge computes -1.0 * 0.0 = -0.0: the
 * smallest reproducer of the shortcut-fold vs direct-walk race audit
 * in fold_kernels.hh (a pure-linear chain applied to delta 0.0 with a
 * negative mu product yields -0.0 while another path delivers +0.0 to
 * the same slot). */
class NegZeroMin : public gas::Algorithm
{
  public:
    std::string name() const override { return "negzero-min"; }
    gas::AccumKind accumKind() const override
    {
        return gas::AccumKind::Min;
    }
    Value accumOp(Value a, Value b) const override
    {
        return gas::applyAccum(gas::AccumKind::Min, a, b);
    }
    gas::LinearFunc
    edgeFunc(const Graph &, VertexId, EdgeId) const override
    {
        gas::LinearFunc f;
        f.mu = -1.0;
        return f;
    }
    Value initState(const Graph &, VertexId) const override
    {
        return kInfinity;
    }
    Value initDelta(const Graph &, VertexId v) const override
    {
        return v == 0 ? 0.0 : kInfinity;
    }
    Value epsilon() const override { return 0.0; }
};

TEST(ParallelNegZero, TwoVertexChainPublishesPositiveZero)
{
    // Whatever interleaving or ISA wins the race on the tail slot, the
    // published bits must be +0.0 (canon() on the incoming value and
    // on every merged result), so fixpoints memcmp equal across runs.
    const Graph g = graph::path(2);
    for (const unsigned threads : {1u, 2u, 4u}) {
        for (const bool force_scalar : {false, true}) {
            ScalarGuard guard(force_scalar);
            for (unsigned rep = 0; rep < 4; ++rep) {
                NegZeroMin alg;
                DepGraphSystem sys(parallelConfig(threads));
                const auto r = sys.run(g, alg, Solution::Parallel);
                ASSERT_TRUE(r.metrics.converged);
                ASSERT_EQ(r.states.size(), 2u);
                ASSERT_EQ(r.states[1], 0.0)
                    << "threads " << threads << " rep " << rep;
                EXPECT_FALSE(std::signbit(r.states[1]))
                    << "-0.0 leaked past canon(): threads " << threads
                    << " scalar " << force_scalar << " rep " << rep;
            }
        }
    }
}

/* ---- Churn resume vs from-scratch through the parallel path. ---- */

struct Churn
{
    std::vector<gas::EdgeInsertion> ins;
    std::vector<gas::EdgeDeletion> dels;
};

Churn
someChurn(const Graph &g, unsigned n_ins, unsigned n_dels,
          std::uint64_t seed)
{
    Rng rng(seed);
    Churn c;
    for (unsigned i = 0; i < n_ins; ++i) {
        const auto s =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        auto d =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        if (d == s)
            d = (d + 1) % g.numVertices();
        c.ins.push_back({s, d, rng.nextDouble(1.0, 5.0)});
    }
    for (unsigned i = 0; i < n_dels; ++i) {
        const auto s =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        if (g.outDegree(s) == 0 || rng.nextBounded(8) == 0) {
            c.dels.push_back(
                {s, static_cast<VertexId>(
                        rng.nextBounded(g.numVertices()))});
            continue;
        }
        const EdgeId e = g.edgeBegin(s)
            + static_cast<EdgeId>(rng.nextBounded(g.outDegree(s)));
        c.dels.push_back({s, g.target(e)});
    }
    return c;
}

class ParallelChurnResume : public ::testing::TestWithParam<std::string>
{};

TEST_P(ParallelChurnResume, TwentyFourSeedsMatchFromScratch)
{
    const double tol =
        gas::makeAlgorithm(GetParam())->accumKind()
                == gas::AccumKind::Sum
            ? 1e-3
            : 1e-9;
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        const Graph g = graph::powerLaw(250, 2.0, 5.0,
                                        {.seed = 7000 + seed});
        const auto churn = someChurn(g, 8, 8, 7100 + seed);
        const auto updated =
            gas::applyChurn(g, churn.ins, churn.dels);

        const auto alg_old = gas::makeAlgorithm(GetParam());
        const auto fix = gas::runReference(g, *alg_old);
        ASSERT_TRUE(fix.converged) << "seed " << seed;

        const auto alg_gold = gas::makeAlgorithm(GetParam());
        const auto gold = gas::runReference(updated, *alg_gold);
        ASSERT_TRUE(gold.converged) << "seed " << seed;

        const auto alg_inc = gas::makeAlgorithm(GetParam());
        auto states = fix.states;
        const auto deltas = gas::edgeChurnDeltas(
            g, updated, churn.ins, churn.dels, states, *alg_inc);
        gas::ResumeAlgorithm resume(*alg_inc, std::move(states),
                                    deltas);
        DepGraphSystem sys(parallelConfig(3));
        const auto r = sys.run(updated, resume, Solution::Parallel);

        EXPECT_TRUE(r.metrics.converged)
            << GetParam() << " seed " << seed;
        EXPECT_LE(gas::maxStateDifference(r.states, gold.states), tol)
            << GetParam() << " seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(SumAndMinMaxAccums, ParallelChurnResume,
                         ::testing::Values("pagerank", "sssp", "wcc"));

/* ---- Carry vs rescan differential. ------------------------------ */

class ParallelCarryDifferential
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(ParallelCarryDifferential, CarryMatchesRescanAcross24Seeds)
{
    // The cross-round carry must be a pure scheduling change: for
    // min/max at eps 0 both modes terminate at the unique exact
    // closure (bitwise comparison); for sum the carry list's scan
    // order perturbs the selective gate's |delta| fold by ulps, which
    // is tolerance-level freedom, so sum compares within the same
    // 1e-9 bar the sequential-equivalence suite uses.
    const auto kind = gas::makeAlgorithm(GetParam())->accumKind();
    const bool is_sum = kind == gas::AccumKind::Sum;
    const Value eps = is_sum ? 1e-13 : 0.0;

    std::uint64_t carried_total = 0;
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        const Graph g = graph::powerLaw(250, 2.0, 5.0,
                                        {.seed = 8600 + seed});
        const auto run = [&](bool carry) {
            const auto alg = gas::makeAlgorithm(GetParam());
            TightEps tight(*alg, eps);
            auto cfg = parallelConfig(3);
            cfg.engine.carryActiveList = carry;
            DepGraphSystem sys(cfg);
            auto r = sys.run(g, tight, Solution::Parallel);
            EXPECT_TRUE(r.metrics.converged)
                << GetParam() << " seed " << seed << " carry "
                << carry;
            return r;
        };
        const auto rc = run(true);
        const auto rr = run(false);

        // The fallback path must never touch the carry machinery.
        EXPECT_EQ(rr.metrics.activesCarried, 0u) << "seed " << seed;
        EXPECT_EQ(rr.metrics.rescanFallbacks, 0u) << "seed " << seed;
        carried_total += rc.metrics.activesCarried;
        // Every executed round's global active count is recorded.
        EXPECT_EQ(rc.roundActives.size(),
                  std::size_t{rc.metrics.rounds} + 1)
            << "seed " << seed;

        ASSERT_EQ(rc.states.size(), rr.states.size());
        if (is_sum) {
            for (VertexId v = 0; v < g.numVertices(); ++v) {
                const double scale =
                    std::max(1.0, std::abs(rr.states[v]));
                EXPECT_LE(std::abs(rc.states[v] - rr.states[v]),
                          1e-9 * scale)
                    << GetParam() << " seed " << seed << " v" << v;
            }
        } else {
            EXPECT_EQ(std::memcmp(rc.states.data(), rr.states.data(),
                                  rr.states.size() * sizeof(Value)),
                      0)
                << GetParam() << " seed " << seed;
        }
    }
    // Across 24 graphs at least some rounds must have gone through
    // the sparse carry scan, or the mode under test never ran.
    EXPECT_GT(carried_total, 0u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(FiveAlgorithms, ParallelCarryDifferential,
                         ::testing::Values("pagerank", "adsorption",
                                           "sssp", "wcc", "sswp"));

/* ---- Adaptive chunking: determinism pins. ----------------------- */

TEST(ParallelAdaptiveChunk, BitwiseStableAcrossThreadsAndMatchesFixed)
{
    // Chunk granularity only repartitions the same sorted root lists,
    // so at eps 0 the min/max fixpoint must not depend on what the
    // controller does. Start at the controller's floor so growth has
    // to kick in, and pin across thread counts, reps, and against an
    // adaptive-off run.
    const Graph g = graph::powerLaw(400, 2.0, 6.0, {.seed = 8700});
    for (const char *name : {"sssp", "wcc"}) {
        std::vector<Value> golden;
        for (const unsigned threads : {1u, 2u, 4u, 8u}) {
            for (unsigned rep = 0; rep < 2; ++rep) {
                const auto alg = gas::makeAlgorithm(name);
                TightEps tight(*alg, 0.0);
                auto cfg = parallelConfig(threads);
                cfg.engine.adaptiveChunking = true;
                cfg.engine.chunkSize = 4;
                DepGraphSystem sys(cfg);
                const auto r = sys.run(g, tight, Solution::Parallel);
                ASSERT_TRUE(r.metrics.converged) << name;
                EXPECT_GE(r.metrics.chunkSizeFinal, 4u);
                EXPECT_LE(r.metrics.chunkSizeFinal, 4096u);
                if (golden.empty()) {
                    golden = r.states;
                    continue;
                }
                ASSERT_EQ(r.states.size(), golden.size());
                EXPECT_EQ(std::memcmp(r.states.data(), golden.data(),
                                      golden.size() * sizeof(Value)),
                          0)
                    << name << " threads=" << threads << " rep="
                    << rep;
            }
        }
        const auto alg = gas::makeAlgorithm(name);
        TightEps tight(*alg, 0.0);
        auto cfg = parallelConfig(4);
        cfg.engine.adaptiveChunking = false;
        DepGraphSystem sys(cfg);
        const auto r = sys.run(g, tight, Solution::Parallel);
        ASSERT_TRUE(r.metrics.converged) << name;
        EXPECT_EQ(r.metrics.chunkSizeFinal, 32u) << name;
        EXPECT_EQ(std::memcmp(r.states.data(), golden.data(),
                              golden.size() * sizeof(Value)),
                  0)
            << name << " adaptive-off";
    }
}

/* ---- Carry under deletion-heavy churn: stale-active eviction. --- */

TEST(ParallelCarryChurnEviction, DeletionHeavyResumeMatchesGold)
{
    // A resume after deletion-heavy churn starts from a sparse
    // frontier (only churn-touched vertices hold deltas) and spends
    // most rounds in the carry scan, where retractions leave carried
    // vertices whose slots go inert -- exactly the stale entries
    // Rule-B eviction must drop without losing convergence.
    for (const char *name : {"sssp", "pagerank"}) {
        const double tol =
            gas::makeAlgorithm(name)->accumKind()
                    == gas::AccumKind::Sum
                ? 1e-3
                : 1e-9;
        for (std::uint64_t seed = 1; seed <= 12; ++seed) {
            const Graph g = graph::powerLaw(250, 2.0, 5.0,
                                            {.seed = 8800 + seed});
            const auto churn = someChurn(g, 2, 16, 8900 + seed);
            const auto updated =
                gas::applyChurn(g, churn.ins, churn.dels);

            const auto alg_old = gas::makeAlgorithm(name);
            const auto fix = gas::runReference(g, *alg_old);
            ASSERT_TRUE(fix.converged) << "seed " << seed;
            const auto alg_gold = gas::makeAlgorithm(name);
            const auto gold = gas::runReference(updated, *alg_gold);
            ASSERT_TRUE(gold.converged) << "seed " << seed;

            for (const bool carry : {true, false}) {
                const auto alg_inc = gas::makeAlgorithm(name);
                auto states = fix.states;
                const auto deltas = gas::edgeChurnDeltas(
                    g, updated, churn.ins, churn.dels, states,
                    *alg_inc);
                gas::ResumeAlgorithm resume(*alg_inc,
                                            std::move(states),
                                            deltas);
                auto cfg = parallelConfig(3);
                cfg.engine.carryActiveList = carry;
                DepGraphSystem sys(cfg);
                const auto r =
                    sys.run(updated, resume, Solution::Parallel);
                EXPECT_TRUE(r.metrics.converged)
                    << name << " seed " << seed << " carry "
                    << carry;
                EXPECT_LE(gas::maxStateDifference(r.states,
                                                  gold.states),
                          tol)
                    << name << " seed " << seed << " carry "
                    << carry;
            }
        }
    }
}

/* ---- Serving-layer integration and teardown. -------------------- */

TEST(ParallelService, QueriesThroughTheParallelEngine)
{
    const Graph g = graph::powerLaw(500, 2.0, 6.0, {.seed = 8300});
    service::ServiceOptions opt;
    opt.pool.numThreads = 2;
    opt.batcher.solution = Solution::Parallel;
    opt.system.engine.hostThreads = 2;
    service::GraphService svc(opt);
    svc.loadGraph("g", g);

    const auto pr =
        svc.query({"g", "pagerank", Solution::Parallel}).get();
    ASSERT_TRUE(pr.ok());
    ASSERT_NE(pr.states, nullptr);
    const auto ss = svc.query({"g", "sssp", Solution::Parallel}).get();
    ASSERT_TRUE(ss.ok());
    ASSERT_NE(ss.states, nullptr);

    const auto alg_pr = gas::makeAlgorithm("pagerank");
    const auto gold_pr = gas::runReference(g, *alg_pr);
    EXPECT_LE(gas::maxStateDifference(*pr.states, gold_pr.states),
              5e-3);
    const auto alg_ss = gas::makeAlgorithm("sssp");
    const auto gold_ss = gas::runReference(g, *alg_ss);
    EXPECT_LE(gas::maxStateDifference(*ss.states, gold_ss.states),
              1e-9);
}

TEST(ParallelService, ShutdownWithParallelQueriesInFlight)
{
    // Teardown while parallel runs are live on pool workers: the
    // service destructor must join everything; no hangs, no leaks
    // (tsan-checked). The big-ish graph keeps runs in flight when the
    // destructor fires.
    const Graph g = graph::powerLaw(4000, 2.0, 8.0, {.seed = 8400});
    service::ServiceOptions opt;
    opt.pool.numThreads = 3;
    opt.batcher.solution = Solution::Parallel;
    opt.system.engine.hostThreads = 2;
    {
        service::GraphService svc(opt);
        svc.loadGraph("g", g);
        std::vector<std::future<service::Response>> pending;
        for (int i = 0; i < 6; ++i)
            pending.push_back(
                svc.query({"g", i % 2 ? "pagerank" : "sssp",
                           Solution::Parallel}));
        // Consume one to prove liveness, abandon the rest mid-run.
        ASSERT_TRUE(pending.front().get().ok());
    }
    SUCCEED();
}

} // namespace
} // namespace depgraph
