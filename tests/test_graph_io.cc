/**
 * @file
 * Round-trip tests for edge-list text and binary graph IO.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/builder.hh"
#include "graph/edge_list.hh"
#include "graph/generators.hh"

namespace depgraph::graph
{
namespace
{

class IoTest : public ::testing::Test
{
  protected:
    std::string
    tmpPath(const std::string &name)
    {
        const auto dir = std::filesystem::temp_directory_path();
        return (dir / ("dg_io_" + name)).string();
    }

    void
    TearDown() override
    {
        for (const auto &p : created_)
            std::remove(p.c_str());
    }

    std::string
    track(const std::string &p)
    {
        created_.push_back(p);
        return p;
    }

    std::vector<std::string> created_;
};

bool
sameGraph(const Graph &a, const Graph &b)
{
    if (a.numVertices() != b.numVertices()
        || a.numEdges() != b.numEdges()) {
        return false;
    }
    for (VertexId v = 0; v < a.numVertices(); ++v) {
        if (a.outDegree(v) != b.outDegree(v))
            return false;
        for (EdgeId e = a.edgeBegin(v); e < a.edgeEnd(v); ++e) {
            if (a.target(e) != b.target(e))
                return false;
            if (std::abs(a.weight(e) - b.weight(e)) > 1e-9)
                return false;
        }
    }
    return true;
}

TEST_F(IoTest, TextRoundTrip)
{
    Builder b(5);
    b.addEdge(0, 1, 1.5);
    b.addEdge(1, 2, 2.5);
    b.addEdge(4, 0, 3.0);
    const Graph g = b.build();
    const auto path = track(tmpPath("rt.txt"));
    saveEdgeListText(g, path);
    const Graph h = loadEdgeListText(path);
    EXPECT_TRUE(sameGraph(g, h));
}

TEST_F(IoTest, TextSkipsCommentsAndHandlesUnweighted)
{
    const auto path = track(tmpPath("comments.txt"));
    {
        std::ofstream out(path);
        out << "# comment\n% other comment\n0 1\n1 2\n\n2 0\n";
    }
    const Graph g = loadEdgeListText(path);
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_FALSE(g.weighted());
}

TEST_F(IoTest, BinaryRoundTripWeighted)
{
    const Graph g = powerLaw(500, 2.0, 8.0, {.seed = 3});
    const auto path = track(tmpPath("rt.bin"));
    saveBinary(g, path);
    const Graph h = loadBinary(path);
    EXPECT_TRUE(sameGraph(g, h));
}

TEST_F(IoTest, BinaryRoundTripUnweighted)
{
    GenOptions opt;
    opt.weighted = false;
    const Graph g = erdosRenyi(200, 800, opt);
    const auto path = track(tmpPath("rtu.bin"));
    saveBinary(g, path);
    const Graph h = loadBinary(path);
    EXPECT_FALSE(h.weighted());
    EXPECT_TRUE(sameGraph(g, h));
}

TEST_F(IoTest, BinaryRejectsBadMagic)
{
    const auto path = track(tmpPath("junk.bin"));
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a graph file at all, padding padding";
    }
    EXPECT_DEATH(loadBinary(path), "not a depgraph binary");
}

TEST_F(IoTest, MissingFileIsFatal)
{
    EXPECT_DEATH(loadEdgeListText("/nonexistent/nope.txt"),
                 "cannot open");
}

} // namespace
} // namespace depgraph::graph
