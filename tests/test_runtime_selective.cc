/**
 * @file
 * Unit tests for Maiter-style selective scheduling: the round gate and
 * the chase-worthiness predicate.
 */

#include <gtest/gtest.h>

#include "runtime/selective.hh"

namespace depgraph::runtime
{
namespace
{

using gas::AccumKind;

TEST(SelectionThreshold, SumUsesMeanMagnitude)
{
    std::vector<Value> delta = {0.0, 4.0, -2.0, 6.0};
    std::vector<VertexId> active = {1, 2, 3};
    // mean |delta| = (4 + 2 + 6) / 3 = 4 -> gate = 0.5 * 4 = 2.
    EXPECT_DOUBLE_EQ(
        selectionThreshold(AccumKind::Sum, 1e-5, delta, active), 2.0);
}

TEST(SelectionThreshold, FloorsAtEpsilon)
{
    std::vector<Value> delta = {1e-9};
    std::vector<VertexId> active = {0};
    EXPECT_DOUBLE_EQ(
        selectionThreshold(AccumKind::Sum, 1e-5, delta, active), 1e-5);
}

TEST(SelectionThreshold, MinMaxAndEmptyFallBackToEps)
{
    std::vector<Value> delta = {5.0};
    std::vector<VertexId> active = {0};
    EXPECT_DOUBLE_EQ(
        selectionThreshold(AccumKind::Min, 1e-5, delta, active), 1e-5);
    EXPECT_DOUBLE_EQ(selectionThreshold(AccumKind::Sum, 1e-5, delta,
                                        {}),
                     1e-5);
}

TEST(SelectionThreshold, GuaranteesProgress)
{
    // The maximum-magnitude active delta always clears the gate.
    std::vector<Value> delta = {0.1, 0.2, 0.9};
    std::vector<VertexId> active = {0, 1, 2};
    const Value gate =
        selectionThreshold(AccumKind::Sum, 1e-5, delta, active);
    EXPECT_TRUE(clearsGate(AccumKind::Sum, 0.0, 0.9, gate));
}

TEST(ClearsGate, SumComparesMagnitude)
{
    EXPECT_TRUE(clearsGate(AccumKind::Sum, 0.0, 3.0, 2.0));
    EXPECT_TRUE(clearsGate(AccumKind::Sum, 0.0, -3.0, 2.0));
    EXPECT_FALSE(clearsGate(AccumKind::Sum, 0.0, 1.0, 2.0));
}

TEST(ClearsGate, MinMaxRequireStrictImprovement)
{
    EXPECT_TRUE(clearsGate(AccumKind::Min, 5.0, 4.0, 0.0));
    EXPECT_FALSE(clearsGate(AccumKind::Min, 5.0, 5.0, 0.0));
    EXPECT_TRUE(clearsGate(AccumKind::Max, 5.0, 6.0, 0.0));
    EXPECT_FALSE(clearsGate(AccumKind::Max, 5.0, 4.0, 0.0));
}

TEST(WorthChasing, SumMatchesGate)
{
    EXPECT_TRUE(worthChasing(AccumKind::Sum, 0.0, 3.0, 2.0));
    EXPECT_FALSE(worthChasing(AccumKind::Sum, 0.0, 1.0, 2.0));
}

TEST(WorthChasing, MinNeedsMarginOverFiniteState)
{
    // 5% margin: 4.7 vs 5.0 is not worth a chase, 4.0 is.
    EXPECT_FALSE(worthChasing(AccumKind::Min, 5.0, 4.8, 0.0));
    EXPECT_TRUE(worthChasing(AccumKind::Min, 5.0, 4.0, 0.0));
    // First arrival at an unreached vertex is always chased.
    EXPECT_TRUE(worthChasing(AccumKind::Min, kInfinity, 100.0, 0.0));
    EXPECT_FALSE(worthChasing(AccumKind::Min, kInfinity, kInfinity,
                              0.0));
}

TEST(WorthChasing, MaxIsSymmetric)
{
    EXPECT_FALSE(worthChasing(AccumKind::Max, 5.0, 5.1, 0.0));
    EXPECT_TRUE(worthChasing(AccumKind::Max, 5.0, 6.0, 0.0));
    EXPECT_TRUE(worthChasing(AccumKind::Max, -kInfinity, 0.0, 0.0));
}

} // namespace
} // namespace depgraph::runtime
