/**
 * @file
 * Bounded MPMC JobQueue and worker ThreadPool: backpressure policies,
 * drain, and graceful shutdown never dropping accepted work.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "service/job_queue.hh"
#include "service/thread_pool.hh"

namespace depgraph::service
{
namespace
{

TEST(JobQueue, TryPushRejectsWhenFull)
{
    JobQueue<int> q(2);
    EXPECT_EQ(q.tryPush(1), PushResult::Ok);
    EXPECT_EQ(q.tryPush(2), PushResult::Ok);
    EXPECT_EQ(q.tryPush(3), PushResult::Full);
    EXPECT_EQ(q.depth(), 2u);
    EXPECT_EQ(q.highWater(), 2u);

    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_EQ(q.tryPush(3), PushResult::Ok);
}

TEST(JobQueue, CloseDrainsRemainingItemsThenStops)
{
    JobQueue<int> q(4);
    ASSERT_EQ(q.tryPush(1), PushResult::Ok);
    ASSERT_EQ(q.tryPush(2), PushResult::Ok);
    q.close();
    EXPECT_EQ(q.tryPush(3), PushResult::Closed);

    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(q.pop(v)); // closed and drained
}

TEST(JobQueue, BlockingPushWaitsForSpace)
{
    JobQueue<int> q(1);
    ASSERT_EQ(q.tryPush(1), PushResult::Ok);

    std::promise<void> started;
    auto pusher = std::thread([&] {
        started.set_value();
        EXPECT_EQ(q.push(2), PushResult::Ok); // blocks until pop
    });
    started.get_future().wait();

    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    pusher.join();
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
}

TEST(ThreadPool, RunsEveryAcceptedJob)
{
    std::atomic<int> ran{0};
    ThreadPool pool({.numThreads = 4, .queueCapacity = 64,
                     .blockWhenFull = true});
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(pool.submit([&] { ++ran; }), PushResult::Ok);
    pool.drain();
    EXPECT_EQ(ran.load(), 100);
    EXPECT_EQ(pool.jobsExecuted(), 100u);
}

TEST(ThreadPool, RejectPolicyWhenSaturated)
{
    // One worker pinned on a gate job + capacity 1: the second submit
    // occupies the only slot, the third must be rejected.
    ThreadPool pool(
        {.numThreads = 1, .queueCapacity = 1, .blockWhenFull = false});
    std::promise<void> gate;
    auto opened = std::shared_future<void>(gate.get_future());

    ASSERT_EQ(pool.submit([opened] { opened.wait(); }),
              PushResult::Ok);
    // The gate job may still be queued; poll until a worker holds it.
    while (pool.queueDepth() > 0)
        std::this_thread::yield();
    ASSERT_EQ(pool.submit([] {}), PushResult::Ok);
    EXPECT_EQ(pool.submit([] {}), PushResult::Full);

    gate.set_value();
    pool.drain();
    EXPECT_EQ(pool.jobsExecuted(), 2u);
    EXPECT_EQ(pool.queueHighWater(), 1u);
}

TEST(ThreadPool, BlockPolicyWaitsInsteadOfRejecting)
{
    ThreadPool pool(
        {.numThreads = 1, .queueCapacity = 1, .blockWhenFull = true});
    std::promise<void> gate;
    auto opened = std::shared_future<void>(gate.get_future());
    std::atomic<int> ran{0};

    ASSERT_EQ(pool.submit([opened] { opened.wait(); }),
              PushResult::Ok);
    while (pool.queueDepth() > 0)
        std::this_thread::yield();
    ASSERT_EQ(pool.submit([&] { ++ran; }), PushResult::Ok);

    // This submit blocks until the gate opens and the queue drains.
    auto blocked = std::thread([&] {
        EXPECT_EQ(pool.submit([&] { ++ran; }), PushResult::Ok);
    });
    gate.set_value();
    blocked.join();
    pool.drain();
    EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, ShutdownRunsQueuedJobsAndRefusesNewOnes)
{
    std::atomic<int> ran{0};
    auto pool = std::make_unique<ThreadPool>(
        ThreadPool::Options{.numThreads = 2, .queueCapacity = 64});
    for (int i = 0; i < 32; ++i)
        ASSERT_EQ(pool->submit([&] { ++ran; }), PushResult::Ok);
    pool->shutdown();
    EXPECT_EQ(ran.load(), 32); // accepted work is never dropped
    EXPECT_EQ(pool->submit([&] { ++ran; }), PushResult::Closed);
    pool->shutdown(); // idempotent
    pool.reset();
    EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ManyProducersManyConsumers)
{
    std::atomic<std::uint64_t> sum{0};
    ThreadPool pool({.numThreads = 4, .queueCapacity = 32,
                     .blockWhenFull = true});
    std::vector<std::thread> producers;
    for (int p = 0; p < 6; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < 50; ++i) {
                const auto v =
                    static_cast<std::uint64_t>(p * 50 + i);
                ASSERT_EQ(pool.submit([&sum, v] { sum += v; }),
                          PushResult::Ok);
            }
        });
    }
    for (auto &t : producers)
        t.join();
    pool.drain();
    // sum of 0..299
    EXPECT_EQ(sum.load(), 299u * 300u / 2);
}

} // namespace
} // namespace depgraph::service
