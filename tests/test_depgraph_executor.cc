/**
 * @file
 * Tests for the DepGraph executors: Theorem-1 correctness (states with
 * the dependency transformation equal states without it and equal the
 * reference fixpoint), the paper's qualitative claims (fewer updates
 * than Ligra-o, DepGraph-H faster than DepGraph-S, hub index pays
 * off on skewed graphs), and the engine's counters.
 */

#include <gtest/gtest.h>

#include "core/depgraph_system.hh"
#include "gas/reference.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"

namespace depgraph
{
namespace
{

using gas::makeAlgorithm;
using gas::maxStateDifference;
using gas::runReference;
using graph::Graph;

SystemConfig
testConfig(unsigned cores = 8)
{
    SystemConfig cfg;
    cfg.machine.numCores = cores;
    cfg.machine.l3TotalBytes = 8 * 1024 * 1024;
    cfg.machine.l3Banks = 8;
    cfg.engine.numCores = cores;
    cfg.engine.hub.lambda = 0.01; // small graphs: keep hubs plentiful
    return cfg;
}

/** Theorem 1: every DepGraph variant converges to the reference
 * fixpoint on every supported algorithm. */
class DepGraphCorrectness
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(DepGraphCorrectness, MatchesReferenceOnPowerLaw)
{
    const Graph g = graph::powerLaw(900, 2.0, 8.0, {.seed = 81});
    const auto gold_alg = makeAlgorithm(GetParam());
    const auto gold = runReference(g, *gold_alg);
    ASSERT_TRUE(gold.converged);

    DepGraphSystem sys(testConfig());
    for (auto s : {Solution::DepGraphS, Solution::DepGraphH,
                   Solution::DepGraphHNoHub}) {
        const auto r = sys.run(g, GetParam(), s);
        EXPECT_TRUE(r.metrics.converged) << solutionName(s);
        EXPECT_LE(maxStateDifference(r.states, gold.states), 1e-3)
            << solutionName(s) << " diverges on " << GetParam();
    }
}

TEST_P(DepGraphCorrectness, MatchesReferenceOnCommunityChain)
{
    const Graph g =
        graph::communityChain(6, 150, 2.0, 7.0, 2, {.seed = 82});
    const auto gold_alg = makeAlgorithm(GetParam());
    const auto gold = runReference(g, *gold_alg);

    DepGraphSystem sys(testConfig(4));
    const auto r = sys.run(g, GetParam(), Solution::DepGraphH);
    EXPECT_LE(maxStateDifference(r.states, gold.states), 1e-3);
}

TEST_P(DepGraphCorrectness, HubTransformDoesNotChangeResults)
{
    // The executable form of Theorem 1: with and without the
    // dependency transformation, same converged states.
    const Graph g = graph::powerLaw(700, 2.0, 10.0, {.seed = 83});
    DepGraphSystem sys(testConfig());
    const auto with = sys.run(g, GetParam(), Solution::DepGraphH);
    const auto without =
        sys.run(g, GetParam(), Solution::DepGraphHNoHub);
    EXPECT_LE(maxStateDifference(with.states, without.states), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Algos, DepGraphCorrectness,
                         ::testing::Values("pagerank", "adsorption",
                                           "sssp", "wcc", "sswp",
                                           "katz"));

TEST(DepGraphBehaviour, FewerUpdatesThanLigraO)
{
    // The paper's headline: DepGraph cuts updates by 61-82% vs
    // Ligra-o. The effect lives in the chain-bound regime (the
    // paper's graphs have diameters up to 44), so test on a
    // high-diameter skewed graph and require a clear reduction.
    const Graph g =
        graph::communityChain(10, 300, 2.0, 8.0, 2, {.seed = 84});
    DepGraphSystem sys(testConfig());
    for (const auto &algo : {"pagerank", "wcc", "adsorption"}) {
        const auto base = sys.run(g, algo, Solution::LigraO);
        const auto dg = sys.run(g, algo, Solution::DepGraphH);
        EXPECT_LT(dg.metrics.updates, base.metrics.updates) << algo;
    }
    // Weighted SSSP: eager chain-chasing trades some update count for
    // a large round reduction (label refinement); require the rounds
    // win and keep updates within a bounded factor.
    const auto base = sys.run(g, "sssp", Solution::LigraO);
    const auto dg = sys.run(g, "sssp", Solution::DepGraphH);
    EXPECT_LT(dg.metrics.rounds, base.metrics.rounds);
    EXPECT_LT(dg.metrics.updates, 3 * base.metrics.updates);
}

TEST(DepGraphBehaviour, HardwareFasterThanSoftware)
{
    // Sec. IV-A: DepGraph-S's runtime cost (on-the-fly fetching + hub
    // index maintenance) dominates; the hardware removes it.
    const Graph g = graph::powerLaw(2500, 2.0, 10.0, {.seed = 85});
    DepGraphSystem sys(testConfig());
    const auto sw = sys.run(g, "sssp", Solution::DepGraphS);
    const auto hwr = sys.run(g, "sssp", Solution::DepGraphH);
    EXPECT_LT(hwr.metrics.makespan, sw.metrics.makespan);
    // And the software variant is dominated by "other time".
    EXPECT_GT(sw.metrics.otherTimeShare(), 0.5);
}

TEST(DepGraphBehaviour, BeatsLigraOOnSkewedGraph)
{
    const Graph g = graph::powerLaw(3000, 1.9, 14.0, {.seed = 86});
    DepGraphSystem sys(testConfig());
    const auto base = sys.run(g, "pagerank", Solution::LigraO);
    const auto dg = sys.run(g, "pagerank", Solution::DepGraphH);
    EXPECT_LT(dg.metrics.makespan, base.metrics.makespan);
}

TEST(DepGraphBehaviour, HubIndexIsPopulatedAndUsed)
{
    const Graph g = graph::powerLaw(2000, 1.9, 14.0, {.seed = 87});
    DepGraphSystem sys(testConfig());
    const auto r = sys.run(g, "sssp", Solution::DepGraphH);
    EXPECT_GT(r.metrics.hubIndexInserts, 0u);
    EXPECT_GT(r.metrics.hubIndexLookups, 0u);
    EXPECT_GT(r.metrics.hubIndexBytes, 0u);
    // Shortcuts actually fire on a skewed graph.
    EXPECT_GT(r.metrics.shortcutsApplied, 0u);
}

TEST(DepGraphBehaviour, NoHubVariantNeverFiresShortcuts)
{
    const Graph g = graph::powerLaw(1000, 2.0, 10.0, {.seed = 88});
    DepGraphSystem sys(testConfig());
    const auto r = sys.run(g, "sssp", Solution::DepGraphHNoHub);
    EXPECT_EQ(r.metrics.shortcutsApplied, 0u);
    EXPECT_EQ(r.metrics.hubIndexHits, 0u);
}

TEST(DepGraphBehaviour, PrefetchesEdgesInHardwareMode)
{
    const Graph g = graph::powerLaw(800, 2.0, 8.0, {.seed = 89});
    DepGraphSystem sys(testConfig());
    const auto hwr = sys.run(g, "pagerank", Solution::DepGraphH);
    EXPECT_GT(hwr.metrics.prefetchedEdges, 0u);
    EXPECT_GT(hwr.metrics.accelOps, 0u);
    const auto sw = sys.run(g, "pagerank", Solution::DepGraphS);
    EXPECT_EQ(sw.metrics.prefetchedEdges, 0u);
    EXPECT_EQ(sw.metrics.accelOps, 0u);
}

TEST(DepGraphBehaviour, FewerRoundsThanLigraOOnChains)
{
    // Chain-following propagates along paths within a round, so
    // DepGraph needs far fewer rounds on a high-diameter graph.
    const Graph g =
        graph::communityChain(10, 150, 2.0, 6.0, 2, {.seed = 90});
    DepGraphSystem sys(testConfig(4));
    const auto base = sys.run(g, "sssp", Solution::LigraO);
    const auto dg = sys.run(g, "sssp", Solution::DepGraphH);
    EXPECT_LT(dg.metrics.rounds, base.metrics.rounds);
}

TEST(DepGraphBehaviour, DeterministicAcrossRuns)
{
    const Graph g = graph::powerLaw(600, 2.0, 8.0, {.seed = 91});
    DepGraphSystem sys(testConfig(4));
    const auto a = sys.run(g, "pagerank", Solution::DepGraphH);
    const auto b = sys.run(g, "pagerank", Solution::DepGraphH);
    EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
    EXPECT_EQ(a.metrics.updates, b.metrics.updates);
    EXPECT_EQ(a.metrics.shortcutsApplied, b.metrics.shortcutsApplied);
}

TEST(DepGraphBehaviour, StackDepthSweepStaysCorrect)
{
    const Graph g = graph::powerLaw(800, 2.0, 8.0, {.seed = 92});
    const auto gold_alg = makeAlgorithm("sssp");
    const auto gold = runReference(g, *gold_alg);
    for (unsigned depth : {2u, 4u, 10u, 32u}) {
        auto cfg = testConfig();
        cfg.engine.stackDepth = depth;
        DepGraphSystem sys(cfg);
        const auto r = sys.run(g, "sssp", Solution::DepGraphH);
        EXPECT_LE(maxStateDifference(r.states, gold.states), 1e-3)
            << "depth " << depth;
    }
}

TEST(DepGraphBehaviour, FifoCapacitySweepStaysCorrect)
{
    const Graph g = graph::powerLaw(600, 2.0, 8.0, {.seed = 93});
    const auto gold_alg = makeAlgorithm("pagerank");
    const auto gold = runReference(g, *gold_alg);
    for (unsigned cap : {4u, 16u, 128u}) {
        auto cfg = testConfig();
        cfg.engine.fifoCapacity = cap;
        DepGraphSystem sys(cfg);
        const auto r = sys.run(g, "pagerank", Solution::DepGraphH);
        EXPECT_LE(maxStateDifference(r.states, gold.states), 1e-3)
            << "fifo " << cap;
    }
}

TEST(DepGraphBehaviour, WorksOnMeshGraphs)
{
    // Sec. IV-A: "mesh-like graphs can also benefit" -- at minimum the
    // engine must be correct and converge on an unskewed mesh.
    const Graph g = graph::grid(30, 30, {.seed = 94});
    const auto gold_alg = makeAlgorithm("sssp");
    const auto gold = runReference(g, *gold_alg);
    DepGraphSystem sys(testConfig(4));
    for (auto s : {Solution::DepGraphH, Solution::DepGraphHNoHub}) {
        const auto r = sys.run(g, "sssp", s);
        EXPECT_LE(maxStateDifference(r.states, gold.states), 1e-3)
            << solutionName(s);
    }
}

TEST(DepGraphBehaviour, SingleCoreStillCorrect)
{
    const Graph g = graph::powerLaw(500, 2.0, 8.0, {.seed = 95});
    const auto gold_alg = makeAlgorithm("wcc");
    const auto gold = runReference(g, *gold_alg);
    DepGraphSystem sys(testConfig(1));
    const auto r = sys.run(g, "wcc", Solution::DepGraphH);
    EXPECT_LE(maxStateDifference(r.states, gold.states), 1e-3);
}

TEST(SolutionApi, NamesRoundTrip)
{
    for (auto s : allSolutions())
        EXPECT_EQ(solutionFromName(solutionName(s)), s);
    EXPECT_DEATH(solutionFromName("NotASolution"), "unknown solution");
}

TEST(SolutionApi, EngineNamesMatchSolutionNames)
{
    for (auto s : allSolutions())
        EXPECT_EQ(makeEngine(s)->name(), solutionName(s));
}

TEST(SolutionApi, MinimalUpdatesIsPositive)
{
    const Graph g = graph::powerLaw(400, 2.0, 6.0, {.seed = 96});
    DepGraphSystem sys(testConfig());
    EXPECT_GT(sys.minimalUpdates(g, "sssp"), 0u);
    EXPECT_LE(sys.minimalUpdates(g, "sssp"), g.numVertices());
}

} // namespace
} // namespace depgraph
