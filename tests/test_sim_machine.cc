/**
 * @file
 * Tests for the machine model: hierarchy latencies, NoC distances,
 * DRAM, coherence costs, address space, and stats plumbing.
 */

#include <gtest/gtest.h>

#include "sim/energy.hh"
#include "sim/machine.hh"

namespace depgraph::sim
{
namespace
{

MachineParams
tinyParams()
{
    MachineParams p;
    p.numCores = 4;
    p.l1d = {1024, 2, 4, ReplPolicy::LRU};
    p.l2 = {4096, 4, 7, ReplPolicy::LRU};
    p.l3TotalBytes = 64 * 1024;
    p.l3Banks = 4;
    p.meshWidth = 2;
    p.meshHeight = 2;
    return p;
}

TEST(Machine, ColdMissGoesToMemory)
{
    Machine m(tinyParams());
    const Addr a = m.mem().alloc("x", 4096);
    const auto r = m.access(0, a, 8, false);
    EXPECT_EQ(r.level, MemLevel::Mem);
    EXPECT_GE(r.latency, m.params().dramLatency);
}

TEST(Machine, SecondAccessHitsL1)
{
    Machine m(tinyParams());
    const Addr a = m.mem().alloc("x", 4096);
    m.access(0, a, 8, false);
    const auto r = m.access(0, a, 8, false);
    EXPECT_EQ(r.level, MemLevel::L1);
    EXPECT_EQ(r.latency, m.params().l1d.latency);
}

TEST(Machine, LatencyOrderingAcrossLevels)
{
    Machine m(tinyParams());
    const Addr a = m.mem().alloc("x", 1 << 20);
    const auto mem = m.access(0, a, 8, false);
    const auto l1 = m.access(0, a, 8, false);
    // Evict from L1 by touching conflicting lines, then re-access: L2.
    // L1 is 1 KB 2-way with 8 sets; lines 512 B apart share a set.
    for (int i = 1; i <= 4; ++i)
        m.access(0, a + i * 512, 8, false);
    const auto l2 = m.access(0, a, 8, false);
    EXPECT_LT(l1.latency, l2.latency);
    EXPECT_LT(l2.latency, mem.latency);
    EXPECT_EQ(l2.level, MemLevel::L2);
}

TEST(Machine, AccessFromL2SkipsL1)
{
    Machine m(tinyParams());
    const Addr a = m.mem().alloc("x", 4096);
    m.accessFromL2(0, a, 8, false);
    // The line is in L2 but not in L1: a core access must be L2-level.
    const auto r = m.access(0, a, 8, false);
    EXPECT_EQ(r.level, MemLevel::L2);
}

TEST(Machine, MultiLineAccessSumsLatency)
{
    Machine m(tinyParams());
    const Addr a = m.mem().alloc("x", 4096);
    m.access(0, a, 8, false);
    m.access(0, a + 64, 8, false);
    // Both lines hot: an access spanning both costs two L1 hits.
    const auto r = m.access(0, a + 60, 8, false);
    EXPECT_EQ(r.latency, 2 * m.params().l1d.latency);
}

TEST(Machine, WriteInvalidatesRemoteCopy)
{
    Machine m(tinyParams());
    const Addr a = m.mem().alloc("x", 4096);
    m.access(0, a, 8, true);  // core 0 owns the line dirty
    m.access(1, a, 8, true);  // core 1 writes: invalidation
    const auto s = m.stats();
    EXPECT_EQ(s.invalidations, 1u);
    // Core 0 lost its copy: next access by core 0 cannot be L1.
    const auto r = m.access(0, a, 8, false);
    EXPECT_NE(r.level, MemLevel::L1);
}

TEST(Machine, ReadOfRemoteDirtyLineIsCharged)
{
    Machine m(tinyParams());
    const Addr a = m.mem().alloc("x", 4096);
    m.access(0, a, 8, true);
    m.access(1, a, 8, false);
    EXPECT_EQ(m.stats().remoteDirtyHits, 1u);
}

TEST(Machine, StatsAccumulateAndClear)
{
    Machine m(tinyParams());
    const Addr a = m.mem().alloc("x", 4096);
    m.access(0, a, 8, false);
    m.access(0, a, 8, false);
    auto s = m.stats();
    EXPECT_EQ(s.accesses, 2u);
    EXPECT_GE(s.l1.hits, 1u);
    EXPECT_GE(s.dramAccesses, 1u);
    m.clearStats();
    s = m.stats();
    EXPECT_EQ(s.accesses, 0u);
    EXPECT_EQ(s.l1.hits + s.l1.misses, 0u);
}

TEST(Machine, FlushForgetsContents)
{
    Machine m(tinyParams());
    const Addr a = m.mem().alloc("x", 4096);
    m.access(0, a, 8, false);
    m.flushCaches();
    const auto r = m.access(0, a, 8, false);
    EXPECT_EQ(r.level, MemLevel::Mem);
}

TEST(Noc, ManhattanHops)
{
    MachineParams p;
    p.meshWidth = 8;
    p.meshHeight = 8;
    MeshNoc n(p);
    EXPECT_EQ(n.hops(0, 0), 0u);
    EXPECT_EQ(n.hops(0, 7), 7u);   // same row
    EXPECT_EQ(n.hops(0, 56), 7u);  // same column
    EXPECT_EQ(n.hops(0, 63), 14u); // opposite corner
    EXPECT_EQ(n.hops(63, 0), 14u); // symmetric
}

TEST(Noc, TransferChargesHopLatencyAndCountsTraffic)
{
    MachineParams p;
    p.hopCycles = 3;
    MeshNoc n(p);
    const Cycles lat = n.transfer(0, 63);
    EXPECT_EQ(lat, 14u * 3u);
    EXPECT_EQ(n.hopCount(), 14u);
    EXPECT_EQ(n.messages(), 1u);
}

TEST(Dram, LatencyIncludesQueueingUnderPressure)
{
    MachineParams p;
    Dram d(p);
    const Cycles first = d.access(0x40);
    Cycles last = first;
    for (int i = 0; i < 32; ++i)
        last = d.access(0x40); // hammer one channel
    EXPECT_GE(last, first);
    EXPECT_EQ(d.accesses(), 33u);
}

TEST(AddressSpace, AllocatesDisjointAlignedRegions)
{
    AddressSpace as;
    const Addr a = as.alloc("a", 100);
    const Addr b = as.alloc("b", 100);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_EQ(as.regionOf(a)->name, "a");
    EXPECT_EQ(as.regionOf(b + 50)->name, "b");
    EXPECT_EQ(as.regionOf(0x10), nullptr);
    EXPECT_EQ(as.bytesOf("a"), 100u);
    EXPECT_EQ(as.totalBytes(), 200u);
}

TEST(HotRegions, MembershipAndClear)
{
    HotRegions h;
    EXPECT_TRUE(h.empty());
    h.addRange(0x1000, 0x100);
    EXPECT_TRUE(h.contains(0x1000));
    EXPECT_TRUE(h.contains(0x10ff));
    EXPECT_FALSE(h.contains(0x1100));
    h.clear();
    EXPECT_FALSE(h.contains(0x1000));
}

TEST(Energy, BreakdownScalesWithEvents)
{
    MachineStats s;
    s.l1.hits = 1000;
    s.l2.hits = 100;
    s.l3.hits = 10;
    s.dramAccesses = 5;
    s.nocHops = 50;
    const auto e1 = computeEnergy(s, 10000, 1000, 100);
    MachineStats s2 = s;
    s2.dramAccesses = 10;
    const auto e2 = computeEnergy(s2, 10000, 1000, 100);
    EXPECT_GT(e2.dramMj, e1.dramMj);
    EXPECT_DOUBLE_EQ(e1.coreMj, e2.coreMj);
    EXPECT_GT(e1.totalMj(), 0.0);
}

TEST(Energy, IdleCheaperThanBusy)
{
    MachineStats s;
    const auto busy = computeEnergy(s, 1000, 0, 0);
    const auto idle = computeEnergy(s, 0, 1000, 0);
    EXPECT_GT(busy.coreMj, idle.coreMj);
}

} // namespace
} // namespace depgraph::sim
