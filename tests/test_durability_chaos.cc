/**
 * @file
 * Chaos harness: drives traffic at a REAL dgserve subprocess, kills
 * it at armed failpoints (or with raw SIGKILL plus a torn WAL tail),
 * restarts it on the same data dir, and asserts the durability
 * contract from the outside:
 *
 *   - every ACKED mutation is present after recovery,
 *   - the one in-flight request at the crash is applied at most once,
 *   - the recovered state hashes bitwise-equal to an in-process
 *     scratch service fed the same surviving mutations.
 *
 * Also exercises the lifecycle satellites end-to-end: second-SIGTERM
 * escalation (immediate 128+sig exit) and dgload's reconnect loop
 * across a server crash + restart.
 */

#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hh"
#include "net/client.hh"
#include "service/protocol.hh"
#include "service/service.hh"

#ifndef DGSERVE_BIN
#error "build must define DGSERVE_BIN (path to the dgserve binary)"
#endif
#ifndef DGLOAD_BIN
#error "build must define DGLOAD_BIN (path to the dgload binary)"
#endif

namespace depgraph
{
namespace
{

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/** One dgserve child with captured stdout. */
class ServerProc
{
  public:
    ~ServerProc() { stop(); }

    bool
    start(const std::vector<std::string> &extraArgs,
          const std::string &failpoints = "")
    {
        int pipefd[2];
        if (::pipe(pipefd) != 0)
            return false;
        pid_ = ::fork();
        if (pid_ < 0)
            return false;
        if (pid_ == 0) {
            ::dup2(pipefd[1], STDOUT_FILENO);
            ::close(pipefd[0]);
            ::close(pipefd[1]);
            if (!failpoints.empty())
                ::setenv("DG_FAILPOINTS", failpoints.c_str(), 1);
            else
                ::unsetenv("DG_FAILPOINTS");
            std::vector<std::string> args = {DGSERVE_BIN,
                                             "--workers=2",
                                             "--dispatchers=2",
                                             "--solution=Sequential",
                                             "--batch=8",
                                             "--drain_ms=2000"};
            args.insert(args.end(), extraArgs.begin(),
                        extraArgs.end());
            std::vector<char *> argv;
            for (auto &a : args)
                argv.push_back(a.data());
            argv.push_back(nullptr);
            ::execv(DGSERVE_BIN, argv.data());
            ::_exit(127);
        }
        ::close(pipefd[1]);
        out_ = pipefd[0];
        return waitListening();
    }

    std::uint16_t port() const { return port_; }
    pid_t pid() const { return pid_; }
    const std::string &stdoutText() const { return text_; }

    /** Reap the child; @return raw waitpid status (-1 on timeout). */
    int
    wait(std::chrono::milliseconds timeout = 10000ms)
    {
        if (pid_ < 0)
            return -1;
        const auto deadline =
            std::chrono::steady_clock::now() + timeout;
        int status = 0;
        while (std::chrono::steady_clock::now() < deadline) {
            const auto r = ::waitpid(pid_, &status, WNOHANG);
            if (r == pid_) {
                pid_ = -1;
                drainStdout();
                return status;
            }
            std::this_thread::sleep_for(20ms);
        }
        return -1;
    }

    void signal(int sig) { ::kill(pid_, sig); }

    void
    stop()
    {
        if (pid_ > 0) {
            ::kill(pid_, SIGKILL);
            (void)wait();
        }
        if (out_ >= 0) {
            ::close(out_);
            out_ = -1;
        }
    }

  private:
    /** Read child stdout until the "listening on" banner. */
    bool
    waitListening()
    {
        std::string line;
        while (readLine(line)) {
            const auto tag = line.find("listening on ");
            if (tag == std::string::npos)
                continue;
            const auto colon = line.rfind(':');
            port_ = static_cast<std::uint16_t>(
                std::stoi(line.substr(colon + 1)));
            return true;
        }
        return false;
    }

    bool
    readLine(std::string &line, std::chrono::milliseconds timeout =
                                    30000ms)
    {
        const auto deadline =
            std::chrono::steady_clock::now() + timeout;
        for (;;) {
            const auto nl = text_.find('\n', consumed_);
            if (nl != std::string::npos) {
                line = text_.substr(consumed_, nl - consumed_);
                consumed_ = nl + 1;
                return true;
            }
            const auto left =
                std::chrono::duration_cast<
                    std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now());
            if (left.count() <= 0)
                return false;
            struct pollfd p = {out_, POLLIN, 0};
            if (::poll(&p, 1, static_cast<int>(left.count())) <= 0)
                return false;
            char buf[4096];
            const auto n = ::read(out_, buf, sizeof buf);
            if (n <= 0)
                return false;
            text_.append(buf, static_cast<std::size_t>(n));
        }
    }

    void
    drainStdout()
    {
        char buf[4096];
        for (;;) {
            struct pollfd p = {out_, POLLIN, 0};
            if (::poll(&p, 1, 200) <= 0)
                return;
            const auto n = ::read(out_, buf, sizeof buf);
            if (n <= 0)
                return;
            text_.append(buf, static_cast<std::size_t>(n));
        }
    }

    pid_t pid_ = -1;
    int out_ = -1;
    std::uint16_t port_ = 0;
    std::string text_;
    std::size_t consumed_ = 0;
};

constexpr std::uint64_t kGraphSeed = 7;

graph::Graph
baseGraph()
{
    return graph::powerLaw(300, 2.0, 4.0, {.seed = kGraphSeed});
}

/** The load verb re-generating the identical graph server-side. */
const char *kLoadLine = "load g powerlaw 300 2.0 4.0 7";

/** Distinct edges absent from the base graph: their post-recovery
 * count is exactly 1 iff the insertion survived. */
std::vector<std::pair<VertexId, VertexId>>
uniqueEdges(std::size_t n)
{
    const auto g = baseGraph();
    std::set<std::pair<VertexId, VertexId>> present;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e)
            present.insert({v, g.target(e)});
    std::vector<std::pair<VertexId, VertexId>> out;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    while (out.size() < n) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const auto s = static_cast<VertexId>(x % g.numVertices());
        const auto d =
            static_cast<VertexId>((x >> 32) % g.numVertices());
        if (present.count({s, d}))
            continue;
        present.insert({s, d});
        out.push_back({s, d});
    }
    return out;
}

struct Traffic
{
    std::vector<std::pair<VertexId, VertexId>> acked;
    /** The request in flight when the connection died (if any): it
     * may legally be applied 0 or 1 times, never more. */
    std::optional<std::pair<VertexId, VertexId>> ambiguous;
    bool serverDied = false;
};

/** Send unique-edge updates until the server dies or edges run out. */
Traffic
drive(net::Client &c,
      const std::vector<std::pair<VertexId, VertexId>> &edges)
{
    Traffic t;
    for (const auto &[s, d] : edges) {
        const auto line = "update g " + std::to_string(s) + " "
                          + std::to_string(d);
        std::string reply;
        if (!c.sendLine(line) || !c.recvLine(reply)) {
            t.ambiguous = {s, d};
            t.serverDied = true;
            return t;
        }
        if (reply.rfind("ok", 0) != 0) {
            ADD_FAILURE() << "update rejected: " << reply;
            return t;
        }
        t.acked.push_back({s, d});
    }
    return t;
}

net::Client
connectTo(std::uint16_t port)
{
    net::Client c;
    EXPECT_TRUE(c.connect("127.0.0.1", port, 30000ms)) << c.error();
    return c;
}

std::string
roundTrip(net::Client &c, const std::string &line)
{
    std::string reply;
    EXPECT_TRUE(c.sendLine(line)) << c.error();
    EXPECT_TRUE(c.recvLine(reply)) << c.error();
    return reply;
}

std::uint64_t
edgeCount(net::Client &c, VertexId s, VertexId d)
{
    const auto reply = roundTrip(c, "edge g " + std::to_string(s)
                                        + " " + std::to_string(d));
    std::uint64_t count = 0;
    EXPECT_EQ(std::sscanf(reply.c_str(), "ok count=%lu", &count), 1)
        << reply;
    return count;
}

std::string
hashIn(const std::string &queryReply)
{
    const auto at = queryReply.find("hash=");
    EXPECT_NE(at, std::string::npos) << queryReply;
    if (at == std::string::npos)
        return "";
    return queryReply.substr(at + 5, 16);
}

/** Scratch hash from an in-process service fed `edges` in order --
 * what the recovered server must match bitwise. */
std::string
referenceHash(
    const std::vector<std::pair<VertexId, VertexId>> &edges,
    const std::string &algo)
{
    service::ServiceOptions opt;
    opt.pool.numThreads = 2;
    opt.batcher.maxPendingEdges = 100000;
    opt.batcher.solution = Solution::Sequential;
    service::GraphService svc(opt);
    EXPECT_GT(svc.loadGraph("g", baseGraph()), 0u);
    std::vector<gas::EdgeInsertion> ins;
    for (const auto &[s, d] : edges)
        ins.push_back({s, d, 1.0});
    if (!ins.empty()) {
        EXPECT_TRUE(svc.streamUpdates("g", ins).get().ok());
        EXPECT_TRUE(svc.flush("g").get().ok());
    }
    return hashIn(
        runCommandLine(svc, "query g " + algo + " Sequential 0")
            .output);
}

/**
 * Post-crash audit: restart on the same data dir, require every
 * acked edge exactly once, the ambiguous one at most once, and the
 * recovered fixpoint bitwise-equal to scratch.
 */
void
verifyRecovered(const std::string &dir, const Traffic &t,
                const std::string &expectRecoveredSubstr = "")
{
    ServerProc srv;
    ASSERT_TRUE(srv.start({"--listen=0", "--data_dir=" + dir,
                           "--wal_sync=always"}));
    if (!expectRecoveredSubstr.empty()) {
        EXPECT_NE(srv.stdoutText().find(expectRecoveredSubstr),
                  std::string::npos)
            << srv.stdoutText();
    }

    auto c = connectTo(srv.port());
    ASSERT_TRUE(c.connected());
    for (const auto &[s, d] : t.acked)
        EXPECT_EQ(edgeCount(c, s, d), 1u)
            << "acked edge " << s << "->" << d << " lost";

    auto surviving = t.acked;
    if (t.ambiguous) {
        const auto n =
            edgeCount(c, t.ambiguous->first, t.ambiguous->second);
        EXPECT_LE(n, 1u) << "in-flight edge double-applied";
        if (n == 1)
            surviving.push_back(*t.ambiguous);
    }

    const auto got =
        hashIn(roundTrip(c, "query g sssp Sequential 0"));
    EXPECT_EQ(got, referenceHash(surviving, "sssp"))
        << "recovered state diverges from scratch recompute";

    c.close();
    srv.signal(SIGTERM);
    EXPECT_EQ(srv.wait(), 0);
}

class ChaosTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto tmpl =
            (fs::temp_directory_path() / "dgchaos.XXXXXX").string();
        ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
        dir_ = tmpl;
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

TEST_F(ChaosTest, CrashAfterWalAppendLosesNoAckedWrite)
{
    Traffic t;
    {
        ServerProc srv;
        // The 1st append is the `load` Create; the exit lands on the
        // 10th append = the 9th update, mid-traffic.
        ASSERT_TRUE(srv.start({"--listen=0", "--data_dir=" + dir_,
                               "--wal_sync=always"},
                              "wal.after_append=exit(137)@10"));
        auto c = connectTo(srv.port());
        ASSERT_TRUE(c.connected());
        ASSERT_EQ(roundTrip(c, kLoadLine).rfind("ok", 0), 0u);
        t = drive(c, uniqueEdges(40));
        EXPECT_TRUE(t.serverDied);
        // Threshold flushes interleave Marker appends with the
        // Mutates, so the exact ack count at append #10 depends on
        // where the markers landed -- only the bounds are stable.
        EXPECT_GE(t.acked.size(), 4u);
        EXPECT_LT(t.acked.size(), 10u);

        const auto status = srv.wait();
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 137);
    }
    verifyRecovered(dir_, t);
}

TEST_F(ChaosTest, CrashInsideBatchFlushLosesNoAckedWrite)
{
    Traffic t;
    {
        ServerProc srv;
        // --batch=8: the second threshold flush dies between the
        // group-commit fsync and the snapshot publish.
        ASSERT_TRUE(srv.start({"--listen=0", "--data_dir=" + dir_,
                               "--wal_sync=always"},
                              "batcher.flush=exit(137)@2"));
        auto c = connectTo(srv.port());
        ASSERT_TRUE(c.connected());
        ASSERT_EQ(roundTrip(c, kLoadLine).rfind("ok", 0), 0u);
        t = drive(c, uniqueEdges(40));
        EXPECT_TRUE(t.serverDied);
        EXPECT_GE(t.acked.size(), 8u);

        const auto status = srv.wait();
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 137);
    }
    verifyRecovered(dir_, t);
}

TEST_F(ChaosTest, CrashDuringCheckpointPublishFallsBackToWal)
{
    Traffic t;
    {
        ServerProc srv;
        ASSERT_TRUE(srv.start({"--listen=0", "--data_dir=" + dir_,
                               "--wal_sync=always"}));
        auto c = connectTo(srv.port());
        ASSERT_TRUE(c.connected());
        ASSERT_EQ(roundTrip(c, kLoadLine).rfind("ok", 0), 0u);
        t = drive(c, uniqueEdges(20));
        ASSERT_EQ(t.acked.size(), 20u);

        // Arm over the protocol, then ask for the checkpoint that
        // will die right before its atomic rename.
        ASSERT_EQ(
            roundTrip(c, "failpoint ckpt.publish exit(137)")
                .rfind("ok", 0),
            0u);
        std::string ignored;
        c.sendLine("checkpoint g");
        (void)c.recvLine(ignored); // EOF: the server just died

        const auto status = srv.wait();
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 137);
    }
    // No checkpoint was published; recovery replays the WAL alone.
    EXPECT_FALSE(fs::exists(fs::path(dir_) / "ckpt" / "g.ckpt"));
    verifyRecovered(dir_, t, "WAL record(s)");
}

TEST_F(ChaosTest, SigkillPlusTornTailRecovers)
{
    Traffic t;
    {
        ServerProc srv;
        ASSERT_TRUE(srv.start({"--listen=0", "--data_dir=" + dir_,
                               "--wal_sync=always"}));
        auto c = connectTo(srv.port());
        ASSERT_TRUE(c.connected());
        ASSERT_EQ(roundTrip(c, kLoadLine).rfind("ok", 0), 0u);
        t = drive(c, uniqueEdges(15));
        ASSERT_EQ(t.acked.size(), 15u);

        srv.signal(SIGKILL);
        const auto status = srv.wait();
        ASSERT_TRUE(WIFSIGNALED(status));
        EXPECT_EQ(WTERMSIG(status), SIGKILL);
    }

    // Splice a half-written frame onto the journal, as a crash in
    // the middle of an unacked append would have.
    const auto wal = (fs::path(dir_) / "wal" / "g.wal").string();
    ASSERT_TRUE(fs::exists(wal));
    std::ofstream(wal, std::ios::binary | std::ios::app)
        << std::string("\x80\x00\x00\x00 torn", 9);

    verifyRecovered(dir_, t, "torn tail(s) truncated");
}

TEST_F(ChaosTest, SecondSigtermEscalatesToImmediateExit)
{
    ServerProc srv;
    // Delay every dispatched line from the 2nd on: the in-flight
    // request pins the drain well past the test's patience.
    ASSERT_TRUE(srv.start({"--listen=0", "--drain_ms=8000"},
                          "net.dispatch_line=delay(6000)@2"));
    auto c = connectTo(srv.port());
    ASSERT_TRUE(c.connected());
    ASSERT_EQ(roundTrip(c, kLoadLine).rfind("ok", 0), 0u);
    ASSERT_TRUE(c.sendLine("query g pagerank")); // will stall 6s

    std::this_thread::sleep_for(300ms);
    const auto t0 = std::chrono::steady_clock::now();
    srv.signal(SIGTERM);
    std::this_thread::sleep_for(300ms);
    srv.signal(SIGTERM);

    const auto status = srv.wait(5000ms);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    ASSERT_NE(status, -1) << "server ignored the second SIGTERM";
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 128 + SIGTERM);
    EXPECT_LT(elapsed, 3s)
        << "escalation should not wait out the drain";
}

TEST_F(ChaosTest, SingleSigtermStillDrainsCleanly)
{
    ServerProc srv;
    ASSERT_TRUE(srv.start({"--listen=0", "--data_dir=" + dir_,
                           "--wal_sync=batch"}));
    auto c = connectTo(srv.port());
    ASSERT_TRUE(c.connected());
    ASSERT_EQ(roundTrip(c, kLoadLine).rfind("ok", 0), 0u);
    const auto t = drive(c, uniqueEdges(5));
    ASSERT_EQ(t.acked.size(), 5u);
    c.close();

    srv.signal(SIGTERM);
    const auto status = srv.wait();
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    // Batch-sync journals are fsynced on the graceful path, so a
    // restart sees every acked write even without wal_sync=always.
    verifyRecovered(dir_, t);
}

TEST_F(ChaosTest, DgloadReconnectsAcrossServerCrashAndRestart)
{
    std::uint16_t port = 0;
    {
        ServerProc first;
        // Die on the 40th socket write: mid-way through dgload's run.
        ASSERT_TRUE(first.start({"--listen=0",
                                 "--data_dir=" + dir_,
                                 "--wal_sync=always"},
                                "net.write=exit(137)@40"));
        port = first.port();

        // dgload in the background against the doomed server, with
        // its stdout captured so the reconnect count is assertable.
        int pipefd[2];
        ASSERT_EQ(::pipe(pipefd), 0);
        const auto pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ::dup2(pipefd[1], STDOUT_FILENO);
            ::close(pipefd[0]);
            ::close(pipefd[1]);
            std::string portArg = "--port=" + std::to_string(port);
            const char *argv[] = {DGLOAD_BIN,
                                  portArg.c_str(),
                                  "--connections=2",
                                  "--requests=40",
                                  "--graphs=1",
                                  "--n=300",
                                  "--solution=Sequential",
                                  "--seed=3",
                                  nullptr};
            ::execv(DGLOAD_BIN, const_cast<char **>(argv));
            ::_exit(127);
        }
        ::close(pipefd[1]);

        // The failpoint kills the first server mid-load...
        const auto status = first.wait(30000ms);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 137);

        // ...and a supervisor brings a fresh one up on the SAME port
        // and data dir while dgload's backoff loop is still retrying.
        ServerProc second;
        ASSERT_TRUE(second.start(
            {"--listen=" + std::to_string(port),
             "--data_dir=" + dir_, "--wal_sync=always"}));

        int loadStatus = 0;
        ASSERT_EQ(::waitpid(pid, &loadStatus, 0), pid);
        std::string loadOut;
        char buf[4096];
        for (ssize_t n; (n = ::read(pipefd[0], buf, sizeof buf)) > 0;)
            loadOut.append(buf, static_cast<std::size_t>(n));
        ::close(pipefd[0]);

        ASSERT_TRUE(WIFEXITED(loadStatus));
        EXPECT_EQ(WEXITSTATUS(loadStatus), 0)
            << "dgload should survive the crash via reconnects: "
            << loadOut;
        const auto at = loadOut.find("reconnects=");
        ASSERT_NE(at, std::string::npos) << loadOut;
        EXPECT_GT(
            std::stoul(loadOut.substr(at + 11)), 0u)
            << loadOut;

        second.signal(SIGTERM);
        EXPECT_EQ(second.wait(), 0);
    }
}

} // namespace
} // namespace depgraph
