/**
 * @file
 * Tests for incremental recomputation: after edge insertions, resuming
 * from the old fixpoint with the injected deltas must converge to the
 * same states as a from-scratch run on the updated graph -- for every
 * algorithm class and every engine.
 */

#include <gtest/gtest.h>

#include "core/depgraph_system.hh"
#include "gas/incremental.hh"
#include "gas/reference.hh"
#include "common/random.hh"
#include "graph/generators.hh"

namespace depgraph::gas
{
namespace
{

using graph::Graph;

std::vector<EdgeInsertion>
someInsertions(const Graph &g, unsigned count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<EdgeInsertion> ins;
    for (unsigned i = 0; i < count; ++i) {
        const auto s = static_cast<VertexId>(
            rng.nextBounded(g.numVertices()));
        auto d = static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        if (d == s)
            d = (d + 1) % g.numVertices();
        ins.push_back({s, d, rng.nextDouble(1.0, 5.0)});
    }
    return ins;
}

TEST(ApplyInsertions, AddsEdgesAndGrowsVertexSet)
{
    const Graph g = graph::path(5);
    const auto updated =
        applyInsertions(g, {{0, 4, 2.0}, {4, 6, 1.0}});
    EXPECT_EQ(updated.numVertices(), 7u);
    EXPECT_EQ(updated.numEdges(), g.numEdges() + 2);
}

/** Incremental == from-scratch, algorithm sweep at reference level. */
class IncrementalEquivalence
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(IncrementalEquivalence, MatchesFromScratchReference)
{
    const Graph g = graph::powerLaw(500, 2.0, 6.0, {.seed = 301});
    const auto ins = someInsertions(g, 12, 302);
    const auto updated = applyInsertions(g, ins);

    // Old fixpoint.
    const auto alg_old = makeAlgorithm(GetParam());
    const auto old_run = runReference(g, *alg_old);
    ASSERT_TRUE(old_run.converged);

    // From-scratch gold on the updated graph.
    const auto alg_gold = makeAlgorithm(GetParam());
    const auto gold = runReference(updated, *alg_gold);
    ASSERT_TRUE(gold.converged);

    // Incremental resume.
    const auto alg_inc = makeAlgorithm(GetParam());
    auto states = old_run.states;
    states.resize(updated.numVertices(),
                  alg_inc->initState(updated, 0));
    const auto deltas = edgeInsertionDeltas(g, updated, ins, states,
                                            *alg_inc);
    ResumeAlgorithm resume(*alg_inc, states, deltas);
    const auto inc = runReference(updated, resume);
    ASSERT_TRUE(inc.converged);

    EXPECT_LE(maxStateDifference(inc.states, gold.states), 1e-3)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Algos, IncrementalEquivalence,
                         ::testing::Values("pagerank", "adsorption",
                                           "katz", "sssp", "wcc",
                                           "sswp"));

TEST(Incremental, WorksThroughDepGraphH)
{
    // End to end: incremental resume under the DepGraph-H engine.
    const Graph g = graph::powerLaw(600, 2.0, 7.0, {.seed = 303});
    const auto ins = someInsertions(g, 8, 304);
    const auto updated = applyInsertions(g, ins);

    SystemConfig cfg;
    cfg.machine.numCores = 8;
    cfg.engine.numCores = 8;
    DepGraphSystem sys(cfg);

    const auto alg_old = makeAlgorithm("pagerank");
    const auto old_run = runReference(g, *alg_old);

    const auto alg_gold = makeAlgorithm("pagerank");
    const auto gold = runReference(updated, *alg_gold);

    const auto alg_inc = makeAlgorithm("pagerank");
    const auto deltas = edgeInsertionDeltas(
        g, updated, ins, old_run.states, *alg_inc);
    ResumeAlgorithm resume(*alg_inc, old_run.states, deltas);
    const auto r = sys.run(updated, resume, Solution::DepGraphH);

    EXPECT_TRUE(r.metrics.converged);
    EXPECT_LE(maxStateDifference(r.states, gold.states), 1e-3);
}

TEST(Incremental, ResumeIsCheaperThanFromScratch)
{
    // The whole point of the incremental workload: far fewer updates
    // than recomputing from scratch.
    const Graph g = graph::powerLaw(800, 2.0, 8.0, {.seed = 305});
    const auto ins = someInsertions(g, 4, 306);
    const auto updated = applyInsertions(g, ins);

    const auto alg_old = makeAlgorithm("pagerank");
    const auto old_run = runReference(g, *alg_old);

    const auto alg_scratch = makeAlgorithm("pagerank");
    const auto scratch = runReference(updated, *alg_scratch);

    const auto alg_inc = makeAlgorithm("pagerank");
    const auto deltas = edgeInsertionDeltas(
        g, updated, ins, old_run.states, *alg_inc);
    ResumeAlgorithm resume(*alg_inc, old_run.states, deltas);
    const auto inc = runReference(updated, resume);

    EXPECT_LT(inc.updates, scratch.updates / 2);
}

TEST(Incremental, NoInsertionsMeansNoWork)
{
    const Graph g = graph::powerLaw(300, 2.0, 5.0, {.seed = 307});
    const auto alg_old = makeAlgorithm("sssp");
    const auto old_run = runReference(g, *alg_old);
    const auto alg_inc = makeAlgorithm("sssp");
    const auto deltas =
        edgeInsertionDeltas(g, g, {}, old_run.states, *alg_inc);
    ResumeAlgorithm resume(*alg_inc, old_run.states, deltas);
    const auto inc = runReference(g, resume);
    EXPECT_EQ(inc.updates, 0u);
    EXPECT_LE(maxStateDifference(inc.states, old_run.states), 1e-12);
}

/**
 * Batch semantics property: applying two update batches sequentially
 * (reconverging after each) and applying their concatenation as one
 * merged batch must reach the same fixpoint. This is what lets the
 * service's UpdateBatcher coalesce queued insertions freely.
 * Parameterized over sum- and min/max-accumulator algorithms, several
 * random batch pairs each.
 */
class BatchMergeSemantics : public ::testing::TestWithParam<std::string>
{};

TEST_P(BatchMergeSemantics, SequentialBatchesEqualMergedBatch)
{
    for (const std::uint64_t seed : {910u, 920u, 930u}) {
        const Graph g = graph::powerLaw(300, 2.0, 5.0, {.seed = seed});
        const auto b1 = someInsertions(g, 6, seed + 1);
        const auto b2 = someInsertions(g, 6, seed + 2);

        const auto alg0 = makeAlgorithm(GetParam());
        const auto fix0 = runReference(g, *alg0);
        ASSERT_TRUE(fix0.converged);

        // Path A: batch 1, reconverge, batch 2, reconverge.
        const auto g1 = applyInsertions(g, b1);
        const auto alg1 = makeAlgorithm(GetParam());
        const auto d1 =
            edgeInsertionDeltas(g, g1, b1, fix0.states, *alg1);
        ResumeAlgorithm r1(*alg1, fix0.states, d1);
        const auto run1 = runReference(g1, r1);
        ASSERT_TRUE(run1.converged);

        const auto g2 = applyInsertions(g1, b2);
        const auto alg2 = makeAlgorithm(GetParam());
        const auto d2 =
            edgeInsertionDeltas(g1, g2, b2, run1.states, *alg2);
        ResumeAlgorithm r2(*alg2, run1.states, d2);
        const auto run2 = runReference(g2, r2);
        ASSERT_TRUE(run2.converged);

        // Path B: one merged batch.
        auto merged = b1;
        merged.insert(merged.end(), b2.begin(), b2.end());
        const auto gm = applyInsertions(g, merged);
        const auto algm = makeAlgorithm(GetParam());
        const auto dm =
            edgeInsertionDeltas(g, gm, merged, fix0.states, *algm);
        ResumeAlgorithm rm(*algm, fix0.states, dm);
        const auto runm = runReference(gm, rm);
        ASSERT_TRUE(runm.converged);

        ASSERT_EQ(g2.numEdges(), gm.numEdges());
        EXPECT_LE(maxStateDifference(run2.states, runm.states), 1e-3)
            << GetParam() << " seed " << seed;

        // Both must also agree with from-scratch on the final graph.
        const auto alg_gold = makeAlgorithm(GetParam());
        const auto gold = runReference(gm, *alg_gold);
        ASSERT_TRUE(gold.converged);
        EXPECT_LE(maxStateDifference(runm.states, gold.states), 1e-3)
            << GetParam() << " seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(SumAndMinMaxAccums, BatchMergeSemantics,
                         ::testing::Values("pagerank", "adsorption",
                                           "katz", "sssp", "sswp"));

TEST(Incremental, SsspShortcutEdgeImprovesDistances)
{
    // Inserting a short bypass must lower downstream distances.
    const Graph g = graph::path(10); // weights from the generator
    const auto alg_old = makeAlgorithm("sssp");
    const auto old_run = runReference(g, *alg_old);

    const std::vector<EdgeInsertion> ins = {{0, 9, 0.5}};
    const auto updated = applyInsertions(g, ins);
    const auto alg_inc = makeAlgorithm("sssp");
    const auto deltas = edgeInsertionDeltas(
        g, updated, ins, old_run.states, *alg_inc);
    ResumeAlgorithm resume(*alg_inc, old_run.states, deltas);
    const auto inc = runReference(updated, resume);
    EXPECT_DOUBLE_EQ(inc.states[9], 0.5);
    EXPECT_LT(inc.states[9], old_run.states[9]);
}

} // namespace
} // namespace depgraph::gas
