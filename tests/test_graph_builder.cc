/**
 * @file
 * Unit tests for the edge-list builder.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"

namespace depgraph::graph
{
namespace
{

TEST(Builder, SortsNeighborsById)
{
    Builder b(4);
    b.addEdge(0, 3);
    b.addEdge(0, 1);
    b.addEdge(0, 2);
    const Graph g = b.build();
    auto n = g.neighbors(0);
    ASSERT_EQ(n.size(), 3u);
    EXPECT_EQ(n[0], 1u);
    EXPECT_EQ(n[1], 2u);
    EXPECT_EQ(n[2], 3u);
}

TEST(Builder, WeightsTrackSortedOrder)
{
    Builder b(4);
    b.addEdge(0, 3, 30.0);
    b.addEdge(0, 1, 10.0);
    const Graph g = b.build();
    EXPECT_DOUBLE_EQ(g.weight(g.edgeBegin(0)), 10.0);
    EXPECT_DOUBLE_EQ(g.weight(g.edgeBegin(0) + 1), 30.0);
}

TEST(Builder, UndirectedAddsBothDirections)
{
    Builder b(2);
    b.addUndirectedEdge(0, 1, 5.0);
    const Graph g = b.build();
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.neighbors(0)[0], 1u);
    EXPECT_EQ(g.neighbors(1)[0], 0u);
    EXPECT_DOUBLE_EQ(g.weight(0), 5.0);
    EXPECT_DOUBLE_EQ(g.weight(1), 5.0);
}

TEST(Builder, DedupeKeepsFirstWeight)
{
    Builder b(2);
    b.addEdge(0, 1, 7.0);
    b.addEdge(0, 1, 9.0);
    b.dedupe();
    EXPECT_EQ(b.edgeCount(), 1u);
    const Graph g = b.build();
    EXPECT_DOUBLE_EQ(g.weight(0), 7.0);
}

TEST(Builder, DedupeKeepsDistinctEdges)
{
    Builder b(3);
    b.addEdge(0, 1);
    b.addEdge(0, 2);
    b.addEdge(1, 2);
    b.dedupe();
    EXPECT_EQ(b.edgeCount(), 3u);
}

TEST(Builder, RemoveSelfLoops)
{
    Builder b(3);
    b.addEdge(0, 0);
    b.addEdge(0, 1);
    b.addEdge(2, 2);
    b.removeSelfLoops();
    EXPECT_EQ(b.edgeCount(), 1u);
    const Graph g = b.build();
    EXPECT_EQ(g.neighbors(0)[0], 1u);
}

TEST(Builder, EmptyGraphBuilds)
{
    Builder b(3);
    const Graph g = b.build();
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_EQ(g.outDegree(1), 0u);
}

TEST(BuilderDeath, RejectsOutOfRangeVertex)
{
    Builder b(2);
    EXPECT_DEATH(b.addEdge(0, 2), "out of range");
}

} // namespace
} // namespace depgraph::graph
