/**
 * @file
 * Tests for the Table III dataset stand-ins: catalog integrity and
 * fidelity of each stand-in's degree/diameter class.
 */

#include <gtest/gtest.h>

#include "graph/datasets.hh"
#include "graph/degree.hh"

namespace depgraph::graph
{
namespace
{

TEST(Datasets, CatalogMatchesTableIII)
{
    const auto &cat = datasetCatalog();
    ASSERT_EQ(cat.size(), 6u);
    EXPECT_EQ(cat[0].name, "GL");
    EXPECT_EQ(cat[5].name, "FS");
    EXPECT_EQ(cat[5].paperVertices, 65608366u);
    EXPECT_EQ(cat[5].paperEdges, 950652916u);
    EXPECT_EQ(cat[1].paperDiameter, 44u);
}

TEST(Datasets, InfoLookup)
{
    EXPECT_EQ(datasetInfo("PK").fullName, "soc-Pokec");
    EXPECT_DEATH(datasetInfo("XX"), "unknown dataset");
}

TEST(Datasets, NamesMatchCatalogOrder)
{
    const auto &names = datasetNames();
    const auto &cat = datasetCatalog();
    ASSERT_EQ(names.size(), cat.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(names[i], cat[i].name);
}

/** Each stand-in should land near its paper average degree and in the
 * right diameter class (small <12 / medium / large >=20). */
class StandInSweep : public ::testing::TestWithParam<std::string>
{};

TEST_P(StandInSweep, DegreeTracksPaper)
{
    const auto &info = datasetInfo(GetParam());
    // Small scale keeps this test quick; degree is scale-invariant.
    const Graph g = makeDataset(GetParam(), 0.25);
    const auto s = degreeStats(g);
    EXPECT_GT(s.avgOutDegree, info.paperAvgDegree * 0.4)
        << GetParam();
    EXPECT_LT(s.avgOutDegree, info.paperAvgDegree * 2.5)
        << GetParam();
}

TEST_P(StandInSweep, GraphIsNonTrivial)
{
    const Graph g = makeDataset(GetParam(), 0.25);
    EXPECT_GT(g.numVertices(), 500u);
    EXPECT_GT(g.numEdges(), g.numVertices());
    EXPECT_TRUE(g.weighted());
}

TEST_P(StandInSweep, SkewedLikeRealGraphs)
{
    const Graph g = makeDataset(GetParam(), 0.25);
    const auto s = degreeStats(g);
    EXPECT_GT(s.top1PctEdgeShare, 0.02) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllSix, StandInSweep,
                         ::testing::Values("GL", "AZ", "PK", "OK", "LJ",
                                           "FS"));

TEST(Datasets, HighDiameterClassForAZandFS)
{
    const Graph az = makeDataset("AZ", 0.25);
    const Graph gl = makeDataset("GL", 0.25);
    EXPECT_GT(estimateDiameter(az, 6), estimateDiameter(gl, 6));
}

TEST(Datasets, Deterministic)
{
    const Graph a = makeDataset("PK", 0.1);
    const Graph b = makeDataset("PK", 0.1);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (EdgeId e = 0; e < a.numEdges(); e += 97)
        ASSERT_EQ(a.target(e), b.target(e));
}

} // namespace
} // namespace depgraph::graph
