/**
 * @file
 * Span-tracing tests: the Chrome trace_event JSON dump is parsed back
 * with the in-tree JSON parser and checked structurally, and the
 * end-to-end flows (dgrun-style load/run, service request spans) are
 * replayed to assert every expected span kind actually records.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>

#include "core/depgraph_system.hh"
#include "graph/generators.hh"
#include "obs/json.hh"
#include "obs/span.hh"
#include "service/service.hh"

namespace depgraph
{
namespace
{

using obs::json::Value;

/** Tracing state is process-global: isolate every test. */
class SpanTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::span::clear();
        obs::span::setEnabled(true);
    }
    void TearDown() override
    {
        obs::span::setEnabled(false);
        obs::span::clear();
    }
};

/** Dump, parse, and return the traceEvents array (asserts validity). */
Value
dumpedEvents()
{
    std::string err;
    const auto doc = obs::json::parse(obs::span::dumpChromeJson(), &err);
    EXPECT_TRUE(doc.has_value()) << err;
    if (!doc)
        return Value();
    EXPECT_TRUE(doc->isObject());
    const auto *events = doc->find("traceEvents");
    EXPECT_NE(events, nullptr);
    EXPECT_TRUE(events && events->isArray());
    return events ? *events : Value();
}

/** Events whose name matches. */
std::vector<Value>
named(const Value &events, const std::string &name)
{
    std::vector<Value> out;
    for (const auto &e : events.asArray())
        if (e.find("name") && e.find("name")->asString() == name)
            out.push_back(e);
    return out;
}

TEST_F(SpanTest, DisabledRecordsNothing)
{
    obs::span::setEnabled(false);
    obs::span::instant("t", "nope");
    { obs::span::Scoped s("t", "nope_scoped"); }
    EXPECT_EQ(obs::span::recordedEvents(), 0u);
}

TEST_F(SpanTest, ChromeJsonRoundTripsWithRequiredFields)
{
    {
        obs::span::Scoped s("test", "outer", "n", 7);
        obs::span::instant("test", "tick");
    }
    const auto id = obs::span::newId();
    obs::span::asyncBegin("test", "request", id);
    obs::span::asyncEnd("test", "request", id);

    const auto events = dumpedEvents();
    ASSERT_TRUE(events.isArray());
    ASSERT_EQ(events.asArray().size(), 4u);
    for (const auto &e : events.asArray()) {
        ASSERT_NE(e.find("name"), nullptr);
        ASSERT_NE(e.find("cat"), nullptr);
        ASSERT_NE(e.find("ph"), nullptr);
        ASSERT_NE(e.find("ts"), nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
    }

    const auto outer = named(events, "outer");
    ASSERT_EQ(outer.size(), 1u);
    EXPECT_EQ(outer[0].find("ph")->asString(), "X");
    ASSERT_NE(outer[0].find("dur"), nullptr); // complete spans carry dur
    const auto *args = outer[0].find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->find("n"), nullptr);
    EXPECT_DOUBLE_EQ(args->find("n")->asNumber(), 7.0);

    EXPECT_EQ(named(events, "tick")[0].find("ph")->asString(), "i");

    // The async pair is stitched by a shared id.
    const auto req = named(events, "request");
    ASSERT_EQ(req.size(), 2u);
    std::set<std::string> phases{req[0].find("ph")->asString(),
                                 req[1].find("ph")->asString()};
    EXPECT_EQ(phases, (std::set<std::string>{"b", "e"}));
    ASSERT_NE(req[0].find("id"), nullptr);
    ASSERT_NE(req[1].find("id"), nullptr);
    EXPECT_DOUBLE_EQ(req[0].find("id")->asNumber(),
                     req[1].find("id")->asNumber());
}

TEST_F(SpanTest, ThreadsGetDistinctTids)
{
    obs::span::instant("test", "here");
    std::thread([] { obs::span::instant("test", "there"); }).join();

    const auto events = dumpedEvents();
    const auto here = named(events, "here");
    const auto there = named(events, "there");
    ASSERT_EQ(here.size(), 1u);
    ASSERT_EQ(there.size(), 1u);
    EXPECT_NE(here[0].find("tid")->asNumber(),
              there[0].find("tid")->asNumber());
}

TEST_F(SpanTest, RingBufferOverwriteCountsDrops)
{
    // One past capacity: the oldest event is overwritten, not lost
    // silently.
    for (std::size_t i = 0; i < (std::size_t{1} << 16) + 1; ++i)
        obs::span::instant("test", "spin");
    EXPECT_EQ(obs::span::droppedEvents(), 1u);
    EXPECT_EQ(obs::span::recordedEvents(), std::size_t{1} << 16);
}

TEST_F(SpanTest, EngineRunEmitsLoadRunAndChainWalkSpans)
{
    // The dgrun flow: a "load" span around graph construction, a
    // "run" span around the engine, and per-core chain_walk spans
    // from inside the DepGraph executor.
    graph::Graph g;
    {
        obs::span::Scoped load_span("tool", "load");
        graph::GenOptions gopt;
        gopt.seed = 7;
        g = graph::powerLaw(400, 2.0, 6.0, gopt);
    }

    SystemConfig cfg;
    cfg.machine.numCores = 4;
    cfg.engine.numCores = 4;
    DepGraphSystem sys(cfg);
    {
        obs::span::Scoped run_span("tool", "run");
        const auto r = sys.run(g, "pagerank", Solution::DepGraphH);
        EXPECT_TRUE(r.metrics.converged);
    }

    const auto events = dumpedEvents();
    EXPECT_EQ(named(events, "load").size(), 1u);
    EXPECT_EQ(named(events, "run").size(), 1u);
    const auto walks = named(events, "chain_walk");
    EXPECT_GE(walks.size(), 1u);
    for (const auto &w : walks) {
        EXPECT_EQ(w.find("cat")->asString(), "engine");
        EXPECT_EQ(w.find("ph")->asString(), "X");
    }
    EXPECT_GE(named(events, "round_done").size(), 1u);
}

TEST_F(SpanTest, ServiceRequestsEmitQueueWaitAndHandlerSpans)
{
    service::ServiceOptions opt;
    opt.pool.numThreads = 2;
    opt.system.machine.numCores = 2;
    opt.system.engine.numCores = 2;
    {
        service::GraphService svc(opt);
        svc.loadGraph("g", graph::ring(64));
        const auto r =
            svc.query({"g", "pagerank", Solution::DepGraphH}).get();
        EXPECT_TRUE(r.ok());
        svc.drain();
    }

    const auto events = dumpedEvents();
    // queue_wait is recorded by the worker using the enqueue stamp
    // that travelled through the job queue with the span id.
    const auto waits = named(events, "queue_wait");
    ASSERT_GE(waits.size(), 1u);
    EXPECT_EQ(waits[0].find("ph")->asString(), "X");

    // The request span proper: async begin/end plus the handler's
    // complete span, all named after the request type.
    const auto query = named(events, "query");
    std::set<std::string> phases;
    for (const auto &e : query)
        phases.insert(e.find("ph")->asString());
    EXPECT_TRUE(phases.count("b"));
    EXPECT_TRUE(phases.count("e"));
    EXPECT_TRUE(phases.count("X"));
}

} // namespace
} // namespace depgraph
