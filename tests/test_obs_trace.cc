/**
 * @file
 * Span-tracing tests: the Chrome trace_event JSON dump is parsed back
 * with the in-tree JSON parser and checked structurally, and the
 * end-to-end flows (dgrun-style load/run, service request spans) are
 * replayed to assert every expected span kind actually records.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/depgraph_system.hh"
#include "graph/generators.hh"
#include "obs/json.hh"
#include "obs/slowlog.hh"
#include "obs/span.hh"
#include "service/protocol.hh"
#include "service/service.hh"

namespace depgraph
{
namespace
{

using obs::json::Value;

/** Tracing state is process-global: isolate every test. */
class SpanTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::span::clear();
        obs::span::setSampling({0, 0});
        obs::span::setEnabled(true);
    }
    void TearDown() override
    {
        obs::span::setEnabled(false);
        obs::span::setSampling({0, 0});
        obs::span::clear();
    }
};

/** Dump, parse, and return the traceEvents array (asserts validity). */
Value
dumpedEvents()
{
    std::string err;
    const auto doc = obs::json::parse(obs::span::dumpChromeJson(), &err);
    EXPECT_TRUE(doc.has_value()) << err;
    if (!doc)
        return Value();
    EXPECT_TRUE(doc->isObject());
    const auto *events = doc->find("traceEvents");
    EXPECT_NE(events, nullptr);
    EXPECT_TRUE(events && events->isArray());
    return events ? *events : Value();
}

/** Events whose name matches. */
std::vector<Value>
named(const Value &events, const std::string &name)
{
    std::vector<Value> out;
    for (const auto &e : events.asArray())
        if (e.find("name") && e.find("name")->asString() == name)
            out.push_back(e);
    return out;
}

TEST_F(SpanTest, DisabledRecordsNothing)
{
    obs::span::setEnabled(false);
    obs::span::instant("t", "nope");
    { obs::span::Scoped s("t", "nope_scoped"); }
    EXPECT_EQ(obs::span::recordedEvents(), 0u);
}

TEST_F(SpanTest, ChromeJsonRoundTripsWithRequiredFields)
{
    {
        obs::span::Scoped s("test", "outer", "n", 7);
        obs::span::instant("test", "tick");
    }
    const auto id = obs::span::newId();
    obs::span::asyncBegin("test", "request", id);
    obs::span::asyncEnd("test", "request", id);

    const auto events = dumpedEvents();
    ASSERT_TRUE(events.isArray());
    ASSERT_EQ(events.asArray().size(), 4u);
    for (const auto &e : events.asArray()) {
        ASSERT_NE(e.find("name"), nullptr);
        ASSERT_NE(e.find("cat"), nullptr);
        ASSERT_NE(e.find("ph"), nullptr);
        ASSERT_NE(e.find("ts"), nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
    }

    const auto outer = named(events, "outer");
    ASSERT_EQ(outer.size(), 1u);
    EXPECT_EQ(outer[0].find("ph")->asString(), "X");
    ASSERT_NE(outer[0].find("dur"), nullptr); // complete spans carry dur
    const auto *args = outer[0].find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->find("n"), nullptr);
    EXPECT_DOUBLE_EQ(args->find("n")->asNumber(), 7.0);

    EXPECT_EQ(named(events, "tick")[0].find("ph")->asString(), "i");

    // The async pair is stitched by a shared id.
    const auto req = named(events, "request");
    ASSERT_EQ(req.size(), 2u);
    std::set<std::string> phases{req[0].find("ph")->asString(),
                                 req[1].find("ph")->asString()};
    EXPECT_EQ(phases, (std::set<std::string>{"b", "e"}));
    ASSERT_NE(req[0].find("id"), nullptr);
    ASSERT_NE(req[1].find("id"), nullptr);
    EXPECT_DOUBLE_EQ(req[0].find("id")->asNumber(),
                     req[1].find("id")->asNumber());
}

TEST_F(SpanTest, ThreadsGetDistinctTids)
{
    obs::span::instant("test", "here");
    std::thread([] { obs::span::instant("test", "there"); }).join();

    const auto events = dumpedEvents();
    const auto here = named(events, "here");
    const auto there = named(events, "there");
    ASSERT_EQ(here.size(), 1u);
    ASSERT_EQ(there.size(), 1u);
    EXPECT_NE(here[0].find("tid")->asNumber(),
              there[0].find("tid")->asNumber());
}

TEST_F(SpanTest, RingBufferOverwriteCountsDrops)
{
    // One past capacity: the oldest event is overwritten, not lost
    // silently.
    for (std::size_t i = 0; i < (std::size_t{1} << 16) + 1; ++i)
        obs::span::instant("test", "spin");
    EXPECT_EQ(obs::span::droppedEvents(), 1u);
    EXPECT_EQ(obs::span::recordedEvents(), std::size_t{1} << 16);
}

TEST_F(SpanTest, EngineRunEmitsLoadRunAndChainWalkSpans)
{
    // The dgrun flow: a "load" span around graph construction, a
    // "run" span around the engine, and per-core chain_walk spans
    // from inside the DepGraph executor.
    graph::Graph g;
    {
        obs::span::Scoped load_span("tool", "load");
        graph::GenOptions gopt;
        gopt.seed = 7;
        g = graph::powerLaw(400, 2.0, 6.0, gopt);
    }

    SystemConfig cfg;
    cfg.machine.numCores = 4;
    cfg.engine.numCores = 4;
    DepGraphSystem sys(cfg);
    {
        obs::span::Scoped run_span("tool", "run");
        const auto r = sys.run(g, "pagerank", Solution::DepGraphH);
        EXPECT_TRUE(r.metrics.converged);
    }

    const auto events = dumpedEvents();
    EXPECT_EQ(named(events, "load").size(), 1u);
    EXPECT_EQ(named(events, "run").size(), 1u);
    const auto walks = named(events, "chain_walk");
    EXPECT_GE(walks.size(), 1u);
    for (const auto &w : walks) {
        EXPECT_EQ(w.find("cat")->asString(), "engine");
        EXPECT_EQ(w.find("ph")->asString(), "X");
    }
    EXPECT_GE(named(events, "round_done").size(), 1u);
}

TEST_F(SpanTest, ServiceRequestsEmitQueueWaitAndHandlerSpans)
{
    service::ServiceOptions opt;
    opt.pool.numThreads = 2;
    opt.system.machine.numCores = 2;
    opt.system.engine.numCores = 2;
    {
        service::GraphService svc(opt);
        svc.loadGraph("g", graph::ring(64));
        const auto r =
            svc.query({"g", "pagerank", Solution::DepGraphH}).get();
        EXPECT_TRUE(r.ok());
        svc.drain();
    }

    const auto events = dumpedEvents();
    // queue_wait is recorded by the worker using the enqueue stamp
    // that travelled through the job queue with the span id.
    const auto waits = named(events, "queue_wait");
    ASSERT_GE(waits.size(), 1u);
    EXPECT_EQ(waits[0].find("ph")->asString(), "X");

    // The request span proper: async begin/end plus the handler's
    // complete span, all named after the request type.
    const auto query = named(events, "query");
    std::set<std::string> phases;
    for (const auto &e : query)
        phases.insert(e.find("ph")->asString());
    EXPECT_TRUE(phases.count("b"));
    EXPECT_TRUE(phases.count("e"));
    EXPECT_TRUE(phases.count("X"));
}

TEST_F(SpanTest, RingOverwriteKeepsNewestDropsOldest)
{
    // Push well past capacity with a monotone index argument: the
    // dump must hold exactly the newest `capacity` events, and the
    // drop counter must equal the number of evicted (oldest) ones.
    constexpr std::size_t kCap = std::size_t{1} << 16;
    constexpr std::size_t kOver = 500;
    for (std::size_t i = 0; i < kCap + kOver; ++i)
        obs::span::instant("test", "spin", "i", i);
    EXPECT_EQ(obs::span::droppedEvents(), kOver);
    EXPECT_EQ(obs::span::recordedEvents(), kCap);

    const auto events = dumpedEvents();
    ASSERT_TRUE(events.isArray());
    double min_i = 1e18, max_i = -1.0;
    std::size_t n = 0;
    for (const auto &e : events.asArray()) {
        const auto *args = e.find("args");
        const auto *i = args ? args->find("i") : nullptr;
        if (!i)
            continue;
        min_i = std::min(min_i, i->asNumber());
        max_i = std::max(max_i, i->asNumber());
        ++n;
    }
    EXPECT_EQ(n, kCap);
    EXPECT_DOUBLE_EQ(min_i, static_cast<double>(kOver));
    EXPECT_DOUBLE_EQ(max_i, static_cast<double>(kCap + kOver - 1));
}

TEST_F(SpanTest, ConcurrentToggleAndSamplingWithWritersIsSafe)
{
    // Writers spin on instants/scopes and the request path while the
    // main thread flips enable and sampling; run under the tsan CI
    // label, this is the data-race check for the control plane.
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 3; ++t) {
        writers.emplace_back([&stop] {
            while (!stop.load(std::memory_order_relaxed)) {
                obs::span::instant("test", "w");
                obs::span::Scoped s("test", "s");
            }
        });
    }
    writers.emplace_back([&stop] {
        while (!stop.load(std::memory_order_relaxed)) {
            auto req = obs::span::beginRequest();
            if (!req)
                continue;
            obs::span::RequestScope bind(req);
            obs::span::instant("test", "r");
            obs::span::addRequestStage("wal_sync_us", 1);
            obs::span::finishRequest(req);
        }
    });
    for (int i = 0; i < 200; ++i) {
        obs::span::setEnabled(i % 2 == 0);
        obs::span::setSampling(
            {i % 3 == 0 ? 2u : 0u, i % 5 == 0 ? 1000ull : 0ull});
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    stop.store(true);
    for (auto &t : writers)
        t.join();

    obs::span::setSampling({0, 0});
    obs::span::setEnabled(true);
    obs::span::instant("test", "after");
    const auto events = dumpedEvents();
    EXPECT_GE(named(events, "after").size(), 1u);
}

TEST(TraceId, FormatAndParseRoundTrip)
{
    const auto id = obs::span::newTraceId();
    EXPECT_NE(id, 0u);
    const auto hex = obs::span::formatTraceId(id);
    EXPECT_EQ(hex.size(), 16u);
    std::uint64_t back = 0;
    EXPECT_TRUE(obs::span::parseTraceId(hex, back));
    EXPECT_EQ(back, id);

    EXPECT_TRUE(obs::span::parseTraceId("0xFFFF", back));
    EXPECT_EQ(back, 0xFFFFu);
    EXPECT_FALSE(obs::span::parseTraceId("", back));
    EXPECT_FALSE(obs::span::parseTraceId("0", back)); // zero reserved
    EXPECT_FALSE(obs::span::parseTraceId("xyz", back));
    EXPECT_FALSE(
        obs::span::parseTraceId("12345678901234567", back)); // >16
}

TEST_F(SpanTest, HeadSamplingCommitsOneInN)
{
    obs::span::setEnabled(false);
    obs::span::setSampling({4, 0});
    int committed = 0, sampled = 0;
    for (int i = 0; i < 8; ++i) {
        auto req = obs::span::beginRequest();
        if (!req)
            continue; // unsampled fast path: no object at all
        ++sampled;
        obs::span::RequestScope bind(req);
        obs::span::instant("test", "req_event");
        const auto s = obs::span::finishRequest(req);
        EXPECT_TRUE(s.traced);
        EXPECT_TRUE(s.headSampled);
        if (s.committed)
            ++committed;
    }
    // Exactly 2 of any 8 consecutive requests hit a 1-in-4 sampler.
    EXPECT_EQ(sampled, 2);
    EXPECT_EQ(committed, 2);
    const auto events = dumpedEvents();
    EXPECT_EQ(named(events, "req_event").size(), 2u);
}

TEST_F(SpanTest, ExplicitTraceIdForcesSampling)
{
    obs::span::setEnabled(false); // no head sampling, no slow gate
    std::uint64_t id = 0;
    ASSERT_TRUE(obs::span::parseTraceId("0xabcdef0123456789", id));
    auto req = obs::span::beginRequest(id);
    ASSERT_NE(req, nullptr);
    {
        obs::span::RequestScope bind(req);
        obs::span::instant("test", "forced");
        EXPECT_EQ(obs::span::currentTraceId(), id);
    }
    const auto s = obs::span::finishRequest(req);
    EXPECT_TRUE(s.headSampled);
    EXPECT_TRUE(s.committed);
    EXPECT_EQ(s.traceId, id);

    const auto forced = named(dumpedEvents(), "forced");
    ASSERT_EQ(forced.size(), 1u);
    const auto *args = forced[0].find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->find("trace"), nullptr);
    EXPECT_EQ(args->find("trace")->asString(),
              obs::span::formatTraceId(id));
}

TEST_F(SpanTest, SlowRequestIsPromotedWithoutHeadSampling)
{
    obs::span::setEnabled(false);
    obs::span::setSampling({0, 1}); // 1 us: everything is slow
    auto req = obs::span::beginRequest();
    ASSERT_NE(req, nullptr); // tail path keeps scratch alive
    {
        obs::span::RequestScope bind(req);
        obs::span::instant("test", "tail_event");
        obs::span::addRequestStage("wal_sync_us", 12);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const auto s = obs::span::finishRequest(req);
    EXPECT_TRUE(s.traced);
    EXPECT_FALSE(s.headSampled);
    EXPECT_TRUE(s.slow);
    EXPECT_TRUE(s.committed);
    bool saw_wal = false, saw_total = false;
    for (const auto &[k, v] : s.stages) {
        saw_wal |= std::string(k) == "wal_sync_us" && v == 12;
        saw_total |= std::string(k) == "total_us" && v > 0;
    }
    EXPECT_TRUE(saw_wal);
    EXPECT_TRUE(saw_total);
    EXPECT_EQ(named(dumpedEvents(), "tail_event").size(), 1u);
}

TEST_F(SpanTest, FastUnsampledRequestIsDiscarded)
{
    obs::span::setEnabled(false);
    obs::span::setSampling({0, 60'000'000}); // 60 s: nothing is slow
    auto req = obs::span::beginRequest();
    ASSERT_NE(req, nullptr);
    {
        obs::span::RequestScope bind(req);
        obs::span::instant("test", "discarded");
    }
    const auto s = obs::span::finishRequest(req);
    EXPECT_TRUE(s.traced);
    EXPECT_FALSE(s.headSampled);
    EXPECT_FALSE(s.slow);
    EXPECT_FALSE(s.committed);
    EXPECT_EQ(obs::span::recordedEvents(), 0u);
    // A second finish of the same request is inert.
    EXPECT_FALSE(obs::span::finishRequest(req).traced);
}

TEST_F(SpanTest, RequestScratchDropsNewestPastCapacity)
{
    obs::span::setEnabled(false);
    const auto cap = obs::span::requestScratchCapacity();
    auto req = obs::span::beginRequest(0x1234); // forced commit
    ASSERT_NE(req, nullptr);
    {
        obs::span::RequestScope bind(req);
        for (std::size_t i = 0; i < cap + 10; ++i)
            obs::span::instant("test", "flood", "i", i);
    }
    const auto s = obs::span::finishRequest(req);
    EXPECT_EQ(s.scratchDropped, 10u);

    // The kept side is the oldest: the request's start is the story.
    const auto flood = named(dumpedEvents(), "flood");
    ASSERT_EQ(flood.size(), cap);
    double max_i = -1.0;
    for (const auto &e : flood)
        max_i = std::max(max_i, e.find("args")->find("i")->asNumber());
    EXPECT_DOUBLE_EQ(max_i, static_cast<double>(cap - 1));
}

TEST(SlowLogTest, RenderJsonLinesRoundTrips)
{
    obs::SlowLog log(8);
    obs::SlowEntry e;
    e.unixMs = 1700000000123ull;
    e.traceId = 0xdeadbeefcafef00dull;
    e.totalUs = 1234;
    e.traceCommitted = true;
    e.verb = "query";
    e.request = "query g pagerank \"quoted\"\npart";
    e.stages = {{"queue_wait_us", 10}, {"total_us", 1234}};
    log.append(e);

    const auto text = log.renderJsonLines();
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
    std::string err;
    const auto doc =
        obs::json::parse(text.substr(0, text.size() - 1), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    ASSERT_TRUE(doc->isObject());
    EXPECT_DOUBLE_EQ(doc->find("ts_unix_ms")->asNumber(),
                     1700000000123.0);
    EXPECT_EQ(doc->find("trace")->asString(), "deadbeefcafef00d");
    EXPECT_DOUBLE_EQ(doc->find("total_us")->asNumber(), 1234.0);
    EXPECT_TRUE(doc->find("trace_committed")->asBool());
    EXPECT_EQ(doc->find("verb")->asString(), "query");
    // The embedded quote and newline survived escaping.
    EXPECT_NE(doc->find("request")->asString().find("\"quoted\"\npart"),
              std::string::npos);
    const auto *stages = doc->find("stages");
    ASSERT_NE(stages, nullptr);
    EXPECT_DOUBLE_EQ(stages->find("queue_wait_us")->asNumber(), 10.0);
    EXPECT_DOUBLE_EQ(stages->find("total_us")->asNumber(), 1234.0);
}

TEST(SlowLogTest, CapacityEvictsOldest)
{
    obs::SlowLog log(2);
    for (std::uint64_t i = 0; i < 5; ++i) {
        obs::SlowEntry e;
        e.totalUs = i;
        log.append(e);
    }
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.totalAppended(), 5u);
    const auto snap = log.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].totalUs, 3u);
    EXPECT_EQ(snap[1].totalUs, 4u);

    log.setCapacity(1);
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(log.snapshot()[0].totalUs, 4u);
    log.clear();
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.totalAppended(), 0u);
}

TEST_F(SpanTest, TracedServiceRequestFeedsSlowlogWithStages)
{
    obs::span::setEnabled(false);
    obs::span::setSampling({0, 1}); // 1 us: every request is slow
    obs::slowLog().clear();
    obs::slowLog().setCapacity(16);

    service::ServiceOptions opt;
    opt.pool.numThreads = 2;
    opt.system.machine.numCores = 2;
    opt.system.engine.numCores = 2;
    {
        service::GraphService svc(opt);
        svc.loadGraph("g", graph::ring(64));
        const auto r = service::runTracedCommandLine(
            svc, "query g pagerank Sequential 0");
        EXPECT_EQ(r.output.rfind("ok", 0), 0u) << r.output;
        svc.drain();
    }

    // Exactly one request ran over the threshold -> exactly one entry.
    ASSERT_EQ(obs::slowLog().size(), 1u);
    const auto snap = obs::slowLog().snapshot();
    EXPECT_EQ(snap[0].verb, "query");
    EXPECT_NE(snap[0].traceId, 0u);
    EXPECT_GT(snap[0].totalUs, 0u);
    EXPECT_TRUE(snap[0].traceCommitted); // slow promotes the spans
    bool saw_queue = false, saw_total = false;
    for (const auto &[k, v] : snap[0].stages) {
        saw_queue |= k == "queue_wait_us";
        saw_total |= k == "total_us" && v > 0;
    }
    EXPECT_TRUE(saw_queue);
    EXPECT_TRUE(saw_total);

    // The promoted spans reached the dump under the logged trace id.
    const auto dump = obs::span::dumpChromeJson();
    EXPECT_NE(dump.find(obs::span::formatTraceId(snap[0].traceId)),
              std::string::npos);
    obs::slowLog().clear();
}

} // namespace
} // namespace depgraph
