/**
 * @file
 * Failure-injection and pathological-input tests: non-convergent
 * algorithms must terminate with converged=false instead of hanging,
 * degenerate graphs must not break any engine, and user errors must
 * be fatal with clear messages.
 */

#include <gtest/gtest.h>

#include "core/depgraph_system.hh"
#include "gas/accum.hh"
#include "gas/reference.hh"
#include "graph/builder.hh"
#include "graph/generators.hh"

namespace depgraph
{
namespace
{

using graph::Builder;
using graph::Graph;

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.machine.numCores = 4;
    cfg.machine.l3TotalBytes = 2 * 1024 * 1024;
    cfg.machine.l3Banks = 4;
    cfg.engine.numCores = 4;
    return cfg;
}

TEST(FailureModes, DivergentAlgorithmHitsRoundCapGracefully)
{
    // Katz with beta far above 1/lambda_max diverges; every engine
    // must stop at maxRounds and report non-convergence.
    const Graph g = graph::powerLaw(200, 2.0, 8.0, {.seed = 601});
    gas::Katz bad(/*beta=*/0.9, /*eps=*/1e-5);

    auto cfg = smallConfig();
    cfg.engine.maxRounds = 30;
    DepGraphSystem sys(cfg);
    for (auto s : {Solution::Ligra, Solution::LigraO,
                   Solution::DepGraphH}) {
        const auto r = sys.run(g, bad, s);
        EXPECT_FALSE(r.metrics.converged) << solutionName(s);
        EXPECT_LE(r.metrics.rounds, 30u) << solutionName(s);
    }
}

TEST(FailureModes, ReferenceReportsNonConvergence)
{
    const Graph g = graph::powerLaw(100, 2.0, 6.0, {.seed = 602});
    gas::Katz bad(0.9, 1e-5);
    const auto r = gas::runReference(g, bad, /*max_rounds=*/20);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.rounds, 20u);
}

TEST(FailureModes, EdgelessGraphConvergesImmediately)
{
    Builder b(10);
    const Graph g = b.build();
    DepGraphSystem sys(smallConfig());
    for (auto s : allSolutions()) {
        const auto r = sys.run(g, "sssp", s);
        EXPECT_TRUE(r.metrics.converged) << solutionName(s);
        EXPECT_DOUBLE_EQ(r.states[0], 0.0);
        for (VertexId v = 1; v < 10; ++v)
            EXPECT_EQ(r.states[v], kInfinity) << solutionName(s);
    }
}

TEST(FailureModes, SingleVertexGraph)
{
    Builder b(1);
    const Graph g = b.build();
    DepGraphSystem sys(smallConfig());
    const auto r = sys.run(g, "pagerank", Solution::DepGraphH);
    EXPECT_TRUE(r.metrics.converged);
    EXPECT_NEAR(r.states[0], 0.15, 1e-9);
}

TEST(FailureModes, SelfLoopHeavyMultigraph)
{
    // Self loops and parallel edges everywhere; engines must converge
    // to the reference fixpoint regardless.
    Builder b(6);
    for (VertexId v = 0; v < 6; ++v) {
        b.addEdge(v, v, 1.0);
        b.addEdge(v, (v + 1) % 6, 2.0);
        b.addEdge(v, (v + 1) % 6, 2.0);
    }
    const Graph g = b.build();
    const auto gold_alg = gas::makeAlgorithm("sssp");
    const auto gold = gas::runReference(g, *gold_alg);
    DepGraphSystem sys(smallConfig());
    for (auto s : {Solution::LigraO, Solution::DepGraphH}) {
        const auto r = sys.run(g, "sssp", s);
        EXPECT_LE(gas::maxStateDifference(r.states, gold.states),
                  1e-9)
            << solutionName(s);
    }
}

TEST(FailureModes, TwoVertexCycleAllEngines)
{
    Builder b(2);
    b.addEdge(0, 1, 1.0);
    b.addEdge(1, 0, 1.0);
    const Graph g = b.build();
    DepGraphSystem sys(smallConfig());
    for (auto s : allSolutions()) {
        const auto r = sys.run(g, "wcc", s);
        EXPECT_DOUBLE_EQ(r.states[0], 1.0) << solutionName(s);
        EXPECT_DOUBLE_EQ(r.states[1], 1.0) << solutionName(s);
    }
}

TEST(FailureModes, MoreEngineCoresThanMachineCoresIsClamped)
{
    const Graph g = graph::powerLaw(200, 2.0, 5.0, {.seed = 603});
    SystemConfig cfg = smallConfig();
    cfg.engine.numCores = 64; // machine only has 4
    DepGraphSystem sys(cfg);
    const auto r = sys.run(g, "pagerank", Solution::DepGraphH);
    EXPECT_TRUE(r.metrics.converged);
    EXPECT_EQ(r.metrics.coresUsed, 4u);
}

TEST(FailureModes, UnsupportedAccumulatorIsRejected)
{
    class Weird : public gas::PageRank
    {
      public:
        Value
        accumOp(Value a, Value b) const override
        {
            return a * b; // 1*1 = 1 but order-independence check ok...
        }
    };
    // Multiplication probes as 1 at (1,1) but fails the min/max
    // disambiguation (1,2)/(2,1) -> 2,2 would look like max; use an
    // asymmetric op to be rejected outright.
    class Asym : public gas::PageRank
    {
      public:
        Value
        accumOp(Value a, Value b) const override
        {
            return a - b;
        }
    };
    EXPECT_FALSE(gas::detectAccumKind(Asym{}).has_value());
    // Multiplication masquerades as max under the probe -- exactly why
    // the paper also lets users disable the transformation manually.
    EXPECT_EQ(gas::detectAccumKind(Weird{}), gas::AccumKind::Max);
}

TEST(FailureModes, ZeroLambdaDisablesHubsButStillRuns)
{
    const Graph g = graph::powerLaw(300, 2.0, 6.0, {.seed = 604});
    auto cfg = smallConfig();
    cfg.engine.hub.lambda = 0.0;
    DepGraphSystem sys(cfg);
    const auto r = sys.run(g, "sssp", Solution::DepGraphH);
    EXPECT_TRUE(r.metrics.converged);
    EXPECT_EQ(r.metrics.shortcutsApplied, 0u);
}

TEST(FailureModesDeath, BadConfigIsFatal)
{
    const Graph g = graph::path(4);
    EXPECT_DEATH(
        {
            sim::MachineParams p;
            p.numCores = 0;
            sim::Machine m(p);
        },
        "at least one core");
    EXPECT_DEATH(
        {
            graph::HubParams hp;
            hp.beta = 0.0;
            graph::HubSet hubs(g, hp);
        },
        "beta");
}

} // namespace
} // namespace depgraph
