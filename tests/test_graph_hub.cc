/**
 * @file
 * Tests for hub-vertex detection (lambda/beta sampling, Definition 1).
 */

#include <gtest/gtest.h>

#include "graph/generators.hh"
#include "graph/hub.hh"

namespace depgraph::graph
{
namespace
{

TEST(HubSet, StarHubIsDetected)
{
    const Graph g = star(200);
    HubParams p;
    p.lambda = 0.01;
    const HubSet hubs(g, p);
    EXPECT_TRUE(hubs.isHub(0));
}

TEST(HubSet, HubsAreHighDegree)
{
    const Graph g = powerLaw(4000, 2.0, 10.0, {.seed = 31});
    HubParams p;
    p.lambda = 0.005;
    const HubSet hubs(g, p);
    ASSERT_GT(hubs.numHubs(), 0u);
    for (auto h : hubs.hubList())
        EXPECT_GE(g.outDegree(h), hubs.threshold());
    // Non-hubs are below threshold.
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (!hubs.isHub(v)) {
            EXPECT_LT(g.outDegree(v), hubs.threshold());
        }
    }
}

TEST(HubSet, LambdaControlsHubCount)
{
    const Graph g = powerLaw(4000, 2.0, 10.0, {.seed = 32});
    HubParams small, large;
    small.lambda = 0.002;
    large.lambda = 0.05;
    const HubSet hs(g, small);
    const HubSet hl(g, large);
    EXPECT_LT(hs.numHubs(), hl.numHubs());
}

TEST(HubSet, LambdaZeroDisablesHubs)
{
    const Graph g = powerLaw(1000, 2.0, 8.0, {.seed = 33});
    HubParams p;
    p.lambda = 0.0;
    const HubSet hubs(g, p);
    EXPECT_EQ(hubs.numHubs(), 0u);
}

TEST(HubSet, HubFractionIsNearLambda)
{
    const Graph g = powerLaw(20000, 2.0, 10.0, {.seed = 34});
    HubParams p;
    p.lambda = 0.01;
    p.beta = 0.05; // bigger sample for a tighter estimate
    const HubSet hubs(g, p);
    const double frac = static_cast<double>(hubs.numHubs())
        / static_cast<double>(g.numVertices());
    // Sampling-based threshold: accept a generous band around lambda.
    EXPECT_GT(frac, 0.001);
    EXPECT_LT(frac, 0.08);
}

TEST(HubSet, DeterministicForSeed)
{
    const Graph g = powerLaw(2000, 2.0, 8.0, {.seed = 35});
    HubParams p;
    p.seed = 9;
    const HubSet a(g, p);
    const HubSet b(g, p);
    EXPECT_EQ(a.threshold(), b.threshold());
    EXPECT_EQ(a.hubList(), b.hubList());
}

TEST(HubSet, BitmapMatchesList)
{
    const Graph g = powerLaw(2000, 2.0, 8.0, {.seed = 36});
    const HubSet hubs(g, HubParams{});
    EXPECT_EQ(hubs.bitmap().count(), hubs.numHubs());
    for (auto h : hubs.hubList())
        EXPECT_TRUE(hubs.bitmap().test(h));
}

} // namespace
} // namespace depgraph::graph
