/**
 * @file
 * LineFramer and the minimal HTTP parser: the two codecs between
 * untrusted sockets and the protocol layer.
 */

#include <gtest/gtest.h>

#include "net/framing.hh"
#include "net/http.hh"

namespace depgraph::net
{
namespace
{

TEST(LineFramer, ReassemblesPartialReads)
{
    LineFramer f;
    std::string line;
    EXPECT_TRUE(f.append("que"));
    EXPECT_FALSE(f.next(line));
    EXPECT_TRUE(f.append("ry g ss"));
    EXPECT_FALSE(f.next(line));
    EXPECT_TRUE(f.append("sp\n"));
    ASSERT_TRUE(f.next(line));
    EXPECT_EQ(line, "query g sssp");
    EXPECT_FALSE(f.next(line));
    EXPECT_EQ(f.bufferedBytes(), 0u);
}

TEST(LineFramer, SplitsPipelinedLinesFromOneRead)
{
    LineFramer f;
    EXPECT_TRUE(f.append("load g ring 8\nquery g\nflu"));
    std::string line;
    ASSERT_TRUE(f.next(line));
    EXPECT_EQ(line, "load g ring 8");
    ASSERT_TRUE(f.next(line));
    EXPECT_EQ(line, "query g");
    EXPECT_FALSE(f.next(line));
    EXPECT_EQ(f.tailBytes(), 3u); // "flu" awaits its newline
}

TEST(LineFramer, StripsCrlfAndHandlesBlankLines)
{
    LineFramer f;
    EXPECT_TRUE(f.append("stats\r\n\r\n\n"));
    std::string line;
    ASSERT_TRUE(f.next(line));
    EXPECT_EQ(line, "stats");
    ASSERT_TRUE(f.next(line));
    EXPECT_EQ(line, "");
    ASSERT_TRUE(f.next(line));
    EXPECT_EQ(line, "");
}

TEST(LineFramer, OverflowingUnterminatedTailReportsFalse)
{
    LineFramer f(16);
    EXPECT_TRUE(f.append(std::string(16, 'x')));
    EXPECT_FALSE(f.append("y")); // 17 bytes, no newline: hostile
    // Complete lines buffered before the overflow stay retrievable.
    LineFramer g(8);
    EXPECT_TRUE(g.append("ok\n"));
    EXPECT_FALSE(g.append(std::string(9, 'z')));
    std::string line;
    ASSERT_TRUE(g.next(line));
    EXPECT_EQ(line, "ok");
}

TEST(LineFramer, ConsumeDropsPrefixForHttpHandoff)
{
    LineFramer f;
    EXPECT_TRUE(f.append("GET /metrics HTTP/1.1\r\n\r\nquery g\n"));
    f.consume(25); // the parsed HTTP request
    std::string line;
    ASSERT_TRUE(f.next(line));
    EXPECT_EQ(line, "query g");
}

TEST(HttpParse, RequestLineHeadersAndKeepAlive)
{
    HttpRequest req;
    std::size_t consumed = 0;
    const std::string in = "GET /metrics HTTP/1.1\r\n"
                           "Host: localhost\r\n"
                           "User-Agent: Prometheus/2.0\r\n"
                           "\r\n";
    EXPECT_EQ(parseHttpRequest(in, req, consumed), HttpParse::Ok);
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.target, "/metrics");
    EXPECT_TRUE(req.keepAlive);
    EXPECT_EQ(consumed, in.size());
}

TEST(HttpParse, PartialHeaderBlockNeedsMore)
{
    HttpRequest req;
    std::size_t consumed = 0;
    EXPECT_EQ(parseHttpRequest("GET /healthz HTTP/1.1\r\nHost: x",
                               req, consumed),
              HttpParse::NeedMore);
}

TEST(HttpParse, ConnectionCloseAndHttp10)
{
    HttpRequest req;
    std::size_t consumed = 0;
    EXPECT_EQ(parseHttpRequest("GET / HTTP/1.1\r\n"
                               "Connection: close\r\n\r\n",
                               req, consumed),
              HttpParse::Ok);
    EXPECT_FALSE(req.keepAlive);
    EXPECT_EQ(parseHttpRequest("GET / HTTP/1.0\r\n\r\n", req,
                               consumed),
              HttpParse::Ok);
    EXPECT_FALSE(req.keepAlive); // 1.0 defaults to close
}

TEST(HttpParse, RejectsBodiesAndGarbage)
{
    HttpRequest req;
    std::size_t consumed = 0;
    EXPECT_EQ(parseHttpRequest("POST /metrics HTTP/1.1\r\n"
                               "Content-Length: 5\r\n\r\nhello",
                               req, consumed),
              HttpParse::Bad);
    EXPECT_EQ(parseHttpRequest("NONSENSE\r\n\r\n", req, consumed),
              HttpParse::Bad);
}

TEST(HttpParse, LooksLikeHttpDisambiguatesProtocols)
{
    // HTTP methods are uppercase; every protocol verb is lowercase.
    EXPECT_TRUE(looksLikeHttp("GET /metrics HTTP/1.1"));
    EXPECT_TRUE(looksLikeHttp("HEAD /healthz"));
    EXPECT_FALSE(looksLikeHttp("query g pagerank"));
    EXPECT_FALSE(looksLikeHttp("delete g 0 1"));
    EXPECT_FALSE(looksLikeHttp("GE")); // undecidable prefix: not yet
}

TEST(HttpResponse, SerializesStatusHeadersAndBody)
{
    const auto r = httpResponse(200, "text/plain", "ok\n", true);
    EXPECT_EQ(r.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << r;
    EXPECT_NE(r.find("Content-Type: text/plain\r\n"),
              std::string::npos);
    EXPECT_NE(r.find("Content-Length: 3\r\n"), std::string::npos);
    EXPECT_NE(r.find("Connection: keep-alive\r\n"),
              std::string::npos);
    EXPECT_EQ(r.substr(r.size() - 7), "\r\n\r\nok\n");

    const auto nf = httpResponse(404, "text/plain", "no\n", false);
    EXPECT_EQ(nf.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u) << nf;
    EXPECT_NE(nf.find("Connection: close\r\n"), std::string::npos);
}

} // namespace
} // namespace depgraph::net
