/**
 * @file
 * net::Server end-to-end over real loopback sockets: framing under
 * adversarial read patterns, concurrency, HTTP endpoints, admission
 * shedding, and the graceful-drain guarantee (an acknowledged write is
 * never lost, an unacknowledged one is never half-applied).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/failpoint.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "obs/slowlog.hh"
#include "obs/span.hh"
#include "service/protocol.hh"
#include "service/service.hh"

namespace depgraph::net
{
namespace
{

using service::GraphService;
using service::ServiceOptions;
using namespace std::chrono_literals;

ServiceOptions
smallService(unsigned workers = 2)
{
    ServiceOptions o;
    o.pool.numThreads = workers;
    o.pool.queueCapacity = 256;
    o.batcher.maxPendingEdges = 1000; // flush explicitly in tests
    o.batcher.solution = Solution::Sequential;
    return o;
}

Client
connectTo(const Server &srv)
{
    Client c;
    EXPECT_TRUE(c.connect("127.0.0.1", srv.port(), 30000ms))
        << c.error();
    return c;
}

/** Send one line, read one reply line. */
std::string
roundTrip(Client &c, const std::string &line)
{
    EXPECT_TRUE(c.sendLine(line)) << c.error();
    std::string reply;
    EXPECT_TRUE(c.recvLine(reply)) << c.error();
    return reply;
}

TEST(NetServer, StartsOnEphemeralPortAndStops)
{
    GraphService svc(smallService());
    Server srv(svc, {});
    ASSERT_TRUE(srv.start()) << srv.lastError();
    EXPECT_NE(srv.port(), 0);
    EXPECT_TRUE(srv.running());
    srv.stop();
    EXPECT_FALSE(srv.running());
}

TEST(NetServer, ServesTheLineProtocolOverTcp)
{
    GraphService svc(smallService());
    Server srv(svc, {});
    ASSERT_TRUE(srv.start()) << srv.lastError();
    auto c = connectTo(srv);

    EXPECT_EQ(roundTrip(c, "load g ring 64"), "ok v=1 graph=g");
    EXPECT_EQ(roundTrip(c, "query g sssp Sequential 0")
                  .rfind("ok v=1 algo=sssp", 0),
              0u);
    EXPECT_EQ(roundTrip(c, "bogus"),
              "err 400 unknown command 'bogus' (try help)");
    EXPECT_EQ(roundTrip(c, "query nope").rfind("err 404", 0), 0u);

    // quit closes the connection from the server side.
    EXPECT_TRUE(c.sendLine("quit"));
    std::string bye;
    EXPECT_TRUE(c.recvLine(bye));
    EXPECT_EQ(bye, "bye");
    EXPECT_FALSE(c.recvLine(bye));
    EXPECT_TRUE(c.eof());
}

TEST(NetServer, ReassemblesPartialWritesAndPipelines)
{
    GraphService svc(smallService());
    Server srv(svc, {});
    ASSERT_TRUE(srv.start()) << srv.lastError();
    auto c = connectTo(srv);
    ASSERT_EQ(roundTrip(c, "load g ring 32"), "ok v=1 graph=g");

    // One request trickled byte-group by byte-group.
    const std::string req = "query g sssp Sequential 0\n";
    for (std::size_t i = 0; i < req.size(); i += 3) {
        ASSERT_TRUE(c.sendAll(req.substr(i, 3)));
        std::this_thread::sleep_for(1ms);
    }
    std::string reply;
    ASSERT_TRUE(c.recvLine(reply));
    EXPECT_EQ(reply.rfind("ok v=1", 0), 0u) << reply;

    // Five pipelined requests in a single write: five replies, in
    // order (per-connection ordering is part of the protocol).
    ASSERT_TRUE(c.sendAll("graphs\nupdate g 0 2\nflush g\ngraphs\n"
                          "query nope\n"));
    ASSERT_TRUE(c.recvLine(reply));
    EXPECT_EQ(reply, "ok g@v1");
    ASSERT_TRUE(c.recvLine(reply));
    EXPECT_EQ(reply.rfind("ok enqueued=1", 0), 0u) << reply;
    ASSERT_TRUE(c.recvLine(reply));
    EXPECT_EQ(reply, "ok applied v=2");
    ASSERT_TRUE(c.recvLine(reply));
    EXPECT_EQ(reply, "ok g@v2");
    ASSERT_TRUE(c.recvLine(reply));
    EXPECT_EQ(reply.rfind("err 404", 0), 0u) << reply;
}

TEST(NetServer, ConcurrentClientsSeeNoProtocolErrors)
{
    GraphService svc(smallService(4));
    Server srv(svc, {});
    ASSERT_TRUE(srv.start()) << srv.lastError();
    {
        auto warm = connectTo(srv);
        ASSERT_EQ(roundTrip(warm, "load g ring 64"), "ok v=1 graph=g");
        ASSERT_EQ(roundTrip(warm, "query g sssp Sequential 0")
                      .rfind("ok", 0),
                  0u);
    }

    constexpr unsigned kClients = 8;
    constexpr unsigned kRequests = 25;
    std::atomic<unsigned> ok{0}, bad{0};
    std::vector<std::thread> clients;
    for (unsigned t = 0; t < kClients; ++t) {
        clients.emplace_back([&] {
            Client c;
            if (!c.connect("127.0.0.1", srv.port(), 30000ms)) {
                bad.fetch_add(kRequests);
                return;
            }
            for (unsigned i = 0; i < kRequests; ++i) {
                std::string reply;
                if (c.sendLine("query g sssp Sequential 0")
                    && c.recvLine(reply)
                    && reply.rfind("ok v=1 algo=sssp", 0) == 0)
                    ok.fetch_add(1);
                else
                    bad.fetch_add(1);
            }
        });
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(ok.load(), kClients * kRequests);
    EXPECT_EQ(bad.load(), 0u);
}

TEST(NetServer, OversizedLineGets413ThenClose)
{
    GraphService svc(smallService());
    ServerOptions opt;
    opt.maxLineBytes = 64;
    Server srv(svc, opt);
    ASSERT_TRUE(srv.start()) << srv.lastError();
    auto c = connectTo(srv);

    ASSERT_TRUE(c.sendAll(std::string(200, 'x'))); // never a newline
    std::string reply;
    ASSERT_TRUE(c.recvLine(reply)) << c.error();
    EXPECT_EQ(reply, "err 413 line too long (max 64 bytes)");
    EXPECT_FALSE(c.recvLine(reply));
    EXPECT_TRUE(c.eof());
}

TEST(NetServer, MidRequestDisconnectDoesNotHurtOthers)
{
    GraphService svc(smallService());
    Server srv(svc, {});
    ASSERT_TRUE(srv.start()) << srv.lastError();
    {
        auto doomed = connectTo(srv);
        ASSERT_EQ(roundTrip(doomed, "load g ring 64"),
                  "ok v=1 graph=g");
        // Request in flight, then vanish without reading the reply.
        ASSERT_TRUE(doomed.sendLine("query g sssp Sequential 0"));
        doomed.close();
    }
    // The server must shrug it off and keep serving.
    auto c = connectTo(srv);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(roundTrip(c, "query g sssp Sequential 0")
                      .rfind("ok v=1", 0),
                  0u);
}

TEST(NetServer, HttpHealthzMetricsAnd404)
{
    GraphService svc(smallService());
    Server srv(svc, {});
    ASSERT_TRUE(srv.start()) << srv.lastError();

    {
        // Keep-alive: two requests over one connection, line by line.
        auto c = connectTo(srv);
        ASSERT_TRUE(c.sendAll("GET /healthz HTTP/1.1\r\n\r\n"));
        std::string line;
        ASSERT_TRUE(c.recvLine(line));
        EXPECT_EQ(line, "HTTP/1.1 200 OK");
        while (c.recvLine(line) && !line.empty())
            ; // skip headers
        ASSERT_TRUE(c.recvLine(line));
        EXPECT_EQ(line, "ok");

        ASSERT_TRUE(c.sendAll("GET /healthz HTTP/1.1\r\n\r\n"));
        ASSERT_TRUE(c.recvLine(line));
        EXPECT_EQ(line, "HTTP/1.1 200 OK");
    }
    {
        // /metrics renders the registry, including dg_net_* families.
        auto c = connectTo(srv);
        ASSERT_TRUE(c.sendAll(
            "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n"));
        const auto body = c.recvAll();
        EXPECT_NE(body.find("HTTP/1.1 200 OK"), std::string::npos);
        EXPECT_NE(body.find("text/plain; version=0.0.4"),
                  std::string::npos);
        EXPECT_NE(body.find("dg_net_connections_accepted_total"),
                  std::string::npos);
        EXPECT_NE(body.find("dg_service_queries_total"),
                  std::string::npos);
    }
    {
        auto c = connectTo(srv);
        ASSERT_TRUE(c.sendAll(
            "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n"));
        EXPECT_NE(c.recvAll().find("HTTP/1.1 404 Not Found"),
                  std::string::npos);
    }
    {
        auto c = connectTo(srv);
        ASSERT_TRUE(c.sendAll(
            "POST /metrics HTTP/1.1\r\nConnection: close\r\n\r\n"));
        EXPECT_NE(c.recvAll().find("HTTP/1.1 405"), std::string::npos);
    }
}

TEST(NetServer, TraceTokenIsTransparentAndBadIdsGet400)
{
    obs::span::clear();
    obs::span::setSampling({0, 0});
    GraphService svc(smallService());
    Server srv(svc, {});
    ASSERT_TRUE(srv.start()) << srv.lastError();
    auto c = connectTo(srv);
    ASSERT_EQ(roundTrip(c, "load g ring 64"), "ok v=1 graph=g");
    // Warm the fixpoint cache so both compared replies are hits.
    ASSERT_EQ(roundTrip(c, "query g sssp Sequential 0").rfind("ok", 0),
              0u);

    // The token is stripped before dispatch: the reply is identical
    // to the bare command's.
    EXPECT_EQ(roundTrip(c, "trace=deadbeef1234 query g sssp "
                           "Sequential 0"),
              roundTrip(c, "query g sssp Sequential 0"));
    // A malformed id is refused, not silently ignored.
    EXPECT_EQ(roundTrip(c, "trace=nothex query g sssp Sequential 0"),
              "err 400 bad trace id (want hex64)");
    EXPECT_EQ(roundTrip(c, "trace= query g sssp Sequential 0"),
              "err 400 bad trace id (want hex64)");

    // A client-supplied id force-samples: the request's spans were
    // committed and carry the (zero-padded) id.
    EXPECT_NE(obs::span::dumpChromeJson().find("0000deadbeef1234"),
              std::string::npos);
    obs::span::clear();
}

TEST(NetServer, SlowlogVerbAndHttpEndpoint)
{
    obs::slowLog().clear();
    obs::slowLog().setCapacity(16);
    obs::span::clear();
    obs::span::setSampling({0, 1}); // 1 us threshold: all slow
    {
        GraphService svc(smallService());
        Server srv(svc, {});
        ASSERT_TRUE(srv.start()) << srv.lastError();
        auto c = connectTo(srv);
        ASSERT_EQ(roundTrip(c, "load g ring 64"), "ok v=1 graph=g");
        ASSERT_EQ(roundTrip(c, "query g sssp Sequential 0")
                      .rfind("ok", 0),
                  0u);
        // Stop logging so the reads below don't append entries.
        obs::span::setSampling({0, 0});

        const auto head = roundTrip(c, "slowlog");
        ASSERT_EQ(head.rfind("ok entries=", 0), 0u) << head;
        const auto n =
            std::stoul(head.substr(std::string("ok entries=").size()));
        ASSERT_EQ(n, 2u) << head; // load + query, exactly once each
        for (std::size_t i = 0; i < n; ++i) {
            std::string line;
            ASSERT_TRUE(c.recvLine(line));
            EXPECT_NE(line.find("\"total_us\""), std::string::npos)
                << line;
            EXPECT_NE(line.find("\"stages\""), std::string::npos)
                << line;
            EXPECT_NE(line.find("\"trace\""), std::string::npos)
                << line;
        }

        // Same data over HTTP, as newline-delimited JSON.
        auto h = connectTo(srv);
        ASSERT_TRUE(h.sendAll("GET /debug/slowlog HTTP/1.1\r\n"
                              "Connection: close\r\n\r\n"));
        const auto body = h.recvAll();
        EXPECT_NE(body.find("HTTP/1.1 200 OK"), std::string::npos);
        EXPECT_NE(body.find("application/x-ndjson"),
                  std::string::npos);
        EXPECT_NE(body.find("\"total_us\""), std::string::npos);

        EXPECT_EQ(roundTrip(c, "slowlog clear"), "ok cleared");
        EXPECT_EQ(roundTrip(c, "slowlog").rfind("ok entries=0", 0),
                  0u);
    }
    obs::span::setSampling({0, 0});
    obs::slowLog().clear();
    obs::span::clear();
}

TEST(NetServer, HttpMetricsHonorsTraceHeader)
{
    obs::span::clear();
    obs::span::setSampling({0, 0});
    GraphService svc(smallService());
    Server srv(svc, {});
    ASSERT_TRUE(srv.start()) << srv.lastError();

    auto c = connectTo(srv);
    ASSERT_TRUE(c.sendAll("GET /metrics HTTP/1.1\r\n"
                          "X-DG-Trace: 0xfeedfacecafe\r\n"
                          "Connection: close\r\n\r\n"));
    const auto body = c.recvAll();
    EXPECT_NE(body.find("HTTP/1.1 200 OK"), std::string::npos);
    // The stats refresh publishes the build-info gauge.
    EXPECT_NE(body.find("dg_build_info{"), std::string::npos);
    // The explicit id force-sampled the render's spans.
    EXPECT_NE(obs::span::dumpChromeJson().find("0000feedfacecafe"),
              std::string::npos);
    obs::span::clear();
}

TEST(NetServer, SocketRepliesMatchInProcessBitwise)
{
    // The acceptance bar: query results over the network are
    // byte-for-byte identical to the in-process path. Run the same
    // deterministic script against two identically configured
    // services, one via loopback TCP, one via runCommandLine().
    const std::vector<std::string> script = {
        "load g powerlaw 500 2.0 6 42",
        "query g pagerank Sequential 2",
        "update g 1 2 0.5",
        "query g pagerank Sequential 2",
        "flush g",
        "query g pagerank Sequential 2",
        "del g 1 2 0.5",
        "flush g",
        "query g sssp Sequential 3",
        "graphs",
        "query nope",
        "update g zero 1",
    };

    GraphService reference(smallService());
    GraphService served(smallService());
    Server srv(served, {});
    ASSERT_TRUE(srv.start()) << srv.lastError();
    auto c = connectTo(srv);

    for (const auto &cmd : script) {
        const auto expect =
            service::runCommandLine(reference, cmd).output;
        EXPECT_EQ(roundTrip(c, cmd), expect) << cmd;
    }
}

TEST(NetServer, DrainKeepsAcknowledgedWritesDropsTheRest)
{
    // One worker, occupied by a deliberately slow query: a pipelined
    // burst of updates stacks up behind it, drain begins mid-burst,
    // and the invariant under test is exact -- every update the client
    // saw acknowledged is in the final graph, every one answered
    // err 503 is not.
    GraphService svc(smallService(1));
    Server srv(svc, {});
    ASSERT_TRUE(srv.start()) << srv.lastError();

    auto setup = connectTo(srv);
    ASSERT_EQ(roundTrip(setup, "load g ring 64"), "ok v=1 graph=g");
    ASSERT_EQ(roundTrip(setup, "load big powerlaw 3000 2.0 8 1")
                  .rfind("ok", 0),
              0u);

    // Occupy the single worker.
    Client blocker = connectTo(srv);
    ASSERT_TRUE(blocker.sendLine("query big pagerank Sequential 0"));

    // Burst 40 distinct new edges; they queue behind the blocker.
    Client writer = connectTo(srv);
    std::string burst;
    for (int i = 0; i < 40; ++i)
        burst += "update g " + std::to_string(i) + " "
            + std::to_string((i + 2) % 64) + "\n";
    ASSERT_TRUE(writer.sendAll(burst));

    std::this_thread::sleep_for(50ms);
    srv.beginDrain();

    std::size_t acked = 0, refused = 0;
    std::string reply;
    while (writer.recvLine(reply)) {
        if (reply.rfind("ok enqueued=1", 0) == 0)
            ++acked;
        else if (reply == "err 503 shutting down")
            ++refused;
        else
            ADD_FAILURE() << "unexpected reply: " << reply;
    }
    EXPECT_TRUE(srv.drainAndStop(30000ms));

    EXPECT_EQ(acked + refused, 40u);
    EXPECT_GT(refused, 0u) << "drain never interrupted the burst";
    // Pending batches were flushed during drain: the final graph holds
    // exactly the acknowledged edges, nothing more, nothing less.
    const auto snap = svc.store().get("g");
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->graph->numEdges(), 64u + acked);
}

TEST(NetServer, AdmissionShedsWithRetryAfterUnderOverload)
{
    GraphService svc(smallService(1));
    ServerOptions opt;
    opt.admission.maxQueueWaitP99Micros = 1;
    opt.admission.minWindowSamples = 1;
    opt.admission.retryAfter = 40ms;
    opt.admission.window = 200ms;
    Server srv(svc, opt);
    ASSERT_TRUE(srv.start()) << srv.lastError();

    auto setup = connectTo(srv);
    ASSERT_EQ(roundTrip(setup, "load g ring 64"), "ok v=1 graph=g");
    ASSERT_EQ(roundTrip(setup, "load big powerlaw 3000 2.0 8 1")
                  .rfind("ok", 0),
              0u);
    ASSERT_EQ(roundTrip(setup, "query g sssp Sequential 0")
                  .rfind("ok", 0),
              0u); // warm the fixpoint cache

    // Saturate the single worker, then issue queries that must wait
    // behind it: the first records a queue wait far over the 1us
    // ceiling, so a later check sheds with the configured hint.
    Client blocker = connectTo(srv);
    ASSERT_TRUE(blocker.sendLine("query big pagerank Sequential 0"));
    std::this_thread::sleep_for(20ms);

    auto c = connectTo(srv);
    bool shed_seen = false;
    for (int i = 0; i < 50 && !shed_seen; ++i) {
        const auto reply = roundTrip(c, "query g sssp Sequential 0");
        if (reply.rfind("err 429 overloaded retry-after=40", 0) == 0)
            shed_seen = true;
        else
            ASSERT_EQ(reply.rfind("ok", 0), 0u) << reply;
    }
    EXPECT_TRUE(shed_seen);
    EXPECT_GE(srv.admission().shedTotal(), 1u);

    // Control verbs are never shed, even mid-overload.
    EXPECT_EQ(roundTrip(c, "graphs").rfind("ok", 0), 0u);
}

TEST(NetServer, RejectsConnectionsBeyondTheCap)
{
    GraphService svc(smallService());
    ServerOptions opt;
    opt.maxConnections = 2;
    Server srv(svc, opt);
    ASSERT_TRUE(srv.start()) << srv.lastError();

    auto a = connectTo(srv);
    auto b = connectTo(srv);
    ASSERT_EQ(roundTrip(a, "help").empty(), false);

    // The third connection is accepted by the kernel but closed by the
    // server before serving anything. Don't send on it: bytes racing
    // the server's close would turn the FIN into an RST and make the
    // failure mode (reset vs clean EOF) timing-dependent.
    Client c;
    ASSERT_TRUE(c.connect("127.0.0.1", srv.port(), 5000ms));
    std::string reply;
    EXPECT_FALSE(c.recvLine(reply));
    EXPECT_TRUE(c.eof());
    EXPECT_TRUE(reply.empty());
}

TEST(NetServer, LineRequestsAfterDrainGet503InFlightCompletes)
{
    // A delay failpoint pins one dispatched line in flight while
    // drain begins; the pipelined follow-up must be refused with 503
    // and must NOT reach the graph.
    failpoint::clearAll();
    GraphService svc(smallService());
    Server srv(svc, {});
    ASSERT_TRUE(srv.start()) << srv.lastError();

    auto setup = connectTo(srv);
    ASSERT_EQ(roundTrip(setup, "load g ring 64"), "ok v=1 graph=g");
    setup.close();

    ASSERT_TRUE(failpoint::arm("net.dispatch_line", "delay(400)"));
    auto writer = connectTo(srv);
    ASSERT_TRUE(writer.sendAll("update g 1 5\nupdate g 2 7\n"));

    std::this_thread::sleep_for(100ms); // first line is in flight
    srv.beginDrain();

    std::string first, second;
    ASSERT_TRUE(writer.recvLine(first)) << writer.error();
    EXPECT_EQ(first.rfind("ok enqueued=1", 0), 0u) << first;
    ASSERT_TRUE(writer.recvLine(second)) << writer.error();
    EXPECT_EQ(second, "err 503 shutting down");
    EXPECT_FALSE(writer.recvLine(second)); // drain closed the socket

    EXPECT_TRUE(srv.drainAndStop(30000ms));
    failpoint::clearAll();

    // The acked update was flushed by the drain; the refused one is
    // nowhere: ring(64) has 64 edges, plus exactly the acked insert.
    const auto snap = svc.store().get("g");
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->graph->numEdges(), 65u);
}

TEST(NetServer, HttpRequestsAfterDrainGet503InFlightCompletes)
{
    // Same contract over HTTP: a /metrics render pinned in flight by
    // its failpoint finishes and is delivered, then the pipelined
    // /healthz on the same keep-alive connection reports draining.
    failpoint::clearAll();
    GraphService svc(smallService());
    Server srv(svc, {});
    ASSERT_TRUE(srv.start()) << srv.lastError();

    ASSERT_TRUE(failpoint::arm("net.http_metrics", "delay(400)"));
    auto c = connectTo(srv);
    ASSERT_TRUE(c.sendAll("GET /metrics HTTP/1.1\r\n\r\n"
                          "GET /healthz HTTP/1.1\r\n\r\n"));

    std::this_thread::sleep_for(100ms); // metrics render in flight
    srv.beginDrain();

    const auto raw = c.recvAll();
    // The in-flight response completed into the draining connection.
    EXPECT_NE(raw.find("HTTP/1.1 200 OK"), std::string::npos) << raw;
    EXPECT_NE(raw.find("dg_"), std::string::npos)
        << "metrics body missing: " << raw;
    // The follow-up was answered 503 draining, then closed.
    EXPECT_NE(raw.find("HTTP/1.1 503"), std::string::npos) << raw;
    EXPECT_NE(raw.find("draining"), std::string::npos) << raw;
    // Exactly two responses: the completed render and the refusal --
    // no healthy /healthz reply sneaked out mid-drain.
    std::size_t statuses = 0;
    for (auto at = raw.find("HTTP/1.1 "); at != std::string::npos;
         at = raw.find("HTTP/1.1 ", at + 1))
        ++statuses;
    EXPECT_EQ(statuses, 2u) << raw;

    EXPECT_TRUE(srv.drainAndStop(30000ms));
    failpoint::clearAll();
}

} // namespace
} // namespace depgraph::net
