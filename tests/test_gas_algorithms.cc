/**
 * @file
 * Tests for the algorithm implementations: edge functions, accumulator
 * detection, and semantic correctness of converged reference results on
 * graphs with known answers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "gas/accum.hh"
#include "gas/algorithms.hh"
#include "gas/reference.hh"
#include "graph/builder.hh"
#include "graph/generators.hh"

namespace depgraph::gas
{
namespace
{

using graph::Builder;
using graph::Graph;

TEST(AccumDetect, ProbesAllAlgorithms)
{
    // The paper's Accum(1,1) probe must classify every algorithm.
    EXPECT_EQ(detectAccumKind(PageRank{}), AccumKind::Sum);
    EXPECT_EQ(detectAccumKind(Adsorption{}), AccumKind::Sum);
    EXPECT_EQ(detectAccumKind(Katz{}), AccumKind::Sum);
    EXPECT_EQ(detectAccumKind(Sssp{}), AccumKind::Min);
    EXPECT_EQ(detectAccumKind(Wcc{}), AccumKind::Max);
    EXPECT_EQ(detectAccumKind(Sswp{}), AccumKind::Max);
}

TEST(AccumDetect, RejectsNonGeneralizedSum)
{
    // An order-dependent "accumulator" must be rejected.
    class Bogus : public PageRank
    {
      public:
        Value
        accumOp(Value a, Value b) const override
        {
            return a - b;
        }
    };
    EXPECT_FALSE(detectAccumKind(Bogus{}).has_value());
    EXPECT_DEATH(verifiedAccumKind(Bogus{}), "neither sum nor min/max");
}

TEST(AccumDetect, VerifiedMatchesDeclared)
{
    EXPECT_EQ(verifiedAccumKind(Sssp{}), AccumKind::Min);
    EXPECT_EQ(verifiedAccumKind(PageRank{}), AccumKind::Sum);
}

TEST(Factory, BuildsEveryName)
{
    for (const auto &n : {"pagerank", "adsorption", "katz", "sssp",
                          "wcc", "sswp"}) {
        const auto alg = makeAlgorithm(n);
        EXPECT_EQ(alg->name(), n);
    }
    EXPECT_DEATH(makeAlgorithm("nope"), "unknown algorithm");
}

TEST(Factory, PaperAlgorithmsAreTheEvaluatedFour)
{
    const auto algs = paperAlgorithms();
    ASSERT_EQ(algs.size(), 4u);
    EXPECT_EQ(algs[0], "pagerank");
    EXPECT_EQ(algs[1], "adsorption");
    EXPECT_EQ(algs[2], "sssp");
    EXPECT_EQ(algs[3], "wcc");
}

TEST(PageRankAlg, EdgeFuncDividesByOutDegree)
{
    Builder b(3);
    b.addEdge(0, 1);
    b.addEdge(0, 2);
    const Graph g = b.build();
    PageRank pr(0.85);
    const auto f = pr.edgeFunc(g, 0, 0);
    EXPECT_DOUBLE_EQ(f.mu, 0.85 / 2.0);
    EXPECT_DOUBLE_EQ(f.xi, 0.0);
}

TEST(PageRankAlg, ConvergesToKnownValuesOnTwoCycle)
{
    // 0 <-> 1: symmetric, converged pagerank mass is equal; with the
    // delta formulation each state converges to (1-d)/(1-d) = 1.
    Builder b(2);
    b.addEdge(0, 1);
    b.addEdge(1, 0);
    const Graph g = b.build();
    PageRank pr(0.5, 1e-12, 1);
    const auto r = runReference(g, pr);
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.states[0], 1.0, 1e-6);
    EXPECT_NEAR(r.states[1], 1.0, 1e-6);
}

TEST(PageRankAlg, MassIsBounded)
{
    const Graph g = graph::powerLaw(500, 2.0, 6.0, {.seed = 51});
    PageRank pr(0.85, 1e-5, 1);
    const auto r = runReference(g, pr);
    ASSERT_TRUE(r.converged);
    // Sum of converged states is ~ n (normalized form), certainly
    // within [n*(1-d), n*C].
    Value total = 0.0;
    for (auto s : r.states)
        total += s;
    EXPECT_GT(total, 0.15 * 500);
    EXPECT_LT(total, 5.0 * 500);
}

TEST(SsspAlg, ExactDistancesOnWeightedDiamond)
{
    Builder b(4);
    b.addEdge(0, 1, 1.0);
    b.addEdge(0, 2, 5.0);
    b.addEdge(1, 2, 1.0);
    b.addEdge(1, 3, 10.0);
    b.addEdge(2, 3, 1.0);
    const Graph g = b.build();
    Sssp sssp(0);
    const auto r = runReference(g, sssp);
    ASSERT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(r.states[0], 0.0);
    EXPECT_DOUBLE_EQ(r.states[1], 1.0);
    EXPECT_DOUBLE_EQ(r.states[2], 2.0);
    EXPECT_DOUBLE_EQ(r.states[3], 3.0);
}

TEST(SsspAlg, UnreachableStaysInfinite)
{
    Builder b(3);
    b.addEdge(0, 1, 2.0);
    const Graph g = b.build();
    Sssp sssp(0);
    const auto r = runReference(g, sssp);
    EXPECT_DOUBLE_EQ(r.states[1], 2.0);
    EXPECT_EQ(r.states[2], kInfinity);
}

TEST(SsspAlg, PathGraphDistancesAreWeightPrefixSums)
{
    Builder b(5);
    for (VertexId v = 0; v + 1 < 5; ++v)
        b.addEdge(v, v + 1, static_cast<Value>(v + 1));
    const Graph g = b.build();
    Sssp sssp(0);
    const auto r = runReference(g, sssp);
    EXPECT_DOUBLE_EQ(r.states[4], 1.0 + 2.0 + 3.0 + 4.0);
}

TEST(WccAlg, LabelsAreMaxReachableAncestor)
{
    // Component {0,1,2} in a cycle and isolated pair {3->4}.
    Builder b(5);
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    b.addEdge(2, 0);
    b.addEdge(3, 4);
    const Graph g = b.build();
    Wcc wcc;
    const auto r = runReference(g, wcc);
    ASSERT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(r.states[0], 2.0);
    EXPECT_DOUBLE_EQ(r.states[1], 2.0);
    EXPECT_DOUBLE_EQ(r.states[2], 2.0);
    EXPECT_DOUBLE_EQ(r.states[3], 3.0);
    EXPECT_DOUBLE_EQ(r.states[4], 4.0);
}

TEST(WccAlg, SymmetricGraphGetsOneLabelPerComponent)
{
    Builder b(6);
    b.addUndirectedEdge(0, 1);
    b.addUndirectedEdge(1, 2);
    b.addUndirectedEdge(4, 5);
    const Graph g = b.build();
    Wcc wcc;
    const auto r = runReference(g, wcc);
    EXPECT_DOUBLE_EQ(r.states[0], 2.0);
    EXPECT_DOUBLE_EQ(r.states[1], 2.0);
    EXPECT_DOUBLE_EQ(r.states[2], 2.0);
    EXPECT_DOUBLE_EQ(r.states[3], 3.0); // isolated keeps own label
    EXPECT_DOUBLE_EQ(r.states[4], 5.0);
    EXPECT_DOUBLE_EQ(r.states[5], 5.0);
}

TEST(SswpAlg, WidestPathOnDiamond)
{
    // 0->1 cap 5, 1->3 cap 2 ; 0->2 cap 3, 2->3 cap 3. Widest to 3 = 3.
    Builder b(4);
    b.addEdge(0, 1, 5.0);
    b.addEdge(1, 3, 2.0);
    b.addEdge(0, 2, 3.0);
    b.addEdge(2, 3, 3.0);
    const Graph g = b.build();
    Sswp sswp(0);
    const auto r = runReference(g, sswp);
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(r.states[0], kInfinity);
    EXPECT_DOUBLE_EQ(r.states[1], 5.0);
    EXPECT_DOUBLE_EQ(r.states[2], 3.0);
    EXPECT_DOUBLE_EQ(r.states[3], 3.0);
}

TEST(AdsorptionAlg, ConvergesAndSpreadsFromSeeds)
{
    const Graph g = graph::powerLaw(400, 2.0, 6.0, {.seed = 52});
    Adsorption ad(16);
    const auto r = runReference(g, ad);
    ASSERT_TRUE(r.converged);
    // Seed vertices received their injection.
    EXPECT_GE(r.states[0], 1.0);
    // Some non-seed vertex received mass.
    Value spread = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        if (v % 16 != 0)
            spread += r.states[v];
    EXPECT_GT(spread, 0.0);
}

TEST(AdsorptionAlg, ContinueProbInRange)
{
    for (VertexId v = 0; v < 1000; ++v) {
        const Value p = Adsorption::continueProb(v);
        ASSERT_GE(p, 0.30);
        ASSERT_LT(p, 0.80);
    }
}

TEST(KatzAlg, CountsDiscountedPaths)
{
    // path 0->1->2: katz(2) gets beta^1 (from 1's initial delta) ... the
    // delta-accumulative form computes sum over walks ending at v of
    // beta^len, over all start vertices with initial delta 1.
    Builder b(3);
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    const Graph g = b.build();
    Katz katz(0.5, 1e-9);
    const auto r = runReference(g, katz);
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.states[0], 1.0, 1e-6);
    EXPECT_NEAR(r.states[1], 1.0 + 0.5, 1e-6);
    EXPECT_NEAR(r.states[2], 1.0 + 0.5 + 0.25, 1e-6);
}

TEST(Reference, CountsRoundsAndUpdates)
{
    const Graph g = graph::path(6);
    Sssp sssp(0);
    const auto r = runReference(g, sssp);
    ASSERT_TRUE(r.converged);
    // One new distance settles per round down the chain.
    EXPECT_GE(r.rounds, 6u);
    EXPECT_EQ(r.updates, 6u);
    EXPECT_EQ(r.edgeOps, 5u);
}

TEST(Reference, MaxStateDifferenceSemantics)
{
    EXPECT_DOUBLE_EQ(maxStateDifference({1.0, 2.0}, {1.0, 2.5}), 0.5);
    EXPECT_DOUBLE_EQ(maxStateDifference({kInfinity}, {kInfinity}), 0.0);
    EXPECT_EQ(maxStateDifference({kInfinity}, {1.0}), kInfinity);
    EXPECT_EQ(maxStateDifference({kInfinity}, {-kInfinity}), kInfinity);
}

/** Theorem-1 style sanity at the reference level: synchronous rounds
 * with different round limits converge to the same fixpoint. */
class ReferenceConvergence
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(ReferenceConvergence, FixpointIsStable)
{
    const Graph g = graph::powerLaw(300, 2.0, 5.0, {.seed = 53});
    const auto alg1 = makeAlgorithm(GetParam());
    const auto alg2 = makeAlgorithm(GetParam());
    const auto a = runReference(g, *alg1);
    const auto b = runReference(g, *alg2);
    ASSERT_TRUE(a.converged);
    EXPECT_LE(maxStateDifference(a.states, b.states), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(All, ReferenceConvergence,
                         ::testing::Values("pagerank", "adsorption",
                                           "katz", "sssp", "wcc",
                                           "sswp"));

} // namespace
} // namespace depgraph::gas
