file(REMOVE_RECURSE
  "CMakeFiles/fig12_utilization.dir/fig12_utilization.cc.o"
  "CMakeFiles/fig12_utilization.dir/fig12_utilization.cc.o.d"
  "fig12_utilization"
  "fig12_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
