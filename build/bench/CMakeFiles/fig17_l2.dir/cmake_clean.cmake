file(REMOVE_RECURSE
  "CMakeFiles/fig17_l2.dir/fig17_l2.cc.o"
  "CMakeFiles/fig17_l2.dir/fig17_l2.cc.o.d"
  "fig17_l2"
  "fig17_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
