# Empty compiler generated dependencies file for fig15_stack_depth.
# This may be replaced when dependencies are built.
