file(REMOVE_RECURSE
  "CMakeFiles/fig15_stack_depth.dir/fig15_stack_depth.cc.o"
  "CMakeFiles/fig15_stack_depth.dir/fig15_stack_depth.cc.o.d"
  "fig15_stack_depth"
  "fig15_stack_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_stack_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
