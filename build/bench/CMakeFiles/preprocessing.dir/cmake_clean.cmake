file(REMOVE_RECURSE
  "CMakeFiles/preprocessing.dir/preprocessing.cc.o"
  "CMakeFiles/preprocessing.dir/preprocessing.cc.o.d"
  "preprocessing"
  "preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
