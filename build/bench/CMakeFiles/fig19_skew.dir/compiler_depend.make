# Empty compiler generated dependencies file for fig19_skew.
# This may be replaced when dependencies are built.
