file(REMOVE_RECURSE
  "CMakeFiles/fig09_breakdown.dir/fig09_breakdown.cc.o"
  "CMakeFiles/fig09_breakdown.dir/fig09_breakdown.cc.o.d"
  "fig09_breakdown"
  "fig09_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
