# Empty compiler generated dependencies file for fig18_lambda_beta.
# This may be replaced when dependencies are built.
