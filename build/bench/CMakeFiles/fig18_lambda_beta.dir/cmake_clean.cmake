file(REMOVE_RECURSE
  "CMakeFiles/fig18_lambda_beta.dir/fig18_lambda_beta.cc.o"
  "CMakeFiles/fig18_lambda_beta.dir/fig18_lambda_beta.cc.o.d"
  "fig18_lambda_beta"
  "fig18_lambda_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_lambda_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
