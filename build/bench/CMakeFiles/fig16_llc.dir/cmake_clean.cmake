file(REMOVE_RECURSE
  "CMakeFiles/fig16_llc.dir/fig16_llc.cc.o"
  "CMakeFiles/fig16_llc.dir/fig16_llc.cc.o.d"
  "fig16_llc"
  "fig16_llc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_llc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
