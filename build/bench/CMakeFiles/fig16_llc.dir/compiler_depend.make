# Empty compiler generated dependencies file for fig16_llc.
# This may be replaced when dependencies are built.
