file(REMOVE_RECURSE
  "CMakeFiles/table4_area_power.dir/table4_area_power.cc.o"
  "CMakeFiles/table4_area_power.dir/table4_area_power.cc.o.d"
  "table4_area_power"
  "table4_area_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
