# Empty compiler generated dependencies file for fig10_updates.
# This may be replaced when dependencies are built.
