file(REMOVE_RECURSE
  "CMakeFiles/fig10_updates.dir/fig10_updates.cc.o"
  "CMakeFiles/fig10_updates.dir/fig10_updates.cc.o.d"
  "fig10_updates"
  "fig10_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
