file(REMOVE_RECURSE
  "CMakeFiles/test_graph_datasets.dir/test_graph_datasets.cc.o"
  "CMakeFiles/test_graph_datasets.dir/test_graph_datasets.cc.o.d"
  "test_graph_datasets"
  "test_graph_datasets.pdb"
  "test_graph_datasets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
