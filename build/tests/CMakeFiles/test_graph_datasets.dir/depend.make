# Empty dependencies file for test_graph_datasets.
# This may be replaced when dependencies are built.
