# Empty compiler generated dependencies file for test_matrix_correctness.
# This may be replaced when dependencies are built.
