file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_correctness.dir/test_matrix_correctness.cc.o"
  "CMakeFiles/test_matrix_correctness.dir/test_matrix_correctness.cc.o.d"
  "test_matrix_correctness"
  "test_matrix_correctness.pdb"
  "test_matrix_correctness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
