file(REMOVE_RECURSE
  "CMakeFiles/test_graph_degree.dir/test_graph_degree.cc.o"
  "CMakeFiles/test_graph_degree.dir/test_graph_degree.cc.o.d"
  "test_graph_degree"
  "test_graph_degree.pdb"
  "test_graph_degree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
