# Empty dependencies file for test_graph_degree.
# This may be replaced when dependencies are built.
