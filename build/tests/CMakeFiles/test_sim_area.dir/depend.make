# Empty dependencies file for test_sim_area.
# This may be replaced when dependencies are built.
