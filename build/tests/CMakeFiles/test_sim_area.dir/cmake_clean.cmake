file(REMOVE_RECURSE
  "CMakeFiles/test_sim_area.dir/test_sim_area.cc.o"
  "CMakeFiles/test_sim_area.dir/test_sim_area.cc.o.d"
  "test_sim_area"
  "test_sim_area.pdb"
  "test_sim_area[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
