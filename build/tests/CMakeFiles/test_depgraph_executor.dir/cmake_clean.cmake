file(REMOVE_RECURSE
  "CMakeFiles/test_depgraph_executor.dir/test_depgraph_executor.cc.o"
  "CMakeFiles/test_depgraph_executor.dir/test_depgraph_executor.cc.o.d"
  "test_depgraph_executor"
  "test_depgraph_executor.pdb"
  "test_depgraph_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depgraph_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
