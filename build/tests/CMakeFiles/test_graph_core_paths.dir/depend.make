# Empty dependencies file for test_graph_core_paths.
# This may be replaced when dependencies are built.
