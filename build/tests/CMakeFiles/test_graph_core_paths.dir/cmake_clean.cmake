file(REMOVE_RECURSE
  "CMakeFiles/test_graph_core_paths.dir/test_graph_core_paths.cc.o"
  "CMakeFiles/test_graph_core_paths.dir/test_graph_core_paths.cc.o.d"
  "test_graph_core_paths"
  "test_graph_core_paths.pdb"
  "test_graph_core_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_core_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
