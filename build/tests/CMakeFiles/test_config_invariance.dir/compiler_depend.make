# Empty compiler generated dependencies file for test_config_invariance.
# This may be replaced when dependencies are built.
