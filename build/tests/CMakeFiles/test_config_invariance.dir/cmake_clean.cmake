file(REMOVE_RECURSE
  "CMakeFiles/test_config_invariance.dir/test_config_invariance.cc.o"
  "CMakeFiles/test_config_invariance.dir/test_config_invariance.cc.o.d"
  "test_config_invariance"
  "test_config_invariance.pdb"
  "test_config_invariance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
