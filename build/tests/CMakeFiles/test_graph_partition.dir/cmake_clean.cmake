file(REMOVE_RECURSE
  "CMakeFiles/test_graph_partition.dir/test_graph_partition.cc.o"
  "CMakeFiles/test_graph_partition.dir/test_graph_partition.cc.o.d"
  "test_graph_partition"
  "test_graph_partition.pdb"
  "test_graph_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
