file(REMOVE_RECURSE
  "CMakeFiles/test_graph_reorder.dir/test_graph_reorder.cc.o"
  "CMakeFiles/test_graph_reorder.dir/test_graph_reorder.cc.o.d"
  "test_graph_reorder"
  "test_graph_reorder.pdb"
  "test_graph_reorder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
