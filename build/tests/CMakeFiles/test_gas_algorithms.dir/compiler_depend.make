# Empty compiler generated dependencies file for test_gas_algorithms.
# This may be replaced when dependencies are built.
