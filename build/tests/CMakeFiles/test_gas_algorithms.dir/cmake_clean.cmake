file(REMOVE_RECURSE
  "CMakeFiles/test_gas_algorithms.dir/test_gas_algorithms.cc.o"
  "CMakeFiles/test_gas_algorithms.dir/test_gas_algorithms.cc.o.d"
  "test_gas_algorithms"
  "test_gas_algorithms.pdb"
  "test_gas_algorithms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gas_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
