file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_engines.dir/test_runtime_engines.cc.o"
  "CMakeFiles/test_runtime_engines.dir/test_runtime_engines.cc.o.d"
  "test_runtime_engines"
  "test_runtime_engines.pdb"
  "test_runtime_engines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
