# Empty dependencies file for test_runtime_engines.
# This may be replaced when dependencies are built.
