file(REMOVE_RECURSE
  "CMakeFiles/test_gas_incremental.dir/test_gas_incremental.cc.o"
  "CMakeFiles/test_gas_incremental.dir/test_gas_incremental.cc.o.d"
  "test_gas_incremental"
  "test_gas_incremental.pdb"
  "test_gas_incremental[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gas_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
