
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gas_incremental.cc" "tests/CMakeFiles/test_gas_incremental.dir/test_gas_incremental.cc.o" "gcc" "tests/CMakeFiles/test_gas_incremental.dir/test_gas_incremental.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dg_core_api.dir/DependInfo.cmake"
  "/root/repo/build/src/depgraph/CMakeFiles/dg_depgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/dg_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gas/CMakeFiles/dg_gas.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
