file(REMOVE_RECURSE
  "CMakeFiles/test_depgraph_pipeline.dir/test_depgraph_pipeline.cc.o"
  "CMakeFiles/test_depgraph_pipeline.dir/test_depgraph_pipeline.cc.o.d"
  "test_depgraph_pipeline"
  "test_depgraph_pipeline.pdb"
  "test_depgraph_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depgraph_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
