file(REMOVE_RECURSE
  "CMakeFiles/test_gas_model.dir/test_gas_model.cc.o"
  "CMakeFiles/test_gas_model.dir/test_gas_model.cc.o.d"
  "test_gas_model"
  "test_gas_model.pdb"
  "test_gas_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gas_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
