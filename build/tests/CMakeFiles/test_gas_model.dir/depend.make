# Empty dependencies file for test_gas_model.
# This may be replaced when dependencies are built.
