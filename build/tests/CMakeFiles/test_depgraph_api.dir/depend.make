# Empty dependencies file for test_depgraph_api.
# This may be replaced when dependencies are built.
