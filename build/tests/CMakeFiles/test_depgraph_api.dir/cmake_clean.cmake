file(REMOVE_RECURSE
  "CMakeFiles/test_depgraph_api.dir/test_depgraph_api.cc.o"
  "CMakeFiles/test_depgraph_api.dir/test_depgraph_api.cc.o.d"
  "test_depgraph_api"
  "test_depgraph_api.pdb"
  "test_depgraph_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depgraph_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
