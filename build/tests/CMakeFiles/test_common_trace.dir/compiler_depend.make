# Empty compiler generated dependencies file for test_common_trace.
# This may be replaced when dependencies are built.
