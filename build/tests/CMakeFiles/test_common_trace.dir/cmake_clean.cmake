file(REMOVE_RECURSE
  "CMakeFiles/test_common_trace.dir/test_common_trace.cc.o"
  "CMakeFiles/test_common_trace.dir/test_common_trace.cc.o.d"
  "test_common_trace"
  "test_common_trace.pdb"
  "test_common_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
