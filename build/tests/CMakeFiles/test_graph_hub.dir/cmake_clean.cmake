file(REMOVE_RECURSE
  "CMakeFiles/test_graph_hub.dir/test_graph_hub.cc.o"
  "CMakeFiles/test_graph_hub.dir/test_graph_hub.cc.o.d"
  "test_graph_hub"
  "test_graph_hub.pdb"
  "test_graph_hub[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_hub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
