# Empty dependencies file for test_graph_hub.
# This may be replaced when dependencies are built.
