# Empty dependencies file for test_runtime_selective.
# This may be replaced when dependencies are built.
