file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_selective.dir/test_runtime_selective.cc.o"
  "CMakeFiles/test_runtime_selective.dir/test_runtime_selective.cc.o.d"
  "test_runtime_selective"
  "test_runtime_selective.pdb"
  "test_runtime_selective[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_selective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
