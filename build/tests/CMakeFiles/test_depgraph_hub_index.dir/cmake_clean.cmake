file(REMOVE_RECURSE
  "CMakeFiles/test_depgraph_hub_index.dir/test_depgraph_hub_index.cc.o"
  "CMakeFiles/test_depgraph_hub_index.dir/test_depgraph_hub_index.cc.o.d"
  "test_depgraph_hub_index"
  "test_depgraph_hub_index.pdb"
  "test_depgraph_hub_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depgraph_hub_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
