# Empty dependencies file for test_depgraph_hub_index.
# This may be replaced when dependencies are built.
