file(REMOVE_RECURSE
  "CMakeFiles/test_graph_analytics.dir/test_graph_analytics.cc.o"
  "CMakeFiles/test_graph_analytics.dir/test_graph_analytics.cc.o.d"
  "test_graph_analytics"
  "test_graph_analytics.pdb"
  "test_graph_analytics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
