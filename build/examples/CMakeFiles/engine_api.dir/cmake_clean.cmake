file(REMOVE_RECURSE
  "CMakeFiles/engine_api.dir/engine_api.cpp.o"
  "CMakeFiles/engine_api.dir/engine_api.cpp.o.d"
  "engine_api"
  "engine_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
