# Empty dependencies file for engine_api.
# This may be replaced when dependencies are built.
