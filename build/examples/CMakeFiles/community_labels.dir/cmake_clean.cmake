file(REMOVE_RECURSE
  "CMakeFiles/community_labels.dir/community_labels.cpp.o"
  "CMakeFiles/community_labels.dir/community_labels.cpp.o.d"
  "community_labels"
  "community_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
