# Empty dependencies file for community_labels.
# This may be replaced when dependencies are built.
