file(REMOVE_RECURSE
  "CMakeFiles/dggen.dir/dggen.cc.o"
  "CMakeFiles/dggen.dir/dggen.cc.o.d"
  "dggen"
  "dggen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dggen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
