# Empty dependencies file for dggen.
# This may be replaced when dependencies are built.
