# Empty dependencies file for dgvalidate.
# This may be replaced when dependencies are built.
