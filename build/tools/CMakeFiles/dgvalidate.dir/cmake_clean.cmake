file(REMOVE_RECURSE
  "CMakeFiles/dgvalidate.dir/dgvalidate.cc.o"
  "CMakeFiles/dgvalidate.dir/dgvalidate.cc.o.d"
  "dgvalidate"
  "dgvalidate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgvalidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
