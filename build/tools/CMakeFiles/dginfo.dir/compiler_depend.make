# Empty compiler generated dependencies file for dginfo.
# This may be replaced when dependencies are built.
