file(REMOVE_RECURSE
  "CMakeFiles/dginfo.dir/dginfo.cc.o"
  "CMakeFiles/dginfo.dir/dginfo.cc.o.d"
  "dginfo"
  "dginfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dginfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
