file(REMOVE_RECURSE
  "CMakeFiles/dgrun.dir/dgrun.cc.o"
  "CMakeFiles/dgrun.dir/dgrun.cc.o.d"
  "dgrun"
  "dgrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
