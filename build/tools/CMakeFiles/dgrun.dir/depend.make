# Empty dependencies file for dgrun.
# This may be replaced when dependencies are built.
