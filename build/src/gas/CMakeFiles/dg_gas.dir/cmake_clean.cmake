file(REMOVE_RECURSE
  "CMakeFiles/dg_gas.dir/accum.cc.o"
  "CMakeFiles/dg_gas.dir/accum.cc.o.d"
  "CMakeFiles/dg_gas.dir/algorithms.cc.o"
  "CMakeFiles/dg_gas.dir/algorithms.cc.o.d"
  "CMakeFiles/dg_gas.dir/incremental.cc.o"
  "CMakeFiles/dg_gas.dir/incremental.cc.o.d"
  "CMakeFiles/dg_gas.dir/model.cc.o"
  "CMakeFiles/dg_gas.dir/model.cc.o.d"
  "CMakeFiles/dg_gas.dir/reference.cc.o"
  "CMakeFiles/dg_gas.dir/reference.cc.o.d"
  "libdg_gas.a"
  "libdg_gas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_gas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
