file(REMOVE_RECURSE
  "libdg_gas.a"
)
