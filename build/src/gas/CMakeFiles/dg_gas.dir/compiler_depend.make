# Empty compiler generated dependencies file for dg_gas.
# This may be replaced when dependencies are built.
