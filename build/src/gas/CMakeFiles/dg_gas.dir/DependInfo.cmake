
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gas/accum.cc" "src/gas/CMakeFiles/dg_gas.dir/accum.cc.o" "gcc" "src/gas/CMakeFiles/dg_gas.dir/accum.cc.o.d"
  "/root/repo/src/gas/algorithms.cc" "src/gas/CMakeFiles/dg_gas.dir/algorithms.cc.o" "gcc" "src/gas/CMakeFiles/dg_gas.dir/algorithms.cc.o.d"
  "/root/repo/src/gas/incremental.cc" "src/gas/CMakeFiles/dg_gas.dir/incremental.cc.o" "gcc" "src/gas/CMakeFiles/dg_gas.dir/incremental.cc.o.d"
  "/root/repo/src/gas/model.cc" "src/gas/CMakeFiles/dg_gas.dir/model.cc.o" "gcc" "src/gas/CMakeFiles/dg_gas.dir/model.cc.o.d"
  "/root/repo/src/gas/reference.cc" "src/gas/CMakeFiles/dg_gas.dir/reference.cc.o" "gcc" "src/gas/CMakeFiles/dg_gas.dir/reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
