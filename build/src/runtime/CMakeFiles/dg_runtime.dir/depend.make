# Empty dependencies file for dg_runtime.
# This may be replaced when dependencies are built.
