file(REMOVE_RECURSE
  "CMakeFiles/dg_core_api.dir/depgraph_system.cc.o"
  "CMakeFiles/dg_core_api.dir/depgraph_system.cc.o.d"
  "libdg_core_api.a"
  "libdg_core_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_core_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
