# Empty dependencies file for dg_core_api.
# This may be replaced when dependencies are built.
