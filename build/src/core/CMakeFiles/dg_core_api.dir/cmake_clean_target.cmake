file(REMOVE_RECURSE
  "libdg_core_api.a"
)
