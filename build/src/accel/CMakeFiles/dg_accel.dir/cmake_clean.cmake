file(REMOVE_RECURSE
  "CMakeFiles/dg_accel.dir/accelerators.cc.o"
  "CMakeFiles/dg_accel.dir/accelerators.cc.o.d"
  "libdg_accel.a"
  "libdg_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
