file(REMOVE_RECURSE
  "libdg_accel.a"
)
