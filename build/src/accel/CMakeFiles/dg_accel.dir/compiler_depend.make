# Empty compiler generated dependencies file for dg_accel.
# This may be replaced when dependencies are built.
