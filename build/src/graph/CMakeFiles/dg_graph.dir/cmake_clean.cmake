file(REMOVE_RECURSE
  "CMakeFiles/dg_graph.dir/analytics.cc.o"
  "CMakeFiles/dg_graph.dir/analytics.cc.o.d"
  "CMakeFiles/dg_graph.dir/builder.cc.o"
  "CMakeFiles/dg_graph.dir/builder.cc.o.d"
  "CMakeFiles/dg_graph.dir/core_paths.cc.o"
  "CMakeFiles/dg_graph.dir/core_paths.cc.o.d"
  "CMakeFiles/dg_graph.dir/csr.cc.o"
  "CMakeFiles/dg_graph.dir/csr.cc.o.d"
  "CMakeFiles/dg_graph.dir/datasets.cc.o"
  "CMakeFiles/dg_graph.dir/datasets.cc.o.d"
  "CMakeFiles/dg_graph.dir/degree.cc.o"
  "CMakeFiles/dg_graph.dir/degree.cc.o.d"
  "CMakeFiles/dg_graph.dir/edge_list.cc.o"
  "CMakeFiles/dg_graph.dir/edge_list.cc.o.d"
  "CMakeFiles/dg_graph.dir/generators.cc.o"
  "CMakeFiles/dg_graph.dir/generators.cc.o.d"
  "CMakeFiles/dg_graph.dir/hub.cc.o"
  "CMakeFiles/dg_graph.dir/hub.cc.o.d"
  "CMakeFiles/dg_graph.dir/partition.cc.o"
  "CMakeFiles/dg_graph.dir/partition.cc.o.d"
  "CMakeFiles/dg_graph.dir/reorder.cc.o"
  "CMakeFiles/dg_graph.dir/reorder.cc.o.d"
  "libdg_graph.a"
  "libdg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
