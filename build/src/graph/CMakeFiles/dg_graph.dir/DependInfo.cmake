
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/analytics.cc" "src/graph/CMakeFiles/dg_graph.dir/analytics.cc.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/analytics.cc.o.d"
  "/root/repo/src/graph/builder.cc" "src/graph/CMakeFiles/dg_graph.dir/builder.cc.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/builder.cc.o.d"
  "/root/repo/src/graph/core_paths.cc" "src/graph/CMakeFiles/dg_graph.dir/core_paths.cc.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/core_paths.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/graph/CMakeFiles/dg_graph.dir/csr.cc.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/csr.cc.o.d"
  "/root/repo/src/graph/datasets.cc" "src/graph/CMakeFiles/dg_graph.dir/datasets.cc.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/datasets.cc.o.d"
  "/root/repo/src/graph/degree.cc" "src/graph/CMakeFiles/dg_graph.dir/degree.cc.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/degree.cc.o.d"
  "/root/repo/src/graph/edge_list.cc" "src/graph/CMakeFiles/dg_graph.dir/edge_list.cc.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/edge_list.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/dg_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/hub.cc" "src/graph/CMakeFiles/dg_graph.dir/hub.cc.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/hub.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/graph/CMakeFiles/dg_graph.dir/partition.cc.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/partition.cc.o.d"
  "/root/repo/src/graph/reorder.cc" "src/graph/CMakeFiles/dg_graph.dir/reorder.cc.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/reorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
