# Empty dependencies file for dg_depgraph.
# This may be replaced when dependencies are built.
