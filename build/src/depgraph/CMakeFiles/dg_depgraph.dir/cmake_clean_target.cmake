file(REMOVE_RECURSE
  "libdg_depgraph.a"
)
