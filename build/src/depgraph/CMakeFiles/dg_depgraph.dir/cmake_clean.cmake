file(REMOVE_RECURSE
  "CMakeFiles/dg_depgraph.dir/api.cc.o"
  "CMakeFiles/dg_depgraph.dir/api.cc.o.d"
  "CMakeFiles/dg_depgraph.dir/ddmu.cc.o"
  "CMakeFiles/dg_depgraph.dir/ddmu.cc.o.d"
  "CMakeFiles/dg_depgraph.dir/executor.cc.o"
  "CMakeFiles/dg_depgraph.dir/executor.cc.o.d"
  "CMakeFiles/dg_depgraph.dir/hub_index.cc.o"
  "CMakeFiles/dg_depgraph.dir/hub_index.cc.o.d"
  "libdg_depgraph.a"
  "libdg_depgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_depgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
