file(REMOVE_RECURSE
  "CMakeFiles/dg_sim.dir/area.cc.o"
  "CMakeFiles/dg_sim.dir/area.cc.o.d"
  "CMakeFiles/dg_sim.dir/cache.cc.o"
  "CMakeFiles/dg_sim.dir/cache.cc.o.d"
  "CMakeFiles/dg_sim.dir/energy.cc.o"
  "CMakeFiles/dg_sim.dir/energy.cc.o.d"
  "CMakeFiles/dg_sim.dir/machine.cc.o"
  "CMakeFiles/dg_sim.dir/machine.cc.o.d"
  "CMakeFiles/dg_sim.dir/params.cc.o"
  "CMakeFiles/dg_sim.dir/params.cc.o.d"
  "libdg_sim.a"
  "libdg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
