
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/area.cc" "src/sim/CMakeFiles/dg_sim.dir/area.cc.o" "gcc" "src/sim/CMakeFiles/dg_sim.dir/area.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/dg_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/dg_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/energy.cc" "src/sim/CMakeFiles/dg_sim.dir/energy.cc.o" "gcc" "src/sim/CMakeFiles/dg_sim.dir/energy.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/dg_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/dg_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/params.cc" "src/sim/CMakeFiles/dg_sim.dir/params.cc.o" "gcc" "src/sim/CMakeFiles/dg_sim.dir/params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
