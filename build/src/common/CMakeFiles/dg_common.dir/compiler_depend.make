# Empty compiler generated dependencies file for dg_common.
# This may be replaced when dependencies are built.
