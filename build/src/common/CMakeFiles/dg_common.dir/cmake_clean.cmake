file(REMOVE_RECURSE
  "CMakeFiles/dg_common.dir/logging.cc.o"
  "CMakeFiles/dg_common.dir/logging.cc.o.d"
  "CMakeFiles/dg_common.dir/options.cc.o"
  "CMakeFiles/dg_common.dir/options.cc.o.d"
  "CMakeFiles/dg_common.dir/table.cc.o"
  "CMakeFiles/dg_common.dir/table.cc.o.d"
  "CMakeFiles/dg_common.dir/trace.cc.o"
  "CMakeFiles/dg_common.dir/trace.cc.o.d"
  "libdg_common.a"
  "libdg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
