file(REMOVE_RECURSE
  "libdg_common.a"
)
