#!/usr/bin/env bash
# CI driver: build + tier-1 ctest under each sanitizer mode.
#
#   scripts/ci.sh                 # all modes: release, asan, tsan
#   scripts/ci.sh release         # plain Release build + full ctest
#   scripts/ci.sh asan            # AddressSanitizer + UBSan (full
#                                 # suite, so the WAL/checkpoint
#                                 # recovery tests run sanitized too)
#   scripts/ci.sh tsan            # ThreadSanitizer; service/concurrency
#                                 # tests (label `tsan`) must stay clean
#   scripts/ci.sh durability      # fast crash-safety loop: only the
#                                 # `durability` + `chaos` labelled
#                                 # suites (WAL, recovery, subprocess
#                                 # kill/restart harness), Release
#
# Extra args after the mode are forwarded to ctest, e.g.
#   scripts/ci.sh tsan -R Service
#
# Env: JOBS (parallelism, default nproc), GENERATOR (cmake -G value).

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

run_mode() {
    local mode="$1"
    shift
    local dir="build-ci-${mode}"
    local cmake_args=(-DCMAKE_BUILD_TYPE=Release)
    local ctest_args=(--output-on-failure -j "${JOBS}")

    case "${mode}" in
    release) ;;
    durability)
        # Shares the release build tree: same binaries, narrowed to
        # the crash-safety suites for a quick edit-test loop.
        dir="build-ci-release"
        ctest_args+=(-L 'durability|chaos')
        ;;
    asan)
        # Full suite under ASan+UBSan -- this is where the recovery
        # differentials and the chaos harness (which forks the
        # sanitized dgserve/dgload binaries) run memory-checked.
        cmake_args+=(
            -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer -g"
            -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined")
        ;;
    tsan)
        cmake_args+=(
            -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -g -O1"
            -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread")
        # TSan's value is the threaded code; the single-threaded
        # simulator suite runs 5-20x slower under it for no extra
        # signal, so this mode runs only the `tsan`-labelled tests,
        # plus the `fuzz` differential suite (cheap, and the forced-
        # scalar dispatch toggling deserves a data-race check).
        ctest_args+=(-L 'tsan|fuzz')
        ;;
    *)
        echo "unknown mode '${mode}'" \
             "(want release|asan|tsan|durability)" >&2
        exit 2
        ;;
    esac

    echo "=== [${mode}] configure ==="
    cmake -B "${dir}" -S . ${GENERATOR:+-G "${GENERATOR}"} \
        "${cmake_args[@]}"
    echo "=== [${mode}] build ==="
    cmake --build "${dir}" -j "${JOBS}"
    echo "=== [${mode}] test ==="
    (cd "${dir}" && ctest "${ctest_args[@]}" "$@")
    echo "=== [${mode}] OK ==="
}

if [[ $# -eq 0 ]]; then
    for mode in release asan tsan; do
        run_mode "${mode}"
    done
else
    run_mode "$@"
fi
