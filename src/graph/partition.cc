#include "graph/partition.hh"

#include <algorithm>

#include "common/logging.hh"

namespace depgraph::graph
{

Partitioning::Partitioning(const Graph &g, unsigned num_parts)
{
    dg_assert(num_parts > 0, "need at least one partition");
    const VertexId n = g.numVertices();
    const EdgeId total = g.numEdges();
    const EdgeId per_part = std::max<EdgeId>(1, total / num_parts);

    ranges_.reserve(num_parts);
    VertexId v = 0;
    for (unsigned p = 0; p < num_parts; ++p) {
        PartitionRange r;
        r.begin = v;
        if (p + 1 == num_parts) {
            r.end = n;
        } else {
            EdgeId acc = 0;
            while (v < n && (acc < per_part || v == r.begin)) {
                acc += g.outDegree(v);
                ++v;
            }
            // Leave at least one vertex per remaining partition.
            const VertexId remaining_parts = num_parts - p - 1;
            if (n - v < remaining_parts)
                v = n - remaining_parts;
            if (v < r.begin)
                v = r.begin;
            r.end = v;
        }
        ranges_.push_back(r);
    }
    dg_assert(ranges_.back().end == n, "partitioning must cover graph");
}

unsigned
Partitioning::ownerOf(VertexId v) const
{
    // Binary search for the range whose begin <= v < end.
    unsigned lo = 0, hi = numParts() - 1;
    while (lo < hi) {
        const unsigned mid = (lo + hi) / 2;
        if (ranges_[mid].end <= v)
            lo = mid + 1;
        else
            hi = mid;
    }
    dg_assert(ranges_[lo].contains(v) || ranges_[lo].size() == 0,
              "vertex ", v, " not in computed partition");
    return lo;
}

} // namespace depgraph::graph
