#include "graph/builder.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace depgraph::graph
{

Builder::Builder(VertexId num_vertices)
    : numVertices_(num_vertices)
{
    dg_assert(num_vertices > 0, "graph needs at least one vertex");
}

void
Builder::addEdge(VertexId src, VertexId dst, Value w)
{
    dg_assert(src < numVertices_ && dst < numVertices_,
              "edge (", src, ", ", dst, ") out of range");
    srcs_.push_back(src);
    dsts_.push_back(dst);
    weights_.push_back(w);
}

void
Builder::addUndirectedEdge(VertexId src, VertexId dst, Value w)
{
    addEdge(src, dst, w);
    addEdge(dst, src, w);
}

void
Builder::dedupe()
{
    std::vector<std::size_t> order(srcs_.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (srcs_[a] != srcs_[b])
                      return srcs_[a] < srcs_[b];
                  if (dsts_[a] != dsts_[b])
                      return dsts_[a] < dsts_[b];
                  return a < b; // stable: keep first weight
              });
    std::vector<VertexId> s, d;
    std::vector<Value> w;
    s.reserve(srcs_.size());
    d.reserve(dsts_.size());
    w.reserve(weights_.size());
    for (std::size_t k = 0; k < order.size(); ++k) {
        const std::size_t i = order[k];
        if (!s.empty() && s.back() == srcs_[i] && d.back() == dsts_[i])
            continue;
        s.push_back(srcs_[i]);
        d.push_back(dsts_[i]);
        w.push_back(weights_[i]);
    }
    srcs_ = std::move(s);
    dsts_ = std::move(d);
    weights_ = std::move(w);
}

void
Builder::removeSelfLoops()
{
    std::vector<VertexId> s, d;
    std::vector<Value> w;
    for (std::size_t i = 0; i < srcs_.size(); ++i) {
        if (srcs_[i] == dsts_[i])
            continue;
        s.push_back(srcs_[i]);
        d.push_back(dsts_[i]);
        w.push_back(weights_[i]);
    }
    srcs_ = std::move(s);
    dsts_ = std::move(d);
    weights_ = std::move(w);
}

Graph
Builder::build(bool weighted) const
{
    std::vector<EdgeId> offsets(numVertices_ + 1, 0);
    for (auto s : srcs_)
        ++offsets[s + 1];
    for (VertexId v = 0; v < numVertices_; ++v)
        offsets[v + 1] += offsets[v];

    std::vector<VertexId> targets(srcs_.size());
    std::vector<Value> weights(weighted ? srcs_.size() : 0);
    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < srcs_.size(); ++i) {
        const EdgeId slot = cursor[srcs_[i]]++;
        targets[slot] = dsts_[i];
        if (weighted)
            weights[slot] = weights_[i];
    }
    // Sort each vertex's neighbor list by target id for determinism.
    for (VertexId v = 0; v < numVertices_; ++v) {
        const EdgeId lo = offsets[v], hi = offsets[v + 1];
        std::vector<std::size_t> order(hi - lo);
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return targets[lo + a] < targets[lo + b];
                  });
        std::vector<VertexId> t2(hi - lo);
        std::vector<Value> w2(weighted ? hi - lo : 0);
        for (std::size_t k = 0; k < order.size(); ++k) {
            t2[k] = targets[lo + order[k]];
            if (weighted)
                w2[k] = weights[lo + order[k]];
        }
        std::copy(t2.begin(), t2.end(), targets.begin() + lo);
        if (weighted)
            std::copy(w2.begin(), w2.end(), weights.begin() + lo);
    }
    return Graph(std::move(offsets), std::move(targets),
                 std::move(weights));
}

} // namespace depgraph::graph
