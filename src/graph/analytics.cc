#include "graph/analytics.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace depgraph::graph
{

namespace
{

/** Undirected simple adjacency (sorted, deduped, no self loops). */
std::vector<std::vector<VertexId>>
undirectedSimpleAdjacency(const Graph &g)
{
    const VertexId n = g.numVertices();
    g.buildTranspose();
    std::vector<std::vector<VertexId>> adj(n);
    for (VertexId v = 0; v < n; ++v) {
        auto &a = adj[v];
        for (auto t : g.neighbors(v))
            if (t != v)
                a.push_back(t);
        for (auto t : g.inNeighbors(v))
            if (t != v)
                a.push_back(t);
        std::sort(a.begin(), a.end());
        a.erase(std::unique(a.begin(), a.end()), a.end());
    }
    return adj;
}

} // namespace

std::vector<std::uint32_t>
coreNumbers(const Graph &g)
{
    const VertexId n = g.numVertices();
    const auto adj = undirectedSimpleAdjacency(g);

    std::vector<std::uint32_t> deg(n);
    std::uint32_t maxd = 0;
    for (VertexId v = 0; v < n; ++v) {
        deg[v] = static_cast<std::uint32_t>(adj[v].size());
        maxd = std::max(maxd, deg[v]);
    }

    // Bucket sort by degree (Matula-Beck peeling).
    std::vector<std::uint32_t> bin(maxd + 2, 0);
    for (VertexId v = 0; v < n; ++v)
        ++bin[deg[v]];
    std::uint32_t start = 0;
    for (std::uint32_t d = 0; d <= maxd; ++d) {
        const auto count = bin[d];
        bin[d] = start;
        start += count;
    }
    std::vector<VertexId> order(n);   // vertices by ascending degree
    std::vector<std::uint32_t> pos(n); // position of v in order
    {
        std::vector<std::uint32_t> cursor(bin.begin(), bin.end() - 1);
        for (VertexId v = 0; v < n; ++v) {
            pos[v] = cursor[deg[v]]++;
            order[pos[v]] = v;
        }
    }

    std::vector<std::uint32_t> core(deg.begin(), deg.end());
    for (std::uint32_t i = 0; i < n; ++i) {
        const VertexId v = order[i];
        for (const VertexId u : adj[v]) {
            if (core[u] > core[v]) {
                // Move u one bucket down: swap it with the first
                // vertex of its current bucket, then shrink the
                // bucket.
                const auto du = core[u];
                const auto pu = pos[u];
                const auto pw = bin[du];
                const VertexId w = order[pw];
                if (u != w) {
                    std::swap(order[pu], order[pw]);
                    pos[u] = pw;
                    pos[w] = pu;
                }
                ++bin[du];
                --core[u];
            }
        }
    }
    return core;
}

std::vector<VertexId>
kCoreMembers(const Graph &g, std::uint32_t k)
{
    const auto core = coreNumbers(g);
    std::vector<VertexId> members;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        if (core[v] >= k)
            members.push_back(v);
    return members;
}

std::uint32_t
degeneracy(const Graph &g)
{
    const auto core = coreNumbers(g);
    std::uint32_t best = 0;
    for (auto c : core)
        best = std::max(best, c);
    return best;
}

std::vector<std::uint64_t>
trianglesPerVertex(const Graph &g)
{
    const VertexId n = g.numVertices();
    const auto adj = undirectedSimpleAdjacency(g);

    // Orient edges from lower-degree to higher-degree endpoints (ties
    // by id): every triangle is counted exactly once at its apex.
    auto rank_less = [&](VertexId a, VertexId b) {
        if (adj[a].size() != adj[b].size())
            return adj[a].size() < adj[b].size();
        return a < b;
    };
    std::vector<std::vector<VertexId>> fwd(n);
    for (VertexId v = 0; v < n; ++v)
        for (auto u : adj[v])
            if (rank_less(v, u))
                fwd[v].push_back(u); // already sorted by id

    std::vector<std::uint64_t> tri(n, 0);
    for (VertexId v = 0; v < n; ++v) {
        const auto &fv = fwd[v];
        for (std::size_t i = 0; i < fv.size(); ++i) {
            const VertexId u = fv[i];
            // Intersect fwd[v] with fwd[u]: every common member w has
            // higher rank than both, so the triangle (v, u, w) is
            // found exactly once, at its lowest-rank corner v via its
            // middle-rank corner u. (Lists are id-sorted; rank order
            // within fv is arbitrary, hence the full scan.)
            const auto &fu = fwd[u];
            std::size_t a = 0, b = 0;
            while (a < fv.size() && b < fu.size()) {
                if (fv[a] < fu[b]) {
                    ++a;
                } else if (fv[a] > fu[b]) {
                    ++b;
                } else {
                    ++tri[v];
                    ++tri[u];
                    ++tri[fv[a]];
                    ++a;
                    ++b;
                }
            }
        }
    }
    return tri;
}

std::uint64_t
countTriangles(const Graph &g)
{
    const auto tri = trianglesPerVertex(g);
    const std::uint64_t sum =
        std::accumulate(tri.begin(), tri.end(), std::uint64_t{0});
    dg_assert(sum % 3 == 0, "per-vertex triangle counts inconsistent");
    return sum / 3;
}

double
globalClusteringCoefficient(const Graph &g)
{
    const auto adj = undirectedSimpleAdjacency(g);
    std::uint64_t wedges = 0;
    for (const auto &a : adj) {
        const std::uint64_t d = a.size();
        wedges += d * (d - 1) / 2;
    }
    if (wedges == 0)
        return 0.0;
    return 3.0 * static_cast<double>(countTriangles(g))
        / static_cast<double>(wedges);
}

std::vector<std::uint64_t>
degreeHistogram(const Graph &g, std::size_t max_degree)
{
    std::vector<std::uint64_t> hist(max_degree + 1, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        const auto d = static_cast<std::size_t>(g.outDegree(v));
        ++hist[std::min(d, max_degree)];
    }
    return hist;
}

} // namespace depgraph::graph
