/**
 * @file
 * Compressed Sparse Row graph representation.
 *
 * Mirrors the layout described in the paper (Fig. 2): an offset array, an
 * edge (target) array, an optional per-edge weight array, and one or more
 * vertex state arrays owned by the algorithms. Out-edges are primary; an
 * in-edge (transposed) view can be materialized on demand for pull-style
 * baselines.
 */

#ifndef DEPGRAPH_GRAPH_CSR_HH
#define DEPGRAPH_GRAPH_CSR_HH

#include <span>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace depgraph::graph
{

/** One directed edge endpoint with weight, as stored in the edge array. */
struct Edge
{
    VertexId target;
    Value weight;
};

class Graph
{
  public:
    Graph() = default;

    /**
     * Construct from prepared CSR arrays. offsets.size() must equal
     * numVertices + 1 and offsets.back() must equal targets.size().
     * weights may be empty (unweighted graph) or match targets.size().
     */
    Graph(std::vector<EdgeId> offsets, std::vector<VertexId> targets,
          std::vector<Value> weights);

    VertexId numVertices() const { return numVertices_; }
    EdgeId numEdges() const { return static_cast<EdgeId>(targets_.size()); }
    bool weighted() const { return !weights_.empty(); }

    /** Out-degree of v. */
    EdgeId
    outDegree(VertexId v) const
    {
        return offsets_[v + 1] - offsets_[v];
    }

    /** First edge index of v in the edge array. */
    EdgeId edgeBegin(VertexId v) const { return offsets_[v]; }

    /** One past the last edge index of v. */
    EdgeId edgeEnd(VertexId v) const { return offsets_[v + 1]; }

    /** Target vertex of edge e. */
    VertexId target(EdgeId e) const { return targets_[e]; }

    /** Weight of edge e (1.0 when the graph is unweighted). */
    Value
    weight(EdgeId e) const
    {
        return weights_.empty() ? 1.0 : weights_[e];
    }

    /** Out-neighbors of v as a contiguous span. */
    std::span<const VertexId>
    neighbors(VertexId v) const
    {
        return {targets_.data() + offsets_[v],
                targets_.data() + offsets_[v + 1]};
    }

    /** In-degree of v. Materializes the transpose on first use. */
    EdgeId inDegree(VertexId v) const;

    /** In-neighbors of v. Materializes the transpose on first use. */
    std::span<const VertexId> inNeighbors(VertexId v) const;

    /** Weight of the in-edge at position k of v's in-neighbor list. */
    Value inWeight(VertexId v, EdgeId k) const;

    /** Total degree (in + out) of v. */
    EdgeId totalDegree(VertexId v) const;

    /** Force construction of the transposed view now. */
    void buildTranspose() const;

    /** Raw array access for address-layout computation. */
    const std::vector<EdgeId> &offsets() const { return offsets_; }
    const std::vector<VertexId> &targets() const { return targets_; }
    const std::vector<Value> &weights() const { return weights_; }

    /** Bytes occupied by the CSR arrays (for storage accounting). */
    std::size_t byteSize() const;

  private:
    VertexId numVertices_ = 0;
    std::vector<EdgeId> offsets_;
    std::vector<VertexId> targets_;
    std::vector<Value> weights_;

    // Lazily built transpose (logically const: a cached view).
    mutable bool transposeBuilt_ = false;
    mutable std::vector<EdgeId> inOffsets_;
    mutable std::vector<VertexId> inSources_;
    mutable std::vector<Value> inWeights_;
};

} // namespace depgraph::graph

#endif // DEPGRAPH_GRAPH_CSR_HH
