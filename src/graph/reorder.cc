#include "graph/reorder.hh"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/logging.hh"
#include "common/random.hh"
#include "graph/builder.hh"

namespace depgraph::graph
{

Graph
relabel(const Graph &g, const std::vector<VertexId> &perm)
{
    dg_assert(isPermutation(g, perm), "invalid permutation");
    Builder b(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e)
            b.addEdge(perm[v], perm[g.target(e)], g.weight(e));
    return b.build(g.weighted());
}

bool
isPermutation(const Graph &g, const std::vector<VertexId> &perm)
{
    if (perm.size() != g.numVertices())
        return false;
    std::vector<bool> seen(perm.size(), false);
    for (auto p : perm) {
        if (p >= perm.size() || seen[p])
            return false;
        seen[p] = true;
    }
    return true;
}

std::vector<VertexId>
rcmOrder(const Graph &g)
{
    const VertexId n = g.numVertices();
    g.buildTranspose();
    auto udeg = [&](VertexId v) {
        return g.outDegree(v) + g.inDegree(v);
    };

    std::vector<VertexId> visit_order;
    visit_order.reserve(n);
    std::vector<bool> visited(n, false);

    // Start components from their lowest-degree vertex (peripheral
    // heuristic); cover every component.
    std::vector<VertexId> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), 0);
    std::sort(by_degree.begin(), by_degree.end(),
              [&](VertexId a, VertexId b) {
                  if (udeg(a) != udeg(b))
                      return udeg(a) < udeg(b);
                  return a < b;
              });

    std::vector<VertexId> nbrs;
    for (auto seed : by_degree) {
        if (visited[seed])
            continue;
        std::queue<VertexId> q;
        q.push(seed);
        visited[seed] = true;
        while (!q.empty()) {
            const VertexId v = q.front();
            q.pop();
            visit_order.push_back(v);
            nbrs.clear();
            for (auto t : g.neighbors(v))
                if (!visited[t])
                    nbrs.push_back(t);
            for (auto t : g.inNeighbors(v))
                if (!visited[t])
                    nbrs.push_back(t);
            std::sort(nbrs.begin(), nbrs.end());
            nbrs.erase(std::unique(nbrs.begin(), nbrs.end()),
                       nbrs.end());
            std::sort(nbrs.begin(), nbrs.end(),
                      [&](VertexId a, VertexId b) {
                          if (udeg(a) != udeg(b))
                              return udeg(a) < udeg(b);
                          return a < b;
                      });
            for (auto t : nbrs) {
                visited[t] = true;
                q.push(t);
            }
        }
    }

    // Reverse (the "R" of RCM) and convert visit order -> permutation.
    std::vector<VertexId> perm(n);
    for (VertexId i = 0; i < n; ++i)
        perm[visit_order[i]] = n - 1 - i;
    return perm;
}

std::vector<VertexId>
degreeOrder(const Graph &g)
{
    const VertexId n = g.numVertices();
    std::vector<VertexId> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), 0);
    std::sort(by_degree.begin(), by_degree.end(),
              [&](VertexId a, VertexId b) {
                  if (g.outDegree(a) != g.outDegree(b))
                      return g.outDegree(a) > g.outDegree(b);
                  return a < b;
              });
    std::vector<VertexId> perm(n);
    for (VertexId i = 0; i < n; ++i)
        perm[by_degree[i]] = i;
    return perm;
}

std::vector<VertexId>
randomOrder(const Graph &g, std::uint64_t seed)
{
    const VertexId n = g.numVertices();
    std::vector<VertexId> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    Rng rng(seed);
    for (VertexId v = n; v > 1; --v) {
        const auto j = static_cast<VertexId>(rng.nextBounded(v));
        std::swap(perm[v - 1], perm[j]);
    }
    return perm;
}

VertexId
bandwidth(const Graph &g)
{
    VertexId bw = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (auto t : g.neighbors(v)) {
            const VertexId d = v > t ? v - t : t - v;
            bw = std::max(bw, d);
        }
    }
    return bw;
}

} // namespace depgraph::graph
