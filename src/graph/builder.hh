/**
 * @file
 * Incremental edge-list builder producing CSR graphs.
 */

#ifndef DEPGRAPH_GRAPH_BUILDER_HH
#define DEPGRAPH_GRAPH_BUILDER_HH

#include <vector>

#include "common/types.hh"
#include "graph/csr.hh"

namespace depgraph::graph
{

class Builder
{
  public:
    /** @param num_vertices Vertex count; ids must be < num_vertices. */
    explicit Builder(VertexId num_vertices);

    /** Add a directed edge src -> dst with weight w. */
    void addEdge(VertexId src, VertexId dst, Value w = 1.0);

    /** Add src->dst and dst->src with the same weight. */
    void addUndirectedEdge(VertexId src, VertexId dst, Value w = 1.0);

    /** Drop duplicate (src, dst) pairs, keeping the first weight seen. */
    void dedupe();

    /** Drop self-loop edges (src == dst). */
    void removeSelfLoops();

    std::size_t edgeCount() const { return srcs_.size(); }
    VertexId numVertices() const { return numVertices_; }

    /**
     * Build the CSR graph. Edges are sorted by (src, dst). When
     * weighted is false the weight array is omitted.
     */
    Graph build(bool weighted = true) const;

  private:
    VertexId numVertices_;
    std::vector<VertexId> srcs_;
    std::vector<VertexId> dsts_;
    std::vector<Value> weights_;
};

} // namespace depgraph::graph

#endif // DEPGRAPH_GRAPH_BUILDER_HH
