#include "graph/generators.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "graph/builder.hh"

namespace depgraph::graph
{

namespace
{

Value
drawWeight(Rng &rng, const GenOptions &opt)
{
    return opt.weighted ? rng.nextDouble(opt.minWeight, opt.maxWeight)
                        : 1.0;
}

/** Shuffle vertex ids so degree rank does not correlate with id. */
std::vector<VertexId>
shuffledIds(VertexId n, Rng &rng)
{
    std::vector<VertexId> ids(n);
    for (VertexId v = 0; v < n; ++v)
        ids[v] = v;
    for (VertexId v = n; v > 1; --v) {
        const auto j = static_cast<VertexId>(rng.nextBounded(v));
        std::swap(ids[v - 1], ids[j]);
    }
    return ids;
}

} // namespace

Graph
powerLaw(VertexId num_vertices, double alpha, double avg_degree,
         const GenOptions &opt)
{
    dg_assert(num_vertices >= 2, "powerLaw needs >= 2 vertices");
    dg_assert(alpha > 1.0, "powerLaw needs alpha > 1");
    Rng rng(opt.seed);

    // Out-degree of the rank-r vertex ~ C / (r+1)^(1/(alpha-1)), where C
    // is normalized so the total is ~ n * avg_degree. The rank exponent
    // 1/(alpha-1) is the standard Zipf-rank <-> power-law-degree
    // correspondence for a degree distribution P(d) ~ d^-alpha: lower
    // alpha means a steeper rank curve, i.e. heavier skew (Table V).
    const double exp_deg = 1.0 / (alpha - 1.0);
    double norm = 0.0;
    for (VertexId r = 0; r < num_vertices; ++r)
        norm += 1.0 / std::pow(static_cast<double>(r + 1), exp_deg);
    const double c =
        avg_degree * static_cast<double>(num_vertices) / norm;

    const auto ids = shuffledIds(num_vertices, rng);
    ZipfSampler target_rank(num_vertices, exp_deg);

    // Real-world vertex numberings exhibit strong id-locality
    // (crawl/community order); half the edges target nearby ids so
    // that range partitions keep a realistic fraction of local edges.
    const VertexId window =
        std::max<VertexId>(8, num_vertices / 64);

    Builder b(num_vertices);
    for (VertexId r = 0; r < num_vertices; ++r) {
        const double want =
            c / std::pow(static_cast<double>(r + 1), exp_deg);
        auto deg = static_cast<EdgeId>(want);
        if (rng.nextDouble() < want - static_cast<double>(deg))
            ++deg;
        deg = std::min<EdgeId>(deg, num_vertices - 1);
        const VertexId src = ids[r];
        for (EdgeId k = 0; k < deg; ++k) {
            VertexId dst;
            if (rng.nextBool(0.5)) {
                const VertexId lo =
                    src > window ? src - window : 0;
                const VertexId hi = std::min<VertexId>(
                    num_vertices - 1, src + window);
                dst = lo + static_cast<VertexId>(
                    rng.nextBounded(hi - lo + 1));
            } else {
                dst = ids[target_rank.sample(rng)];
            }
            if (dst == src)
                dst = ids[(r + 1) % num_vertices];
            b.addEdge(src, dst, drawWeight(rng, opt));
        }
    }
    // Guarantee weak connectivity of the dependency structure: a sparse
    // random ring so no vertex is isolated.
    for (VertexId v = 0; v < num_vertices; ++v) {
        if (rng.nextDouble() < 0.2) {
            b.addEdge(ids[v], ids[(v + 1) % num_vertices],
                      drawWeight(rng, opt));
        }
    }
    // Parallel edges are kept (multigraph), as deduping would starve the
    // head of the degree distribution and shift the average degree far
    // from its target; all engines handle parallel edges uniformly.
    b.removeSelfLoops();
    return b.build(opt.weighted);
}

Graph
powerLawTableV(VertexId num_vertices, double alpha, const GenOptions &opt)
{
    // Table V: 10M vertices; alpha 1.8/1.9/2.0/2.1/2.2 gives
    // 667/246/104/56/37 M edges, i.e. avg degree 66.7/24.6/10.4/5.6/3.7.
    // Reproduce the same alpha -> avg-degree relationship at our scale.
    const double avg_degree = 66.7 * std::pow(10.0, -(alpha - 1.8) * 3.1);
    return powerLaw(num_vertices, alpha, avg_degree, opt);
}

Graph
rmat(VertexId num_vertices_log2, EdgeId num_edges, double a, double b,
     double c, const GenOptions &opt)
{
    dg_assert(num_vertices_log2 >= 1 && num_vertices_log2 < 31,
              "rmat scale out of range");
    const double d = 1.0 - a - b - c;
    dg_assert(d >= 0.0, "rmat probabilities exceed 1");
    Rng rng(opt.seed);
    const VertexId n = VertexId{1} << num_vertices_log2;

    Builder bl(n);
    for (EdgeId e = 0; e < num_edges; ++e) {
        VertexId src = 0, dst = 0;
        for (unsigned bit = 0; bit < num_vertices_log2; ++bit) {
            const double u = rng.nextDouble();
            if (u < a) {
                // top-left: no bits set
            } else if (u < a + b) {
                dst |= VertexId{1} << bit;
            } else if (u < a + b + c) {
                src |= VertexId{1} << bit;
            } else {
                src |= VertexId{1} << bit;
                dst |= VertexId{1} << bit;
            }
        }
        if (src != dst)
            bl.addEdge(src, dst, drawWeight(rng, opt));
    }
    bl.dedupe();
    return bl.build(opt.weighted);
}

Graph
erdosRenyi(VertexId num_vertices, EdgeId num_edges, const GenOptions &opt)
{
    dg_assert(num_vertices >= 2, "erdosRenyi needs >= 2 vertices");
    Rng rng(opt.seed);
    Builder b(num_vertices);
    for (EdgeId e = 0; e < num_edges; ++e) {
        const auto src = static_cast<VertexId>(
            rng.nextBounded(num_vertices));
        auto dst = static_cast<VertexId>(rng.nextBounded(num_vertices));
        if (dst == src)
            dst = (dst + 1) % num_vertices;
        b.addEdge(src, dst, drawWeight(rng, opt));
    }
    b.dedupe();
    return b.build(opt.weighted);
}

Graph
grid(VertexId rows, VertexId cols, const GenOptions &opt)
{
    dg_assert(rows >= 1 && cols >= 1, "grid needs positive dimensions");
    Rng rng(opt.seed);
    const VertexId n = rows * cols;
    Builder b(n);
    auto id = [&](VertexId r, VertexId c) { return r * cols + c; };
    for (VertexId r = 0; r < rows; ++r) {
        for (VertexId c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                b.addUndirectedEdge(id(r, c), id(r, c + 1),
                                    drawWeight(rng, opt));
            if (r + 1 < rows)
                b.addUndirectedEdge(id(r, c), id(r + 1, c),
                                    drawWeight(rng, opt));
        }
    }
    return b.build(opt.weighted);
}

Graph
path(VertexId num_vertices, const GenOptions &opt)
{
    dg_assert(num_vertices >= 2, "path needs >= 2 vertices");
    Rng rng(opt.seed);
    Builder b(num_vertices);
    for (VertexId v = 0; v + 1 < num_vertices; ++v)
        b.addEdge(v, v + 1, drawWeight(rng, opt));
    return b.build(opt.weighted);
}

Graph
ring(VertexId num_vertices, const GenOptions &opt)
{
    dg_assert(num_vertices >= 2, "ring needs >= 2 vertices");
    Rng rng(opt.seed);
    Builder b(num_vertices);
    for (VertexId v = 0; v < num_vertices; ++v)
        b.addEdge(v, (v + 1) % num_vertices, drawWeight(rng, opt));
    return b.build(opt.weighted);
}

Graph
star(VertexId num_vertices, const GenOptions &opt)
{
    dg_assert(num_vertices >= 2, "star needs >= 2 vertices");
    Rng rng(opt.seed);
    Builder b(num_vertices);
    for (VertexId v = 1; v < num_vertices; ++v)
        b.addUndirectedEdge(0, v, drawWeight(rng, opt));
    return b.build(opt.weighted);
}

Graph
binaryTree(VertexId num_vertices, const GenOptions &opt)
{
    dg_assert(num_vertices >= 1, "tree needs >= 1 vertex");
    Rng rng(opt.seed);
    Builder b(num_vertices);
    for (VertexId v = 0; v < num_vertices; ++v) {
        const VertexId l = 2 * v + 1, r = 2 * v + 2;
        if (l < num_vertices)
            b.addEdge(v, l, drawWeight(rng, opt));
        if (r < num_vertices)
            b.addEdge(v, r, drawWeight(rng, opt));
    }
    return b.build(opt.weighted);
}

Graph
communityChain(VertexId num_communities, VertexId community_size,
               double alpha, double avg_degree, VertexId bridges_per_link,
               const GenOptions &opt)
{
    dg_assert(num_communities >= 1 && community_size >= 2,
              "communityChain needs communities of >= 2 vertices");
    Rng rng(opt.seed);
    const VertexId n = num_communities * community_size;
    Builder b(n);

    const double exp_deg = 1.0 / (alpha - 1.0);
    double norm = 0.0;
    for (VertexId r = 0; r < community_size; ++r)
        norm += 1.0 / std::pow(static_cast<double>(r + 1), exp_deg);
    const double cnorm =
        avg_degree * static_cast<double>(community_size) / norm;
    ZipfSampler target_rank(community_size, exp_deg);

    for (VertexId comm = 0; comm < num_communities; ++comm) {
        const VertexId base = comm * community_size;
        const auto ids = shuffledIds(community_size, rng);
        for (VertexId r = 0; r < community_size; ++r) {
            const double want =
                cnorm / std::pow(static_cast<double>(r + 1), exp_deg);
            auto deg = static_cast<EdgeId>(want);
            if (rng.nextDouble() < want - static_cast<double>(deg))
                ++deg;
            deg = std::min<EdgeId>(deg, community_size - 1);
            const VertexId src = base + ids[r];
            for (EdgeId k = 0; k < deg; ++k) {
                VertexId dst = base + ids[target_rank.sample(rng)];
                if (dst == src)
                    dst = base + ids[(r + 1) % community_size];
                b.addEdge(src, dst, drawWeight(rng, opt));
            }
        }
        // Sparse intra-community ring for connectivity.
        for (VertexId v = 0; v < community_size; ++v) {
            if (rng.nextDouble() < 0.15) {
                b.addEdge(base + ids[v],
                          base + ids[(v + 1) % community_size],
                          drawWeight(rng, opt));
            }
        }
        // Bridges to the next community; bridging through the highest-
        // degree vertices so that hub-paths cross community borders.
        if (comm + 1 < num_communities) {
            const VertexId next = (comm + 1) * community_size;
            for (VertexId k = 0; k < bridges_per_link; ++k) {
                const auto u = static_cast<VertexId>(
                    rng.nextBounded(community_size));
                const auto w = static_cast<VertexId>(
                    rng.nextBounded(community_size));
                b.addUndirectedEdge(base + u, next + w,
                                    drawWeight(rng, opt));
            }
        }
    }
    b.removeSelfLoops();
    return b.build(opt.weighted);
}

} // namespace depgraph::graph
