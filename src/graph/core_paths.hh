/**
 * @file
 * Core-subgraph decomposition into disjoint core-paths (paper Def. 2).
 *
 * The core-subgraph is the union of hub-paths (paths whose endpoints are
 * both hub-vertices). To avoid generating a direct dependency per
 * hub-path, it is represented as a set of *core-paths* that are pairwise
 * disjoint except possibly at their endpoints; a vertex where two
 * core-paths meet is a *core-vertex*. Each core-path later gets exactly
 * one hub-index entry.
 *
 * The paper identifies core-paths at runtime while HDTL traverses the
 * graph; this class provides the equivalent static decomposition that the
 * software preprocessing pass uses to find core-vertices (Sec. III-B,
 * "the software system also finds the hub-vertices and core-vertices ...
 * by traversing the graph only once").
 */

#ifndef DEPGRAPH_GRAPH_CORE_PATHS_HH
#define DEPGRAPH_GRAPH_CORE_PATHS_HH

#include <unordered_map>
#include <vector>

#include "common/bitmap.hh"
#include "common/types.hh"
#include "graph/csr.hh"
#include "graph/hub.hh"
#include "graph/partition.hh"

namespace depgraph::graph
{

/** One core-path: head and tail are hub- or core-vertices; interior
 * vertices belong to no other core-path. */
struct CorePath
{
    VertexId head = kInvalidVertex;
    VertexId tail = kInvalidVertex;
    /** Path identifier: the id of the second vertex on the path (paper
     * Sec. III-B2, "Maintaining the Hub Index"). On multigraphs this
     * is ambiguous (two edge-disjoint paths may share head and second
     * vertex), so hub-index keys use the unique decomposition index
     * instead; pathId is kept for reporting parity with the paper. */
    VertexId pathId = kInvalidVertex;
    /** All vertices head..tail inclusive, in path order. */
    std::vector<VertexId> vertices;
    /** Edge-array indices of the path's edges (vertices.size()-1 of
     * them). */
    std::vector<EdgeId> edges;

    std::size_t length() const { return edges.size(); }
};

class CoreSubgraph
{
  public:
    /**
     * Decompose the hub-path structure of g.
     *
     * @param g Graph.
     * @param hubs Detected hub set.
     * @param max_len Walks longer than this are cut (mirrors the bounded
     *        HDTL stack depth).
     * @param part Optional partitioning: paths never walk across a
     *        partition boundary; the first vertex on the far side
     *        becomes a path endpoint and joins the H'' set, exactly as
     *        the paper's boundary-vertex set H^m' does (Sec. III-B2).
     */
    CoreSubgraph(const Graph &g, const HubSet &hubs,
                 unsigned max_len = 64,
                 const Partitioning *part = nullptr);

    const std::vector<CorePath> &paths() const { return paths_; }

    bool isCoreVertex(VertexId v) const { return coreVertices_.test(v); }

    /** True when v is a hub- OR core-vertex, i.e. v is in the global H
     * set whose per-partition restriction is H'' (paper Sec. III-B2). */
    bool
    isHubOrCore(VertexId v) const
    {
        return hubOrCore_.test(v);
    }

    const Bitmap &hubOrCoreBitmap() const { return hubOrCore_; }

    /** Indices into paths() of core-paths whose head is v. */
    const std::vector<std::uint32_t> &pathsFrom(VertexId v) const;

    std::size_t numCoreVertices() const { return coreVertexCount_; }

  private:
    void recordPath(CorePath &&p);
    /** Split the path containing interior vertex v at v; marks v a
     * core-vertex. */
    void splitAt(VertexId v);

    const Graph &g_;
    std::vector<CorePath> paths_;
    Bitmap coreVertices_;
    Bitmap hubOrCore_;
    std::size_t coreVertexCount_ = 0;

    /** For interior vertices: which live path index owns them. */
    std::vector<std::uint32_t> ownerPath_;
    static constexpr std::uint32_t kNoOwner = 0xffffffffu;

    std::unordered_map<VertexId, std::vector<std::uint32_t>> byHead_;
    std::vector<std::uint32_t> emptyList_;
};

} // namespace depgraph::graph

#endif // DEPGRAPH_GRAPH_CORE_PATHS_HH
