/**
 * @file
 * Vertex relabeling / reordering utilities.
 *
 * Vertex-id locality decides how many edges stay inside a range
 * partition and how well the state arrays cache -- first-order effects
 * for every engine in this repository (and the reason real systems
 * preprocess orderings). Provided orders:
 *
 *  - reverse Cuthill-McKee (bandwidth-minimizing BFS order);
 *  - degree-descending (hub clustering, GRASP-style hot-region
 *    friendliness);
 *  - random (the adversarial baseline).
 */

#ifndef DEPGRAPH_GRAPH_REORDER_HH
#define DEPGRAPH_GRAPH_REORDER_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"

namespace depgraph::graph
{

/**
 * Apply a permutation: vertex v of g becomes perm[v] in the result.
 * perm must be a bijection on [0, numVertices).
 */
Graph relabel(const Graph &g, const std::vector<VertexId> &perm);

/** Is perm a valid permutation for g? */
bool isPermutation(const Graph &g, const std::vector<VertexId> &perm);

/**
 * Reverse Cuthill-McKee order over the undirected view: BFS from a
 * low-degree peripheral vertex, visiting neighbors by ascending
 * degree, then reversed. Returns perm with perm[old] = new.
 */
std::vector<VertexId> rcmOrder(const Graph &g);

/** Degree-descending order: hubs get the smallest ids. */
std::vector<VertexId> degreeOrder(const Graph &g);

/** Uniform random permutation (the locality-destroying baseline). */
std::vector<VertexId> randomOrder(const Graph &g, std::uint64_t seed);

/**
 * Bandwidth of the undirected view under the current labeling:
 * max |u - v| over edges. RCM exists to shrink this.
 */
VertexId bandwidth(const Graph &g);

} // namespace depgraph::graph

#endif // DEPGRAPH_GRAPH_REORDER_HH
