/**
 * @file
 * Non-GAS graph analytics.
 *
 * The paper's Table I lists k-core among the supported min/max
 * algorithms; triangle counting and clique detection are its examples
 * of algorithms that do NOT satisfy the dependency-transformation
 * properties (Sec. III-A3) and must run with the hub index disabled.
 * This module provides exact host-side implementations of these
 * analytics on the CSR substrate -- both as library features in their
 * own right and as oracles for tests.
 */

#ifndef DEPGRAPH_GRAPH_ANALYTICS_HH
#define DEPGRAPH_GRAPH_ANALYTICS_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"

namespace depgraph::graph
{

/**
 * k-core decomposition by iterative peeling over the undirected view
 * (out + in edges): returns the core number of every vertex -- the
 * largest k such that the vertex survives in the subgraph where every
 * vertex has degree >= k. O(E) bucket peeling (Matula-Beck).
 */
std::vector<std::uint32_t> coreNumbers(const Graph &g);

/** Vertices of the k-core: core number >= k. */
std::vector<VertexId> kCoreMembers(const Graph &g, std::uint32_t k);

/** The degeneracy of the graph: max core number. */
std::uint32_t degeneracy(const Graph &g);

/**
 * Exact triangle count over the undirected simple view of the graph
 * (parallel edges and directions collapsed). Merge-based counting on
 * degeneracy-ordered adjacency lists.
 */
std::uint64_t countTriangles(const Graph &g);

/** Per-vertex triangle counts (same undirected simple view). */
std::vector<std::uint64_t> trianglesPerVertex(const Graph &g);

/**
 * Global clustering coefficient: 3 * triangles / open wedges.
 * Returns 0 for graphs without wedges.
 */
double globalClusteringCoefficient(const Graph &g);

/** Out-degree histogram: bucket[i] = #vertices with out-degree i
 * (the tail is clamped into the last bucket). */
std::vector<std::uint64_t> degreeHistogram(const Graph &g,
                                           std::size_t max_degree = 64);

} // namespace depgraph::graph

#endif // DEPGRAPH_GRAPH_ANALYTICS_HH
