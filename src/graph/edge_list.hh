/**
 * @file
 * Edge-list file IO.
 *
 * Text format (SNAP-compatible): one "src dst [weight]" triple per line;
 * lines starting with '#' or '%' are comments. A compact binary format is
 * provided for fast round-tripping of generated graphs.
 */

#ifndef DEPGRAPH_GRAPH_EDGE_LIST_HH
#define DEPGRAPH_GRAPH_EDGE_LIST_HH

#include <string>

#include "graph/csr.hh"

namespace depgraph::graph
{

/** Load a text edge list; vertex count is 1 + max id seen. */
Graph loadEdgeListText(const std::string &path);

/** Save a graph as a text edge list (weights emitted when present). */
void saveEdgeListText(const Graph &g, const std::string &path);

/** Load the compact binary format written by saveBinary(). */
Graph loadBinary(const std::string &path);

/** Save the CSR arrays in a compact binary format. */
void saveBinary(const Graph &g, const std::string &path);

} // namespace depgraph::graph

#endif // DEPGRAPH_GRAPH_EDGE_LIST_HH
