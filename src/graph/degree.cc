#include "graph/degree.hh"

#include <algorithm>
#include <queue>

#include "common/random.hh"

namespace depgraph::graph
{

DegreeStats
degreeStats(const Graph &g)
{
    DegreeStats s;
    const VertexId n = g.numVertices();
    std::vector<EdgeId> degs(n);
    EdgeId total = 0;
    for (VertexId v = 0; v < n; ++v) {
        degs[v] = g.outDegree(v);
        total += degs[v];
        s.maxOutDegree = std::max(s.maxOutDegree, degs[v]);
    }
    s.avgOutDegree = n ? static_cast<double>(total) / n : 0.0;
    std::sort(degs.begin(), degs.end());
    s.medianOutDegree = n ? degs[n / 2] : 0;
    const VertexId top = std::max<VertexId>(1, n / 100);
    EdgeId top_edges = 0;
    for (VertexId i = 0; i < top; ++i)
        top_edges += degs[n - 1 - i];
    s.top1PctEdgeShare =
        total ? static_cast<double>(top_edges) / total : 0.0;
    return s;
}

namespace
{

/** BFS over the union of out- and in-edges; returns hop distances
 * (kInvalidVertex for unreachable). */
std::vector<VertexId>
bfsUndirected(const Graph &g, VertexId src)
{
    std::vector<VertexId> dist(g.numVertices(), kInvalidVertex);
    std::queue<VertexId> q;
    dist[src] = 0;
    q.push(src);
    while (!q.empty()) {
        const VertexId u = q.front();
        q.pop();
        auto visit = [&](VertexId w) {
            if (dist[w] == kInvalidVertex) {
                dist[w] = dist[u] + 1;
                q.push(w);
            }
        };
        for (auto w : g.neighbors(u))
            visit(w);
        for (auto w : g.inNeighbors(u))
            visit(w);
    }
    return dist;
}

} // namespace

VertexId
estimateDiameter(const Graph &g, unsigned num_samples, std::uint64_t seed)
{
    Rng rng(seed);
    g.buildTranspose();
    VertexId best = 0;
    VertexId src = 0;
    for (unsigned s = 0; s < num_samples; ++s) {
        const auto dist = bfsUndirected(g, src);
        VertexId ecc = 0;
        VertexId far = src;
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            if (dist[v] != kInvalidVertex && dist[v] > ecc) {
                ecc = dist[v];
                far = v;
            }
        }
        best = std::max(best, ecc);
        // Double-sweep: continue from the farthest vertex found; mixing
        // in a random restart every other sample avoids local basins.
        src = (s % 2 == 0)
            ? far
            : static_cast<VertexId>(rng.nextBounded(g.numVertices()));
    }
    return best;
}

double
averagePathLength(const Graph &g, unsigned num_samples, std::uint64_t seed)
{
    Rng rng(seed);
    g.buildTranspose();
    double total = 0.0;
    std::uint64_t count = 0;
    for (unsigned s = 0; s < num_samples; ++s) {
        const auto src = static_cast<VertexId>(
            rng.nextBounded(g.numVertices()));
        const auto dist = bfsUndirected(g, src);
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            if (v != src && dist[v] != kInvalidVertex) {
                total += dist[v];
                ++count;
            }
        }
    }
    return count ? total / static_cast<double>(count) : 0.0;
}

std::vector<VertexId>
verticesByDegreeDesc(const Graph &g)
{
    std::vector<VertexId> order(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        order[v] = v;
    std::sort(order.begin(), order.end(),
              [&](VertexId a, VertexId b) {
                  const auto da = g.outDegree(a), db = g.outDegree(b);
                  if (da != db)
                      return da > db;
                  return a < b;
              });
    return order;
}

} // namespace depgraph::graph
