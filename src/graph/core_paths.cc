#include "graph/core_paths.hh"

#include <algorithm>

#include "common/logging.hh"

namespace depgraph::graph
{

CoreSubgraph::CoreSubgraph(const Graph &g, const HubSet &hubs,
                           unsigned max_len, const Partitioning *part)
    : g_(g), coreVertices_(g.numVertices()), hubOrCore_(g.numVertices()),
      ownerPath_(g.numVertices(), kNoOwner)
{
    for (auto h : hubs.hubList())
        hubOrCore_.set(h);

    // Edge-disjointness guard: an edge can appear in one core-path only.
    Bitmap edge_used(g.numEdges());

    // Epoch-stamped on-walk marker: O(1) "is this vertex already on
    // the current walk" instead of scanning the walk vector.
    std::vector<std::uint32_t> walk_epoch(g.numVertices(), 0);
    std::uint32_t walk_id = 0;

    // Walk from every hub along every out-edge. Process hubs in id
    // order for determinism; the walk greedily extends through
    // unclaimed non-hub vertices until it reaches another hub/core
    // vertex, joins an existing path interior (which splits that path),
    // dead-ends, or exceeds max_len.
    for (auto head : hubs.hubList()) {
        const unsigned head_owner = part ? part->ownerOf(head) : 0;
        for (EdgeId e0 = g.edgeBegin(head); e0 < g.edgeEnd(head); ++e0) {
            if (edge_used.test(e0))
                continue;

            CorePath p;
            p.head = head;
            p.vertices.push_back(head);
            ++walk_id;
            walk_epoch[head] = walk_id;

            EdgeId cur_edge = e0;
            VertexId cur = g.target(e0);
            bool completed = false;

            while (p.edges.size() < max_len) {
                if (cur == head)
                    break; // degenerate cycle back to the head

                p.edges.push_back(cur_edge);
                p.vertices.push_back(cur);
                walk_epoch[cur] = walk_id;

                if (hubOrCore_.test(cur)) {
                    completed = true; // reached a hub or core vertex
                    break;
                }
                if (part && part->ownerOf(cur) != head_owner) {
                    // Crossed a partition boundary: cur joins H'' as a
                    // boundary vertex and terminates the path, so every
                    // core-path interior stays within one partition.
                    if (ownerPath_[cur] != kNoOwner) {
                        splitAt(cur); // also marks cur a core-vertex
                    } else if (!coreVertices_.test(cur)) {
                        coreVertices_.set(cur);
                        hubOrCore_.set(cur);
                        ++coreVertexCount_;
                    }
                    completed = true;
                    break;
                }
                if (ownerPath_[cur] != kNoOwner) {
                    // Joined the interior of another core-path: that
                    // vertex becomes a core-vertex and the other path is
                    // split around it.
                    splitAt(cur);
                    completed = true;
                    break;
                }

                // Claim cur as interior (tentatively; owner index is
                // assigned when the path is recorded) and advance to the
                // best unvisited out-neighbor: prefer hubs/core vertices,
                // then unclaimed vertices via an unused edge.
                EdgeId next_edge = g.numEdges();
                EdgeId fallback_edge = g.numEdges();
                for (EdgeId e = g.edgeBegin(cur); e < g.edgeEnd(cur);
                     ++e) {
                    if (edge_used.test(e))
                        continue;
                    const VertexId t = g.target(e);
                    if (t == cur)
                        continue;
                    // Avoid revisiting a vertex already on this walk.
                    if (walk_epoch[t] == walk_id)
                        continue;
                    if (hubOrCore_.test(t) || ownerPath_[t] != kNoOwner) {
                        next_edge = e;
                        break;
                    }
                    if (fallback_edge == g.numEdges())
                        fallback_edge = e;
                }
                if (next_edge == g.numEdges())
                    next_edge = fallback_edge;
                if (next_edge == g.numEdges())
                    break; // dead end: abandon the walk

                cur_edge = next_edge;
                cur = g.target(next_edge);
            }

            if (completed && !p.edges.empty()) {
                p.tail = p.vertices.back();
                p.pathId = p.vertices.size() > 1 ? p.vertices[1]
                                                 : kInvalidVertex;
                for (auto e : p.edges)
                    edge_used.set(e);
                recordPath(std::move(p));
            }
        }
    }
}

void
CoreSubgraph::recordPath(CorePath &&p)
{
    const auto idx = static_cast<std::uint32_t>(paths_.size());
    // Interior vertices now belong to this path.
    for (std::size_t i = 1; i + 1 < p.vertices.size(); ++i)
        ownerPath_[p.vertices[i]] = idx;
    byHead_[p.head].push_back(idx);
    paths_.push_back(std::move(p));
}

void
CoreSubgraph::splitAt(VertexId v)
{
    const std::uint32_t owner = ownerPath_[v];
    dg_assert(owner != kNoOwner, "splitAt on unowned vertex ", v);
    CorePath old = std::move(paths_[owner]);

    // Mark v as a core-vertex; it is now a legal path endpoint.
    if (!coreVertices_.test(v)) {
        coreVertices_.set(v);
        hubOrCore_.set(v);
        ++coreVertexCount_;
    }

    const auto it = std::find(old.vertices.begin(), old.vertices.end(), v);
    dg_assert(it != old.vertices.end(), "vertex not on owner path");
    const auto pos =
        static_cast<std::size_t>(it - old.vertices.begin());

    CorePath first, second;
    first.head = old.head;
    first.tail = v;
    first.vertices.assign(old.vertices.begin(),
                          old.vertices.begin() + pos + 1);
    first.edges.assign(old.edges.begin(), old.edges.begin() + pos);
    first.pathId =
        first.vertices.size() > 1 ? first.vertices[1] : kInvalidVertex;

    second.head = v;
    second.tail = old.tail;
    second.vertices.assign(old.vertices.begin() + pos,
                           old.vertices.end());
    second.edges.assign(old.edges.begin() + pos, old.edges.end());
    second.pathId =
        second.vertices.size() > 1 ? second.vertices[1] : kInvalidVertex;

    // Replace the old path in place with `first`; detach the old head
    // list entry only if the path id changes (it does not: same head).
    for (std::size_t i = 1; i + 1 < first.vertices.size(); ++i)
        ownerPath_[first.vertices[i]] = owner;
    ownerPath_[v] = kNoOwner;
    paths_[owner] = std::move(first);

    if (!second.edges.empty()) {
        recordPath(std::move(second));
    }
}

const std::vector<std::uint32_t> &
CoreSubgraph::pathsFrom(VertexId v) const
{
    auto it = byHead_.find(v);
    return it == byHead_.end() ? emptyList_ : it->second;
}

} // namespace depgraph::graph
