/**
 * @file
 * Degree distribution and distance statistics (Table III style).
 */

#ifndef DEPGRAPH_GRAPH_DEGREE_HH
#define DEPGRAPH_GRAPH_DEGREE_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"

namespace depgraph::graph
{

struct DegreeStats
{
    double avgOutDegree = 0.0;
    EdgeId maxOutDegree = 0;
    EdgeId medianOutDegree = 0;
    /** Fraction of edges owned by the top 1% highest-degree vertices;
     * a skew proxy (power-law graphs land far above 0.01). */
    double top1PctEdgeShare = 0.0;
};

DegreeStats degreeStats(const Graph &g);

/**
 * Estimate the (effective) diameter: run BFS over undirected edges from
 * num_samples random sources and report the largest finite eccentricity
 * seen. Exact on small graphs when num_samples >= numVertices.
 */
VertexId estimateDiameter(const Graph &g, unsigned num_samples = 8,
                          std::uint64_t seed = 1);

/**
 * Mean shortest-path hop count over sampled reachable pairs (the paper's
 * "average length of the dependency chain" proxy, Sec. II).
 */
double averagePathLength(const Graph &g, unsigned num_samples = 8,
                         std::uint64_t seed = 1);

/** Vertices sorted by descending out-degree (ties by id). */
std::vector<VertexId> verticesByDegreeDesc(const Graph &g);

} // namespace depgraph::graph

#endif // DEPGRAPH_GRAPH_DEGREE_HH
