/**
 * @file
 * Stand-ins for the paper's six SNAP datasets (Table III).
 *
 * The real graphs (up to 950M edges) are not redistributable nor
 * tractable inside a functional timing simulator, so each dataset is
 * replaced with a seeded synthetic graph matching its average degree,
 * diameter class, and power-law skew at a reduced scale. See DESIGN.md
 * Sec. 2 for the substitution argument.
 */

#ifndef DEPGRAPH_GRAPH_DATASETS_HH
#define DEPGRAPH_GRAPH_DATASETS_HH

#include <string>
#include <vector>

#include "graph/csr.hh"

namespace depgraph::graph
{

struct DatasetInfo
{
    std::string name;       ///< paper short name: GL/AZ/PK/OK/LJ/FS
    std::string fullName;   ///< SNAP dataset it stands in for
    VertexId paperVertices; ///< Table III vertex count
    EdgeId paperEdges;      ///< Table III edge count
    double paperAvgDegree;  ///< Table III D-bar
    VertexId paperDiameter; ///< Table III d
};

/** The six paper datasets, in Table III order. */
const std::vector<DatasetInfo> &datasetCatalog();

/** Look up catalog info by short name (GL/AZ/PK/OK/LJ/FS). */
const DatasetInfo &datasetInfo(const std::string &name);

/**
 * Build the synthetic stand-in for the named dataset.
 *
 * @param name Short name from the catalog.
 * @param scale Linear scale factor on vertex count (1.0 = default
 *        reduced size; smaller for quick tests).
 */
Graph makeDataset(const std::string &name, double scale = 1.0);

/** Short names in Table III order, for iteration in benches. */
const std::vector<std::string> &datasetNames();

} // namespace depgraph::graph

#endif // DEPGRAPH_GRAPH_DATASETS_HH
