/**
 * @file
 * Hub-vertex detection (paper Definition 1).
 *
 * A vertex is a hub when its degree exceeds a threshold T. Users specify
 * lambda (target fraction of hub vertices, default 0.5%) and the
 * threshold is derived by sampling a beta fraction of vertices instead of
 * sorting them all, exactly as Sec. III-A1 describes: sample beta*n
 * vertices, sort the sample by degree, and take the degree at position
 * lambda*beta*n as T.
 */

#ifndef DEPGRAPH_GRAPH_HUB_HH
#define DEPGRAPH_GRAPH_HUB_HH

#include <cstdint>
#include <vector>

#include "common/bitmap.hh"
#include "common/types.hh"
#include "graph/csr.hh"

namespace depgraph::graph
{

struct HubParams
{
    double lambda = 0.005;  ///< target hub fraction (paper default 0.5%)
    double beta = 0.001;    ///< sampling fraction (paper default 0.001)
    std::uint64_t seed = 7; ///< sampling seed
};

class HubSet
{
  public:
    /** Detect hubs of g under params. Degree = out-degree, matching the
     * propagation role hubs play. */
    HubSet(const Graph &g, const HubParams &params);

    /**
     * Force an explicit hub list, bypassing threshold detection. Used by
     * tests and by callers that precompute hubs externally. The
     * threshold is reported as the minimum degree among the given hubs.
     */
    HubSet(const Graph &g, std::vector<VertexId> explicit_hubs);

    bool isHub(VertexId v) const { return hubs_.test(v); }
    const std::vector<VertexId> &hubList() const { return hubList_; }
    std::size_t numHubs() const { return hubList_.size(); }

    /** The derived degree threshold T. */
    EdgeId threshold() const { return threshold_; }

    /** Bitmap view (the in-memory structure DEP_configure passes). */
    const Bitmap &bitmap() const { return hubs_; }

  private:
    Bitmap hubs_;
    std::vector<VertexId> hubList_;
    EdgeId threshold_ = 0;
};

} // namespace depgraph::graph

#endif // DEPGRAPH_GRAPH_HUB_HH
