#include "graph/hub.hh"

#include <algorithm>
#include <functional>

#include "common/logging.hh"
#include "common/random.hh"

namespace depgraph::graph
{

HubSet::HubSet(const Graph &g, std::vector<VertexId> explicit_hubs)
    : hubs_(g.numVertices()), hubList_(std::move(explicit_hubs))
{
    std::sort(hubList_.begin(), hubList_.end());
    hubList_.erase(std::unique(hubList_.begin(), hubList_.end()),
                   hubList_.end());
    threshold_ = g.numEdges() + 1;
    for (auto v : hubList_) {
        dg_assert(v < g.numVertices(), "hub vertex ", v, " out of range");
        hubs_.set(v);
        threshold_ = std::min(threshold_, g.outDegree(v));
    }
    if (hubList_.empty())
        threshold_ = 0;
}

HubSet::HubSet(const Graph &g, const HubParams &params)
    : hubs_(g.numVertices())
{
    dg_assert(params.lambda >= 0.0 && params.lambda <= 1.0,
              "lambda must be in [0, 1]");
    dg_assert(params.beta > 0.0 && params.beta <= 1.0,
              "beta must be in (0, 1]");
    const VertexId n = g.numVertices();
    if (params.lambda == 0.0)
        return; // hub machinery disabled

    // Sample beta*n vertices (at least a small floor so tiny graphs
    // still produce a sensible threshold).
    Rng rng(params.seed);
    const std::size_t sample_size = std::max<std::size_t>(
        std::min<std::size_t>(n, 64),
        static_cast<std::size_t>(params.beta * static_cast<double>(n)));
    std::vector<EdgeId> sample;
    sample.reserve(sample_size);
    for (std::size_t i = 0; i < sample_size; ++i) {
        const auto v = static_cast<VertexId>(rng.nextBounded(n));
        sample.push_back(g.outDegree(v));
    }
    std::sort(sample.begin(), sample.end(), std::greater<EdgeId>());
    auto pos = static_cast<std::size_t>(
        params.lambda * static_cast<double>(sample.size()));
    if (pos >= sample.size())
        pos = sample.size() - 1;
    threshold_ = std::max<EdgeId>(sample[pos], 1);

    for (VertexId v = 0; v < n; ++v) {
        if (g.outDegree(v) >= threshold_) {
            hubs_.set(v);
            hubList_.push_back(v);
        }
    }
}

} // namespace depgraph::graph
