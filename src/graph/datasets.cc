#include "graph/datasets.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "graph/generators.hh"

namespace depgraph::graph
{

const std::vector<DatasetInfo> &
datasetCatalog()
{
    static const std::vector<DatasetInfo> catalog = {
        {"GL", "ego-Gplus", 107614, 13673453, 127.0, 6},
        {"AZ", "com-Amazon", 334863, 925872, 6.0, 44},
        {"PK", "soc-Pokec", 1632803, 30622564, 19.0, 11},
        {"OK", "com-Orkut", 3072441, 117185083, 76.0, 9},
        {"LJ", "com-LiveJournal", 3997962, 34681189, 17.0, 17},
        {"FS", "com-Friendster", 65608366, 950652916, 29.0, 32},
    };
    return catalog;
}

const DatasetInfo &
datasetInfo(const std::string &name)
{
    for (const auto &d : datasetCatalog())
        if (d.name == name)
            return d;
    dg_fatal("unknown dataset '", name, "' (use GL/AZ/PK/OK/LJ/FS)");
}

const std::vector<std::string> &
datasetNames()
{
    static const std::vector<std::string> names = {"GL", "AZ", "PK",
                                                   "OK", "LJ", "FS"};
    return names;
}

Graph
makeDataset(const std::string &name, double scale)
{
    dg_assert(scale > 0.0, "dataset scale must be positive");
    auto scaled = [&](VertexId base) {
        return std::max<VertexId>(
            64, static_cast<VertexId>(std::lround(base * scale)));
    };

    GenOptions opt;
    opt.weighted = true;

    if (name == "GL") {
        // Dense ego network: very high average degree, tiny diameter.
        opt.seed = 101;
        return powerLaw(scaled(9000), 2.0, 90.0, opt);
    }
    if (name == "AZ") {
        // Sparse co-purchase graph: low degree, large diameter. A chain
        // of mild-skew communities stretches the diameter into the 40s.
        opt.seed = 102;
        return communityChain(36, scaled(700), 2.1, 6.0, 2, opt);
    }
    if (name == "PK") {
        // Social network: moderate degree, moderate diameter.
        opt.seed = 103;
        return powerLaw(scaled(30000), 2.0, 19.0, opt);
    }
    if (name == "OK") {
        // Dense social network: high degree, small diameter.
        opt.seed = 104;
        return powerLaw(scaled(22000), 1.9, 60.0, opt);
    }
    if (name == "LJ") {
        // Blog network: moderate degree, larger diameter -> a few
        // communities in a chain, strong internal skew.
        opt.seed = 105;
        return communityChain(8, scaled(4500), 1.95, 17.0, 3, opt);
    }
    if (name == "FS") {
        // Friendster: biggest graph, moderate degree, large diameter.
        opt.seed = 106;
        return communityChain(16, scaled(3750), 1.95, 25.0, 3, opt);
    }
    dg_fatal("unknown dataset '", name, "' (use GL/AZ/PK/OK/LJ/FS)");
}

} // namespace depgraph::graph
