/**
 * @file
 * Synthetic graph generators.
 *
 * These provide the workloads for all experiments. powerLaw() matches the
 * construction used for the paper's Table V / Fig. 19 sensitivity study
 * (fixed vertex count, Zipfian degree skew controlled by alpha), and
 * communityChain() produces the high-diameter power-law graphs needed to
 * stand in for com-Amazon and com-Friendster.
 */

#ifndef DEPGRAPH_GRAPH_GENERATORS_HH
#define DEPGRAPH_GRAPH_GENERATORS_HH

#include <cstdint>

#include "graph/csr.hh"

namespace depgraph::graph
{

/** Shared knobs for all generators. */
struct GenOptions
{
    std::uint64_t seed = 42;
    /** Emit uniform-random edge weights in [minWeight, maxWeight). */
    bool weighted = true;
    Value minWeight = 1.0;
    Value maxWeight = 8.0;
};

/**
 * Power-law graph: out-degree of the rank-r vertex is proportional to
 * 1/r^alpha (normalized so the total edge count comes out near
 * num_vertices * avg_degree); edge targets are drawn Zipf-distributed
 * over degree rank so in-degree is skewed too (preferential attachment
 * flavour). Lower alpha => heavier skew, as in the paper's Table V.
 */
Graph powerLaw(VertexId num_vertices, double alpha, double avg_degree,
               const GenOptions &opt = {});

/**
 * Power-law graph sized the way the paper's Table V does it: vertex count
 * is fixed and the edge count emerges from alpha alone (alpha 1.8 ->
 * ~67 edges/kvertex at paper scale). We mimic that by deriving
 * avg_degree from alpha with the paper's ratios.
 */
Graph powerLawTableV(VertexId num_vertices, double alpha,
                     const GenOptions &opt = {});

/** R-MAT (Graph500-style recursive matrix) generator. */
Graph rmat(VertexId num_vertices_log2, EdgeId num_edges,
           double a = 0.57, double b = 0.19, double c = 0.19,
           const GenOptions &opt = {});

/** Erdos-Renyi G(n, m): m directed edges chosen uniformly. */
Graph erdosRenyi(VertexId num_vertices, EdgeId num_edges,
                 const GenOptions &opt = {});

/** 2-D grid/mesh with 4-neighbor bidirectional edges (mesh-like graphs
 * exercise DepGraph-H with the hub index disabled, Sec. IV-A). */
Graph grid(VertexId rows, VertexId cols, const GenOptions &opt = {});

/** Simple directed path v0 -> v1 -> ... -> v(n-1): the worst-case single
 * dependency chain. */
Graph path(VertexId num_vertices, const GenOptions &opt = {});

/** Directed ring: path plus a closing edge. */
Graph ring(VertexId num_vertices, const GenOptions &opt = {});

/** Star: hub vertex 0 with bidirectional spokes. */
Graph star(VertexId num_vertices, const GenOptions &opt = {});

/** Complete binary out-tree rooted at 0. */
Graph binaryTree(VertexId num_vertices, const GenOptions &opt = {});

/**
 * Chain of power-law communities: num_communities clusters of
 * community_size vertices, each internally skewed, consecutive clusters
 * joined by bridge edges. Produces large diameter together with
 * power-law degree skew (the AZ / FS regime in Table III).
 */
Graph communityChain(VertexId num_communities, VertexId community_size,
                     double alpha, double avg_degree,
                     VertexId bridges_per_link = 2,
                     const GenOptions &opt = {});

} // namespace depgraph::graph

#endif // DEPGRAPH_GRAPH_GENERATORS_HH
