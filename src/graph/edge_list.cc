#include "graph/edge_list.hh"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "graph/builder.hh"

namespace depgraph::graph
{

namespace
{

constexpr std::uint64_t kBinaryMagic = 0x4447424e31303030ull; // "DGBN1000"

} // namespace

Graph
loadEdgeListText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        dg_fatal("cannot open edge list '", path, "'");

    std::vector<VertexId> srcs, dsts;
    std::vector<Value> weights;
    bool any_weight = false;
    VertexId max_id = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream ls(line);
        std::uint64_t s, d;
        if (!(ls >> s >> d))
            dg_fatal("malformed edge list line: '", line, "'");
        double w;
        if (ls >> w)
            any_weight = true;
        else
            w = 1.0;
        srcs.push_back(static_cast<VertexId>(s));
        dsts.push_back(static_cast<VertexId>(d));
        weights.push_back(w);
        max_id = std::max({max_id, static_cast<VertexId>(s),
                           static_cast<VertexId>(d)});
    }
    if (srcs.empty())
        dg_fatal("edge list '", path, "' contains no edges");

    Builder b(max_id + 1);
    for (std::size_t i = 0; i < srcs.size(); ++i)
        b.addEdge(srcs[i], dsts[i], weights[i]);
    return b.build(any_weight);
}

void
saveEdgeListText(const Graph &g, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        dg_fatal("cannot write edge list '", path, "'");
    out << "# depgraph edge list: " << g.numVertices() << " vertices, "
        << g.numEdges() << " edges\n";
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e) {
            out << v << ' ' << g.target(e);
            if (g.weighted())
                out << ' ' << g.weight(e);
            out << '\n';
        }
    }
}

void
saveBinary(const Graph &g, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        dg_fatal("cannot write binary graph '", path, "'");
    auto put = [&](const void *p, std::size_t n) {
        out.write(static_cast<const char *>(p),
                  static_cast<std::streamsize>(n));
    };
    const std::uint64_t magic = kBinaryMagic;
    const std::uint64_t nv = g.numVertices();
    const std::uint64_t ne = g.numEdges();
    const std::uint64_t weighted = g.weighted() ? 1 : 0;
    put(&magic, 8);
    put(&nv, 8);
    put(&ne, 8);
    put(&weighted, 8);
    put(g.offsets().data(), g.offsets().size() * sizeof(EdgeId));
    put(g.targets().data(), g.targets().size() * sizeof(VertexId));
    if (weighted)
        put(g.weights().data(), g.weights().size() * sizeof(Value));
}

Graph
loadBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        dg_fatal("cannot open binary graph '", path, "'");
    auto get = [&](void *p, std::size_t n) {
        in.read(static_cast<char *>(p), static_cast<std::streamsize>(n));
        if (!in)
            dg_fatal("truncated binary graph '", path, "'");
    };
    std::uint64_t magic, nv, ne, weighted;
    get(&magic, 8);
    if (magic != kBinaryMagic)
        dg_fatal("'", path, "' is not a depgraph binary graph");
    get(&nv, 8);
    get(&ne, 8);
    get(&weighted, 8);
    std::vector<EdgeId> offsets(nv + 1);
    std::vector<VertexId> targets(ne);
    std::vector<Value> weights(weighted ? ne : 0);
    get(offsets.data(), offsets.size() * sizeof(EdgeId));
    get(targets.data(), targets.size() * sizeof(VertexId));
    if (weighted)
        get(weights.data(), weights.size() * sizeof(Value));
    return Graph(std::move(offsets), std::move(targets),
                 std::move(weights));
}

} // namespace depgraph::graph
