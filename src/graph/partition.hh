/**
 * @file
 * Contiguous vertex-range partitioning across cores.
 *
 * Matches the scheme DepGraph assumes (paper Sec. III-B2): each core owns
 * a partition identified by a [begin, end) vertex-id range, so membership
 * tests reduce to two id comparisons, exactly as the paper's cross-core
 * activation check does ("it only needs to simply check the partition
 * boundaries by comparing the ID ... with the IDs of the beginning and
 * the end vertex").
 */

#ifndef DEPGRAPH_GRAPH_PARTITION_HH
#define DEPGRAPH_GRAPH_PARTITION_HH

#include <vector>

#include "common/types.hh"
#include "graph/csr.hh"

namespace depgraph::graph
{

struct PartitionRange
{
    VertexId begin = 0; ///< first vertex id in the partition
    VertexId end = 0;   ///< one past the last vertex id

    bool contains(VertexId v) const { return v >= begin && v < end; }
    VertexId size() const { return end - begin; }
};

class Partitioning
{
  public:
    /**
     * Split [0, numVertices) into num_parts contiguous ranges balanced
     * by out-edge count (each range carries ~|E|/num_parts edges).
     */
    Partitioning(const Graph &g, unsigned num_parts);

    unsigned numParts() const
    {
        return static_cast<unsigned>(ranges_.size());
    }

    const PartitionRange &range(unsigned p) const { return ranges_[p]; }

    /** Partition owning vertex v (binary search over range bounds). */
    unsigned ownerOf(VertexId v) const;

  private:
    std::vector<PartitionRange> ranges_;
};

} // namespace depgraph::graph

#endif // DEPGRAPH_GRAPH_PARTITION_HH
