#include "graph/csr.hh"

namespace depgraph::graph
{

Graph::Graph(std::vector<EdgeId> offsets, std::vector<VertexId> targets,
             std::vector<Value> weights)
    : offsets_(std::move(offsets)), targets_(std::move(targets)),
      weights_(std::move(weights))
{
    dg_assert(!offsets_.empty(), "offset array must have >= 1 entry");
    numVertices_ = static_cast<VertexId>(offsets_.size() - 1);
    dg_assert(offsets_.back() == targets_.size(),
              "offset array end (", offsets_.back(),
              ") != edge array size (", targets_.size(), ")");
    dg_assert(weights_.empty() || weights_.size() == targets_.size(),
              "weight array size mismatch");
    for (VertexId v = 0; v < numVertices_; ++v) {
        dg_assert(offsets_[v] <= offsets_[v + 1],
                  "offset array not monotone at vertex ", v);
    }
    for (auto t : targets_)
        dg_assert(t < numVertices_, "edge target ", t, " out of range");
}

void
Graph::buildTranspose() const
{
    if (transposeBuilt_)
        return;
    inOffsets_.assign(numVertices_ + 1, 0);
    for (auto t : targets_)
        ++inOffsets_[t + 1];
    for (VertexId v = 0; v < numVertices_; ++v)
        inOffsets_[v + 1] += inOffsets_[v];
    inSources_.resize(targets_.size());
    if (!weights_.empty())
        inWeights_.resize(targets_.size());
    std::vector<EdgeId> cursor(inOffsets_.begin(), inOffsets_.end() - 1);
    for (VertexId v = 0; v < numVertices_; ++v) {
        for (EdgeId e = offsets_[v]; e < offsets_[v + 1]; ++e) {
            const VertexId t = targets_[e];
            const EdgeId slot = cursor[t]++;
            inSources_[slot] = v;
            if (!weights_.empty())
                inWeights_[slot] = weights_[e];
        }
    }
    transposeBuilt_ = true;
}

EdgeId
Graph::inDegree(VertexId v) const
{
    buildTranspose();
    return inOffsets_[v + 1] - inOffsets_[v];
}

std::span<const VertexId>
Graph::inNeighbors(VertexId v) const
{
    buildTranspose();
    return {inSources_.data() + inOffsets_[v],
            inSources_.data() + inOffsets_[v + 1]};
}

Value
Graph::inWeight(VertexId v, EdgeId k) const
{
    buildTranspose();
    return inWeights_.empty() ? 1.0 : inWeights_[inOffsets_[v] + k];
}

EdgeId
Graph::totalDegree(VertexId v) const
{
    return outDegree(v) + inDegree(v);
}

std::size_t
Graph::byteSize() const
{
    return offsets_.size() * sizeof(EdgeId)
        + targets_.size() * sizeof(VertexId)
        + weights_.size() * sizeof(Value);
}

} // namespace depgraph::graph
