/**
 * @file
 * Main memory model: fixed DDR4-class access latency plus a per-channel
 * serialization term that approximates bandwidth contention without a
 * global event queue (cores simulate in virtual time).
 */

#ifndef DEPGRAPH_SIM_DRAM_HH
#define DEPGRAPH_SIM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/params.hh"

namespace depgraph::sim
{

class Dram
{
  public:
    explicit Dram(const MachineParams &p)
        : latency_(p.dramLatency), occupancy_(p.dramChannelOccupancy),
          pending_(p.dramChannels, 0)
    {}

    /**
     * Access one line. Returns the latency the requester observes:
     * base latency plus a queueing estimate derived from how many
     * recent requests target the same channel.
     */
    Cycles
    access(Addr line_addr)
    {
        const auto ch =
            static_cast<unsigned>((line_addr >> 1) % pending_.size());
        ++accesses_;
        // Decaying per-channel pressure counter: every access bumps the
        // channel, every other channel leaks. This yields a smooth
        // contention term without global time.
        auto &q = pending_[ch];
        const Cycles queue_penalty = q * occupancy_ / 2;
        q = q < 16 ? q + 1 : q;
        for (auto &other : pending_)
            if (&other != &q && other > 0)
                --other;
        return latency_ + queue_penalty;
    }

    std::uint64_t accesses() const { return accesses_; }

    void
    clearStats()
    {
        accesses_ = 0;
        for (auto &q : pending_)
            q = 0;
    }

  private:
    Cycles latency_;
    Cycles occupancy_;
    std::vector<Cycles> pending_;
    std::uint64_t accesses_ = 0;
};

} // namespace depgraph::sim

#endif // DEPGRAPH_SIM_DRAM_HH
