/**
 * @file
 * Energy model (Fig. 14 reproduction).
 *
 * McPAT-style accounting: per-event energies for each component
 * multiplied by event counts from the machine stats, plus per-cycle
 * core energies split into busy and idle. Constants are 22 nm-class
 * estimates, documented inline; the figure of merit is the *relative*
 * energy between solutions, matching how the paper reports Fig. 14
 * (normalized to HATS).
 */

#ifndef DEPGRAPH_SIM_ENERGY_HH
#define DEPGRAPH_SIM_ENERGY_HH

#include <cstdint>

#include "sim/machine.hh"

namespace depgraph::sim
{

/** Per-event and per-cycle energies in picojoules. */
struct EnergyParams
{
    double l1AccessPj = 15.0;    ///< 32 KB SRAM read/write
    double l2AccessPj = 45.0;    ///< 256 KB SRAM
    double l3AccessPj = 220.0;   ///< 4 MB bank incl. tag + data
    double nocHopPj = 26.0;      ///< 64 B message through one router
    double dramAccessPj = 10400; ///< 64 B DDR4 line transfer
    double coreBusyPj = 1500.0;  ///< OOO core active cycle (~3.75 W)
    double coreIdlePj = 300.0;   ///< clock-gated stall cycle
    double accelOpPj = 6.0;      ///< one HDTL/DDMU (or peer) operation
};

struct EnergyBreakdown
{
    double coreMj = 0.0;  ///< busy + idle core energy, millijoules
    double cacheMj = 0.0; ///< L1 + L2 + L3
    double nocMj = 0.0;
    double dramMj = 0.0;
    double accelMj = 0.0;

    double
    totalMj() const
    {
        return coreMj + cacheMj + nocMj + dramMj + accelMj;
    }
};

/**
 * Fold machine stats and core activity into an energy breakdown.
 *
 * @param stats Memory-system event counts.
 * @param busy_cycles Sum over cores of cycles doing useful work.
 * @param idle_cycles Sum over cores of stall/idle cycles to makespan.
 * @param accel_ops Accelerator operations (0 for software-only runs).
 */
EnergyBreakdown computeEnergy(const MachineStats &stats,
                              std::uint64_t busy_cycles,
                              std::uint64_t idle_cycles,
                              std::uint64_t accel_ops,
                              const EnergyParams &p = {});

} // namespace depgraph::sim

#endif // DEPGRAPH_SIM_ENERGY_HH
