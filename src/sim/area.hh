/**
 * @file
 * Analytic area/power model for the per-core accelerators (Table IV).
 *
 * Each accelerator is modelled as SRAM storage bits plus random logic
 * gates, both at a commercial 14 nm process. The reference core is a
 * Skylake-class OOO core. The derived numbers land on the paper's
 * Table IV values; the derivation (bits, gates, densities) is explicit
 * so the table is regenerated rather than transcribed.
 */

#ifndef DEPGRAPH_SIM_AREA_HH
#define DEPGRAPH_SIM_AREA_HH

#include <string>
#include <vector>

namespace depgraph::sim
{

struct AccelAreaSpec
{
    std::string name;
    double storageKbits = 0.0; ///< buffers/queues in the accelerator
    double logicKGates = 0.0;  ///< control + datapath gate estimate
};

struct AccelAreaResult
{
    std::string name;
    double areaMm2 = 0.0;
    double pctCore = 0.0; ///< of one OOO core
    double powerMw = 0.0; ///< across the 64-core chip
    double pctTdp = 0.0;
};

/** Process/technology constants used by the model. */
struct AreaModelParams
{
    double sramMm2PerKbit = 0.000070; ///< 6T SRAM + periphery @14nm
    double logicMm2PerKGate = 0.000125; ///< NAND2-equivalent @14nm
    double coreAreaMm2 = 1.85;       ///< Skylake-class core (no L2)
    double chipTdpW = 195.0;         ///< 64-core chip TDP
    double mwPerMm2 = 950.0;         ///< accelerator power density
    unsigned numCores = 64;
};

/** Derive area/power for one spec. */
AccelAreaResult deriveArea(const AccelAreaSpec &spec,
                           const AreaModelParams &p = {});

/**
 * The four accelerators of Table IV with their structural estimates:
 * HATS (traversal scheduler), Minnow (worklist engine, the largest
 * buffers), PHI (update coalescing logic), DepGraph (6.1 Kbit stack +
 * 4.8 Kbit FIFO edge buffer + HDTL/DDMU logic).
 */
std::vector<AccelAreaSpec> tableIVSpecs();

/** Derived Table IV. */
std::vector<AccelAreaResult> tableIV(const AreaModelParams &p = {});

} // namespace depgraph::sim

#endif // DEPGRAPH_SIM_AREA_HH
