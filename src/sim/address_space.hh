/**
 * @file
 * Simulated physical address space: a bump allocator handing out
 * aligned regions for graph arrays, state arrays, queues, and the hub
 * index, plus a region registry used for hot-data classification
 * (GRASP) and storage accounting.
 */

#ifndef DEPGRAPH_SIM_ADDRESS_SPACE_HH
#define DEPGRAPH_SIM_ADDRESS_SPACE_HH

#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace depgraph::sim
{

struct Region
{
    std::string name;
    Addr base = 0;
    std::size_t size = 0;

    bool
    contains(Addr a) const
    {
        return a >= base && a < base + size;
    }
};

class AddressSpace
{
  public:
    /** Allocate a named region; returns its 64-byte-aligned base. */
    Addr
    alloc(const std::string &name, std::size_t size)
    {
        dg_assert(size > 0, "empty allocation '", name, "'");
        const Addr base = next_;
        regions_.push_back({name, base, size});
        next_ = (base + size + 63) & ~Addr{63};
        return base;
    }

    const std::vector<Region> &regions() const { return regions_; }

    /** Total allocated bytes (storage accounting, e.g. the paper's
     * hub-index memory share of 0.9-2.8%). */
    std::size_t
    totalBytes() const
    {
        std::size_t t = 0;
        for (const auto &r : regions_)
            t += r.size;
        return t;
    }

    /** Find the region containing an address (nullptr if none). */
    const Region *
    regionOf(Addr a) const
    {
        for (const auto &r : regions_)
            if (r.contains(a))
                return &r;
        return nullptr;
    }

    /** Bytes of the region with the given name (0 when absent). */
    std::size_t
    bytesOf(const std::string &name) const
    {
        std::size_t t = 0;
        for (const auto &r : regions_)
            if (r.name == name)
                t += r.size;
        return t;
    }

  private:
    Addr next_ = 0x1000; ///< keep 0 unmapped to catch null derefs
    std::vector<Region> regions_;
};

/** A set of address ranges marked hot for GRASP. */
class HotRegions
{
  public:
    void
    addRange(Addr base, std::size_t size)
    {
        ranges_.push_back({base, base + size});
    }

    bool
    contains(Addr a) const
    {
        for (const auto &[lo, hi] : ranges_)
            if (a >= lo && a < hi)
                return true;
        return false;
    }

    void clear() { ranges_.clear(); }
    bool empty() const { return ranges_.empty(); }

  private:
    std::vector<std::pair<Addr, Addr>> ranges_;
};

} // namespace depgraph::sim

#endif // DEPGRAPH_SIM_ADDRESS_SPACE_HH
