#include "sim/machine.hh"

#include "common/logging.hh"

namespace depgraph::sim
{

Machine::Machine(const MachineParams &params)
    : params_(params), noc_(params), dram_(params)
{
    dg_assert(params_.numCores > 0, "need at least one core");
    dg_assert(params_.l3Banks > 0, "need at least one L3 bank");
    // Line-address arithmetic in this file is specialized for 64 B
    // lines (Table II); other sizes would silently mis-map banks.
    dg_assert(params_.lineSize == 64,
              "the machine model supports 64 B cache lines only");

    l1d_.reserve(params_.numCores);
    l2_.reserve(params_.numCores);
    for (unsigned c = 0; c < params_.numCores; ++c) {
        l1d_.push_back(std::make_unique<Cache>(
            "l1d." + std::to_string(c), params_.l1d.bytes,
            params_.l1d.assoc, params_.lineSize, params_.l1d.policy));
        l2_.push_back(std::make_unique<Cache>(
            "l2." + std::to_string(c), params_.l2.bytes,
            params_.l2.assoc, params_.lineSize, params_.l2.policy));
    }
    const std::size_t bank_bytes = params_.l3TotalBytes / params_.l3Banks;
    for (unsigned b = 0; b < params_.l3Banks; ++b) {
        auto bank = std::make_unique<Cache>(
            "l3." + std::to_string(b), bank_bytes, params_.l3Assoc,
            params_.lineSize, params_.l3Policy);
        bank->setHotOracle(
            [this](Addr a) { return hotRegions_.contains(a); });
        l3Banks_.push_back(std::move(bank));
    }
}

unsigned
Machine::bankOf(Addr line_addr) const
{
    const Addr h = line_addr ^ (line_addr >> 7);
    return static_cast<unsigned>(h % params_.l3Banks);
}

Cycles
Machine::coherenceCheck(unsigned core, Addr line_addr, bool write)
{
    auto it = directory_.find(line_addr);
    Cycles penalty = 0;
    if (it != directory_.end() && it->second.owner != core
        && it->second.owner != 0xffff) {
        const unsigned owner = it->second.owner;
        if (write) {
            // Invalidate the remote copy.
            l1d_[owner]->invalidate(line_addr << 6);
            l2_[owner]->invalidate(line_addr << 6);
            penalty += params_.invalidationCycles
                + noc_.transfer(noc_.coreTile(core),
                                noc_.coreTile(owner));
            ++invalidations_;
        } else if (it->second.dirty) {
            // Fetch the dirty line from the remote private cache.
            penalty += params_.remoteDirtyCycles;
            ++remoteDirtyHits_;
            it->second.dirty = false; // now shared/clean
        }
    }
    if (write) {
        auto &e = directory_[line_addr];
        e.owner = static_cast<std::uint16_t>(core);
        e.dirty = true;
    }
    return penalty;
}

Cycles
Machine::lineAccess(unsigned core, Addr line_byte_addr, bool write,
                    bool skip_l1, MemLevel &level)
{
    Cycles lat = 0;
    const Addr line_addr = line_byte_addr >> 6;

    lat += coherenceCheck(core, line_addr, write);

    if (!skip_l1) {
        lat += params_.l1d.latency;
        if (l1d_[core]->access(line_byte_addr, write)) {
            level = MemLevel::L1;
            return lat;
        }
    }

    lat += params_.l2.latency;
    if (l2_[core]->access(line_byte_addr, write)) {
        if (!skip_l1)
            l1d_[core]->fill(line_byte_addr, write);
        level = MemLevel::L2;
        return lat;
    }

    const unsigned bank = bankOf(line_addr);
    lat += noc_.coreToBankRoundTrip(core, bank);
    lat += params_.l3BankLatency;
    if (l3Banks_[bank]->access(line_byte_addr, write)) {
        l2_[core]->fill(line_byte_addr, write);
        if (!skip_l1)
            l1d_[core]->fill(line_byte_addr, write);
        level = MemLevel::L3;
        return lat;
    }

    lat += dram_.access(line_addr);
    l3Banks_[bank]->fill(line_byte_addr, write);
    l2_[core]->fill(line_byte_addr, write);
    if (!skip_l1)
        l1d_[core]->fill(line_byte_addr, write);
    level = MemLevel::Mem;
    return lat;
}

AccessResult
Machine::accessImpl(unsigned core, Addr addr, unsigned bytes, bool write,
                    bool skip_l1)
{
    dg_assert(core < params_.numCores, "core ", core, " out of range");
    dg_assert(bytes > 0, "zero-byte access");
    ++accesses_;

    AccessResult r;
    const Addr first_line = addr & ~Addr{63};
    const Addr last_line = (addr + bytes - 1) & ~Addr{63};
    MemLevel worst = MemLevel::L1;
    for (Addr line = first_line; line <= last_line; line += 64) {
        MemLevel lvl = MemLevel::L1;
        r.latency += lineAccess(core, line, write, skip_l1, lvl);
        if (static_cast<int>(lvl) > static_cast<int>(worst))
            worst = lvl;
    }
    r.level = worst;
    return r;
}

AccessResult
Machine::access(unsigned core, Addr addr, unsigned bytes, bool write)
{
    return accessImpl(core, addr, bytes, write, /*skip_l1=*/false);
}

AccessResult
Machine::accessFromL2(unsigned core, Addr addr, unsigned bytes,
                      bool write)
{
    return accessImpl(core, addr, bytes, write, /*skip_l1=*/true);
}

MachineStats
Machine::stats() const
{
    MachineStats s;
    for (const auto &c : l1d_)
        s.l1.add(c->stats());
    for (const auto &c : l2_)
        s.l2.add(c->stats());
    for (const auto &c : l3Banks_)
        s.l3.add(c->stats());
    s.nocHops = noc_.hopCount();
    s.nocMessages = noc_.messages();
    s.dramAccesses = dram_.accesses();
    s.invalidations = invalidations_;
    s.remoteDirtyHits = remoteDirtyHits_;
    s.accesses = accesses_;
    return s;
}

void
Machine::clearStats()
{
    for (auto &c : l1d_)
        c->clearStats();
    for (auto &c : l2_)
        c->clearStats();
    for (auto &c : l3Banks_)
        c->clearStats();
    noc_.clearStats();
    dram_.clearStats();
    invalidations_ = 0;
    remoteDirtyHits_ = 0;
    accesses_ = 0;
}

void
Machine::flushCaches()
{
    for (auto &c : l1d_)
        c->flush();
    for (auto &c : l2_)
        c->flush();
    for (auto &c : l3Banks_)
        c->flush();
    directory_.clear();
}

} // namespace depgraph::sim
