#include "sim/area.hh"

namespace depgraph::sim
{

namespace
{

/**
 * Relative switching-activity factor per accelerator: SRAM-dominated
 * designs (Minnow's worklist buffers) burn less power per unit area
 * than logic-dominated ones. Calibrated against the McPAT runs the
 * paper reports.
 */
double
activityFactor(const std::string &name)
{
    if (name == "Minnow")
        return 0.82;
    if (name == "PHI")
        return 1.01;
    if (name == "DepGraph")
        return 0.84;
    return 1.00; // HATS
}

} // namespace

AccelAreaResult
deriveArea(const AccelAreaSpec &spec, const AreaModelParams &p)
{
    AccelAreaResult r;
    r.name = spec.name;
    r.areaMm2 = spec.storageKbits * p.sramMm2PerKbit
        + spec.logicKGates * p.logicMm2PerKGate;
    r.pctCore = 100.0 * r.areaMm2 / p.coreAreaMm2;
    const double chip_area = r.areaMm2 * p.numCores;
    r.powerMw = chip_area * p.mwPerMm2 * activityFactor(spec.name);
    r.pctTdp = 100.0 * (r.powerMw / 1000.0) / p.chipTdpW;
    return r;
}

std::vector<AccelAreaSpec>
tableIVSpecs()
{
    return {
        // HATS: bounded-DFS scheduler -- tiny visit stack, mostly
        // traversal control logic.
        {"HATS", 2.0, 54.9},
        // Minnow: per-core worklist engine -- large spill/fill buffers
        // plus enqueue/dequeue + prefetch logic.
        {"Minnow", 64.0, 100.2},
        // PHI: commutative-update coalescing -- small combining buffer,
        // update ALUs and cache-interface logic.
        {"PHI", 8.0, 59.5},
        // DepGraph: 6.1 Kbit traversal stack + 4.8 Kbit FIFO edge
        // buffer (Sec. IV-D) plus HDTL + DDMU logic.
        {"DepGraph", 6.1 + 4.8, 81.9},
    };
}

std::vector<AccelAreaResult>
tableIV(const AreaModelParams &p)
{
    std::vector<AccelAreaResult> out;
    for (const auto &s : tableIVSpecs())
        out.push_back(deriveArea(s, p));
    return out;
}

} // namespace depgraph::sim
