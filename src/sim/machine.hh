/**
 * @file
 * The simulated 64-core machine: private L1D/L2 per core, banked
 * shared L3 over the mesh NoC, DRAM, and a lightweight MESI-flavoured
 * directory for cross-core invalidation/dirty-miss costs.
 *
 * Cores execute in per-engine virtual time; the Machine provides the
 * memory-side latency of each access and keeps functional cache
 * contents so locality differences between scheduling policies show up
 * as hit-rate differences, which is the effect the paper's evaluation
 * depends on.
 */

#ifndef DEPGRAPH_SIM_MACHINE_HH
#define DEPGRAPH_SIM_MACHINE_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/address_space.hh"
#include "sim/cache.hh"
#include "sim/dram.hh"
#include "sim/noc.hh"
#include "sim/params.hh"

namespace depgraph::sim
{

/** Which level serviced an access. */
enum class MemLevel
{
    L1,
    L2,
    L3,
    Mem,
};

struct AccessResult
{
    Cycles latency = 0;
    MemLevel level = MemLevel::L1;
};

struct MachineStats
{
    CacheStats l1;
    CacheStats l2;
    CacheStats l3;
    std::uint64_t nocHops = 0;
    std::uint64_t nocMessages = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t remoteDirtyHits = 0;
    std::uint64_t accesses = 0;
};

class Machine
{
  public:
    explicit Machine(const MachineParams &params);

    const MachineParams &params() const { return params_; }
    unsigned numCores() const { return params_.numCores; }

    /**
     * Core-side access of [addr, addr+bytes): walks L1D -> L2 -> L3 ->
     * DRAM, filling on the way back. Latency of multi-line accesses is
     * the sum over lines (they serialize on the same load port).
     */
    AccessResult access(unsigned core, Addr addr, unsigned bytes,
                        bool write);

    /**
     * Accelerator-side access: the DepGraph engine sits between the
     * core and its L2 and "issues the instructions to access the data
     * from the L2 cache" (Sec. III-B), so the L1 is bypassed.
     */
    AccessResult accessFromL2(unsigned core, Addr addr, unsigned bytes,
                              bool write);

    AddressSpace &mem() { return mem_; }
    const AddressSpace &mem() const { return mem_; }

    /** Register hot graph data for GRASP-managed L3 banks. */
    HotRegions &hotRegions() { return hotRegions_; }

    MachineStats stats() const;
    void clearStats();
    void flushCaches();

  private:
    struct DirEntry
    {
        std::uint16_t owner = 0xffff; ///< core holding the line dirty
        bool dirty = false;
    };

    AccessResult accessImpl(unsigned core, Addr addr, unsigned bytes,
                            bool write, bool skip_l1);
    Cycles lineAccess(unsigned core, Addr line_addr, bool write,
                      bool skip_l1, MemLevel &level);
    Cycles coherenceCheck(unsigned core, Addr line_addr, bool write);
    unsigned bankOf(Addr line_addr) const;

    MachineParams params_;
    AddressSpace mem_;
    HotRegions hotRegions_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::vector<std::unique_ptr<Cache>> l3Banks_;
    MeshNoc noc_;
    Dram dram_;
    std::unordered_map<Addr, DirEntry> directory_;
    std::uint64_t invalidations_ = 0;
    std::uint64_t remoteDirtyHits_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace depgraph::sim

#endif // DEPGRAPH_SIM_MACHINE_HH
