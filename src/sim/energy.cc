#include "sim/energy.hh"

namespace depgraph::sim
{

namespace
{

constexpr double kPjToMj = 1e-9;

} // namespace

EnergyBreakdown
computeEnergy(const MachineStats &stats, std::uint64_t busy_cycles,
              std::uint64_t idle_cycles, std::uint64_t accel_ops,
              const EnergyParams &p)
{
    EnergyBreakdown e;
    e.coreMj = (static_cast<double>(busy_cycles) * p.coreBusyPj
                + static_cast<double>(idle_cycles) * p.coreIdlePj)
        * kPjToMj;
    const double l1 =
        static_cast<double>(stats.l1.hits + stats.l1.misses)
        * p.l1AccessPj;
    const double l2 =
        static_cast<double>(stats.l2.hits + stats.l2.misses)
        * p.l2AccessPj;
    const double l3 =
        static_cast<double>(stats.l3.hits + stats.l3.misses)
        * p.l3AccessPj;
    e.cacheMj = (l1 + l2 + l3) * kPjToMj;
    e.nocMj = static_cast<double>(stats.nocHops) * p.nocHopPj * kPjToMj;
    e.dramMj =
        static_cast<double>(stats.dramAccesses) * p.dramAccessPj
        * kPjToMj;
    e.accelMj =
        static_cast<double>(accel_ops) * p.accelOpPj * kPjToMj;
    return e;
}

} // namespace depgraph::sim
