#include "sim/params.hh"

#include <cstring>

#include "common/logging.hh"

namespace depgraph::sim
{

const char *
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::LRU:
        return "LRU";
      case ReplPolicy::DRRIP:
        return "DRRIP";
      case ReplPolicy::GRASP:
        return "GRASP";
    }
    return "?";
}

ReplPolicy
replPolicyFromName(const char *name)
{
    if (!std::strcmp(name, "LRU"))
        return ReplPolicy::LRU;
    if (!std::strcmp(name, "DRRIP"))
        return ReplPolicy::DRRIP;
    if (!std::strcmp(name, "GRASP"))
        return ReplPolicy::GRASP;
    dg_fatal("unknown replacement policy '", name, "'");
}

} // namespace depgraph::sim
