/**
 * @file
 * Mesh network-on-chip model (Table II: 8x8 mesh, X-Y dimension-order
 * routing, 3 cycles per hop, 512-bit links).
 *
 * Latency is hop-count based; per-hop flit traffic is accumulated for
 * the energy model.
 */

#ifndef DEPGRAPH_SIM_NOC_HH
#define DEPGRAPH_SIM_NOC_HH

#include <cstdint>

#include "common/types.hh"
#include "sim/params.hh"

namespace depgraph::sim
{

class MeshNoc
{
  public:
    explicit MeshNoc(const MachineParams &p)
        : width_(p.meshWidth), height_(p.meshHeight),
          hopCycles_(p.hopCycles)
    {}

    unsigned numTiles() const { return width_ * height_; }

    /** Tile hosting a core (one core per tile, row-major). */
    unsigned
    coreTile(unsigned core) const
    {
        return core % numTiles();
    }

    /** Tile hosting an L3 bank (banks interleaved over tiles). */
    unsigned
    bankTile(unsigned bank) const
    {
        // Spread banks over the mesh; with 32 banks on 64 tiles every
        // other tile hosts a bank.
        return (bank * numTiles() / 32u + bank) % numTiles();
    }

    /** Manhattan hop count between two tiles under X-Y routing. */
    unsigned
    hops(unsigned from_tile, unsigned to_tile) const
    {
        const int fx = static_cast<int>(from_tile % width_);
        const int fy = static_cast<int>(from_tile / width_);
        const int tx = static_cast<int>(to_tile % width_);
        const int ty = static_cast<int>(to_tile / width_);
        const int dx = fx > tx ? fx - tx : tx - fx;
        const int dy = fy > ty ? fy - ty : ty - fy;
        return static_cast<unsigned>(dx + dy);
    }

    /** One-way latency between tiles; records traffic. */
    Cycles
    transfer(unsigned from_tile, unsigned to_tile)
    {
        const unsigned h = hops(from_tile, to_tile);
        hopCount_ += h;
        ++messages_;
        return static_cast<Cycles>(h) * hopCycles_;
    }

    /** Round trip core <-> L3 bank; records both directions. */
    Cycles
    coreToBankRoundTrip(unsigned core, unsigned bank)
    {
        const unsigned ct = coreTile(core);
        const unsigned bt = bankTile(bank);
        return transfer(ct, bt) + transfer(bt, ct);
    }

    std::uint64_t hopCount() const { return hopCount_; }
    std::uint64_t messages() const { return messages_; }

    void
    clearStats()
    {
        hopCount_ = 0;
        messages_ = 0;
    }

  private:
    unsigned width_;
    unsigned height_;
    Cycles hopCycles_;
    std::uint64_t hopCount_ = 0;
    std::uint64_t messages_ = 0;
};

} // namespace depgraph::sim

#endif // DEPGRAPH_SIM_NOC_HH
