/**
 * @file
 * Set-associative cache model with LRU, DRRIP, and GRASP replacement.
 *
 * Functional (contents + replacement state) with per-access hit/miss
 * outcomes; timing is composed by the Machine from per-level latencies.
 *
 * DRRIP follows Jaleel et al. [ISCA'10]: 2-bit re-reference prediction
 * values, hit promotion to 0, and dynamic insertion-policy selection
 * by set dueling -- a handful of leader sets is dedicated to SRRIP
 * (insert at RRPV 2) and another to BRRIP (insert at RRPV 3 except a
 * 1/32 trickle), a saturating PSEL counter tracks which leader group
 * misses less, and follower sets adopt the winner.
 *
 * GRASP (Faldu et al., HPCA'20) specializes DRRIP for graph analytics:
 * lines belonging to designated hot data (high-degree vertex state, the
 * hub index) are inserted at RRPV 0 and protected on hits, which
 * reduces thrashing on the hot working set.
 */

#ifndef DEPGRAPH_SIM_CACHE_HH
#define DEPGRAPH_SIM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/params.hh"

namespace depgraph::sim
{

/** Callback deciding whether a line address holds hot graph data
 * (GRASP insertion hint). */
using HotOracle = std::function<bool(Addr)>;

struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;

    double
    hitRate() const
    {
        const auto total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }

    void
    add(const CacheStats &o)
    {
        hits += o.hits;
        misses += o.misses;
        evictions += o.evictions;
        writebacks += o.writebacks;
    }
};

class Cache
{
  public:
    /**
     * @param name Stats label (e.g. "l2.17").
     * @param bytes Total capacity.
     * @param assoc Ways per set.
     * @param line_size Line size in bytes (power of two).
     * @param policy Replacement policy.
     */
    Cache(std::string name, std::size_t bytes, unsigned assoc,
          unsigned line_size, ReplPolicy policy);

    /**
     * Look up a line. On a hit, updates replacement state and the dirty
     * bit; returns true. On a miss returns false WITHOUT allocating
     * (call fill() after the lower levels respond).
     */
    bool access(Addr addr, bool write);

    /** Current PSEL value (set-dueling state; for tests). */
    int psel() const { return psel_; }

    /** Allocate the line, evicting a victim if needed. Returns the
     * evicted line address or kNoLine when none was evicted. */
    Addr fill(Addr addr, bool dirty = false);

    /** True when the line is present (no replacement-state update). */
    bool contains(Addr addr) const;

    /** Drop a line (coherence invalidation). Returns true if it was
     * present and dirty. */
    bool invalidate(Addr addr);

    /** Drop everything (used between benchmark phases). */
    void flush();

    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats{}; }
    const std::string &name() const { return name_; }
    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }

    /** Install the GRASP hot-data oracle (ignored by LRU/DRRIP). */
    void setHotOracle(HotOracle oracle) { hot_ = std::move(oracle); }

    static constexpr Addr kNoLine = ~Addr{0};

  private:
    struct Way
    {
        Addr tag = kNoLine; ///< full line address (tag+index combined)
        bool valid = false;
        bool dirty = false;
        std::uint8_t rrpv = 3;  ///< DRRIP/GRASP re-reference value
        std::uint64_t lastUse = 0; ///< LRU timestamp
    };

    unsigned setIndex(Addr line_addr) const;
    Addr lineAddr(Addr addr) const;
    unsigned victimWay(unsigned set);
    void touchOnHit(Way &w);
    void initOnFill(Way &w, Addr line);

    std::string name_;
    unsigned assoc_;
    unsigned lineShift_;
    unsigned numSets_;
    ReplPolicy policy_;
    std::vector<Way> ways_; ///< numSets_ * assoc_, row-major by set
    /** Set-dueling classification for DRRIP. */
    enum class SetRole : std::uint8_t
    {
        Follower,
        LeaderSrrip,
        LeaderBrrip,
    };
    SetRole setRole(unsigned set) const;

    std::uint64_t useClock_ = 0;
    std::uint64_t fillClock_ = 0; ///< for BRRIP's 1/32 trickle
    int psel_ = 0; ///< saturating policy selector (>0: BRRIP wins)
    CacheStats stats_;
    HotOracle hot_;
};

} // namespace depgraph::sim

#endif // DEPGRAPH_SIM_CACHE_HH
