#include "sim/cache.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace depgraph::sim
{

Cache::Cache(std::string name, std::size_t bytes, unsigned assoc,
             unsigned line_size, ReplPolicy policy)
    : name_(std::move(name)), assoc_(assoc), policy_(policy)
{
    dg_assert(line_size > 0 && (line_size & (line_size - 1)) == 0,
              "line size must be a power of two");
    dg_assert(assoc > 0, "associativity must be positive");
    dg_assert(bytes >= static_cast<std::size_t>(line_size) * assoc,
              "cache smaller than one set");
    lineShift_ = static_cast<unsigned>(std::countr_zero(line_size));
    numSets_ = static_cast<unsigned>(bytes / line_size / assoc);
    dg_assert(numSets_ > 0, "cache must have at least one set");
    ways_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

Addr
Cache::lineAddr(Addr addr) const
{
    return addr >> lineShift_;
}

unsigned
Cache::setIndex(Addr line_addr) const
{
    // Hash the index bits so pathological strides spread across sets
    // (Table II: "hashed set-associative" L3).
    const Addr h = line_addr ^ (line_addr >> 13) ^ (line_addr >> 27);
    return static_cast<unsigned>(h % numSets_);
}

Cache::SetRole
Cache::setRole(unsigned set) const
{
    // Every 64th set leads SRRIP, the next one leads BRRIP (Jaleel's
    // static simple-dueling layout scaled to small caches).
    if (numSets_ < 4)
        return SetRole::Follower;
    const unsigned stride = numSets_ >= 64 ? 64 : 4;
    if (set % stride == 0)
        return SetRole::LeaderSrrip;
    if (set % stride == 1)
        return SetRole::LeaderBrrip;
    return SetRole::Follower;
}

bool
Cache::access(Addr addr, bool write)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == line) {
            touchOnHit(base[w]);
            if (write)
                base[w].dirty = true;
            ++stats_.hits;
            return true;
        }
    }
    ++stats_.misses;
    // Set dueling: a miss in a leader set votes against its policy.
    if (policy_ == ReplPolicy::DRRIP) {
        constexpr int kPselMax = 512;
        switch (setRole(set)) {
          case SetRole::LeaderSrrip:
            psel_ = std::min(psel_ + 1, kPselMax);
            break;
          case SetRole::LeaderBrrip:
            psel_ = std::max(psel_ - 1, -kPselMax);
            break;
          case SetRole::Follower:
            break;
        }
    }
    return false;
}

Addr
Cache::fill(Addr addr, bool dirty)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];

    // Already present (e.g. racing fills): just refresh.
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == line) {
            base[w].dirty |= dirty;
            return kNoLine;
        }
    }

    const unsigned victim = victimWay(set);
    Way &v = base[victim];
    Addr evicted = kNoLine;
    if (v.valid) {
        evicted = v.tag;
        ++stats_.evictions;
        if (v.dirty)
            ++stats_.writebacks;
    }
    initOnFill(v, line);
    v.dirty = dirty;
    return evicted;
}

bool
Cache::contains(Addr addr) const
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    const Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (base[w].valid && base[w].tag == line)
            return true;
    return false;
}

bool
Cache::invalidate(Addr addr)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == line) {
            const bool was_dirty = base[w].dirty;
            base[w] = Way{};
            return was_dirty;
        }
    }
    return false;
}

void
Cache::flush()
{
    for (auto &w : ways_)
        w = Way{};
}

unsigned
Cache::victimWay(unsigned set)
{
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
    // Invalid way first.
    for (unsigned w = 0; w < assoc_; ++w)
        if (!base[w].valid)
            return w;

    if (policy_ == ReplPolicy::LRU) {
        unsigned victim = 0;
        for (unsigned w = 1; w < assoc_; ++w)
            if (base[w].lastUse < base[victim].lastUse)
                victim = w;
        return victim;
    }

    // RRIP search: find a way with RRPV 3, aging everyone until found.
    for (;;) {
        for (unsigned w = 0; w < assoc_; ++w)
            if (base[w].rrpv >= 3)
                return w;
        for (unsigned w = 0; w < assoc_; ++w)
            ++base[w].rrpv;
    }
}

void
Cache::touchOnHit(Way &w)
{
    w.lastUse = ++useClock_;
    // RRIP hit promotion.
    w.rrpv = 0;
}

void
Cache::initOnFill(Way &w, Addr line)
{
    w.tag = line;
    w.valid = true;
    w.lastUse = ++useClock_;
    ++fillClock_;
    switch (policy_) {
      case ReplPolicy::LRU:
        w.rrpv = 0;
        break;
      case ReplPolicy::DRRIP: {
        // Leaders use their own policy; followers adopt the duel
        // winner (psel > 0 means the BRRIP leaders missed less).
        const unsigned set = setIndex(line);
        bool use_brrip;
        switch (setRole(set)) {
          case SetRole::LeaderSrrip:
            use_brrip = false;
            break;
          case SetRole::LeaderBrrip:
            use_brrip = true;
            break;
          default:
            use_brrip = psel_ > 0;
            break;
        }
        if (use_brrip)
            w.rrpv = (fillClock_ % 32 == 0) ? 2 : 3;
        else
            w.rrpv = 2;
        break;
      }
      case ReplPolicy::GRASP:
        if (hot_ && hot_(line << lineShift_)) {
            w.rrpv = 0; // protect hot graph data
        } else {
            // Cold data inserted at distant RRPV so it cannot thrash
            // the protected region.
            w.rrpv = (fillClock_ % 32 == 0) ? 3 : 2;
        }
        break;
    }
}

} // namespace depgraph::sim
