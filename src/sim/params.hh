/**
 * @file
 * Configuration of the simulated many-core machine.
 *
 * Defaults reproduce the paper's Table II: 64 Skylake-like cores at
 * 2.5 GHz, 32 KB L1I / 32 KB L1D / 256 KB private L2 per core, a
 * 128 MB 32-bank shared L3 with DRRIP on an 8x8 mesh (X-Y routing,
 * 3 cycles/hop), and DDR4-2400-class main memory.
 */

#ifndef DEPGRAPH_SIM_PARAMS_HH
#define DEPGRAPH_SIM_PARAMS_HH

#include <cstddef>
#include <cstdint>

#include "common/types.hh"

namespace depgraph::sim
{

/** Replacement policies supported by the cache model. */
enum class ReplPolicy
{
    LRU,
    DRRIP,
    GRASP, ///< DRRIP with preferential insertion for hot graph data
};

const char *replPolicyName(ReplPolicy p);
ReplPolicy replPolicyFromName(const char *name);

struct CacheParams
{
    std::size_t bytes = 0;
    unsigned assoc = 8;
    Cycles latency = 1;
    ReplPolicy policy = ReplPolicy::LRU;
};

struct MachineParams
{
    unsigned numCores = 64;
    unsigned lineSize = 64;
    double freqGHz = 2.5;

    CacheParams l1i{32 * 1024, 4, 3, ReplPolicy::LRU};
    CacheParams l1d{32 * 1024, 8, 4, ReplPolicy::LRU};
    CacheParams l2{256 * 1024, 8, 7, ReplPolicy::LRU};

    /** Shared L3: total size across all banks. */
    std::size_t l3TotalBytes = std::size_t{128} * 1024 * 1024;
    unsigned l3Banks = 32;
    unsigned l3Assoc = 16;
    Cycles l3BankLatency = 27;
    ReplPolicy l3Policy = ReplPolicy::DRRIP;

    /** Mesh NoC (Table II: 8x8, X-Y routing, 3 cycles/hop). */
    unsigned meshWidth = 8;
    unsigned meshHeight = 8;
    Cycles hopCycles = 3;

    /** Main memory: DDR4-2400 CL17, 12 channels. The model charges a
     * fixed access latency plus a per-channel serialization term. */
    Cycles dramLatency = 150;
    unsigned dramChannels = 12;
    Cycles dramChannelOccupancy = 8; ///< cycles a line transfer holds a
                                     ///< channel (2400 MT/s, 64 B line)

    /** Coherence costs (MESI-flavoured, in-cache directory). */
    Cycles invalidationCycles = 20; ///< per remote copy invalidated
    Cycles remoteDirtyCycles = 40;  ///< fetch of a dirty remote line

    /* --- Core cost model (cycles of compute, excluding memory) --- */
    Cycles edgeOpCycles = 4;    ///< EdgeCompute + Accum per edge (SIMD-
                                ///< amortized, GCC -O3 + AVX512 class)
    Cycles vertexOpCycles = 6;  ///< apply delta + activity check
    Cycles queueOpCycles = 10;  ///< software worklist push/pop
    Cycles swTraversalCycles = 22; ///< software DFS bookkeeping per edge
                                   ///< (DepGraph-S, Sec. IV-A cost)
    Cycles swHubIndexCycles = 55;  ///< software hub-index op (hash probe
                                   ///< + fit) per core-path event
    Cycles hwHubIndexCycles = 4;   ///< the same op done by DDMU

    /** Sanity: derived values. */
    unsigned
    l3BankBytes() const
    {
        return static_cast<unsigned>(l3TotalBytes / l3Banks);
    }
};

} // namespace depgraph::sim

#endif // DEPGRAPH_SIM_PARAMS_HH
