/**
 * @file
 * The dgserve request protocol: newline-delimited commands, one reply
 * per line block. Scriptable over stdin/stdout, no network dependency;
 * a transport (socket, pipe) can be layered on later without touching
 * the service.
 *
 *   load <name> <gen> <args...>   gen: powerlaw <n> [alpha] [deg] [seed]
 *                                      grid <rows> <cols>
 *                                      path|ring <n>
 *                                      chain <communities> <size>
 *   query <name> [algo] [solution] [top]
 *   update <name> <src> <dst> [weight]
 *   del <name> <src> <dst> [weight]   (weight omitted = any weight)
 *   flush <name>
 *   graphs
 *   stats
 *   drain
 *   help
 *   quit
 *
 * Replies start with "ok" or "err: <reason>"; malformed input never
 * terminates the server.
 */

#ifndef DEPGRAPH_SERVICE_PROTOCOL_HH
#define DEPGRAPH_SERVICE_PROTOCOL_HH

#include <iosfwd>
#include <string>

#include "service/service.hh"

namespace depgraph::service
{

struct CommandResult
{
    std::string output; ///< reply text (no trailing newline)
    bool quit = false;  ///< the client asked to stop
};

/** Parse and execute one protocol line against the service. */
CommandResult runCommandLine(GraphService &svc, const std::string &line);

/**
 * REPL driver: read lines from `in`, execute, write replies to `out`
 * until EOF or `quit`. @return number of commands executed.
 */
std::size_t serveStream(GraphService &svc, std::istream &in,
                        std::ostream &out, bool echo = false);

} // namespace depgraph::service

#endif // DEPGRAPH_SERVICE_PROTOCOL_HH
