/**
 * @file
 * The dgserve request protocol: newline-delimited commands, one reply
 * per line block. Scriptable over stdin/stdout, no network dependency;
 * a transport (socket, pipe) can be layered on later without touching
 * the service.
 *
 *   load <name> <gen> <args...>   gen: powerlaw <n> [alpha] [deg] [seed]
 *                                      grid <rows> <cols>
 *                                      path|ring <n>
 *                                      chain <communities> <size>
 *   query <name> [algo] [solution] [top]
 *   update <name> <src> <dst> [weight]
 *   del <name> <src> <dst> [weight]   (weight omitted = any weight)
 *   flush <name>
 *   graphs
 *   stats
 *   slowlog [clear]
 *   drain
 *   help
 *   quit
 *
 * Any command may be prefixed with a `trace=<16-hex-id>` token: the
 * request is then traced under that id (force-sampled), which is how
 * one client request stitches across shard processes -- see
 * docs/OBSERVABILITY.md "Request tracing".
 *
 * Replies start with "ok" or with a structured error line
 * "err <code> <msg>", machine-parseable because the same protocol now
 * also runs over TCP from untrusted clients (src/net/). Codes follow
 * the HTTP convention so one table serves both planes:
 *
 *   400 malformed frame / bad argument / unknown verb
 *   404 unknown graph
 *   408 deadline exceeded while queued
 *   413 line over the length cap
 *   429 rejected (queue full, or shed by admission control --
 *       the reply carries "retry-after=<ms>")
 *   500 internal error
 *   503 shutting down / draining
 *
 * Malformed input never terminates the server, and a line longer than
 * kMaxLineBytes is answered with 413 instead of being buffered
 * without bound.
 */

#ifndef DEPGRAPH_SERVICE_PROTOCOL_HH
#define DEPGRAPH_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "service/service.hh"

namespace depgraph::service
{

/** Longest accepted protocol line; the transport enforces it while
 * framing, runCommandLine() re-checks as defense in depth. */
inline constexpr std::size_t kMaxLineBytes = 8192;

struct CommandResult
{
    std::string output; ///< reply text (no trailing newline)
    bool quit = false;  ///< the client asked to stop
};

/** Build one structured error reply line: "err <code> <msg>". */
CommandResult protocolError(int code, const std::string &msg);

/** The protocol error code for a service-level status. */
int errCodeFor(Status s);

/** Parse and execute one protocol line against the service. */
CommandResult runCommandLine(GraphService &svc, const std::string &line);

/**
 * Split a leading `trace=<hex>` token off a protocol line.
 * @return true iff the line starts with a `trace=` token; `rest` is
 *         then the remainder of the line and `trace_id` the parsed id
 *         (0 when the id was malformed -- the caller rejects those).
 */
bool splitTraceToken(const std::string &line, std::uint64_t &trace_id,
                     std::string &rest);

/**
 * runCommandLine() wrapped in per-request tracing: strips the
 * `trace=` token, opens a request trace (sampled per
 * obs::span::setSampling(), force-sampled when the client supplied an
 * id), attributes stages, publishes `dg_request_stage_*` metrics, and
 * appends to the slow-query log when the request ran past the slow
 * threshold. Transports (net dispatcher, stdin REPL) enter here.
 */
CommandResult runTracedCommandLine(GraphService &svc,
                                   const std::string &line);

/**
 * REPL driver: read lines from `in`, execute, write replies to `out`
 * until EOF or `quit`. @return number of commands executed.
 */
std::size_t serveStream(GraphService &svc, std::istream &in,
                        std::ostream &out, bool echo = false);

} // namespace depgraph::service

#endif // DEPGRAPH_SERVICE_PROTOCOL_HH
