#include "service/snapshot_store.hh"

namespace depgraph::service
{

namespace
{

std::shared_ptr<const graph::Graph>
freezeGraph(graph::Graph g)
{
    // Build the lazy transpose view now, while this thread still has
    // exclusive ownership; afterwards every member is truly read-only
    // and the graph can be shared across worker threads without locks.
    auto p = std::make_shared<graph::Graph>(std::move(g));
    p->buildTranspose();
    return p;
}

} // namespace

std::uint64_t
GraphStore::put(const std::string &name, graph::Graph g)
{
    auto frozen = freezeGraph(std::move(g));
    std::lock_guard lk(mu_);
    auto snap = std::make_shared<Snapshot>();
    snap->name = name;
    const auto it = snaps_.find(name);
    snap->version = it == snaps_.end() ? 1 : it->second->version + 1;
    snap->graph = std::move(frozen);
    snaps_[name] = snap;
    return snap->version;
}

SnapshotPtr
GraphStore::get(const std::string &name) const
{
    std::lock_guard lk(mu_);
    const auto it = snaps_.find(name);
    return it == snaps_.end() ? nullptr : it->second;
}

bool
GraphStore::erase(const std::string &name)
{
    std::lock_guard lk(mu_);
    return snaps_.erase(name) > 0;
}

std::vector<std::string>
GraphStore::names() const
{
    std::lock_guard lk(mu_);
    std::vector<std::string> out;
    out.reserve(snaps_.size());
    for (const auto &[name, snap] : snaps_)
        out.push_back(name);
    return out;
}

SnapshotPtr
GraphStore::publish(const SnapshotPtr &base, graph::Graph g,
                    std::map<std::string, StateVectorPtr> fixpoints,
                    std::map<std::string, HubArtifactsPtr> hub_artifacts)
{
    if (!base)
        return nullptr;
    auto frozen = freezeGraph(std::move(g));
    std::lock_guard lk(mu_);
    const auto it = snaps_.find(base->name);
    // Compare versions, not pointers: cacheFixpoint() swaps in an
    // equivalent snapshot object without bumping the version, and that
    // must not fail a publish (at worst its cache entry is superseded).
    if (it == snaps_.end() || it->second->version != base->version)
        return nullptr; // someone published past us; retry on current
    auto snap = std::make_shared<Snapshot>();
    snap->name = base->name;
    snap->version = base->version + 1;
    snap->graph = std::move(frozen);
    snap->fixpoints = std::move(fixpoints);
    snap->hubArtifacts = std::move(hub_artifacts);
    it->second = snap;
    return snap;
}

bool
GraphStore::cacheFixpoint(const std::string &name,
                          std::uint64_t version,
                          const std::string &algorithm,
                          StateVectorPtr states, HubArtifactsPtr hub)
{
    std::lock_guard lk(mu_);
    const auto it = snaps_.find(name);
    if (it == snaps_.end() || it->second->version != version)
        return false;
    // Snapshots are immutable once handed out: cache by replacing the
    // current snapshot with an identical one plus the new entry.
    auto snap = std::make_shared<Snapshot>(*it->second);
    snap->fixpoints[algorithm] = std::move(states);
    if (hub)
        snap->hubArtifacts[algorithm] = std::move(hub);
    it->second = snap;
    return true;
}

} // namespace depgraph::service
