#include "service/snapshot_store.hh"

namespace depgraph::service
{

namespace
{

std::shared_ptr<const graph::Graph>
freezeGraph(graph::Graph g)
{
    // Build the lazy transpose view now, while this thread still has
    // exclusive ownership; afterwards every member is truly read-only
    // and the graph can be shared across worker threads without locks.
    auto p = std::make_shared<graph::Graph>(std::move(g));
    p->buildTranspose();
    return p;
}

} // namespace

GraphStore::GraphStore()
    : GraphStore(StoreOptions{})
{}

GraphStore::GraphStore(StoreOptions opt)
    : opt_(opt)
{}

std::uint64_t
GraphStore::put(const std::string &name, graph::Graph g)
{
    auto frozen = freezeGraph(std::move(g));
    std::lock_guard lk(mu_);
    auto snap = std::make_shared<Snapshot>();
    snap->name = name;
    const auto it = snaps_.find(name);
    snap->version =
        it == snaps_.end() ? 1 : it->second.snap->version + 1;
    snap->graph = std::move(frozen);
    snaps_[name] = {snap, std::chrono::steady_clock::now()};
    enforceCapLocked(name);
    return snap->version;
}

SnapshotPtr
GraphStore::get(const std::string &name) const
{
    std::lock_guard lk(mu_);
    const auto it = snaps_.find(name);
    if (it == snaps_.end())
        return nullptr;
    it->second.lastAccess = std::chrono::steady_clock::now();
    return it->second.snap;
}

bool
GraphStore::erase(const std::string &name)
{
    std::lock_guard lk(mu_);
    return snaps_.erase(name) > 0;
}

std::vector<std::string>
GraphStore::names() const
{
    std::lock_guard lk(mu_);
    std::vector<std::string> out;
    out.reserve(snaps_.size());
    for (const auto &[name, entry] : snaps_)
        out.push_back(name);
    return out;
}

SnapshotPtr
GraphStore::publish(const SnapshotPtr &base, graph::Graph g,
                    std::map<std::string, StateVectorPtr> fixpoints,
                    std::map<std::string, HubArtifactsPtr> hub_artifacts)
{
    if (!base)
        return nullptr;
    auto frozen = freezeGraph(std::move(g));
    std::lock_guard lk(mu_);
    const auto it = snaps_.find(base->name);
    // Compare versions, not pointers: cacheFixpoint() swaps in an
    // equivalent snapshot object without bumping the version, and that
    // must not fail a publish (at worst its cache entry is superseded).
    if (it == snaps_.end() || it->second.snap->version != base->version)
        return nullptr; // someone published past us; retry on current
    auto snap = std::make_shared<Snapshot>();
    snap->name = base->name;
    snap->version = base->version + 1;
    snap->graph = std::move(frozen);
    snap->fixpoints = std::move(fixpoints);
    snap->hubArtifacts = std::move(hub_artifacts);
    it->second = {snap, std::chrono::steady_clock::now()};
    return snap;
}

bool
GraphStore::cacheFixpoint(const std::string &name,
                          std::uint64_t version,
                          const std::string &algorithm,
                          StateVectorPtr states, HubArtifactsPtr hub)
{
    std::lock_guard lk(mu_);
    const auto it = snaps_.find(name);
    if (it == snaps_.end() || it->second.snap->version != version)
        return false;
    // Snapshots are immutable once handed out: cache by replacing the
    // current snapshot with an identical one plus the new entry.
    auto snap = std::make_shared<Snapshot>(*it->second.snap);
    snap->fixpoints[algorithm] = std::move(states);
    if (hub)
        snap->hubArtifacts[algorithm] = std::move(hub);
    it->second = {snap, std::chrono::steady_clock::now()};
    return true;
}

void
GraphStore::enforceCapLocked(const std::string &keep)
{
    if (opt_.maxGraphs == 0)
        return;
    while (snaps_.size() > opt_.maxGraphs) {
        auto victim = snaps_.end();
        for (auto it = snaps_.begin(); it != snaps_.end(); ++it) {
            if (it->first == keep)
                continue;
            if (victim == snaps_.end()
                || it->second.lastAccess < victim->second.lastAccess)
                victim = it;
        }
        if (victim == snaps_.end())
            return; // only `keep` remains; never evict it
        snaps_.erase(victim);
        ++evictions_;
    }
}

std::size_t
GraphStore::sweep()
{
    if (opt_.ttl.count() <= 0)
        return 0;
    const auto cutoff = std::chrono::steady_clock::now() - opt_.ttl;
    std::lock_guard lk(mu_);
    std::size_t evicted = 0;
    for (auto it = snaps_.begin(); it != snaps_.end();) {
        if (it->second.lastAccess < cutoff) {
            it = snaps_.erase(it);
            ++evicted;
            ++evictions_;
        } else {
            ++it;
        }
    }
    return evicted;
}

std::uint64_t
GraphStore::evictions() const
{
    std::lock_guard lk(mu_);
    return evictions_;
}

GraphStore::Usage
GraphStore::usage() const
{
    std::lock_guard lk(mu_);
    Usage u;
    u.graphs = snaps_.size();
    for (const auto &[name, entry] : snaps_) {
        u.cachedFixpoints += entry.snap->fixpoints.size();
        u.cachedHubArtifacts += entry.snap->hubArtifacts.size();
    }
    return u;
}

} // namespace depgraph::service
