/**
 * @file
 * Service-level observability.
 *
 * Every worker thread bumps lock-free atomic counters; readers take a
 * consistent-enough Snapshot (each counter is individually atomic; the
 * set is not fenced, which is fine for monitoring). Per request type,
 * latencies split into TWO power-of-two microsecond histograms --
 * queue wait (submit until a worker picks the request up) and service
 * time (execution on the worker) -- so backpressure and slow handlers
 * are distinguishable instead of conflated into one number.
 *
 * publishTo() mirrors everything into an obs::Registry, from which the
 * `metrics` protocol verb renders the Prometheus text exposition (see
 * docs/OBSERVABILITY.md).
 */

#ifndef DEPGRAPH_SERVICE_STATS_HH
#define DEPGRAPH_SERVICE_STATS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.hh"

namespace depgraph::service
{

/** Request categories tracked separately in the histograms. */
enum class RequestType
{
    Load,
    Query,
    StreamUpdates,
    Flush,
};

inline constexpr std::size_t kNumRequestTypes = 4;

const char *requestTypeName(RequestType t);

/**
 * Power-of-two bucketed latency histogram: bucket k counts samples in
 * [2^k, 2^(k+1)) microseconds (bucket 0 additionally holds 0us). The
 * shared obs::Histogram provides the CAS-loop max update, so two
 * concurrent record() calls can never lose the larger maximum.
 */
using LatencyHistogram = obs::Histogram;

/** Point-in-time copy of every counter, for rendering / assertions. */
struct StatsSnapshot
{
    std::uint64_t loads = 0;
    std::uint64_t queries = 0;
    std::uint64_t queryCacheHits = 0;
    std::uint64_t queryCacheMisses = 0;
    std::uint64_t updateRequests = 0;
    std::uint64_t updateEdgesEnqueued = 0;
    std::uint64_t updateDeletionsEnqueued = 0;
    std::uint64_t updateEdgesCancelled = 0;
    std::uint64_t batchesApplied = 0;
    std::uint64_t batchEdgesApplied = 0;
    std::uint64_t incrementalPasses = 0;
    std::uint64_t hubDepsCarried = 0;
    std::uint64_t hubDepsInvalidated = 0;
    std::uint64_t rejected = 0;
    std::uint64_t deadlineExpired = 0;
    std::uint64_t errors = 0;
    std::size_t queueDepth = 0;
    std::size_t queueHighWater = 0;

    struct Latency
    {
        std::uint64_t count = 0;
        std::uint64_t meanMicros = 0;
        std::uint64_t p50Micros = 0;
        std::uint64_t p99Micros = 0;
        std::uint64_t maxMicros = 0;
    };
    /** Time from submit until a worker picked the request up. */
    std::array<Latency, kNumRequestTypes> queueWait{};
    /** Execution time on the worker (deadline rejects included). */
    std::array<Latency, kNumRequestTypes> service{};

    /** Multi-line aligned table (common/table) for interactive use. */
    std::string render() const;

    /** One-line key=value summary for the periodic service log. */
    std::string logLine() const;
};

/** The live counters shared by the service and its workers. */
class Stats
{
  public:
    std::atomic<std::uint64_t> loads{0};
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> queryCacheHits{0};
    std::atomic<std::uint64_t> queryCacheMisses{0};
    std::atomic<std::uint64_t> updateRequests{0};
    std::atomic<std::uint64_t> updateEdgesEnqueued{0};
    std::atomic<std::uint64_t> updateDeletionsEnqueued{0};
    std::atomic<std::uint64_t> updateEdgesCancelled{0};
    std::atomic<std::uint64_t> batchesApplied{0};
    std::atomic<std::uint64_t> batchEdgesApplied{0};
    std::atomic<std::uint64_t> incrementalPasses{0};
    std::atomic<std::uint64_t> hubDepsCarried{0};
    std::atomic<std::uint64_t> hubDepsInvalidated{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> deadlineExpired{0};
    std::atomic<std::uint64_t> errors{0};

    /** Queue-wait: submit -> worker pickup. */
    void recordQueueWait(RequestType t, std::uint64_t micros);

    /** Service: worker pickup -> completion. */
    void recordService(RequestType t, std::uint64_t micros);

    /** Live queue-wait histogram for one request type. Admission
     * control (net::AdmissionController) windows its p99 off this
     * without paying for a full snapshot per request. */
    const LatencyHistogram &
    queueWaitHistogram(RequestType t) const
    {
        return queueWait_[static_cast<std::size_t>(t)];
    }

    /** Queue gauges are sampled by the service at snapshot time. */
    StatsSnapshot snapshot(std::size_t queue_depth = 0,
                           std::size_t queue_high_water = 0) const;

    /**
     * Mirror every counter and histogram into `reg` under the
     * `dg_service_*` names (see docs/OBSERVABILITY.md). Counters use
     * Counter::set() -- the atomics here stay the source of truth.
     */
    void publishTo(obs::Registry &reg, std::size_t queue_depth = 0,
                   std::size_t queue_high_water = 0) const;

  private:
    std::array<LatencyHistogram, kNumRequestTypes> queueWait_{};
    std::array<LatencyHistogram, kNumRequestTypes> service_{};
};

} // namespace depgraph::service

#endif // DEPGRAPH_SERVICE_STATS_HH
