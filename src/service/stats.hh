/**
 * @file
 * Service-level observability.
 *
 * Every worker thread bumps lock-free atomic counters; readers take a
 * consistent-enough Snapshot (each counter is individually atomic; the
 * set is not fenced, which is fine for monitoring). Latencies go into
 * power-of-two microsecond histograms, one per request type, so the
 * periodic log line can report p50/p99 without storing samples.
 */

#ifndef DEPGRAPH_SERVICE_STATS_HH
#define DEPGRAPH_SERVICE_STATS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace depgraph::service
{

/** Request categories tracked separately in the histograms. */
enum class RequestType
{
    Load,
    Query,
    StreamUpdates,
    Flush,
};

inline constexpr std::size_t kNumRequestTypes = 4;

const char *requestTypeName(RequestType t);

/**
 * Power-of-two bucketed latency histogram: bucket k counts samples in
 * [2^k, 2^(k+1)) microseconds (bucket 0 additionally holds 0us).
 */
class LatencyHistogram
{
  public:
    static constexpr std::size_t kBuckets = 22; ///< up to ~35 minutes

    void record(std::uint64_t micros);

    std::uint64_t count() const;
    std::uint64_t sumMicros() const;
    std::uint64_t maxMicros() const;

    /** Upper bound of the bucket holding quantile q (0 < q <= 1). */
    std::uint64_t quantileUpperBound(double q) const;

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

/** Point-in-time copy of every counter, for rendering / assertions. */
struct StatsSnapshot
{
    std::uint64_t loads = 0;
    std::uint64_t queries = 0;
    std::uint64_t queryCacheHits = 0;
    std::uint64_t queryCacheMisses = 0;
    std::uint64_t updateRequests = 0;
    std::uint64_t updateEdgesEnqueued = 0;
    std::uint64_t updateDeletionsEnqueued = 0;
    std::uint64_t updateEdgesCancelled = 0;
    std::uint64_t batchesApplied = 0;
    std::uint64_t batchEdgesApplied = 0;
    std::uint64_t incrementalPasses = 0;
    std::uint64_t hubDepsCarried = 0;
    std::uint64_t hubDepsInvalidated = 0;
    std::uint64_t rejected = 0;
    std::uint64_t deadlineExpired = 0;
    std::uint64_t errors = 0;
    std::size_t queueDepth = 0;
    std::size_t queueHighWater = 0;

    struct Latency
    {
        std::uint64_t count = 0;
        std::uint64_t meanMicros = 0;
        std::uint64_t p50Micros = 0;
        std::uint64_t p99Micros = 0;
        std::uint64_t maxMicros = 0;
    };
    std::array<Latency, kNumRequestTypes> latency{};

    /** Multi-line aligned table (common/table) for interactive use. */
    std::string render() const;

    /** One-line key=value summary for the periodic service log. */
    std::string logLine() const;
};

/** The live counters shared by the service and its workers. */
class Stats
{
  public:
    std::atomic<std::uint64_t> loads{0};
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> queryCacheHits{0};
    std::atomic<std::uint64_t> queryCacheMisses{0};
    std::atomic<std::uint64_t> updateRequests{0};
    std::atomic<std::uint64_t> updateEdgesEnqueued{0};
    std::atomic<std::uint64_t> updateDeletionsEnqueued{0};
    std::atomic<std::uint64_t> updateEdgesCancelled{0};
    std::atomic<std::uint64_t> batchesApplied{0};
    std::atomic<std::uint64_t> batchEdgesApplied{0};
    std::atomic<std::uint64_t> incrementalPasses{0};
    std::atomic<std::uint64_t> hubDepsCarried{0};
    std::atomic<std::uint64_t> hubDepsInvalidated{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> deadlineExpired{0};
    std::atomic<std::uint64_t> errors{0};

    void recordLatency(RequestType t, std::uint64_t micros);

    /** Queue gauges are sampled by the service at snapshot time. */
    StatsSnapshot snapshot(std::size_t queue_depth = 0,
                           std::size_t queue_high_water = 0) const;

  private:
    std::array<LatencyHistogram, kNumRequestTypes> latency_{};
};

} // namespace depgraph::service

#endif // DEPGRAPH_SERVICE_STATS_HH
