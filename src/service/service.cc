#include "service/service.hh"

#include <array>
#include <algorithm>

#include "common/logging.hh"
#include "depgraph/fold_kernels.hh"
#include "gas/algorithms.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

namespace depgraph::service
{

namespace
{

/** Names gas::makeAlgorithm() accepts; checked here so a bad request
 * returns BadRequest instead of tearing the whole service down. */
bool
knownAlgorithm(const std::string &name)
{
    static const std::array<const char *, 7> names = {
        "pagerank", "adsorption", "katz", "sssp", "wcc", "sswp", "bfs",
    };
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::uint64_t
microsBetween(std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(end
                                                              - start)
            .count());
}

std::uint64_t
microsSince(std::chrono::steady_clock::time_point start)
{
    return microsBetween(start, std::chrono::steady_clock::now());
}

} // namespace

const char *
statusName(Status s)
{
    switch (s) {
      case Status::Ok:
        return "ok";
      case Status::NotFound:
        return "not-found";
      case Status::BadRequest:
        return "bad-request";
      case Status::Rejected:
        return "rejected";
      case Status::DeadlineExceeded:
        return "deadline-exceeded";
      case Status::ShuttingDown:
        return "shutting-down";
      case Status::Internal:
        return "internal";
    }
    return "?";
}

Deadline
deadlineIn(std::chrono::milliseconds timeout)
{
    return std::chrono::steady_clock::now() + timeout;
}

GraphService::GraphService(ServiceOptions opt)
    : opt_(opt), store_(opt.store), system_(opt.system),
      batcher_(store_, system_, stats_, opt.batcher),
      dur_(opt.durability), pool_(opt.pool)
{
    if (dur_.enabled()) {
        std::string err;
        if (!dur_.start(&err))
            dg_fatal("durability: ", err);
        dur_.setHooks(
            [this](const std::string &g) { batcher_.flush(g); },
            [this](const std::string &g) {
                return batcher_.pendingEdges(g);
            },
            [this](const std::string &g,
                   durability::CheckpointData &out) {
                const auto snap = store_.get(g);
                if (!snap)
                    return false;
                out.name = g;
                out.version = snap->version;
                out.graph = snap->graph;
                for (const auto &[algo, states] : snap->fixpoints)
                    out.fixpoints.emplace_back(algo, states);
                return true;
            });
        batcher_.setDurability(&dur_);
        recoverFromDisk();
    }
    if (opt_.statsLogInterval.count() > 0
        || opt_.metricsPublishInterval.count() > 0)
        reporter_ = std::thread([this] { reporterLoop(); });
}

void
GraphService::recoverFromDisk()
{
    durability::Manager::ReplayHandlers h;
    h.onCheckpoint = [this](durability::CheckpointData &&data) {
        const auto name = data.name;
        const auto version = store_.put(name, *data.graph);
        for (auto &[algo, states] : data.fixpoints)
            store_.cacheFixpoint(name, version, algo,
                                 std::move(states));
    };
    h.onCreate = [this](const std::string &name, graph::Graph &&g) {
        store_.put(name, std::move(g));
    };
    h.onMutate = [this](const std::string &name,
                        std::vector<gas::EdgeInsertion> &&ins,
                        std::vector<gas::EdgeDeletion> &&dels) {
        // Already journaled: feed the batcher directly, do not re-log.
        batcher_.enqueue(name, std::move(ins), std::move(dels));
    };
    h.onMarker = [this](const std::string &name) {
        // Replay reproduces the live process's flush boundaries, so
        // batching-dependent corner cases resolve identically.
        batcher_.flush(name);
    };
    h.onReplayDone = [this](const std::string &name) {
        batcher_.flush(name);
    };
    std::string err;
    recovery_ = dur_.recover(h, &err);
    if (!recovery_.graphs.empty() || recovery_.walRecordsReplayed > 0
        || recovery_.tornTailsTruncated > 0)
        dg_inform("recovery: ", recovery_.graphs.size(), " graph(s), ",
                  recovery_.checkpointsLoaded, " checkpoint(s), ",
                  recovery_.walRecordsReplayed, " WAL record(s) in ",
                  recovery_.walBatchesReplayed, " batch(es), ",
                  recovery_.tornTailsTruncated, " torn tail(s), ",
                  recovery_.corruptCheckpoints,
                  " corrupt checkpoint(s)");
}

GraphService::~GraphService()
{
    shutdown();
}

std::uint64_t
GraphService::loadGraph(const std::string &name, graph::Graph g)
{
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t version = 0;
    std::string derr;
    if (!dur_.logCreate(
            name, g,
            [&] { version = store_.put(name, std::move(g)); },
            &derr)) {
        dg_warn("load '", name, "' not journaled, refused: ", derr);
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        return 0;
    }
    stats_.loads.fetch_add(1, std::memory_order_relaxed);
    // Loads run synchronously on the caller, so there is no queue
    // wait; the whole latency is service time.
    const auto service_us = microsSince(start);
    stats_.recordService(RequestType::Load, service_us);
    obs::span::addRequestStage("service_us", service_us);
    return version;
}

std::future<Response>
GraphService::submitJob(RequestType type, std::function<Response()> body,
                        Deadline deadline)
{
    auto prom = std::make_shared<std::promise<Response>>();
    auto fut = prom->get_future();
    if (shutdown_.load(std::memory_order_acquire)) {
        Response r;
        r.status = Status::ShuttingDown;
        prom->set_value(std::move(r));
        return fut;
    }

    // The request's async span is stitched across threads by id: it
    // opens here on the submitter, the worker's queue_wait and
    // handler spans carry the same id, and it closes on completion.
    const char *type_name = requestTypeName(type);
    const auto span_id = obs::span::newId();
    obs::span::asyncBegin("service", type_name, span_id);

    const auto submitted = std::chrono::steady_clock::now();
    // Carry the submitter's request binding into the worker: spans and
    // stage attributions recorded while the job runs land in the same
    // per-request scratch, stitching the request across threads.
    auto rtrace = obs::span::currentRequest();
    auto job = [this, type, type_name, span_id, rtrace,
                body = std::move(body), deadline, submitted,
                prom]() mutable {
        obs::span::RequestScope bind(rtrace);
        const auto picked = std::chrono::steady_clock::now();
        const auto wait_us = microsBetween(submitted, picked);
        stats_.recordQueueWait(type, wait_us);
        obs::span::addRequestStage("queue_wait_us", wait_us);
        // The pool already emits a queue_wait span into the ring when
        // global tracing is on; mirror it into the request scratch
        // only when the scratch is the sole observer.
        if (rtrace && !obs::span::enabled())
            obs::span::complete("service", "queue_wait",
                                obs::span::nowMicros() - wait_us,
                                wait_us, "id", span_id);
        Response r;
        {
            obs::span::Scoped handle("service", type_name, "id",
                                     span_id);
            if (deadline && picked > *deadline) {
                r.status = Status::DeadlineExceeded;
                r.error = "deadline passed while queued";
                stats_.deadlineExpired.fetch_add(
                    1, std::memory_order_relaxed);
            } else {
                r = body();
            }
        }
        const auto service_us = microsSince(picked);
        stats_.recordService(type, service_us);
        obs::span::addRequestStage("service_us", service_us);
        obs::span::asyncEnd("service", type_name, span_id);
        prom->set_value(std::move(r));
    };

    switch (pool_.submit(std::move(job), span_id)) {
      case PushResult::Ok:
        break;
      case PushResult::Full: {
        stats_.rejected.fetch_add(1, std::memory_order_relaxed);
        obs::span::asyncEnd("service", type_name, span_id);
        Response r;
        r.status = Status::Rejected;
        r.error = "job queue full";
        prom->set_value(std::move(r));
        break;
      }
      case PushResult::Closed: {
        obs::span::asyncEnd("service", type_name, span_id);
        Response r;
        r.status = Status::ShuttingDown;
        prom->set_value(std::move(r));
        break;
      }
    }
    return fut;
}

std::future<Response>
GraphService::query(QuerySpec spec, Deadline deadline)
{
    return submitJob(
        RequestType::Query,
        [this, spec = std::move(spec)] { return runQuery(spec); },
        deadline);
}

Response
GraphService::runQuery(const QuerySpec &spec)
{
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    Response r;
    if (!knownAlgorithm(spec.algorithm)) {
        r.status = Status::BadRequest;
        r.error = "unknown algorithm '" + spec.algorithm + "'";
        return r;
    }
    const auto snap = store_.get(spec.graph);
    if (!snap) {
        r.status = Status::NotFound;
        r.error = "no graph named '" + spec.graph + "'";
        return r;
    }
    r.version = snap->version;

    // Fixpoint cache: keyed by algorithm only, because every solution
    // converges to the same states (within epsilon) on a snapshot.
    const auto it = snap->fixpoints.find(spec.algorithm);
    if (it != snap->fixpoints.end()) {
        stats_.queryCacheHits.fetch_add(1, std::memory_order_relaxed);
        r.cacheHit = true;
        r.states = it->second;
        obs::span::addRequestStage("cache_hit", 1);
        return r;
    }
    stats_.queryCacheMisses.fetch_add(1, std::memory_order_relaxed);
    const auto fold_before = dep::fold::stats();

    const auto alg = gas::makeAlgorithm(spec.algorithm);
    // Warm-start from any hub dependencies already cached for this
    // version, and cache what the run learned alongside the fixpoint
    // so the batcher can carry them across churn batches.
    const runtime::HubArtifacts *seed = nullptr;
    const auto art_it = snap->hubArtifacts.find(spec.algorithm);
    if (art_it != snap->hubArtifacts.end() && art_it->second
        && !art_it->second->empty())
        seed = art_it->second.get();
    auto learned = std::make_shared<runtime::HubArtifacts>();
    auto run = system_.run(*snap->graph, *alg, spec.solution, seed,
                           learned.get());
    r.metrics = run.metrics;
    if (obs::span::currentRequest()) {
        obs::span::addRequestStage("engine_rounds", run.metrics.rounds);
        obs::span::addRequestStage("edges_walked", run.metrics.edgeOps);
        obs::span::addRequestStage("hub_shortcut_hits",
                                   run.metrics.shortcutsApplied);
        obs::span::addRequestStage("updates", run.metrics.updates);
        // SIMD lane fill: how full the fold-kernel lane tiles ran for
        // THIS query (delta over the process-global counters).
        const auto fold_after = dep::fold::stats();
        const auto d_calls = fold_after.edgeApply.calls
            - fold_before.edgeApply.calls;
        const auto d_elems = fold_after.edgeApply.elems
            - fold_before.edgeApply.elems;
        if (d_calls > 0)
            obs::span::addRequestStage(
                "simd_lane_fill_pct",
                d_elems * 100 / (d_calls * dep::fold::kLaneTile));
    }
    auto states = std::make_shared<std::vector<Value>>(
        std::move(run.states));
    r.states = states;
    store_.cacheFixpoint(spec.graph, snap->version, spec.algorithm,
                         std::move(states),
                         learned->empty() ? nullptr
                                          : std::move(learned));
    return r;
}

std::future<Response>
GraphService::streamUpdates(const std::string &graph,
                            std::vector<gas::EdgeInsertion> edges,
                            Deadline deadline)
{
    return streamChurn(graph, std::move(edges), {}, deadline);
}

std::future<Response>
GraphService::streamDeletions(const std::string &graph,
                              std::vector<gas::EdgeDeletion> edges,
                              Deadline deadline)
{
    return streamChurn(graph, {}, std::move(edges), deadline);
}

std::future<Response>
GraphService::streamChurn(const std::string &graph,
                          std::vector<gas::EdgeInsertion> ins,
                          std::vector<gas::EdgeDeletion> dels,
                          Deadline deadline)
{
    return submitJob(
        RequestType::StreamUpdates,
        [this, graph, ins = std::move(ins),
         dels = std::move(dels)]() mutable {
            stats_.updateRequests.fetch_add(1,
                                            std::memory_order_relaxed);
            Response r;
            if (!store_.get(graph)) {
                r.status = Status::NotFound;
                r.error = "no graph named '" + graph + "'";
                return r;
            }
            stats_.updateEdgesEnqueued.fetch_add(
                ins.size(), std::memory_order_relaxed);
            stats_.updateDeletionsEnqueued.fetch_add(
                dels.size(), std::memory_order_relaxed);
            r.enqueuedEdges = ins.size() + dels.size();
            bool should_flush = false;
            // All-or-nothing ack: journal the churn and enqueue it
            // under one lock, so a record is durable iff applied. A
            // failed append enqueues nothing and the client sees an
            // internal error instead of a lying ack.
            std::string derr;
            const auto wal_start = std::chrono::steady_clock::now();
            if (!dur_.logMutate(
                    graph, ins, dels,
                    [&] {
                        r.pendingEdges = batcher_.enqueue(
                            graph, std::move(ins), std::move(dels),
                            &should_flush);
                    },
                    &derr)) {
                stats_.errors.fetch_add(1, std::memory_order_relaxed);
                r.status = Status::Internal;
                r.error = "durability: " + derr;
                return r;
            }
            obs::span::addRequestStage("wal_sync_us",
                                       microsSince(wal_start));
            // Threshold crossed: apply the batch right here on this
            // worker (no re-submit, so a full queue cannot wedge it).
            if (should_flush) {
                const auto flush_start =
                    std::chrono::steady_clock::now();
                r.version = batcher_.flush(graph);
                obs::span::addRequestStage("batch_apply_us",
                                           microsSince(flush_start));
            }
            return r;
        },
        deadline);
}

std::future<Response>
GraphService::flush(const std::string &graph)
{
    return submitJob(
        RequestType::Flush,
        [this, graph] {
            Response r;
            r.version = batcher_.flush(graph);
            r.pendingEdges = batcher_.pendingEdges(graph);
            return r;
        },
        {});
}

void
GraphService::drain()
{
    // Finish every accepted request (they may enqueue more edges),
    // then apply whatever is pending.
    pool_.drain();
    batcher_.flushAll();
    dur_.syncAll();
}

bool
GraphService::drainFor(std::chrono::milliseconds timeout)
{
    const bool drained = pool_.drainFor(timeout);
    batcher_.flushAll();
    dur_.syncAll();
    return drained;
}

void
GraphService::shutdown()
{
    if (shutdown_.exchange(true, std::memory_order_acq_rel))
        return;
    if (reporter_.joinable()) {
        {
            std::lock_guard lk(reporterMu_);
            stopReporter_ = true;
        }
        reporterCv_.notify_all();
        reporter_.join();
    }
    pool_.shutdown();     // drains queued requests, joins workers
    batcher_.flushAll();  // accepted updates are never dropped
    dur_.syncAll();       // even under --wal_sync=batch
}

bool
GraphService::checkpoint(const std::string &graph, std::string *err)
{
    return dur_.checkpointNow(graph, err);
}

StatsSnapshot
GraphService::stats() const
{
    return stats_.snapshot(pool_.queueDepth(), pool_.queueHighWater());
}

void
GraphService::publishStats() const
{
    stats_.publishTo(obs::registry(), pool_.queueDepth(),
                     pool_.queueHighWater());
    obs::publishBuildInfo(
        obs::registry(),
        dep::fold::isaName(dep::fold::activeIsa()));
}

void
GraphService::reporterLoop()
{
    using clock = std::chrono::steady_clock;
    constexpr auto never = clock::time_point::max();
    const bool log = opt_.statsLogInterval.count() > 0;
    const bool publish = opt_.metricsPublishInterval.count() > 0;
    auto next_log = log ? clock::now() + opt_.statsLogInterval : never;
    auto next_pub =
        publish ? clock::now() + opt_.metricsPublishInterval : never;

    std::unique_lock lk(reporterMu_);
    while (!stopReporter_) {
        reporterCv_.wait_until(lk, std::min(next_log, next_pub),
                               [&] { return stopReporter_; });
        if (stopReporter_)
            break;
        lk.unlock();
        const auto now = clock::now();
        store_.sweep(); // no-op unless a snapshot TTL is configured
        if (now >= next_log) {
            dg_inform(stats().logLine());
            next_log = now + opt_.statsLogInterval;
        }
        if (now >= next_pub) {
            publishStats();
            next_pub = now + opt_.metricsPublishInterval;
        }
        lk.lock();
    }
}

Deadline
Session::deadline() const
{
    return timeout_ ? deadlineIn(*timeout_) : Deadline{};
}

Response
Session::query()
{
    return query(algorithm_);
}

Response
Session::query(const std::string &algorithm)
{
    return svc_.query({graph_, algorithm, solution_}, deadline())
        .get();
}

Response
Session::update(std::vector<gas::EdgeInsertion> edges)
{
    return svc_.streamUpdates(graph_, std::move(edges), deadline())
        .get();
}

Response
Session::update(VertexId src, VertexId dst, Value weight)
{
    return update(std::vector<gas::EdgeInsertion>{{src, dst, weight}});
}

Response
Session::erase(std::vector<gas::EdgeDeletion> edges)
{
    return svc_.streamDeletions(graph_, std::move(edges), deadline())
        .get();
}

Response
Session::erase(VertexId src, VertexId dst, Value weight)
{
    return erase(std::vector<gas::EdgeDeletion>{{src, dst, weight}});
}

Response
Session::flushUpdates()
{
    return svc_.flush(graph_).get();
}

} // namespace depgraph::service
