#include "service/thread_pool.hh"

namespace depgraph::service
{

ThreadPool::ThreadPool()
    : ThreadPool(Options{})
{}

ThreadPool::ThreadPool(Options opt)
    : opt_(opt), queue_(opt.queueCapacity)
{
    const unsigned n = opt_.numThreads ? opt_.numThreads : 1;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

PushResult
ThreadPool::submit(std::function<void()> job)
{
    // Count the job as accepted before it becomes poppable so drain()
    // never observes executed_ == accepted_ with the job in flight.
    {
        std::lock_guard lk(idleMu_);
        if (shutdown_)
            return PushResult::Closed;
        ++accepted_;
    }
    const auto r = opt_.blockWhenFull ? queue_.push(std::move(job))
                                      : queue_.tryPush(std::move(job));
    if (r != PushResult::Ok) {
        std::lock_guard lk(idleMu_);
        --accepted_;
        idleCv_.notify_all();
    }
    return r;
}

void
ThreadPool::drain()
{
    std::unique_lock lk(idleMu_);
    idleCv_.wait(lk, [&] { return executed_ == accepted_; });
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard lk(idleMu_);
        if (shutdown_) {
            // Second caller: workers may already be joined.
        }
        shutdown_ = true;
    }
    queue_.close(); // workers drain the remaining items, then exit
    for (auto &t : workers_)
        if (t.joinable())
            t.join();
}

std::uint64_t
ThreadPool::jobsExecuted() const
{
    std::lock_guard lk(idleMu_);
    return executed_;
}

void
ThreadPool::workerLoop()
{
    std::function<void()> job;
    while (queue_.pop(job)) {
        {
            std::lock_guard lk(idleMu_);
            ++active_;
        }
        job();
        job = nullptr;
        {
            std::lock_guard lk(idleMu_);
            --active_;
            ++executed_;
        }
        idleCv_.notify_all();
    }
}

} // namespace depgraph::service
