#include "service/thread_pool.hh"

#include "obs/span.hh"

namespace depgraph::service
{

ThreadPool::ThreadPool()
    : ThreadPool(Options{})
{}

ThreadPool::ThreadPool(Options opt)
    : opt_(opt), queue_(opt.queueCapacity)
{
    const unsigned n = opt_.numThreads ? opt_.numThreads : 1;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

PushResult
ThreadPool::submit(std::function<void()> job, std::uint64_t span_id)
{
    // Count the job as accepted before it becomes poppable so drain()
    // never observes executed_ == accepted_ with the job in flight.
    {
        std::lock_guard lk(idleMu_);
        if (shutdown_)
            return PushResult::Closed;
        ++accepted_;
    }
    Job item{std::move(job), span_id, std::chrono::steady_clock::now()};
    const auto r = opt_.blockWhenFull ? queue_.push(std::move(item))
                                      : queue_.tryPush(std::move(item));
    if (r != PushResult::Ok) {
        std::lock_guard lk(idleMu_);
        --accepted_;
        idleCv_.notify_all();
    }
    return r;
}

void
ThreadPool::drain()
{
    std::unique_lock lk(idleMu_);
    idleCv_.wait(lk, [&] { return executed_ == accepted_; });
}

bool
ThreadPool::drainFor(std::chrono::milliseconds timeout)
{
    std::unique_lock lk(idleMu_);
    return idleCv_.wait_for(lk, timeout,
                            [&] { return executed_ == accepted_; });
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard lk(idleMu_);
        if (shutdown_) {
            // Second caller: workers may already be joined.
        }
        shutdown_ = true;
    }
    queue_.close(); // workers drain the remaining items, then exit
    for (auto &t : workers_)
        if (t.joinable())
            t.join();
}

std::uint64_t
ThreadPool::jobsExecuted() const
{
    std::lock_guard lk(idleMu_);
    return executed_;
}

void
ThreadPool::workerLoop()
{
    Job job;
    while (queue_.pop(job)) {
        {
            std::lock_guard lk(idleMu_);
            ++active_;
        }
        if (job.spanId && obs::span::enabled()) {
            const auto wait = std::chrono::duration_cast<
                std::chrono::microseconds>(
                std::chrono::steady_clock::now() - job.enqueued);
            const auto end = obs::span::nowMicros();
            const auto wait_us =
                static_cast<std::uint64_t>(wait.count());
            obs::span::complete("service", "queue_wait",
                                end > wait_us ? end - wait_us : 0,
                                wait_us, "id", job.spanId);
        }
        job.fn();
        job.fn = nullptr;
        {
            std::lock_guard lk(idleMu_);
            --active_;
            ++executed_;
        }
        idleCv_.notify_all();
    }
}

} // namespace depgraph::service
