/**
 * @file
 * Bounded multi-producer / multi-consumer job queue.
 *
 * The service's backpressure point: producers either block for space
 * or get an immediate Full, per call site. close() wakes everyone;
 * consumers drain the remaining items before seeing Closed, so a
 * graceful shutdown never drops accepted work.
 *
 * A mutex + two condition variables is deliberately boring: the queue
 * hands out whole requests (milliseconds of simulated-machine work
 * each), so queue overhead is noise and clarity under TSan wins.
 */

#ifndef DEPGRAPH_SERVICE_JOB_QUEUE_HH
#define DEPGRAPH_SERVICE_JOB_QUEUE_HH

#include <condition_variable>
#include <deque>
#include <mutex>

namespace depgraph::service
{

enum class PushResult
{
    Ok,
    Full,   ///< reject policy and no space
    Closed, ///< queue is shut down; item not accepted
};

template <typename T>
class JobQueue
{
  public:
    explicit JobQueue(std::size_t capacity)
        : capacity_(capacity ? capacity : 1)
    {}

    /** Non-blocking push: Full when at capacity. */
    PushResult
    tryPush(T item)
    {
        {
            std::lock_guard lk(mu_);
            if (closed_)
                return PushResult::Closed;
            if (items_.size() >= capacity_)
                return PushResult::Full;
            items_.push_back(std::move(item));
            highWater_ = std::max(highWater_, items_.size());
        }
        consumerCv_.notify_one();
        return PushResult::Ok;
    }

    /** Blocking push: waits for space; Closed if shut down meanwhile. */
    PushResult
    push(T item)
    {
        {
            std::unique_lock lk(mu_);
            producerCv_.wait(lk, [&] {
                return closed_ || items_.size() < capacity_;
            });
            if (closed_)
                return PushResult::Closed;
            items_.push_back(std::move(item));
            highWater_ = std::max(highWater_, items_.size());
        }
        consumerCv_.notify_one();
        return PushResult::Ok;
    }

    /**
     * Blocking pop. Returns false only once the queue is closed AND
     * drained, so pending work survives shutdown.
     */
    bool
    pop(T &out)
    {
        std::unique_lock lk(mu_);
        consumerCv_.wait(lk, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        lk.unlock();
        producerCv_.notify_one();
        return true;
    }

    /** Stop accepting items and wake all waiters. */
    void
    close()
    {
        {
            std::lock_guard lk(mu_);
            closed_ = true;
        }
        consumerCv_.notify_all();
        producerCv_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard lk(mu_);
        return closed_;
    }

    std::size_t
    depth() const
    {
        std::lock_guard lk(mu_);
        return items_.size();
    }

    /** Deepest the queue has ever been (backpressure indicator). */
    std::size_t
    highWater() const
    {
        std::lock_guard lk(mu_);
        return highWater_;
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable consumerCv_;
    std::condition_variable producerCv_;
    std::deque<T> items_;
    std::size_t highWater_ = 0;
    bool closed_ = false;
};

} // namespace depgraph::service

#endif // DEPGRAPH_SERVICE_JOB_QUEUE_HH
