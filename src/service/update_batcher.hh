/**
 * @file
 * UpdateBatcher: coalesce streamed edge insertions per graph and apply
 * them as ONE incremental reconvergence instead of N full recomputes.
 *
 * enqueue() is cheap (append under a lock); flush() drains the pending
 * edges of a graph, builds the updated CSR once, and for every
 * algorithm with a cached fixpoint on the base snapshot runs
 * gas::edgeInsertionDeltas + ResumeAlgorithm through the engine, then
 * publishes the result as the next snapshot version. Applies are
 * serialized per graph; concurrent enqueues keep landing in the next
 * batch while a flush is in flight.
 */

#ifndef DEPGRAPH_SERVICE_UPDATE_BATCHER_HH
#define DEPGRAPH_SERVICE_UPDATE_BATCHER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/depgraph_system.hh"
#include "gas/incremental.hh"
#include "service/snapshot_store.hh"
#include "service/stats.hh"

namespace depgraph::service
{

class UpdateBatcher
{
  public:
    struct Options
    {
        /** enqueue() reports the threshold crossing at this size. */
        std::size_t maxPendingEdges = 256;
        /** Engine used for the incremental reconvergence passes. */
        Solution solution = Solution::DepGraphH;
    };

    UpdateBatcher(GraphStore &store, DepGraphSystem &system,
                  Stats &stats, Options opt);

    /**
     * Queue edge insertions for `graph`.
     * @param should_flush set true when pending crossed the threshold
     *        (exactly once per crossing; the caller schedules a flush).
     * @return pending edge count after the enqueue.
     */
    std::size_t enqueue(const std::string &graph,
                        std::vector<gas::EdgeInsertion> edges,
                        bool *should_flush = nullptr);

    /**
     * Apply everything pending for `graph` as one batch.
     * @return the newly published version, or 0 when there was nothing
     *         pending or the graph does not exist (pending edges for a
     *         vanished graph are dropped).
     */
    std::uint64_t flush(const std::string &graph);

    /** Flush every graph with pending edges. @return batches applied. */
    std::size_t flushAll();

    std::size_t pendingEdges(const std::string &graph) const;

  private:
    struct PerGraph
    {
        std::vector<gas::EdgeInsertion> pending; ///< guarded by mu_
        std::mutex applyMu; ///< serializes flushes of this graph
        bool flushRequested = false; ///< threshold crossing latched
    };

    std::shared_ptr<PerGraph> state(const std::string &graph);

    GraphStore &store_;
    DepGraphSystem &system_;
    Stats &stats_;
    Options opt_;

    mutable std::mutex mu_; ///< guards map_ and every pending vector
    std::map<std::string, std::shared_ptr<PerGraph>> map_;
};

} // namespace depgraph::service

#endif // DEPGRAPH_SERVICE_UPDATE_BATCHER_HH
