/**
 * @file
 * UpdateBatcher: coalesce streamed edge insertions AND deletions per
 * graph and apply them as ONE incremental reconvergence instead of N
 * full recomputes.
 *
 * enqueue() is cheap (append under a lock); a deletion first tries to
 * cancel the most recent matching insertion still pending in the same
 * batch -- both drop, the graph never sees either. flush() drains the
 * pending churn of a graph, builds the updated CSR once with
 * gas::applyChurn, and for every algorithm with a cached fixpoint on
 * the base snapshot runs gas::edgeChurnDeltas + ResumeAlgorithm
 * through the engine, then publishes the result as the next snapshot
 * version. Hub-index dependencies cached on the base snapshot are
 * carried over after dropping every dependency whose core-path touches
 * a vertex the batch dirtied (any source of an inserted or deleted
 * edge), so a DDMU shortcut can never replay retracted mass. Applies
 * are serialized per graph; concurrent enqueues keep landing in the
 * next batch while a flush is in flight.
 */

#ifndef DEPGRAPH_SERVICE_UPDATE_BATCHER_HH
#define DEPGRAPH_SERVICE_UPDATE_BATCHER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/depgraph_system.hh"
#include "gas/incremental.hh"
#include "service/snapshot_store.hh"
#include "service/stats.hh"

namespace depgraph::durability
{
class Manager;
}

namespace depgraph::service
{

class UpdateBatcher
{
  public:
    struct Options
    {
        /** enqueue() reports the threshold crossing at this size
         * (insertions + deletions pending). */
        std::size_t maxPendingEdges = 256;
        /** Engine used for the incremental reconvergence passes. */
        Solution solution = Solution::DepGraphH;
    };

    UpdateBatcher(GraphStore &store, DepGraphSystem &system,
                  Stats &stats, Options opt);

    /** Attach the durability manager: flushes then group-commit the
     * WAL (marker + batched fsync) before applying, and report every
     * applied batch for periodic checkpointing. nullptr detaches. */
    void setDurability(durability::Manager *dur) { dur_ = dur; }

    /**
     * Queue edge insertions for `graph`.
     * @param should_flush set true when pending crossed the threshold
     *        (exactly once per crossing; the caller schedules a flush).
     * @return pending edge count after the enqueue.
     */
    std::size_t enqueue(const std::string &graph,
                        std::vector<gas::EdgeInsertion> edges,
                        bool *should_flush = nullptr);

    /**
     * Queue a mixed churn batch for `graph`. Each deletion first
     * cancels the MOST RECENT matching insertion still pending (same
     * src/dst; any weight when the deletion is wildcard, exact weight
     * otherwise): both are dropped, so an insert-then-delete of the
     * same edge within one batch is a true no-op. Unmatched deletions
     * queue up and are matched against the base graph at flush time.
     */
    std::size_t enqueue(const std::string &graph,
                        std::vector<gas::EdgeInsertion> ins,
                        std::vector<gas::EdgeDeletion> dels,
                        bool *should_flush = nullptr);

    /**
     * Apply everything pending for `graph` as one batch.
     * @return the newly published version, or 0 when there was nothing
     *         pending (e.g. after full insert/delete cancellation) or
     *         the graph does not exist (pending churn for a vanished
     *         graph is dropped).
     */
    std::uint64_t flush(const std::string &graph);

    /** Flush every graph with pending churn. @return batches applied. */
    std::size_t flushAll();

    /** Pending insertions + deletions for `graph`. */
    std::size_t pendingEdges(const std::string &graph) const;

  private:
    struct PerGraph
    {
        std::vector<gas::EdgeInsertion> ins;  ///< guarded by mu_
        std::vector<gas::EdgeDeletion> dels;  ///< guarded by mu_
        std::mutex applyMu; ///< serializes flushes of this graph
        bool flushRequested = false; ///< threshold crossing latched
    };

    std::shared_ptr<PerGraph> state(const std::string &graph);

    GraphStore &store_;
    DepGraphSystem &system_;
    Stats &stats_;
    Options opt_;
    durability::Manager *dur_ = nullptr;

    mutable std::mutex mu_; ///< guards map_ and every pending vector
    std::map<std::string, std::shared_ptr<PerGraph>> map_;
};

} // namespace depgraph::service

#endif // DEPGRAPH_SERVICE_UPDATE_BATCHER_HH
