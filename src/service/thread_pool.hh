/**
 * @file
 * Fixed-size worker pool over the bounded JobQueue.
 *
 * Jobs are type-erased closures; the pool adds nothing clever on top
 * of the queue except drain() -- "wait until every job accepted so far
 * has finished" -- which shutdown and the service's Flush/Drain
 * requests need.
 *
 * Observability: submit() optionally takes a span id. The id and the
 * enqueue timestamp travel through the job queue with the closure, and
 * the worker that dequeues the job records a "queue_wait" complete
 * span (obs::span) carrying the id before running it -- that is how
 * queue-wait time separates from service time in a trace, and how a
 * request's async span stitches to the thread that executed it.
 */

#ifndef DEPGRAPH_SERVICE_THREAD_POOL_HH
#define DEPGRAPH_SERVICE_THREAD_POOL_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "service/job_queue.hh"

namespace depgraph::service
{

class ThreadPool
{
  public:
    struct Options
    {
        unsigned numThreads = 4;
        std::size_t queueCapacity = 128;
        /** true: submit() blocks for space; false: rejects when full. */
        bool blockWhenFull = false;
    };

    /* No `= {}` default: a nested aggregate's member initializers are
     * not usable as a default argument until the enclosing class is
     * complete (GCC enforces this), hence the separate default ctor. */
    explicit ThreadPool(Options opt);
    ThreadPool();

    /** Drains and joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a job under the configured backpressure policy.
     * Ok: accepted and will run (even through shutdown's drain).
     * Full: rejected (reject policy). Closed: pool is shutting down.
     *
     * @param span_id nonzero: the dequeuing worker records a
     *        "queue_wait" span carrying this id (obs::span::newId()).
     */
    PushResult submit(std::function<void()> job,
                      std::uint64_t span_id = 0);

    /** Block until all jobs accepted so far have completed. */
    void drain();

    /**
     * drain() with a deadline (graceful shutdown paths: SIGTERM gives
     * the pool a bounded window to finish). @return true when every
     * accepted job completed before the timeout.
     */
    bool drainFor(std::chrono::milliseconds timeout);

    /** Stop accepting, drain the queue, join the workers. Idempotent. */
    void shutdown();

    unsigned numThreads() const { return static_cast<unsigned>(workers_.size()); }
    std::size_t queueDepth() const { return queue_.depth(); }
    std::size_t queueHighWater() const { return queue_.highWater(); }
    std::uint64_t jobsExecuted() const;

  private:
    /** What travels through the queue: the closure plus the span id
     * and enqueue time the worker needs to account the queue wait. */
    struct Job
    {
        std::function<void()> fn;
        std::uint64_t spanId = 0;
        std::chrono::steady_clock::time_point enqueued;
    };

    void workerLoop();

    Options opt_;
    JobQueue<Job> queue_;
    std::vector<std::thread> workers_;

    mutable std::mutex idleMu_;
    std::condition_variable idleCv_;
    std::size_t active_ = 0;          ///< jobs currently executing
    std::uint64_t executed_ = 0;      ///< jobs finished
    std::uint64_t accepted_ = 0;      ///< jobs ever accepted
    bool shutdown_ = false;
};

} // namespace depgraph::service

#endif // DEPGRAPH_SERVICE_THREAD_POOL_HH
