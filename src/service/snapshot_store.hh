/**
 * @file
 * GraphStore: named, versioned, copy-on-write graph snapshots.
 *
 * Readers grab a shared_ptr<const Snapshot> and compute against it for
 * as long as they like; writers never mutate a published snapshot --
 * they build a fresh graph (plus reconverged fixpoint caches) and
 * publish it as the next version. publish() is optimistic: it fails if
 * the named graph moved past the base version, so concurrent writers
 * can detect the conflict and retry on the new current snapshot.
 *
 * Snapshots also carry a per-algorithm fixpoint cache (the converged
 * state vector at this exact version). Queries fill it; the
 * UpdateBatcher consumes it as the resume point for incremental
 * reconvergence and re-populates it for the next version.
 */

#ifndef DEPGRAPH_SERVICE_SNAPSHOT_STORE_HH
#define DEPGRAPH_SERVICE_SNAPSHOT_STORE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hh"
#include "graph/csr.hh"
#include "runtime/engine.hh"

namespace depgraph::service
{

using StateVectorPtr = std::shared_ptr<const std::vector<Value>>;
using HubArtifactsPtr = std::shared_ptr<const runtime::HubArtifacts>;

/** One immutable published version of a named graph. */
struct Snapshot
{
    Snapshot() { liveCount_.fetch_add(1, std::memory_order_relaxed); }

    Snapshot(const Snapshot &o)
        : name(o.name), version(o.version), graph(o.graph),
          fixpoints(o.fixpoints), hubArtifacts(o.hubArtifacts)
    {
        liveCount_.fetch_add(1, std::memory_order_relaxed);
    }

    Snapshot &operator=(const Snapshot &) = default;

    ~Snapshot() { liveCount_.fetch_sub(1, std::memory_order_relaxed); }

    /** Snapshot objects alive process-wide (store entries plus every
     * superseded version readers still pin). The boundedness the TTL
     * sweep promises is assertable against this number. */
    static std::uint64_t
    live()
    {
        return liveCount_.load(std::memory_order_relaxed);
    }

    std::string name;
    std::uint64_t version = 0;
    std::shared_ptr<const graph::Graph> graph;
    /** Converged states per algorithm name, valid for this version. */
    std::map<std::string, StateVectorPtr> fixpoints;
    /** Hub-index dependencies learned at this version, per algorithm.
     * The UpdateBatcher invalidates the entries a churn batch touches
     * and warm-starts the next incremental run from the rest. */
    std::map<std::string, HubArtifactsPtr> hubArtifacts;

  private:
    static inline std::atomic<std::uint64_t> liveCount_{0};
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

/**
 * Retention policy for a long-running store. Both knobs default off,
 * preserving the original keep-everything behavior for library use;
 * a serving deployment (dgserve --listen) enables them so resident
 * memory stays bounded no matter how many graphs clients create.
 */
struct StoreOptions
{
    /** Evict a graph untouched (no get/put/publish/cache) for this
     * long. 0 = never. Eviction only drops the store's reference --
     * in-flight readers keep their snapshots alive. */
    std::chrono::milliseconds ttl{0};
    /** Hard cap on named graphs; exceeding it on put()/publish()
     * evicts the least-recently-accessed other graph. 0 = unbounded. */
    std::size_t maxGraphs = 0;
};

class GraphStore
{
  public:
    explicit GraphStore(StoreOptions opt);
    GraphStore();

    /**
     * Create or replace the named graph with a brand-new lineage
     * (version = previous version + 1, empty fixpoint cache).
     * The transpose view is materialized eagerly so the published
     * graph is safe for lock-free concurrent readers.
     * @return the published version.
     */
    std::uint64_t put(const std::string &name, graph::Graph g);

    /** Current snapshot, or nullptr if the name is unknown. */
    SnapshotPtr get(const std::string &name) const;

    /** @return true if the name existed. */
    bool erase(const std::string &name);

    std::vector<std::string> names() const;

    /**
     * Publish the successor of `base`: a new graph plus the fixpoint
     * caches reconverged for it. Fails (returns nullptr, nothing
     * published) when `base` is no longer the current snapshot of its
     * name -- the caller should re-read and retry.
     */
    SnapshotPtr publish(
        const SnapshotPtr &base, graph::Graph g,
        std::map<std::string, StateVectorPtr> fixpoints,
        std::map<std::string, HubArtifactsPtr> hub_artifacts = {});

    /**
     * Attach a freshly computed fixpoint to the named graph, but only
     * if it is still at `version` (otherwise the states describe a
     * stale graph and are dropped). `hub` (optional) attaches the hub
     * artifacts the same run exported. @return true if cached.
     */
    bool cacheFixpoint(const std::string &name, std::uint64_t version,
                       const std::string &algorithm,
                       StateVectorPtr states,
                       HubArtifactsPtr hub = nullptr);

    /**
     * Apply the retention policy now: drop graphs idle past the TTL.
     * Cheap no-op when ttl is 0. Driven by the net server's loop tick
     * and the service reporter; callable any time. @return graphs
     * evicted by this sweep.
     */
    std::size_t sweep();

    /** Graphs evicted so far (TTL + LRU cap), for tests/metrics. */
    std::uint64_t evictions() const;

    /** Cache-entry census across current snapshots. */
    struct Usage
    {
        std::size_t graphs = 0;
        std::size_t cachedFixpoints = 0;
        std::size_t cachedHubArtifacts = 0;
    };
    Usage usage() const;

    const StoreOptions &options() const { return opt_; }

  private:
    struct Entry
    {
        SnapshotPtr snap;
        std::chrono::steady_clock::time_point lastAccess;
    };

    /** Evict LRU graphs beyond maxGraphs, keeping `keep`. Caller
     * holds mu_. */
    void enforceCapLocked(const std::string &keep);

    StoreOptions opt_;
    mutable std::mutex mu_;
    mutable std::map<std::string, Entry> snaps_;
    std::uint64_t evictions_ = 0;
};

} // namespace depgraph::service

#endif // DEPGRAPH_SERVICE_SNAPSHOT_STORE_HH
