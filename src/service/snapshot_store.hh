/**
 * @file
 * GraphStore: named, versioned, copy-on-write graph snapshots.
 *
 * Readers grab a shared_ptr<const Snapshot> and compute against it for
 * as long as they like; writers never mutate a published snapshot --
 * they build a fresh graph (plus reconverged fixpoint caches) and
 * publish it as the next version. publish() is optimistic: it fails if
 * the named graph moved past the base version, so concurrent writers
 * can detect the conflict and retry on the new current snapshot.
 *
 * Snapshots also carry a per-algorithm fixpoint cache (the converged
 * state vector at this exact version). Queries fill it; the
 * UpdateBatcher consumes it as the resume point for incremental
 * reconvergence and re-populates it for the next version.
 */

#ifndef DEPGRAPH_SERVICE_SNAPSHOT_STORE_HH
#define DEPGRAPH_SERVICE_SNAPSHOT_STORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hh"
#include "graph/csr.hh"
#include "runtime/engine.hh"

namespace depgraph::service
{

using StateVectorPtr = std::shared_ptr<const std::vector<Value>>;
using HubArtifactsPtr = std::shared_ptr<const runtime::HubArtifacts>;

/** One immutable published version of a named graph. */
struct Snapshot
{
    std::string name;
    std::uint64_t version = 0;
    std::shared_ptr<const graph::Graph> graph;
    /** Converged states per algorithm name, valid for this version. */
    std::map<std::string, StateVectorPtr> fixpoints;
    /** Hub-index dependencies learned at this version, per algorithm.
     * The UpdateBatcher invalidates the entries a churn batch touches
     * and warm-starts the next incremental run from the rest. */
    std::map<std::string, HubArtifactsPtr> hubArtifacts;
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

class GraphStore
{
  public:
    /**
     * Create or replace the named graph with a brand-new lineage
     * (version = previous version + 1, empty fixpoint cache).
     * The transpose view is materialized eagerly so the published
     * graph is safe for lock-free concurrent readers.
     * @return the published version.
     */
    std::uint64_t put(const std::string &name, graph::Graph g);

    /** Current snapshot, or nullptr if the name is unknown. */
    SnapshotPtr get(const std::string &name) const;

    /** @return true if the name existed. */
    bool erase(const std::string &name);

    std::vector<std::string> names() const;

    /**
     * Publish the successor of `base`: a new graph plus the fixpoint
     * caches reconverged for it. Fails (returns nullptr, nothing
     * published) when `base` is no longer the current snapshot of its
     * name -- the caller should re-read and retry.
     */
    SnapshotPtr publish(
        const SnapshotPtr &base, graph::Graph g,
        std::map<std::string, StateVectorPtr> fixpoints,
        std::map<std::string, HubArtifactsPtr> hub_artifacts = {});

    /**
     * Attach a freshly computed fixpoint to the named graph, but only
     * if it is still at `version` (otherwise the states describe a
     * stale graph and are dropped). `hub` (optional) attaches the hub
     * artifacts the same run exported. @return true if cached.
     */
    bool cacheFixpoint(const std::string &name, std::uint64_t version,
                       const std::string &algorithm,
                       StateVectorPtr states,
                       HubArtifactsPtr hub = nullptr);

  private:
    mutable std::mutex mu_;
    std::map<std::string, SnapshotPtr> snaps_;
};

} // namespace depgraph::service

#endif // DEPGRAPH_SERVICE_SNAPSHOT_STORE_HH
