#include "service/stats.hh"

#include <bit>
#include <sstream>

#include "common/table.hh"

namespace depgraph::service
{

const char *
requestTypeName(RequestType t)
{
    switch (t) {
      case RequestType::Load:
        return "load";
      case RequestType::Query:
        return "query";
      case RequestType::StreamUpdates:
        return "update";
      case RequestType::Flush:
        return "flush";
    }
    return "?";
}

void
LatencyHistogram::record(std::uint64_t micros)
{
    std::size_t k = micros == 0
        ? 0
        : static_cast<std::size_t>(std::bit_width(micros) - 1);
    if (k >= kBuckets)
        k = kBuckets - 1;
    buckets_[k].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(micros, std::memory_order_relaxed);
    auto prev = max_.load(std::memory_order_relaxed);
    while (micros > prev
           && !max_.compare_exchange_weak(prev, micros,
                                          std::memory_order_relaxed)) {
    }
}

std::uint64_t
LatencyHistogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

std::uint64_t
LatencyHistogram::sumMicros() const
{
    return sum_.load(std::memory_order_relaxed);
}

std::uint64_t
LatencyHistogram::maxMicros() const
{
    return max_.load(std::memory_order_relaxed);
}

std::uint64_t
LatencyHistogram::quantileUpperBound(double q) const
{
    const auto total = count();
    if (total == 0)
        return 0;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total));
    std::uint64_t seen = 0;
    for (std::size_t k = 0; k < kBuckets; ++k) {
        seen += buckets_[k].load(std::memory_order_relaxed);
        if (seen > rank)
            return (std::uint64_t{1} << (k + 1)) - 1;
    }
    return maxMicros();
}

void
Stats::recordLatency(RequestType t, std::uint64_t micros)
{
    latency_[static_cast<std::size_t>(t)].record(micros);
}

StatsSnapshot
Stats::snapshot(std::size_t queue_depth,
                std::size_t queue_high_water) const
{
    StatsSnapshot s;
    s.loads = loads.load(std::memory_order_relaxed);
    s.queries = queries.load(std::memory_order_relaxed);
    s.queryCacheHits = queryCacheHits.load(std::memory_order_relaxed);
    s.queryCacheMisses =
        queryCacheMisses.load(std::memory_order_relaxed);
    s.updateRequests = updateRequests.load(std::memory_order_relaxed);
    s.updateEdgesEnqueued =
        updateEdgesEnqueued.load(std::memory_order_relaxed);
    s.updateDeletionsEnqueued =
        updateDeletionsEnqueued.load(std::memory_order_relaxed);
    s.updateEdgesCancelled =
        updateEdgesCancelled.load(std::memory_order_relaxed);
    s.batchesApplied = batchesApplied.load(std::memory_order_relaxed);
    s.batchEdgesApplied =
        batchEdgesApplied.load(std::memory_order_relaxed);
    s.incrementalPasses =
        incrementalPasses.load(std::memory_order_relaxed);
    s.hubDepsCarried = hubDepsCarried.load(std::memory_order_relaxed);
    s.hubDepsInvalidated =
        hubDepsInvalidated.load(std::memory_order_relaxed);
    s.rejected = rejected.load(std::memory_order_relaxed);
    s.deadlineExpired = deadlineExpired.load(std::memory_order_relaxed);
    s.errors = errors.load(std::memory_order_relaxed);
    s.queueDepth = queue_depth;
    s.queueHighWater = queue_high_water;
    for (std::size_t i = 0; i < kNumRequestTypes; ++i) {
        const auto &h = latency_[i];
        auto &l = s.latency[i];
        l.count = h.count();
        l.meanMicros = l.count ? h.sumMicros() / l.count : 0;
        l.p50Micros = h.quantileUpperBound(0.50);
        l.p99Micros = h.quantileUpperBound(0.99);
        l.maxMicros = h.maxMicros();
    }
    return s;
}

std::string
StatsSnapshot::render() const
{
    Table counters({"counter", "value"});
    counters.addRow({"loads", Table::fmt(loads)});
    counters.addRow({"queries", Table::fmt(queries)});
    counters.addRow({"query cache hits", Table::fmt(queryCacheHits)});
    counters.addRow({"query cache misses",
                     Table::fmt(queryCacheMisses)});
    counters.addRow({"update requests", Table::fmt(updateRequests)});
    counters.addRow({"update edges enqueued",
                     Table::fmt(updateEdgesEnqueued)});
    counters.addRow({"update deletions enqueued",
                     Table::fmt(updateDeletionsEnqueued)});
    counters.addRow({"update edges cancelled",
                     Table::fmt(updateEdgesCancelled)});
    counters.addRow({"batches applied", Table::fmt(batchesApplied)});
    counters.addRow({"batch edges applied",
                     Table::fmt(batchEdgesApplied)});
    counters.addRow({"incremental passes",
                     Table::fmt(incrementalPasses)});
    counters.addRow({"hub deps carried", Table::fmt(hubDepsCarried)});
    counters.addRow({"hub deps invalidated",
                     Table::fmt(hubDepsInvalidated)});
    counters.addRow({"rejected", Table::fmt(rejected)});
    counters.addRow({"deadline expired", Table::fmt(deadlineExpired)});
    counters.addRow({"errors", Table::fmt(errors)});
    counters.addRow({"queue depth", Table::fmt(std::uint64_t{
                                        queueDepth})});
    counters.addRow({"queue high water", Table::fmt(std::uint64_t{
                                             queueHighWater})});

    Table lat({"request", "count", "mean us", "p50 us", "p99 us",
               "max us"});
    for (std::size_t i = 0; i < kNumRequestTypes; ++i) {
        const auto &l = latency[i];
        lat.addRow({requestTypeName(static_cast<RequestType>(i)),
                    Table::fmt(l.count), Table::fmt(l.meanMicros),
                    Table::fmt(l.p50Micros), Table::fmt(l.p99Micros),
                    Table::fmt(l.maxMicros)});
    }
    return counters.render() + "\n" + lat.render();
}

std::string
StatsSnapshot::logLine() const
{
    std::ostringstream os;
    os << "service: q=" << queries << " hit=" << queryCacheHits
       << " upd=" << updateRequests << " del=" << updateDeletionsEnqueued
       << " cancel=" << updateEdgesCancelled
       << " batches=" << batchesApplied
       << " passes=" << incrementalPasses << " rej=" << rejected
       << " dl=" << deadlineExpired << " err=" << errors
       << " depth=" << queueDepth << " hiwat=" << queueHighWater;
    const auto &q = latency[static_cast<std::size_t>(
        RequestType::Query)];
    os << " query_p50us=" << q.p50Micros << " query_p99us="
       << q.p99Micros;
    return os.str();
}

} // namespace depgraph::service
