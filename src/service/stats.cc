#include "service/stats.hh"

#include <sstream>

#include "common/table.hh"

namespace depgraph::service
{

const char *
requestTypeName(RequestType t)
{
    switch (t) {
      case RequestType::Load:
        return "load";
      case RequestType::Query:
        return "query";
      case RequestType::StreamUpdates:
        return "update";
      case RequestType::Flush:
        return "flush";
    }
    return "?";
}

void
Stats::recordQueueWait(RequestType t, std::uint64_t micros)
{
    queueWait_[static_cast<std::size_t>(t)].record(micros);
}

void
Stats::recordService(RequestType t, std::uint64_t micros)
{
    service_[static_cast<std::size_t>(t)].record(micros);
}

namespace
{

void
fill(StatsSnapshot::Latency &l, const LatencyHistogram &h)
{
    l.count = h.count();
    l.meanMicros = l.count ? h.sum() / l.count : 0;
    l.p50Micros = h.quantileUpperBound(0.50);
    l.p99Micros = h.quantileUpperBound(0.99);
    l.maxMicros = h.max();
}

} // namespace

StatsSnapshot
Stats::snapshot(std::size_t queue_depth,
                std::size_t queue_high_water) const
{
    StatsSnapshot s;
    s.loads = loads.load(std::memory_order_relaxed);
    s.queries = queries.load(std::memory_order_relaxed);
    s.queryCacheHits = queryCacheHits.load(std::memory_order_relaxed);
    s.queryCacheMisses =
        queryCacheMisses.load(std::memory_order_relaxed);
    s.updateRequests = updateRequests.load(std::memory_order_relaxed);
    s.updateEdgesEnqueued =
        updateEdgesEnqueued.load(std::memory_order_relaxed);
    s.updateDeletionsEnqueued =
        updateDeletionsEnqueued.load(std::memory_order_relaxed);
    s.updateEdgesCancelled =
        updateEdgesCancelled.load(std::memory_order_relaxed);
    s.batchesApplied = batchesApplied.load(std::memory_order_relaxed);
    s.batchEdgesApplied =
        batchEdgesApplied.load(std::memory_order_relaxed);
    s.incrementalPasses =
        incrementalPasses.load(std::memory_order_relaxed);
    s.hubDepsCarried = hubDepsCarried.load(std::memory_order_relaxed);
    s.hubDepsInvalidated =
        hubDepsInvalidated.load(std::memory_order_relaxed);
    s.rejected = rejected.load(std::memory_order_relaxed);
    s.deadlineExpired = deadlineExpired.load(std::memory_order_relaxed);
    s.errors = errors.load(std::memory_order_relaxed);
    s.queueDepth = queue_depth;
    s.queueHighWater = queue_high_water;
    for (std::size_t i = 0; i < kNumRequestTypes; ++i) {
        fill(s.queueWait[i], queueWait_[i]);
        fill(s.service[i], service_[i]);
    }
    return s;
}

void
Stats::publishTo(obs::Registry &reg, std::size_t queue_depth,
                 std::size_t queue_high_water) const
{
    const struct
    {
        const char *name;
        const char *help;
        const std::atomic<std::uint64_t> &v;
    } counters[] = {
        {"dg_service_loads_total", "Graph loads", loads},
        {"dg_service_queries_total", "Query requests", queries},
        {"dg_service_query_cache_hits_total", "Fixpoint cache hits",
         queryCacheHits},
        {"dg_service_query_cache_misses_total",
         "Fixpoint cache misses", queryCacheMisses},
        {"dg_service_update_requests_total", "Update requests",
         updateRequests},
        {"dg_service_update_edges_enqueued_total",
         "Edge insertions enqueued", updateEdgesEnqueued},
        {"dg_service_update_deletions_enqueued_total",
         "Edge deletions enqueued", updateDeletionsEnqueued},
        {"dg_service_update_edges_cancelled_total",
         "Insertions cancelled by matching deletions",
         updateEdgesCancelled},
        {"dg_service_batches_applied_total", "Churn batches applied",
         batchesApplied},
        {"dg_service_batch_edges_applied_total",
         "Edges applied through batches", batchEdgesApplied},
        {"dg_service_incremental_passes_total",
         "Incremental reconvergence passes", incrementalPasses},
        {"dg_service_hub_deps_carried_total",
         "Hub dependencies carried across flushes", hubDepsCarried},
        {"dg_service_hub_deps_invalidated_total",
         "Hub dependencies invalidated by dirty vertices",
         hubDepsInvalidated},
        {"dg_service_rejected_total", "Requests rejected (queue full)",
         rejected},
        {"dg_service_deadline_expired_total",
         "Requests expired while queued", deadlineExpired},
        {"dg_service_errors_total", "Internal errors", errors},
    };
    for (const auto &c : counters)
        reg.counter(c.name, c.help)
            .set(c.v.load(std::memory_order_relaxed));

    reg.gauge("dg_service_queue_depth", "Jobs currently queued")
        .set(static_cast<double>(queue_depth));
    reg.gauge("dg_service_queue_high_water",
              "Deepest the job queue has been")
        .set(static_cast<double>(queue_high_water));

    for (std::size_t i = 0; i < kNumRequestTypes; ++i) {
        const obs::Labels labels{
            {"type", requestTypeName(static_cast<RequestType>(i))}};
        reg.histogram("dg_service_queue_wait_us",
                      "Submit-to-pickup wait per request type, "
                      "microseconds",
                      labels)
            .assignFrom(queueWait_[i]);
        reg.histogram("dg_service_time_us",
                      "Worker execution time per request type, "
                      "microseconds",
                      labels)
            .assignFrom(service_[i]);
    }
}

std::string
StatsSnapshot::render() const
{
    Table counters({"counter", "value"});
    counters.addRow({"loads", Table::fmt(loads)});
    counters.addRow({"queries", Table::fmt(queries)});
    counters.addRow({"query cache hits", Table::fmt(queryCacheHits)});
    counters.addRow({"query cache misses",
                     Table::fmt(queryCacheMisses)});
    counters.addRow({"update requests", Table::fmt(updateRequests)});
    counters.addRow({"update edges enqueued",
                     Table::fmt(updateEdgesEnqueued)});
    counters.addRow({"update deletions enqueued",
                     Table::fmt(updateDeletionsEnqueued)});
    counters.addRow({"update edges cancelled",
                     Table::fmt(updateEdgesCancelled)});
    counters.addRow({"batches applied", Table::fmt(batchesApplied)});
    counters.addRow({"batch edges applied",
                     Table::fmt(batchEdgesApplied)});
    counters.addRow({"incremental passes",
                     Table::fmt(incrementalPasses)});
    counters.addRow({"hub deps carried", Table::fmt(hubDepsCarried)});
    counters.addRow({"hub deps invalidated",
                     Table::fmt(hubDepsInvalidated)});
    counters.addRow({"rejected", Table::fmt(rejected)});
    counters.addRow({"deadline expired", Table::fmt(deadlineExpired)});
    counters.addRow({"errors", Table::fmt(errors)});
    counters.addRow({"queue depth", Table::fmt(std::uint64_t{
                                        queueDepth})});
    counters.addRow({"queue high water", Table::fmt(std::uint64_t{
                                             queueHighWater})});

    Table lat({"request", "phase", "count", "mean us", "p50 us",
               "p99 us", "max us"});
    for (std::size_t i = 0; i < kNumRequestTypes; ++i) {
        const auto *name =
            requestTypeName(static_cast<RequestType>(i));
        const struct
        {
            const char *phase;
            const Latency &l;
        } rows[] = {{"wait", queueWait[i]}, {"service", service[i]}};
        for (const auto &row : rows) {
            lat.addRow({name, row.phase, Table::fmt(row.l.count),
                        Table::fmt(row.l.meanMicros),
                        Table::fmt(row.l.p50Micros),
                        Table::fmt(row.l.p99Micros),
                        Table::fmt(row.l.maxMicros)});
        }
    }
    return counters.render() + "\n" + lat.render();
}

std::string
StatsSnapshot::logLine() const
{
    std::ostringstream os;
    os << "service: q=" << queries << " hit=" << queryCacheHits
       << " upd=" << updateRequests << " del=" << updateDeletionsEnqueued
       << " cancel=" << updateEdgesCancelled
       << " batches=" << batchesApplied
       << " passes=" << incrementalPasses << " rej=" << rejected
       << " dl=" << deadlineExpired << " err=" << errors
       << " depth=" << queueDepth << " hiwat=" << queueHighWater;
    const auto qi = static_cast<std::size_t>(RequestType::Query);
    os << " query_wait_p99us=" << queueWait[qi].p99Micros
       << " query_p50us=" << service[qi].p50Micros
       << " query_p99us=" << service[qi].p99Micros;
    return os.str();
}

} // namespace depgraph::service
