/**
 * @file
 * GraphService: the long-lived, thread-safe serving facade.
 *
 * Wires together the GraphStore (versioned copy-on-write snapshots),
 * the UpdateBatcher (coalesced incremental reconvergence), a bounded
 * worker ThreadPool (backpressure: block or reject), and service-level
 * Stats. Requests are asynchronous -- each returns a std::future --
 * and carry an optional deadline checked when a worker picks the
 * request up, so requests that waited too long in the queue fail fast
 * instead of burning a worker.
 *
 * Consistency model: Query reads the current published snapshot
 * (snapshot isolation); StreamUpdates acknowledges once the edges are
 * durably queued in the batcher, and they become visible to queries
 * when a batch flush publishes the next version (threshold crossing,
 * explicit Flush, drain, or shutdown -- accepted updates are never
 * dropped by a graceful shutdown).
 */

#ifndef DEPGRAPH_SERVICE_SERVICE_HH
#define DEPGRAPH_SERVICE_SERVICE_HH

#include <chrono>
#include <condition_variable>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/depgraph_system.hh"
#include "durability/manager.hh"
#include "gas/incremental.hh"
#include "service/snapshot_store.hh"
#include "service/stats.hh"
#include "service/thread_pool.hh"
#include "service/update_batcher.hh"

namespace depgraph::service
{

enum class Status
{
    Ok,
    NotFound,         ///< unknown graph name
    BadRequest,       ///< e.g. unknown algorithm
    Rejected,         ///< queue full under the reject policy
    DeadlineExceeded, ///< deadline passed while queued
    ShuttingDown,     ///< service no longer accepts requests
    Internal,         ///< e.g. WAL append failed: nothing applied
};

const char *statusName(Status s);

/** Absolute per-request deadline (empty = none). */
using Deadline = std::optional<std::chrono::steady_clock::time_point>;

/** Convenience: deadline `timeout` from now. */
Deadline deadlineIn(std::chrono::milliseconds timeout);

struct QuerySpec
{
    std::string graph;
    std::string algorithm = "pagerank";
    Solution solution = Solution::DepGraphH;
};

struct Response
{
    Status status = Status::Ok;
    std::string error;
    std::uint64_t version = 0; ///< snapshot version served / published

    /* Query */
    StateVectorPtr states;          ///< converged vertex states
    runtime::RunMetrics metrics;    ///< zeroed on a cache hit
    bool cacheHit = false;

    /* StreamUpdates / Flush */
    std::size_t enqueuedEdges = 0;
    std::size_t pendingEdges = 0;

    bool ok() const { return status == Status::Ok; }
};

struct ServiceOptions
{
    ThreadPool::Options pool;
    UpdateBatcher::Options batcher;
    StoreOptions store;  ///< snapshot retention (TTL / graph cap)
    SystemConfig system; ///< machine + engine config for all runs
    /** > 0: the reporter thread logs a stats line at this period. */
    std::chrono::milliseconds statsLogInterval{0};
    /** > 0: the reporter thread also publishes the stats into
     * obs::registry() at this period (dg_service_* metrics). */
    std::chrono::milliseconds metricsPublishInterval{0};
    /** Crash durability (WAL + checkpoints). Disabled while
     * `durability.dataDir` is empty: acked writes then survive only a
     * graceful drain, exactly the pre-durability behavior. */
    durability::DurabilityOptions durability;
};

class GraphService
{
  public:
    explicit GraphService(ServiceOptions opt = {});

    /** Graceful: drains accepted work, applies pending updates. */
    ~GraphService();

    GraphService(const GraphService &) = delete;
    GraphService &operator=(const GraphService &) = delete;

    /**
     * Create or replace a named graph (synchronous; the snapshot is
     * visible to queries when this returns). @return the new version,
     * or 0 when durability is on and the creation could not be
     * journaled (the graph is then NOT visible -- all or nothing).
     */
    std::uint64_t loadGraph(const std::string &name, graph::Graph g);

    /** Run an algorithm against the current snapshot of a graph. */
    std::future<Response> query(QuerySpec spec, Deadline deadline = {});

    /** Queue edge insertions; acknowledged when durably batched. */
    std::future<Response>
    streamUpdates(const std::string &graph,
                  std::vector<gas::EdgeInsertion> edges,
                  Deadline deadline = {});

    /** Queue edge deletions; acknowledged when durably batched. A
     * deletion first cancels a matching insertion still pending in the
     * batcher (see UpdateBatcher::enqueue). */
    std::future<Response>
    streamDeletions(const std::string &graph,
                    std::vector<gas::EdgeDeletion> edges,
                    Deadline deadline = {});

    /** Queue a mixed insert/delete churn batch. */
    std::future<Response>
    streamChurn(const std::string &graph,
                std::vector<gas::EdgeInsertion> ins,
                std::vector<gas::EdgeDeletion> dels,
                Deadline deadline = {});

    /** Force-apply everything pending for one graph. */
    std::future<Response> flush(const std::string &graph);

    /**
     * Finish every accepted request, then apply all pending update
     * batches. On return, queries see every update accepted before
     * drain() was called.
     */
    void drain();

    /**
     * drain() with a deadline: wait up to `timeout` for accepted
     * requests to finish, then flush pending update batches either
     * way (acknowledged updates are never dropped -- on timeout the
     * flush may run concurrently with stragglers, which the batcher's
     * per-graph serialization makes safe). @return true when the pool
     * fully drained in time.
     */
    bool drainFor(std::chrono::milliseconds timeout);

    /** Stop accepting requests, drain, join workers. Idempotent. */
    void shutdown();

    StatsSnapshot stats() const;

    /** Mirror the live stats into obs::registry() right now (the
     * `metrics` protocol verb renders the registry afterwards). */
    void publishStats() const;

    GraphStore &store() { return store_; }
    UpdateBatcher &batcher() { return batcher_; }
    const ServiceOptions &options() const { return opt_; }

    durability::Manager &durabilityManager() { return dur_; }

    /** What startup recovery replayed (empty when durability is off
     * or the data dir was fresh). */
    const durability::RecoveryReport &recoveryReport() const
    {
        return recovery_;
    }

    /** Flush + snapshot + truncate the named graph's WAL now (the
     * `checkpoint` protocol verb). @return false with a reason when
     * durability is off or the graph is unknown. */
    bool checkpoint(const std::string &graph, std::string *err);

    /** Live counters/histograms (read-only): the net layer's
     * admission controller taps the queue-wait histograms directly. */
    const Stats &rawStats() const { return stats_; }

  private:
    struct Timed; // request bookkeeping helper

    std::future<Response> submitJob(RequestType type,
                                    std::function<Response()> body,
                                    Deadline deadline);
    Response runQuery(const QuerySpec &spec);
    void reporterLoop();
    void recoverFromDisk();

    ServiceOptions opt_;
    Stats stats_;
    GraphStore store_;
    DepGraphSystem system_;
    UpdateBatcher batcher_;
    durability::Manager dur_;
    durability::RecoveryReport recovery_;
    ThreadPool pool_;

    std::mutex reporterMu_;
    std::condition_variable reporterCv_;
    bool stopReporter_ = false;
    std::thread reporter_;

    std::atomic<bool> shutdown_{false};
};

/**
 * Session: a client handle binding a default graph / algorithm /
 * solution, with synchronous conveniences and an optional per-request
 * timeout applied to every call.
 */
class Session
{
  public:
    Session(GraphService &svc, std::string graph,
            std::string algorithm = "pagerank",
            Solution solution = Solution::DepGraphH)
        : svc_(svc), graph_(std::move(graph)),
          algorithm_(std::move(algorithm)), solution_(solution)
    {}

    void setTimeout(std::chrono::milliseconds t) { timeout_ = t; }
    void setAlgorithm(std::string a) { algorithm_ = std::move(a); }

    const std::string &graph() const { return graph_; }

    /** Blocking query with the session defaults. */
    Response query();

    /** Blocking query for another algorithm. */
    Response query(const std::string &algorithm);

    /** Blocking update enqueue. */
    Response update(std::vector<gas::EdgeInsertion> edges);

    /** Blocking single-edge update. */
    Response update(VertexId src, VertexId dst, Value weight = 1.0);

    /** Blocking deletion enqueue. */
    Response erase(std::vector<gas::EdgeDeletion> edges);

    /** Blocking single-edge deletion (any weight by default). */
    Response erase(VertexId src, VertexId dst,
                   Value weight = gas::EdgeDeletion::kAnyWeight);

    /** Blocking flush of the session's graph. */
    Response flushUpdates();

  private:
    Deadline deadline() const;

    GraphService &svc_;
    std::string graph_;
    std::string algorithm_;
    Solution solution_;
    std::optional<std::chrono::milliseconds> timeout_;
};

} // namespace depgraph::service

#endif // DEPGRAPH_SERVICE_SERVICE_HH
