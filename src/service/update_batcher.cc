#include "service/update_batcher.hh"

#include <algorithm>
#include <unordered_set>

#include "common/failpoint.hh"
#include "common/logging.hh"
#include "durability/manager.hh"
#include "gas/algorithms.hh"
#include "obs/span.hh"

namespace depgraph::service
{

namespace
{

/** True when the deletion would claim this pending insertion. */
bool
cancels(const gas::EdgeDeletion &d, const gas::EdgeInsertion &i)
{
    return d.src == i.src && d.dst == i.dst
        && (d.matchesAnyWeight() || d.weight == i.weight);
}

/**
 * Drop every carried hub dependency whose core-path touches a dirty
 * vertex. Per-edge functions depend only on the source's out-edge set,
 * so a path avoiding every dirty source composes to the identical
 * function on the updated graph -- those entries stay exact and can be
 * seeded; the rest must be re-learned (min/max shortcuts are not
 * self-correcting, so a stale entry could replay retracted mass).
 */
runtime::HubArtifacts
surviving(const runtime::HubArtifacts &arts,
          const std::unordered_set<VertexId> &dirty,
          std::uint64_t *invalidated)
{
    runtime::HubArtifacts out;
    for (const auto &d : arts.deps) {
        const bool touched = std::any_of(
            d.vertices.begin(), d.vertices.end(),
            [&](VertexId v) { return dirty.count(v) != 0; });
        if (touched)
            ++*invalidated;
        else
            out.deps.push_back(d);
    }
    return out;
}

} // namespace

UpdateBatcher::UpdateBatcher(GraphStore &store, DepGraphSystem &system,
                             Stats &stats, Options opt)
    : store_(store), system_(system), stats_(stats), opt_(opt)
{}

std::shared_ptr<UpdateBatcher::PerGraph>
UpdateBatcher::state(const std::string &graph)
{
    std::lock_guard lk(mu_);
    auto &slot = map_[graph];
    if (!slot)
        slot = std::make_shared<PerGraph>();
    return slot;
}

std::size_t
UpdateBatcher::enqueue(const std::string &graph,
                       std::vector<gas::EdgeInsertion> edges,
                       bool *should_flush)
{
    return enqueue(graph, std::move(edges), {}, should_flush);
}

std::size_t
UpdateBatcher::enqueue(const std::string &graph,
                       std::vector<gas::EdgeInsertion> ins,
                       std::vector<gas::EdgeDeletion> dels,
                       bool *should_flush)
{
    auto pg = state(graph);
    std::lock_guard lk(mu_);
    pg->ins.insert(pg->ins.end(), ins.begin(), ins.end());
    std::uint64_t cancelled = 0;
    for (auto &d : dels) {
        // Cancel against the most recent matching pending insertion:
        // the graph then never sees either, which is exactly the
        // no-op an insert-then-delete of the same edge means.
        const auto hit = std::find_if(
            pg->ins.rbegin(), pg->ins.rend(),
            [&](const gas::EdgeInsertion &i) { return cancels(d, i); });
        if (hit != pg->ins.rend()) {
            pg->ins.erase(std::next(hit).base());
            ++cancelled;
        } else {
            pg->dels.push_back(d);
        }
    }
    if (cancelled)
        stats_.updateEdgesCancelled.fetch_add(
            cancelled, std::memory_order_relaxed);

    const std::size_t pending = pg->ins.size() + pg->dels.size();
    bool crossed = false;
    if (pending >= opt_.maxPendingEdges && !pg->flushRequested) {
        // Latch so only one enqueuer schedules the flush; the flush
        // itself re-arms the latch when it drains the batch.
        pg->flushRequested = true;
        crossed = true;
    }
    if (should_flush)
        *should_flush = crossed;
    return pending;
}

std::uint64_t
UpdateBatcher::flush(const std::string &graph)
{
    auto pg = state(graph);
    // Serialize applies per graph; enqueues keep landing in the next
    // batch while this one reconverges.
    std::lock_guard apply(pg->applyMu);

    std::vector<gas::EdgeInsertion> ins;
    std::vector<gas::EdgeDeletion> dels;
    {
        std::lock_guard lk(mu_);
        ins.swap(pg->ins);
        dels.swap(pg->dels);
        pg->flushRequested = false;
    }
    if (ins.empty() && dels.empty())
        return 0; // e.g. every insertion cancelled against a deletion

    // Group commit: everything journaled for this batch becomes
    // durable (under --wal_sync=batch) before the apply publishes it,
    // and the Marker record pins this flush boundary so replay batches
    // the same churn the same way.
    if (dur_)
        dur_->groupCommit(graph);
    // Crash/delay site for the chaos harness: records are durable,
    // the publish has not happened yet. (The `error` action is a
    // no-op here -- there is nothing to fail without dropping acked
    // churn, which would be the one unforgivable bug.)
    (void)dg_failpoint("batcher.flush");

    obs::span::Scoped flush_span("service", "batch_flush", "edges",
                                 ins.size() + dels.size());

    // Every vertex whose out-edge set this batch changes. Hub deps
    // whose path touches one of these are stale; everything else
    // composes to the identical function on the updated graph.
    std::unordered_set<VertexId> dirty;
    for (const auto &e : ins)
        dirty.insert(e.src);
    for (const auto &d : dels)
        dirty.insert(d.src);

    // The only competing publisher is a concurrent put() (re-load);
    // on conflict the batch simply applies to the fresher graph.
    for (int attempt = 0; attempt < 3; ++attempt) {
        const auto base = store_.get(graph);
        if (!base) {
            dg_warn("dropping ", ins.size() + dels.size(),
                    " queued churn edges for unknown graph '", graph,
                    "'");
            return 0;
        }
        auto updated = gas::applyChurn(*base->graph, ins, dels);

        std::map<std::string, StateVectorPtr> fixpoints;
        std::map<std::string, HubArtifactsPtr> hub_artifacts;
        std::uint64_t invalidated = 0, carried = 0;
        for (const auto &[algo, states] : base->fixpoints) {
            const auto alg = gas::makeAlgorithm(algo);
            auto resumed = *states;
            const auto deltas = gas::edgeChurnDeltas(
                *base->graph, updated, ins, dels, resumed, *alg);
            gas::ResumeAlgorithm resume(*alg, std::move(resumed),
                                        deltas);

            // Carry the surviving hub dependencies into the run and
            // collect what it learned for the next version.
            runtime::HubArtifacts seed;
            const auto art_it = base->hubArtifacts.find(algo);
            if (art_it != base->hubArtifacts.end() && art_it->second)
                seed = surviving(*art_it->second, dirty, &invalidated);
            carried += seed.deps.size();
            auto learned = std::make_shared<runtime::HubArtifacts>();

            auto r = system_.run(updated, resume, opt_.solution,
                                 seed.empty() ? nullptr : &seed,
                                 learned.get());
            if (!r.metrics.converged)
                dg_warn("incremental ", algo, " on '", graph,
                        "' hit the round limit before converging");
            stats_.incrementalPasses.fetch_add(
                1, std::memory_order_relaxed);
            fixpoints[algo] = std::make_shared<std::vector<Value>>(
                std::move(r.states));
            if (!learned->empty())
                hub_artifacts[algo] = std::move(learned);
        }

        const auto snap = store_.publish(base, std::move(updated),
                                         std::move(fixpoints),
                                         std::move(hub_artifacts));
        if (snap) {
            stats_.batchesApplied.fetch_add(1,
                                            std::memory_order_relaxed);
            stats_.batchEdgesApplied.fetch_add(
                ins.size() + dels.size(), std::memory_order_relaxed);
            stats_.hubDepsCarried.fetch_add(carried,
                                            std::memory_order_relaxed);
            stats_.hubDepsInvalidated.fetch_add(
                invalidated, std::memory_order_relaxed);
            if (dur_)
                dur_->noteApplied(graph);
            return snap->version;
        }
    }
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    dg_warn("giving up on a ", ins.size() + dels.size(),
            "-edge churn batch for '", graph,
            "' after repeated publish conflicts");
    return 0;
}

std::size_t
UpdateBatcher::flushAll()
{
    std::vector<std::string> graphs;
    {
        std::lock_guard lk(mu_);
        for (const auto &[name, pg] : map_)
            if (!pg->ins.empty() || !pg->dels.empty())
                graphs.push_back(name);
    }
    std::size_t applied = 0;
    for (const auto &name : graphs)
        if (flush(name) != 0)
            ++applied;
    return applied;
}

std::size_t
UpdateBatcher::pendingEdges(const std::string &graph) const
{
    std::lock_guard lk(mu_);
    const auto it = map_.find(graph);
    if (it == map_.end())
        return 0;
    return it->second->ins.size() + it->second->dels.size();
}

} // namespace depgraph::service
