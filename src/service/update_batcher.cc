#include "service/update_batcher.hh"

#include "common/logging.hh"
#include "gas/algorithms.hh"

namespace depgraph::service
{

UpdateBatcher::UpdateBatcher(GraphStore &store, DepGraphSystem &system,
                             Stats &stats, Options opt)
    : store_(store), system_(system), stats_(stats), opt_(opt)
{}

std::shared_ptr<UpdateBatcher::PerGraph>
UpdateBatcher::state(const std::string &graph)
{
    std::lock_guard lk(mu_);
    auto &slot = map_[graph];
    if (!slot)
        slot = std::make_shared<PerGraph>();
    return slot;
}

std::size_t
UpdateBatcher::enqueue(const std::string &graph,
                       std::vector<gas::EdgeInsertion> edges,
                       bool *should_flush)
{
    auto pg = state(graph);
    std::lock_guard lk(mu_);
    pg->pending.insert(pg->pending.end(), edges.begin(), edges.end());
    bool crossed = false;
    if (pg->pending.size() >= opt_.maxPendingEdges
        && !pg->flushRequested) {
        // Latch so only one enqueuer schedules the flush; the flush
        // itself re-arms the latch when it drains the batch.
        pg->flushRequested = true;
        crossed = true;
    }
    if (should_flush)
        *should_flush = crossed;
    return pg->pending.size();
}

std::uint64_t
UpdateBatcher::flush(const std::string &graph)
{
    auto pg = state(graph);
    // Serialize applies per graph; enqueues keep landing in the next
    // batch while this one reconverges.
    std::lock_guard apply(pg->applyMu);

    std::vector<gas::EdgeInsertion> batch;
    {
        std::lock_guard lk(mu_);
        batch.swap(pg->pending);
        pg->flushRequested = false;
    }
    if (batch.empty())
        return 0;

    // The only competing publisher is a concurrent put() (re-load);
    // on conflict the batch simply applies to the fresher graph.
    for (int attempt = 0; attempt < 3; ++attempt) {
        const auto base = store_.get(graph);
        if (!base) {
            dg_warn("dropping ", batch.size(),
                    " queued edges for unknown graph '", graph, "'");
            return 0;
        }
        auto updated = gas::applyInsertions(*base->graph, batch);

        std::map<std::string, StateVectorPtr> fixpoints;
        for (const auto &[algo, states] : base->fixpoints) {
            const auto alg = gas::makeAlgorithm(algo);
            const auto deltas = gas::edgeInsertionDeltas(
                *base->graph, updated, batch, *states, *alg);
            auto resumed = *states;
            resumed.resize(updated.numVertices(),
                           alg->initState(updated, 0));
            gas::ResumeAlgorithm resume(*alg, std::move(resumed),
                                        deltas);
            auto r = system_.run(updated, resume, opt_.solution);
            if (!r.metrics.converged)
                dg_warn("incremental ", algo, " on '", graph,
                        "' hit the round limit before converging");
            stats_.incrementalPasses.fetch_add(
                1, std::memory_order_relaxed);
            fixpoints[algo] = std::make_shared<std::vector<Value>>(
                std::move(r.states));
        }

        const auto snap = store_.publish(base, std::move(updated),
                                         std::move(fixpoints));
        if (snap) {
            stats_.batchesApplied.fetch_add(1,
                                            std::memory_order_relaxed);
            stats_.batchEdgesApplied.fetch_add(
                batch.size(), std::memory_order_relaxed);
            return snap->version;
        }
    }
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    dg_warn("giving up on a ", batch.size(), "-edge batch for '",
            graph, "' after repeated publish conflicts");
    return 0;
}

std::size_t
UpdateBatcher::flushAll()
{
    std::vector<std::string> graphs;
    {
        std::lock_guard lk(mu_);
        for (const auto &[name, pg] : map_)
            if (!pg->pending.empty())
                graphs.push_back(name);
    }
    std::size_t applied = 0;
    for (const auto &name : graphs)
        if (flush(name) != 0)
            ++applied;
    return applied;
}

std::size_t
UpdateBatcher::pendingEdges(const std::string &graph) const
{
    std::lock_guard lk(mu_);
    const auto it = map_.find(graph);
    return it == map_.end() ? 0 : it->second->pending.size();
}

} // namespace depgraph::service
