#include "service/protocol.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

#include "common/failpoint.hh"
#include "graph/generators.hh"
#include "obs/metrics.hh"
#include "obs/slowlog.hh"
#include "obs/span.hh"

namespace depgraph::service
{

namespace
{

std::vector<std::string>
tokenize(const std::string &line)
{
    std::istringstream is(line);
    std::vector<std::string> toks;
    std::string t;
    while (is >> t)
        toks.push_back(t);
    return toks;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    try {
        std::size_t pos = 0;
        out = std::stoull(s, &pos);
        return pos == s.size();
    } catch (...) {
        return false;
    }
}

bool
parseDouble(const std::string &s, double &out)
{
    try {
        std::size_t pos = 0;
        out = std::stod(s, &pos);
        return pos == s.size();
    } catch (...) {
        return false;
    }
}

CommandResult
err(int code, const std::string &reason)
{
    return protocolError(code, reason);
}

/** Bad-argument / malformed-frame shorthand. */
CommandResult
err(const std::string &reason)
{
    return protocolError(400, reason);
}

const char *kHelp =
    "ok verbs: load query update del flush edge checkpoint failpoint "
    "graphs stats metrics drain trace slowlog help quit\n"
    "commands:\n"
    "  load <name> powerlaw <n> [alpha] [degree] [seed]\n"
    "  load <name> grid <rows> <cols>\n"
    "  load <name> path <n> | ring <n>\n"
    "  load <name> chain <communities> <community_size>\n"
    "  query <name> [algo] [solution] [top]\n"
    "  update <name> <src> <dst> [weight]\n"
    "  del <name> <src> <dst> [weight]   (no weight = any weight)\n"
    "  flush <name>\n"
    "  edge <name> <src> <dst>   (count matching edges in snapshot)\n"
    "  checkpoint <name>   (snapshot + truncate WAL; needs --data_dir)\n"
    "  failpoint <name> <spec> | failpoint list | failpoint clear\n"
    "  graphs | stats | metrics | drain | help | quit\n"
    "  trace on | off | dump <path>   (Chrome trace_event JSON)\n"
    "  slowlog [clear]   (slow-query log as JSON lines)\n"
    "  any command may be prefixed with trace=<16-hex-id> to trace\n"
    "  that request under a client-chosen id (force-sampled)\n"
    "errors: 'err <code> <msg>' (400 bad request, 404 unknown graph,\n"
    "  408 deadline, 413 line too long, 429 rejected/overloaded "
    "with retry-after=<ms>, 500 internal, 503 shutting down)";

/** FNV-1a over the state vector's bytes: a cheap cross-process
 * fingerprint. Two servers print the same hash iff their converged
 * states are BITWISE equal -- the recovery differential in one hex
 * token. */
std::uint64_t
stateHash(const std::vector<Value> &states)
{
    std::uint64_t h = 1469598103934665603ull;
    const auto *p = reinterpret_cast<const unsigned char *>(
        states.data());
    for (std::size_t i = 0; i < states.size() * sizeof(Value); ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

CommandResult
doLoad(GraphService &svc, const std::vector<std::string> &t)
{
    if (t.size() < 4)
        return err("usage: load <name> <gen> <args...>");
    const auto &name = t[1];
    const auto &gen = t[2];
    std::uint64_t a = 0, b = 0;
    if (!parseU64(t[3], a))
        return err("bad number '" + t[3] + "'");

    graph::Graph g;
    if (gen == "powerlaw") {
        double alpha = 2.0, degree = 8.0;
        graph::GenOptions gopt;
        if (t.size() > 4 && !parseDouble(t[4], alpha))
            return err("bad alpha '" + t[4] + "'");
        if (t.size() > 5 && !parseDouble(t[5], degree))
            return err("bad degree '" + t[5] + "'");
        if (t.size() > 6 && !parseU64(t[6], gopt.seed))
            return err("bad seed '" + t[6] + "'");
        g = graph::powerLaw(static_cast<VertexId>(a), alpha, degree,
                            gopt);
    } else if (gen == "grid") {
        if (t.size() < 5 || !parseU64(t[4], b))
            return err("usage: load <name> grid <rows> <cols>");
        g = graph::grid(static_cast<VertexId>(a),
                        static_cast<VertexId>(b));
    } else if (gen == "path") {
        g = graph::path(static_cast<VertexId>(a));
    } else if (gen == "ring") {
        g = graph::ring(static_cast<VertexId>(a));
    } else if (gen == "chain") {
        if (t.size() < 5 || !parseU64(t[4], b))
            return err("usage: load <name> chain <communities> <size>");
        g = graph::communityChain(static_cast<VertexId>(a),
                                  static_cast<VertexId>(b), 2.0, 6.0);
    } else {
        return err("unknown generator '" + gen + "'");
    }

    std::ostringstream os;
    os << "ok v=" << svc.loadGraph(name, std::move(g)) << " graph="
       << name;
    return {os.str()};
}

CommandResult
doQuery(GraphService &svc, const std::vector<std::string> &t)
{
    if (t.size() < 2)
        return err("usage: query <name> [algo] [solution] [top]");
    QuerySpec spec;
    spec.graph = t[1];
    if (t.size() > 2)
        spec.algorithm = t[2];
    if (t.size() > 3) {
        // Accept any paper solution name; bad names must not kill the
        // server, so scan instead of calling solutionFromName().
        // Parallel is not in allSolutions() (wall-clock engine, kept
        // out of the paper sweeps) but is a valid serving target.
        bool found = t[3] == solutionName(Solution::Parallel);
        if (found)
            spec.solution = Solution::Parallel;
        for (auto s : allSolutions()) {
            if (t[3] == solutionName(s)) {
                spec.solution = s;
                found = true;
                break;
            }
        }
        if (!found)
            return err("unknown solution '" + t[3] + "'");
    }
    std::uint64_t top = 3;
    if (t.size() > 4 && !parseU64(t[4], top))
        return err("bad top '" + t[4] + "'");

    const auto r = svc.query(spec).get();
    if (!r.ok())
        return err(errCodeFor(r.status),
                   std::string(statusName(r.status)) + " " + r.error);

    std::ostringstream os;
    os << "ok v=" << r.version << " algo=" << spec.algorithm
       << (r.cacheHit ? " cache=hit" : " cache=miss");
    if (!r.cacheHit)
        os << " updates=" << r.metrics.updates << " makespan="
           << r.metrics.makespan;
    if (r.states) {
        os << " hash=" << std::hex << std::setw(16)
           << std::setfill('0') << stateHash(*r.states) << std::dec
           << std::setfill(' ');
    }
    if (r.states && top > 0) {
        std::vector<VertexId> order(r.states->size());
        for (VertexId v = 0; v < order.size(); ++v)
            order[v] = v;
        const auto n = std::min<std::size_t>(top, order.size());
        std::partial_sort(order.begin(),
                          order.begin()
                              + static_cast<std::ptrdiff_t>(n),
                          order.end(), [&](VertexId x, VertexId y) {
                              return (*r.states)[x] > (*r.states)[y];
                          });
        os << " top:";
        for (std::size_t i = 0; i < n; ++i)
            os << " v" << order[i] << "=" << (*r.states)[order[i]];
    }
    return {os.str()};
}

CommandResult
doUpdate(GraphService &svc, const std::vector<std::string> &t)
{
    if (t.size() < 4)
        return err("usage: update <name> <src> <dst> [weight]");
    std::uint64_t src = 0, dst = 0;
    double w = 1.0;
    if (!parseU64(t[2], src) || !parseU64(t[3], dst))
        return err("bad vertex id");
    if (t.size() > 4 && !parseDouble(t[4], w))
        return err("bad weight '" + t[4] + "'");

    const auto r = svc
                       .streamUpdates(t[1],
                                      {{static_cast<VertexId>(src),
                                        static_cast<VertexId>(dst),
                                        w}})
                       .get();
    if (!r.ok())
        return err(errCodeFor(r.status),
                   std::string(statusName(r.status)) + " " + r.error);
    std::ostringstream os;
    os << "ok enqueued=" << r.enqueuedEdges << " pending="
       << r.pendingEdges;
    if (r.version)
        os << " applied v=" << r.version;
    return {os.str()};
}

CommandResult
doDelete(GraphService &svc, const std::vector<std::string> &t)
{
    if (t.size() < 4)
        return err("usage: del <name> <src> <dst> [weight]");
    std::uint64_t src = 0, dst = 0;
    double w = gas::EdgeDeletion::kAnyWeight; // omitted = any weight
    if (!parseU64(t[2], src) || !parseU64(t[3], dst))
        return err("bad vertex id");
    if (t.size() > 4) {
        if (!parseDouble(t[4], w))
            return err("bad weight '" + t[4] + "'");
        if (w < 0.0)
            return err("deletion weight must be >= 0 (omit for any)");
    }

    const auto r = svc
                       .streamDeletions(t[1],
                                        {{static_cast<VertexId>(src),
                                          static_cast<VertexId>(dst),
                                          w}})
                       .get();
    if (!r.ok())
        return err(errCodeFor(r.status),
                   std::string(statusName(r.status)) + " " + r.error);
    std::ostringstream os;
    os << "ok enqueued=" << r.enqueuedEdges << " pending="
       << r.pendingEdges;
    if (r.version)
        os << " applied v=" << r.version;
    return {os.str()};
}

/**
 * edge <name> <src> <dst>: occurrences of src->dst in the CURRENT
 * snapshot. The chaos harness's survival check: an acked unique
 * insertion must count >= 1 after recovery, an unacked one at most
 * what was acked (never double-applied).
 */
CommandResult
doEdge(GraphService &svc, const std::vector<std::string> &t)
{
    if (t.size() < 4)
        return err("usage: edge <name> <src> <dst>");
    std::uint64_t src = 0, dst = 0;
    if (!parseU64(t[2], src) || !parseU64(t[3], dst))
        return err("bad vertex id");
    const auto snap = svc.store().get(t[1]);
    if (!snap)
        return err(404, "no graph named '" + t[1] + "'");
    std::uint64_t count = 0;
    if (src < snap->graph->numVertices()) {
        for (const auto v :
             snap->graph->neighbors(static_cast<VertexId>(src)))
            if (v == static_cast<VertexId>(dst))
                ++count;
    }
    std::ostringstream os;
    os << "ok count=" << count << " v=" << snap->version
       << " pending=" << svc.batcher().pendingEdges(t[1]);
    return {os.str()};
}

CommandResult
doFailpoint(const std::vector<std::string> &t)
{
    if (t.size() >= 2 && t[1] == "list") {
        std::ostringstream os;
        os << "ok armed=" << failpoint::list().size();
        for (const auto &line : failpoint::list())
            os << " " << line;
        return {os.str()};
    }
    if (t.size() >= 2 && t[1] == "clear") {
        failpoint::clearAll();
        return {"ok cleared"};
    }
    if (t.size() < 3)
        return err("usage: failpoint <name> <spec> | list | clear");
    if (!failpoint::arm(t[1], t[2]))
        return err("bad failpoint spec '" + t[2] + "'");
    if (t[2] == "off")
        return {"ok disarmed " + t[1]};
    return {"ok armed " + t[1] + "=" + t[2]};
}

} // namespace

CommandResult
protocolError(int code, const std::string &msg)
{
    return {"err " + std::to_string(code) + " " + msg};
}

int
errCodeFor(Status s)
{
    switch (s) {
      case Status::Ok:
        return 200;
      case Status::NotFound:
        return 404;
      case Status::BadRequest:
        return 400;
      case Status::Rejected:
        return 429;
      case Status::DeadlineExceeded:
        return 408;
      case Status::ShuttingDown:
        return 503;
      case Status::Internal:
        return 500;
    }
    return 500;
}

CommandResult
runCommandLine(GraphService &svc, const std::string &line)
{
    if (line.size() > kMaxLineBytes)
        return err(413,
                   "line too long (max "
                       + std::to_string(kMaxLineBytes) + " bytes)");
    const auto t = tokenize(line);
    if (t.empty() || t[0][0] == '#')
        return {""};
    const auto &cmd = t[0];

    if (cmd == "quit" || cmd == "exit")
        return {"bye", true};
    if (cmd == "help")
        return {kHelp};
    if (cmd == "load")
        return doLoad(svc, t);
    if (cmd == "query")
        return doQuery(svc, t);
    if (cmd == "update")
        return doUpdate(svc, t);
    if (cmd == "del" || cmd == "delete")
        return doDelete(svc, t);
    if (cmd == "flush") {
        if (t.size() < 2)
            return err("usage: flush <name>");
        const auto r = svc.flush(t[1]).get();
        std::ostringstream os;
        if (r.version)
            os << "ok applied v=" << r.version;
        else
            os << "ok nothing-pending";
        return {os.str()};
    }
    if (cmd == "edge")
        return doEdge(svc, t);
    if (cmd == "checkpoint") {
        if (t.size() < 2)
            return err("usage: checkpoint <name>");
        std::string reason;
        if (!svc.checkpoint(t[1], &reason))
            return err(svc.store().get(t[1]) ? 500 : 404, reason);
        return {"ok checkpointed " + t[1]};
    }
    if (cmd == "failpoint")
        return doFailpoint(t);
    if (cmd == "graphs") {
        std::ostringstream os;
        os << "ok";
        for (const auto &name : svc.store().names()) {
            const auto snap = svc.store().get(name);
            os << " " << name << "@v" << (snap ? snap->version : 0);
        }
        return {os.str()};
    }
    if (cmd == "stats")
        return {svc.stats().render()};
    if (cmd == "metrics") {
        // Mirror the live service stats first so the exposition is
        // current even when no periodic publisher is running.
        svc.publishStats();
        return {obs::registry().renderPrometheus()};
    }
    if (cmd == "trace") {
        if (t.size() < 2)
            return err("usage: trace on | off | dump <path>");
        if (t[1] == "on") {
            obs::span::setEnabled(true);
            return {"ok tracing"};
        }
        if (t[1] == "off") {
            obs::span::setEnabled(false);
            return {"ok stopped"};
        }
        if (t[1] == "dump") {
            if (t.size() < 3)
                return err("usage: trace dump <path>");
            std::ofstream os(t[2]);
            if (!os)
                return err(500, "cannot open '" + t[2] + "'");
            os << obs::span::dumpChromeJson();
            std::ostringstream msg;
            msg << "ok events=" << obs::span::recordedEvents()
                << " dropped=" << obs::span::droppedEvents() << " -> "
                << t[2];
            return {msg.str()};
        }
        return err("usage: trace on | off | dump <path>");
    }
    if (cmd == "slowlog") {
        if (t.size() > 1 && t[1] == "clear") {
            obs::slowLog().clear();
            return {"ok cleared"};
        }
        auto &log = obs::slowLog();
        std::ostringstream os;
        os << "ok entries=" << log.size() << " logged="
           << log.totalAppended();
        auto lines = log.renderJsonLines();
        if (!lines.empty()) {
            lines.pop_back(); // reply carries no trailing newline
            os << '\n' << lines;
        }
        return {os.str()};
    }
    if (cmd == "drain") {
        svc.drain();
        return {"ok drained"};
    }
    return err("unknown command '" + cmd + "' (try help)");
}

bool
splitTraceToken(const std::string &line, std::uint64_t &trace_id,
                std::string &rest)
{
    trace_id = 0;
    std::size_t i = 0;
    while (i < line.size() && std::isspace(
               static_cast<unsigned char>(line[i])))
        ++i;
    static constexpr std::string_view kPrefix = "trace=";
    if (line.compare(i, kPrefix.size(), kPrefix) != 0)
        return false;
    const std::size_t id_begin = i + kPrefix.size();
    std::size_t id_end = id_begin;
    while (id_end < line.size()
           && !std::isspace(static_cast<unsigned char>(line[id_end])))
        ++id_end;
    std::uint64_t id = 0;
    if (obs::span::parseTraceId(
            std::string_view(line).substr(id_begin, id_end - id_begin),
            id))
        trace_id = id;
    std::size_t rest_begin = id_end;
    while (rest_begin < line.size()
           && std::isspace(
               static_cast<unsigned char>(line[rest_begin])))
        ++rest_begin;
    rest = line.substr(rest_begin);
    return true;
}

namespace
{

/** Span names must be literals (the recorder keeps the pointer), so
 * map the request verb onto a static vocabulary. */
const char *
verbLiteral(const std::string &line)
{
    std::size_t b = 0;
    while (b < line.size()
           && std::isspace(static_cast<unsigned char>(line[b])))
        ++b;
    std::size_t e = b;
    while (e < line.size()
           && !std::isspace(static_cast<unsigned char>(line[e])))
        ++e;
    const std::string_view verb(line.data() + b, e - b);
    static constexpr const char *kVerbs[] = {
        "load",  "query",      "update",    "del",     "delete",
        "flush", "edge",       "checkpoint", "failpoint", "graphs",
        "stats", "metrics",    "trace",     "slowlog", "drain",
        "help",  "quit",       "exit",
    };
    for (const char *v : kVerbs)
        if (verb == v)
            return v;
    return "other";
}

/** Publish one finished request into histograms/counters and, when
 * slow, the slow-query log. */
void
publishRequestSummary(const obs::span::RequestSummary &summary,
                      const char *verb, const std::string &line)
{
    auto &reg = obs::registry();
    reg.counter("dg_requests_traced_total",
                "Requests that opened a per-request trace scratch")
        .inc();
    if (summary.committed)
        reg.counter("dg_traces_committed_total",
                    "Request traces committed to the span ring "
                    "(head-sampled or slow-promoted)")
            .inc();
    for (const auto &[name, value] : summary.stages) {
        const std::string_view sv(name);
        if (sv.size() > 3 && sv.substr(sv.size() - 3) == "_us") {
            reg.histogram(
                   "dg_request_stage_us",
                   "Per-request stage latency in microseconds",
                   {{"stage",
                     std::string(sv.substr(0, sv.size() - 3))}})
                .record(value);
        } else {
            reg.histogram("dg_request_stage_value",
                          "Per-request unitless stage attribution "
                          "(rounds, edges, hits, ...)",
                          {{"stage", std::string(sv)}})
                .record(value);
        }
    }
    if (!summary.slow)
        return;
    reg.counter("dg_slow_requests_total",
                "Requests that exceeded the slow threshold")
        .inc();
    obs::SlowEntry entry;
    entry.unixMs = (obs::span::epochUnixMicros()
                    + obs::span::nowMicros())
        / 1000;
    entry.traceId = summary.traceId;
    entry.totalUs = summary.totalMicros;
    entry.traceCommitted = summary.committed;
    entry.verb = verb;
    entry.request = line.substr(0, 200);
    entry.stages.reserve(summary.stages.size());
    for (const auto &[name, value] : summary.stages)
        entry.stages.emplace_back(name, value);
    obs::slowLog().append(std::move(entry));
}

} // namespace

CommandResult
runTracedCommandLine(GraphService &svc, const std::string &line)
{
    std::uint64_t trace_id = 0;
    std::string stripped;
    const bool had_token = splitTraceToken(line, trace_id, stripped);
    if (had_token && trace_id == 0)
        return protocolError(400, "bad trace id (want hex64)");
    const std::string &cmd = had_token ? stripped : line;

    auto req = obs::span::beginRequest(trace_id);
    if (!req)
        return runCommandLine(svc, cmd);

    const char *verb = verbLiteral(cmd);
    obs::span::RequestScope bind(req);
    CommandResult result;
    {
        obs::span::Scoped span("request", verb);
        result = runCommandLine(svc, cmd);
    }
    const auto summary = obs::span::finishRequest(req);
    if (summary.traced)
        publishRequestSummary(summary, verb, cmd);
    return result;
}

std::size_t
serveStream(GraphService &svc, std::istream &in, std::ostream &out,
            bool echo)
{
    std::size_t executed = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (echo)
            out << "> " << line << "\n";
        const auto r = runTracedCommandLine(svc, line);
        if (!r.output.empty())
            out << r.output << "\n";
        out.flush();
        ++executed;
        if (r.quit)
            break;
    }
    return executed;
}

} // namespace depgraph::service
