/**
 * @file
 * NUMA topology probing and placement helpers for the native parallel
 * engine.
 *
 * Topology comes from `/sys/devices/system/node/node<K>/cpulist`; a
 * host without that tree (non-Linux, restricted container, genuinely
 * single-socket) degrades to one node holding every hardware thread,
 * so the engine behaves identically on CI runners and the dev box.
 * Placement has three cooperating pieces:
 *
 *  - nodeOfWorker(): contiguous worker->node assignment, so adjacent
 *    vertex-range partitions (which exchange the most shadow traffic)
 *    share a node;
 *  - ScopedAffinity: bind the calling thread to a node's cpu set for
 *    the duration of a run and restore the previous mask on exit (the
 *    parallel engine runs worker 0 on the caller's thread -- often a
 *    service-pool thread that outlives the run);
 *  - FirstTouchArray: cache-line-aligned storage whose elements are
 *    constructed by the owning worker AFTER binding, so the kernel's
 *    first-touch policy places each partition's state/delta pages on
 *    the worker's own node.
 */

#ifndef DEPGRAPH_RUNTIME_NUMA_HH
#define DEPGRAPH_RUNTIME_NUMA_HH

#include <cstddef>
#include <new>
#include <string>
#include <type_traits>
#include <vector>

namespace depgraph::runtime
{

struct NumaNode
{
    unsigned id = 0;
    std::vector<unsigned> cpus;
};

struct NumaTopology
{
    std::vector<NumaNode> nodes;

    unsigned
    numNodes() const
    {
        return static_cast<unsigned>(nodes.size());
    }

    bool multiNode() const { return nodes.size() > 1; }
};

/** Parse a sysfs cpulist ("0-3,8,10-11") into cpu ids, ascending.
 * Malformed chunks are skipped; an unparsable string yields empty. */
std::vector<unsigned> parseCpuList(const std::string &list);

/** Probe `<root>/node<K>/cpulist` for K = 0, 1, ... (default root is
 * /sys/devices/system/node). Falls back to a single node covering
 * hardware_concurrency() cpus when the tree is absent or empty. */
NumaTopology probeNumaTopology(
    const std::string &root = "/sys/devices/system/node");

/** Node of worker w out of T when K nodes exist: contiguous blocks
 * (workers 0..T/K-1 on node 0, ...), matching the contiguous
 * vertex-range partitioning so neighbour partitions co-locate. */
inline unsigned
nodeOfWorker(unsigned w, unsigned T, unsigned K)
{
    if (T == 0 || K == 0)
        return 0;
    return static_cast<unsigned>(
        (static_cast<unsigned long long>(w) * K) / T);
}

/** Bind the calling thread to a cpu set for this scope; restores the
 * previous mask on destruction. Binding failures (restricted sandbox,
 * empty cpu list, non-Linux host) are silently ignored -- placement is
 * an optimization, never a correctness requirement. */
class ScopedAffinity
{
  public:
    explicit ScopedAffinity(const std::vector<unsigned> &cpus);
    ~ScopedAffinity();

    ScopedAffinity(const ScopedAffinity &) = delete;
    ScopedAffinity &operator=(const ScopedAffinity &) = delete;

    bool bound() const { return bound_; }

  private:
    bool bound_ = false;
#ifdef __linux__
    /* Opaque storage for the saved cpu_set_t (kept out of the header
     * so <sched.h> does not leak into every engine include). */
    alignas(8) unsigned char saved_[128];
#endif
};

/**
 * Cache-line-aligned array whose elements are constructed lazily via
 * constructRange() -- the parallel engine calls it from each worker
 * for the worker's own partition, after the worker bound itself to
 * its node, so pages fault in on the node that will service them.
 * T must be trivially destructible (the engine stores atomic Values);
 * destruction is a plain deallocation.
 */
template <class T>
class FirstTouchArray
{
    static_assert(std::is_trivially_destructible_v<T>,
                  "FirstTouchArray skips element destructors");

  public:
    explicit FirstTouchArray(std::size_t n)
        : n_(n),
          raw_(n ? ::operator new(n * sizeof(T), std::align_val_t{64})
                 : nullptr)
    {}

    ~FirstTouchArray()
    {
        if (raw_)
            ::operator delete(raw_, std::align_val_t{64});
    }

    FirstTouchArray(const FirstTouchArray &) = delete;
    FirstTouchArray &operator=(const FirstTouchArray &) = delete;

    /** Construct elements [b, e) as T(init(i)). Ranges touched by
     * different threads must not overlap; together they must cover
     * [0, n) before any element is read. */
    template <class Fn>
    void
    constructRange(std::size_t b, std::size_t e, Fn &&init)
    {
        T *p = static_cast<T *>(raw_);
        for (std::size_t i = b; i < e; ++i)
            ::new (static_cast<void *>(p + i)) T(init(i));
    }

    T *data() { return std::launder(static_cast<T *>(raw_)); }
    T &operator[](std::size_t i) { return data()[i]; }
    std::size_t size() const { return n_; }

  private:
    std::size_t n_ = 0;
    void *raw_ = nullptr;
};

} // namespace depgraph::runtime

#endif // DEPGRAPH_RUNTIME_NUMA_HH
