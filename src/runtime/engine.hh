/**
 * @file
 * Engine interface: every execution strategy (software baselines,
 * competing accelerators, DepGraph-S, DepGraph-H) runs an algorithm on
 * a graph over the simulated machine and returns states + metrics.
 */

#ifndef DEPGRAPH_RUNTIME_ENGINE_HH
#define DEPGRAPH_RUNTIME_ENGINE_HH

#include <memory>
#include <string>
#include <vector>

#include "gas/model.hh"
#include "graph/hub.hh"
#include "runtime/metrics.hh"
#include "sim/machine.hh"

namespace depgraph::runtime
{

/**
 * One learned direct dependency, in engine-independent form: the
 * composite linear function a core-path delivers from its head to its
 * tail (paper Sec. III-B2). `vertices` is the full head..tail path so
 * a later run can (a) check the path still exists verbatim in its own
 * decomposition and (b) invalidate the entry when any vertex on it
 * changes its out-edge set -- every per-edge function depends only on
 * properties of the edge's source, so an untouched path composes to
 * the identical dependency.
 */
struct HubDependency
{
    VertexId head = kInvalidVertex;
    VertexId tail = kInvalidVertex;
    std::vector<VertexId> vertices; ///< path order, head..tail
    gas::LinearFunc func;
};

/**
 * The hub-index contents an engine run learned, portable across runs
 * of the SAME algorithm on successors of the same graph. The serving
 * layer caches these per snapshot and, after invalidating the entries
 * a churn batch touched, warm-starts the next incremental run -- DDMU
 * then serves shortcuts from round 0 instead of re-fitting, and a
 * retracted edge's mass can never replay through a stale entry.
 */
struct HubArtifacts
{
    std::vector<HubDependency> deps;

    bool empty() const { return deps.empty(); }
};

/** NUMA placement policy for the native parallel engine. `Auto`
 * probes /sys/devices/system/node and, on multi-node hosts, binds
 * workers to nodes (first-touch array placement + same-node-first
 * steal order); on single-node hosts it is behaviorally identical to
 * `Off` apart from workers first-touching their own partitions. */
enum class NumaMode
{
    Auto,
    Off,
};

/** Knobs shared by all engines; DepGraph-specific ones are ignored by
 * the software baselines. */
struct EngineOptions
{
    unsigned numCores = 64;      ///< cores to use (<= machine cores)
    unsigned maxRounds = 100000; ///< convergence safety limit
    unsigned chunkSize = 32;     ///< work-stealing chunk granularity
                                 ///< (initial value when adaptive)

    /** Carry the active list across rounds in the parallel engine
     * instead of rescanning the full vertex range at every barrier.
     * The rescan path is kept for differential testing and as the
     * dense-frontier fallback. */
    bool carryActiveList = true;

    /** Let the parallel engine retune chunk granularity per round
     * from the previous round's steal/idle counters (bounded,
     * deterministic function of those counters). */
    bool adaptiveChunking = true;

    /** NUMA placement for the parallel engine. */
    NumaMode numa = NumaMode::Auto;

    /* DepGraph knobs (paper defaults: lambda=0.5%, beta=0.001,
     * stack depth 10). */
    graph::HubParams hub;
    unsigned stackDepth = 10;
    unsigned fifoCapacity = 64;
    bool hubIndexEnabled = true;

    /** Host threads for the native parallel engine (0 = one per
     * hardware thread, capped at 16). Ignored by simulated engines. */
    unsigned hostThreads = 0;

    /* Hub-index warm start (both ignored by non-DepGraph engines).
     * hubSeed: pre-fit dependencies to install as Available entries
     * when their path survives verbatim in this run's decomposition.
     * hubExport: filled on completion with this run's A entries. The
     * pointed-to objects must outlive the run. */
    const HubArtifacts *hubSeed = nullptr;
    HubArtifacts *hubExport = nullptr;
};

class Engine
{
  public:
    virtual ~Engine() = default;

    virtual std::string name() const = 0;

    /**
     * Run alg on g over machine m to convergence. The machine's cache
     * contents and stats are reset at the start of the run so results
     * are order-independent.
     */
    virtual RunResult run(const graph::Graph &g, gas::Algorithm &alg,
                          sim::Machine &m) = 0;
};

using EnginePtr = std::unique_ptr<Engine>;

} // namespace depgraph::runtime

#endif // DEPGRAPH_RUNTIME_ENGINE_HH
