/**
 * @file
 * Engine interface: every execution strategy (software baselines,
 * competing accelerators, DepGraph-S, DepGraph-H) runs an algorithm on
 * a graph over the simulated machine and returns states + metrics.
 */

#ifndef DEPGRAPH_RUNTIME_ENGINE_HH
#define DEPGRAPH_RUNTIME_ENGINE_HH

#include <memory>
#include <string>

#include "gas/model.hh"
#include "graph/hub.hh"
#include "runtime/metrics.hh"
#include "sim/machine.hh"

namespace depgraph::runtime
{

/** Knobs shared by all engines; DepGraph-specific ones are ignored by
 * the software baselines. */
struct EngineOptions
{
    unsigned numCores = 64;      ///< cores to use (<= machine cores)
    unsigned maxRounds = 100000; ///< convergence safety limit
    unsigned chunkSize = 32;     ///< work-stealing chunk granularity

    /* DepGraph knobs (paper defaults: lambda=0.5%, beta=0.001,
     * stack depth 10). */
    graph::HubParams hub;
    unsigned stackDepth = 10;
    unsigned fifoCapacity = 64;
    bool hubIndexEnabled = true;
};

class Engine
{
  public:
    virtual ~Engine() = default;

    virtual std::string name() const = 0;

    /**
     * Run alg on g over machine m to convergence. The machine's cache
     * contents and stats are reset at the start of the run so results
     * are order-independent.
     */
    virtual RunResult run(const graph::Graph &g, gas::Algorithm &alg,
                          sim::Machine &m) = 0;
};

using EnginePtr = std::unique_ptr<Engine>;

} // namespace depgraph::runtime

#endif // DEPGRAPH_RUNTIME_ENGINE_HH
