/**
 * @file
 * Per-run metrics and the common result type all engines return.
 *
 * The definitions follow Sec. II of the paper:
 *  - an *update* is one application of Accum to a vertex state;
 *  - utilization U = compute cycles / (cores * makespan);
 *  - effective utilization r_e = u_s * U / u_d, where u_s is the update
 *    count of the 1-thread asynchronous DFS baseline and u_d the
 *    engine's own update count.
 */

#ifndef DEPGRAPH_RUNTIME_METRICS_HH
#define DEPGRAPH_RUNTIME_METRICS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/energy.hh"
#include "sim/machine.hh"

namespace depgraph::runtime
{

struct RunMetrics
{
    std::uint64_t updates = 0;   ///< vertex-state applications (u_d)
    std::uint64_t edgeOps = 0;   ///< EdgeCompute invocations
    unsigned rounds = 0;
    bool converged = false;

    Cycles makespan = 0;            ///< max core finish time
    std::uint64_t computeCycles = 0; ///< vertex-state processing time
    std::uint64_t memStallCycles = 0; ///< memory access stalls
    std::uint64_t overheadCycles = 0; ///< queues, traversal, hub index
    std::uint64_t idleCycles = 0;    ///< barrier / starvation

    std::uint64_t accelOps = 0;  ///< accelerator operations performed

    /* DepGraph-specific counters (0 for other engines). */
    std::uint64_t hubIndexLookups = 0;
    std::uint64_t hubIndexHits = 0;
    std::uint64_t hubIndexInserts = 0;
    std::uint64_t hubIndexSeeded = 0; ///< entries warm-started from a
                                      ///< prior run's artifacts
    std::uint64_t shortcutsApplied = 0;
    std::uint64_t prefetchedEdges = 0;
    std::size_t hubIndexBytes = 0;

    /* Parallel-engine scheduling counters (0 for other engines). */
    std::uint64_t activesCarried = 0;  ///< actives found via carry
                                       ///< lists (no full rescan)
    std::uint64_t rescanFallbacks = 0; ///< dense full-range scans a
                                       ///< carry-mode worker fell
                                       ///< back to
    unsigned chunkSizeFinal = 0;       ///< adaptive chunk size at the
                                       ///< last executed round

    unsigned coresUsed = 1;

    /** Total busy cycles (anything but idle), summed over cores. */
    std::uint64_t
    busyCycles() const
    {
        return computeCycles + memStallCycles + overheadCycles;
    }

    /** Overall utilization U: fraction of core-cycles doing vertex
     * state processing. */
    double
    utilization() const
    {
        const double denom = static_cast<double>(coresUsed)
            * static_cast<double>(makespan);
        return denom > 0.0
            ? static_cast<double>(computeCycles) / denom
            : 0.0;
    }

    /** r_e given the sequential baseline's update count u_s. */
    double
    effectiveUtilization(std::uint64_t u_s) const
    {
        if (updates == 0)
            return 0.0;
        return static_cast<double>(u_s) * utilization()
            / static_cast<double>(updates);
    }

    /** Fig. 9's split: share of busy time that is "other" (memory +
     * traversal + queues + hub index), not vertex state processing. */
    double
    otherTimeShare() const
    {
        const auto busy = busyCycles();
        return busy
            ? static_cast<double>(memStallCycles + overheadCycles)
                / static_cast<double>(busy)
            : 0.0;
    }
};

struct RunResult
{
    std::vector<Value> states;
    /** Global active-set size per executed round (parallel engine
     * only; empty elsewhere). The sparse-frontier tail this records
     * is what the cross-round carry optimizes. */
    std::vector<std::uint64_t> roundActives;
    RunMetrics metrics;
    sim::MachineStats memStats;
    sim::EnergyBreakdown energy;
};

} // namespace depgraph::runtime

#endif // DEPGRAPH_RUNTIME_METRICS_HH
