/**
 * @file
 * Maiter-style selective (priority-threshold) scheduling.
 *
 * The paper's optimized baseline Ligra-o incorporates "asynchronous
 * execution [64]" -- Maiter's delta-accumulative model, whose key
 * scheduling idea is to process only the vertices whose pending delta
 * is significant and let small deltas coalesce before being applied.
 * DepGraph inherits the same activity notion through the software
 * layer that feeds its root queues. For sum accumulators we gate each
 * round on a threshold derived from the mean pending magnitude; for
 * min/max accumulators every profitable delta is processed (their
 * updates are idempotent, so batching buys nothing).
 */

#ifndef DEPGRAPH_RUNTIME_SELECTIVE_HH
#define DEPGRAPH_RUNTIME_SELECTIVE_HH

#include <cmath>
#include <vector>

#include "gas/model.hh"

namespace depgraph::runtime
{

/** Fraction of the mean active magnitude used as the round gate. */
inline constexpr Value kSelectFactor = 0.5;

/**
 * Compute this round's processing threshold for a sum accumulator:
 * max(eps, kSelectFactor * mean |delta| over active vertices).
 * Returns eps for empty active sets and for min/max accumulators.
 */
inline Value
selectionThreshold(gas::AccumKind kind, Value eps,
                   const std::vector<Value> &delta,
                   const std::vector<VertexId> &active)
{
    if (kind != gas::AccumKind::Sum || active.empty())
        return eps;
    Value sum = 0.0;
    for (auto v : active)
        sum += std::abs(delta[v]);
    const Value mean = sum / static_cast<Value>(active.size());
    return std::max(eps, kSelectFactor * mean);
}

/** Does the pending delta clear this round's gate? */
inline bool
clearsGate(gas::AccumKind kind, Value state, Value delta, Value gate)
{
    if (kind == gas::AccumKind::Sum)
        return std::abs(delta) >= gate;
    return gas::wouldChange(kind, state, delta, 0.0);
}

/** Relative-improvement margin below which a min/max refinement is not
 * worth chasing along a chain (it still banks and is applied at the
 * next round seed, so convergence is exact). */
inline constexpr Value kChaseMargin = 0.05;

/**
 * Is the pending delta worth an immediate chain chase? Marginal
 * refinements propagate one hop and bank instead, so chains carry
 * consolidated values rather than every tentative label.
 */
inline bool
worthChasing(gas::AccumKind kind, Value state, Value delta, Value gate)
{
    switch (kind) {
      case gas::AccumKind::Sum:
        return std::abs(delta) >= gate;
      case gas::AccumKind::Min:
        if (state == kInfinity)
            return delta != kInfinity;
        return delta < state * (1.0 - kChaseMargin);
      case gas::AccumKind::Max:
        if (state == -kInfinity)
            return delta != -kInfinity;
        if (state < 0.0)
            return delta > state * (1.0 - kChaseMargin);
        return delta > state * (1.0 + kChaseMargin);
    }
    return false;
}

} // namespace depgraph::runtime

#endif // DEPGRAPH_RUNTIME_SELECTIVE_HH
