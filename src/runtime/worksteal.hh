/**
 * @file
 * A Chase-Lev work-stealing deque over 64-bit work descriptors.
 *
 * Single owner pushes and pops at the bottom (LIFO); any number of
 * thieves steal at the top (FIFO), so thieves drain the oldest --
 * lowest-priority -- work while the owner keeps locality on what it
 * queued last. The native parallel engine stores packed chunk
 * descriptors (see parallel_engine.cc) and sizes each deque for the
 * worst case up front, so the buffer never grows mid-round.
 *
 * Memory ordering: every shared access is a seq_cst atomic operation.
 * The classic formulation saves a few fences with acquire/release plus
 * standalone fences, but standalone fences are invisible to
 * ThreadSanitizer -- the tsan CI job would flag false races inside the
 * deque and, worse, stop tracking the happens-before edges real bugs
 * hide behind. Steals are rare (they happen when a worker is otherwise
 * idle), so the seq_cst premium is noise.
 */

#ifndef DEPGRAPH_RUNTIME_WORKSTEAL_HH
#define DEPGRAPH_RUNTIME_WORKSTEAL_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/logging.hh"

namespace depgraph::runtime
{

class WorkStealDeque
{
  public:
    /** Capacity is rounded up to a power of two and is a hard limit:
     * the engine pre-sizes for seeded chunks + one requeue per vertex,
     * so overflow indicates a sizing bug, not load. */
    explicit WorkStealDeque(std::size_t min_capacity = 256)
    {
        std::size_t cap = 16;
        while (cap < min_capacity)
            cap <<= 1;
        mask_ = cap - 1;
        slots_ = std::vector<std::atomic<std::uint64_t>>(cap);
    }

    /** Owner only. */
    bool
    push(std::uint64_t item)
    {
        const std::int64_t b = bottom_.load();
        const std::int64_t t = top_.load();
        if (b - t >= static_cast<std::int64_t>(mask_ + 1))
            return false; // full (engine sizes this away)
        slots_[static_cast<std::size_t>(b) & mask_].store(item);
        bottom_.store(b + 1);
        return true;
    }

    /** Owner only: take the most recently pushed item. */
    std::optional<std::uint64_t>
    pop()
    {
        const std::int64_t b = bottom_.load() - 1;
        bottom_.store(b);
        std::int64_t t = top_.load();
        if (t < b)
            return slots_[static_cast<std::size_t>(b) & mask_].load();
        if (t == b) {
            /* Last item: race the thieves for it via top. */
            std::optional<std::uint64_t> item =
                slots_[static_cast<std::size_t>(b) & mask_].load();
            if (!top_.compare_exchange_strong(t, t + 1))
                item.reset(); // a thief got there first
            bottom_.store(b + 1);
            return item;
        }
        bottom_.store(b + 1); // empty
        return std::nullopt;
    }

    /** Any thread: take the oldest item. Returns nullopt when empty or
     * when the CAS loses a race (callers just move on to the next
     * victim, so one attempt is enough). */
    std::optional<std::uint64_t>
    steal()
    {
        std::int64_t t = top_.load();
        const std::int64_t b = bottom_.load();
        if (t >= b)
            return std::nullopt;
        const std::uint64_t item =
            slots_[static_cast<std::size_t>(t) & mask_].load();
        if (!top_.compare_exchange_strong(t, t + 1))
            return std::nullopt;
        return item;
    }

    /** Owner only, between rounds (no concurrent thieves). */
    void
    reset()
    {
        bottom_.store(0);
        top_.store(0);
    }

    std::size_t capacity() const { return mask_ + 1; }

  private:
    alignas(64) std::atomic<std::int64_t> bottom_{0};
    alignas(64) std::atomic<std::int64_t> top_{0};
    std::vector<std::atomic<std::uint64_t>> slots_;
    std::size_t mask_ = 0;
};

/**
 * Victim visit order for worker `self` among T workers: round-robin
 * starting at self+1, but with victims on self's own NUMA node
 * visited before remote-node ones (stolen chunks drag their owner's
 * rootVec cache lines along, so a same-node steal is strictly
 * cheaper). `nodeOf[w]` is each worker's node id; with every worker
 * on one node this degenerates to the plain (self + k) % T rotation,
 * so single-node hosts keep the historical order bit for bit.
 */
inline std::vector<unsigned>
stealOrder(unsigned self, unsigned T,
           const std::vector<unsigned> &nodeOf)
{
    std::vector<unsigned> order;
    if (T <= 1)
        return order;
    order.reserve(T - 1);
    const unsigned my_node =
        self < nodeOf.size() ? nodeOf[self] : 0;
    for (unsigned k = 1; k < T; ++k) {
        const unsigned vic = (self + k) % T;
        if ((vic < nodeOf.size() ? nodeOf[vic] : 0) == my_node)
            order.push_back(vic);
    }
    for (unsigned k = 1; k < T; ++k) {
        const unsigned vic = (self + k) % T;
        if ((vic < nodeOf.size() ? nodeOf[vic] : 0) != my_node)
            order.push_back(vic);
    }
    return order;
}

} // namespace depgraph::runtime

#endif // DEPGRAPH_RUNTIME_WORKSTEAL_HH
