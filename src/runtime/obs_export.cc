#include "runtime/obs_export.hh"

#include "depgraph/fold_kernels.hh"

namespace depgraph::runtime
{

namespace
{

/** Cumulative counter publish: add this run's count on top. */
void
bump(obs::Registry &reg, const char *name, const char *help,
     const obs::Labels &labels, std::uint64_t v)
{
    reg.counter(name, help, labels).inc(v);
}

} // namespace

void
publishRunMetrics(obs::Registry &reg, const RunMetrics &mx,
                  const obs::Labels &labels)
{
    bump(reg, "dg_run_updates_total",
         "Vertex-state applications (u_d)", labels, mx.updates);
    bump(reg, "dg_run_edge_ops_total", "EdgeCompute invocations",
         labels, mx.edgeOps);
    bump(reg, "dg_run_rounds_total", "Engine rounds executed", labels,
         mx.rounds);
    bump(reg, "dg_run_makespan_cycles_total",
         "Simulated makespan cycles", labels, mx.makespan);
    bump(reg, "dg_run_compute_cycles_total",
         "Vertex-state processing cycles", labels, mx.computeCycles);
    bump(reg, "dg_run_mem_stall_cycles_total", "Memory stall cycles",
         labels, mx.memStallCycles);
    bump(reg, "dg_run_overhead_cycles_total",
         "Queue/traversal/hub-index overhead cycles", labels,
         mx.overheadCycles);
    bump(reg, "dg_run_idle_cycles_total", "Barrier/starvation cycles",
         labels, mx.idleCycles);
    bump(reg, "dg_run_accel_ops_total", "Accelerator operations",
         labels, mx.accelOps);
    bump(reg, "dg_run_hub_index_lookups_total", "Hub-index lookups",
         labels, mx.hubIndexLookups);
    bump(reg, "dg_run_hub_index_hits_total", "Hub-index hits", labels,
         mx.hubIndexHits);
    bump(reg, "dg_run_shortcuts_total",
         "Hub-index shortcuts applied", labels, mx.shortcutsApplied);
    bump(reg, "dg_run_actives_carried_total",
         "Active vertices found via cross-round carry lists", labels,
         mx.activesCarried);
    bump(reg, "dg_run_rescan_fallbacks_total",
         "Carry-mode dense full-range rescan fallbacks", labels,
         mx.rescanFallbacks);

    reg.gauge("dg_run_utilization",
              "Overall utilization U of the last published run",
              labels)
        .set(mx.utilization());
    reg.gauge("dg_run_other_time_share",
              "Fig. 9 'other time' share of the last published run",
              labels)
        .set(mx.otherTimeShare());
    reg.gauge("dg_run_hub_index_bytes",
              "Hub-index footprint of the last published run", labels)
        .set(static_cast<double>(mx.hubIndexBytes));
    reg.gauge("dg_run_converged",
              "1 when the last published run converged", labels)
        .set(mx.converged ? 1.0 : 0.0);
}

void
publishMachineStats(obs::Registry &reg, const sim::MachineStats &ms,
                    const obs::Labels &labels)
{
    const struct
    {
        const char *name;
        const char *help;
        std::uint64_t v;
    } items[] = {
        {"dg_mem_l1_hits_total", "L1D hits", ms.l1.hits},
        {"dg_mem_l1_misses_total", "L1D misses", ms.l1.misses},
        {"dg_mem_l2_hits_total", "L2 hits", ms.l2.hits},
        {"dg_mem_l2_misses_total", "L2 misses", ms.l2.misses},
        {"dg_mem_l3_hits_total", "L3 hits", ms.l3.hits},
        {"dg_mem_l3_misses_total", "L3 misses", ms.l3.misses},
        {"dg_mem_noc_hops_total", "NoC router hops", ms.nocHops},
        {"dg_mem_noc_messages_total", "NoC messages", ms.nocMessages},
        {"dg_mem_dram_accesses_total", "DRAM line accesses",
         ms.dramAccesses},
        {"dg_mem_invalidations_total", "Directory invalidations",
         ms.invalidations},
        {"dg_mem_remote_dirty_hits_total", "Remote dirty hits",
         ms.remoteDirtyHits},
        {"dg_mem_accesses_total", "Core-side memory accesses",
         ms.accesses},
    };
    for (const auto &it : items)
        bump(reg, it.name, it.help, labels, it.v);
}

void
publishEnergy(obs::Registry &reg, const sim::EnergyBreakdown &e,
              const obs::Labels &labels)
{
    const struct
    {
        const char *name;
        double v;
    } items[] = {
        {"dg_energy_core_mj", e.coreMj},
        {"dg_energy_cache_mj", e.cacheMj},
        {"dg_energy_noc_mj", e.nocMj},
        {"dg_energy_dram_mj", e.dramMj},
        {"dg_energy_accel_mj", e.accelMj},
        {"dg_energy_total_mj", e.totalMj()},
    };
    for (const auto &it : items)
        reg.gauge(it.name,
                  "Energy of the last published run, millijoules",
                  labels)
            .set(it.v);
}

void
publishRunResult(obs::Registry &reg, const RunResult &r,
                 const obs::Labels &labels)
{
    publishRunMetrics(reg, r.metrics, labels);
    publishMachineStats(reg, r.memStats, labels);
    publishEnergy(reg, r.energy, labels);
    obs::publishBuildInfo(
        reg, dep::fold::isaName(dep::fold::activeIsa()));
}

} // namespace depgraph::runtime
