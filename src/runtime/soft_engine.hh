/**
 * @file
 * The configurable software-runtime engine.
 *
 * One implementation covers the whole baseline landscape of the paper's
 * evaluation through scheduling/acceleration flags:
 *
 *  - Ligra          : synchronous (Jacobi) rounds, vertex order
 *  - Mosaic         : synchronous, tile(id)-ordered processing
 *  - Wonderland     : asynchronous rounds, degree-priority order
 *  - FBSGraph       : asynchronous, path-sweep (DFS) order
 *  - Ligra-o        : asynchronous, delta-priority order (Maiter-style
 *                     delta accumulation + abstraction-guided priority)
 *  - HATS           : Ligra-o + hardware BDFS traversal scheduling
 *                     (locality-ordered, zero scheduling overhead)
 *  - Minnow         : Ligra-o + hardware worklist (cheap queue ops,
 *                     priority order) + worklist-directed prefetching
 *  - PHI            : Ligra-o + in-hierarchy commutative scatter
 *                     updates (core does not stall on remote updates)
 *
 * All variants execute the same delta-accumulative GAS iteration, so
 * they converge to identical states (Theorem-1 test anchor); they
 * differ in schedule, per-operation cost, and the memory access stream
 * they generate against the simulated machine.
 */

#ifndef DEPGRAPH_RUNTIME_SOFT_ENGINE_HH
#define DEPGRAPH_RUNTIME_SOFT_ENGINE_HH

#include <string>

#include "runtime/engine.hh"

namespace depgraph::runtime
{

enum class Schedule
{
    VertexOrder,    ///< ascending vertex id
    PriorityDelta,  ///< most impactful pending delta first
    PriorityDegree, ///< high out-degree first
    PathSweep,      ///< DFS order over the active set
};

struct SoftConfig
{
    std::string name = "Ligra";
    Schedule schedule = Schedule::VertexOrder;
    bool async = false;            ///< Gauss-Seidel in-place deltas
    bool hwScheduler = false;      ///< ordering done by an accelerator
    bool hwWorklist = false;       ///< queue ops done by an accelerator
    bool prefetchVertexData = false; ///< worklist-directed prefetch
    bool cheapScatter = false;     ///< PHI-style in-hierarchy updates
    bool selective = true;         ///< Maiter-style delta-threshold
                                   ///< scheduling (sum accumulators)
};

class SoftEngine : public Engine
{
  public:
    SoftEngine(SoftConfig cfg, EngineOptions opt = {});

    std::string name() const override { return cfg_.name; }

    RunResult run(const graph::Graph &g, gas::Algorithm &alg,
                  sim::Machine &m) override;

  private:
    SoftConfig cfg_;
    EngineOptions opt_;
};

/* Factories for the named baselines. */
EnginePtr makeLigra(EngineOptions opt = {});
EnginePtr makeMosaic(EngineOptions opt = {});
EnginePtr makeWonderland(EngineOptions opt = {});
EnginePtr makeFbsGraph(EngineOptions opt = {});
EnginePtr makeLigraO(EngineOptions opt = {});

} // namespace depgraph::runtime

#endif // DEPGRAPH_RUNTIME_SOFT_ENGINE_HH
