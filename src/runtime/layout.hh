/**
 * @file
 * Simulated-memory layout of the CSR arrays and vertex state arrays
 * (paper Fig. 8): offset array, edge array, weight array, and the
 * vertex state arrays (recent state + pending delta, the two arrays
 * incremental pagerank needs).
 */

#ifndef DEPGRAPH_RUNTIME_LAYOUT_HH
#define DEPGRAPH_RUNTIME_LAYOUT_HH

#include <algorithm>

#include "graph/csr.hh"
#include "sim/machine.hh"

namespace depgraph::runtime
{

class GraphLayout
{
  public:
    GraphLayout(sim::Machine &m, const graph::Graph &g)
    {
        auto &as = m.mem();
        const std::size_t nv = g.numVertices();
        // Edgeless graphs are legal; keep allocations non-empty.
        const std::size_t ne = std::max<std::size_t>(g.numEdges(), 1);
        offsetsBase_ = as.alloc("csr.offsets", (nv + 1) * 8);
        targetsBase_ = as.alloc("csr.targets", ne * 4);
        weightsBase_ = g.weighted() ? as.alloc("csr.weights", ne * 8)
                                    : 0;
        stateBase_ = as.alloc("vertex.state", nv * 8);
        deltaBase_ = as.alloc("vertex.delta", nv * 8);
        // Second delta buffer for synchronous (Jacobi) engines.
        delta2Base_ = as.alloc("vertex.delta2", nv * 8);
        weighted_ = g.weighted();
    }

    Addr offsetAddr(VertexId v) const { return offsetsBase_ + Addr{v} * 8; }
    Addr targetAddr(EdgeId e) const { return targetsBase_ + e * 4; }
    Addr weightAddr(EdgeId e) const { return weightsBase_ + e * 8; }
    Addr stateAddr(VertexId v) const { return stateBase_ + Addr{v} * 8; }
    Addr deltaAddr(VertexId v) const { return deltaBase_ + Addr{v} * 8; }
    Addr delta2Addr(VertexId v) const { return delta2Base_ + Addr{v} * 8; }
    bool weighted() const { return weighted_; }

    Addr stateBase() const { return stateBase_; }
    Addr deltaBase() const { return deltaBase_; }

  private:
    Addr offsetsBase_ = 0;
    Addr targetsBase_ = 0;
    Addr weightsBase_ = 0;
    Addr stateBase_ = 0;
    Addr deltaBase_ = 0;
    Addr delta2Base_ = 0;
    bool weighted_ = false;
};

} // namespace depgraph::runtime

#endif // DEPGRAPH_RUNTIME_LAYOUT_HH
