/**
 * @file
 * Bridges from the per-run metric structs (runtime::RunMetrics,
 * sim::MachineStats, sim::EnergyBreakdown) into an obs::Registry.
 *
 * The engines keep returning their plain structs -- cheap, copyable,
 * and what the benchmarks consume -- and anything that wants a
 * scrapeable/exportable view publishes them here. Counters are
 * cumulative across publishes (a second run on the same registry adds
 * its updates on top), matching Prometheus counter semantics; gauges
 * (utilization, hub-index bytes, energy) reflect the last published
 * run.
 */

#ifndef DEPGRAPH_RUNTIME_OBS_EXPORT_HH
#define DEPGRAPH_RUNTIME_OBS_EXPORT_HH

#include "obs/metrics.hh"
#include "runtime/metrics.hh"

namespace depgraph::runtime
{

/**
 * Publish one run's engine metrics. @param labels identify the run
 * (e.g. {{"algo","sssp"},{"solution","DepGraph-H"}}); every metric of
 * the run carries them.
 */
void publishRunMetrics(obs::Registry &reg, const RunMetrics &mx,
                       const obs::Labels &labels);

/** Publish the memory-system event counts of a run. */
void publishMachineStats(obs::Registry &reg, const sim::MachineStats &ms,
                         const obs::Labels &labels);

/** Publish the energy breakdown of a run (gauges, millijoules). */
void publishEnergy(obs::Registry &reg, const sim::EnergyBreakdown &e,
                   const obs::Labels &labels);

/** All three of the above for a complete RunResult. */
void publishRunResult(obs::Registry &reg, const RunResult &r,
                      const obs::Labels &labels);

} // namespace depgraph::runtime

#endif // DEPGRAPH_RUNTIME_OBS_EXPORT_HH
