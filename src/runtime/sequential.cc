#include "runtime/sequential.hh"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "runtime/layout.hh"
#include "runtime/soft_engine.hh"

namespace depgraph::runtime
{

namespace
{

/**
 * Core of the single-thread best-first asynchronous schedule, shared by
 * the timed and untimed entry points.
 *
 * The paper's sequential baseline processes vertices asynchronously
 * along dependency chains so that each state is propagated once
 * ("the least number of updates", Observation one). The order that
 * realizes that minimality is best-first: for min-accumulators this is
 * Dijkstra's order (each vertex settles once), for max the symmetric
 * order, and for sum-accumulators processing the largest pending delta
 * first lets smaller contributions coalesce before being propagated.
 *
 * `touch(addr, bytes, write)` is invoked for every memory access the
 * schedule performs; `cost(kind)` for every compute event (0 = queue
 * op, 1 = vertex apply, 2 = edge op). Pass no-ops to only count.
 */
template <typename Touch, typename Cost>
void
bestFirstAsync(const graph::Graph &g, gas::Algorithm &alg,
               RunMetrics &mx, std::vector<Value> &state, Touch &&touch,
               Cost &&cost, const GraphLayout *L)
{
    using gas::applyAccum;
    using gas::wouldChange;

    const VertexId n = g.numVertices();
    const auto kind = alg.accumKind();
    const Value ident = alg.identity();
    const Value eps = alg.epsilon();

    std::vector<Value> delta(n);
    state.resize(n);
    for (VertexId v = 0; v < n; ++v) {
        state[v] = alg.initState(g, v);
        delta[v] = alg.initDelta(g, v);
    }

    // Priority of a pending delta: larger = process sooner.
    auto priority = [&](Value d) -> Value {
        switch (kind) {
          case gas::AccumKind::Sum:
            return std::abs(d);
          case gas::AccumKind::Min:
            return -d; // smallest tentative value first (Dijkstra)
          case gas::AccumKind::Max:
            return d;
        }
        return 0.0;
    };

    // Lazy max-heap of (priority, vertex); stale entries are skipped
    // at pop time by re-checking the live delta.
    using Entry = std::pair<Value, VertexId>;
    std::priority_queue<Entry> heap;
    for (VertexId v = 0; v < n; ++v)
        if (delta[v] != ident
            && wouldChange(kind, state[v], delta[v], eps))
            heap.emplace(priority(delta[v]), v);

    while (!heap.empty()) {
        const auto [prio, v] = heap.top();
        heap.pop();
        cost(0); // worklist pop
        const Value d = delta[v];
        if (d == ident || priority(d) != prio
            || !wouldChange(kind, state[v], d, eps)) {
            continue; // stale or settled entry
        }
        if (L) {
            touch(L->offsetAddr(v), 16u, false);
            touch(L->deltaAddr(v), 8u, true);
            touch(L->stateAddr(v), 8u, true);
        }
        delta[v] = ident;
        state[v] = applyAccum(kind, state[v], d);
        ++mx.updates;
        cost(1);

        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e) {
            const VertexId t = g.target(e);
            if (L) {
                touch(L->targetAddr(e), 4u, false);
                if (L->weighted())
                    touch(L->weightAddr(e), 8u, false);
                touch(L->deltaAddr(t), 8u, true);
            }
            const Value inf = alg.edgeCompute(g, v, e, d);
            const Value nd = applyAccum(kind, delta[t], inf);
            ++mx.edgeOps;
            cost(2);
            if (nd != delta[t] || kind == gas::AccumKind::Sum) {
                delta[t] = nd;
                if (wouldChange(kind, state[t], nd, eps))
                    heap.emplace(priority(nd), t);
            }
        }
    }
    mx.rounds = 1;
    mx.converged = true;
}

} // namespace

SequentialEngine::SequentialEngine(EngineOptions opt)
    : opt_(opt)
{}

RunResult
SequentialEngine::run(const graph::Graph &g, gas::Algorithm &alg,
                      sim::Machine &m)
{
    if (alg.accumKind() == gas::AccumKind::Sum) {
        // For sum accumulators the round-based Gauss-Seidel schedule
        // ("one thread of Ligra-o") batches deltas and needs fewer
        // updates than best-first; run exactly that on one core.
        EngineOptions one = opt_;
        one.numCores = 1;
        SoftEngine gs(SoftConfig{"Sequential",
                                 Schedule::PriorityDelta, true, false,
                                 false, false, false},
                      one);
        return gs.run(g, alg, m);
    }

    alg.prepare(g);
    m.flushCaches();
    m.clearStats();
    const auto &P = m.params();
    GraphLayout L(m, g);

    RunResult result;
    auto &mx = result.metrics;
    mx.coresUsed = 1;
    Cycles clock = 0;

    auto touch = [&](Addr a, unsigned bytes, bool write) {
        const auto r = m.access(0, a, bytes, write);
        clock += r.latency;
        mx.memStallCycles += r.latency;
    };
    auto cost = [&](int what) {
        switch (what) {
          case 0:
            clock += P.queueOpCycles;
            mx.overheadCycles += P.queueOpCycles;
            break;
          case 1:
            clock += P.vertexOpCycles;
            mx.computeCycles += P.vertexOpCycles;
            break;
          default:
            clock += P.edgeOpCycles;
            mx.computeCycles += P.edgeOpCycles;
            break;
        }
    };
    bestFirstAsync(g, alg, mx, result.states, touch, cost, &L);

    mx.makespan = clock;
    result.memStats = m.stats();
    result.energy = sim::computeEnergy(
        result.memStats, mx.busyCycles(),
        static_cast<std::uint64_t>(m.numCores() - 1) * mx.makespan, 0);
    return result;
}

namespace
{

/** Update count of a single-core round-based Gauss-Seidel schedule
 * ("one thread of Ligra-o", the paper's sequential baseline). */
std::uint64_t
gaussSeidelUpdateCount(const graph::Graph &g, gas::Algorithm &alg,
                       unsigned max_rounds = 100000)
{
    using gas::applyAccum;
    using gas::wouldChange;
    const VertexId n = g.numVertices();
    const auto kind = alg.accumKind();
    const Value ident = alg.identity();
    const Value eps = alg.epsilon();

    std::vector<Value> state(n), delta(n);
    for (VertexId v = 0; v < n; ++v) {
        state[v] = alg.initState(g, v);
        delta[v] = alg.initDelta(g, v);
    }
    std::uint64_t updates = 0;
    std::vector<VertexId> frontier;
    for (VertexId v = 0; v < n; ++v)
        if (delta[v] != ident
            && wouldChange(kind, state[v], delta[v], eps))
            frontier.push_back(v);

    for (unsigned round = 0; round < max_rounds && !frontier.empty();
         ++round) {
        for (const VertexId v : frontier) {
            const Value d = delta[v];
            if (d == ident || !wouldChange(kind, state[v], d, eps))
                continue;
            delta[v] = ident;
            state[v] = applyAccum(kind, state[v], d);
            ++updates;
            for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e) {
                const VertexId t = g.target(e);
                delta[t] = applyAccum(kind, delta[t],
                                      alg.edgeCompute(g, v, e, d));
            }
        }
        frontier.clear();
        for (VertexId v = 0; v < n; ++v)
            if (delta[v] != ident
                && wouldChange(kind, state[v], delta[v], eps))
                frontier.push_back(v);
    }
    return updates;
}

} // namespace

std::uint64_t
SequentialEngine::countMinimalUpdates(const graph::Graph &g,
                                      gas::Algorithm &alg)
{
    alg.prepare(g);
    // The "least number of updates" a sequential asynchronous schedule
    // needs: best-first is optimal for min/max accumulators (Dijkstra
    // order), round-based Gauss-Seidel batches better for sum; take
    // the better of the two.
    RunMetrics mx;
    std::vector<Value> state;
    bestFirstAsync(g, alg, mx, state,
                   [](Addr, unsigned, bool) {}, [](int) {}, nullptr);
    return std::min(mx.updates, gaussSeidelUpdateCount(g, alg));
}

} // namespace depgraph::runtime
