/**
 * @file
 * Native multi-threaded execution of the dependency-driven model.
 *
 * ParallelEngine runs the same HDTL chain-walking + hub-index model as
 * the cycle-accurate DepGraph executor -- the inner loops are literally
 * shared via depgraph/chain_walk.hh -- but on real host threads instead
 * of the simulated machine: vertices are range-partitioned across
 * workers, each worker owns a work-stealing deque of chain-root chunks,
 * and rounds are separated by a std::barrier. See docs/PARALLEL.md for
 * the execution model, the seqlock memory-ordering contract of the
 * native hub table, and how its staleness semantics relate to the
 * cycle model.
 *
 * The engine reports wall-clock nanoseconds in RunMetrics::makespan
 * (not simulated cycles) and leaves the cache/energy models untouched;
 * it exists for serving-layer throughput, not for the paper's
 * architecture tables, which is why it is deliberately absent from
 * core_api::allSolutions().
 */

#ifndef DEPGRAPH_RUNTIME_PARALLEL_ENGINE_HH
#define DEPGRAPH_RUNTIME_PARALLEL_ENGINE_HH

#include "runtime/engine.hh"

namespace depgraph::runtime
{

/** Worker-thread count an EngineOptions resolves to: hostThreads when
 * set, else hardware concurrency, capped at 16. */
unsigned resolveHostThreads(unsigned requested);

class ParallelEngine : public Engine
{
  public:
    explicit ParallelEngine(EngineOptions opt = {});

    std::string name() const override;

    /** The machine is only a bystander here: native runs never touch
     * its caches, stats or energy model. */
    RunResult run(const graph::Graph &g, gas::Algorithm &alg,
                  sim::Machine &m) override;

  private:
    EngineOptions opt_;
};

EnginePtr makeParallel(EngineOptions opt = {});

} // namespace depgraph::runtime

#endif // DEPGRAPH_RUNTIME_PARALLEL_ENGINE_HH
