/**
 * @file
 * Single-thread asynchronous baseline (paper Sec. II): all vertices
 * handled by one thread with every new state used immediately. The
 * processing order is best-first (Dijkstra order for min/max
 * accumulators, largest-delta-first for sum), which realizes the
 * paper's "least number of updates" property (Observation one); its
 * update count is u_s, the numerator of the effective utilization
 * metric r_e = u_s * U / u_d.
 */

#ifndef DEPGRAPH_RUNTIME_SEQUENTIAL_HH
#define DEPGRAPH_RUNTIME_SEQUENTIAL_HH

#include "runtime/engine.hh"

namespace depgraph::runtime
{

class SequentialEngine : public Engine
{
  public:
    explicit SequentialEngine(EngineOptions opt = {});

    std::string name() const override { return "Sequential"; }

    RunResult run(const graph::Graph &g, gas::Algorithm &alg,
                  sim::Machine &m) override;

    /**
     * Update count of the DFS-async schedule without any machine
     * simulation -- the cheap way to obtain u_s for metrics.
     */
    static std::uint64_t countMinimalUpdates(const graph::Graph &g,
                                             gas::Algorithm &alg);

  private:
    EngineOptions opt_;
};

} // namespace depgraph::runtime

#endif // DEPGRAPH_RUNTIME_SEQUENTIAL_HH
