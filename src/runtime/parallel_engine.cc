#include "runtime/parallel_engine.hh"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "depgraph/chain_walk.hh"
#include "graph/core_paths.hh"
#include "graph/hub.hh"
#include "graph/partition.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "runtime/numa.hh"
#include "runtime/selective.hh"
#include "runtime/worksteal.hh"

namespace depgraph::runtime
{

namespace dep = ::depgraph::dep;

namespace
{

constexpr unsigned kMaxThreads = 16;

/* Adaptive chunk-controller bounds. The deques are sized for the
 * minimum up front, so resizing a round's granularity never needs a
 * reallocation. */
constexpr unsigned kChunkMin = 4;
constexpr unsigned kChunkMax = 4096;

/* -0.0 canonicalization and the atomic accumulation helpers moved to
 * fold_kernels.hh so both engines and the lane kernels share one
 * audited +-0 contract (see the comment block there). */
using dep::fold::canon;

/** Shared atomic bitmap; words cleared in parallel by word ranges
 * (vertex-range splits would race on boundary words). */
struct AtomicBitmap
{
    std::vector<std::atomic<std::uint64_t>> words;

    explicit AtomicBitmap(std::size_t bits)
        : words((bits + 63) / 64)
    {}

    /** True when this call set the bit (it was clear). */
    bool
    trySet(VertexId v)
    {
        const auto mask = std::uint64_t{1} << (v & 63u);
        return (words[v >> 6].fetch_or(mask) & mask) == 0;
    }

    bool
    test(VertexId v) const
    {
        const auto mask = std::uint64_t{1} << (v & 63u);
        return (words[v >> 6].load() & mask) != 0;
    }

    /** Atomic single-bit clear: safe on partition-boundary words that
     * a neighbouring owner may be setting bits in concurrently. */
    void
    clear(VertexId v)
    {
        const auto mask = std::uint64_t{1} << (v & 63u);
        words[v >> 6].fetch_and(~mask);
    }

    void
    clearWordRange(std::size_t b, std::size_t e)
    {
        for (std::size_t i = b; i < e; ++i)
            words[i].store(0, std::memory_order_relaxed);
    }
};

/* Chunk descriptors: owner worker in the top byte, [begin, end) indices
 * into that worker's rootVec below. Owners append requeued roots past
 * the seeded prefix; capacity is reserved up front so thieves can read
 * through a stable pointer. */
constexpr std::uint64_t kIdxMask = (std::uint64_t{1} << 28) - 1;

inline std::uint64_t
packChunk(unsigned owner, std::uint32_t b, std::uint32_t e)
{
    return (static_cast<std::uint64_t>(owner) << 56)
        | (static_cast<std::uint64_t>(b) << 28) | e;
}

/** One direct-dependency entry of the native hub table, guarded by a
 * seqlock (see docs/PARALLEL.md for the ordering contract). All fields
 * are atomics so the tsan job sees every happens-before edge; seq_cst
 * keeps the protocol obviously correct, and entry traffic (shortcut
 * firings + tail observations) is far off the per-edge hot path. */
struct alignas(64) NativeEntry
{
    std::atomic<std::uint32_t> seq{0}; ///< even = stable, odd = writing
    std::atomic<std::uint8_t> flag{
        static_cast<std::uint8_t>(dep::EntryFlag::N)};
    std::atomic<Value> mu{0.0};
    std::atomic<Value> xi{0.0};
    std::atomic<Value> cap{kInfinity};
    std::atomic<Value> sampleIn{0.0};
    std::atomic<Value> sampleOut{0.0};
};

/** Plain mirror the shared ddmuFitStep state machine operates on. */
struct ShimEntry
{
    dep::EntryFlag flag;
    gas::LinearFunc func;
    Value sampleIn;
    Value sampleOut;
};

/** Seqlock read of an Available entry's function; nullopt on a miss or
 * when racing a writer (the caller just skips the shortcut -- losing
 * one firing costs a round of latency, never correctness). */
inline std::optional<gas::LinearFunc>
loadAvailable(const NativeEntry &en)
{
    const auto s1 = en.seq.load();
    if (s1 & 1u)
        return std::nullopt;
    if (static_cast<dep::EntryFlag>(en.flag.load())
        != dep::EntryFlag::A)
        return std::nullopt;
    gas::LinearFunc f{en.mu.load(), en.xi.load(), en.cap.load()};
    if (en.seq.load() != s1)
        return std::nullopt;
    return f;
}

enum class ObserveResult
{
    Busy,    ///< another writer held the seqlock; sample dropped
    Settled, ///< entry already Available
    Sampled,
    Promoted,
};

/** Single-writer fitting step: take the seqlock, run the shared
 * N -> I -> A machine on a plain copy, publish. A lost CAS just drops
 * the sample -- observations are plentiful. */
inline ObserveResult
observeNative(NativeEntry &en, Value in, Value out,
              const gas::LinearFunc &composed, dep::FitMode mode)
{
    auto s = en.seq.load();
    if (s & 1u)
        return ObserveResult::Busy;
    if (static_cast<dep::EntryFlag>(en.flag.load())
        == dep::EntryFlag::A)
        return ObserveResult::Settled;
    if (!en.seq.compare_exchange_strong(s, s + 1))
        return ObserveResult::Busy;

    ShimEntry shim{static_cast<dep::EntryFlag>(en.flag.load()),
                   {en.mu.load(), en.xi.load(), en.cap.load()},
                   en.sampleIn.load(), en.sampleOut.load()};
    const auto outcome = dep::ddmuFitStep(shim, in, out, composed,
                                          mode);
    en.flag.store(static_cast<std::uint8_t>(shim.flag));
    en.mu.store(shim.func.mu);
    en.xi.store(shim.func.xi);
    en.cap.store(shim.func.cap);
    en.sampleIn.store(shim.sampleIn);
    en.sampleOut.store(shim.sampleOut);
    en.seq.store(s + 2);

    switch (outcome) {
      case dep::FitOutcome::Promoted:
        return ObserveResult::Promoted;
      case dep::FitOutcome::Sampled:
        return ObserveResult::Sampled;
      case dep::FitOutcome::Kept:
        return ObserveResult::Settled;
    }
    return ObserveResult::Settled;
}

/** Per-worker state, cache-line separated. The constructor only sets
 * up what thieves reach through stable pointers (the deque and
 * rootVec storage); everything sized O(n) or O(range) is allocated by
 * initThreadLocal() on the worker's own thread, after NUMA binding,
 * so first-touch places the pages on the worker's node. */
struct alignas(64) WorkerCtx
{
    unsigned id = 0;
    graph::PartitionRange range;
    WorkStealDeque deque;

    std::vector<VertexId> rootVec; ///< seeded + requeued roots
    const VertexId *rootPtr = nullptr;
    std::vector<Value> shadow;      ///< sum: cross-partition deposits
    std::vector<VertexId> touched;  ///< shadow slots possibly != ident
    std::vector<dep::WalkFrame> stack;
    dep::FoldScratch lanes;         ///< per-depth SoA edge-block tiles
    std::vector<VertexId> actives;  ///< this round's active set
    std::vector<Value> laneBuf;     ///< |delta| lanes for the gate fold
    /** (priority key, vertex) pairs for the seed sort -- reused every
     * round so seeding allocates nothing (std::stable_sort grabbed a
     * fresh temp buffer per round; keyed std::sort is in-place). */
    std::vector<std::pair<Value, VertexId>> sortKeys;
    /** Cross-round carry: own-range vertices whose delta slot may
     * hold undelivered mass (kept in sync with the `carried` bitmap;
     * see docs/PARALLEL.md). */
    std::vector<VertexId> carry;
    /** Per-owner outboxes: first delta write to a remote vertex this
     * round appends it here; the owner drains at its next merge. */
    std::vector<std::vector<VertexId>> carryOut;
    std::vector<unsigned> victims; ///< steal order, same-node first
    Value absSum = 0.0;

    std::uint64_t updates = 0, edgeOps = 0, walks = 0;
    std::uint64_t steals = 0, idleWaits = 0, shadowMerged = 0;
    std::uint64_t hubLookups = 0, hubHits = 0, shortcuts = 0;
    std::uint64_t ddmuObs = 0, inserts = 0, prebanked = 0;
    std::uint64_t carriedActives = 0, rescans = 0;

    /* Round-local scheduler feedback, reset at every seed phase and
     * read by worker 0 in the next round's reduce (barrier-ordered). */
    std::uint64_t stealsRound = 0, idleRound = 0, chunksRound = 0;

    WorkerCtx(unsigned w, graph::PartitionRange r, VertexId n,
              unsigned min_chunk, unsigned T)
        : id(w), range(r),
          deque((r.size() + min_chunk - 1) / std::max(1u, min_chunk)
                + n + 2)
    {
        rootVec.reserve(static_cast<std::size_t>(r.size()) + n);
        rootPtr = rootVec.data();
        carryOut.resize(T);
    }

    void
    initThreadLocal(VertexId n, bool is_sum, unsigned stack_depth)
    {
        if (is_sum) {
            shadow.assign(n, 0.0);
            touched.reserve(n);
        }
        stack.reserve(stack_depth + 1);
        lanes.ensureDepth(stack_depth);
        actives.reserve(range.size());
        laneBuf.reserve(range.size());
        sortKeys.reserve(range.size());
        carry.reserve(range.size());
    }
};

/** Round-global state; plain fields are written by worker 0 between
 * barrier phases only. */
struct SharedRound
{
    std::atomic<std::int64_t> outstanding{0};
    Value gate = 0.0;
    std::size_t activeTotal = 0;
    unsigned chunk = 32; ///< this round's chunk granularity
    bool done = false;
    bool converged = false;
    unsigned roundsRun = 0;
    std::vector<std::uint64_t> roundActives;
};

/**
 * The native implementation of the chain_walk.hh Policy contract: no
 * cycle charging; deliveries go through atomics and per-worker shadow
 * buffers instead of simulated queues.
 */
struct NativePolicy
{
    const graph::Graph &g;
    gas::Algorithm &alg;
    const graph::Partitioning &part;
    const graph::CoreSubgraph &cs;
    const std::unordered_map<EdgeId, std::uint32_t> &pathOfFirst;
    std::vector<NativeEntry> &entries;
    std::atomic<Value> *state;
    std::atomic<Value> *delta;
    AtomicBitmap &claimed;
    AtomicBitmap &queued;
    AtomicBitmap &carried; ///< cross-round carry membership
    SharedRound &S;
    WorkerCtx &me;
    const gas::AccumKind kind;
    const Value ident;
    const bool sum;
    const bool hubOn;
    const dep::FitMode fit;
    const bool lanesOn; ///< batch EdgeCompute through lane tiles?
    const bool carryOn; ///< maintain the cross-round carry lists?

    Value gate = 0.0;     ///< copied from SharedRound each round
    unsigned curPart = 0; ///< partition of the root being walked

    bool hubEnabled() const { return hubOn; }
    bool isSum() const { return sum; }

    /* Apply a claimed vertex's pending delta. Only the claim winner
     * reaches here, so the state store cannot race another store; the
     * delta exchange is an RMW, so concurrent accumulators never lose
     * a contribution (anything landing after the exchange waits in the
     * slot for the next round). */
    Value
    applyVertex(VertexId v)
    {
        const Value d = canon(delta[v].exchange(ident));
        state[v].store(
            canon(gas::applyAccum(kind, state[v].load(), d)));
        ++me.updates;
        return d;
    }

    Value enterRoot(VertexId v, bool) { return applyVertex(v); }
    Value enterVertex(VertexId v) { return applyVertex(v); }

    void chargeEdge(VertexId, EdgeId, VertexId) { ++me.edgeOps; }

    Value
    influence(VertexId src, EdgeId e, Value d)
    {
        return alg.edgeCompute(g, src, e, d);
    }

    gas::LinearFunc
    edgeFunc(VertexId src, EdgeId e)
    {
        return alg.edgeFunc(g, src, e);
    }

    /* ---- Frontier/batch extension. ---- */
    bool lanesEnabled() const { return lanesOn; }

    void
    gatherEdgeFuncs(VertexId v, EdgeId eBegin, std::uint32_t cnt,
                    Value *mu, Value *xi, Value *cap)
    {
        alg.edgeFuncBlock(g, v, eBegin, cnt, mu, xi, cap);
    }

    /* Batched conflict-free applies straight from the tile (Yao et
     * al.'s parallel data-conflict management): remote-target lanes
     * always bank (routeInfluence never descends off-partition), so
     * their influences can be applied up front, before the walk
     * serializes over the remaining edges. Sum lanes scatter into
     * this worker's PRIVATE shadow buffer -- no atomics, no conflicts
     * -- with the same gate-flush rule as the per-edge path; min/max
     * lanes collapse contiguous parallel-edge runs with the fold
     * kernel and issue one strict-improvement CAS per target.
     * Everything here is ISA-independent in value terms, so forced-
     * scalar and SIMD runs stay bitwise-identical. */
    void
    prebankTile(VertexId, dep::LaneTile &tile)
    {
        for (std::uint32_t i = 0; i < tile.count;) {
            const VertexId t = g.target(tile.base + i);
            if (part.ownerOf(t) == curPart) {
                ++i;
                continue;
            }
            if (sum) {
                tile.consumed[i] = 1;
                ++me.edgeOps;
                ++me.prebanked;
                Value &sh = me.shadow[t];
                if (sh == 0.0)
                    me.touched.push_back(t);
                sh += tile.inf[i];
                if (std::abs(sh) >= gate) {
                    const Value flushed = sh;
                    sh = 0.0;
                    const Value after = addDelta(t, flushed);
                    if (worthChasing(kind, state[t].load(), after,
                                     gate))
                        requeue(t);
                }
                ++i;
            } else {
                std::uint32_t j = i + 1;
                while (j < tile.count
                       && g.target(tile.base + j) == t)
                    ++j;
                for (std::uint32_t k = i; k < j; ++k)
                    tile.consumed[k] = 1;
                me.edgeOps += j - i;
                me.prebanked += j - i;
                const Value x = kind == gas::AccumKind::Min
                    ? dep::fold::foldMin(tile.inf.data() + i, j - i)
                    : dep::fold::foldMax(tile.inf.data() + i, j - i);
                const Value after = improveDelta(t, x);
                if (worthChasing(kind, state[t].load(), after, gate))
                    requeue(t);
                i = j;
            }
        }
    }

    std::uint32_t
    pathOfFirstEdge(EdgeId e) const
    {
        const auto it = pathOfFirst.find(e);
        return it == pathOfFirst.end() ? dep::WalkTrack::kNone
                                       : it->second;
    }

    /* Cross-partition sum deposit: plain write into this worker's own
     * shadow, merged by the range owner at the barrier. */
    void
    bankShadow(VertexId t, Value inf)
    {
        Value &sh = me.shadow[t];
        if (sh == 0.0)
            me.touched.push_back(t);
        sh += inf;
    }

    /* Cross-round carry maintenance: the first write to a vertex's
     * delta slot since the owner's last scan enrolls it in the
     * owner's next-round candidate list. The `carried` bit dedups
     * globally; the trySet winner alone appends, into its own
     * per-owner outbox, so no list is written concurrently. Every
     * delta-slot mutation funnels through addDelta/improveDelta,
     * which is what makes the carry invariant ("non-identity delta
     * implies carry membership") hold without a rescan. */
    void
    noteDeltaWrite(VertexId t)
    {
        if (!carryOn || carried.test(t))
            return;
        if (!carried.trySet(t))
            return;
        me.carryOut[part.ownerOf(t)].push_back(t);
    }

    /* Both delta store paths delegate to the shared, +-0-audited CAS
     * helpers next to canon() in fold_kernels.hh. */
    Value
    addDelta(VertexId t, Value inf)
    {
        const Value after = dep::fold::accumSlotAdd(delta[t], inf);
        noteDeltaWrite(t);
        return after;
    }

    Value
    improveDelta(VertexId t, Value inf)
    {
        const Value after =
            dep::fold::improveSlot(delta[t], kind, inf);
        noteDeltaWrite(t);
        return after;
    }

    /* Requeue t as a fresh root on this worker's own deque (at most
     * once per vertex per round; the bound sizes rootVec/deque). The
     * outstanding increment precedes the push so no worker can observe
     * a transient zero while the chunk is in flight. */
    void
    requeue(VertexId t)
    {
        if (!queued.trySet(t))
            return;
        S.outstanding.fetch_add(1);
        dg_assert(me.rootVec.size() < me.rootVec.capacity(),
                  "parallel rootVec reserve bug");
        const auto idx = static_cast<std::uint32_t>(me.rootVec.size());
        me.rootVec.push_back(t);
        const bool ok = me.deque.push(packChunk(me.id, idx, idx + 1));
        dg_assert(ok, "parallel work deque overflow");
    }

    /* Pure chain influence by folding per-edge EdgeCompute along the
     * path -- bit-identical to what the walk itself would deliver
     * (mu*d + xi evaluation rounds differently, which would make
     * min/max fixpoints depend on whether a shortcut fired). */
    Value
    foldPath(const graph::CorePath &cp, Value d) const
    {
        Value x = d;
        for (std::size_t k = 0; k < cp.edges.size(); ++k)
            x = alg.edgeCompute(g, cp.vertices[k], cp.edges[k], x);
        return x;
    }

    std::optional<Value>
    fireShortcut(std::uint32_t pid, const graph::CorePath &cp,
                 Value d_root)
    {
        if (part.ownerOf(cp.tail) == curPart)
            return std::nullopt; // local tails get the chain anyway
        ++me.hubLookups;
        const auto f = loadAvailable(entries[pid]);
        if (!f)
            return std::nullopt;
        ++me.hubHits;
        ++me.shortcuts;
        const Value x = sum ? (*f)(d_root) : foldPath(cp, d_root);
        obs::span::instant("parallel", "shortcut", "tail",
                           static_cast<std::uint64_t>(cp.tail));
        const Value after =
            sum ? addDelta(cp.tail, x) : improveDelta(cp.tail, x);
        if (worthChasing(kind, state[cp.tail].load(), after, gate))
            requeue(cp.tail);
        return x;
    }

    void
    observeTail(std::uint32_t pid, const graph::CorePath &,
                const dep::WalkTrack &tr)
    {
        auto &en = entries[pid];
        const auto prior =
            static_cast<dep::EntryFlag>(en.flag.load());
        const auto r = observeNative(en, tr.basisIn, tr.xPure,
                                     tr.composed, fit);
        if (r == ObserveResult::Sampled
            || r == ObserveResult::Promoted) {
            ++me.ddmuObs;
            if (prior == dep::EntryFlag::N)
                ++me.inserts;
        }
    }

    /* Fictitious edge / early-exit compensation (sum only by
     * construction): ride the shadow path so the -fired deposit meets
     * the +fired push at the barrier merge exactly. */
    void
    fictitiousReset(VertexId tail, Value fired)
    {
        bankShadow(tail, -fired);
    }

    void
    cancelShortcut(VertexId tail, Value fired)
    {
        bankShadow(tail, -fired);
    }

    dep::Route
    routeInfluence(VertexId t, Value inf)
    {
        if (part.ownerOf(t) != curPart) {
            /* Remote: the paper's engine inserts cross-core tails into
             * the owning core's circular queue so chains keep moving
             * within the round (Sec. III-B2). Natively that is a push:
             * deliver and requeue when the influence clears the chase
             * gate -- otherwise rounds scale with the partition count
             * and strong scaling dies. Sub-gate influence (the bulk of
             * a damped sum fan-out) stays atomic-free in this worker's
             * shadow and merges at the barrier. Min/max CAS is
             * idempotent, so in-place delivery is always safe. */
            if (sum) {
                /* Bank atomic-free, but once THIS worker's private
                 * accumulation for t clears the gate, flush it into
                 * the shared delta and requeue -- the stale `touched`
                 * entry is harmless (the merge skips zero slots). */
                Value &sh = me.shadow[t];
                if (sh == 0.0)
                    me.touched.push_back(t);
                sh += inf;
                if (std::abs(sh) >= gate) {
                    const Value flushed = sh;
                    sh = 0.0;
                    const Value after = addDelta(t, flushed);
                    if (worthChasing(kind, state[t].load(), after,
                                     gate))
                        requeue(t);
                }
            } else {
                const Value after = improveDelta(t, inf);
                if (worthChasing(kind, state[t].load(), after, gate))
                    requeue(t);
            }
            return dep::Route::Banked;
        }
        const Value after =
            sum ? addDelta(t, inf) : improveDelta(t, inf);
        if (!worthChasing(kind, state[t].load(), after, gate))
            return dep::Route::Banked;
        if (cs.isHubOrCore(t)) {
            requeue(t); // H'' cut: t restarts as its own root
            return dep::Route::Banked;
        }
        if (claimed.test(t))
            return dep::Route::Banked; // applied this round already
        return dep::Route::Descend;
    }

    bool markDescended(VertexId t) { return claimed.trySet(t); }

    void overflowRoot(VertexId t) { requeue(t); }

    /** Round-loop body for one root (the executor round loop's gate
     * checks, then the shared walk). The claim happens before the walk
     * because enterRoot cannot abort it. */
    void
    workRoot(VertexId v, unsigned stack_depth)
    {
        curPart = part.ownerOf(v);
        const Value d = delta[v].load();
        if (d == ident || claimed.test(v)
            || !clearsGate(kind, state[v].load(), d, gate))
            return;
        if (!claimed.trySet(v))
            return;
        ++me.walks;
        dep::walkChain(g, cs, stack_depth, v, me.stack, me.lanes,
                       *this);
    }
};

} // namespace

unsigned
resolveHostThreads(unsigned requested)
{
    unsigned t =
        requested ? requested : std::thread::hardware_concurrency();
    if (t == 0)
        t = 1;
    return std::min(t, kMaxThreads);
}

ParallelEngine::ParallelEngine(EngineOptions opt)
    : opt_(opt)
{}

std::string
ParallelEngine::name() const
{
    return "Parallel";
}

RunResult
ParallelEngine::run(const graph::Graph &g, gas::Algorithm &alg,
                    sim::Machine &)
{
    alg.prepare(g);

    const VertexId n = g.numVertices();
    const auto kind = alg.accumKind();
    const Value ident = alg.identity();
    const Value eps = alg.epsilon();
    const bool is_sum = kind == gas::AccumKind::Sum;
    const bool lanes_on = alg.affineEdgeCompute();
    const bool carry_on = opt_.carryActiveList;

    unsigned T = resolveHostThreads(opt_.hostThreads);
    if (n > 0)
        T = std::min<unsigned>(T, n);
    else
        T = 1;
    const unsigned chunk0 = std::max(1u, opt_.chunkSize);
    /* Size deques for the smallest granularity the controller can
     * reach, so adaptive rounds never overflow them. */
    const unsigned min_chunk =
        opt_.adaptiveChunking ? std::min(chunk0, kChunkMin) : chunk0;

    const graph::Partitioning part(g, T);
    const bool hub_on = opt_.hubIndexEnabled && alg.transformable();
    const graph::HubSet hubs(g, opt_.hub);
    const graph::CoreSubgraph cs(g, hubs, 4 * opt_.stackDepth, &part);
    const auto path_of_first = dep::indexablePaths(cs, part, kind);
    const dep::FitMode fit = is_sum ? dep::FitMode::TwoPoint
                                    : dep::FitMode::Compose;
    dg_assert(static_cast<std::uint64_t>(n)
                      + part.range(0).size() < kIdxMask,
              "graph too large for packed chunk descriptors");

    /* NUMA placement: probe once per run; on single-node hosts (and
     * with --numa=off) every worker maps to node 0 and the steal
     * order degenerates to the historical rotation. */
    const bool numa_on = opt_.numa == NumaMode::Auto;
    const NumaTopology topo =
        numa_on ? probeNumaTopology() : NumaTopology{};
    const unsigned num_nodes = numa_on ? topo.numNodes() : 1;
    std::vector<unsigned> node_of(T, 0);
    if (num_nodes > 1)
        for (unsigned w = 0; w < T; ++w)
            node_of[w] = nodeOfWorker(w, T, num_nodes);

    std::vector<NativeEntry> entries(cs.paths().size());
    std::uint64_t seeded = 0;
    if (hub_on && opt_.hubSeed && !opt_.hubSeed->empty()) {
        dep::forEachSurvivingSeed(
            cs, path_of_first, *opt_.hubSeed,
            [&](std::uint32_t pid, const HubDependency &d) {
                auto &en = entries[pid];
                en.mu.store(d.func.mu);
                en.xi.store(d.func.xi);
                en.cap.store(d.func.cap);
                en.flag.store(
                    static_cast<std::uint8_t>(dep::EntryFlag::A));
                ++seeded;
            });
    }

    /* state/delta live in first-touch arrays: with NUMA on, each
     * worker constructs its own partition's elements after binding to
     * its node (below), so the pages fault in locally; with NUMA off
     * the main thread constructs everything, as before. */
    FirstTouchArray<std::atomic<Value>> stateArr(n), deltaArr(n);
    const auto initRange = [&](VertexId b, VertexId e) {
        stateArr.constructRange(b, e, [&](std::size_t v) {
            return canon(
                alg.initState(g, static_cast<VertexId>(v)));
        });
        deltaArr.constructRange(b, e, [&](std::size_t v) {
            return canon(
                alg.initDelta(g, static_cast<VertexId>(v)));
        });
    };
    if (!numa_on)
        initRange(0, n);
    std::atomic<Value> *state = stateArr.data();
    std::atomic<Value> *delta = deltaArr.data();

    AtomicBitmap claimed(n), queued(n), carried(n);
    SharedRound S;
    S.chunk = chunk0;
    std::barrier<> bar(static_cast<std::ptrdiff_t>(T));

    std::vector<std::unique_ptr<WorkerCtx>> ctxs;
    ctxs.reserve(T);
    for (unsigned w = 0; w < T; ++w) {
        ctxs.push_back(std::make_unique<WorkerCtx>(
            w, part.range(w), n, min_chunk, T));
        ctxs.back()->victims = stealOrder(w, T, node_of);
    }

    auto &reg = obs::registry();
    const obs::Labels labels{{"engine", "Parallel"}};
    auto &c_walks = reg.counter("dg_engine_chain_walks_total",
                                "HDTL chain walks (root traversals)",
                                labels);
    auto &c_shortcuts = reg.counter("dg_engine_shortcuts_total",
                                    "Hub-index shortcut firings",
                                    labels);
    auto &c_ddmu = reg.counter("dg_engine_ddmu_observations_total",
                               "DDMU dependency-fit observations",
                               labels);
    auto &c_rounds = reg.counter("dg_engine_rounds_total",
                                 "Engine rounds executed", labels);
    auto &c_steals = reg.counter("dg_parallel_steals_total",
                                 "Chunks stolen between workers",
                                 labels);
    auto &c_waits = reg.counter(
        "dg_parallel_barrier_waits_total",
        "Idle waits (no local, stealable or pending work)", labels);
    auto &c_merge = reg.counter(
        "dg_parallel_shadow_merge_values_total",
        "Shadow delta values merged at round barriers", labels);
    auto &c_prebank = reg.counter(
        "dg_simd_prebanked_edges_total",
        "Edge influences batch-applied from lane tiles (conflict-free"
        " shadow scatter / folded parallel-edge CAS)",
        labels);
    auto &c_carried = reg.counter(
        "dg_parallel_active_carried_total",
        "Active vertices discovered via the cross-round carry lists"
        " (no full-range rescan)",
        labels);
    auto &c_fallback = reg.counter(
        "dg_parallel_rescan_fallbacks_total",
        "Carry-mode rounds where a worker fell back to a dense"
        " full-range rescan (frontier too dense for the carry list)",
        labels);
    auto &g_chunk = reg.gauge(
        "dg_parallel_chunk_size",
        "Work-stealing chunk granularity of the current/last round",
        labels);
    g_chunk.set(static_cast<double>(S.chunk));
    reg.gauge("dg_parallel_numa_nodes",
              "NUMA nodes the parallel engine places workers on",
              labels)
        .set(static_cast<double>(num_nodes));
    obs::span::instant("parallel", "simd_dispatch", "avx2",
                       dep::fold::activeIsa() == dep::fold::Isa::Avx2
                           ? 1
                           : 0);

    const auto wordShare = [&](unsigned w) {
        const std::size_t words = claimed.words.size();
        return std::pair<std::size_t, std::size_t>{
            words * w / T, words * (w + 1) / T};
    };

    auto workerLoop = [&](unsigned w) {
        auto &me = *ctxs[w];

        /* Placement prologue: bind to this worker's node (multi-node
         * hosts only; restored on scope exit so pool threads are not
         * left pinned), then fault in this partition's state/delta
         * pages and the worker-local buffers from here. */
        std::optional<ScopedAffinity> bind;
        if (num_nodes > 1)
            bind.emplace(topo.nodes[node_of[w]].cpus);
        if (numa_on)
            initRange(me.range.begin, me.range.end);
        me.initThreadLocal(n, is_sum, opt_.stackDepth);

        NativePolicy pol{g,       alg,     part,  cs,
                         path_of_first,    entries, state, delta,
                         claimed, queued,  carried, S,    me,
                         kind,    ident,   is_sum, hub_on, fit,
                         lanes_on, carry_on};

        for (unsigned round = 0;; ++round) {
            obs::span::Scoped roundSpan("parallel", "worker_round",
                                        "worker", me.id);

            /* Merge + clear + scan (own range / own word share). */
            if (is_sum && round > 0) {
                for (unsigned j = 0; j < T; ++j) {
                    auto &cj = *ctxs[j];
                    for (const VertexId v : cj.touched) {
                        if (!me.range.contains(v))
                            continue;
                        Value &sh = cj.shadow[v];
                        if (sh == 0.0)
                            continue; // consumed dup / exact cancel
                        pol.addDelta(v, sh);
                        sh = 0.0;
                        ++me.shadowMerged;
                    }
                }
            }
            if (carry_on) {
                /* Drain the outboxes: vertices other workers (or the
                 * merge just above) enrolled for this range since the
                 * last scan. Each entry won a `carried` trySet, so
                 * lists stay duplicate-free without re-checking. */
                for (unsigned j = 0; j < T; ++j) {
                    auto &in = ctxs[j]->carryOut[me.id];
                    me.carry.insert(me.carry.end(), in.begin(),
                                    in.end());
                    in.clear();
                }
            }
            const auto [wb, we] = wordShare(w);
            claimed.clearWordRange(wb, we);
            queued.clearWordRange(wb, we);
            me.actives.clear();
            me.laneBuf.clear();

            /* Active scan: walk the carried candidate list when it is
             * sparse; fall back to the dense full-range sweep when the
             * frontier covers most of the partition (sequential scan
             * beats chasing a near-total list) or carry is off. */
            const bool dense = !carry_on || round == 0
                || me.carry.size() * 4
                    >= static_cast<std::size_t>(me.range.size()) * 3;
            if (dense) {
                if (carry_on) {
                    for (const VertexId v : me.carry)
                        carried.clear(v);
                    me.carry.clear();
                    if (round > 0)
                        ++me.rescans;
                }
                for (VertexId v = me.range.begin; v < me.range.end;
                     ++v) {
                    const Value d = delta[v].load();
                    if (d != ident
                        && gas::wouldChange(kind, state[v].load(), d,
                                            eps)) {
                        me.actives.push_back(v);
                        me.laneBuf.push_back(std::abs(d));
                        if (carry_on) {
                            carried.trySet(v);
                            me.carry.push_back(v);
                        }
                    }
                }
            } else {
                for (const VertexId v : me.carry) {
                    const Value d = delta[v].load();
                    if (d != ident
                        && gas::wouldChange(kind, state[v].load(), d,
                                            eps)) {
                        me.actives.push_back(v);
                        me.laneBuf.push_back(std::abs(d));
                    } else {
                        /* Stale-active eviction: the slot is spent
                         * (or inert); any future delta write re-adds
                         * the vertex through noteDeltaWrite. */
                        carried.clear(v);
                    }
                }
                me.carry.assign(me.actives.begin(),
                                me.actives.end());
                me.carriedActives += me.actives.size();
            }
            /* Gate numerator via the deterministic vector fold (one
             * fixed reduction order per worker regardless of ISA). */
            me.absSum = dep::fold::foldSum(me.laneBuf.data(),
                                           me.laneBuf.size());
            bar.arrive_and_wait();

            /* Reduce: the round gate needs the global active set; the
             * chunk controller folds the last round's steal/idle
             * feedback into this round's granularity. */
            if (me.id == 0) {
                std::size_t total = 0;
                Value abs_sum = 0.0;
                for (unsigned j = 0; j < T; ++j) {
                    total += ctxs[j]->actives.size();
                    abs_sum += ctxs[j]->absSum;
                }
                S.activeTotal = total;
                S.gate = (is_sum && total)
                    ? std::max(eps, kSelectFactor * abs_sum
                                   / static_cast<Value>(total))
                    : eps;
                S.converged = total == 0;
                S.done = total == 0 || round >= opt_.maxRounds;
                S.roundsRun = round;
                S.roundActives.push_back(total);
                if (opt_.adaptiveChunking && round > 0) {
                    std::uint64_t st = 0, ch = 0;
                    for (unsigned j = 0; j < T; ++j) {
                        st += ctxs[j]->stealsRound;
                        ch += ctxs[j]->chunksRound;
                    }
                    /* Deterministic-by-construction: a pure function
                     * of the previous round's aggregated counters.
                     * Heavy stealing means the seeded chunks were too
                     * coarse to balance the skew -- halve; a steal-
                     * free round with many chunks means deque churn
                     * (push/pop/outstanding traffic) dominates --
                     * grow. */
                    if (ch > 0 && st * 4 >= ch)
                        S.chunk = std::max(kChunkMin, S.chunk / 2);
                    else if (st * 32 <= ch
                             && ch >= std::uint64_t{T} * 64)
                        S.chunk = std::min(kChunkMax, S.chunk * 2);
                    g_chunk.set(static_cast<double>(S.chunk));
                }
            }
            bar.arrive_and_wait();
            if (S.done)
                break;
            pol.gate = S.gate;
            const unsigned chunk = S.chunk;

            /* Seed own deque, most-impactful-first; reversed pushes
             * let the owner pop the top-priority chunk while thieves
             * steal from the tail end. The sort is an in-place keyed
             * std::sort over reused scratch (stable_sort allocated a
             * temp buffer every round) with the vertex id as the tie
             * break, so the seed order is a function of (delta,
             * id) alone -- independent of carry-list insertion
             * order. */
            obs::span::Scoped seedSpan("parallel", "round_seed",
                                       "worker", me.id);
            me.touched.clear();
            me.deque.reset();
            me.rootVec.clear();
            me.sortKeys.clear();
            me.stealsRound = 0;
            me.idleRound = 0;
            for (const VertexId v : me.actives) {
                const Value d = delta[v].load();
                if (!clearsGate(kind, state[v].load(), d, S.gate))
                    continue;
                Value key = 0.0;
                switch (kind) {
                  case gas::AccumKind::Sum:
                    key = -std::abs(d);
                    break;
                  case gas::AccumKind::Min:
                    key = d;
                    break;
                  case gas::AccumKind::Max:
                    key = -d;
                    break;
                }
                me.sortKeys.emplace_back(key, v);
            }
            std::sort(me.sortKeys.begin(), me.sortKeys.end());
            for (const auto &[key, v] : me.sortKeys) {
                static_cast<void>(key);
                me.rootVec.push_back(v);
                queued.trySet(v);
            }
            const auto m =
                static_cast<std::uint32_t>(me.rootVec.size());
            const std::uint32_t nch = (m + chunk - 1) / chunk;
            me.chunksRound = nch;
            S.outstanding.fetch_add(nch);
            for (std::uint32_t c = nch; c > 0; --c) {
                const std::uint32_t b = (c - 1) * chunk;
                const bool ok = me.deque.push(
                    packChunk(w, b, std::min(m, b + chunk)));
                dg_assert(ok, "parallel seed deque overflow");
            }
            bar.arrive_and_wait();

            /* Work until the round is globally drained. */
            const auto processChunk = [&](std::uint64_t desc) {
                const auto owner =
                    static_cast<unsigned>(desc >> 56);
                const auto b = static_cast<std::uint32_t>(
                    (desc >> 28) & kIdxMask);
                const auto e =
                    static_cast<std::uint32_t>(desc & kIdxMask);
                const VertexId *roots = ctxs[owner]->rootPtr;
                for (std::uint32_t i = b; i < e; ++i)
                    pol.workRoot(roots[i], opt_.stackDepth);
                S.outstanding.fetch_sub(1);
            };
            for (;;) {
                if (const auto d = me.deque.pop()) {
                    processChunk(*d);
                    continue;
                }
                bool stole = false;
                for (const unsigned vic : me.victims) {
                    if (const auto d = ctxs[vic]->deque.steal()) {
                        ++me.steals;
                        ++me.stealsRound;
                        obs::span::instant("parallel", "steal",
                                           "victim", vic);
                        processChunk(*d);
                        stole = true;
                        break;
                    }
                }
                if (stole)
                    continue;
                if (S.outstanding.load() == 0)
                    break;
                ++me.idleWaits;
                ++me.idleRound;
                std::this_thread::yield();
            }
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(T - 1);
    for (unsigned w = 1; w < T; ++w)
        threads.emplace_back(workerLoop, w);
    workerLoop(0);
    for (auto &t : threads)
        t.join();
    const auto t1 = std::chrono::steady_clock::now();

    RunResult result;
    auto &mx = result.metrics;
    mx.coresUsed = T;
    mx.rounds = S.roundsRun;
    mx.converged = S.converged;
    mx.chunkSizeFinal = S.chunk;
    mx.makespan = static_cast<Cycles>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    if (!mx.converged)
        dg_warn("Parallel hit the round limit before converging");

    std::uint64_t walks = 0, steals = 0, waits = 0, merged = 0;
    std::uint64_t shortcuts = 0, ddmu_obs = 0, prebanked = 0;
    for (const auto &c : ctxs) {
        mx.updates += c->updates;
        mx.edgeOps += c->edgeOps;
        mx.hubIndexLookups += c->hubLookups;
        mx.hubIndexHits += c->hubHits;
        mx.hubIndexInserts += c->inserts;
        mx.shortcutsApplied += c->shortcuts;
        mx.activesCarried += c->carriedActives;
        mx.rescanFallbacks += c->rescans;
        walks += c->walks;
        steals += c->steals;
        waits += c->idleWaits;
        merged += c->shadowMerged;
        shortcuts += c->shortcuts;
        ddmu_obs += c->ddmuObs;
        prebanked += c->prebanked;
    }
    mx.hubIndexSeeded = seeded;
    mx.hubIndexBytes = path_of_first.size() * 32; // paper entry layout
    c_walks.inc(walks);
    c_shortcuts.inc(shortcuts);
    c_ddmu.inc(ddmu_obs);
    c_rounds.inc(mx.rounds);
    c_steals.inc(steals);
    c_waits.inc(waits);
    c_merge.inc(merged);
    c_prebank.inc(prebanked);
    c_carried.inc(mx.activesCarried);
    c_fallback.inc(mx.rescanFallbacks);
    dep::fold::publishMetrics();

    if (opt_.hubExport) {
        opt_.hubExport->deps.clear();
        std::vector<std::uint32_t> pids;
        pids.reserve(path_of_first.size());
        for (const auto &[e, pid] : path_of_first) {
            static_cast<void>(e);
            pids.push_back(pid);
        }
        std::sort(pids.begin(), pids.end());
        for (const auto pid : pids) {
            const auto &en = entries[pid];
            if (static_cast<dep::EntryFlag>(en.flag.load())
                != dep::EntryFlag::A)
                continue;
            const auto &p = cs.paths()[pid];
            opt_.hubExport->deps.push_back(
                {p.head, p.tail, p.vertices,
                 {en.mu.load(), en.xi.load(), en.cap.load()}});
        }
    }

    result.roundActives = std::move(S.roundActives);
    result.states.resize(n);
    for (VertexId v = 0; v < n; ++v)
        result.states[v] = state[v].load(std::memory_order_relaxed);
    return result;
}

EnginePtr
makeParallel(EngineOptions opt)
{
    return std::make_unique<ParallelEngine>(opt);
}

} // namespace depgraph::runtime
