#include "runtime/parallel_engine.hh"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "depgraph/chain_walk.hh"
#include "graph/core_paths.hh"
#include "graph/hub.hh"
#include "graph/partition.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "runtime/selective.hh"
#include "runtime/worksteal.hh"

namespace depgraph::runtime
{

namespace dep = ::depgraph::dep;

namespace
{

constexpr unsigned kMaxThreads = 16;

/* -0.0 canonicalization and the atomic accumulation helpers moved to
 * fold_kernels.hh so both engines and the lane kernels share one
 * audited +-0 contract (see the comment block there). */
using dep::fold::canon;

/** Shared atomic bitmap; words cleared in parallel by word ranges
 * (vertex-range splits would race on boundary words). */
struct AtomicBitmap
{
    std::vector<std::atomic<std::uint64_t>> words;

    explicit AtomicBitmap(std::size_t bits)
        : words((bits + 63) / 64)
    {}

    /** True when this call set the bit (it was clear). */
    bool
    trySet(VertexId v)
    {
        const auto mask = std::uint64_t{1} << (v & 63u);
        return (words[v >> 6].fetch_or(mask) & mask) == 0;
    }

    bool
    test(VertexId v) const
    {
        const auto mask = std::uint64_t{1} << (v & 63u);
        return (words[v >> 6].load() & mask) != 0;
    }

    void
    clearWordRange(std::size_t b, std::size_t e)
    {
        for (std::size_t i = b; i < e; ++i)
            words[i].store(0, std::memory_order_relaxed);
    }
};

/* Chunk descriptors: owner worker in the top byte, [begin, end) indices
 * into that worker's rootVec below. Owners append requeued roots past
 * the seeded prefix; capacity is reserved up front so thieves can read
 * through a stable pointer. */
constexpr std::uint64_t kIdxMask = (std::uint64_t{1} << 28) - 1;

inline std::uint64_t
packChunk(unsigned owner, std::uint32_t b, std::uint32_t e)
{
    return (static_cast<std::uint64_t>(owner) << 56)
        | (static_cast<std::uint64_t>(b) << 28) | e;
}

/** One direct-dependency entry of the native hub table, guarded by a
 * seqlock (see docs/PARALLEL.md for the ordering contract). All fields
 * are atomics so the tsan job sees every happens-before edge; seq_cst
 * keeps the protocol obviously correct, and entry traffic (shortcut
 * firings + tail observations) is far off the per-edge hot path. */
struct alignas(64) NativeEntry
{
    std::atomic<std::uint32_t> seq{0}; ///< even = stable, odd = writing
    std::atomic<std::uint8_t> flag{
        static_cast<std::uint8_t>(dep::EntryFlag::N)};
    std::atomic<Value> mu{0.0};
    std::atomic<Value> xi{0.0};
    std::atomic<Value> cap{kInfinity};
    std::atomic<Value> sampleIn{0.0};
    std::atomic<Value> sampleOut{0.0};
};

/** Plain mirror the shared ddmuFitStep state machine operates on. */
struct ShimEntry
{
    dep::EntryFlag flag;
    gas::LinearFunc func;
    Value sampleIn;
    Value sampleOut;
};

/** Seqlock read of an Available entry's function; nullopt on a miss or
 * when racing a writer (the caller just skips the shortcut -- losing
 * one firing costs a round of latency, never correctness). */
inline std::optional<gas::LinearFunc>
loadAvailable(const NativeEntry &en)
{
    const auto s1 = en.seq.load();
    if (s1 & 1u)
        return std::nullopt;
    if (static_cast<dep::EntryFlag>(en.flag.load())
        != dep::EntryFlag::A)
        return std::nullopt;
    gas::LinearFunc f{en.mu.load(), en.xi.load(), en.cap.load()};
    if (en.seq.load() != s1)
        return std::nullopt;
    return f;
}

enum class ObserveResult
{
    Busy,    ///< another writer held the seqlock; sample dropped
    Settled, ///< entry already Available
    Sampled,
    Promoted,
};

/** Single-writer fitting step: take the seqlock, run the shared
 * N -> I -> A machine on a plain copy, publish. A lost CAS just drops
 * the sample -- observations are plentiful. */
inline ObserveResult
observeNative(NativeEntry &en, Value in, Value out,
              const gas::LinearFunc &composed, dep::FitMode mode)
{
    auto s = en.seq.load();
    if (s & 1u)
        return ObserveResult::Busy;
    if (static_cast<dep::EntryFlag>(en.flag.load())
        == dep::EntryFlag::A)
        return ObserveResult::Settled;
    if (!en.seq.compare_exchange_strong(s, s + 1))
        return ObserveResult::Busy;

    ShimEntry shim{static_cast<dep::EntryFlag>(en.flag.load()),
                   {en.mu.load(), en.xi.load(), en.cap.load()},
                   en.sampleIn.load(), en.sampleOut.load()};
    const auto outcome = dep::ddmuFitStep(shim, in, out, composed,
                                          mode);
    en.flag.store(static_cast<std::uint8_t>(shim.flag));
    en.mu.store(shim.func.mu);
    en.xi.store(shim.func.xi);
    en.cap.store(shim.func.cap);
    en.sampleIn.store(shim.sampleIn);
    en.sampleOut.store(shim.sampleOut);
    en.seq.store(s + 2);

    switch (outcome) {
      case dep::FitOutcome::Promoted:
        return ObserveResult::Promoted;
      case dep::FitOutcome::Sampled:
        return ObserveResult::Sampled;
      case dep::FitOutcome::Kept:
        return ObserveResult::Settled;
    }
    return ObserveResult::Settled;
}

/** Per-worker state, cache-line separated. */
struct alignas(64) WorkerCtx
{
    unsigned id = 0;
    graph::PartitionRange range;
    WorkStealDeque deque;

    std::vector<VertexId> rootVec; ///< seeded + requeued roots
    const VertexId *rootPtr = nullptr;
    std::vector<Value> shadow;      ///< sum: cross-partition deposits
    std::vector<VertexId> touched;  ///< shadow slots possibly != ident
    std::vector<dep::WalkFrame> stack;
    dep::FoldScratch lanes;         ///< per-depth SoA edge-block tiles
    std::vector<VertexId> actives;  ///< seeding scratch (unfiltered)
    std::vector<Value> laneBuf;     ///< |delta| lanes for the gate fold
    Value absSum = 0.0;

    std::uint64_t updates = 0, edgeOps = 0, walks = 0;
    std::uint64_t steals = 0, idleWaits = 0, shadowMerged = 0;
    std::uint64_t hubLookups = 0, hubHits = 0, shortcuts = 0;
    std::uint64_t ddmuObs = 0, inserts = 0, prebanked = 0;

    WorkerCtx(unsigned w, graph::PartitionRange r, VertexId n,
              unsigned chunk, bool is_sum, unsigned stack_depth)
        : id(w), range(r),
          deque((r.size() + chunk - 1) / std::max(1u, chunk) + n + 2)
    {
        rootVec.reserve(static_cast<std::size_t>(r.size()) + n);
        rootPtr = rootVec.data();
        if (is_sum) {
            shadow.assign(n, 0.0);
            touched.reserve(n);
        }
        stack.reserve(stack_depth + 1);
        lanes.ensureDepth(stack_depth);
        actives.reserve(r.size());
        laneBuf.reserve(r.size());
    }
};

/** Round-global state; plain fields are written by worker 0 between
 * barrier phases only. */
struct SharedRound
{
    std::atomic<std::int64_t> outstanding{0};
    Value gate = 0.0;
    std::size_t activeTotal = 0;
    bool done = false;
    bool converged = false;
    unsigned roundsRun = 0;
};

/**
 * The native implementation of the chain_walk.hh Policy contract: no
 * cycle charging; deliveries go through atomics and per-worker shadow
 * buffers instead of simulated queues.
 */
struct NativePolicy
{
    const graph::Graph &g;
    gas::Algorithm &alg;
    const graph::Partitioning &part;
    const graph::CoreSubgraph &cs;
    const std::unordered_map<EdgeId, std::uint32_t> &pathOfFirst;
    std::vector<NativeEntry> &entries;
    std::vector<std::atomic<Value>> &state;
    std::vector<std::atomic<Value>> &delta;
    AtomicBitmap &claimed;
    AtomicBitmap &queued;
    SharedRound &S;
    WorkerCtx &me;
    const gas::AccumKind kind;
    const Value ident;
    const bool sum;
    const bool hubOn;
    const dep::FitMode fit;
    const bool lanesOn; ///< batch EdgeCompute through lane tiles?

    Value gate = 0.0;     ///< copied from SharedRound each round
    unsigned curPart = 0; ///< partition of the root being walked

    bool hubEnabled() const { return hubOn; }
    bool isSum() const { return sum; }

    /* Apply a claimed vertex's pending delta. Only the claim winner
     * reaches here, so the state store cannot race another store; the
     * delta exchange is an RMW, so concurrent accumulators never lose
     * a contribution (anything landing after the exchange waits in the
     * slot for the next round). */
    Value
    applyVertex(VertexId v)
    {
        const Value d = canon(delta[v].exchange(ident));
        state[v].store(
            canon(gas::applyAccum(kind, state[v].load(), d)));
        ++me.updates;
        return d;
    }

    Value enterRoot(VertexId v, bool) { return applyVertex(v); }
    Value enterVertex(VertexId v) { return applyVertex(v); }

    void chargeEdge(VertexId, EdgeId, VertexId) { ++me.edgeOps; }

    Value
    influence(VertexId src, EdgeId e, Value d)
    {
        return alg.edgeCompute(g, src, e, d);
    }

    gas::LinearFunc
    edgeFunc(VertexId src, EdgeId e)
    {
        return alg.edgeFunc(g, src, e);
    }

    /* ---- Frontier/batch extension. ---- */
    bool lanesEnabled() const { return lanesOn; }

    void
    gatherEdgeFuncs(VertexId v, EdgeId eBegin, std::uint32_t cnt,
                    Value *mu, Value *xi, Value *cap)
    {
        alg.edgeFuncBlock(g, v, eBegin, cnt, mu, xi, cap);
    }

    /* Batched conflict-free applies straight from the tile (Yao et
     * al.'s parallel data-conflict management): remote-target lanes
     * always bank (routeInfluence never descends off-partition), so
     * their influences can be applied up front, before the walk
     * serializes over the remaining edges. Sum lanes scatter into
     * this worker's PRIVATE shadow buffer -- no atomics, no conflicts
     * -- with the same gate-flush rule as the per-edge path; min/max
     * lanes collapse contiguous parallel-edge runs with the fold
     * kernel and issue one strict-improvement CAS per target.
     * Everything here is ISA-independent in value terms, so forced-
     * scalar and SIMD runs stay bitwise-identical. */
    void
    prebankTile(VertexId, dep::LaneTile &tile)
    {
        for (std::uint32_t i = 0; i < tile.count;) {
            const VertexId t = g.target(tile.base + i);
            if (part.ownerOf(t) == curPart) {
                ++i;
                continue;
            }
            if (sum) {
                tile.consumed[i] = 1;
                ++me.edgeOps;
                ++me.prebanked;
                Value &sh = me.shadow[t];
                if (sh == 0.0)
                    me.touched.push_back(t);
                sh += tile.inf[i];
                if (std::abs(sh) >= gate) {
                    const Value flushed = sh;
                    sh = 0.0;
                    const Value after = addDelta(t, flushed);
                    if (worthChasing(kind, state[t].load(), after,
                                     gate))
                        requeue(t);
                }
                ++i;
            } else {
                std::uint32_t j = i + 1;
                while (j < tile.count
                       && g.target(tile.base + j) == t)
                    ++j;
                for (std::uint32_t k = i; k < j; ++k)
                    tile.consumed[k] = 1;
                me.edgeOps += j - i;
                me.prebanked += j - i;
                const Value x = kind == gas::AccumKind::Min
                    ? dep::fold::foldMin(tile.inf.data() + i, j - i)
                    : dep::fold::foldMax(tile.inf.data() + i, j - i);
                const Value after = improveDelta(t, x);
                if (worthChasing(kind, state[t].load(), after, gate))
                    requeue(t);
                i = j;
            }
        }
    }

    std::uint32_t
    pathOfFirstEdge(EdgeId e) const
    {
        const auto it = pathOfFirst.find(e);
        return it == pathOfFirst.end() ? dep::WalkTrack::kNone
                                       : it->second;
    }

    /* Cross-partition sum deposit: plain write into this worker's own
     * shadow, merged by the range owner at the barrier. */
    void
    bankShadow(VertexId t, Value inf)
    {
        Value &sh = me.shadow[t];
        if (sh == 0.0)
            me.touched.push_back(t);
        sh += inf;
    }

    /* Both delta store paths delegate to the shared, +-0-audited CAS
     * helpers next to canon() in fold_kernels.hh. */
    Value
    addDelta(VertexId t, Value inf)
    {
        return dep::fold::accumSlotAdd(delta[t], inf);
    }

    Value
    improveDelta(VertexId t, Value inf)
    {
        return dep::fold::improveSlot(delta[t], kind, inf);
    }

    /* Requeue t as a fresh root on this worker's own deque (at most
     * once per vertex per round; the bound sizes rootVec/deque). The
     * outstanding increment precedes the push so no worker can observe
     * a transient zero while the chunk is in flight. */
    void
    requeue(VertexId t)
    {
        if (!queued.trySet(t))
            return;
        S.outstanding.fetch_add(1);
        dg_assert(me.rootVec.size() < me.rootVec.capacity(),
                  "parallel rootVec reserve bug");
        const auto idx = static_cast<std::uint32_t>(me.rootVec.size());
        me.rootVec.push_back(t);
        const bool ok = me.deque.push(packChunk(me.id, idx, idx + 1));
        dg_assert(ok, "parallel work deque overflow");
    }

    /* Pure chain influence by folding per-edge EdgeCompute along the
     * path -- bit-identical to what the walk itself would deliver
     * (mu*d + xi evaluation rounds differently, which would make
     * min/max fixpoints depend on whether a shortcut fired). */
    Value
    foldPath(const graph::CorePath &cp, Value d) const
    {
        Value x = d;
        for (std::size_t k = 0; k < cp.edges.size(); ++k)
            x = alg.edgeCompute(g, cp.vertices[k], cp.edges[k], x);
        return x;
    }

    std::optional<Value>
    fireShortcut(std::uint32_t pid, const graph::CorePath &cp,
                 Value d_root)
    {
        if (part.ownerOf(cp.tail) == curPart)
            return std::nullopt; // local tails get the chain anyway
        ++me.hubLookups;
        const auto f = loadAvailable(entries[pid]);
        if (!f)
            return std::nullopt;
        ++me.hubHits;
        ++me.shortcuts;
        const Value x = sum ? (*f)(d_root) : foldPath(cp, d_root);
        obs::span::instant("parallel", "shortcut", "tail",
                           static_cast<std::uint64_t>(cp.tail));
        const Value after =
            sum ? addDelta(cp.tail, x) : improveDelta(cp.tail, x);
        if (worthChasing(kind, state[cp.tail].load(), after, gate))
            requeue(cp.tail);
        return x;
    }

    void
    observeTail(std::uint32_t pid, const graph::CorePath &,
                const dep::WalkTrack &tr)
    {
        auto &en = entries[pid];
        const auto prior =
            static_cast<dep::EntryFlag>(en.flag.load());
        const auto r = observeNative(en, tr.basisIn, tr.xPure,
                                     tr.composed, fit);
        if (r == ObserveResult::Sampled
            || r == ObserveResult::Promoted) {
            ++me.ddmuObs;
            if (prior == dep::EntryFlag::N)
                ++me.inserts;
        }
    }

    /* Fictitious edge / early-exit compensation (sum only by
     * construction): ride the shadow path so the -fired deposit meets
     * the +fired push at the barrier merge exactly. */
    void
    fictitiousReset(VertexId tail, Value fired)
    {
        bankShadow(tail, -fired);
    }

    void
    cancelShortcut(VertexId tail, Value fired)
    {
        bankShadow(tail, -fired);
    }

    dep::Route
    routeInfluence(VertexId t, Value inf)
    {
        if (part.ownerOf(t) != curPart) {
            /* Remote: the paper's engine inserts cross-core tails into
             * the owning core's circular queue so chains keep moving
             * within the round (Sec. III-B2). Natively that is a push:
             * deliver and requeue when the influence clears the chase
             * gate -- otherwise rounds scale with the partition count
             * and strong scaling dies. Sub-gate influence (the bulk of
             * a damped sum fan-out) stays atomic-free in this worker's
             * shadow and merges at the barrier. Min/max CAS is
             * idempotent, so in-place delivery is always safe. */
            if (sum) {
                /* Bank atomic-free, but once THIS worker's private
                 * accumulation for t clears the gate, flush it into
                 * the shared delta and requeue -- the stale `touched`
                 * entry is harmless (the merge skips zero slots). */
                Value &sh = me.shadow[t];
                if (sh == 0.0)
                    me.touched.push_back(t);
                sh += inf;
                if (std::abs(sh) >= gate) {
                    const Value flushed = sh;
                    sh = 0.0;
                    const Value after = addDelta(t, flushed);
                    if (worthChasing(kind, state[t].load(), after,
                                     gate))
                        requeue(t);
                }
            } else {
                const Value after = improveDelta(t, inf);
                if (worthChasing(kind, state[t].load(), after, gate))
                    requeue(t);
            }
            return dep::Route::Banked;
        }
        const Value after =
            sum ? addDelta(t, inf) : improveDelta(t, inf);
        if (!worthChasing(kind, state[t].load(), after, gate))
            return dep::Route::Banked;
        if (cs.isHubOrCore(t)) {
            requeue(t); // H'' cut: t restarts as its own root
            return dep::Route::Banked;
        }
        if (claimed.test(t))
            return dep::Route::Banked; // applied this round already
        return dep::Route::Descend;
    }

    bool markDescended(VertexId t) { return claimed.trySet(t); }

    void overflowRoot(VertexId t) { requeue(t); }

    /** Round-loop body for one root (the executor round loop's gate
     * checks, then the shared walk). The claim happens before the walk
     * because enterRoot cannot abort it. */
    void
    workRoot(VertexId v, unsigned stack_depth)
    {
        curPart = part.ownerOf(v);
        const Value d = delta[v].load();
        if (d == ident || claimed.test(v)
            || !clearsGate(kind, state[v].load(), d, gate))
            return;
        if (!claimed.trySet(v))
            return;
        ++me.walks;
        dep::walkChain(g, cs, stack_depth, v, me.stack, me.lanes,
                       *this);
    }
};

} // namespace

unsigned
resolveHostThreads(unsigned requested)
{
    unsigned t =
        requested ? requested : std::thread::hardware_concurrency();
    if (t == 0)
        t = 1;
    return std::min(t, kMaxThreads);
}

ParallelEngine::ParallelEngine(EngineOptions opt)
    : opt_(opt)
{}

std::string
ParallelEngine::name() const
{
    return "Parallel";
}

RunResult
ParallelEngine::run(const graph::Graph &g, gas::Algorithm &alg,
                    sim::Machine &)
{
    alg.prepare(g);

    const VertexId n = g.numVertices();
    const auto kind = alg.accumKind();
    const Value ident = alg.identity();
    const Value eps = alg.epsilon();
    const bool is_sum = kind == gas::AccumKind::Sum;
    const bool lanes_on = alg.affineEdgeCompute();

    unsigned T = resolveHostThreads(opt_.hostThreads);
    if (n > 0)
        T = std::min<unsigned>(T, n);
    else
        T = 1;
    const unsigned chunk = std::max(1u, opt_.chunkSize);

    const graph::Partitioning part(g, T);
    const bool hub_on = opt_.hubIndexEnabled && alg.transformable();
    const graph::HubSet hubs(g, opt_.hub);
    const graph::CoreSubgraph cs(g, hubs, 4 * opt_.stackDepth, &part);
    const auto path_of_first = dep::indexablePaths(cs, part, kind);
    const dep::FitMode fit = is_sum ? dep::FitMode::TwoPoint
                                    : dep::FitMode::Compose;
    dg_assert(static_cast<std::uint64_t>(n)
                      + part.range(0).size() < kIdxMask,
              "graph too large for packed chunk descriptors");

    std::vector<NativeEntry> entries(cs.paths().size());
    std::uint64_t seeded = 0;
    if (hub_on && opt_.hubSeed && !opt_.hubSeed->empty()) {
        dep::forEachSurvivingSeed(
            cs, path_of_first, *opt_.hubSeed,
            [&](std::uint32_t pid, const HubDependency &d) {
                auto &en = entries[pid];
                en.mu.store(d.func.mu);
                en.xi.store(d.func.xi);
                en.cap.store(d.func.cap);
                en.flag.store(
                    static_cast<std::uint8_t>(dep::EntryFlag::A));
                ++seeded;
            });
    }

    std::vector<std::atomic<Value>> state(n), delta(n);
    for (VertexId v = 0; v < n; ++v) {
        state[v].store(canon(alg.initState(g, v)),
                       std::memory_order_relaxed);
        delta[v].store(canon(alg.initDelta(g, v)),
                       std::memory_order_relaxed);
    }

    AtomicBitmap claimed(n), queued(n);
    SharedRound S;
    std::barrier<> bar(static_cast<std::ptrdiff_t>(T));

    std::vector<std::unique_ptr<WorkerCtx>> ctxs;
    ctxs.reserve(T);
    for (unsigned w = 0; w < T; ++w)
        ctxs.push_back(std::make_unique<WorkerCtx>(
            w, part.range(w), n, chunk, is_sum, opt_.stackDepth));

    auto &reg = obs::registry();
    const obs::Labels labels{{"engine", "Parallel"}};
    auto &c_walks = reg.counter("dg_engine_chain_walks_total",
                                "HDTL chain walks (root traversals)",
                                labels);
    auto &c_shortcuts = reg.counter("dg_engine_shortcuts_total",
                                    "Hub-index shortcut firings",
                                    labels);
    auto &c_ddmu = reg.counter("dg_engine_ddmu_observations_total",
                               "DDMU dependency-fit observations",
                               labels);
    auto &c_rounds = reg.counter("dg_engine_rounds_total",
                                 "Engine rounds executed", labels);
    auto &c_steals = reg.counter("dg_parallel_steals_total",
                                 "Chunks stolen between workers",
                                 labels);
    auto &c_waits = reg.counter(
        "dg_parallel_barrier_waits_total",
        "Idle waits (no local, stealable or pending work)", labels);
    auto &c_merge = reg.counter(
        "dg_parallel_shadow_merge_values_total",
        "Shadow delta values merged at round barriers", labels);
    auto &c_prebank = reg.counter(
        "dg_simd_prebanked_edges_total",
        "Edge influences batch-applied from lane tiles (conflict-free"
        " shadow scatter / folded parallel-edge CAS)",
        labels);
    obs::span::instant("parallel", "simd_dispatch", "avx2",
                       dep::fold::activeIsa() == dep::fold::Isa::Avx2
                           ? 1
                           : 0);

    const auto wordShare = [&](unsigned w) {
        const std::size_t words = claimed.words.size();
        return std::pair<std::size_t, std::size_t>{
            words * w / T, words * (w + 1) / T};
    };

    auto workerLoop = [&](unsigned w) {
        auto &me = *ctxs[w];
        NativePolicy pol{g,       alg,     part,  cs,
                         path_of_first,    entries, state, delta,
                         claimed, queued,  S,     me,
                         kind,    ident,   is_sum, hub_on, fit,
                         lanes_on};

        for (unsigned round = 0;; ++round) {
            obs::span::Scoped roundSpan("parallel", "worker_round",
                                        "worker", me.id);

            /* Merge + clear + scan (own range / own word share). */
            if (is_sum && round > 0) {
                for (unsigned j = 0; j < T; ++j) {
                    auto &cj = *ctxs[j];
                    for (const VertexId v : cj.touched) {
                        if (!me.range.contains(v))
                            continue;
                        Value &sh = cj.shadow[v];
                        if (sh == 0.0)
                            continue; // consumed dup / exact cancel
                        pol.addDelta(v, sh);
                        sh = 0.0;
                        ++me.shadowMerged;
                    }
                }
            }
            const auto [wb, we] = wordShare(w);
            claimed.clearWordRange(wb, we);
            queued.clearWordRange(wb, we);
            me.actives.clear();
            me.laneBuf.clear();
            for (VertexId v = me.range.begin; v < me.range.end; ++v) {
                const Value d = delta[v].load();
                if (d != ident
                    && gas::wouldChange(kind, state[v].load(), d,
                                        eps)) {
                    me.actives.push_back(v);
                    me.laneBuf.push_back(std::abs(d));
                }
            }
            /* Gate numerator via the deterministic vector fold (one
             * fixed reduction order per worker regardless of ISA). */
            me.absSum = dep::fold::foldSum(me.laneBuf.data(),
                                           me.laneBuf.size());
            bar.arrive_and_wait();

            /* Reduce: the round gate needs the global active set. */
            if (me.id == 0) {
                std::size_t total = 0;
                Value abs_sum = 0.0;
                for (unsigned j = 0; j < T; ++j) {
                    total += ctxs[j]->actives.size();
                    abs_sum += ctxs[j]->absSum;
                }
                S.activeTotal = total;
                S.gate = (is_sum && total)
                    ? std::max(eps, kSelectFactor * abs_sum
                                   / static_cast<Value>(total))
                    : eps;
                S.converged = total == 0;
                S.done = total == 0 || round >= opt_.maxRounds;
                S.roundsRun = round;
            }
            bar.arrive_and_wait();
            if (S.done)
                break;
            pol.gate = S.gate;

            /* Seed own deque, most-impactful-first; reversed pushes
             * let the owner pop the top-priority chunk while thieves
             * steal from the tail end. */
            me.touched.clear();
            me.deque.reset();
            me.rootVec.clear();
            for (const VertexId v : me.actives) {
                if (clearsGate(kind, state[v].load(), delta[v].load(),
                               S.gate))
                    me.rootVec.push_back(v);
            }
            std::stable_sort(
                me.rootVec.begin(), me.rootVec.end(),
                [&](VertexId a, VertexId b) {
                    const Value da = delta[a].load();
                    const Value db = delta[b].load();
                    switch (kind) {
                      case gas::AccumKind::Sum:
                        return std::abs(da) > std::abs(db);
                      case gas::AccumKind::Min:
                        return da < db;
                      case gas::AccumKind::Max:
                        return da > db;
                    }
                    return false;
                });
            for (const VertexId v : me.rootVec)
                queued.trySet(v);
            const auto m =
                static_cast<std::uint32_t>(me.rootVec.size());
            const std::uint32_t nch = (m + chunk - 1) / chunk;
            S.outstanding.fetch_add(nch);
            for (std::uint32_t c = nch; c > 0; --c) {
                const std::uint32_t b = (c - 1) * chunk;
                const bool ok = me.deque.push(
                    packChunk(w, b, std::min(m, b + chunk)));
                dg_assert(ok, "parallel seed deque overflow");
            }
            bar.arrive_and_wait();

            /* Work until the round is globally drained. */
            const auto processChunk = [&](std::uint64_t desc) {
                const auto owner =
                    static_cast<unsigned>(desc >> 56);
                const auto b = static_cast<std::uint32_t>(
                    (desc >> 28) & kIdxMask);
                const auto e =
                    static_cast<std::uint32_t>(desc & kIdxMask);
                const VertexId *roots = ctxs[owner]->rootPtr;
                for (std::uint32_t i = b; i < e; ++i)
                    pol.workRoot(roots[i], opt_.stackDepth);
                S.outstanding.fetch_sub(1);
            };
            for (;;) {
                if (const auto d = me.deque.pop()) {
                    processChunk(*d);
                    continue;
                }
                bool stole = false;
                for (unsigned k = 1; k < T; ++k) {
                    const unsigned vic = (w + k) % T;
                    if (const auto d = ctxs[vic]->deque.steal()) {
                        ++me.steals;
                        obs::span::instant("parallel", "steal",
                                           "victim", vic);
                        processChunk(*d);
                        stole = true;
                        break;
                    }
                }
                if (stole)
                    continue;
                if (S.outstanding.load() == 0)
                    break;
                ++me.idleWaits;
                std::this_thread::yield();
            }
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(T - 1);
    for (unsigned w = 1; w < T; ++w)
        threads.emplace_back(workerLoop, w);
    workerLoop(0);
    for (auto &t : threads)
        t.join();
    const auto t1 = std::chrono::steady_clock::now();

    RunResult result;
    auto &mx = result.metrics;
    mx.coresUsed = T;
    mx.rounds = S.roundsRun;
    mx.converged = S.converged;
    mx.makespan = static_cast<Cycles>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    if (!mx.converged)
        dg_warn("Parallel hit the round limit before converging");

    std::uint64_t walks = 0, steals = 0, waits = 0, merged = 0;
    std::uint64_t shortcuts = 0, ddmu_obs = 0, prebanked = 0;
    for (const auto &c : ctxs) {
        mx.updates += c->updates;
        mx.edgeOps += c->edgeOps;
        mx.hubIndexLookups += c->hubLookups;
        mx.hubIndexHits += c->hubHits;
        mx.hubIndexInserts += c->inserts;
        mx.shortcutsApplied += c->shortcuts;
        walks += c->walks;
        steals += c->steals;
        waits += c->idleWaits;
        merged += c->shadowMerged;
        shortcuts += c->shortcuts;
        ddmu_obs += c->ddmuObs;
        prebanked += c->prebanked;
    }
    mx.hubIndexSeeded = seeded;
    mx.hubIndexBytes = path_of_first.size() * 32; // paper entry layout
    c_walks.inc(walks);
    c_shortcuts.inc(shortcuts);
    c_ddmu.inc(ddmu_obs);
    c_rounds.inc(mx.rounds);
    c_steals.inc(steals);
    c_waits.inc(waits);
    c_merge.inc(merged);
    c_prebank.inc(prebanked);
    dep::fold::publishMetrics();

    if (opt_.hubExport) {
        opt_.hubExport->deps.clear();
        std::vector<std::uint32_t> pids;
        pids.reserve(path_of_first.size());
        for (const auto &[e, pid] : path_of_first) {
            static_cast<void>(e);
            pids.push_back(pid);
        }
        std::sort(pids.begin(), pids.end());
        for (const auto pid : pids) {
            const auto &en = entries[pid];
            if (static_cast<dep::EntryFlag>(en.flag.load())
                != dep::EntryFlag::A)
                continue;
            const auto &p = cs.paths()[pid];
            opt_.hubExport->deps.push_back(
                {p.head, p.tail, p.vertices,
                 {en.mu.load(), en.xi.load(), en.cap.load()}});
        }
    }

    result.states.resize(n);
    for (VertexId v = 0; v < n; ++v)
        result.states[v] = state[v].load(std::memory_order_relaxed);
    return result;
}

EnginePtr
makeParallel(EngineOptions opt)
{
    return std::make_unique<ParallelEngine>(opt);
}

} // namespace depgraph::runtime
