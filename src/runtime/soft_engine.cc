#include "runtime/soft_engine.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/bitmap.hh"
#include "common/logging.hh"
#include "graph/partition.hh"
#include "runtime/layout.hh"
#include "runtime/selective.hh"

namespace depgraph::runtime
{

SoftEngine::SoftEngine(SoftConfig cfg, EngineOptions opt)
    : cfg_(std::move(cfg)), opt_(opt)
{}

/*
 * Parallel execution and staleness model
 * --------------------------------------
 * Vertices are range-partitioned across cores (the partitioning scheme
 * the paper assumes). Within a round each core processes the active
 * vertices of its own partition. A scatter whose target lives in the
 * SAME partition updates the live delta (asynchronous engines see it
 * immediately -- Gauss-Seidel); a scatter to ANOTHER core's partition
 * lands in a shadow buffer that merges at the round barrier (Jacobi
 * across cores). This reproduces the paper's Sec. II mechanics: a
 * dependency chain needs a round per core crossing, concurrent threads
 * read stale remote states and perform unnecessary updates, and the
 * waste grows with the core count (Fig. 4b). Fully synchronous engines
 * (Ligra, Mosaic) route every scatter through the shadow buffer.
 */
RunResult
SoftEngine::run(const graph::Graph &g, gas::Algorithm &alg,
                sim::Machine &m)
{
    using gas::applyAccum;
    using gas::wouldChange;

    alg.prepare(g);
    m.flushCaches();
    m.clearStats();

    const auto &P = m.params();
    const unsigned cores = std::min(opt_.numCores, m.numCores());
    dg_assert(cores > 0, "engine needs at least one core");

    GraphLayout L(m, g);
    const graph::Partitioning part(g, cores);
    const VertexId n = g.numVertices();
    const auto kind = alg.accumKind();
    const Value ident = alg.identity();
    const Value eps = alg.epsilon();

    RunResult result;
    auto &mx = result.metrics;
    mx.coresUsed = cores;

    std::vector<Value> state(n), delta(n), shadow(n, ident);
    for (VertexId v = 0; v < n; ++v) {
        state[v] = alg.initState(g, v);
        delta[v] = alg.initDelta(g, v);
    }

    std::vector<Cycles> clock(cores, 0);
    auto chargeMem = [&](unsigned c, const sim::AccessResult &r) {
        clock[c] += r.latency;
        mx.memStallCycles += r.latency;
    };
    auto chargeCompute = [&](unsigned c, Cycles cyc) {
        clock[c] += cyc;
        mx.computeCycles += cyc;
    };
    auto chargeOverhead = [&](unsigned c, Cycles cyc) {
        clock[c] += cyc;
        mx.overheadCycles += cyc;
    };

    // Per-core frontiers (ascending ids within each).
    std::vector<std::vector<VertexId>> frontier(cores);
    std::size_t active_total = 0;
    auto rebuildFrontier = [&] {
        for (auto &f : frontier)
            f.clear();
        active_total = 0;
        for (VertexId v = 0; v < n; ++v) {
            if (delta[v] != ident
                && wouldChange(kind, state[v], delta[v], eps)) {
                frontier[part.ownerOf(v)].push_back(v);
                ++active_total;
            }
        }
    };
    rebuildFrontier();

    std::vector<VertexId> order;
    order.reserve(n); // reused across rounds: no per-round realloc
    Bitmap visited(n), inFrontier(n); // PathSweep scratch

    std::vector<VertexId> all_active;
    all_active.reserve(n); // likewise rebuilt per round -- reserve once
    for (mx.rounds = 0; mx.rounds < opt_.maxRounds && active_total > 0;
         ++mx.rounds) {
        /* Maiter-style selective gate for this round (sum only). */
        Value gate = eps;
        if (cfg_.selective && kind == gas::AccumKind::Sum) {
            all_active.clear();
            for (unsigned c = 0; c < cores; ++c)
                all_active.insert(all_active.end(),
                                  frontier[c].begin(),
                                  frontier[c].end());
            gate = selectionThreshold(kind, eps, delta, all_active);
        }

        for (unsigned c = 0; c < cores; ++c) {
            /* ---- Build this core's processing order. ---- */
            order.clear();
            for (auto v : frontier[c])
                if (clearsGate(kind, state[v], delta[v], gate))
                    order.push_back(v);
            switch (cfg_.schedule) {
              case Schedule::VertexOrder:
                break; // already ascending
              case Schedule::PriorityDelta:
                std::stable_sort(order.begin(), order.end(),
                    [&](VertexId a, VertexId b) {
                        switch (kind) {
                          case gas::AccumKind::Sum:
                            return std::abs(delta[a])
                                > std::abs(delta[b]);
                          case gas::AccumKind::Min:
                            return delta[a] < delta[b];
                          case gas::AccumKind::Max:
                            return delta[a] > delta[b];
                        }
                        return false;
                    });
                break;
              case Schedule::PriorityDegree:
                std::stable_sort(order.begin(), order.end(),
                    [&](VertexId a, VertexId b) {
                        return g.outDegree(a) > g.outDegree(b);
                    });
                break;
              case Schedule::PathSweep: {
                // DFS over this core's active set: active chains are
                // laid out consecutively (FBSGraph / HATS BDFS).
                visited.clearAll();
                inFrontier.clearAll();
                for (auto v : order)
                    inFrontier.set(v);
                std::vector<VertexId> dfs;
                dfs.reserve(order.size());
                std::vector<VertexId> stack;
                for (auto seed : order) {
                    if (visited.test(seed))
                        continue;
                    stack.push_back(seed);
                    while (!stack.empty()) {
                        const VertexId v = stack.back();
                        stack.pop_back();
                        if (!visited.testAndSet(v))
                            continue;
                        dfs.push_back(v);
                        for (auto t : g.neighbors(v))
                            if (inFrontier.test(t) && !visited.test(t))
                                stack.push_back(t);
                    }
                }
                order = std::move(dfs);
                break;
              }
            }

            /* ---- Process this core's work. ---- */
            for (const VertexId v : order) {
                // Worklist pop / scheduling bookkeeping.
                if (cfg_.hwWorklist || cfg_.hwScheduler) {
                    chargeOverhead(c, 1);
                    ++mx.accelOps;
                } else {
                    chargeOverhead(c, P.queueOpCycles);
                }

                if (cfg_.prefetchVertexData) {
                    // Worklist-directed prefetch into L2, off the
                    // critical path.
                    m.accessFromL2(c, L.offsetAddr(v), 16, false);
                    m.accessFromL2(c, L.deltaAddr(v), 8, false);
                    m.accessFromL2(c, L.stateAddr(v), 8, false);
                    mx.accelOps += 3;
                }

                chargeMem(c, m.access(c, L.offsetAddr(v), 16, false));
                chargeMem(c, m.access(c, L.deltaAddr(v), 8, true));
                const Value d = delta[v];
                if (d == ident
                    || !wouldChange(kind, state[v], d, eps)) {
                    chargeCompute(c, 2);
                    continue;
                }
                delta[v] = ident;
                chargeMem(c, m.access(c, L.stateAddr(v), 8, true));
                state[v] = applyAccum(kind, state[v], d);
                ++mx.updates;
                chargeCompute(c, P.vertexOpCycles);

                for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e) {
                    const VertexId t = g.target(e);
                    chargeMem(c, m.access(c, L.targetAddr(e), 4,
                                          false));
                    if (L.weighted())
                        chargeMem(c, m.access(c, L.weightAddr(e), 8,
                                              false));
                    const Value inf = alg.edgeCompute(g, v, e, d);
                    chargeCompute(c, P.edgeOpCycles);
                    ++mx.edgeOps;

                    // Racing threads make same-round contributions
                    // invisible in practice: only a genuinely
                    // sequential run (1 core) sees them in place.
                    const bool local = cfg_.async && cores == 1;
                    const Addr da = L.deltaAddr(t);
                    if (cfg_.cheapScatter) {
                        // PHI: fire-and-forget update pushed into the
                        // hierarchy; the core never stalls on it.
                        m.accessFromL2(c, da, 8, true);
                        chargeMem(c, {2, sim::MemLevel::L2});
                        ++mx.accelOps;
                    } else {
                        chargeMem(c, m.access(c, da, 8, true));
                    }
                    auto &dst = local ? delta[t] : shadow[t];
                    dst = applyAccum(kind, dst, inf);
                    chargeOverhead(c, 2); // frontier bookkeeping
                }
            }
        }

        /* ---- Round barrier: merge remote contributions. ---- */
        for (VertexId v = 0; v < n; ++v) {
            if (shadow[v] != ident) {
                delta[v] = applyAccum(kind, delta[v], shadow[v]);
                shadow[v] = ident;
            }
        }
        rebuildFrontier();

        const Cycles bar = *std::max_element(clock.begin(), clock.end());
        for (unsigned c = 0; c < cores; ++c) {
            mx.idleCycles += bar - clock[c];
            clock[c] = bar;
        }
    }

    mx.converged = active_total == 0;
    if (!mx.converged)
        dg_warn(cfg_.name, " hit the round limit before converging");

    mx.makespan = *std::max_element(clock.begin(), clock.end());
    result.states = std::move(state);
    result.memStats = m.stats();
    result.energy = sim::computeEnergy(
        result.memStats, mx.busyCycles(),
        mx.idleCycles
            + static_cast<std::uint64_t>(m.numCores() - cores)
                * mx.makespan,
        mx.accelOps);
    return result;
}

EnginePtr
makeLigra(EngineOptions opt)
{
    return std::make_unique<SoftEngine>(
        SoftConfig{"Ligra", Schedule::VertexOrder, false, false, false,
                   false, false, /*selective=*/false},
        opt);
}

EnginePtr
makeMosaic(EngineOptions opt)
{
    // Mosaic: synchronous tile-ordered processing; on a range
    // partitioning the tile order coincides with ascending ids.
    return std::make_unique<SoftEngine>(
        SoftConfig{"Mosaic", Schedule::VertexOrder, false, false, false,
                   false, false, /*selective=*/false},
        opt);
}

EnginePtr
makeWonderland(EngineOptions opt)
{
    return std::make_unique<SoftEngine>(
        SoftConfig{"Wonderland", Schedule::PriorityDegree, true, false,
                   false, false, false},
        opt);
}

EnginePtr
makeFbsGraph(EngineOptions opt)
{
    return std::make_unique<SoftEngine>(
        SoftConfig{"FBSGraph", Schedule::PathSweep, true, false, false,
                   false, false},
        opt);
}

EnginePtr
makeLigraO(EngineOptions opt)
{
    return std::make_unique<SoftEngine>(
        SoftConfig{"Ligra-o", Schedule::PriorityDelta, true, false,
                   false, false, false},
        opt);
}

} // namespace depgraph::runtime
