#include "runtime/numa.hh"

#include <cstring>
#include <fstream>
#include <thread>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace depgraph::runtime
{

std::vector<unsigned>
parseCpuList(const std::string &list)
{
    std::vector<unsigned> cpus;
    std::size_t i = 0;
    const auto digits = [&](unsigned &out) {
        if (i >= list.size() || list[i] < '0' || list[i] > '9')
            return false;
        unsigned long v = 0;
        bool sane = true;
        while (i < list.size() && list[i] >= '0' && list[i] <= '9') {
            v = v * 10 + static_cast<unsigned long>(list[i] - '0');
            if (v > 1u << 20)
                sane = false; // absurd cpu id: whole run is junk
            ++i;
        }
        out = static_cast<unsigned>(v);
        return sane;
    };
    while (i < list.size()) {
        unsigned lo = 0;
        if (!digits(lo)) {
            ++i; // skip junk (whitespace, trailing newline)
            continue;
        }
        unsigned hi = lo;
        if (i < list.size() && list[i] == '-') {
            ++i;
            if (!digits(hi) || hi < lo)
                continue; // malformed range: drop it
        }
        for (unsigned c = lo; c <= hi && hi - lo < 4096; ++c)
            cpus.push_back(c);
        if (i < list.size() && list[i] == ',')
            ++i;
    }
    return cpus;
}

NumaTopology
probeNumaTopology(const std::string &root)
{
    NumaTopology topo;
    for (unsigned k = 0; k < 256; ++k) {
        std::ifstream in(root + "/node" + std::to_string(k)
                         + "/cpulist");
        if (!in)
            break;
        std::string line;
        std::getline(in, line);
        auto cpus = parseCpuList(line);
        if (cpus.empty())
            continue; // memory-only node: no workers land there
        topo.nodes.push_back({k, std::move(cpus)});
    }
    if (topo.nodes.empty()) {
        NumaNode all;
        all.id = 0;
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        for (unsigned c = 0; c < hw; ++c)
            all.cpus.push_back(c);
        topo.nodes.push_back(std::move(all));
    }
    return topo;
}

#ifdef __linux__

ScopedAffinity::ScopedAffinity(const std::vector<unsigned> &cpus)
{
    static_assert(sizeof(saved_) >= sizeof(cpu_set_t));
    if (cpus.empty())
        return;
    cpu_set_t prev;
    CPU_ZERO(&prev);
    if (pthread_getaffinity_np(pthread_self(), sizeof(prev), &prev)
        != 0)
        return;
    cpu_set_t want;
    CPU_ZERO(&want);
    bool any = false;
    for (const unsigned c : cpus) {
        if (c < CPU_SETSIZE && CPU_ISSET(c, &prev)) {
            CPU_SET(c, &want);
            any = true;
        }
    }
    /* Never bind to cpus the thread is not allowed on (cgroup /
     * taskset restrictions); an empty intersection means placement is
     * out of our hands. */
    if (!any)
        return;
    if (pthread_setaffinity_np(pthread_self(), sizeof(want), &want)
        != 0)
        return;
    std::memcpy(saved_, &prev, sizeof(prev));
    bound_ = true;
}

ScopedAffinity::~ScopedAffinity()
{
    if (!bound_)
        return;
    cpu_set_t prev;
    std::memcpy(&prev, saved_, sizeof(prev));
    pthread_setaffinity_np(pthread_self(), sizeof(prev), &prev);
}

#else

ScopedAffinity::ScopedAffinity(const std::vector<unsigned> &) {}
ScopedAffinity::~ScopedAffinity() = default;

#endif

} // namespace depgraph::runtime
