/**
 * @file
 * Per-core hardware model of the DepGraph engine (paper Fig. 7):
 * the HDTL prefetch pipeline coupled to the core through the FIFO Edge
 * Buffer, plus the traversal stack and local circular queue geometry.
 *
 * Timing uses two virtual clocks per core. The prefetcher clock
 * advances by the engine-side access latencies (issued to the L2, as
 * the paper specifies); the core clock advances by compute and its own
 * cache accesses. The FIFO couples them: the core cannot consume an
 * edge before the prefetcher produced it, and the prefetcher cannot
 * run more than the FIFO capacity ahead of the core. Cycles the core
 * spends waiting on the FIFO are accounted as memory stall.
 */

#ifndef DEPGRAPH_DEPGRAPH_ENGINE_MODEL_HH
#define DEPGRAPH_DEPGRAPH_ENGINE_MODEL_HH

#include <vector>

#include "common/types.hh"

namespace depgraph::dep
{

class CorePipeline
{
  public:
    /**
     * @param fifo_capacity Capacity of the FIFO Edge Buffer in edges
     *        (4.8 Kbit / ~80 b per entry, ~64 by default).
     * @param hardware False models DepGraph-S: a single clock, all
     *        latencies serialized on the core.
     */
    CorePipeline(unsigned fifo_capacity, bool hardware)
        : ring_(fifo_capacity, 0), hardware_(hardware)
    {}

    /** The prefetcher produced one edge after `lat` engine cycles. */
    void
    produce(Cycles lat)
    {
        if (!hardware_) {
            // Software traversal: the core itself pays the latency.
            core_ += lat;
            swSerialized_ += lat;
            return;
        }
        const Cycles floor = ring_[pos_ % ring_.size()];
        pref_ = std::max(pref_, floor) + lat;
    }

    /**
     * The core consumes the next produced edge (DEP_fetch_edge) and
     * then spends `cost` cycles on it. Returns the cycles the core
     * stalled waiting for the FIFO.
     */
    Cycles
    consume(Cycles cost)
    {
        Cycles wait = 0;
        if (hardware_ && pref_ > core_) {
            wait = pref_ - core_;
            core_ = pref_;
        }
        core_ += cost;
        ring_[pos_ % ring_.size()] = core_;
        ++pos_;
        return wait;
    }

    /** Core-side work not tied to a FIFO entry (vertex apply etc.). */
    void coreBusy(Cycles cost) { core_ += cost; }

    /** Engine-side work not producing an edge (queue ops, DDMU). */
    void
    engineBusy(Cycles cost)
    {
        if (hardware_)
            pref_ += cost;
        else {
            core_ += cost;
            swSerialized_ += cost;
        }
    }

    /** Barrier: jump both clocks to `t` (>= current). */
    void
    syncTo(Cycles t)
    {
        core_ = std::max(core_, t);
        pref_ = std::max(pref_, core_);
    }

    Cycles coreClock() const { return core_; }

    /** Latency the software variant serialized on the core (the
     * "other time" the hardware removes). */
    Cycles swSerializedCycles() const { return swSerialized_; }

  private:
    std::vector<Cycles> ring_;
    std::size_t pos_ = 0;
    Cycles core_ = 0;
    Cycles pref_ = 0;
    Cycles swSerialized_ = 0;
    bool hardware_;
};

} // namespace depgraph::dep

#endif // DEPGRAPH_DEPGRAPH_ENGINE_MODEL_HH
