/**
 * @file
 * Scalar reference kernels + the runtime ISA dispatch point.
 *
 * The scalar implementations DEFINE the kernel semantics; the AVX2
 * translation unit (fold_kernels_avx2.cc) must match them bitwise.
 * This file must therefore never be compiled with FMA contraction
 * (the build adds -ffp-contract=off for it): a contracted mu*d + xi
 * would round differently from both the baseline engines and the
 * vector kernels.
 */

#include "depgraph/fold_kernels.hh"

#include <array>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hh"

namespace depgraph::dep::fold
{

namespace
{

/* ---- Counters (relaxed; one add per kernel call, i.e. per tile of
 * kLaneTile edges, not per edge). ---- */
struct AtomicCounters
{
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> elems{0};

    void
    tick(std::size_t n)
    {
        calls.fetch_add(1, std::memory_order_relaxed);
        elems.fetch_add(n, std::memory_order_relaxed);
    }

    KernelCounters
    snapshot() const
    {
        return {calls.load(std::memory_order_relaxed),
                elems.load(std::memory_order_relaxed)};
    }
};

AtomicCounters g_edgeApply, g_foldSum, g_foldMin, g_foldMax,
    g_mergeDense;

/* ---- Scalar kernels: the deterministic reduction contract, spelled
 * out. ---- */

void
edgeApplyScalar(const Value *mu, const Value *xi, const Value *cap,
                Value d, Value *inf, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const Value t = mu[i] * d + xi[i];
        /* std::min(cap, t) == (t < cap ? t : cap); the AVX2 kernel
         * encodes the same operand order as vminpd(t, cap). */
        inf[i] = t < cap[i] ? t : cap[i];
    }
}

template <class Op>
Value
foldStriped(const Value *x, std::size_t n, Value identity, Op op)
{
    std::array<Value, kFoldLanes> lane;
    lane.fill(identity);
    /* Stripe: lane j left-folds x[j], x[j+16], x[j+32], ...; a ragged
     * tail element x[16k + j] is lane j's last operand -- identical to
     * how the AVX2 kernel drains its tail into the spilled lanes. */
    for (std::size_t i = 0; i < n; ++i)
        lane[i % kFoldLanes] = op(lane[i % kFoldLanes], x[i]);
    /* Fixed combine tree, matching the vector path's
     * (A0 o A1) o (A2 o A3) accumulator merge + horizontal fold. */
    std::array<Value, 4> c;
    for (std::size_t j = 0; j < 4; ++j)
        c[j] = op(op(lane[j], lane[j + 4]),
                  op(lane[j + 8], lane[j + 12]));
    return op(op(c[0], c[1]), op(c[2], c[3]));
}

Value
foldSumScalar(const Value *x, std::size_t n)
{
    return foldStriped(x, n, 0.0,
                       [](Value a, Value b) { return a + b; });
}

Value
foldMinScalar(const Value *x, std::size_t n)
{
    return canon(foldStriped(
        x, n, kInfinity, [](Value a, Value b) {
            return a < b ? a : b; /* == vminpd(a, b) */
        }));
}

Value
foldMaxScalar(const Value *x, std::size_t n)
{
    return canon(foldStriped(
        x, n, -kInfinity, [](Value a, Value b) {
            return a > b ? a : b; /* == vmaxpd(a, b) */
        }));
}

void
mergeDenseScalar(gas::AccumKind kind, Value *delta, Value *shadow,
                 Value ident, std::size_t n)
{
    for (std::size_t v = 0; v < n; ++v) {
        if (shadow[v] != ident) {
            delta[v] = gas::applyAccum(kind, delta[v], shadow[v]);
            shadow[v] = ident;
        }
    }
}

const detail::Kernels kScalar{edgeApplyScalar, foldSumScalar,
                              foldMinScalar, foldMaxScalar,
                              mergeDenseScalar};

/* ---- Dispatch state. ---- */

std::atomic<bool> g_forceScalar{false};

bool
envDisablesSimd()
{
    static const bool off = [] {
        const char *s = std::getenv("DG_SIMD");
        if (!s)
            return false;
        return std::strcmp(s, "off") == 0
            || std::strcmp(s, "scalar") == 0
            || std::strcmp(s, "0") == 0;
    }();
    return off;
}

const detail::Kernels &
active()
{
    if (g_forceScalar.load(std::memory_order_relaxed)
        || envDisablesSimd())
        return kScalar;
    if (const auto *k = detail::avx2Kernels())
        return *k;
    return kScalar;
}

} // namespace

namespace detail
{

const Kernels &
scalarKernels()
{
    return kScalar;
}

#if !DG_FOLD_HAVE_AVX2
const Kernels *
avx2Kernels()
{
    return nullptr;
}
#endif

} // namespace detail

const char *
isaName(Isa isa)
{
    return isa == Isa::Avx2 ? "avx2" : "scalar";
}

bool
avx2Supported()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

void
forceScalar(bool on)
{
    g_forceScalar.store(on, std::memory_order_relaxed);
}

Isa
activeIsa()
{
    return &active() == &kScalar ? Isa::Scalar : Isa::Avx2;
}

void
edgeApply(const Value *mu, const Value *xi, const Value *cap, Value d,
          Value *inf, std::size_t n)
{
    g_edgeApply.tick(n);
    active().edgeApply(mu, xi, cap, d, inf, n);
}

Value
foldSum(const Value *x, std::size_t n)
{
    g_foldSum.tick(n);
    return active().foldSum(x, n);
}

Value
foldMin(const Value *x, std::size_t n)
{
    g_foldMin.tick(n);
    return active().foldMin(x, n);
}

Value
foldMax(const Value *x, std::size_t n)
{
    g_foldMax.tick(n);
    return active().foldMax(x, n);
}

void
mergeDense(gas::AccumKind kind, Value *delta, Value *shadow,
           Value ident, std::size_t n)
{
    g_mergeDense.tick(n);
    active().mergeDense(kind, delta, shadow, ident, n);
}

Stats
stats()
{
    return {g_edgeApply.snapshot(), g_foldSum.snapshot(),
            g_foldMin.snapshot(), g_foldMax.snapshot(),
            g_mergeDense.snapshot()};
}

void
publishMetrics()
{
    auto &reg = obs::registry();
    const Stats s = stats();
    const struct
    {
        const char *kernel;
        const KernelCounters &c;
    } rows[] = {
        {"edge_apply", s.edgeApply},   {"fold_sum", s.foldSum},
        {"fold_min", s.foldMin},       {"fold_max", s.foldMax},
        {"merge_dense", s.mergeDense},
    };
    for (const auto &r : rows) {
        reg.counter("dg_simd_kernel_calls_total",
                    "Vectorized fold/apply kernel invocations",
                    {{"kernel", r.kernel}})
            .set(r.c.calls);
        reg.counter("dg_simd_kernel_elems_total",
                    "Elements processed by fold/apply kernels",
                    {{"kernel", r.kernel}})
            .set(r.c.elems);
    }
    reg.gauge("dg_simd_isa_active",
              "1 when the named ISA path is the dispatch target",
              {{"isa", "avx2"}})
        .set(activeIsa() == Isa::Avx2 ? 1.0 : 0.0);
    reg.gauge("dg_simd_isa_active",
              "1 when the named ISA path is the dispatch target",
              {{"isa", "scalar"}})
        .set(activeIsa() == Isa::Scalar ? 1.0 : 0.0);
}

} // namespace depgraph::dep::fold
