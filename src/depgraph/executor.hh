/**
 * @file
 * DepGraph execution engines (paper Sec. III).
 *
 * DepGraphExecutor implements the dependency-driven asynchronous
 * execution approach on the simulated machine:
 *
 *  - per-core local circular queues of active roots;
 *  - HDTL depth-first traversal from each root along dependency
 *    chains, prefetching edges and endpoint states (4-stage pipeline,
 *    fixed-depth stack, FIFO edge buffer);
 *  - traversal cut points (stack overflow, partition boundary, H''
 *    vertices) re-enqueued as new roots, H''/remote tails activated on
 *    their owning cores;
 *  - DDMU-maintained hub index over core-paths, with shortcut firing
 *    at roots and fictitious-edge state reset for sum accumulators.
 *
 * Three variants cover the paper's configurations:
 *   DepGraph-S   (mode Software):  everything on the core;
 *   DepGraph-H   (mode Hardware):  HDTL/DDMU offloaded & pipelined;
 *   DepGraph-H-w (hub index disabled): Fig. 11's ablation.
 */

#ifndef DEPGRAPH_DEPGRAPH_EXECUTOR_HH
#define DEPGRAPH_DEPGRAPH_EXECUTOR_HH

#include <optional>
#include <string>

#include "depgraph/ddmu.hh"
#include "runtime/engine.hh"

namespace depgraph::dep
{

enum class Mode
{
    Software, ///< DepGraph-S: fully software implementation
    Hardware, ///< DepGraph-H: per-core engine coupled to the L2
};

struct DepOptions
{
    Mode mode = Mode::Hardware;
    bool hubIndexEnabled = true;
    /** Force a fitting mode; unset = TwoPoint for purely linear
     * algorithms, Compose for capped-linear ones (SSWP). */
    std::optional<FitMode> fitMode;
};

class DepGraphExecutor : public runtime::Engine
{
  public:
    DepGraphExecutor(DepOptions dep, runtime::EngineOptions opt = {});

    std::string name() const override;

    runtime::RunResult run(const graph::Graph &g, gas::Algorithm &alg,
                           sim::Machine &m) override;

  private:
    DepOptions dep_;
    runtime::EngineOptions opt_;
};

/* Convenience factories matching the paper's configuration names. */
runtime::EnginePtr makeDepGraphS(runtime::EngineOptions opt = {});
runtime::EnginePtr makeDepGraphH(runtime::EngineOptions opt = {});
runtime::EnginePtr makeDepGraphHNoHub(runtime::EngineOptions opt = {});

} // namespace depgraph::dep

#endif // DEPGRAPH_DEPGRAPH_EXECUTOR_HH
