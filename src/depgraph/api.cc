#include "depgraph/api.hh"

#include "common/logging.hh"

namespace depgraph::dep
{

void
DepEngine::DEP_configure(const DepConfig &cfg)
{
    dg_assert(cfg.graph != nullptr, "DEP_configure without a graph");
    dg_assert(cfg.partitionBegin <= cfg.partitionEnd
                  && cfg.partitionEnd <= cfg.graph->numVertices(),
              "partition bounds out of range");
    cfg_ = cfg;
    queue_.emplace(cfg.queueCapacity);
    stack_.emplace(cfg.stackDepth);
    fifo_.emplace(cfg.fifoCapacity);
    visitEpoch_.assign(cfg.graph->numVertices(), 0);
    epoch_ = 0;
    inQueue_.resize(cfg.graph->numVertices());
    rooted_.resize(cfg.graph->numVertices());
    prefetched_ = traversals_ = stackCuts_ = hppCuts_ = 0;
}

bool
DepEngine::DEP_insert_root(VertexId v)
{
    dg_assert(queue_.has_value(), "engine not configured");
    dg_assert(v < cfg_.graph->numVertices(), "root out of range");
    rooted_.reset(v); // fresh external activation
    if (inQueue_.test(v))
        return true; // already pending
    if (!queue_->tryPush(v))
        return false;
    inQueue_.set(v);
    return true;
}

bool
DepEngine::idle() const
{
    return (!queue_ || queue_->empty()) && (!stack_ || stack_->empty())
        && (!fifo_ || fifo_->empty());
}

std::optional<FetchedEdge>
DepEngine::DEP_fetch_edge()
{
    dg_assert(fifo_.has_value(), "engine not configured");
    pump();
    if (fifo_->empty())
        return std::nullopt;
    return fifo_->pop();
}

void
DepEngine::pump()
{
    while (fifo_->empty()) {
        if (stack_->empty()) {
            // Get_Root stage: take the next active vertex.
            if (queue_->empty())
                return; // engine idle
            const VertexId root = queue_->pop();
            inQueue_.reset(root);
            if (rooted_.test(root))
                continue; // already expanded since its activation
            rooted_.set(root);
            ++traversals_;
            ++epoch_;
            visitEpoch_[root] = epoch_;
            // Fetch_Offsets stage for the root.
            stack_->tryPush({root, cfg_.graph->edgeBegin(root),
                             cfg_.graph->edgeEnd(root)});
        }
        if (!step())
            continue; // stack drained; next traversal
    }
}

bool
DepEngine::step()
{
    while (!stack_->empty() && !fifo_->full()) {
        StackEntry &top = stack_->top();
        if (top.cur == top.end) {
            stack_->pop();
            continue;
        }
        // Fetch_Neighbors + Fetch_States: emit one edge.
        const EdgeId e = top.cur++;
        const graph::Graph &g = *cfg_.graph;
        const VertexId src = top.v;
        const VertexId dst = g.target(e);

        FetchedEdge out;
        out.src = src;
        out.dst = dst;
        out.edge = e;
        out.weight = g.weight(e);

        const bool in_partition = dst >= cfg_.partitionBegin
            && dst < cfg_.partitionEnd;
        const bool is_hpp = cfg_.hpp && dst < cfg_.hpp->size()
            && cfg_.hpp->test(dst);

        if (is_hpp || !in_partition) {
            // Cut: the tail becomes a root candidate elsewhere.
            out.cutAtDst = true;
            ++hppCuts_;
        } else if (visitEpoch_[dst] != epoch_) {
            visitEpoch_[dst] = epoch_;
            if (!stack_->tryPush({dst, g.edgeBegin(dst),
                                  g.edgeEnd(dst)})) {
                // Stack full: the last prefetched vertex is inserted
                // into the local circular queue as a new root.
                ++stackCuts_;
                if (!rooted_.test(dst) && !inQueue_.test(dst)
                    && queue_->tryPush(dst)) {
                    inQueue_.set(dst);
                }
            }
        }
        const bool pushed = fifo_->tryPush(out);
        dg_assert(pushed, "fifo overflow despite full() check");
        ++prefetched_;
        return true;
    }
    return false;
}

} // namespace depgraph::dep
