/**
 * @file
 * Vectorized fold/apply kernels for the frontier-batched chain walks,
 * with a portable scalar fallback behind one runtime dispatch point.
 *
 * Both execution backends (the cycle-model executor and the native
 * parallel engine) consume edges through struct-of-arrays lane tiles
 * (chain_walk.hh::LaneTile). The kernels here do the data-parallel
 * work on those lanes:
 *
 *  - edgeApply():  inf[i] = min(cap[i], mu[i]*d + xi[i]) for a whole
 *                  edge block at a fixed source delta d (EdgeCompute
 *                  over contiguous lanes).
 *  - foldSum/foldMin/foldMax(): horizontal reductions over a lane
 *                  array (gate accounting, parallel-edge collapsing).
 *  - mergeDense(): the round-barrier shadow merge,
 *                  delta[v] = Accum(delta[v], shadow[v]) wherever
 *                  shadow[v] != identity.
 *
 * DETERMINISM CONTRACT (docs/PARALLEL.md): the SIMD and scalar paths
 * must produce bitwise-identical results for every input, so that a
 * run's fixpoint never depends on the host ISA. Elementwise kernels
 * (edgeApply, mergeDense) get this for free -- AVX2 vmulpd/vaddpd/
 * vminpd are IEEE operations, and the AVX2 translation unit is built
 * with -ffp-contract=off so no FMA contraction can perturb the scalar
 * mu*d + xi rounding. Reductions are order-sensitive, so the fold
 * kernels pin ONE reduction order for both paths:
 *
 *   lane[j] = x[j] o x[j+16] o x[j+32] o ...      (16 striped lanes,
 *                                                  left-associated)
 *   c[j]    = (lane[j] o lane[j+4]) o (lane[j+8] o lane[j+12])
 *   result  = (c[0] o c[1]) o (c[2] o c[3])
 *
 * A ragged tail element x[16*k + j] is simply lane j's last operand.
 * This tree maps 1:1 onto four 4-wide AVX2 accumulators (striping
 * gives the scalar path ILP and the vector path its ~4x throughput;
 * a single left-fold chain would pin both to the add-latency chain and
 * no speedup would be measurable). The fuzz suite
 * (tests/test_depgraph_fold_fuzz.cc) pins the equivalence over +-0,
 * infinities, NaN-adjacent and denormal inputs and every tail length.
 *
 * One carve-out, found by that suite: for ADDITIVE results the
 * contract covers NaN-ness but not NaN sign/payload bits. IEEE
 * addition and multiplication are bitwise-commutative for every
 * numeric value, so the compiler may swap addsd/mulsd operand order on
 * the scalar path -- observable only when a NaN is produced (e.g. a
 * propagated 0x7ff8... input NaN vs a generated 0xfff8... indefinite
 * from inf + -inf). NaNs never arise in a converging run, and min/max
 * kernels (non-commutative ternaries, order pinned) stay strictly
 * bitwise even for NaN inputs.
 *
 * Operand-order subtleties the AVX2 kernels rely on (and the scalar
 * kernels spell out): x86 vminpd/vmaxpd return the SECOND operand on
 * unordered inputs and on the +-0 tie, which is exactly the ternary
 * `a < b ? a : b` of gas::applyAccum and the `std::min(cap, t)` of
 * LinearFunc when the operands are passed in that order.
 */

#ifndef DEPGRAPH_DEPGRAPH_FOLD_KERNELS_HH
#define DEPGRAPH_DEPGRAPH_FOLD_KERNELS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/types.hh"
#include "gas/model.hh"

namespace depgraph::dep::fold
{

/** Instruction-set level a kernel call executes at. */
enum class Isa
{
    Scalar,
    Avx2,
};

const char *isaName(Isa isa);

/** True when the host CPU supports AVX2 (false on non-x86 builds). */
bool avx2Supported();

/**
 * Programmatic dispatch override (tests, tools): force the scalar
 * fallback regardless of CPU support. Also settable with the
 * environment variable DG_SIMD=off|scalar|0 (read once, at the first
 * dispatch decision); DG_SIMD=auto|avx2|on|1 keeps autodetection.
 */
void forceScalar(bool on);

/** The ISA the next kernel call will dispatch to. */
Isa activeIsa();

/** Stripe count of the deterministic reduction tree (see file
 * comment). Four 4-wide AVX2 accumulators. */
inline constexpr std::size_t kFoldLanes = 16;

/** Edge-block tile size used by the chain-walk lane tiles: one refill
 * amortizes the gather over this many edges. */
inline constexpr std::uint32_t kLaneTile = 128;

/** Canonicalize -0.0 to +0.0 so equal fixpoints are bit-identical
 * regardless of which contribution reached a vertex first (IEEE
 * min/max of +-0.0 is order-dependent; this is the only value-level
 * tie a min/max race can produce). Shared by both engines and by the
 * min/max fold kernels. */
inline Value
canon(Value x)
{
    return x == 0.0 ? 0.0 : x;
}

/* ---- Shared atomic accumulation helpers. ----
 *
 * These are the ONLY store paths into the native engine's delta slots,
 * hoisted here next to canon() so the +-0 contract is auditable in one
 * place. History of the audit (the "shortcut fold vs direct walk race"
 * edge): a min/max shortcut fold (foldPath) can produce -0.0 -- e.g. a
 * pure-linear chain applied to delta 0.0 with a negative mu product --
 * while the direct walk delivers the same influence through per-edge
 * EdgeCompute, which may round to +0.0. Both deliveries race on the
 * same hub-tail slot; without canonicalizing BEFORE the compare, the
 * strict-improvement loop would treat -0.0 < +0.0 as no improvement
 * under Min (they compare equal) yet publish whichever bit pattern won
 * the race on other interleavings. canon() on the incoming value and
 * on every merged result makes the published bits interleaving- and
 * path-independent. test_runtime_parallel.cc pins this with a
 * two-vertex chain whose edge function yields -0.0. */

/** Sum accumulation into an atomic slot; returns the merged value. */
inline Value
accumSlotAdd(std::atomic<Value> &slot, Value inf)
{
    Value cur = slot.load();
    Value next;
    do {
        next = canon(cur + inf);
    } while (!slot.compare_exchange_weak(cur, next));
    return next;
}

/** Strict-improvement CAS for min/max: store only when the merge
 * changes the value, canonicalized. Convergence is to the unique exact
 * fixpoint, so the result is interleaving-independent. */
inline Value
improveSlot(std::atomic<Value> &slot, gas::AccumKind kind, Value inf)
{
    const Value c = canon(inf);
    Value cur = slot.load();
    for (;;) {
        const Value merged = canon(gas::applyAccum(kind, cur, c));
        if (merged == cur)
            return cur;
        if (slot.compare_exchange_weak(cur, merged))
            return merged;
    }
}

/* ---- Dispatched kernels. ---- */

/** inf[i] = min(cap[i], mu[i]*d + xi[i]), i in [0, n). Bitwise equal
 * to LinearFunc{mu[i], xi[i], cap[i]}(d) per element on every ISA
 * path. */
void edgeApply(const Value *mu, const Value *xi, const Value *cap,
               Value d, Value *inf, std::size_t n);

/** Reduce x[0..n) with the deterministic striped tree (file comment).
 * foldSum of an empty range is 0.0; foldMin/foldMax of an empty range
 * are +inf / -inf (the accumulator identities). Min/max results are
 * canon()-ed. */
Value foldSum(const Value *x, std::size_t n);
Value foldMin(const Value *x, std::size_t n);
Value foldMax(const Value *x, std::size_t n);

/** Round-barrier merge: for each v with shadow[v] != ident,
 * delta[v] = Accum(delta[v], shadow[v]) and shadow[v] = ident.
 * Elementwise; bitwise equal to the scalar loop on every ISA path.
 * (No canonicalization -- this mirrors the single-threaded executor's
 * historical semantics exactly; the native engine canonicalizes at its
 * atomic store paths instead.) */
void mergeDense(gas::AccumKind kind, Value *delta, Value *shadow,
                Value ident, std::size_t n);

/* ---- Observability. ---- */

/** Per-kernel call/element counters (process-global, relaxed). */
struct KernelCounters
{
    std::uint64_t calls = 0;
    std::uint64_t elems = 0;
};

struct Stats
{
    KernelCounters edgeApply;
    KernelCounters foldSum;
    KernelCounters foldMin;
    KernelCounters foldMax;
    KernelCounters mergeDense;
};

/** Snapshot of the process-global kernel counters. */
Stats stats();

/** Bridge the kernel counters into obs::registry() as
 * dg_simd_kernel_calls_total / dg_simd_kernel_elems_total (labelled by
 * kernel) plus the dg_simd_isa_active gauge. Engines call this at
 * run-report time (metrics.hh: the registry is the export plane). */
void publishMetrics();

/* ---- Internal: per-ISA kernel tables (fold_kernels.cc and
 * fold_kernels_avx2.cc). Exposed in the header only so the fuzz suite
 * and the micro-bench can pin SIMD vs scalar explicitly, independent
 * of the ambient dispatch state. ---- */
namespace detail
{

struct Kernels
{
    void (*edgeApply)(const Value *, const Value *, const Value *,
                      Value, Value *, std::size_t);
    Value (*foldSum)(const Value *, std::size_t);
    Value (*foldMin)(const Value *, std::size_t);
    Value (*foldMax)(const Value *, std::size_t);
    void (*mergeDense)(gas::AccumKind, Value *, Value *, Value,
                       std::size_t);
};

const Kernels &scalarKernels();

/** nullptr when the build or the host lacks AVX2. */
const Kernels *avx2Kernels();

} // namespace detail

} // namespace depgraph::dep::fold

#endif // DEPGRAPH_DEPGRAPH_FOLD_KERNELS_HH
