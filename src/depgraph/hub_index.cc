#include "depgraph/hub_index.hh"

#include <algorithm>

#include "common/logging.hh"

namespace depgraph::dep
{

namespace
{

std::uint64_t
key(VertexId head, VertexId path_id)
{
    return (static_cast<std::uint64_t>(head) << 32) | path_id;
}

} // namespace

HubIndex::HubIndex(sim::Machine &m, std::size_t num_hub_vertices,
                   std::size_t capacity_hint)
{
    // Hash directory: |H| / omega buckets, omega = 0.75 (paper cites
    // Ross [41]); each bucket is <vertex id, begin, end> = 16 B.
    hashBuckets_ = std::max<std::size_t>(
        16, static_cast<std::size_t>(
                static_cast<double>(num_hub_vertices) / 0.75));
    hashBase_ = m.mem().alloc("hub.hash", hashBuckets_ * 16);

    capacity_ = std::max<std::size_t>(capacity_hint, 64);
    entriesBase_ = m.mem().alloc("hub.index", capacity_ * kEntryBytes);
    entries_.reserve(capacity_);
    // Pre-size the host-side lookup structures from the core-path
    // count: entry population is bounded by the indexed paths, so
    // rehash-on-growth during a run is pure waste.
    lookup_.reserve(capacity_);
    byHead_.reserve(std::max<std::size_t>(num_hub_vertices, 16));
}

std::uint32_t
HubIndex::find(VertexId head, VertexId path_id) const
{
    auto it = lookup_.find(key(head, path_id));
    return it == lookup_.end() ? kNoEntry : it->second;
}

std::uint32_t
HubIndex::findOrCreate(VertexId head, VertexId tail, VertexId path_id)
{
    const auto k = key(head, path_id);
    auto it = lookup_.find(k);
    if (it != lookup_.end())
        return it->second;
    const auto idx = static_cast<std::uint32_t>(entries_.size());
    dg_assert(idx != kNoEntry, "hub index full");
    HubEntry e;
    e.head = head;
    e.tail = tail;
    e.pathId = path_id;
    entries_.push_back(e);
    lookup_.emplace(k, idx);
    byHead_[head].push_back(idx);
    flatCurrent_ = false;
    return idx;
}

std::span<const std::uint32_t>
HubIndex::entriesOf(VertexId head) const
{
    if (flatCurrent_) {
        for (std::uint32_t s = head * 0x9e3779b9u;; ++s) {
            const FlatHead &fh = flatSlots_[s & flatMask_];
            if (fh.head == head)
                return {flatEntries_.data() + fh.offset, fh.count};
            if (fh.head == kNoHead)
                return {};
        }
    }
    const auto it = byHead_.find(head);
    if (it == byHead_.end())
        return {};
    return {it->second.data(), it->second.size()};
}

void
HubIndex::flatten()
{
    std::size_t slots = 16;
    while (slots < byHead_.size() * 2)
        slots <<= 1;
    flatMask_ = static_cast<std::uint32_t>(slots - 1);
    flatSlots_.assign(slots, {kNoHead, 0, 0});
    flatEntries_.clear();
    flatEntries_.reserve(entries_.size());
    for (const auto &[head, list] : byHead_) {
        const auto off =
            static_cast<std::uint32_t>(flatEntries_.size());
        flatEntries_.insert(flatEntries_.end(), list.begin(),
                            list.end());
        std::uint32_t s = head * 0x9e3779b9u;
        while (flatSlots_[s & flatMask_].head != kNoHead)
            ++s;
        flatSlots_[s & flatMask_] = {
            head, off, static_cast<std::uint32_t>(list.size())};
    }
    flatCurrent_ = true;
}

Addr
HubIndex::hashAddr(VertexId head) const
{
    return hashBase_ + (head % hashBuckets_) * 16;
}

Addr
HubIndex::entryAddr(std::uint32_t idx) const
{
    // The pool address wraps if runtime discovery exceeds the hint;
    // timing stays sane and the functional table is unbounded.
    return entriesBase_
        + (static_cast<Addr>(idx) % capacity_) * kEntryBytes;
}

std::size_t
HubIndex::byteSize() const
{
    return entries_.size() * kEntryBytes + hashBuckets_ * 16;
}

} // namespace depgraph::dep
