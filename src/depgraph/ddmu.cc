#include "depgraph/ddmu.hh"

#include <cmath>

namespace depgraph::dep
{

std::optional<Value>
Ddmu::tryShortcut(VertexId head, VertexId path_id, Value delta)
{
    ++stats_.lookups;
    const auto idx = index_.find(head, path_id);
    if (idx == HubIndex::kNoEntry)
        return std::nullopt;
    const auto &e = index_.entry(idx);
    if (e.flag != EntryFlag::A)
        return std::nullopt;
    ++stats_.hits;
    return e.func(delta);
}

void
Ddmu::observe(VertexId head, VertexId tail, VertexId path_id, Value in,
              Value out, const gas::LinearFunc &composed, FitMode mode)
{
    const auto existing = index_.find(head, path_id);
    const auto idx = index_.findOrCreate(head, tail, path_id);
    if (existing == HubIndex::kNoEntry)
        ++stats_.inserts;
    ++stats_.samples;

    // The N -> I -> A state machine itself lives in chain_walk.hh so
    // the native engine's seqlock table advances entries identically.
    if (ddmuFitStep(index_.entry(idx), in, out, composed, mode)
        == FitOutcome::Promoted)
        ++stats_.fits;
}

} // namespace depgraph::dep
