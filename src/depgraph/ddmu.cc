#include "depgraph/ddmu.hh"

#include <cmath>

namespace depgraph::dep
{

std::optional<Value>
Ddmu::tryShortcut(VertexId head, VertexId path_id, Value delta)
{
    ++stats_.lookups;
    const auto idx = index_.find(head, path_id);
    if (idx == HubIndex::kNoEntry)
        return std::nullopt;
    const auto &e = index_.entry(idx);
    if (e.flag != EntryFlag::A)
        return std::nullopt;
    ++stats_.hits;
    return e.func(delta);
}

void
Ddmu::observe(VertexId head, VertexId tail, VertexId path_id, Value in,
              Value out, const gas::LinearFunc &composed, FitMode mode)
{
    const auto existing = index_.find(head, path_id);
    const auto idx = index_.findOrCreate(head, tail, path_id);
    if (existing == HubIndex::kNoEntry)
        ++stats_.inserts;
    auto &e = index_.entry(idx);
    ++stats_.samples;

    if (mode == FitMode::Compose) {
        // Exact composition: available immediately.
        if (e.flag != EntryFlag::A)
            ++stats_.fits;
        e.func = composed;
        e.flag = EntryFlag::A;
        return;
    }

    switch (e.flag) {
      case EntryFlag::N:
        e.sampleIn = in;
        e.sampleOut = out;
        e.flag = EntryFlag::I;
        break;
      case EntryFlag::I: {
        const Value din = in - e.sampleIn;
        if (din == 0.0) {
            // Same input twice: refresh the stored sample and wait
            // for a distinguishable observation.
            e.sampleOut = out;
            break;
        }
        const Value mu = (out - e.sampleOut) / din;
        const Value xi = out - mu * in;
        if (!std::isfinite(mu) || !std::isfinite(xi)) {
            e.sampleIn = in;
            e.sampleOut = out;
            break;
        }
        e.func = {mu, xi, kInfinity};
        e.flag = EntryFlag::A;
        ++stats_.fits;
        break;
      }
      case EntryFlag::A:
        // Keep the solved dependency; the paper reuses A entries.
        break;
    }
}

} // namespace depgraph::dep
