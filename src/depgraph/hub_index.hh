/**
 * @file
 * The hub index: an in-memory key-value table of direct dependencies
 * (paper Sec. III-B2, "Generating/Maintaining the Hub Index").
 *
 * Each entry <j, i, l, mu, xi> stores the linear direct dependency
 * f(s) = mu*s + xi between the head vertex j and the tail vertex i of
 * core-path l (l is the id of the path's second vertex). Entries
 * follow the paper's flag protocol:
 *
 *   N (new)       -- no observation yet;
 *   I (initialized)-- one (input, output) sample stored;
 *   A (available) -- mu/xi solved from two samples; usable shortcut.
 *
 * A hash directory <vertex id, beginning_offset, end_offset> with
 * |H| / 0.75 buckets locates the entries of a head vertex, exactly as
 * the paper describes. The table lives in simulated memory so lookups
 * exercise the cache hierarchy (the paper relies on the L3 keeping it
 * hot).
 */

#ifndef DEPGRAPH_DEPGRAPH_HUB_INDEX_HH
#define DEPGRAPH_DEPGRAPH_HUB_INDEX_HH

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "depgraph/chain_walk.hh" // EntryFlag
#include "gas/model.hh"
#include "sim/machine.hh"

namespace depgraph::dep
{

struct HubEntry
{
    VertexId head = kInvalidVertex;
    VertexId tail = kInvalidVertex;
    VertexId pathId = kInvalidVertex;
    EntryFlag flag = EntryFlag::N;
    /** The fitted (or composed) direct dependency. */
    gas::LinearFunc func{0.0, 0.0, kInfinity};
    /** Stored sample while flag == I: input delta and pure output. */
    Value sampleIn = 0.0;
    Value sampleOut = 0.0;
};

class HubIndex
{
  public:
    /**
     * @param m Simulated machine (address space for the table).
     * @param num_hub_vertices |H|: sizes the hash directory.
     * @param capacity_hint Expected number of entries (pool grows
     *        transparently if exceeded).
     */
    HubIndex(sim::Machine &m, std::size_t num_hub_vertices,
             std::size_t capacity_hint);

    /** Find the entry for (head, pathId); kNoEntry if absent. */
    std::uint32_t find(VertexId head, VertexId path_id) const;

    /** Find or create (flag N) the entry for (head, pathId). */
    std::uint32_t findOrCreate(VertexId head, VertexId tail,
                               VertexId path_id);

    HubEntry &entry(std::uint32_t idx) { return entries_[idx]; }
    const HubEntry &entry(std::uint32_t idx) const
    {
        return entries_[idx];
    }

    /**
     * Entry indices whose head is the given vertex. Served from the
     * flat sorted directory when one is current (see flatten()), else
     * from the per-head hash map.
     */
    std::span<const std::uint32_t> entriesOf(VertexId head) const;

    /**
     * Build the flat head directory: one sorted (head, offset, count)
     * table over a single contiguous index array, replacing per-head
     * hash probes with a binary search over 12 B rows. Called once per
     * seed, right after warm-start installation; inserts afterwards
     * mark the directory stale and entriesOf() falls back to the map
     * until the next flatten().
     */
    void flatten();

    /** True when the flat directory reflects every entry. */
    bool flatCurrent() const { return flatCurrent_; }

    std::size_t size() const { return entries_.size(); }

    /** Simulated address of the hash bucket for a head vertex. */
    Addr hashAddr(VertexId head) const;

    /** Simulated address of an entry (32 B per entry, paper layout). */
    Addr entryAddr(std::uint32_t idx) const;

    /** Bytes of simulated memory held by table + directory (the
     * paper's 0.9-2.8% storage-share figure). */
    std::size_t byteSize() const;

    static constexpr std::uint32_t kNoEntry = 0xffffffffu;
    static constexpr unsigned kEntryBytes = 32;

  private:
    struct FlatHead
    {
        VertexId head;
        std::uint32_t offset; ///< into flatEntries_
        std::uint32_t count;
    };
    static constexpr VertexId kNoHead = 0xffffffffu;

    std::vector<HubEntry> entries_;
    std::unordered_map<std::uint64_t, std::uint32_t> lookup_;
    std::unordered_map<VertexId, std::vector<std::uint32_t>> byHead_;
    /** Open-addressing directory, power-of-two sized at <= 50% load:
     * one or two probes beat both a tree walk and the byHead_ map's
     * pointer chase on the hot entriesOf() path. */
    std::vector<FlatHead> flatSlots_;
    std::uint32_t flatMask_ = 0;
    std::vector<std::uint32_t> flatEntries_;   ///< grouped by head
    bool flatCurrent_ = false;
    Addr entriesBase_ = 0;
    Addr hashBase_ = 0;
    std::size_t hashBuckets_ = 0;
    std::size_t capacity_ = 0;
};

} // namespace depgraph::dep

#endif // DEPGRAPH_DEPGRAPH_HUB_INDEX_HH
