/**
 * @file
 * AVX2 kernels, bitwise-matching the scalar reference in
 * fold_kernels.cc.
 *
 * Build contract (src/depgraph/CMakeLists.txt): this translation unit
 * alone is compiled with -mavx2 -ffp-contract=off on x86 hosts, and is
 * referenced only through detail::avx2Kernels(), which the dispatcher
 * consults after a cpuid check -- so no AVX2 instruction executes on a
 * host without the feature, and no other TU can accidentally pick up
 * AVX2 code generation.
 *
 * Bitwise equivalences relied on (see fold_kernels.hh):
 *   vaddpd/vmulpd      -- IEEE double ops, identical to scalar + / *
 *                         (contraction disabled, so no FMA fusing).
 *   vminpd(a, b)       -- a < b ? a : b, returns b on unordered and on
 *                         the +-0 tie: exactly gas::applyAccum(Min)
 *                         and, as vminpd(t, cap), exactly
 *                         std::min(cap, t).
 *   vmaxpd(a, b)       -- a > b ? a : b, same operand convention.
 *   _CMP_NEQ_UQ        -- IEEE !=, true on unordered, matching the
 *                         scalar shadow[v] != ident test.
 * The reduction kernels accumulate into four 4-wide registers (lanes
 * j, j+4, j+8, j+12 per register position is NOT the layout -- lane
 * 16k+j goes to register j/4, position j%4), then drain the ragged
 * tail and run the fixed combine tree in scalar code, which is the
 * exact tree the scalar reference uses.
 */

#include "depgraph/fold_kernels.hh"

#if DG_FOLD_HAVE_AVX2

#include <array>
#include <immintrin.h>

namespace depgraph::dep::fold
{

namespace
{

struct SumOp
{
    static __m256d
    vec(__m256d a, __m256d b)
    {
        return _mm256_add_pd(a, b);
    }
    static Value
    scl(Value a, Value b)
    {
        return a + b;
    }
    static constexpr Value identity = 0.0;
    static constexpr bool canonResult = false;
};

struct MinOp
{
    static __m256d
    vec(__m256d a, __m256d b)
    {
        return _mm256_min_pd(a, b);
    }
    static Value
    scl(Value a, Value b)
    {
        return a < b ? a : b;
    }
    static constexpr Value identity = kInfinity;
    static constexpr bool canonResult = true;
};

struct MaxOp
{
    static __m256d
    vec(__m256d a, __m256d b)
    {
        return _mm256_max_pd(a, b);
    }
    static Value
    scl(Value a, Value b)
    {
        return a > b ? a : b;
    }
    static constexpr Value identity = -kInfinity;
    static constexpr bool canonResult = true;
};

template <class Op>
Value
foldAvx2(const Value *x, std::size_t n)
{
    const __m256d id = _mm256_set1_pd(Op::identity);
    __m256d a0 = id, a1 = id, a2 = id, a3 = id;
    const std::size_t n16 = n - n % kFoldLanes;
    for (std::size_t i = 0; i < n16; i += kFoldLanes) {
        a0 = Op::vec(a0, _mm256_loadu_pd(x + i));
        a1 = Op::vec(a1, _mm256_loadu_pd(x + i + 4));
        a2 = Op::vec(a2, _mm256_loadu_pd(x + i + 8));
        a3 = Op::vec(a3, _mm256_loadu_pd(x + i + 12));
    }
    alignas(32) std::array<Value, kFoldLanes> lane;
    _mm256_store_pd(lane.data() + 0, a0);
    _mm256_store_pd(lane.data() + 4, a1);
    _mm256_store_pd(lane.data() + 8, a2);
    _mm256_store_pd(lane.data() + 12, a3);
    /* Ragged tail: element n16 + k is lane k's last operand, exactly
     * as in the scalar stripe. */
    for (std::size_t k = 0; k < n - n16; ++k)
        lane[k] = Op::scl(lane[k], x[n16 + k]);
    std::array<Value, 4> c;
    for (std::size_t j = 0; j < 4; ++j)
        c[j] = Op::scl(Op::scl(lane[j], lane[j + 4]),
                       Op::scl(lane[j + 8], lane[j + 12]));
    const Value r = Op::scl(Op::scl(c[0], c[1]), Op::scl(c[2], c[3]));
    return Op::canonResult ? canon(r) : r;
}

void
edgeApplyAvx2(const Value *mu, const Value *xi, const Value *cap,
              Value d, Value *inf, std::size_t n)
{
    const __m256d vd = _mm256_set1_pd(d);
    const std::size_t n4 = n - n % 4;
    for (std::size_t i = 0; i < n4; i += 4) {
        const __m256d t = _mm256_add_pd(
            _mm256_mul_pd(_mm256_loadu_pd(mu + i), vd),
            _mm256_loadu_pd(xi + i));
        /* vminpd(t, cap) == std::min(cap, t) bitwise (operand order
         * picks cap on ties and NaN, like the scalar kernel). */
        _mm256_storeu_pd(inf + i,
                         _mm256_min_pd(t, _mm256_loadu_pd(cap + i)));
    }
    for (std::size_t i = n4; i < n; ++i) {
        const Value t = mu[i] * d + xi[i];
        inf[i] = t < cap[i] ? t : cap[i];
    }
}

template <class Op>
void
mergeDenseAvx2(Value *delta, Value *shadow, Value ident, std::size_t n)
{
    const __m256d vident = _mm256_set1_pd(ident);
    const std::size_t n4 = n - n % 4;
    for (std::size_t v = 0; v < n4; v += 4) {
        const __m256d sh = _mm256_loadu_pd(shadow + v);
        const __m256d live = _mm256_cmp_pd(sh, vident, _CMP_NEQ_UQ);
        if (_mm256_testz_pd(live, live))
            continue; /* whole block untouched (the common case) */
        const __m256d de = _mm256_loadu_pd(delta + v);
        const __m256d merged = Op::vec(de, sh);
        _mm256_storeu_pd(delta + v,
                         _mm256_blendv_pd(de, merged, live));
        _mm256_storeu_pd(shadow + v,
                         _mm256_blendv_pd(sh, vident, live));
    }
    for (std::size_t v = n4; v < n; ++v) {
        if (shadow[v] != ident) {
            delta[v] = Op::scl(delta[v], shadow[v]);
            shadow[v] = ident;
        }
    }
}

void
mergeDenseDispatch(gas::AccumKind kind, Value *delta, Value *shadow,
                   Value ident, std::size_t n)
{
    switch (kind) {
      case gas::AccumKind::Sum:
        return mergeDenseAvx2<SumOp>(delta, shadow, ident, n);
      case gas::AccumKind::Min:
        return mergeDenseAvx2<MinOp>(delta, shadow, ident, n);
      case gas::AccumKind::Max:
        return mergeDenseAvx2<MaxOp>(delta, shadow, ident, n);
    }
}

const detail::Kernels kAvx2{edgeApplyAvx2, foldAvx2<SumOp>,
                            foldAvx2<MinOp>, foldAvx2<MaxOp>,
                            mergeDenseDispatch};

} // namespace

namespace detail
{

const Kernels *
avx2Kernels()
{
    return avx2Supported() ? &kAvx2 : nullptr;
}

} // namespace detail

} // namespace depgraph::dep::fold

#endif // DG_FOLD_HAVE_AVX2
