/**
 * @file
 * The paper's low-level programming interface (Sec. III-B2) as a
 * standalone, functional per-core engine model.
 *
 * The software system configures the engine once per partition
 * (DEP_configure: array bases, partition bounds, the H'' bitmap, the
 * local circular queue -- "as the way configuring a DMA engine"),
 * inserts active roots, and then drains prefetched edges through
 * DEP_fetch_edge(), the software face of the DEP_FETCH_EDGE
 * instruction. Internally the HDTL four-stage pipeline
 * (Get_Root / Fetch_Offsets / Fetch_Neighbors / Fetch_States) walks
 * the dependency chains depth-first under a fixed-depth stack and
 * feeds the FIFO Edge Buffer.
 *
 * This class models the ENGINE alone -- functional prefetching with
 * hardware-faithful structure sizes, no timing and no vertex states.
 * The timed, state-carrying integration used by the benchmarks lives
 * in DepGraphExecutor; this facade exists so the programming model
 * itself can be exercised, tested, and demonstrated in isolation
 * (see examples/engine_api.cpp).
 */

#ifndef DEPGRAPH_DEPGRAPH_API_HH
#define DEPGRAPH_DEPGRAPH_API_HH

#include <cstdint>
#include <optional>

#include "common/bitmap.hh"
#include "common/circular_queue.hh"
#include "common/fifo_buffer.hh"
#include "common/fixed_stack.hh"
#include "graph/csr.hh"

namespace depgraph::dep
{

/** Configuration conveyed by DEP_configure (paper Fig. 8). */
struct DepConfig
{
    const graph::Graph *graph = nullptr;
    /** Partition assigned to this core: [begin, end). */
    VertexId partitionBegin = 0;
    VertexId partitionEnd = 0;
    /** The in-memory H'' bitmap (hub/core/boundary vertices). */
    const Bitmap *hpp = nullptr;
    unsigned stackDepth = 10;   ///< 6.1 Kbit stack (Fig. 15 knob)
    unsigned fifoCapacity = 64; ///< 4.8 Kbit FIFO Edge Buffer
    unsigned queueCapacity = 1024; ///< local circular queue slots
};

/** One edge delivered by DEP_fetch_edge. */
struct FetchedEdge
{
    VertexId src = kInvalidVertex;
    VertexId dst = kInvalidVertex;
    EdgeId edge = 0; ///< CSR edge index
    Value weight = 1.0;
    /** True when dst is in H'': the traversal was cut here and dst
     * was (re)inserted as a root candidate for some core. */
    bool cutAtDst = false;
};

class DepEngine
{
  public:
    DepEngine() = default;

    /** Configure the engine for a partition (resets all state). */
    void DEP_configure(const DepConfig &cfg);

    /** Insert an active root into the local circular queue. Returns
     * false when the queue is full (software must retry later). */
    bool DEP_insert_root(VertexId v);

    /**
     * Pop the next prefetched edge; the HDTL pipeline advances as
     * needed to refill the FIFO. std::nullopt when the engine is
     * idle (queue, stack, and FIFO all drained).
     */
    std::optional<FetchedEdge> DEP_fetch_edge();

    /** No pending work anywhere in the engine? */
    bool idle() const;

    /* Engine statistics (for tests and reporting). */
    std::uint64_t prefetchedEdges() const { return prefetched_; }
    std::uint64_t traversals() const { return traversals_; }
    std::uint64_t stackCuts() const { return stackCuts_; }
    std::uint64_t hppCuts() const { return hppCuts_; }

  private:
    /** One HDTL stack entry (paper Fig. 7): vertex id plus the
     * current/end offsets of its unvisited edges. */
    struct StackEntry
    {
        VertexId v;
        EdgeId cur;
        EdgeId end;
    };

    /** Run pipeline stages until the FIFO has an edge or the engine
     * is out of work. */
    void pump();

    /** Expand the next edge of the stack top into the FIFO; handles
     * descent, cuts, and pops. Returns false when the stack emptied
     * without producing. */
    bool step();

    DepConfig cfg_;
    std::optional<CircularQueue<VertexId>> queue_;
    std::optional<FixedStack<StackEntry>> stack_;
    std::optional<FifoBuffer<FetchedEdge>> fifo_;
    Bitmap visited_; ///< per-traversal visit marks (epoch-cleared)
    std::vector<std::uint32_t> visitEpoch_;
    std::uint32_t epoch_ = 0;
    /** Queue-membership and rooted-since-last-activation marks: the
     * real system skips roots whose vertex is inactive; the facade
     * has no activity notion, so a vertex roots at most once per
     * external DEP_insert_root (guarantees termination on cycles). */
    Bitmap inQueue_;
    Bitmap rooted_;

    std::uint64_t prefetched_ = 0;
    std::uint64_t traversals_ = 0;
    std::uint64_t stackCuts_ = 0;
    std::uint64_t hppCuts_ = 0;
};

} // namespace depgraph::dep

#endif // DEPGRAPH_DEPGRAPH_API_HH
