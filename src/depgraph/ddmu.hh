/**
 * @file
 * Direct Dependency Management Unit (paper Sec. III-B1/B2).
 *
 * DDMU generates and maintains the hub index at runtime. Two fitting
 * modes are provided:
 *
 *  - TwoPoint (default, the paper's mechanism): after a core-path is
 *    traversed, DDMU records the (input delta, delivered influence)
 *    pair. With one stored pair the entry is I; a second pair with a
 *    different input solves mu = (x2-x1)/(d2-d1), xi = x1 - mu*d1 and
 *    the entry becomes A. For the linear EdgeCompute functions of
 *    Property 2 the fit is exact.
 *  - Compose: the traversal composes the per-edge (mu, xi, cap)
 *    functions directly and the entry becomes A after the first
 *    traversal. This handles capped-linear algorithms (SSWP), whose
 *    piecewise form a two-point fit can over-estimate -- unsafe under
 *    a max accumulator.
 *
 * The engine picks TwoPoint for purely linear algorithms and Compose
 * otherwise (see Algorithm::edgeFunc cap); both are forced-selectable
 * for the ablation benchmark.
 */

#ifndef DEPGRAPH_DEPGRAPH_DDMU_HH
#define DEPGRAPH_DEPGRAPH_DDMU_HH

#include <cstdint>
#include <optional>

#include "depgraph/chain_walk.hh" // FitMode, ddmuFitStep
#include "depgraph/hub_index.hh"

namespace depgraph::dep
{

struct DdmuStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;    ///< lookups that found an A entry
    std::uint64_t inserts = 0; ///< entries created
    std::uint64_t fits = 0;    ///< entries promoted to A
    std::uint64_t samples = 0; ///< observations recorded
};

class Ddmu
{
  public:
    explicit Ddmu(HubIndex &index)
        : index_(index)
    {}

    /**
     * Shortcut query for a root's core-path (paper: "DDMU checks if
     * the direct dependency related to this vertex exists").
     *
     * @return The influence f(delta) when the entry is available.
     */
    std::optional<Value> tryShortcut(VertexId head, VertexId path_id,
                                     Value delta);

    /**
     * Record a completed core-path traversal.
     *
     * @param in The delta that entered the path at the head.
     * @param out The pure influence delivered at the tail.
     * @param composed The traversal-composed function (Compose mode).
     */
    void observe(VertexId head, VertexId tail, VertexId path_id,
                 Value in, Value out, const gas::LinearFunc &composed,
                 FitMode mode);

    const DdmuStats &stats() const { return stats_; }

  private:
    HubIndex &index_;
    DdmuStats stats_;
};

} // namespace depgraph::dep

#endif // DEPGRAPH_DEPGRAPH_DDMU_HH
